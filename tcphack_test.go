package tcphack

import (
	"reflect"
	"testing"
)

// TestLegacyConstructorsAreBuilderWrappers: the compatibility
// constructors must produce exactly what the builder produces.
func TestLegacyConstructorsAreBuilderWrappers(t *testing.T) {
	for _, mode := range []Mode{ModeOff, ModeMoreData, ModeOpportunistic, ModeTimer} {
		for _, clients := range []int{1, 2, 10} {
			ht := Scenario80211n(mode, clients)
			htBuilt := NewScenario(With80211n(), WithMode(mode), WithClients(clients))
			if !reflect.DeepEqual(ht, htBuilt) {
				t.Errorf("Scenario80211n(%v,%d) != builder: %+v vs %+v", mode, clients, ht, htBuilt)
			}
			sora := ScenarioSoRa(mode, clients)
			soraBuilt := NewScenario(WithSoRa(), WithMode(mode), WithClients(clients))
			if !reflect.DeepEqual(sora, soraBuilt) {
				t.Errorf("ScenarioSoRa(%v,%d) != builder: %+v vs %+v", mode, clients, sora, soraBuilt)
			}
		}
	}
}

// TestRegistryMatchesConstructors: looking a scenario up by name must
// yield the same configuration as the equivalent constructor call.
func TestRegistryMatchesConstructors(t *testing.T) {
	cfg, ok := LookupScenario("ht150-moredata", WithClients(4))
	if !ok {
		t.Fatal("ht150-moredata not registered")
	}
	if want := Scenario80211n(ModeMoreData, 4); !reflect.DeepEqual(cfg, want) {
		t.Errorf("ht150-moredata != Scenario80211n: %+v vs %+v", cfg, want)
	}
	cfg, ok = LookupScenario("sora-stock")
	if !ok {
		t.Fatal("sora-stock not registered")
	}
	if want := ScenarioSoRa(ModeOff, 1); !reflect.DeepEqual(cfg, want) {
		t.Errorf("sora-stock != ScenarioSoRa: %+v vs %+v", cfg, want)
	}
	if len(Scenarios()) != len(ScenarioNames()) {
		t.Error("Scenarios()/ScenarioNames() disagree")
	}
}

// TestCampaignFacade drives a tiny sweep end-to-end through the public
// API: builder-composed base, two modes, parallel execution.
func TestCampaignFacade(t *testing.T) {
	results := RunCampaign(Campaign{
		Name:    "facade",
		Base:    NewScenario(With80211n()),
		Axes:    CampaignAxes{Modes: []Mode{ModeOff, ModeMoreData}},
		Warmup:  500 * Millisecond,
		Measure: 500 * Millisecond,
	})
	if len(results) != 2 {
		t.Fatalf("%d rows, want 2", len(results))
	}
	stock, hck := results[0], results[1]
	if stock.ModeName != "off" || hck.ModeName != "more-data" {
		t.Fatalf("row modes: %q, %q", stock.ModeName, hck.ModeName)
	}
	if stock.AggregateMbps <= 0 || hck.AggregateMbps <= 0 {
		t.Fatalf("no goodput: stock=%.1f hack=%.1f", stock.AggregateMbps, hck.AggregateMbps)
	}
	// The paper's headline result at a small scale: HACK beats stock.
	if hck.AggregateMbps <= stock.AggregateMbps {
		t.Errorf("HACK (%.1f Mbps) did not beat stock TCP (%.1f Mbps)",
			hck.AggregateMbps, stock.AggregateMbps)
	}
	if hck.DecompFailures != 0 {
		t.Errorf("decompression failures: %d", hck.DecompFailures)
	}
	if len(CampaignSeeds(5, 3)) != 3 || CampaignSeeds(5, 3)[2] != 7 {
		t.Errorf("CampaignSeeds(5,3) = %v", CampaignSeeds(5, 3))
	}
}
