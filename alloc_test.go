// Allocation-budget guards for the simulator's steady-state hot path.
// The PR 4 optimization pass (pooled timers, persistent Post
// callbacks, alloc-free header marshalling) brought the full 802.11n
// HACK scenario below two heap allocations per scheduler event, and
// the PR 5 MPDU/DataFrame pooling (released back to per-station
// freelists when their exchange resolves) took it below 1.5; these
// tests keep it there. A regression to per-event timer, closure, or
// per-MPDU wrapper allocation adds ≈0.5-2 allocs/event and fails the
// budget.
package tcphack

import (
	"runtime"
	"testing"

	"tcphack/internal/node"
	"tcphack/internal/sim"
)

// steadyStateAllocBudget is the allowed mallocs per executed scheduler
// event once the simulation is warm (measured ≈5 to 6 before PR 4,
// ≈1.9 after it, and ≈1.45 with PR 5's MPDU/DataFrame pooling).
const steadyStateAllocBudget = 1.8

// TestSteadyStateAllocBudget runs the aggregated 802.11n HACK scenario
// to steady state and asserts the allocation rate per simulated event
// stays under the budget. Mallocs is a monotone total (GC does not
// reset it), and the simulation is single-goroutine, so the window
// delta is exact up to the test runtime's own background noise —
// which the wide event window drowns out.
// scaleAllocBudget is the allowed mallocs per executed scheduler event
// in the 100-station grid scenario (see scaleNetwork in bench_test.go).
// Large-N steady state is cheaper per event than the 2-client TCP
// scenario — UDP sinks allocate no TCP state and the MSDU freelists
// recycle every data frame — so the gate is much tighter (measured
// ≈0.11 with the wheel and MSDU freelists). CI runs this test as the
// hard allocation gate for the BenchmarkScale workload.
const scaleAllocBudget = 0.25

// TestScaleAllocBudget runs the 100-station grid scenario to steady
// state on the timing wheel and asserts the per-event allocation rate
// stays under the large-N budget.
func TestScaleAllocBudget(t *testing.T) {
	n := scaleNetwork(100, sim.BackendWheel, nil)
	n.Run(scaleWarm)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ev0 := n.Sched.EventsFired()
	n.Run(scaleWarm + sim.Second)
	runtime.ReadMemStats(&after)
	events := n.Sched.EventsFired() - ev0
	if events == 0 {
		t.Fatal("no events in the measurement window")
	}
	perEvent := float64(after.Mallocs-before.Mallocs) / float64(events)
	t.Logf("100-station steady state: %.3f allocs/event (%d mallocs over %d events)",
		perEvent, after.Mallocs-before.Mallocs, events)
	if perEvent > scaleAllocBudget {
		t.Errorf("100-station allocation rate %.3f allocs/event exceeds budget %v",
			perEvent, scaleAllocBudget)
	}
}

// TestNopTracerAllocFree asserts the disabled-tracing fast path stays
// allocation-free: the no-op tracer invoked through the Tracer
// interface — the exact shape of every probe site when tracing is on
// but a probe discards the event — must never allocate. (When tracing
// is off the probe sites skip the call entirely behind a nil check, so
// this bounds the worst case.)
func TestNopTracerAllocFree(t *testing.T) {
	var tr Tracer = NopTracer{}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.TxStart(0, 1, 2, 3, 0, 150000, 1500, 16, 0, 100, 0)
		tr.Collision(50, 1, 2)
		tr.TxEnd(100, 1, true)
		tr.RxFrame(100, 2, 3, 16, 16)
		tr.NAV(100, 4, 200)
		tr.BAWindow(100, 2, 3, 7, 0xffff)
		tr.MPDUFate(100, 2, 3, 7, 1, 0)
		tr.HackState(100, 2, 3, 0, 1, 0)
		tr.ROHCPacket(100, 2, true, 40)
		tr.ROHCResult(100, 2, 8, 0, 0)
		tr.TCPRetransmit(100, 80, 4096)
		tr.TCPRTO(100, 80, 200)
		tr.TCPCwnd(100, 80, 10, 5)
	})
	if allocs != 0 {
		t.Errorf("no-op tracer allocated %.1f times per run, want 0", allocs)
	}
}

func TestSteadyStateAllocBudget(t *testing.T) {
	cfg := Scenario80211n(ModeMoreData, 2)
	n := node.New(cfg)
	for ci := 0; ci < 2; ci++ {
		n.StartDownload(ci, 0, 0)
	}
	n.Run(2 * sim.Second) // warm: handshakes, buffer growth, pool fill

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ev0 := n.Sched.EventsFired()
	n.Run(5 * sim.Second)
	runtime.ReadMemStats(&after)
	events := n.Sched.EventsFired() - ev0
	if events == 0 {
		t.Fatal("no events in the measurement window")
	}
	perEvent := float64(after.Mallocs-before.Mallocs) / float64(events)
	t.Logf("steady state: %.3f allocs/event (%d mallocs over %d events)",
		perEvent, after.Mallocs-before.Mallocs, events)
	if perEvent > steadyStateAllocBudget {
		t.Errorf("steady-state allocation rate %.3f allocs/event exceeds budget %v",
			perEvent, steadyStateAllocBudget)
	}
}
