// Multiclient: the paper's Figure 10 scenario — ten clients download
// simultaneously through one AP, with staggered starts, comparing
// stock TCP against TCP/HACK. HACK's gain GROWS with client count
// because eliminating TCP ACK transmissions removes contenders from
// the medium entirely.
package main

import (
	"fmt"

	"tcphack"
)

func run(mode tcphack.Mode, clients int) float64 {
	n := tcphack.NewNetwork(tcphack.Scenario80211n(mode, clients))
	for ci := 0; ci < clients; ci++ {
		n.StartDownload(ci, 0, tcphack.Duration(ci)*100*tcphack.Millisecond)
	}
	n.Run(3 * tcphack.Second)
	for _, c := range n.Clients {
		c.Goodput.MarkWindow(n.Sched.Now())
	}
	n.Run(8 * tcphack.Second)
	var total float64
	for _, c := range n.Clients {
		total += c.Goodput.WindowMbps(n.Sched.Now())
	}
	return total
}

func main() {
	fmt.Printf("%-8s %12s %12s %8s\n", "clients", "stock TCP", "TCP/HACK", "gain")
	for _, clients := range []int{1, 2, 4, 10} {
		stock := run(tcphack.ModeOff, clients)
		hck := run(tcphack.ModeMoreData, clients)
		fmt.Printf("%-8d %10.1f M %10.1f M %+7.1f%%\n",
			clients, stock, hck, (hck-stock)/stock*100)
	}
	fmt.Println("\npaper Figure 10: gains grow from ≈15% (1 client) to ≈22% (10 clients)")
}
