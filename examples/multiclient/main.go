// Multiclient: the paper's Figure 10 scenario — up to ten clients
// download simultaneously through one AP, with staggered starts,
// comparing stock TCP against TCP/HACK. HACK's gain GROWS with client
// count because eliminating TCP ACK transmissions removes contenders
// from the medium entirely.
//
// The whole {mode × clients} grid is declared as one campaign and runs
// in parallel across cores; rows come back in deterministic grid
// order regardless of the worker count.
package main

import (
	"fmt"

	"tcphack"
)

func main() {
	clientCounts := []int{1, 2, 4, 10}
	results := tcphack.RunCampaign(tcphack.Campaign{
		Name: "multiclient",
		Base: tcphack.NewScenario(tcphack.With80211n()),
		Axes: tcphack.CampaignAxes{
			Modes:   []tcphack.Mode{tcphack.ModeOff, tcphack.ModeMoreData},
			Clients: clientCounts,
		},
		Warmup:  3 * tcphack.Second,
		Measure: 5 * tcphack.Second,
		// Figure 10's methodology staggers client starts 100 ms apart.
		Workload: func(n *tcphack.Network, pt tcphack.CampaignPoint) {
			for ci := 0; ci < pt.Clients; ci++ {
				n.StartDownload(ci, 0, tcphack.Duration(ci)*100*tcphack.Millisecond)
			}
		},
	})

	// Rows are grid-ordered: all stock rows first, then all HACK rows,
	// each in clientCounts order.
	stock, hck := results[:len(clientCounts)], results[len(clientCounts):]
	fmt.Printf("%-8s %12s %12s %8s\n", "clients", "stock TCP", "TCP/HACK", "gain")
	for i, clients := range clientCounts {
		s, h := stock[i].AggregateMbps, hck[i].AggregateMbps
		fmt.Printf("%-8d %10.1f M %10.1f M %+7.1f%%\n", clients, s, h, (h-s)/s*100)
	}
	fmt.Println("\npaper Figure 10: gains grow from ≈15% (1 client) to ≈22% (10 clients)")
}
