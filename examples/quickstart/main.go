// Quickstart: one client downloads over 150 Mbps 802.11n, first with
// stock TCP, then with TCP/HACK — the paper's headline comparison in
// a dozen lines.
package main

import (
	"fmt"

	"tcphack"
)

func measure(mode tcphack.Mode) float64 {
	n := tcphack.NewNetwork(tcphack.Scenario80211n(mode, 1))
	flow := n.StartDownload(0, 0, 0) // unbounded bulk download
	n.Run(2 * tcphack.Second)        // let slow start settle
	flow.Goodput.MarkWindow(n.Sched.Now())
	n.Run(8 * tcphack.Second) // measure 6 s of steady state
	return flow.Goodput.WindowMbps(n.Sched.Now())
}

func main() {
	stock := measure(tcphack.ModeOff)
	hack := measure(tcphack.ModeMoreData)
	fmt.Printf("stock TCP over 802.11n @150 Mbps: %6.1f Mbps\n", stock)
	fmt.Printf("TCP/HACK  over 802.11n @150 Mbps: %6.1f Mbps\n", hack)
	fmt.Printf("improvement:                      %+6.1f%%  (paper: ≈15%%)\n",
		(hack-stock)/stock*100)
}
