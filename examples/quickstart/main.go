// Quickstart: one client downloads over 150 Mbps 802.11n, first with
// stock TCP, then with TCP/HACK — the paper's headline comparison as
// one two-point campaign.
package main

import (
	"fmt"

	"tcphack"
)

func main() {
	results := tcphack.RunCampaign(tcphack.Campaign{
		Name: "quickstart",
		Base: tcphack.NewScenario(tcphack.With80211n()),
		Axes: tcphack.CampaignAxes{
			Modes: []tcphack.Mode{tcphack.ModeOff, tcphack.ModeMoreData},
		},
		Warmup:  2 * tcphack.Second, // let slow start settle
		Measure: 6 * tcphack.Second, // measure 6 s of steady state
	})
	stock, hack := results[0].AggregateMbps, results[1].AggregateMbps
	fmt.Printf("stock TCP over 802.11n @150 Mbps: %6.1f Mbps\n", stock)
	fmt.Printf("TCP/HACK  over 802.11n @150 Mbps: %6.1f Mbps\n", hack)
	fmt.Printf("improvement:                      %+6.1f%%  (paper: ≈15%%)\n",
		(hack-stock)/stock*100)
}
