// Analytic: print the paper's Figure 1 capacity curves — the
// closed-form goodput of TCP, TCP/HACK, and UDP as the PHY rate grows,
// showing why the MAC's fixed medium-acquisition overhead makes TCP
// throughput an ever-smaller fraction of the link rate, and how much
// HACK claws back.
package main

import (
	"fmt"

	"tcphack"
)

func main() {
	fmt.Println("Figure 1(a): 802.11a")
	fmt.Printf("%-10s %10s %10s %10s %8s %12s\n", "rate", "TCP", "TCP/HACK", "UDP", "gain", "TCP/PHY eff")
	for _, r := range tcphack.Fig1a() {
		fmt.Printf("%-10v %8.1f M %8.1f M %8.1f M %+7.1f%% %11.0f%%\n",
			r.Rate, r.TCPMbps, r.HACKMbps, r.UDPMbps, r.GainPct, 100*r.TCPMbps/r.Rate.Mbps())
	}
	fmt.Println("\nFigure 1(b): 802.11n (single stream shown; sweep continues to 600 Mbps)")
	fmt.Printf("%-14s %6s %10s %10s %8s\n", "rate", "batch", "TCP", "TCP/HACK", "gain")
	for _, r := range tcphack.Fig1b() {
		fmt.Printf("%-14v %6d %8.1f M %8.1f M %+7.1f%%\n",
			r.Rate, r.BatchMPDUs, r.TCPMbps, r.HACKMbps, r.GainPct)
	}
}
