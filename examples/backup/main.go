// Backup: the paper's motivating upload scenario — "wireless backup to
// LAN-attached storage, such as a Time Capsule" (§3.1). The client
// uploads a large archive; the server's TCP ACKs arrive at the AP over
// the wire, and with HACK the AP piggybacks them on the Block ACKs it
// already sends for the client's data frames. Fully symmetric to the
// download case, exercised in the opposite direction.
package main

import (
	"fmt"

	"tcphack"
)

func run(mode tcphack.Mode) (mbps float64, apCompressed uint64) {
	n := tcphack.NewNetwork(tcphack.Scenario80211n(mode, 1))
	flow := n.StartUpload(0, 0, 0)
	n.Run(2 * tcphack.Second)
	flow.Goodput.MarkWindow(n.Sched.Now())
	n.Run(8 * tcphack.Second)
	return flow.Goodput.WindowMbps(n.Sched.Now()), n.AP.Driver.Acct.CompressedAcks
}

func main() {
	stock, _ := run(tcphack.ModeOff)
	hck, compressed := run(tcphack.ModeMoreData)
	fmt.Println("wireless backup (client → LAN storage) over 802.11n @150 Mbps")
	fmt.Printf("  stock TCP upload: %6.1f Mbps\n", stock)
	fmt.Printf("  TCP/HACK upload:  %6.1f Mbps (%+.1f%%)\n", hck, (hck-stock)/stock*100)
	fmt.Printf("  TCP ACKs the AP carried inside its Block ACKs: %d\n", compressed)
}
