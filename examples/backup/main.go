// Backup: the paper's motivating upload scenario — "wireless backup to
// LAN-attached storage, such as a Time Capsule" (§3.1). The client
// uploads a large archive; the server's TCP ACKs arrive at the AP over
// the wire, and with HACK the AP piggybacks them on the Block ACKs it
// already sends for the client's data frames. Fully symmetric to the
// download case, exercised in the opposite direction — a campaign with
// a custom upload workload and a Collect hook for the AP-side metrics.
package main

import (
	"fmt"

	"tcphack"
)

func main() {
	results := tcphack.RunCampaign(tcphack.Campaign{
		Name: "backup",
		Base: tcphack.NewScenario(tcphack.With80211n()),
		Axes: tcphack.CampaignAxes{
			Modes: []tcphack.Mode{tcphack.ModeOff, tcphack.ModeMoreData},
		},
		Warmup:  2 * tcphack.Second,
		Measure: 6 * tcphack.Second,
		Workload: func(n *tcphack.Network, pt tcphack.CampaignPoint) {
			n.StartUpload(0, 0, 0)
		},
		// Upload goodput lands at the server, not a client, so the
		// standard per-client metrics miss it: pull it off the flow,
		// along with the AP's piggybacking counter.
		Collect: func(n *tcphack.Network, r *tcphack.CampaignResult) {
			r.Extra = map[string]float64{
				"upload_mbps":        n.Flows[0].Goodput.WindowMbps(n.Sched.Now()),
				"ap_compressed_acks": float64(n.AP.Driver.Acct.CompressedAcks),
			}
		},
	})

	stock := results[0].Extra["upload_mbps"]
	hck := results[1].Extra["upload_mbps"]
	fmt.Println("wireless backup (client → LAN storage) over 802.11n @150 Mbps")
	fmt.Printf("  stock TCP upload: %6.1f Mbps\n", stock)
	fmt.Printf("  TCP/HACK upload:  %6.1f Mbps (%+.1f%%)\n", hck, (hck-stock)/stock*100)
	fmt.Printf("  TCP ACKs the AP carried inside its Block ACKs: %.0f\n",
		results[1].Extra["ap_compressed_acks"])
}
