// Lossy: the paper's Figure 11 experiment in miniature — sweep SNR,
// try every 802.11n rate at each point, and report the goodput
// envelope an ideal rate-adaptation algorithm would achieve, for stock
// TCP and TCP/HACK. Also demonstrates §3.4's claim: HACK's loss
// recovery produces no decompression failures even on terrible links.
package main

import (
	"fmt"
	"sort"

	"tcphack"
)

func main() {
	opts := tcphack.ExperimentOptions{
		Warmup:  tcphack.Second,
		Measure: 2 * tcphack.Second,
		Seed:    7,
	}
	res := tcphack.Fig11(opts, []float64{0, 5, 10, 15, 20, 25, 30}, nil)

	snrs := make([]float64, 0, len(res.EnvelopeTCP))
	for snr := range res.EnvelopeTCP {
		snrs = append(snrs, snr)
	}
	sort.Float64s(snrs)

	fmt.Printf("%-8s %14s %14s %8s\n", "SNR dB", "TCP envelope", "HACK envelope", "gain")
	for _, snr := range snrs {
		tcp, hck := res.EnvelopeTCP[snr], res.EnvelopeHACK[snr]
		gain := "   -"
		if tcp > 1 {
			gain = fmt.Sprintf("%+.1f%%", (hck-tcp)/tcp*100)
		}
		fmt.Printf("%-8.0f %12.1f M %12.1f M %8s\n", snr, tcp, hck, gain)
	}
	fmt.Printf("\nmean improvement across usable SNRs: %.1f%% (paper: 12.6%%)\n",
		res.MeanImprovementPct)
}
