// Lossy: the paper's Figure 11 experiment in miniature — sweep SNR
// with every station running the ideal-SNR rate adapter (one
// simulation per SNR point), reporting the goodput ideal rate
// adaptation achieves for stock TCP and TCP/HACK. The paper's
// original method — try every fixed rate and take the envelope — is
// available as tcphack.Fig11Envelope. Also demonstrates §3.4's claim:
// HACK's loss recovery produces no decompression failures even on
// terrible links.
package main

import (
	"fmt"
	"sort"

	"tcphack"
)

func main() {
	opts := tcphack.ExperimentOptions{
		Warmup:  tcphack.Second,
		Measure: 2 * tcphack.Second,
		Seed:    7,
	}
	res := tcphack.Fig11(opts, []float64{0, 5, 10, 15, 20, 25, 30}, nil)

	snrs := make([]float64, 0, len(res.EnvelopeTCP))
	for snr := range res.EnvelopeTCP {
		snrs = append(snrs, snr)
	}
	sort.Float64s(snrs)

	fmt.Printf("%-8s %14s %14s %8s\n", "SNR dB", "TCP Mbps", "HACK Mbps", "gain")
	for _, snr := range snrs {
		tcp, hck := res.EnvelopeTCP[snr], res.EnvelopeHACK[snr]
		gain := "   -"
		if tcp > 1 {
			gain = fmt.Sprintf("%+.1f%%", (hck-tcp)/tcp*100)
		}
		fmt.Printf("%-8.0f %12.1f M %12.1f M %8s\n", snr, tcp, hck, gain)
	}
	fmt.Printf("\nmean improvement across usable SNRs: %.1f%% (paper: 12.6%%)\n",
		res.MeanImprovementPct)
}
