// Command bench2json converts `go test -bench` text output (read from
// stdin) into deterministic JSON on stdout, so benchmark results can
// be archived as CI artifacts and committed as points of the repo's
// performance trajectory (BENCH_<pr>.json files).
//
//	go test -run '^$' -bench BenchmarkCampaignRun -benchtime 1x -benchmem . \
//	    | go run ./cmd/bench2json > bench.json
//
// Every benchmark line becomes one entry carrying the iteration count
// and all reported metrics — the standard ns/op, B/op, allocs/op plus
// any custom b.ReportMetric units (points/s, row0_mbps, ...). Context
// lines (goos/goarch/pkg/cpu) are captured verbatim.
//
// With -compare the command gates instead of converting: it parses the
// same bench text from stdin, looks one benchmark's metric up in a
// previously archived report, and exits 1 when the current value
// regressed beyond the relative tolerance:
//
//	go test -run '^$' -bench 'BenchmarkScale$/stations=100' -benchtime 1x . \
//	    | go run ./cmd/bench2json -compare BENCH_7.json \
//	        -name 'BenchmarkScale/stations=100' \
//	        -against 'BenchmarkScaleHeap/stations=100' \
//	        -metric ns/event -rel 0.03
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full converted output.
type Report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline report JSON (a previous bench2json output) to gate against instead of converting")
	name := flag.String("name", "", "with -compare: benchmark name in the stdin bench text (sub-bench path, -N CPU suffix stripped)")
	against := flag.String("against", "", "with -compare: benchmark name in the baseline report (default: -name)")
	metric := flag.String("metric", "ns/event", "with -compare: metric unit to compare")
	rel := flag.Float64("rel", 0.03, "with -compare: allowed relative increase over the baseline value")
	flag.Parse()

	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				rep.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: skipping %q: %v\n", line, err)
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *compare != "" {
		os.Exit(runCompare(rep, *compare, *name, *against, *metric, *rel))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// runCompare gates one benchmark metric against an archived report.
// It returns the process exit code: 0 within tolerance, 1 regressed
// (or the lookup failed — a silent pass on a renamed benchmark would
// hollow the gate out).
func runCompare(rep Report, baselinePath, name, against, metric string, rel float64) int {
	if name == "" {
		fmt.Fprintln(os.Stderr, "bench2json: -compare requires -name")
		return 1
	}
	if against == "" {
		against = name
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %s: %v\n", baselinePath, err)
		return 1
	}
	cur, ok := findMetric(rep, name, metric)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench2json: %q %s not found on stdin\n", name, metric)
		return 1
	}
	want, ok := findMetric(base, against, metric)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench2json: %q %s not found in %s\n", against, metric, baselinePath)
		return 1
	}
	limit := want * (1 + rel)
	verdict := "OK"
	code := 0
	if cur > limit {
		verdict = "REGRESSED"
		code = 1
	}
	fmt.Printf("%s: %s %s = %g vs %s = %g in %s (limit %g, +%.0f%%)\n",
		verdict, name, metric, cur, against, want, baselinePath, limit, rel*100)
	return code
}

// findMetric looks a benchmark's metric up by name, ignoring the
// "-<GOMAXPROCS>" suffix go test appends, on both sides.
func findMetric(rep Report, name, metric string) (float64, bool) {
	for _, b := range rep.Benchmarks {
		if stripCPUSuffix(b.Name) != stripCPUSuffix(name) {
			continue
		}
		v, ok := b.Metrics[metric]
		return v, ok
	}
	return 0, false
}

// stripCPUSuffix removes a trailing "-<digits>" benchmark-name suffix.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if tail := name[i+1:]; tail != "" {
		for _, c := range tail {
			if c < '0' || c > '9' {
				return name
			}
		}
		return name[:i]
	}
	return name
}

// parseLine splits "BenchmarkX-8  3  42 ns/op  1.5 points/s ..." into
// name, iteration count, and (value, unit) metric pairs.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("want at least name, count, and one metric pair")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count %q", fields[1])
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd metric field count")
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value %q", rest[i])
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
