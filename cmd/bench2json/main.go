// Command bench2json converts `go test -bench` text output (read from
// stdin) into deterministic JSON on stdout, so benchmark results can
// be archived as CI artifacts and committed as points of the repo's
// performance trajectory (BENCH_<pr>.json files).
//
//	go test -run '^$' -bench BenchmarkCampaignRun -benchtime 1x -benchmem . \
//	    | go run ./cmd/bench2json > bench.json
//
// Every benchmark line becomes one entry carrying the iteration count
// and all reported metrics — the standard ns/op, B/op, allocs/op plus
// any custom b.ReportMetric units (points/s, row0_mbps, ...). Context
// lines (goos/goarch/pkg/cpu) are captured verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full converted output.
type Report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				rep.Context[k] = v
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: skipping %q: %v\n", line, err)
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine splits "BenchmarkX-8  3  42 ns/op  1.5 points/s ..." into
// name, iteration count, and (value, unit) metric pairs.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("want at least name, count, and one metric pair")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count %q", fields[1])
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd metric field count")
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value %q", rest[i])
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
