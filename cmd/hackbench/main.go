// Command hackbench regenerates the paper's tables and figures as
// text, running each experiment's scenario grid as a parallel
// campaign, and runs ad-hoc sweeps over any named scenario with
// CSV/JSON output. With no flags it runs every figure and table at
// the default (quick) durations; -measure/-runs scale up toward the
// paper's full methodology.
//
// Usage:
//
//	hackbench                    # everything, quick
//	hackbench -fig 10            # one figure
//	hackbench -table 2           # one table
//	hackbench -xval              # §4.2 cross-validation
//	hackbench -measure 10s -runs 5 -fig 10
//	hackbench -workers 4 -fig 11 # bound the worker pool
//	hackbench -fig 11 -fig11-method envelope   # legacy fixed-rate sweep
//
//	# ad-hoc campaign: sweep a named scenario, emit structured rows
//	hackbench -sweep ht150-stock -sweep-modes off,more-data \
//	    -sweep-clients 1,2,4,10 -sweep-adapters fixed,ideal,minstrel \
//	    -runs 3 -format csv
//
//	# profile the hot path (reproduces the PR 4 optimization workflow):
//	hackbench -sweep ht150-stock -sweep-modes off,more-data -runs 2 \
//	    -workers 1 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
//
//	# persist a sweep's aggregated statistics, then detect regressions:
//	hackbench -sweep sora-stock -sweep-modes off,more-data -runs 3 \
//	    -save-baseline baseline.json
//	hackbench -sweep sora-stock -sweep-modes off,more-data -runs 3 \
//	    -baseline baseline.json          # exits 1 on regression
//
//	# spatial PHY: sweep registered topologies as a campaign axis, or
//	# pin the channel geometry for the whole sweep
//	hackbench -sweep ht150-stock -sweep-modes off,more-data \
//	    -sweep-topologies 2bss-overlap,2bss-hidden -airtime
//	hackbench -sweep ht150-stock -geometry degenerate -format json
//
// The comparison aggregates rows with group-by (swept axes minus the
// seed by default; -groupby overrides) and flags any group whose
// goodput, retries, ROHC failures, or airtime moved in its worse
// direction beyond the per-metric tolerance (-tol adjusts).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tcphack"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1a, 1b, 9, 10, 11, 12, loss (empty = all)")
	table := flag.Int("table", 0, "table to regenerate: 1, 2, 3 (0 = all)")
	xval := flag.Bool("xval", false, "run only the §4.2 cross-validation")
	measure := flag.Duration("measure", 3*time.Second, "steady-state measurement window (simulated)")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup before measurement (simulated)")
	runs := flag.Int("runs", 1, "repetitions to average (paper used 5)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = serial)")
	sweep := flag.String("sweep", "", "run an ad-hoc campaign over this named scenario (see hacksim -list)")
	sweepModes := flag.String("sweep-modes", "", "comma-separated HACK modes to sweep (off,more-data,opportunistic,timer)")
	sweepClients := flag.String("sweep-clients", "", "comma-separated client counts to sweep")
	sweepLoss := flag.String("sweep-loss", "", "comma-separated uniform loss probabilities to sweep")
	sweepAdapters := flag.String("sweep-adapters", "", "comma-separated rate adapters to sweep (fixed, fixed:<rate>, ideal, argmax, minstrel)")
	sweepRates := flag.String("sweep-rates", "", "comma-separated PHY rates to sweep (a6..a54, mcs0..mcs7, mcs<i>x<streams>)")
	sweepTopologies := flag.String("sweep-topologies", "", "comma-separated registered topology names to sweep (default, degenerate, 2bss-hidden, 2bss-overlap, grid-3x3-dense)")
	geometry := flag.String("geometry", "", "pin the sweep's channel geometry: scalar (legacy channel), pathloss (default spatial), or degenerate (spatial pinned to scalar semantics)")
	fig11Method := flag.String("fig11-method", "ideal", "Figure 11 method: ideal, minstrel (one simulation per SNR), or envelope (legacy fixed-rate sweep)")
	format := flag.String("format", "text", "sweep output: text, csv, json")
	saveBaseline := flag.String("save-baseline", "", "aggregate the sweep and persist it as a baseline JSON file")
	baseline := flag.String("baseline", "", "compare the sweep against this baseline file; exit 1 on regression")
	groupBy := flag.String("groupby", "", "comma-separated axis columns to group the aggregation by (default: swept axes minus seed; with -baseline: the baseline's grouping)")
	tolFlag := flag.String("tol", "", "per-metric relative-tolerance overrides for -baseline, e.g. aggregate_mbps=0.10,retries=0.25")
	progress := flag.Bool("progress", false, "report sweep progress (rows completed / total) on stderr")
	traceRun := flag.Bool("trace", false, "with -sweep: write one JSONL flight-recorder trace per grid point (see -trace-dir)")
	traceDir := flag.String("trace-dir", "traces", "with -trace: directory for the per-point JSONL traces")
	airtime := flag.Bool("airtime", false, "with -sweep: attach the airtime ledger and emit airtime_*_pct / airtime_efficiency extra columns")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file (go tool pprof)")
	serve := flag.String("serve", "", "run the campaign daemon on this address (e.g. 127.0.0.1:8077)")
	stateDir := flag.String("state", "", "with -serve: jobs + memoization directory (empty = in-memory); with -dry-run: the store to probe for expected hits")
	leaseTTL := flag.Duration("lease", 30*time.Second, "with -serve: shard lease TTL before an unheartbeated shard is re-queued")
	shardSize := flag.Int("shard", 0, "grid points per distributed shard (0 = server default)")
	workerURL := flag.String("worker", "", "run a shard worker against this daemon URL")
	workerName := flag.String("worker-name", "", "with -worker: worker name for leases and liveness (default host-pid)")
	poll := flag.Duration("poll", 0, "with -worker: idle poll base interval, doubling with jitter up to -max-poll when the queue stays empty (0 = 200ms default)")
	maxPoll := flag.Duration("max-poll", 0, "with -worker: idle poll backoff ceiling (0 = 5s default)")
	retries := flag.Int("retries", 0, "daemon API attempts per request before giving up, for -worker/-submit/-status (0 = 5 default)")
	retryWait := flag.Duration("retry-wait", 0, "base backoff before the first daemon API retry, doubling with jitter (0 = 100ms default)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-attempt daemon API request timeout (0 = 15s default)")
	storeGC := flag.Bool("store-gc", false, "purge -state's memoization cache of entries from other code versions and quarantined corrupt files")
	gcDryRun := flag.Bool("gc-dry-run", false, "with -store-gc: count stale entries without deleting anything")
	server := flag.String("server", "", "daemon URL for -submit and -status")
	submit := flag.Bool("submit", false, "submit the -sweep campaign to -server instead of running it locally")
	wait := flag.Bool("wait", false, "with -submit: wait for completion and emit the merged rows per -format")
	minCached := flag.Float64("min-cached", 0, "with -submit -wait: exit 1 unless at least this fraction of grid points was served from the memoization store")
	status := flag.String("status", "", "with -server: print a job's status as JSON ('all' lists every job, 'metrics' prints the daemon snapshot)")
	dryRun := flag.Bool("dry-run", false, "with -sweep: print the planned grid with per-point fingerprints and expected cache hits, without simulating")
	flag.Parse()

	// Flag values consumed deep inside the run are validated before
	// profiling starts, so no later path needs to bail out past the
	// profile flushing.
	switch *fig11Method {
	case "ideal", "minstrel", "envelope":
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig11-method %q (want ideal, minstrel, or envelope)\n", *fig11Method)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// os.Exit bypasses defers, so every exit path funnels through here
	// to flush the profiles.
	exit := func(code int) {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runtime.GC() // report live + cumulative allocation accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			f.Close()
		}
		os.Exit(code)
	}

	o := tcphack.ExperimentOptions{
		Warmup:  tcphack.Duration(*warmup),
		Measure: tcphack.Duration(*measure),
		Runs:    *runs,
		Seed:    *seed,
		Workers: *workers,
	}

	// Distributed modes run before (and instead of) the local figure
	// and sweep paths; all of them funnel through exit.
	finish := func(code int, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		exit(code)
	}
	retry := tcphack.DistRetryPolicy{
		MaxAttempts: *retries,
		BaseDelay:   *retryWait,
		Timeout:     *reqTimeout,
	}
	switch {
	case *serve != "":
		finish(runServe(*serve, *stateDir, *leaseTTL, *shardSize))
	case *workerURL != "":
		finish(runWorker(*workerURL, *workerName, *poll, *maxPoll, retry))
	case *status != "":
		finish(runStatus(*server, *status, retry))
	case *storeGC:
		finish(runStoreGC(*stateDir, *gcDryRun))
	}

	if *sweep != "" {
		sw := sweepConfig{
			scenario: *sweep,
			modes:    *sweepModes, clients: *sweepClients, loss: *sweepLoss,
			adapters: *sweepAdapters, rates: *sweepRates,
			topologies:   *sweepTopologies,
			geometry:     *geometry,
			format:       *format,
			saveBaseline: *saveBaseline, baseline: *baseline,
			groupBy: *groupBy, tol: *tolFlag,
			progress: *progress,
			airtime:  *airtime,
		}
		if *traceRun {
			sw.traceDir = *traceDir
		}
		switch {
		case *dryRun:
			finish(runDryRun(sw, o, *stateDir, *shardSize))
		case *submit:
			// Traces are local artifacts; the wire protocol does not carry
			// tracer hooks (and must not, to keep shard results memoizable).
			if sw.traceDir != "" || sw.airtime {
				finish(2, fmt.Errorf("-trace and -airtime apply to local sweeps only, not -submit"))
			}
			// Geometry mutates the base configuration, which the wire
			// protocol cannot carry; topologies travel by name instead.
			if sw.geometry != "" {
				finish(2, fmt.Errorf("-geometry applies to local sweeps only, not -submit; sweep the degenerate topology instead"))
			}
			finish(runSubmit(sw, o, *server, *shardSize, *wait, *minCached, retry))
		}
		code, err := runSweep(sw, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		exit(code)
	}

	all := *fig == "" && *table == 0 && !*xval
	did := false
	run := func(name string, want bool, f func()) {
		if !(all || want) {
			return
		}
		did = true
		fmt.Printf("==================== %s ====================\n", name)
		f()
		fmt.Println()
	}

	run("Figure 1(a): theoretical goodput, 802.11a", *fig == "1a", func() { fig1a() })
	run("Figure 1(b): theoretical goodput, 802.11n", *fig == "1b", func() { fig1b() })
	run("Figure 9 + Table 1: SoRa testbed", *fig == "9" || *table == 1, func() { fig9(o) })
	run("Table 2: ACK accounting (fixed transfer)", *table == 2, func() { table2(o) })
	run("Table 3: TCP ACK time breakdown", *table == 3, func() { table3(o) })
	run("§4.2 cross-validation (ideal vs SoRa mode)", *xval, func() { xvalRun(o) })
	run("Figure 10: multi-client 802.11n", *fig == "10", func() { fig10(o) })
	run("Figure 11: SNR sweep with rate adaptation", *fig == "11", func() { fig11(o, *fig11Method) })
	run("Figure 12: theory vs simulation", *fig == "12", func() { fig12(o) })
	run("Loss resilience: loss × mode × adapter grid", *fig == "loss", func() { lossResilience(o) })

	if !did {
		fmt.Fprintln(os.Stderr, "nothing selected; see -h")
		exit(2)
	}
	exit(0)
}

// sweepConfig carries the -sweep flag set.
type sweepConfig struct {
	scenario                                string
	modes, clients, loss, adapters, rates   string
	topologies                              string
	geometry                                string
	format, saveBaseline, baseline, groupBy string
	tol                                     string
	progress                                bool
	traceDir                                string // non-empty: one JSONL per grid point
	airtime                                 bool
}

// runSweep executes an ad-hoc campaign over a named scenario and
// optionally persists/compares its aggregated statistics. The int is
// the process exit code: 0 clean, 1 when a baseline comparison found
// regressions.
func runSweep(sw sweepConfig, o tcphack.ExperimentOptions) (int, error) {
	switch sw.format {
	case "text", "csv", "json":
	default:
		return 0, fmt.Errorf("unknown format %q (want text, csv, or json)", sw.format)
	}
	base, ok := tcphack.LookupScenario(sw.scenario)
	if !ok {
		return 0, fmt.Errorf("unknown scenario %q; hacksim -list shows the registry", sw.scenario)
	}
	axes := tcphack.CampaignAxes{Seeds: tcphack.CampaignSeeds(o.Seed, o.Runs)}
	if sw.modes != "" {
		for _, s := range strings.Split(sw.modes, ",") {
			m, err := tcphack.ParseMode(strings.TrimSpace(s))
			if err != nil {
				return 0, err
			}
			axes.Modes = append(axes.Modes, m)
		}
	}
	if sw.clients != "" {
		for _, s := range strings.Split(sw.clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return 0, fmt.Errorf("bad client count %q", s)
			}
			axes.Clients = append(axes.Clients, n)
		}
	}
	if sw.loss != "" {
		for _, s := range strings.Split(sw.loss, ",") {
			p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return 0, fmt.Errorf("bad loss probability %q", s)
			}
			axes.Loss = append(axes.Loss, p)
		}
	}
	if sw.adapters != "" {
		for _, s := range strings.Split(sw.adapters, ",") {
			a := strings.TrimSpace(s)
			if err := tcphack.ParseRateAdapter(a); err != nil {
				return 0, err
			}
			axes.Adapters = append(axes.Adapters, a)
		}
	}
	if sw.rates != "" {
		for _, s := range strings.Split(sw.rates, ",") {
			r, err := tcphack.ParseNamedRate(strings.TrimSpace(s))
			if err != nil {
				return 0, err
			}
			axes.Rates = append(axes.Rates, r)
		}
	}
	if sw.topologies != "" {
		for _, s := range strings.Split(sw.topologies, ",") {
			name := strings.TrimSpace(s)
			if _, ok := tcphack.TopologyOption(name); !ok {
				return 0, fmt.Errorf("unknown topology %q (want one of %v)",
					name, tcphack.TopologyNames())
			}
			axes.Topologies = append(axes.Topologies, name)
		}
	}
	switch sw.geometry {
	case "":
	case "scalar":
		tcphack.WithGeometry(nil)(&base)
	case "pathloss":
		tcphack.WithPathLoss()(&base)
	case "degenerate":
		tcphack.WithGeometry(tcphack.DegenerateGeometry())(&base)
	default:
		return 0, fmt.Errorf("unknown geometry %q (want scalar, pathloss, or degenerate)", sw.geometry)
	}

	workload, err := tcphack.NamedCampaignWorkload(tcphack.ScenarioWorkload(sw.scenario))
	if err != nil {
		return 0, err
	}
	spec := tcphack.Campaign{
		Name:     sw.scenario,
		Base:     base,
		Axes:     axes,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Workers:  o.Workers,
		Workload: workload,
		Airtime:  sw.airtime,
	}
	if sw.traceDir != "" {
		if err := os.MkdirAll(sw.traceDir, 0o755); err != nil {
			return 0, err
		}
		spec.Trace = func(pt tcphack.CampaignPoint) tcphack.Tracer {
			f, err := os.Create(filepath.Join(sw.traceDir, pointTraceName(pt)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				return nil
			}
			return tcphack.NewTraceWriter(f)
		}
	}
	if sw.progress {
		// Progress calls arrive serialized, once per completed row; on
		// a large grid a per-row stderr write would dominate. Batch to
		// every ≥1% of the grid (capped at 1000 rows), always printing
		// the final count.
		last, step := 0, 0
		spec.Progress = func(done, total int) {
			if step == 0 {
				if step = total / 100; step < 1 {
					step = 1
				} else if step > 1000 {
					step = 1000
				}
			}
			if done != total && done < last+step {
				return
			}
			last = done
			fmt.Fprintf(os.Stderr, "\r%s/%s rows", groupInt(done), groupInt(total))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return emitAndCompare(sw, tcphack.RunCampaign(spec))
}

// pointTraceName derives a grid point's trace filename from its axis
// values: stable across runs, unique within a sweep (the index), and
// readable enough to find the cell you want.
func pointTraceName(pt tcphack.CampaignPoint) string {
	name := fmt.Sprintf("point-%04d_%v_c%d_seed%d", pt.Index, pt.Mode, pt.Clients, pt.Seed)
	if pt.Adapter != "" {
		name += "_" + strings.ReplaceAll(pt.Adapter, ":", "-")
	}
	if pt.LossPct != 0 {
		name += fmt.Sprintf("_loss%g", pt.LossPct)
	}
	if pt.SNRdB != 0 {
		name += fmt.Sprintf("_snr%g", pt.SNRdB)
	}
	return name + ".jsonl"
}

// groupInt formats a count with comma thousands grouping (1234567 →
// "1,234,567") for the human-facing progress and planning lines.
func groupInt(n int) string {
	s := strconv.Itoa(n)
	if n < 0 || len(s) <= 3 {
		return s
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// emitAndCompare writes a sweep's rows in sw.format and runs the
// baseline workflow when requested — shared by local sweeps and
// distributed -submit -wait so both emit byte-identical output.
func emitAndCompare(sw sweepConfig, results tcphack.CampaignResults) (int, error) {
	switch sw.format {
	case "json":
		if err := results.WriteJSON(os.Stdout); err != nil {
			return 0, err
		}
	case "csv":
		if err := results.WriteCSV(os.Stdout); err != nil {
			return 0, err
		}
	default:
		fmt.Printf("%-16s %-14s %8s %6s %-10s %9s %10s %8s %10s\n",
			"campaign", "mode", "clients", "seed", "adapter", "loss%", "Mbps", "busy%", "no-retry%")
		for _, r := range results {
			adapter := r.Adapter
			if adapter == "" {
				adapter = "fixed"
			}
			fmt.Printf("%-16s %-14s %8d %6d %-10s %9.2f %10.2f %8.1f %10.1f\n",
				r.Campaign, r.ModeName, r.Clients, r.Seed, adapter, r.LossPct,
				r.AggregateMbps, r.AirtimeBusyPct, r.NoRetryPct)
		}
	}

	if sw.saveBaseline == "" && sw.baseline == "" {
		return 0, nil
	}
	return baselineWorkflow(sw, results)
}

// baselineWorkflow aggregates the sweep and persists and/or compares
// it.
func baselineWorkflow(sw sweepConfig, rs tcphack.CampaignResults) (int, error) {
	table := tcphack.NewResultsTable(rs)

	var stored *tcphack.Baseline
	if sw.baseline != "" {
		var err error
		stored, err = tcphack.LoadBaselineFile(sw.baseline)
		if err != nil {
			return 0, err
		}
	}

	// Grouping: explicit -groupby wins; otherwise adopt the stored
	// baseline's grouping (the two aggregations must agree to be
	// comparable); otherwise the swept axes minus the seed.
	var groupBy []string
	switch {
	case sw.groupBy != "":
		for _, c := range strings.Split(sw.groupBy, ",") {
			groupBy = append(groupBy, strings.TrimSpace(c))
		}
	case stored != nil:
		groupBy = stored.GroupBy
	default:
		groupBy = table.SweptAxes()
	}
	agg, err := table.Aggregate(groupBy...)
	if err != nil {
		return 0, err
	}

	if sw.saveBaseline != "" {
		if err := tcphack.SaveBaselineFile(sw.saveBaseline, tcphack.NewBaseline(agg)); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "baseline saved to %s (%d group(s), grouped by %s)\n",
			sw.saveBaseline, len(agg.Groups), strings.Join(groupBy, ","))
	}
	if stored == nil {
		return 0, nil
	}

	tolerances, err := parseTolerances(sw.tol)
	if err != nil {
		return 0, err
	}
	cmp, err := tcphack.CompareBaseline(agg, stored, tolerances)
	if err != nil {
		return 0, err
	}
	// Text mode owns stdout; with machine-readable formats the rows
	// own stdout and the report must not corrupt them.
	report := os.Stdout
	if sw.format != "text" {
		report = os.Stderr
	}
	cmp.Report(report)
	// A lost baseline group is silently vanished coverage, so the gate
	// fails on it too, not only on metric regressions.
	if !cmp.Clean() {
		return 1, nil
	}
	return 0, nil
}

// parseTolerances applies -tol's metric=rel overrides on top of the
// defaults. Metrics not in DefaultTolerances get a higher-is-worse
// tolerance (the counter convention); prefix the value with "-" to
// mean lower-is-worse (e.g. extra.upload_mbps=-0.05). Metric names are
// validated against the results schema so a typo'd override errors
// instead of silently judging the real metric at its default.
func parseTolerances(spec string) (map[string]tcphack.Tolerance, error) {
	tol := tcphack.DefaultTolerances()
	if spec == "" {
		return tol, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tol entry %q (want metric=rel)", kv)
		}
		if !validMetricName(name) {
			return nil, fmt.Errorf("unknown -tol metric %q (want one of %s, per_client_mbps.<i>, or extra.<name>)",
				name, strings.Join(tcphack.ResultsScalarMetrics, ", "))
		}
		lowerWorse := strings.HasPrefix(val, "-")
		rel, err := strconv.ParseFloat(strings.TrimPrefix(val, "-"), 64)
		if err != nil || rel < 0 {
			return nil, fmt.Errorf("bad -tol value %q for %s", val, name)
		}
		t, exists := tol[name]
		if !exists {
			t = tcphack.Tolerance{}
			if !lowerWorse {
				t.Worse = tcphack.HigherIsWorse
			}
		}
		if lowerWorse {
			t.Worse = tcphack.LowerIsWorse
		}
		t.Rel = rel
		tol[name] = t
	}
	return tol, nil
}

func fig1a() {
	fmt.Printf("%-8s %10s %10s %10s %8s\n", "rate", "TCP", "TCP/HACK", "UDP", "gain")
	for _, r := range tcphack.Fig1a() {
		fmt.Printf("%-8v %8.1f M %8.1f M %8.1f M %+7.1f%%\n",
			r.Rate, r.TCPMbps, r.HACKMbps, r.UDPMbps, r.GainPct)
	}
	fmt.Println("paper: HACK curve above TCP at every rate; see Fig 1(a).")
}

func fig1b() {
	fmt.Printf("%-14s %6s %10s %10s %10s %8s\n", "rate", "batch", "TCP", "TCP/HACK", "UDP", "gain")
	for _, r := range tcphack.Fig1b() {
		fmt.Printf("%-14v %6d %8.1f M %8.1f M %8.1f M %+7.1f%%\n",
			r.Rate, r.BatchMPDUs, r.TCPMbps, r.HACKMbps, r.UDPMbps, r.GainPct)
	}
	fmt.Println("paper: ≈8% average gain < 100 Mbps, ≈20% at 600 Mbps.")
}

func fig9(o tcphack.ExperimentOptions) {
	cells := tcphack.Fig9(o)
	fmt.Printf("%-6s %-8s %14s %14s %12s\n", "proto", "clients", "per-client", "total Mbps", "no-retry %")
	for _, c := range cells {
		per := ""
		for i, v := range c.PerClientMbps {
			if i > 0 {
				per += "/"
			}
			per += fmt.Sprintf("%.1f", v)
		}
		fmt.Printf("%-6s %-8d %14s %14.1f %12.1f\n", c.Protocol, c.Clients, per, c.TotalMbps, c.NoRetryPct)
	}
	fmt.Println("paper Fig 9: UDP 26.5, HACK 25.0, TCP 19.4 Mbps (1 client);")
	fmt.Println("paper Tab 1: no-retry 99% UDP / 97-98% HACK / 86-88% TCP.")
}

func table2(o tcphack.ExperimentOptions) {
	rows := tcphack.Table2(o, 25<<20)
	fmt.Printf("%-18s %10s %12s %10s %12s %8s\n",
		"protocol", "ACK count", "ACK bytes", "ACKC cnt", "ACKC bytes", "ratio")
	for _, r := range rows {
		fmt.Printf("%-18s %10d %12d %10d %12d %8.1f\n",
			r.Protocol, r.NativeAcks, r.NativeAckBytes, r.CompressedAcks, r.CompressedBytes, r.CompressionRatio)
	}
	fmt.Println("paper: 9060/471120 native (TCP) vs 10 native + 9050 compressed/39478 B, ratio 12 (HACK).")
}

func table3(o tcphack.ExperimentOptions) {
	rows := tcphack.Table3(o, 25<<20)
	fmt.Printf("%-18s %12s %12s %12s %12s\n", "protocol", "TCP-ACK air", "ROHC air", "channel", "LL-ACK ovh")
	for _, r := range rows {
		b := r.Breakdown
		fmt.Printf("%-18s %10.2fms %10.2fms %10.2fms %10.2fms\n",
			r.Protocol, b.TCPAckAir.Millis(), b.ROHCAir.Millis(), b.ChannelWait.Millis(), b.LLAckOverhead.Millis())
	}
	fmt.Println("paper: TCP 70/0/1093/456 ms vs HACK 0.08/13.1/1.17/0.46 ms (25 MB).")
}

func xvalRun(o tcphack.ExperimentOptions) {
	fmt.Printf("%-8s %12s %12s %14s\n", "proto", "ideal Mbps", "SoRa Mbps", "recovered")
	for _, r := range tcphack.CrossValidation(o) {
		fmt.Printf("%-8s %12.1f %12.1f %14.1f\n", r.Protocol, r.IdealMbps, r.SoRaModeMbps, r.RecoveredMbps)
	}
	fmt.Println("paper: TCP 22.4 ideal vs 19.6 SoRa (22 recovered); HACK 28 vs 25.5 (27.7 recovered).")
}

func fig10(o tcphack.ExperimentOptions) {
	rows := tcphack.Fig10(o, nil)
	fmt.Printf("%-8s %-16s %14s %8s %10s\n", "clients", "protocol", "aggregate", "stddev", "vs TCP")
	for _, r := range rows {
		gain := ""
		if r.GainOverTCPPct != 0 {
			gain = fmt.Sprintf("%+.1f%%", r.GainOverTCPPct)
		}
		fmt.Printf("%-8d %-16s %12.1f M %8.2f %10s\n", r.Clients, r.Protocol, r.AggregateMbps, r.StdDev, gain)
	}
	fmt.Println("paper: MORE DATA HACK gains 15% (1 client) → 22% (10 clients); opportunistic ≈ stock.")
}

func fig11(o tcphack.ExperimentOptions, method string) {
	var res tcphack.Fig11Result
	switch method {
	case "ideal", "minstrel":
		res = tcphack.Fig11Adaptive(o, nil, nil, method)
	case "envelope":
		res = tcphack.Fig11Envelope(o, nil, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig11-method %q (want ideal, minstrel, or envelope)\n", method)
		os.Exit(2)
	}
	fmt.Printf("method: %s\n", res.Method)
	snrs := make([]float64, 0, len(res.EnvelopeTCP))
	for snr := range res.EnvelopeTCP {
		snrs = append(snrs, snr)
	}
	sort.Float64s(snrs)
	fmt.Printf("%-8s %14s %14s %10s\n", "SNR dB", "TCP envelope", "HACK envelope", "gain")
	for _, snr := range snrs {
		tcp, hck := res.EnvelopeTCP[snr], res.EnvelopeHACK[snr]
		gain := ""
		if tcp > 1 {
			gain = fmt.Sprintf("%+.1f%%", (hck-tcp)/tcp*100)
		}
		fmt.Printf("%-8.0f %12.1f M %12.1f M %10s\n", snr, tcp, hck, gain)
	}
	fmt.Printf("mean envelope improvement: %.1f%% (paper: 12.6%%)\n", res.MeanImprovementPct)
}

// lossResilience prints the loss-resilience grid: goodput vs uniform
// loss for stock TCP and HACK MORE-DATA under the threshold (ideal)
// and expected-goodput (argmax) oracles, with the §4.3 health counter
// per cell (must be zero everywhere).
func lossResilience(o tcphack.ExperimentOptions) {
	rows := tcphack.LossResilience(o, nil, nil)
	fmt.Printf("%8s  %-10s %-8s %14s %10s %14s %9s\n",
		"loss", "mode", "adapter", "goodput (Mbps)", "retries", "rohc failures", "air eff")
	for _, r := range rows {
		fmt.Printf("%7.1f%%  %-10v %-8s %8.2f ±%4.2f %10.0f %14.0f %9.3f\n",
			r.LossPct, r.Mode, r.Adapter, r.GoodputMbps, r.GoodputStdDev,
			r.Retries, r.DecompFailures, r.AirtimeEff)
	}
	fmt.Println("air eff: useful airtime / total busy airtime (airtime ledger; higher is better).")
}

func fig12(o tcphack.ExperimentOptions) {
	rows := tcphack.Fig12(o, nil)
	fmt.Printf("%-14s %10s %10s %10s %10s %9s %9s\n",
		"rate", "th TCP", "th HACK", "sim TCP", "sim HACK", "th gain", "sim gain")
	for _, r := range rows {
		fmt.Printf("%-14v %8.1f M %8.1f M %8.1f M %8.1f M %+8.1f%% %+8.1f%%\n",
			r.Rate, r.TheoryTCP, r.TheoryHACK, r.SimTCP, r.SimHACK, r.TheoGainPct, r.SimGainPct)
	}
	fmt.Println("paper: simulated gain (14% at 150 Mbps) exceeds the analytical 7% — HACK also removes collisions.")
}

// validMetricName accepts the results schema's metric columns: the
// fixed scalar set plus the expanded per-client and Extra namespaces.
func validMetricName(name string) bool {
	for _, m := range tcphack.ResultsScalarMetrics {
		if name == m {
			return true
		}
	}
	return strings.HasPrefix(name, "per_client_mbps.") || strings.HasPrefix(name, "extra.")
}
