package main

import "testing"

func TestGroupInt(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want string
	}{
		{0, "0"}, {7, "7"}, {999, "999"}, {1000, "1,000"},
		{12345, "12,345"}, {123456, "123,456"}, {1234567, "1,234,567"},
		{1_000_000_000, "1,000,000,000"}, {-42, "-42"},
	} {
		if got := groupInt(tc.n); got != tc.want {
			t.Errorf("groupInt(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
