// Distributed-campaign modes: -serve runs the campaign-as-a-service
// daemon, -worker a shard worker, -submit posts the -sweep flags as a
// job, -status inspects jobs/metrics, -store-gc purges stale
// memoization entries, and -dry-run prints the planned grid with
// per-point fingerprints and expected memoization hits without
// simulating. All long-running modes drain gracefully on
// SIGINT/SIGTERM: the daemon stops accepting requests and flushes
// in-flight completions; a worker finishes and delivers the shard it
// holds before exiting — a second SIGINT hard-aborts the worker (the
// streamed points are already checkpointed on the server, so recovery
// costs only the unstreamed remainder of the shard).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcphack"
)

// runServe runs the daemon until SIGINT/SIGTERM, persisting jobs and
// completed rows under stateDir (memory-only when empty).
func runServe(addr, stateDir string, leaseTTL time.Duration, shardSize int) (int, error) {
	srv, err := tcphack.NewDistServer(tcphack.DistServerConfig{
		StateDir:  stateDir,
		LeaseTTL:  leaseTTL,
		ShardSize: shardSize,
	})
	if err != nil {
		return 0, err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Lease expiry is otherwise evaluated lazily on API traffic; the
	// sweeper keeps re-queues timely when every worker has vanished.
	go func() {
		t := time.NewTicker(leaseTTL)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				srv.Jobs()
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hackbench daemon listening on %s (state %q, lease %v)\n",
		addr, stateDir, leaseTTL)
	select {
	case err := <-errc:
		return 0, err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "hackbench daemon draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return 0, err
	}
	return 0, nil
}

// runWorker runs the shard-pulling loop. The first SIGINT/SIGTERM
// drains gracefully — the in-flight shard is finished and delivered; a
// second signal hard-aborts (the SIGKILL path the chaos tests
// exercise): the in-flight point is abandoned, the lease expires, and
// another worker re-simulates only the points this one had not yet
// streamed.
func runWorker(url, name string, poll, maxPoll time.Duration, retry tcphack.DistRetryPolicy) (int, error) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	kill := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "worker: draining — delivering the shard in flight (^C again to abort it)")
			cancel()
		case <-done:
			return
		}
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "worker: hard abort — abandoning the shard to lease expiry")
			close(kill)
		case <-done:
		}
	}()

	retry.Seed = name
	retry.OnRetry = func(path string, attempt int, err error) {
		fmt.Fprintf(os.Stderr, "worker %s: retrying %s (attempt %d failed: %v)\n", name, path, attempt, err)
	}
	w := &tcphack.DistWorker{
		Client:  tcphack.DistClient{BaseURL: url, Retry: retry},
		Name:    name,
		Poll:    poll,
		MaxPoll: maxPoll,
		Kill:    kill,
		OnShard: func(grant tcphack.DistLeaseGrant, dup bool) {
			note := ""
			if dup {
				note = " (duplicate; another delivery won)"
			}
			fmt.Fprintf(os.Stderr, "worker %s: job %s shard %d done, %d point(s)%s\n",
				name, grant.Job, grant.Shard, len(grant.Indexes), note)
		},
		OnAbandon: func(grant tcphack.DistLeaseGrant, err error) {
			fmt.Fprintf(os.Stderr, "worker %s: abandoning job %s shard %d to lease expiry: %v\n",
				name, grant.Job, grant.Shard, err)
		},
	}
	fmt.Fprintf(os.Stderr, "hackbench worker %s pulling from %s\n", name, url)
	if err := w.Run(ctx); err != nil {
		return 0, err
	}
	return 0, nil
}

// runStoreGC purges (or, dry-run, counts) memoization entries a -state
// store can never serve again: entries written by another code version
// — the version salts every fingerprint, so no current plan probes
// them — plus quarantined corrupt files.
func runStoreGC(stateDir string, dryRun bool) (int, error) {
	if stateDir == "" {
		return 0, fmt.Errorf("-store-gc needs -state <dir>")
	}
	dir := filepath.Join(stateDir, "cache")
	n, err := tcphack.PurgeDistStore(dir, tcphack.SimCodeVersion, dryRun)
	if err != nil {
		return 0, err
	}
	verb := "purged"
	if dryRun {
		verb = "would purge"
	}
	fmt.Printf("%s %s stale entr(ies) from %s (keeping code version %s)\n",
		verb, groupInt(n), dir, tcphack.SimCodeVersion)
	return 0, nil
}

// runStatus prints a job's status ("all" lists every job, "metrics"
// prints the metrics snapshot) as indented JSON.
func runStatus(server, target string, retry tcphack.DistRetryPolicy) (int, error) {
	if server == "" {
		return 0, fmt.Errorf("-status needs -server <url>")
	}
	c := tcphack.DistClient{BaseURL: server, Retry: retry}
	var v any
	var err error
	switch target {
	case "all":
		v, err = c.Jobs()
	case "metrics":
		v, err = c.Metrics()
	default:
		v, err = c.Status(target)
	}
	if err != nil {
		return 0, err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return 0, enc.Encode(v)
}

// runSubmit posts the sweep as a job; with wait it polls to
// completion, fetches the merged rows, and feeds them through the same
// emit/baseline path a local sweep uses — output is byte-identical.
// minCached > 0 additionally gates on the memoization hit fraction
// (the repeated-sweep CI assertion).
func runSubmit(sw sweepConfig, o tcphack.ExperimentOptions, server string,
	shardSize int, wait bool, minCached float64, retry tcphack.DistRetryPolicy) (int, error) {
	if server == "" {
		return 0, fmt.Errorf("-submit needs -server <url>")
	}
	switch sw.format {
	case "text", "csv", "json":
	default:
		return 0, fmt.Errorf("unknown format %q (want text, csv, or json)", sw.format)
	}
	spec, err := wireFromSweep(sw, o)
	if err != nil {
		return 0, err
	}
	c := tcphack.DistClient{BaseURL: server, Retry: retry}
	st, err := c.Submit(spec, shardSize)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "job %s submitted: %s point(s), %s cached, %s shard(s)\n",
		st.ID, groupInt(st.TotalPoints), groupInt(st.CachedPoints), groupInt(st.ShardsTotal))
	if !wait {
		fmt.Println(st.ID)
		return 0, nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if st, err = c.WaitDone(ctx, st.ID, 0); err != nil {
		return 0, err
	}
	rows, err := c.Rows(st.ID)
	if err != nil {
		return 0, err
	}
	code, err := emitAndCompare(sw, rows)
	if err != nil {
		return code, err
	}
	if minCached > 0 {
		frac := float64(st.CachedPoints) / float64(st.TotalPoints)
		if frac < minCached {
			fmt.Fprintf(os.Stderr, "memoization gate: %d/%d points cached (%.0f%%), want ≥ %.0f%%\n",
				st.CachedPoints, st.TotalPoints, frac*100, minCached*100)
			return 1, nil
		}
		fmt.Fprintf(os.Stderr, "memoization gate: %d/%d points cached (%.0f%%) — ok\n",
			st.CachedPoints, st.TotalPoints, frac*100)
	}
	return code, nil
}

// runDryRun prints the planned grid — per-point fingerprints and
// expected memoization hits against the -state store — without
// simulating anything.
func runDryRun(sw sweepConfig, o tcphack.ExperimentOptions, stateDir string, shardSize int) (int, error) {
	spec, err := wireFromSweep(sw, o)
	if err != nil {
		return 0, err
	}
	var store tcphack.DistStore
	if stateDir != "" {
		if store, err = tcphack.NewDistDirStore(filepath.Join(stateDir, "cache")); err != nil {
			return 0, err
		}
	}
	plan, err := tcphack.NewDistPlan(spec, store, tcphack.SimCodeVersion, shardSize)
	if err != nil {
		return 0, err
	}
	fmt.Printf("campaign %s: %s point(s), %s shard(s), salt %s\n",
		spec.DisplayName(), groupInt(len(plan.Points)), groupInt(len(plan.Shards)), tcphack.SimCodeVersion)
	fmt.Printf("%5s %-14s %8s %6s %10s %-10s %7s %6s %-16s %s\n",
		"index", "mode", "clients", "seed", "rate_kbps", "adapter", "loss%", "snr", "fingerprint", "cached")
	for _, pp := range plan.Points {
		av := pp.Point.AxisValues()
		cached := ""
		if pp.Cached {
			cached = "hit"
		}
		fmt.Printf("%5d %-14s %8s %6s %10s %-10s %7s %6s %-16s %s\n",
			pp.Index, av["mode"], av["clients"], av["seed"], av["rate_kbps"],
			av["adapter"], av["loss_pct"], av["snr_db"], pp.Fingerprint, cached)
	}
	fmt.Printf("expected cache hits: %s/%s", groupInt(plan.Cached), groupInt(len(plan.Points)))
	if len(plan.Points) > 0 {
		fmt.Printf(" (%.0f%%)", 100*float64(plan.Cached)/float64(len(plan.Points)))
	}
	fmt.Println()
	return 0, nil
}

// wireFromSweep converts the -sweep flag set into a wire-form campaign
// spec, validating it by materializing once locally.
func wireFromSweep(sw sweepConfig, o tcphack.ExperimentOptions) (tcphack.WireCampaign, error) {
	w := tcphack.WireCampaign{
		Scenario: sw.scenario,
		Axes: tcphack.WireCampaignAxes{
			Modes:      splitCSV(sw.modes),
			Rates:      splitCSV(sw.rates),
			Adapters:   splitCSV(sw.adapters),
			Topologies: splitCSV(sw.topologies),
			Seeds:      tcphack.CampaignSeeds(o.Seed, o.Runs),
		},
		Warmup:  o.Warmup,
		Measure: o.Measure,
	}
	for _, s := range splitCSV(sw.clients) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return w, fmt.Errorf("bad client count %q", s)
		}
		w.Axes.Clients = append(w.Axes.Clients, n)
	}
	for _, s := range splitCSV(sw.loss) {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return w, fmt.Errorf("bad loss probability %q", s)
		}
		w.Axes.Loss = append(w.Axes.Loss, p)
	}
	if _, err := w.Spec(); err != nil {
		return w, err
	}
	return w, nil
}

// splitCSV splits a comma-separated flag into trimmed fields ("" → no
// fields).
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(f))
	}
	return out
}
