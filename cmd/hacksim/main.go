// Command hacksim runs a single simulated scenario and prints goodput
// and MAC statistics — the quickest way to poke at the system.
// Scenarios come from the named registry (-scenario, -list) or are
// composed from flags via the builder options.
//
// Examples:
//
//	hacksim                                  # stock TCP, 802.11n, 1 client
//	hacksim -list                            # enumerate named scenarios
//	hacksim -scenario ht150-moredata -clients 4
//	hacksim -mode more-data -clients 4
//	hacksim -phy a54 -mode more-data -sora   # the SoRa testbed model
//	hacksim -mcs 3 -snr 18                   # lossy mid-rate link
//	hacksim -scenario ht150-moredata -adapter minstrel -snr 25
//	                                         # rate adaptation on a noisy link
//	hacksim -adapter minstrel -snr 18 -rate-stats
//	                                         # print the learned per-rate table
//	hacksim -scenario ht150-upload -mode more-data
//	                                         # registered upload workload
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcphack"
)

func main() {
	scenarioFlag := flag.String("scenario", "", "named scenario from the registry (see -list)")
	list := flag.Bool("list", false, "list named scenarios and exit")
	modeFlag := flag.String("mode", "off", "HACK mode: off, more-data, opportunistic, timer")
	adapter := flag.String("adapter", "", "rate adapter: fixed, fixed:<rate>, ideal, argmax, minstrel")
	phyFlag := flag.String("phy", "ht", "PHY: ht (802.11n) or a54 (802.11a @54)")
	mcs := flag.Int("mcs", 7, "HT MCS index 0-7 (802.11n)")
	clients := flag.Int("clients", 1, "number of downloading clients")
	dur := flag.Duration("dur", 5*time.Second, "simulated duration")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup before the measurement window")
	snr := flag.Float64("snr", 0, "fixed SNR in dB (0 = lossless channel)")
	loss := flag.Float64("loss", 0, "uniform per-frame loss probability (0 = lossless)")
	sora := flag.Bool("sora", false, "apply the SoRa testbed artifacts (late LL ACKs, AP sender)")
	seed := flag.Int64("seed", 1, "RNG seed")
	upload := flag.Bool("upload", false, "upload instead of download")
	rateStats := flag.Bool("rate-stats", false, "print the Minstrel adapters' learned per-rate statistics")
	traceFlag := flag.String("trace", "", "write a JSONL flight-recorder trace to this file")
	airtime := flag.Bool("airtime", false, "print the per-station airtime ledger")
	validateTrace := flag.String("validate-trace", "", "schema-check a JSONL trace file and exit")
	flag.Parse()

	if *validateTrace != "" {
		f, err := os.Open(*validateTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		count, err := tcphack.ValidateTraceJSONL(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *validateTrace, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d events, schema OK\n", *validateTrace, count)
		return
	}

	if *list {
		for _, e := range tcphack.Scenarios() {
			fmt.Printf("%-22s %s\n", e.Name, e.Desc)
		}
		return
	}

	mode, err := tcphack.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := tcphack.ParseRateAdapter(*adapter); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Compose the scenario: a named registry entry or a flag-built
	// preset, specialized by the per-axis options.
	var opts []tcphack.ScenarioOption
	if *scenarioFlag == "" {
		switch *phyFlag {
		case "ht":
			opts = append(opts, tcphack.With80211n(), tcphack.WithRate(tcphack.HTRate(*mcs, 1)))
		case "a54":
			opts = append(opts, tcphack.WithRate(tcphack.Rate54Mbps),
				tcphack.WithWire(500_000, tcphack.Millisecond))
		default:
			fmt.Fprintf(os.Stderr, "unknown phy %q\n", *phyFlag)
			os.Exit(2)
		}
		opts = append(opts, tcphack.WithMode(mode))
	}
	if *scenarioFlag == "" {
		opts = append(opts, tcphack.WithClients(*clients), tcphack.WithSeed(*seed),
			tcphack.WithRateAdapter(*adapter))
	} else {
		// A named scenario keeps its registered values; only flags the
		// user explicitly set override it (-phy conflicts with the name
		// itself, which picks the PHY).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mode":
				opts = append(opts, tcphack.WithMode(mode))
			case "adapter":
				opts = append(opts, tcphack.WithRateAdapter(*adapter))
			case "mcs":
				opts = append(opts, tcphack.WithRate(tcphack.HTRate(*mcs, 1)))
			case "clients":
				opts = append(opts, tcphack.WithClients(*clients))
			case "seed":
				opts = append(opts, tcphack.WithSeed(*seed))
			case "phy":
				fmt.Fprintln(os.Stderr, "-phy cannot be combined with -scenario (the name picks the PHY)")
				os.Exit(2)
			}
		})
	}
	if *sora {
		// Only the testbed artifacts (late LL ACKs, AP-resident sender),
		// leaving the -phy choice intact — the escape-hatch option.
		opts = append(opts, tcphack.WithConfig(func(c *tcphack.NetworkConfig) {
			c.AckTurnaround = 37 * tcphack.Microsecond
			c.AckTimeoutSlack = 80 * tcphack.Microsecond
			c.WireRateKbps = 0
		}))
	}
	if *snr != 0 {
		opts = append(opts, tcphack.WithSNR(*snr))
	}
	if *loss != 0 {
		opts = append(opts, tcphack.WithUniformLoss(*loss))
	}

	var cfg tcphack.NetworkConfig
	if *scenarioFlag != "" {
		var ok bool
		cfg, ok = tcphack.LookupScenario(*scenarioFlag, opts...)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; -list shows the registry\n", *scenarioFlag)
			os.Exit(2)
		}
		mode = cfg.Mode
	} else {
		cfg = tcphack.NewScenario(opts...)
	}

	// Traffic: the -upload flag forces uploads; otherwise a named
	// scenario's registered workload kind applies ("" = download).
	workloadKind := tcphack.ScenarioWorkload(*scenarioFlag)
	if *upload {
		workloadKind = "upload"
	}
	startFlows, err := tcphack.NamedCampaignWorkload(workloadKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Observability: a JSONL trace writer and/or the airtime ledger,
	// fanned out by TraceMulti. Attaching them cannot perturb the run.
	var tw *tcphack.TraceWriter
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tw = tcphack.NewTraceWriter(f)
	}
	var ledger *tcphack.AirtimeLedger
	if *airtime {
		ledger = tcphack.NewAirtimeLedger()
	}
	if tw != nil || ledger != nil {
		var trs []tcphack.Tracer
		if tw != nil {
			trs = append(trs, tw)
		}
		if ledger != nil {
			trs = append(trs, ledger)
		}
		cfg.Tracer = tcphack.TraceMulti(trs...)
	}

	n := tcphack.NewNetwork(cfg)
	startFlows(n, tcphack.CampaignPoint{Clients: cfg.Clients})
	n.Run(tcphack.Duration(*warmup))
	for _, f := range n.Flows {
		f.Goodput.MarkWindow(n.Sched.Now())
	}
	n.Run(tcphack.Duration(*warmup) + tcphack.Duration(*dur))

	adapterName := cfg.RateAdapter
	if adapterName == "" {
		adapterName = "fixed"
	}
	fmt.Printf("%v  mode=%v  adapter=%s  %d client(s)  window=%v\n",
		cfg.DataRate, mode, adapterName, cfg.Clients, *dur)
	var total float64
	for i, f := range n.Flows {
		mbps := f.Goodput.WindowMbps(n.Sched.Now())
		total += mbps
		dir := "down"
		if f.Upload {
			dir = "up"
		}
		fmt.Printf("  flow %d (client %d, %-4s): %7.2f Mbps\n", i, f.Client, dir, mbps)
	}
	fmt.Printf("  aggregate:               %7.2f Mbps\n\n", total)

	ap := n.AP.MAC.Stats
	fmt.Printf("AP MAC: frames=%d mpdus=%d delivered=%d retries=%d expired=%d timeouts=%d bars=%d qdrops=%d\n",
		ap.FramesSent, ap.MPDUsSent, ap.MPDUsDelivered, ap.Retries, ap.Expired, ap.AckTimeouts, ap.BARsSent, ap.QueueDrops)
	fmt.Printf("medium: tx=%d collided=%d busy=%.1f%%\n",
		n.Medium.TxCount, n.Medium.CollidedTx,
		100*float64(n.Medium.AirtimeBusy)/float64(n.Sched.Now()))
	if mode != tcphack.ModeOff {
		var acct = n.Clients[0].Driver.Acct
		who := "client0"
		if workloadKind == "upload" {
			acct = n.AP.Driver.Acct
			who = "AP"
		}
		fmt.Printf("HACK (%s): native=%d compressed=%d (%.1f B/ACK, ratio %.1f) decomp_failures=%d dups=%d\n",
			who, acct.NativeAcks, acct.CompressedAcks,
			float64(acct.CompressedBytes)/float64(max(acct.CompressedAcks, 1)),
			acct.CompressionRatio(),
			n.DecompFailures(), n.AP.Driver.DecompDuplicates+n.Clients[0].Driver.DecompDuplicates)
	}

	if *rateStats {
		printRateStats(n, cfg.Clients)
	}

	if ledger != nil {
		printAirtime(ledger.Snapshot(n.Sched.Now()))
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events -> %s\n", tw.Count(), *traceFlag)
	}
}

// printAirtime renders the airtime ledger as per-station percentages
// of elapsed simulated time, and exits nonzero if the ledger failed
// to account for every nanosecond (a bug, never expected).
func printAirtime(rep tcphack.AirtimeReport) {
	pct := func(d tcphack.Duration) float64 {
		if rep.Elapsed == 0 {
			return 0
		}
		return 100 * float64(d) / float64(rep.Elapsed)
	}
	fmt.Printf("\nairtime (elapsed %.3fs, busy %.1f%%, idle %.1f%%, efficiency %.3f):\n",
		float64(rep.Elapsed)/float64(tcphack.Second), pct(rep.Busy()), pct(rep.Idle),
		rep.Efficiency())
	fmt.Printf("  %-6s %8s %9s %7s %8s %7s\n", "sta", "data", "wifi-ack", "bar", "tcp-ack", "retry")
	row := func(name string, b tcphack.AirtimeBuckets) {
		fmt.Printf("  %-6s %7.2f%% %8.2f%% %6.2f%% %7.2f%% %6.2f%%\n",
			name, pct(b.Data), pct(b.WifiAck), pct(b.BAR), pct(b.TCPAck), pct(b.Retry))
	}
	row("all", rep.Total)
	for _, s := range rep.Stations {
		row(fmt.Sprintf("%d", s.Station), s.Buckets)
	}
	if !rep.Conserved() {
		fmt.Fprintf(os.Stderr, "airtime: conservation violated: busy %d + idle %d != elapsed %d\n",
			rep.Busy(), rep.Idle, rep.Elapsed)
		os.Exit(1)
	}
}

// printRateStats dumps every Minstrel adapter's learned per-rate table
// (mac.Minstrel.Snapshot): the AP's view toward each client and each
// client's view toward the AP, when those stations run Minstrel and
// have learned anything.
func printRateStats(n *tcphack.Network, clients int) {
	printed := false
	dump := func(who string, stats []tcphack.RateStats) {
		if stats == nil {
			return
		}
		printed = true
		fmt.Printf("\nminstrel %s:\n", who)
		fmt.Printf("  %-14s %8s %12s %10s %10s %5s\n", "rate", "prob", "ewma tput", "attempts", "success", "best")
		for _, s := range stats {
			best := ""
			if s.Best {
				best = "*"
			}
			fmt.Printf("  %-14v %8.3f %10.1f M %10d %10d %5s\n",
				s.Rate, s.Prob, s.TputKbps/1000, s.Attempts, s.Successes, best)
		}
	}
	for ci := 0; ci < clients; ci++ {
		dump(fmt.Sprintf("AP -> client %d", ci), n.APMinstrelStats(ci))
		dump(fmt.Sprintf("client %d -> AP", ci), n.ClientMinstrelStats(ci))
	}
	if !printed {
		fmt.Println("\nminstrel: no per-rate statistics (no station runs the minstrel adapter, or no frames flowed)")
	}
}
