// Command hacksim runs a single simulated scenario and prints goodput
// and MAC statistics — the quickest way to poke at the system.
//
// Examples:
//
//	hacksim                                  # stock TCP, 802.11n, 1 client
//	hacksim -mode more-data -clients 4
//	hacksim -phy a54 -mode more-data -sora   # the SoRa testbed model
//	hacksim -mcs 3 -snr 18                   # lossy mid-rate link
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

func main() {
	modeFlag := flag.String("mode", "off", "HACK mode: off, more-data, opportunistic, timer")
	phyFlag := flag.String("phy", "ht", "PHY: ht (802.11n) or a54 (802.11a @54)")
	mcs := flag.Int("mcs", 7, "HT MCS index 0-7 (802.11n)")
	clients := flag.Int("clients", 1, "number of downloading clients")
	dur := flag.Duration("dur", 5*time.Second, "simulated duration")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup before the measurement window")
	snr := flag.Float64("snr", 0, "fixed SNR in dB (0 = lossless channel)")
	sora := flag.Bool("sora", false, "apply the SoRa testbed artifacts (late LL ACKs, AP sender)")
	seed := flag.Int64("seed", 1, "RNG seed")
	upload := flag.Bool("upload", false, "upload instead of download")
	flag.Parse()

	var mode hack.Mode
	switch *modeFlag {
	case "off":
		mode = hack.ModeOff
	case "more-data":
		mode = hack.ModeMoreData
	case "opportunistic":
		mode = hack.ModeOpportunistic
	case "timer":
		mode = hack.ModeTimer
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	cfg := node.Config{Seed: *seed, Mode: mode, Clients: *clients}
	switch *phyFlag {
	case "ht":
		cfg.DataRate = phy.HTRate(*mcs, 1)
		cfg.AckRate = phy.Rate{}
		cfg.Aggregation = true
		cfg.TXOPLimit = 4 * sim.Millisecond
		cfg.WireRateKbps = 500_000
	case "a54":
		cfg.DataRate = phy.RateA54
		cfg.WireRateKbps = 500_000
	default:
		fmt.Fprintf(os.Stderr, "unknown phy %q\n", *phyFlag)
		os.Exit(2)
	}
	if *sora {
		cfg.AckTurnaround = 37 * sim.Microsecond
		cfg.AckTimeoutSlack = 80 * sim.Microsecond
		cfg.WireRateKbps = 0 // AP-resident sender
	}
	if *snr != 0 {
		em := channel.DefaultSNRModel()
		em.SNROverrideDB = snr
		cfg.Err = em
	}

	n := node.New(cfg)
	for ci := 0; ci < *clients; ci++ {
		stagger := sim.Duration(ci) * 50 * sim.Millisecond
		if *upload {
			n.StartUpload(ci, 0, stagger)
		} else {
			n.StartDownload(ci, 0, stagger)
		}
	}
	n.Run(sim.Duration(*warmup))
	for _, f := range n.Flows {
		f.Goodput.MarkWindow(n.Sched.Now())
	}
	n.Run(sim.Duration(*warmup) + sim.Duration(*dur))

	fmt.Printf("%v  mode=%v  %d client(s)  window=%v\n", cfg.DataRate, mode, *clients, *dur)
	var total float64
	for i, f := range n.Flows {
		mbps := f.Goodput.WindowMbps(n.Sched.Now())
		total += mbps
		fmt.Printf("  flow %d (client %d): %7.2f Mbps\n", i, f.Client, mbps)
	}
	fmt.Printf("  aggregate:          %7.2f Mbps\n\n", total)

	ap := n.AP.MAC.Stats
	fmt.Printf("AP MAC: frames=%d mpdus=%d delivered=%d retries=%d expired=%d timeouts=%d bars=%d qdrops=%d\n",
		ap.FramesSent, ap.MPDUsSent, ap.MPDUsDelivered, ap.Retries, ap.Expired, ap.AckTimeouts, ap.BARsSent, ap.QueueDrops)
	fmt.Printf("medium: tx=%d collided=%d busy=%.1f%%\n",
		n.Medium.TxCount, n.Medium.CollidedTx,
		100*float64(n.Medium.AirtimeBusy)/float64(n.Sched.Now()))
	if mode != hack.ModeOff {
		var acct = n.Clients[0].Driver.Acct
		who := "client0"
		if *upload {
			acct = n.AP.Driver.Acct
			who = "AP"
		}
		fmt.Printf("HACK (%s): native=%d compressed=%d (%.1f B/ACK, ratio %.1f) decomp_failures=%d dups=%d\n",
			who, acct.NativeAcks, acct.CompressedAcks,
			float64(acct.CompressedBytes)/float64(max(acct.CompressedAcks, 1)),
			acct.CompressionRatio(),
			n.DecompFailures(), n.AP.Driver.DecompDuplicates+n.Clients[0].Driver.DecompDuplicates)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
