module tcphack

go 1.24
