// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls
// out. Each benchmark reports the headline quantity of its experiment
// via b.ReportMetric, so `go test -bench=. -benchmem` reprints the
// paper's results. cmd/hackbench prints the same data as full tables.
package tcphack

import (
	"testing"

	"tcphack/internal/experiments"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/sim"
)

// benchOpts keeps per-iteration cost moderate; results stabilize at
// these windows (the paper used 120 s runs; goodput differences
// already resolve in a few simulated seconds of steady state).
var benchOpts = experiments.Options{
	Warmup:  2 * sim.Second,
	Measure: 3 * sim.Second,
	Runs:    1,
	Seed:    1,
}

func BenchmarkFig1aTheory(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1a()
		gain = rows[len(rows)-1].GainPct
	}
	b.ReportMetric(gain, "gain@54Mbps_%")
}

func BenchmarkFig1bTheory(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1b()
		gain = rows[len(rows)-1].GainPct
	}
	b.ReportMetric(gain, "gain@600Mbps_%")
}

func BenchmarkFig9SoRa(b *testing.B) {
	var hackGain float64
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig9(benchOpts)
		var hck, tcp float64
		for _, c := range cells {
			if c.Clients == 1 {
				switch c.Protocol {
				case "HACK":
					hck = c.TotalMbps
				case "TCP":
					tcp = c.TotalMbps
				}
			}
		}
		hackGain = (hck - tcp) / tcp * 100
	}
	b.ReportMetric(hackGain, "hack_gain_%")
}

func BenchmarkTable1Retries(b *testing.B) {
	var tcpNoRetry, hackNoRetry float64
	for i := 0; i < b.N; i++ {
		for _, c := range experiments.Fig9(benchOpts) {
			if c.Clients == 2 {
				switch c.Protocol {
				case "HACK":
					hackNoRetry = c.NoRetryPct
				case "TCP":
					tcpNoRetry = c.NoRetryPct
				}
			}
		}
	}
	b.ReportMetric(tcpNoRetry, "tcp_noretry_%")
	b.ReportMetric(hackNoRetry, "hack_noretry_%")
}

func BenchmarkTable2Compression(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchOpts, 8<<20)
		ratio = rows[1].CompressionRatio
	}
	b.ReportMetric(ratio, "compression_x")
}

func BenchmarkTable3TimeBreakdown(b *testing.B) {
	var tcpChannelMs, hackChannelMs float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchOpts, 8<<20)
		tcpChannelMs = rows[0].Breakdown.ChannelWait.Millis()
		hackChannelMs = rows[1].Breakdown.ChannelWait.Millis()
	}
	b.ReportMetric(tcpChannelMs, "tcp_chan_ms")
	b.ReportMetric(hackChannelMs, "hack_chan_ms")
}

func BenchmarkCrossValidation(b *testing.B) {
	var recoveredGap float64
	for i := 0; i < b.N; i++ {
		rows := experiments.CrossValidation(benchOpts)
		r := rows[0]
		recoveredGap = r.IdealMbps - r.RecoveredMbps
	}
	b.ReportMetric(recoveredGap, "residual_gap_mbps")
}

func BenchmarkFig10Multiclient(b *testing.B) {
	var gain1, gain4 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(benchOpts, []int{1, 4})
		for _, r := range rows {
			if r.Protocol == "HACK MoreData" {
				if r.Clients == 1 {
					gain1 = r.GainOverTCPPct
				} else {
					gain4 = r.GainOverTCPPct
				}
			}
		}
	}
	b.ReportMetric(gain1, "gain_1client_%")
	b.ReportMetric(gain4, "gain_4clients_%")
}

func BenchmarkFig11SNR(b *testing.B) {
	opts := benchOpts
	opts.Warmup, opts.Measure = sim.Second, sim.Second
	var mean float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(opts, []float64{5, 15, 25}, nil)
		mean = res.MeanImprovementPct
	}
	b.ReportMetric(mean, "mean_improvement_%")
}

func BenchmarkFig12TheoryVsSim(b *testing.B) {
	var simGain, theoGain float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(benchOpts, nil)
		top := rows[len(rows)-1]
		simGain, theoGain = top.SimGainPct, top.TheoGainPct
	}
	b.ReportMetric(simGain, "sim_gain_%")
	b.ReportMetric(theoGain, "theory_gain_%")
}

// --- Ablations (DESIGN.md §5) ---

func ablationRun(b *testing.B, mutate func(*node.Config)) float64 {
	cfg := Scenario80211n(ModeMoreData, 1)
	mutate(&cfg)
	n := node.New(cfg)
	f := n.StartDownload(0, 0, 0)
	n.Run(benchOpts.Warmup)
	f.Goodput.MarkWindow(n.Sched.Now())
	n.Run(benchOpts.Warmup + benchOpts.Measure)
	return f.Goodput.WindowMbps(n.Sched.Now())
}

// BenchmarkAblationHoldPolicy compares the three holding policies from
// §3.2 head to head.
func BenchmarkAblationHoldPolicy(b *testing.B) {
	var more, opp, timer float64
	for i := 0; i < b.N; i++ {
		more = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeMoreData })
		opp = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeOpportunistic })
		timer = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeTimer })
	}
	b.ReportMetric(more, "moredata_mbps")
	b.ReportMetric(opp, "opportunistic_mbps")
	b.ReportMetric(timer, "timer_mbps")
}

// BenchmarkAblationAggregation quantifies how much of HACK's edge
// survives without A-MPDU batching (the 802.11a-style MAC).
func BenchmarkAblationAggregation(b *testing.B) {
	var withAgg, withoutAgg float64
	for i := 0; i < b.N; i++ {
		withAgg = ablationRun(b, func(c *node.Config) {})
		withoutAgg = ablationRun(b, func(c *node.Config) { c.Aggregation = false })
	}
	b.ReportMetric(withAgg, "aggregated_mbps")
	b.ReportMetric(withoutAgg, "single_mpdu_mbps")
}

// BenchmarkAblationTXOP explores the §5 observation that tighter TXOP
// limits raise HACK's relative value by shrinking batches.
func BenchmarkAblationTXOP(b *testing.B) {
	var txop4ms, txop1ms float64
	for i := 0; i < b.N; i++ {
		txop4ms = ablationRun(b, func(c *node.Config) {})
		txop1ms = ablationRun(b, func(c *node.Config) { c.TXOPLimit = sim.Millisecond })
	}
	b.ReportMetric(txop4ms, "txop4ms_mbps")
	b.ReportMetric(txop1ms, "txop1ms_mbps")
}

// BenchmarkSimulatorEventRate measures raw simulator throughput: a
// saturated 10-client 802.11n network's events per wall second.
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := Scenario80211n(ModeMoreData, 10)
		n := node.New(cfg)
		for ci := 0; ci < 10; ci++ {
			n.StartDownload(ci, 0, 0)
		}
		n.Run(sim.Second)
		events = n.Sched.EventsFired()
	}
	b.ReportMetric(float64(events), "events/simsec")
}
