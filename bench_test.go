// Benchmarks for the campaign runner — the engine every experiment
// rides on — plus ablations of the design choices DESIGN.md calls out
// and a raw simulator event-rate measurement. The campaign benchmark
// runs the same grid at -workers 1 and NumCPU so the reported
// per-iteration times measure the parallel speedup directly
// (`go test -bench=CampaignRun` prints both). cmd/hackbench
// regenerates the paper's tables and figures themselves.
package tcphack

import (
	"fmt"
	"runtime"
	"testing"

	"tcphack/internal/campaign"
	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// benchOpts keeps per-iteration cost moderate; results stabilize at
// these windows (the paper used 120 s runs; goodput differences
// already resolve in a few simulated seconds of steady state).
var benchOpts = struct {
	Warmup, Measure sim.Duration
}{
	Warmup:  2 * sim.Second,
	Measure: 3 * sim.Second,
}

// benchCampaignSpec is a representative sweep: the 802.11n scenario
// over 2 modes × 2 client counts × 2 seeds = 8 independent
// simulations, enough grid points to keep every worker busy.
func benchCampaignSpec(workers int) campaign.Spec {
	return campaign.Spec{
		Name: "bench",
		Base: Scenario80211n(ModeOff, 1),
		Axes: campaign.Axes{
			Modes:   []hack.Mode{hack.ModeOff, hack.ModeMoreData},
			Clients: []int{1, 2},
			Seeds:   campaign.Seeds(1, 2),
		},
		Warmup:  sim.Second,
		Measure: sim.Second,
		Workers: workers,
	}
}

// BenchmarkCampaignRun measures the campaign runner itself: the same
// 8-point grid serial (workers=1) and parallel (workers=NumCPU). The
// ratio of the two per-iteration times is the parallel speedup; each
// variant also reports its simulated-points-per-second throughput.
func BenchmarkCampaignRun(b *testing.B) {
	counts := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = counts[:1] // single-core host: nothing to parallelize over
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := benchCampaignSpec(workers)
			points := len(spec.Points())
			var goodput float64
			for i := 0; i < b.N; i++ {
				rs := campaign.Run(spec)
				goodput = rs[0].AggregateMbps
			}
			b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
			b.ReportMetric(goodput, "row0_mbps")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

func ablationRun(b *testing.B, mutate func(*node.Config)) float64 {
	cfg := Scenario80211n(ModeMoreData, 1)
	mutate(&cfg)
	n := node.New(cfg)
	f := n.StartDownload(0, 0, 0)
	n.Run(benchOpts.Warmup)
	f.Goodput.MarkWindow(n.Sched.Now())
	n.Run(benchOpts.Warmup + benchOpts.Measure)
	return f.Goodput.WindowMbps(n.Sched.Now())
}

// BenchmarkAblationHoldPolicy compares the three holding policies from
// §3.2 head to head.
func BenchmarkAblationHoldPolicy(b *testing.B) {
	var more, opp, timer float64
	for i := 0; i < b.N; i++ {
		more = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeMoreData })
		opp = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeOpportunistic })
		timer = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeTimer })
	}
	b.ReportMetric(more, "moredata_mbps")
	b.ReportMetric(opp, "opportunistic_mbps")
	b.ReportMetric(timer, "timer_mbps")
}

// BenchmarkAblationAggregation quantifies how much of HACK's edge
// survives without A-MPDU batching (the 802.11a-style MAC).
func BenchmarkAblationAggregation(b *testing.B) {
	var withAgg, withoutAgg float64
	for i := 0; i < b.N; i++ {
		withAgg = ablationRun(b, func(c *node.Config) {})
		withoutAgg = ablationRun(b, func(c *node.Config) { c.Aggregation = false })
	}
	b.ReportMetric(withAgg, "aggregated_mbps")
	b.ReportMetric(withoutAgg, "single_mpdu_mbps")
}

// BenchmarkAblationTXOP explores the §5 observation that tighter TXOP
// limits raise HACK's relative value by shrinking batches.
func BenchmarkAblationTXOP(b *testing.B) {
	var txop4ms, txop1ms float64
	for i := 0; i < b.N; i++ {
		txop4ms = ablationRun(b, func(c *node.Config) {})
		txop1ms = ablationRun(b, func(c *node.Config) { c.TXOPLimit = sim.Millisecond })
	}
	b.ReportMetric(txop4ms, "txop4ms_mbps")
	b.ReportMetric(txop1ms, "txop1ms_mbps")
}

// --- N-scaling (timing-wheel) suite ---

// The scale scenario: n stations on a dense 2 m grid (everyone within
// carrier-sense range, so every frame touches every station's NAV and
// carrier state — the timer-churn regime the wheel is built for), each
// sinking its share of an 80 Mbps aggregate UDP downlink.
const (
	scaleWarm          = 500 * sim.Millisecond
	scaleMeasure       = 1500 * sim.Millisecond
	scaleAggregateKbps = 80_000
)

// scaleNetwork builds the n-station grid scenario on the given
// scheduler backend with staggered per-client UDP downloads. A non-nil
// geometry runs the grid on the spatial PHY (2 m spacing keeps every
// station inside carrier-sense range, so the collision-domain shape
// matches the scalar channel while the power-matrix and per-receiver
// sensing code carry the load).
func scaleNetwork(stations int, backend sim.Backend, geom *channel.Geometry) *node.Network {
	cfg := scenario.New(scenario.With80211n(), scenario.WithGrid(stations, 2))
	cfg.SchedulerBackend = backend
	cfg.Geometry = geom
	n := node.New(cfg)
	for ci := 0; ci < stations; ci++ {
		n.StartUDPDownload(ci, scaleAggregateKbps/stations, 1500,
			sim.Duration(ci)*37*sim.Microsecond)
	}
	return n
}

// benchScale runs the grid scenario at each station count, timing only
// the steady-state window (network construction and warmup excluded),
// and reports events/s, allocs/event, and ns/event.
func benchScale(b *testing.B, backend sim.Backend, geom *channel.Geometry) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("stations=%d", n), func(b *testing.B) {
			var events, mallocs uint64
			var before, after runtime.MemStats
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				net := scaleNetwork(n, backend, geom)
				net.Run(scaleWarm)
				runtime.ReadMemStats(&before)
				ev0 := net.Sched.EventsFired()
				b.StartTimer()
				net.Run(scaleWarm + scaleMeasure)
				b.StopTimer()
				runtime.ReadMemStats(&after)
				events += net.Sched.EventsFired() - ev0
				mallocs += after.Mallocs - before.Mallocs
			}
			if events == 0 {
				b.Fatal("no events in the measurement window")
			}
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(events)/sec, "events/s")
			b.ReportMetric(float64(mallocs)/float64(events), "allocs/event")
			b.ReportMetric(sec*1e9/float64(events), "ns/event")
		})
	}
}

// BenchmarkScale measures the production (timing-wheel) scheduler's
// event throughput as the network grows from 10 to 1000 stations.
func BenchmarkScale(b *testing.B) { benchScale(b, sim.BackendWheel, nil) }

// BenchmarkScaleHeap runs the identical workload on the retained
// binary-heap backend — the pre-wheel baseline the scaling numbers are
// compared against.
func BenchmarkScaleHeap(b *testing.B) { benchScale(b, sim.BackendHeap, nil) }

// BenchmarkScaleSpatial runs the identical workload on the spatial PHY
// (default path-loss geometry, timing-wheel scheduler) — the cost of
// the power matrix, per-receiver carrier sensing, and SINR capture
// relative to the scalar channel, gated in CI against the heap
// baseline's ns/event.
func BenchmarkScaleSpatial(b *testing.B) {
	benchScale(b, sim.BackendWheel, channel.DefaultGeometry())
}

// BenchmarkSimulatorEventRate measures raw simulator throughput: a
// saturated 10-client 802.11n network's events per wall second.
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := Scenario80211n(ModeMoreData, 10)
		n := node.New(cfg)
		for ci := 0; ci < 10; ci++ {
			n.StartDownload(ci, 0, 0)
		}
		n.Run(sim.Second)
		events = n.Sched.EventsFired()
	}
	b.ReportMetric(float64(events), "events/simsec")
}
