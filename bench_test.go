// Benchmarks for the campaign runner — the engine every experiment
// rides on — plus ablations of the design choices DESIGN.md calls out
// and a raw simulator event-rate measurement. The campaign benchmark
// runs the same grid at -workers 1 and NumCPU so the reported
// per-iteration times measure the parallel speedup directly
// (`go test -bench=CampaignRun` prints both). cmd/hackbench
// regenerates the paper's tables and figures themselves.
package tcphack

import (
	"fmt"
	"runtime"
	"testing"

	"tcphack/internal/campaign"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/sim"
)

// benchOpts keeps per-iteration cost moderate; results stabilize at
// these windows (the paper used 120 s runs; goodput differences
// already resolve in a few simulated seconds of steady state).
var benchOpts = struct {
	Warmup, Measure sim.Duration
}{
	Warmup:  2 * sim.Second,
	Measure: 3 * sim.Second,
}

// benchCampaignSpec is a representative sweep: the 802.11n scenario
// over 2 modes × 2 client counts × 2 seeds = 8 independent
// simulations, enough grid points to keep every worker busy.
func benchCampaignSpec(workers int) campaign.Spec {
	return campaign.Spec{
		Name: "bench",
		Base: Scenario80211n(ModeOff, 1),
		Axes: campaign.Axes{
			Modes:   []hack.Mode{hack.ModeOff, hack.ModeMoreData},
			Clients: []int{1, 2},
			Seeds:   campaign.Seeds(1, 2),
		},
		Warmup:  sim.Second,
		Measure: sim.Second,
		Workers: workers,
	}
}

// BenchmarkCampaignRun measures the campaign runner itself: the same
// 8-point grid serial (workers=1) and parallel (workers=NumCPU). The
// ratio of the two per-iteration times is the parallel speedup; each
// variant also reports its simulated-points-per-second throughput.
func BenchmarkCampaignRun(b *testing.B) {
	counts := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = counts[:1] // single-core host: nothing to parallelize over
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := benchCampaignSpec(workers)
			points := len(spec.Points())
			var goodput float64
			for i := 0; i < b.N; i++ {
				rs := campaign.Run(spec)
				goodput = rs[0].AggregateMbps
			}
			b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/s")
			b.ReportMetric(goodput, "row0_mbps")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

func ablationRun(b *testing.B, mutate func(*node.Config)) float64 {
	cfg := Scenario80211n(ModeMoreData, 1)
	mutate(&cfg)
	n := node.New(cfg)
	f := n.StartDownload(0, 0, 0)
	n.Run(benchOpts.Warmup)
	f.Goodput.MarkWindow(n.Sched.Now())
	n.Run(benchOpts.Warmup + benchOpts.Measure)
	return f.Goodput.WindowMbps(n.Sched.Now())
}

// BenchmarkAblationHoldPolicy compares the three holding policies from
// §3.2 head to head.
func BenchmarkAblationHoldPolicy(b *testing.B) {
	var more, opp, timer float64
	for i := 0; i < b.N; i++ {
		more = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeMoreData })
		opp = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeOpportunistic })
		timer = ablationRun(b, func(c *node.Config) { c.Mode = hack.ModeTimer })
	}
	b.ReportMetric(more, "moredata_mbps")
	b.ReportMetric(opp, "opportunistic_mbps")
	b.ReportMetric(timer, "timer_mbps")
}

// BenchmarkAblationAggregation quantifies how much of HACK's edge
// survives without A-MPDU batching (the 802.11a-style MAC).
func BenchmarkAblationAggregation(b *testing.B) {
	var withAgg, withoutAgg float64
	for i := 0; i < b.N; i++ {
		withAgg = ablationRun(b, func(c *node.Config) {})
		withoutAgg = ablationRun(b, func(c *node.Config) { c.Aggregation = false })
	}
	b.ReportMetric(withAgg, "aggregated_mbps")
	b.ReportMetric(withoutAgg, "single_mpdu_mbps")
}

// BenchmarkAblationTXOP explores the §5 observation that tighter TXOP
// limits raise HACK's relative value by shrinking batches.
func BenchmarkAblationTXOP(b *testing.B) {
	var txop4ms, txop1ms float64
	for i := 0; i < b.N; i++ {
		txop4ms = ablationRun(b, func(c *node.Config) {})
		txop1ms = ablationRun(b, func(c *node.Config) { c.TXOPLimit = sim.Millisecond })
	}
	b.ReportMetric(txop4ms, "txop4ms_mbps")
	b.ReportMetric(txop1ms, "txop1ms_mbps")
}

// BenchmarkSimulatorEventRate measures raw simulator throughput: a
// saturated 10-client 802.11n network's events per wall second.
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := Scenario80211n(ModeMoreData, 10)
		n := node.New(cfg)
		for ci := 0; ci < 10; ci++ {
			n.StartDownload(ci, 0, 0)
		}
		n.Run(sim.Second)
		events = n.Sched.EventsFired()
	}
	b.ReportMetric(float64(events), "events/simsec")
}
