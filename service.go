package tcphack

// Campaign-as-a-service: the distributed sweep-execution layer
// (internal/dist). A DistServer daemon owns a job queue of WireCampaign
// specs, plans them into shards against a content-addressed
// memoization store, and leases shards to DistWorkers over HTTP/JSON;
// merged output is byte-identical to a serial RunCampaign, jobs
// survive daemon restarts via the state directory, and repeated or
// overlapping sweeps only simulate grid points whose fingerprints are
// not already in the store. See internal/dist's package documentation
// for the determinism and at-least-once lease contracts.

import (
	"tcphack/internal/campaign"
	"tcphack/internal/dist"
	"tcphack/internal/results"
)

// Wire-form campaign specs: the serializable subset of Campaign that
// distributed jobs (and -dry-run planning) are declared in.
type (
	// WireCampaign declares a distributable campaign: a registered
	// scenario name plus wire-form axes and measurement windows.
	WireCampaign = campaign.WireSpec
	// WireCampaignAxes are sweep axes in command-line vocabulary.
	WireCampaignAxes = campaign.WireAxes
)

// Distributed execution layer.
type (
	// DistServer is the campaign-as-a-service daemon.
	DistServer = dist.Server
	// DistServerConfig parameterizes a daemon (state dir, lease TTL,
	// shard size).
	DistServerConfig = dist.ServerConfig
	// DistWorker pulls and simulates leased shards.
	DistWorker = dist.Worker
	// DistClient speaks the daemon's HTTP/JSON API.
	DistClient = dist.Client
	// DistJobStatus is one job's externally visible state.
	DistJobStatus = dist.JobStatus
	// DistLeaseGrant is one leased shard: the job, the wire spec, and
	// the grid-point indexes to simulate.
	DistLeaseGrant = dist.LeaseGrant
	// DistMetrics is the daemon's /metrics payload.
	DistMetrics = dist.Metrics
	// DistStore is the content-addressed memoization backend.
	DistStore = dist.Store
	// DistPlan is a spec resolved against a store: fingerprinted
	// points, expected cache hits, and the shard layout.
	DistPlan = dist.Plan
	// DistRetryPolicy bounds a DistClient's retry loop: capped
	// exponential backoff with deterministic jitter, per-attempt
	// timeouts, and no retries on 4xx verdicts.
	DistRetryPolicy = dist.RetryPolicy
	// DistStorePurger is the optional garbage-collection side of a
	// DistStore (hackbench -store-gc); the file-dir store implements it.
	DistStorePurger = dist.Purger
	// DistFaultStore wraps a DistStore with a seeded deterministic
	// fault schedule — failure, delay, and post-Put corruption — for
	// chaos testing against your own store deployments.
	DistFaultStore = dist.FaultStore
	// DistFaultTransport is a fault-injecting http.RoundTripper for the
	// DistClient: seeded drops, duplicates, 503s, and delays.
	DistFaultTransport = dist.FaultTransport
)

// NewDistServer assembles a daemon, resuming any jobs persisted in the
// config's state directory.
func NewDistServer(cfg DistServerConfig) (*DistServer, error) { return dist.NewServer(cfg) }

// NewDistDirStore opens the file-dir memoization store rooted at dir.
func NewDistDirStore(dir string) (DistStore, error) { return dist.NewDirStore(dir) }

// NewDistPlan fingerprints a wire spec's grid against a store (nil =
// nothing cached) and chunks the uncached points into shards — the
// planning step behind job admission and hackbench -dry-run.
func NewDistPlan(w WireCampaign, store DistStore, salt string, shardSize int) (*DistPlan, error) {
	return dist.NewPlan(w, store, salt, shardSize)
}

// PurgeDistStore garbage-collects a memoization store directory:
// entries written by code versions other than keepVersion and
// quarantined corrupt files are deleted (dryRun only counts them).
// Stale-version entries can never be served again — the version salts
// the fingerprint — so purging them is always safe.
func PurgeDistStore(dir, keepVersion string, dryRun bool) (int, error) {
	store, err := dist.NewDirStore(dir)
	if err != nil {
		return 0, err
	}
	return store.Purge(keepVersion, dryRun)
}

// SimCodeVersion is the simulator behavior version salted into every
// memoization fingerprint (results.CodeVersion).
const SimCodeVersion = results.CodeVersion

// RunCampaignPoints simulates just the listed grid points of a
// campaign — the shard-extraction primitive distributed workers use.
var RunCampaignPoints = campaign.RunPoints

// MergeCampaignResults assembles partial row sets into the complete
// n-point result slice in grid order, rejecting conflicting duplicates
// and gaps (results.Merge).
var MergeCampaignResults = results.Merge
