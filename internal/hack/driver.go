package hack

import (
	"fmt"

	"tcphack/internal/mac"
	"tcphack/internal/packet"
	"tcphack/internal/rohc"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
)

// Mode selects the ACK-holding policy.
type Mode int

const (
	// ModeOff disables HACK: ACKs travel natively (the stock baseline;
	// the driver still counts them for Table 2).
	ModeOff Mode = iota
	// ModeMoreData is the paper's design.
	ModeMoreData
	// ModeOpportunistic never delays ACKs; it piggybacks only when
	// data happens to arrive first.
	ModeOpportunistic
	// ModeTimer holds ACKs for a fixed timeout (the paper's rejected
	// strawman, kept for ablation).
	ModeTimer
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeMoreData:
		return "more-data"
	case ModeOpportunistic:
		return "opportunistic"
	case ModeTimer:
		return "timer"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode is String's inverse: it resolves a mode by its
// command-line name.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{ModeOff, ModeMoreData, ModeOpportunistic, ModeTimer} {
		if s == m.String() {
			return m, nil
		}
	}
	return ModeOff, fmt.Errorf("unknown mode %q (want off, more-data, opportunistic, or timer)", s)
}

// Config parameterizes a Driver.
type Config struct {
	Mode Mode
	// DriverLatency models the host-side path from TCP ACK generation
	// to the compressed descriptor being DMA-visible to the NIC
	// (Figure 3). Until it elapses, the NIC's "TCP/HACK ready" check
	// fails and the ACK cannot ride a link-layer ACK.
	DriverLatency sim.Duration
	// HoldTimeout bounds ACK retention in ModeTimer.
	HoldTimeout sim.Duration
}

func (c Config) withDefaults() Config {
	if c.DriverLatency == 0 {
		c.DriverLatency = 20 * sim.Microsecond
	}
	if c.HoldTimeout == 0 {
		c.HoldTimeout = 5 * sim.Millisecond
	}
	return c
}

// heldAck is one TCP ACK held by the driver.
type heldAck struct {
	pkt     *packet.Packet
	dst     mac.Addr
	data    []byte   // compressed form (4-bit MSN; anchored at assembly)
	msn     uint8    // full master sequence number, for rohc.Anchor
	cid     byte     // flow context id
	readyAt sim.Time // when the NIC can see it (DMA complete)
	expires sim.Time // ModeTimer deadline
	counted bool     // already counted in Acct (first ride)
}

// peerState tracks HACK state toward one MAC peer.
type peerState struct {
	moreData    bool
	pending     []heldAck // compressed, not yet ridden on an LL ACK
	unconfirmed []heldAck // ridden, awaiting implicit confirmation
	holdTimer   *sim.Timer

	// Native-synchronization gate. Compressed ACKs ride link-layer
	// ACKs, which can overtake natively-queued chain members; a delta
	// referencing state the decompressor has not yet received would be
	// rejected by its CRC. So while any natively-sent ACK toward this
	// peer is unresolved (or the last one expired undelivered), new
	// ACKs also travel natively; compression resumes only once the
	// native stream has demonstrably caught up.
	nativeInFlight int
	nativeExpired  bool
	// gated marks natives whose resolution the syncing gate awaits;
	// ungated refresh duplicates must not perturb the counter.
	gated map[*packet.Packet]int
	// resolved records per-packet native outcomes (opportunistic mode:
	// a held ACK whose native copy is known-delivered may be discarded
	// safely; an in-flight one blocks riding of it and its successors).
	resolved map[*packet.Packet]bool
}

// syncing reports whether compression toward this peer must pause.
func (ps *peerState) syncing() bool {
	return ps.nativeInFlight > 0 || ps.nativeExpired
}

// Driver is the per-station HACK driver. Wire EnqueueNative, ForwardUp
// and (for ModeOpportunistic) WithdrawNative before use, then install
// it as the station's mac.Hooks.
type Driver struct {
	sched *sim.Scheduler
	cfg   Config

	comp *rohc.Compressor
	dec  *rohc.Decompressor

	peers map[mac.Addr]*peerState

	// EnqueueNative transmits a TCP ACK as an ordinary packet (MAC
	// transmit queue). Required.
	EnqueueNative func(dst mac.Addr, p *packet.Packet)
	// ForwardUp receives reconstituted TCP ACKs extracted from
	// link-layer ACKs (AP: toward the wire; client: into the local
	// stack). Required.
	ForwardUp func(from mac.Addr, p *packet.Packet)
	// WithdrawNative removes a still-queued native copy (opportunistic
	// mode); it reports whether the packet was found and removed.
	WithdrawNative func(dst mac.Addr, p *packet.Packet) bool

	// Acct accumulates Table 2's accounting.
	Acct stats.AckAccounting
	// Decomp aggregates decompression results (failures must stay 0 in
	// healthy runs — the paper's §4.3 claim).
	DecompDuplicates uint64
	DecompFailures   uint64
	FailNoAnchor     uint64
	FailNoContext    uint64
	FailCRC          uint64
}

// NewDriver creates a driver bound to sched.
func NewDriver(sched *sim.Scheduler, cfg Config) *Driver {
	return &Driver{
		sched: sched,
		cfg:   cfg.withDefaults(),
		comp:  rohc.NewCompressor(),
		dec:   rohc.NewDecompressor(),
		peers: make(map[mac.Addr]*peerState),
	}
}

// Mode returns the driver's holding policy.
func (d *Driver) Mode() Mode { return d.cfg.Mode }

func (d *Driver) peer(a mac.Addr) *peerState {
	p, ok := d.peers[a]
	if !ok {
		p = &peerState{}
		d.peers[a] = p
	}
	return p
}

// SubmitAck intercepts an outgoing pure TCP ACK destined to dst.
// Anything that is not a pure ACK must bypass the driver.
func (d *Driver) SubmitAck(dst mac.Addr, p *packet.Packet) {
	if !p.IsTCPAck() {
		panic("hack: SubmitAck on non-ACK packet")
	}
	ps := d.peer(dst)
	switch d.cfg.Mode {
	case ModeOff:
		d.sendNative(dst, p)
	case ModeMoreData:
		if !ps.moreData || ps.syncing() {
			d.sendNative(dst, p)
			return
		}
		if !d.hold(ps, dst, p, 0) {
			d.sendNative(dst, p)
		}
	case ModeOpportunistic:
		// Contend natively and register a compressed copy with the NIC;
		// whichever path wins the medium first carries the ACK. (The
		// syncing gate does not apply: the native copy is the
		// authoritative one and riding is gated on withdrawing it.)
		d.hold(ps, dst, p, 0)
		d.sendNative(dst, p)
	case ModeTimer:
		if ps.syncing() || !d.hold(ps, dst, p, d.sched.Now()+d.cfg.HoldTimeout) {
			d.sendNative(dst, p)
			return
		}
		d.armHoldTimer(dst, ps)
	}
}

// NativeResolved reports the fate of a natively-transmitted TCP ACK
// toward dst: delivered (confirmed by the MAC, or superseded by a
// withdrawn-and-ridden compressed copy) or expired. Wire the MAC's
// OnMSDUResolved to this.
func (d *Driver) NativeResolved(dst mac.Addr, p *packet.Packet, delivered bool) {
	ps := d.peer(dst)
	if c, isGated := ps.gated[p]; isGated {
		if c <= 1 {
			delete(ps.gated, p)
		} else {
			ps.gated[p] = c - 1
		}
		if ps.nativeInFlight > 0 {
			ps.nativeInFlight--
		}
		if delivered {
			ps.nativeExpired = false
		} else {
			ps.nativeExpired = true
		}
	}
	if d.cfg.Mode == ModeOpportunistic && p != nil {
		if ps.resolved == nil {
			ps.resolved = make(map[*packet.Packet]bool)
		}
		ps.resolved[p] = delivered
	}
}

// hold compresses p into the peer's pending set; false means the ACK
// cannot travel compressed (no context yet) and must go natively.
func (d *Driver) hold(ps *peerState, dst mac.Addr, p *packet.Packet, expires sim.Time) bool {
	data, msn, ok := d.comp.Compress(p)
	if !ok {
		return false
	}
	tuple, _ := p.Tuple()
	ps.pending = append(ps.pending, heldAck{
		pkt: p, dst: dst, data: data, msn: msn, cid: d.comp.CID(tuple),
		readyAt: d.sched.Now() + d.cfg.DriverLatency,
		expires: expires,
	})
	// Bound the NIC descriptor table. The evicted ACK must still reach
	// the peer through SOME path or the compression chain breaks: in
	// opportunistic mode its native copy is already queued; in the
	// holding modes, send it natively now (this is also a safety valve
	// against the §3.2 stall, where a sender pause leaves a window of
	// ACKs parked at the client).
	if len(ps.pending) > 2*64 {
		evicted := ps.pending[0]
		ps.pending = ps.pending[1:]
		if d.cfg.Mode != ModeOpportunistic {
			d.sendNative(evicted.dst, evicted.pkt)
		}
	}
	return true
}

// sendNative transmits p as an ordinary packet, refreshing compression
// context at both ends (the decompressor observes it on reception) and
// engaging the syncing gate until its delivery resolves.
//
// Because TCP ACKs are cumulative, this native supersedes every held
// ACK with a strictly older acknowledgment number: riding those later
// would deliver nothing TCP needs, and their deltas would reference
// chain state from before the native re-anchor. Drop them.
func (d *Driver) sendNative(dst mac.Addr, p *packet.Packet) {
	ps := d.peer(dst)
	keepNewer := func(hs []heldAck) []heldAck {
		out := hs[:0]
		for _, h := range hs {
			// Keep strictly newer ACKs — and the packet itself, which
			// opportunistic mode holds and sends natively in tandem.
			if h.pkt == p || int32(p.TCP.Ack-h.pkt.TCP.Ack) < 0 {
				out = append(out, h)
			}
		}
		return out
	}
	ps.pending = keepNewer(ps.pending)
	ps.unconfirmed = keepNewer(ps.unconfirmed)

	d.comp.Observe(p)
	d.Acct.NativeAcks++
	d.Acct.NativeAckBytes += uint64(p.Len())
	ps.nativeInFlight++
	if ps.gated == nil {
		ps.gated = make(map[*packet.Packet]int)
	}
	ps.gated[p]++
	d.EnqueueNative(dst, p)
}

// armHoldTimer schedules the ModeTimer flush for the earliest expiry.
// The per-peer timer is persistent: allocated (with its callback) on
// first use and Reset thereafter.
func (d *Driver) armHoldTimer(dst mac.Addr, ps *peerState) {
	if ps.holdTimer != nil && ps.holdTimer.Pending() {
		return
	}
	if len(ps.pending) == 0 {
		return
	}
	if ps.holdTimer == nil {
		ps.holdTimer = sim.NewTimer(func() { d.flushExpired(dst, ps) })
	}
	d.sched.Reset(ps.holdTimer, ps.pending[0].expires)
}

// flushExpired sends timed-out held ACKs natively (ModeTimer).
func (d *Driver) flushExpired(dst mac.Addr, ps *peerState) {
	now := d.sched.Now()
	var kept []heldAck
	for _, h := range ps.pending {
		if h.expires <= now {
			d.sendNative(dst, h.pkt)
		} else {
			kept = append(kept, h)
		}
	}
	ps.pending = kept
	d.armHoldTimer(dst, ps)
}

// flushPendingNative converts all held-but-unridden ACKs to native
// transmission (the Figures 3–4 race: data arrived with MORE DATA
// clear before the NIC saw the descriptors, or the latch dropped).
func (d *Driver) flushPendingNative(dst mac.Addr, ps *peerState) {
	pending := ps.pending
	ps.pending = nil
	for _, h := range pending {
		d.sendNative(dst, h.pkt)
	}
}

// BuildAckPayload implements mac.Hooks: assemble the compressed frame
// to append to the link-layer ACK for peer. Retained (unconfirmed)
// ACKs are re-sent until confirmed (§3.4); ready pending ACKs join
// them and become unconfirmed.
func (d *Driver) BuildAckPayload(peer mac.Addr) []byte {
	ps := d.peer(peer)
	now := d.sched.Now()

	// Split pending into NIC-visible (ready) and not-yet-DMA'd.
	var ride, late []heldAck
	for _, h := range ps.pending {
		if h.readyAt <= now {
			ride = append(ride, h)
		} else {
			late = append(late, h)
		}
	}

	if d.cfg.Mode == ModeOpportunistic {
		// Ride only ACKs whose native copy is still withdrawable.
		// Known-delivered natives supersede their compressed copies
		// (discard, chains re-anchored identically); a native still in
		// flight blocks riding of its successors — a compressed
		// successor overtaking it on a link-layer ACK would reference
		// chain state the decompressor has not seen yet.
		var kept, blocked []heldAck
		for i, h := range ride {
			if d.WithdrawNative != nil && d.WithdrawNative(peer, h.pkt) {
				kept = append(kept, h)
				continue
			}
			delivered, known := ps.resolved[h.pkt]
			delete(ps.resolved, h.pkt)
			if known && delivered {
				continue // superseded by its own native copy
			}
			if known && !delivered {
				continue // expired; CRC+re-anchor absorb the damage
			}
			// In flight: keep it and everything after it pending.
			blocked = append(blocked, ride[i:]...)
			break
		}
		ride = kept
		late = append(blocked, late...)
	}

	// Assemble the frame, widening the first MSN of each flow to the
	// 8-bit anchor form (paper §3.4) — done here, at frame-assembly
	// time, because which ACK leads the frame is only known now.
	var payload []byte
	var anchored [256 / 8]byte // per-CID bitmap; frames carry few flows
	emit := func(h *heldAck) {
		if bit := &anchored[h.cid/8]; *bit&(1<<(h.cid%8)) == 0 {
			*bit |= 1 << (h.cid % 8)
			payload = rohc.AppendAnchor(payload, h.data, h.msn)
			return
		}
		payload = append(payload, h.data...)
	}
	for i := range ps.unconfirmed {
		emit(&ps.unconfirmed[i])
	}
	for i := range ride {
		emit(&ride[i])
		if !ride[i].counted {
			ride[i].counted = true
			d.Acct.CompressedAcks++
			d.Acct.CompressedBytes += uint64(len(ride[i].data))
			d.Acct.UncompressedOf += uint64(ride[i].pkt.Len())
		}
	}
	if d.cfg.Mode == ModeOpportunistic {
		// No retention: reliability belongs to the native path here.
		// Retained re-rides would go stale against the native
		// re-anchors that flow constantly in this mode; if the
		// link-layer ACK is lost, the peer retransmits its data and
		// TCP's cumulative ACKs recover.
		ps.unconfirmed = nil
	} else {
		ps.unconfirmed = append(ps.unconfirmed, ride...)
	}
	ps.pending = late

	if d.cfg.Mode == ModeMoreData && !ps.moreData {
		// No more data is coming (Figure 7): if this link-layer ACK is
		// lost there will be no further piggyback opportunity, so do
		// not retain state — later ACKs travel natively and TCP's
		// cumulative ACKs absorb the gap.
		//
		// The compression chain, however, must not carry a silent gap:
		// re-send the newest cleared ACK natively as well. If the
		// link-layer ACK arrived this is an ignorable duplicate (not
		// newer than the peer's context); if it was lost, the native
		// copy re-anchors the decompressor absolutely, exactly where
		// the compressor's context stands.
		if n := len(ps.unconfirmed); n > 0 {
			d.sendNative(peer, ps.unconfirmed[n-1].pkt)
		}
		ps.unconfirmed = nil
		// Held ACKs whose DMA did not complete in time (the Figures
		// 3–4 race) flush to native transmission now.
		d.flushPendingNative(peer, ps)
	}
	return payload
}

// AckPayloadReceived implements mac.Hooks: decompress a HACK frame
// found on a link-layer ACK and forward the reconstituted TCP ACKs.
func (d *Driver) AckPayloadReceived(peer mac.Addr, payload []byte) {
	res, err := d.dec.Decompress(payload)
	d.DecompDuplicates += uint64(res.Duplicates)
	d.DecompFailures += uint64(res.Failures)
	d.FailNoAnchor += uint64(res.FailNoAnchor)
	d.FailNoContext += uint64(res.FailNoContext)
	d.FailCRC += uint64(res.FailCRC)
	if err != nil {
		d.DecompFailures++
		return
	}
	for _, p := range res.Packets {
		d.ForwardUp(peer, p)
	}
}

// ObserveNativeAck must be called for every natively-received pure TCP
// ACK so the decompressor's context stays synchronized (and recovers
// from damage).
func (d *Driver) ObserveNativeAck(p *packet.Packet) {
	d.dec.Observe(p)
}

// DataIndication implements mac.Hooks: a data frame arrived from peer.
// When the MORE DATA latch drops, pending ACKs whose DMA completed in
// time still ride this frame's link-layer ACK; BuildAckPayload (which
// the MAC calls when that ACK goes out) flushes the rest natively.
func (d *Driver) DataIndication(peer mac.Addr, ind mac.DataInd) {
	ps := d.peer(peer)
	ps.moreData = ind.MoreData

	switch {
	case ind.Sync:
		// The peer gave up soliciting our previous link-layer ACK
		// (Figure 8): our retained compressed ACKs were never
		// delivered. Keep them; they ride the next link-layer ACK.
	case ind.Progress:
		// The peer demonstrably received our previous link-layer ACK
		// (Figures 5a/5b): retained state is delivered.
		ps.unconfirmed = nil
	}
}

// PendingAcks reports held-but-unridden ACKs toward peer (tests).
func (d *Driver) PendingAcks(peer mac.Addr) int { return len(d.peer(peer).pending) }

// UnconfirmedAcks reports retained ACKs awaiting confirmation (tests).
func (d *Driver) UnconfirmedAcks(peer mac.Addr) int { return len(d.peer(peer).unconfirmed) }
