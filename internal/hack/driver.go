package hack

import (
	"fmt"

	"tcphack/internal/mac"
	"tcphack/internal/packet"
	"tcphack/internal/rohc"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
	"tcphack/internal/trace"
)

// Mode selects the ACK-holding policy.
type Mode int

const (
	// ModeOff disables HACK: ACKs travel natively (the stock baseline;
	// the driver still counts them for Table 2).
	ModeOff Mode = iota
	// ModeMoreData is the paper's design.
	ModeMoreData
	// ModeOpportunistic never delays ACKs; it piggybacks only when
	// data happens to arrive first.
	ModeOpportunistic
	// ModeTimer holds ACKs for a fixed timeout (the paper's rejected
	// strawman, kept for ablation).
	ModeTimer
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeMoreData:
		return "more-data"
	case ModeOpportunistic:
		return "opportunistic"
	case ModeTimer:
		return "timer"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode is String's inverse: it resolves a mode by its
// command-line name.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{ModeOff, ModeMoreData, ModeOpportunistic, ModeTimer} {
		if s == m.String() {
			return m, nil
		}
	}
	return ModeOff, fmt.Errorf("unknown mode %q (want off, more-data, opportunistic, or timer)", s)
}

// RecoveryState is the per-peer state of the compressed-ACK recovery
// machine (see the package documentation for the full transition
// diagram and the invariant each transition preserves).
type RecoveryState int

const (
	// StateNative: no live compressed chain toward the peer. ACKs
	// travel natively; the first successful hold starts a chain.
	StateNative RecoveryState = iota
	// StateCompressing: a healthy chain is open — held ACKs ride
	// link-layer ACKs and retained state re-rides until confirmed
	// (§3.4).
	StateCompressing
	// StateResyncing: the chain was abandoned (a BA gap the §3.4
	// machinery cannot bridge, a guard violation, or a native
	// interleave) and has not reopened yet. Held state was dropped and
	// replayed natively; the next held ACK reopens the chain with an
	// IR refresh, which re-establishes the decompressor context
	// absolutely — so reopening never waits on the replay's fate.
	StateResyncing
)

// trace.DriverState mirrors this numbering; these constant indices
// fail to compile if the two enumerations ever drift.
var (
	_ = [1]struct{}{}[StateNative-RecoveryState(trace.StateNative)]
	_ = [1]struct{}{}[StateCompressing-RecoveryState(trace.StateCompressing)]
	_ = [1]struct{}{}[StateResyncing-RecoveryState(trace.StateResyncing)]
)

func (s RecoveryState) String() string {
	switch s {
	case StateNative:
		return "native"
	case StateCompressing:
		return "compressing"
	case StateResyncing:
		return "resyncing"
	}
	return fmt.Sprintf("RecoveryState(%d)", int(s))
}

// DefaultMaxPayload bounds the compressed payload appended to one
// link-layer ACK. It must not exceed the MAC's AckPayloadAllowance:
// a longer response than the sender's ACK timeout budget arrives after
// the deadline, the exchange "fails", and the retained state grows —
// the positive feedback loop behind the historical MORE-DATA collapse
// under uniform loss.
const DefaultMaxPayload = 1024

// msnRetainLimit bounds the per-flow MSN span of one assembled frame
// (oldest retained to newest ridden). The decompressor's duplicate
// filter treats an MSN up to 127 behind the newest delivered one as a
// duplicate and anything beyond as new, so a retained ACK re-ridden
// with a span ≥ 128 would be mistaken for fresh state and poison the
// context. 120 leaves margin below the wrap point.
const msnRetainLimit = 120

// maxHeld is the NIC descriptor-table bound on not-yet-ridden ACKs
// per peer — a final safety valve; the payload and MSN guards trip
// long before it in practice.
const maxHeld = 128

// Config parameterizes a Driver.
type Config struct {
	Mode Mode
	// DriverLatency models the host-side path from TCP ACK generation
	// to the compressed descriptor being DMA-visible to the NIC
	// (Figure 3). Until it elapses, the NIC's "TCP/HACK ready" check
	// fails and the ACK cannot ride a link-layer ACK.
	DriverLatency sim.Duration
	// HoldTimeout bounds ACK retention in ModeTimer.
	HoldTimeout sim.Duration
	// MaxPayload bounds the compressed payload per link-layer ACK
	// (default DefaultMaxPayload). It must stay within the MAC's
	// AckPayloadAllowance or response frames outrun the ACK timeout.
	MaxPayload int

	// Addr is the owning station's MAC address, labeling trace probes.
	// Only consulted when Tracer is non-nil.
	Addr mac.Addr
	// Tracer, when non-nil, receives recovery-machine transitions and
	// ROHC codec probes. Tracers observe only; they never perturb RNG
	// draws, event order, or protocol state.
	Tracer trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.DriverLatency == 0 {
		c.DriverLatency = 20 * sim.Microsecond
	}
	if c.HoldTimeout == 0 {
		c.HoldTimeout = 5 * sim.Millisecond
	}
	if c.MaxPayload == 0 {
		c.MaxPayload = DefaultMaxPayload
	}
	return c
}

// heldAck is one TCP ACK held by the driver.
type heldAck struct {
	pkt     *packet.Packet
	data    []byte   // compressed form (4-bit MSN; anchored at assembly)
	msn     uint8    // full master sequence number, for rohc.Anchor
	cid     byte     // flow context id
	readyAt sim.Time // when the NIC can see it (DMA complete)
	expires sim.Time // ModeTimer deadline
	counted bool     // already counted in Acct (first ride)
}

// peerState tracks HACK state toward one MAC peer.
type peerState struct {
	state    RecoveryState
	moreData bool
	pending  []heldAck // compressed, not yet ridden on an LL ACK
	// unconfirmed holds ridden ACKs awaiting implicit confirmation;
	// they re-ride every link-layer ACK until Progress confirms them
	// (§3.4) or a resync abandons the chain.
	unconfirmed []heldAck
	holdTimer   *sim.Timer

	// syncSeen marks that the currently retained generation has
	// already survived one SYNC indication — one full Block ACK
	// generation (the Block ACK and every BAR-elicited retransmission
	// of it) was lost. A second SYNC without intervening Progress
	// means two consecutive generations are gone; the state machine
	// re-anchors instead of stretching the MSN chain further.
	syncSeen bool

	// resolved records per-packet native outcomes (opportunistic mode:
	// a held ACK whose native copy is known-delivered may be discarded
	// safely; an in-flight one blocks riding of it and its successors).
	resolved map[*packet.Packet]bool
}

// held reports whether any compressed state (pending or retained) is
// alive toward this peer.
func (ps *peerState) held() bool {
	return len(ps.pending) > 0 || len(ps.unconfirmed) > 0
}

// Driver is the per-station HACK driver. Wire EnqueueNative, ForwardUp
// and (for ModeOpportunistic) WithdrawNative before use, then install
// it as the station's mac.Hooks.
type Driver struct {
	sched *sim.Scheduler
	cfg   Config

	comp *rohc.Compressor
	dec  *rohc.Decompressor

	peers map[mac.Addr]*peerState

	// EnqueueNative transmits a TCP ACK as an ordinary packet (MAC
	// transmit queue). Required.
	EnqueueNative func(dst mac.Addr, p *packet.Packet)
	// ForwardUp receives reconstituted TCP ACKs extracted from
	// link-layer ACKs (AP: toward the wire; client: into the local
	// stack). Required.
	ForwardUp func(from mac.Addr, p *packet.Packet)
	// WithdrawNative removes a still-queued native copy (opportunistic
	// mode); it reports whether the packet was found and removed.
	WithdrawNative func(dst mac.Addr, p *packet.Packet) bool

	// Acct accumulates Table 2's accounting.
	Acct stats.AckAccounting
	// Resyncs counts chain abandonments (StateResyncing entries that
	// tore down live compressed state). Zero in lossless steady state.
	Resyncs uint64
	// Decomp aggregates decompression results (failures must stay 0 in
	// healthy runs — the paper's §4.3 claim).
	DecompDuplicates uint64
	DecompFailures   uint64
	FailNoAnchor     uint64
	FailNoContext    uint64
	FailCRC          uint64
}

// NewDriver creates a driver bound to sched.
func NewDriver(sched *sim.Scheduler, cfg Config) *Driver {
	return &Driver{
		sched: sched,
		cfg:   cfg.withDefaults(),
		comp:  rohc.NewCompressor(),
		dec:   rohc.NewDecompressor(),
		peers: make(map[mac.Addr]*peerState),
	}
}

// Mode returns the driver's holding policy.
func (d *Driver) Mode() Mode { return d.cfg.Mode }

func (d *Driver) peer(a mac.Addr) *peerState {
	p, ok := d.peers[a]
	if !ok {
		p = &peerState{}
		d.peers[a] = p
	}
	return p
}

// PeerState reports the recovery-machine state toward peer (tests and
// diagnostics).
func (d *Driver) PeerState(peer mac.Addr) RecoveryState { return d.peer(peer).state }

// setState moves the recovery machine toward dst to a new state,
// emitting the transition probe. No-op when the state is unchanged.
func (d *Driver) setState(dst mac.Addr, ps *peerState, to RecoveryState, cause trace.Cause) {
	if ps.state == to {
		return
	}
	if d.cfg.Tracer != nil {
		d.cfg.Tracer.HackState(d.sched.Now(), uint16(d.cfg.Addr), uint16(dst),
			trace.DriverState(ps.state), trace.DriverState(to), cause)
	}
	ps.state = to
}

// SubmitAck intercepts an outgoing pure TCP ACK destined to dst.
// Anything that is not a pure ACK must bypass the driver.
func (d *Driver) SubmitAck(dst mac.Addr, p *packet.Packet) {
	if !p.IsTCPAck() {
		panic("hack: SubmitAck on non-ACK packet")
	}
	ps := d.peer(dst)
	switch d.cfg.Mode {
	case ModeOff:
		d.sendNative(dst, p)
	case ModeMoreData:
		if !ps.moreData || len(ps.pending) >= maxHeld || !d.hold(ps, p, 0) {
			d.goNative(dst, ps, p)
			return
		}
		d.setState(dst, ps, StateCompressing, trace.CauseHold)
	case ModeOpportunistic:
		// Contend natively and register a compressed copy with the NIC;
		// whichever path wins the medium first carries the ACK. (The
		// recovery machine's native gate does not apply: the native
		// copy is the authoritative one and riding is gated on
		// withdrawing it.) The mode retains nothing across lost
		// link-layer ACKs, so each copy travels as a self-contained IR
		// refresh — decodable however large the gap in what the peer's
		// decompressor has seen. Beyond the descriptor-table bound the
		// copy is simply not registered: the native is authoritative,
		// so skipping the compressed path loses nothing.
		if len(ps.pending) < maxHeld {
			if t, ok := p.Tuple(); ok {
				d.comp.Refresh(t)
			}
			d.hold(ps, p, 0)
		}
		d.sendNative(dst, p)
	case ModeTimer:
		if len(ps.pending) >= maxHeld ||
			!d.hold(ps, p, d.sched.Now()+d.cfg.HoldTimeout) {
			d.goNative(dst, ps, p)
			return
		}
		d.setState(dst, ps, StateCompressing, trace.CauseHold)
		d.armHoldTimer(dst, ps)
	}
}

// NativeResolved reports the fate of a natively-transmitted TCP ACK
// toward dst: delivered (confirmed by the MAC, or superseded by a
// withdrawn-and-ridden compressed copy) or expired. Wire the MAC's
// OnMSDUResolved to this.
//
// The recovery machine does not gate on native delivery: every native
// send flags the flow for an IR refresh, so the chain's next
// compressed ACK re-establishes the decompressor context absolutely
// whether or not (and whenever) the native arrives. Only opportunistic
// mode consumes the resolution, to decide a held copy's fate.
func (d *Driver) NativeResolved(dst mac.Addr, p *packet.Packet, delivered bool) {
	if d.cfg.Mode == ModeOpportunistic && p != nil {
		ps := d.peer(dst)
		if ps.resolved == nil {
			ps.resolved = make(map[*packet.Packet]bool)
		}
		ps.resolved[p] = delivered
	}
}

// hold compresses p into the peer's pending set; false means the ACK
// cannot travel compressed (no context yet) and must go natively.
func (d *Driver) hold(ps *peerState, p *packet.Packet, expires sim.Time) bool {
	data, msn, ok := d.comp.Compress(p)
	if !ok {
		return false
	}
	tuple, _ := p.Tuple()
	if d.cfg.Tracer != nil {
		d.cfg.Tracer.ROHCPacket(d.sched.Now(), uint16(d.cfg.Addr), rohc.IsIR(data), len(data))
	}
	ps.pending = append(ps.pending, heldAck{
		pkt: p, data: data, msn: msn, cid: d.comp.CID(tuple),
		readyAt: d.sched.Now() + d.cfg.DriverLatency,
		expires: expires,
	})
	return true
}

// goNative sends p natively from a holding mode. Any live compressed
// state toward the peer is torn down first: a native interleaved with
// compressed state would re-anchor the two codec ends asymmetrically
// (the compressor absorbs it at send time only if it is newer than the
// chain tip; the decompressor absorbs it whenever it is newer than the
// last *delivered* state), forking the stride predictors. The machine
// therefore never mixes the two paths — it resyncs, then goes native.
func (d *Driver) goNative(dst mac.Addr, ps *peerState, p *packet.Packet) {
	if ps.held() {
		d.enterResync(dst, ps, trace.CauseNativeInterleave)
	}
	d.sendNative(dst, p)
}

// sendNative transmits p as an ordinary packet. The compressor
// absorbs it (if it advances the flow), which flags the flow for an IR
// refresh: the decompressor observes the native whenever — and
// whether — it arrives, and the IR covers every other ordering.
func (d *Driver) sendNative(dst mac.Addr, p *packet.Packet) {
	d.comp.Observe(p)
	d.Acct.NativeAcks++
	d.Acct.NativeAckBytes += uint64(p.Len())
	d.EnqueueNative(dst, p)
}

// enterResync abandons the compressed chain toward the peer: every
// held ACK is dropped from the compressed path and a conservative
// native replay re-anchors each flow from its last acknowledged state
// — all never-ridden pending ACKs (they carry SACK state TCP has not
// seen) plus, for flows with retained-but-unconfirmed state only, the
// newest retained ACK (cumulative acknowledgment makes the older ones
// redundant).
//
// The replay is strictly newer than — or equal to — the chain tip of
// every affected flow, so the compressor absorbs it at send and flags
// the flow refreshed: when the chain reopens, the first compressed ACK
// per flow travels as a self-contained IR refresh, making the teardown
// safe no matter which replay natives arrive, in what order, or when.
// Reopening therefore does not wait on the replay — the next held ACK
// restarts compression immediately.
func (d *Driver) enterResync(dst mac.Addr, ps *peerState, cause trace.Cause) {
	pending, unconf := ps.pending, ps.unconfirmed
	ps.pending, ps.unconfirmed = nil, nil
	ps.syncSeen = false
	if d.cfg.Mode == ModeTimer && ps.holdTimer != nil {
		d.sched.Cancel(ps.holdTimer)
	}
	if len(pending) == 0 && len(unconf) == 0 {
		return
	}
	d.Resyncs++
	d.setState(dst, ps, StateResyncing, cause)

	// Newest retained ACK per flow, for flows with no pending member
	// (pending replays supersede retained state of the same flow).
	inPending := make(map[byte]bool, len(pending))
	for i := range pending {
		inPending[pending[i].cid] = true
	}
	newest := make(map[byte]int, len(unconf))
	var order []byte
	for i := range unconf {
		cid := unconf[i].cid
		if inPending[cid] {
			continue
		}
		if _, ok := newest[cid]; !ok {
			order = append(order, cid)
		}
		newest[cid] = i
	}
	for _, cid := range order {
		d.sendNative(dst, unconf[newest[cid]].pkt)
	}
	for i := range pending {
		d.sendNative(dst, pending[i].pkt)
	}
}

// armHoldTimer schedules the ModeTimer flush for the earliest expiry.
// The per-peer timer is persistent: allocated (with its callback) on
// first use and Reset thereafter.
func (d *Driver) armHoldTimer(dst mac.Addr, ps *peerState) {
	if ps.holdTimer != nil && ps.holdTimer.Pending() {
		return
	}
	if len(ps.pending) == 0 {
		return
	}
	if ps.holdTimer == nil {
		ps.holdTimer = sim.NewTimer(func() { d.flushExpired(dst, ps) })
	}
	d.sched.Reset(ps.holdTimer, ps.pending[0].expires)
}

// flushExpired handles a ModeTimer hold-timeout: at least one held ACK
// exhausted its piggyback window without an opportunity, so the
// opportunity stream toward this peer has dried up — the chain resyncs
// and the replay delivers every held ACK natively.
func (d *Driver) flushExpired(dst mac.Addr, ps *peerState) {
	now := d.sched.Now()
	if len(ps.pending) == 0 || ps.pending[0].expires > now {
		d.armHoldTimer(dst, ps)
		return
	}
	d.enterResync(dst, ps, trace.CauseTimerFlush)
}

// frameSafe checks the §3.4 re-ride guards for an assembled frame:
// the total payload must fit the MAC's ACK-timeout allowance (a longer
// response would blow the peer's response deadline and fail the
// exchange deterministically), and each flow's MSN span must stay
// clear of the decompressor's 7-bit duplicate-filter wrap.
func (d *Driver) frameSafe(unconf, ride []heldAck) bool {
	total := 0
	var first [256]uint8
	var seen [256]bool
	check := func(h *heldAck) bool {
		total += len(h.data) + 1 // +1: worst-case anchor widening
		if total > d.cfg.MaxPayload {
			return false
		}
		if !seen[h.cid] {
			seen[h.cid], first[h.cid] = true, h.msn
			return true
		}
		return h.msn-first[h.cid] < msnRetainLimit
	}
	for i := range unconf {
		if !check(&unconf[i]) {
			return false
		}
	}
	for i := range ride {
		if !check(&ride[i]) {
			return false
		}
	}
	return true
}

// BuildAckPayload implements mac.Hooks: assemble the compressed frame
// to append to the link-layer ACK for peer. Retained (unconfirmed)
// ACKs are re-sent until confirmed (§3.4); ready pending ACKs join
// them and become unconfirmed.
func (d *Driver) BuildAckPayload(peer mac.Addr) []byte {
	ps := d.peer(peer)
	now := d.sched.Now()

	// Split pending into NIC-visible (ready) and not-yet-DMA'd.
	// readyAt is monotone in submission order, so ride is a prefix.
	var ride, late []heldAck
	for _, h := range ps.pending {
		if h.readyAt <= now {
			ride = append(ride, h)
		} else {
			late = append(late, h)
		}
	}

	if d.cfg.Mode == ModeOpportunistic {
		// Ride only ACKs whose native copy is still withdrawable.
		// Known-delivered natives supersede their compressed copies
		// (discard, chains re-anchored identically); a native still in
		// flight blocks riding of its successors — a compressed
		// successor overtaking it on a link-layer ACK would reference
		// chain state the decompressor has not seen yet.
		// The assembled payload must respect the same MaxPayload
		// budget as the holding modes (the MAC's ACK-timeout allowance
		// is sized to it): stop withdrawing once the budget is spent —
		// the remaining copies' native twins are still queued, so they
		// block here and contend natively or ride a later LL ACK.
		budget := 0
		var kept, blocked []heldAck
		for i, h := range ride {
			if budget+len(h.data)+1 > d.cfg.MaxPayload {
				blocked = append(blocked, ride[i:]...)
				break
			}
			if d.WithdrawNative != nil && d.WithdrawNative(peer, h.pkt) {
				budget += len(h.data) + 1
				kept = append(kept, h)
				continue
			}
			delivered, known := ps.resolved[h.pkt]
			delete(ps.resolved, h.pkt)
			if known && delivered {
				continue // superseded by its own native copy
			}
			if known && !delivered {
				continue // expired; CRC+re-anchor absorb the damage
			}
			// In flight: keep it and everything after it pending.
			blocked = append(blocked, ride[i:]...)
			break
		}
		ride = kept
		late = append(blocked, late...)
	} else if !d.frameSafe(ps.unconfirmed, ride) {
		// Guard violation: the chain has outgrown what one link-layer
		// ACK can safely carry. Re-anchor instead of emitting a frame
		// the peer would time out on or mis-deduplicate.
		ps.pending = append(ride, late...)
		d.enterResync(peer, ps, trace.CauseGuard)
		return nil
	}

	// Assemble the frame, widening the first MSN of each flow to the
	// 8-bit anchor form (paper §3.4) — done here, at frame-assembly
	// time, because which ACK leads the frame is only known now.
	var payload []byte
	var anchored [256 / 8]byte // per-CID bitmap; frames carry few flows
	emit := func(h *heldAck) {
		if bit := &anchored[h.cid/8]; *bit&(1<<(h.cid%8)) == 0 {
			*bit |= 1 << (h.cid % 8)
			payload = rohc.AppendAnchor(payload, h.data, h.msn)
			return
		}
		payload = append(payload, h.data...)
	}
	for i := range ps.unconfirmed {
		emit(&ps.unconfirmed[i])
	}
	for i := range ride {
		emit(&ride[i])
		if !ride[i].counted {
			ride[i].counted = true
			d.Acct.CompressedAcks++
			d.Acct.CompressedBytes += uint64(len(ride[i].data))
			d.Acct.UncompressedOf += uint64(ride[i].pkt.Len())
		}
	}
	if d.cfg.Mode == ModeOpportunistic {
		// No retention: reliability belongs to the native path here.
		// Retained re-rides would go stale against the native
		// re-anchors that flow constantly in this mode; if the
		// link-layer ACK is lost, the peer retransmits its data and
		// TCP's cumulative ACKs recover.
		ps.unconfirmed = nil
		ps.pending = late
		return payload
	}
	ps.unconfirmed = append(ps.unconfirmed, ride...)
	ps.pending = late

	if d.cfg.Mode == ModeMoreData && !ps.moreData {
		// No more data is coming (Figure 7): if this link-layer ACK is
		// lost there will be no further piggyback opportunity, so the
		// chain closes here. The resync replays each flow's newest
		// cleared ACK natively (an ignorable duplicate if the
		// link-layer ACK arrived; the absolute re-anchor if it was
		// lost) and flushes ACKs that missed the DMA window (the
		// Figures 3-4 race) to native transmission.
		d.enterResync(peer, ps, trace.CauseChainClose)
	}
	return payload
}

// AckPayloadReceived implements mac.Hooks: decompress a HACK frame
// found on a link-layer ACK and forward the reconstituted TCP ACKs.
func (d *Driver) AckPayloadReceived(peer mac.Addr, payload []byte) {
	res, err := d.dec.Decompress(payload)
	d.DecompDuplicates += uint64(res.Duplicates)
	d.DecompFailures += uint64(res.Failures)
	d.FailNoAnchor += uint64(res.FailNoAnchor)
	d.FailNoContext += uint64(res.FailNoContext)
	d.FailCRC += uint64(res.FailCRC)
	if d.cfg.Tracer != nil {
		d.cfg.Tracer.ROHCResult(d.sched.Now(), uint16(d.cfg.Addr),
			len(res.Packets), res.Duplicates, res.Failures)
	}
	if err != nil {
		d.DecompFailures++
		return
	}
	for _, p := range res.Packets {
		d.ForwardUp(peer, p)
	}
}

// ObserveNativeAck must be called for every natively-received pure TCP
// ACK so the decompressor's context stays synchronized (and recovers
// from damage).
func (d *Driver) ObserveNativeAck(p *packet.Packet) {
	d.dec.Observe(p)
}

// ResyncNeeded reports whether this driver's decompressor holds a
// damaged flow context awaiting a native re-anchor (§3.4 health
// probe; healthy runs report false throughout).
func (d *Driver) ResyncNeeded() bool { return d.dec.ResyncNeeded() }

// DataIndication implements mac.Hooks: a data frame arrived from peer.
// When the MORE DATA latch drops, pending ACKs whose DMA completed in
// time still ride this frame's link-layer ACK; BuildAckPayload (which
// the MAC calls when that ACK goes out) flushes the rest natively.
func (d *Driver) DataIndication(peer mac.Addr, ind mac.DataInd) {
	ps := d.peer(peer)
	ps.moreData = ind.MoreData

	switch {
	case ind.Sync:
		// The peer gave up soliciting our previous link-layer ACK
		// (Figure 8): our retained compressed ACKs were never
		// delivered. The first gap keeps them — they ride the next
		// link-layer ACK. A second gap without intervening Progress
		// means two consecutive Block ACK generations were lost; the
		// retained chain is no longer worth stretching toward the MSN
		// guard, so the machine re-anchors now.
		if len(ps.unconfirmed) == 0 {
			break
		}
		if ps.syncSeen {
			d.enterResync(peer, ps, trace.CauseSyncGap)
			break
		}
		ps.syncSeen = true
	case ind.Progress:
		// The peer demonstrably received our previous link-layer ACK
		// (Figures 5a/5b): retained state is delivered.
		ps.unconfirmed = nil
		ps.syncSeen = false
	}
}

// PendingAcks reports held-but-unridden ACKs toward peer (tests).
func (d *Driver) PendingAcks(peer mac.Addr) int { return len(d.peer(peer).pending) }

// UnconfirmedAcks reports retained ACKs awaiting confirmation (tests).
func (d *Driver) UnconfirmedAcks(peer mac.Addr) int { return len(d.peer(peer).unconfirmed) }
