// Package hack implements TCP/HACK, the paper's contribution: a NIC
// driver extension that carries TCP acknowledgments inside 802.11
// link-layer acknowledgments, eliminating the medium acquisitions TCP
// ACK packets otherwise require.
//
// # The driver
//
// The Driver sits between the host network stack and the MAC
// (implementing mac.Hooks) and is fully symmetric: at a downloading
// client it compresses locally-generated TCP ACKs onto the client's
// Block ACKs; at an AP relaying a client's upload it compresses the
// server's TCP ACKs onto the AP's Block ACKs. Three holding policies
// from §3.2 are implemented:
//
//   - ModeMoreData (the paper's design): the peer sets the 802.11 MORE
//     DATA bit while more traffic is queued; the driver latches it and
//     holds compressed ACKs for the next link-layer ACK. When a frame
//     arrives without MORE DATA, held state flushes to native
//     transmission.
//   - ModeOpportunistic: ACKs contend natively as usual, but a copy is
//     registered with the NIC; if a data frame arrives before the
//     native copy wins the medium, the ACK rides the link-layer ACK
//     and the native copy is withdrawn. The mode retains nothing
//     across lost link-layer ACKs, so every registered copy travels
//     as a self-contained IR refresh (rohc.Compressor.Refresh).
//   - ModeTimer: the rejected strawman — hold every ACK for a fixed
//     delay hoping for a piggyback opportunity.
//
// ModeOff is the stock baseline: ACKs travel natively and the driver
// only counts them (Table 2's accounting).
//
// # The recovery state machine
//
// Loss recovery is an explicit per-peer state machine (RecoveryState;
// Driver.PeerState reports it) built around one invariant — the §4.3
// losslessness claim:
//
//	A compressed ACK is emitted only when the decompressor is
//	guaranteed to regenerate it exactly: either it extends a chain
//	whose every predecessor was emitted inside the decompressor's
//	duplicate window, or it is a self-contained IR refresh.
//
// States and transitions:
//
//	StateNative ──hold()──▶ StateCompressing: the first ACK held after
//	    any native interlude opens (or reopens) a chain. Because every
//	    native send flags its flow refreshed (rohc.Compressor.Observe),
//	    the chain's first compressed ACK per flow travels as an IR — an
//	    absolute refresh carrying the static chain and every dynamic
//	    field — so the transition is safe no matter which natives the
//	    decompressor has or has not seen (a re-anchor may be parked in
//	    the peer's reorder buffer, or lost outright).
//
//	StateCompressing ──▶ StateCompressing (§3.4 steady loss bridging):
//	    ridden ACKs are retained and re-ride every link-layer ACK until
//	    a Progress indication (the peer demonstrably advanced) confirms
//	    them; Block ACK Requests re-elicit the same payload; a first
//	    SYNC indication (the peer exhausted its BAR retries — one whole
//	    Block ACK generation lost) keeps retained state for the next
//	    opportunity, per Figure 8. MSN dedup at the decompressor
//	    discards re-ride duplicates. Each of these preserves the
//	    invariant because retained re-rides are verbatim chain segments
//	    within the duplicate window.
//
//	StateCompressing ──enterResync()──▶ StateResyncing, on any event
//	    the §3.4 machinery cannot bridge losslessly:
//	      - a second consecutive SYNC without intervening Progress (two
//	        whole Block ACK generations lost — the trigger behind the
//	        historical MORE-DATA collapse under uniform loss);
//	      - the frame guards: an assembled payload exceeding MaxPayload
//	        (it would outlast the peer's ACK-timeout allowance, failing
//	        the exchange deterministically and growing retained state
//	        without bound — the collapse's feedback loop), or a
//	        per-flow MSN span reaching the duplicate-window wrap (a
//	        stale re-ride would be mistaken for fresh state and poison
//	        the context);
//	      - a native send while compressed state is held (MORE-DATA
//	        latch-off mid-chain, an uncompressible ACK): absorbing a
//	        native asymmetrically while chain deltas are in flight
//	        would fork the two ends' stride predictors;
//	      - the Figure 7 latch-off after the final ride.
//	    The transition drops all held compressed state and replays it
//	    natively — every never-ridden pending ACK (their SACK state is
//	    not yet at the sender) and the newest retained ACK of each
//	    flow (cumulative acknowledgment covers the rest). The replay
//	    preserves the invariant vacuously: nothing compressed remains
//	    that could reference the dropped MSNs, and the replay flags
//	    every flow for an IR on reopen.
//
//	StateResyncing ──hold()──▶ StateCompressing: reopening does not
//	    wait for the replay to resolve — the IR refresh makes the new
//	    chain independent of the replay's fate, so compression resumes
//	    with the next held ACK. This immediacy is what keeps goodput at
//	    the lossless level: a driver that waited for native
//	    confirmation would spend loss episodes contending for the
//	    medium with ACK frames, starving the data path it acknowledges.
//
// The decompressor side cooperates through the rohc package's
// context-damage surface: a CRC mismatch invalidates the context
// (rohc.Decompressor.Invalidate) and drops ACKs for the flow
// (counted, never silent) until an IR or a native re-anchor restores
// it — Driver.ResyncNeeded exposes that condition, and the zero-
// failure tests assert it never arises in the first place.
//
// # Determinism contract
//
// The driver is pure protocol state driven by the owning node's
// sim.Scheduler: it spins no goroutines, consults no clocks other
// than the scheduler's, and draws no randomness at all. A network's
// drivers therefore replay bit-identically for a fixed seed, and
// concurrently simulated networks (internal/campaign) never share
// driver state.
//
// # Interaction with rate adaptation
//
// HACK rides the link-layer ACK path, so its behavior is coupled to
// whatever rate the MAC's RateAdapter picks: lower data rates shrink
// A-MPDU batches (fewer ACKs held per Block ACK), while loss-prone
// rate choices stress the recovery machine. The machine holds the
// losslessness invariant through the ~1% per-MPDU FER regime, which
// is what makes the expected-goodput argmax oracle (mac.
// ExpectedGoodput) usable — the IdealSNR threshold oracle's
// negligible-FER rule existed precisely to route around the old
// recovery's collapse there. The experiments package's LossResilience
// grid sweeps loss × mode × adapter and asserts the invariant cell by
// cell.
package hack
