// Package hack implements TCP/HACK, the paper's contribution: a NIC
// driver extension that carries TCP acknowledgments inside 802.11
// link-layer acknowledgments, eliminating the medium acquisitions TCP
// ACK packets otherwise require.
//
// # The driver
//
// The Driver sits between the host network stack and the MAC
// (implementing mac.Hooks) and is fully symmetric: at a downloading
// client it compresses locally-generated TCP ACKs onto the client's
// Block ACKs; at an AP relaying a client's upload it compresses the
// server's TCP ACKs onto the AP's Block ACKs. Three holding policies
// from §3.2 are implemented:
//
//   - ModeMoreData (the paper's design): the peer sets the 802.11 MORE
//     DATA bit while more traffic is queued; the driver latches it and
//     holds compressed ACKs for the next link-layer ACK. When a frame
//     arrives without MORE DATA, held state flushes to native
//     transmission.
//   - ModeOpportunistic: ACKs contend natively as usual, but a copy is
//     registered with the NIC; if a data frame arrives before the
//     native copy wins the medium, the ACK rides the link-layer ACK
//     and the native copy is withdrawn.
//   - ModeTimer: the rejected strawman — hold every ACK for a fixed
//     delay hoping for a piggyback opportunity.
//
// ModeOff is the stock baseline: ACKs travel natively and the driver
// only counts them (Table 2's accounting).
//
// # Loss recovery
//
// Loss recovery follows §3.4: compressed ACKs ride every link-layer
// ACK until an implicit indication (progress) confirms delivery;
// Block ACK Requests re-elicit the same payload; the SYNC bit
// preserves retained state across the peer's BAR give-up; MSN dedup at
// the decompressor discards the resulting duplicates; and the
// no-MORE-DATA transition clears retained state in favour of native
// cumulative ACKs.
//
// # Determinism contract
//
// The driver is pure protocol state driven by the owning node's
// sim.Scheduler: it spins no goroutines, consults no clocks other
// than the scheduler's, and draws no randomness at all. A network's
// drivers therefore replay bit-identically for a fixed seed, and
// concurrently simulated networks (internal/campaign) never share
// driver state.
//
// # Interaction with rate adaptation
//
// HACK rides the link-layer ACK path, so its behavior is coupled to
// whatever rate the MAC's RateAdapter picks: lower data rates shrink
// A-MPDU batches (fewer ACKs held per Block ACK), while loss-prone
// rate choices stress the §3.4 recovery machinery. The mac package's
// IdealSNR oracle deliberately picks negligible-loss rates; see the
// ROADMAP's open item on MORE-DATA under heavy uniform loss for the
// known failure mode when that assumption is violated.
package hack
