package hack

import (
	"testing"

	"tcphack/internal/mac"
	"tcphack/internal/packet"
	"tcphack/internal/sim"
)

const peerAP = mac.Addr(1)

// harness wires a client driver to an AP driver directly (no MAC):
// payloads built by the client can be delivered to or withheld from
// the AP, modelling link-layer ACK loss precisely.
type harness struct {
	sched  *sim.Scheduler
	client *Driver
	ap     *Driver

	nativeQueue []*packet.Packet // client's native transmissions
	forwarded   []*packet.Packet // ACKs the AP forwarded upstream
}

func newHarness(mode Mode) *harness {
	h := &harness{sched: sim.NewScheduler(1)}
	h.client = NewDriver(h.sched, Config{Mode: mode, DriverLatency: 20 * sim.Microsecond})
	h.ap = NewDriver(h.sched, Config{Mode: mode})
	h.client.EnqueueNative = func(dst mac.Addr, p *packet.Packet) {
		h.nativeQueue = append(h.nativeQueue, p)
	}
	h.client.ForwardUp = func(mac.Addr, *packet.Packet) {}
	h.ap.EnqueueNative = func(mac.Addr, *packet.Packet) {}
	h.ap.ForwardUp = func(_ mac.Addr, p *packet.Packet) {
		h.forwarded = append(h.forwarded, p)
	}
	return h
}

// deliverNative moves queued native ACKs to the AP and reports their
// delivery back to the client driver (as the MAC would).
func (h *harness) deliverNative() {
	for _, p := range h.nativeQueue {
		h.ap.ObserveNativeAck(p)
		h.client.NativeResolved(peerAP, p, true)
	}
	h.nativeQueue = nil
}

// ack builds the flow's next pure ACK.
type ackGen struct {
	ack uint32
	id  uint16
}

func (g *ackGen) next(advance uint32) *packet.Packet {
	g.ack += advance
	g.id++
	return &packet.Packet{
		IP: packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, ID: g.id,
			Src: packet.IP(192, 168, 0, 10), Dst: packet.IP(10, 0, 0, 1)},
		TCP: &packet.TCP{SrcPort: 5555, DstPort: 80, Seq: 1, Ack: g.ack,
			Flags: packet.FlagACK, Window: 512},
	}
}

// indicate delivers a data indication to the client driver.
func (h *harness) indicate(more, sync, progress bool) {
	h.client.DataIndication(peerAP, mac.DataInd{MoreData: more, Sync: sync, Progress: progress, MPDUs: 2})
}

// llack builds the client's LL ACK payload and optionally delivers it.
func (h *harness) llack(deliver bool) []byte {
	payload := h.client.BuildAckPayload(peerAP)
	if deliver && len(payload) > 0 {
		h.ap.AckPayloadReceived(0, payload)
	}
	return payload
}

func (h *harness) advance(d sim.Duration) {
	h.sched.RunUntil(h.sched.Now() + d)
}

func TestNoContextGoesNative(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := &ackGen{ack: 1000}
	h.indicate(true, false, true) // MORE DATA latched
	h.client.SubmitAck(peerAP, g.next(2920))
	// First ACK of the flow: no compression context → native.
	if len(h.nativeQueue) != 1 {
		t.Fatalf("native queue %d, want 1 (context bootstrap)", len(h.nativeQueue))
	}
	if h.client.PendingAcks(peerAP) != 0 {
		t.Error("ACK held despite missing context")
	}
	h.deliverNative()
	// Now the context exists: next ACK is held.
	h.client.SubmitAck(peerAP, g.next(2920))
	if h.client.PendingAcks(peerAP) != 1 {
		t.Fatalf("pending = %d, want 1", h.client.PendingAcks(peerAP))
	}
	if len(h.nativeQueue) != 0 {
		t.Error("held ACK also sent natively")
	}
}

func TestMoreDataLatchOff(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := &ackGen{ack: 1000}
	// Latch never set: everything native.
	h.client.SubmitAck(peerAP, g.next(2920))
	h.deliverNative()
	h.client.SubmitAck(peerAP, g.next(2920))
	h.deliverNative()
	if got := h.client.Acct.NativeAcks; got != 2 {
		t.Errorf("native acks = %d, want 2", got)
	}
	if h.client.PendingAcks(peerAP) != 0 {
		t.Error("pending should be empty without the latch")
	}
}

// setupSteady bootstraps context and latch, returning a generator.
func setupSteady(h *harness) *ackGen {
	g := &ackGen{ack: 1000}
	h.indicate(true, false, true)
	h.client.SubmitAck(peerAP, g.next(2920)) // native bootstrap
	h.deliverNative()
	return g
}

func TestSteadyStatePiggyback(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	// Batch N's ACKs arrive, DMA completes, batch N+1 arrives, its
	// Block ACK carries them (paper Figure 2).
	h.client.SubmitAck(peerAP, g.next(2920))
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond) // DMA latency
	h.indicate(true, false, true)
	payload := h.llack(true)
	if len(payload) == 0 {
		t.Fatal("no payload on Block ACK")
	}
	if len(h.forwarded) != 2 {
		t.Fatalf("AP forwarded %d ACKs, want 2", len(h.forwarded))
	}
	if h.forwarded[1].TCP.Ack != g.ack {
		t.Errorf("reconstructed ack = %d, want %d", h.forwarded[1].TCP.Ack, g.ack)
	}
	if h.client.UnconfirmedAcks(peerAP) != 2 {
		t.Errorf("unconfirmed = %d, want 2 (retained until progress)", h.client.UnconfirmedAcks(peerAP))
	}
	// Next batch arrives (progress): retained state clears.
	h.indicate(true, false, true)
	if h.client.UnconfirmedAcks(peerAP) != 0 {
		t.Error("unconfirmed not cleared on progress")
	}
}

func TestDMARaceNotReady(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	// Data arrives immediately: DMA (20 µs) has not completed, so the
	// LL ACK goes out empty (the NIC's ready check fails, Figure 4).
	h.indicate(true, false, true)
	payload := h.llack(true)
	if len(payload) != 0 {
		t.Fatalf("payload %d bytes despite DMA race, want 0", len(payload))
	}
	if len(h.forwarded) != 0 {
		t.Error("AP got ACKs that were not ready")
	}
	// The ACK is still pending and rides the next opportunity.
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	if p := h.llack(true); len(p) == 0 {
		t.Fatal("ready ACK did not ride the next LL ACK")
	}
	if len(h.forwarded) != 1 {
		t.Errorf("forwarded %d, want 1", len(h.forwarded))
	}
}

func TestBlockAckLossRetention(t *testing.T) {
	// Paper Figure 5(a): the Block ACK carrying compressed ACKs is
	// lost; the client retains them and the next Block ACK carries
	// them again; MSN dedup at the AP absorbs any duplicates.
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	h.llack(false) // LOST
	if h.client.UnconfirmedAcks(peerAP) != 1 {
		t.Fatal("state not retained after loss")
	}
	// The AP did not get the Block ACK, so it sends a BAR; the MAC
	// calls BuildAckPayload again for the BAR response.
	h.llack(true)
	if len(h.forwarded) != 1 {
		t.Fatalf("forwarded %d after BAR response, want 1", len(h.forwarded))
	}
	// Progress on the next batch clears it.
	h.indicate(true, false, true)
	if h.client.UnconfirmedAcks(peerAP) != 0 {
		t.Error("unconfirmed survives progress")
	}
}

func TestDuplicatePayloadDedup(t *testing.T) {
	// Paper Figure 6: the AP re-requests via BAR although it already
	// received the ACKs; the re-sent payload must dedup, not corrupt.
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	h.llack(true) // delivered
	if len(h.forwarded) != 1 {
		t.Fatal("setup")
	}
	// No progress indication (AP's next data frame was lost); a BAR
	// arrives instead and the client re-appends the same ACKs.
	h.llack(true)
	if len(h.forwarded) != 1 {
		t.Fatalf("duplicate delivered %d times", len(h.forwarded))
	}
	if h.ap.DecompDuplicates != 1 {
		t.Errorf("dedup count = %d, want 1", h.ap.DecompDuplicates)
	}
	if h.ap.DecompFailures != 0 {
		t.Errorf("failures = %d, want 0", h.ap.DecompFailures)
	}
}

func TestSyncRetainsState(t *testing.T) {
	// Paper Figure 8: repeated Block ACK loss exhausts the AP's BAR
	// retries; the AP moves on, setting SYNC. The client must retain
	// its compressed ACKs despite the new data frame, and append them
	// to the next Block ACK.
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	h.llack(false) // lost
	h.llack(false) // BAR response lost too (repeatedly)
	h.llack(false)
	// AP gives up, sends next batch with SYNC: retained state must
	// survive even though the frame would otherwise signal progress.
	h.indicate(true, true, true)
	if h.client.UnconfirmedAcks(peerAP) != 2 {
		t.Fatalf("unconfirmed = %d after SYNC, want 2", h.client.UnconfirmedAcks(peerAP))
	}
	payload := h.llack(true)
	if len(payload) == 0 {
		t.Fatal("retained ACKs did not ride post-SYNC Block ACK")
	}
	if len(h.forwarded) != 2 {
		t.Errorf("forwarded %d, want 2", len(h.forwarded))
	}
}

// TestConsecutiveBlockAckLossResync reproduces the historical
// MORE-DATA collapse trigger: two consecutive Block ACK generations
// lost (the Block ACK and every BAR-elicited re-send of it, twice
// over). The first SYNC retains state per Figure 8; the second must
// abandon the chain — replaying the newest retained ACK natively —
// and the chain must reopen losslessly with an IR refresh.
func TestConsecutiveBlockAckLossResync(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	h.llack(false) // Block ACK generation 1 lost
	h.llack(false) // ... and its BAR-elicited re-sends
	h.llack(false)
	h.indicate(true, true, true) // first SYNC: Figure 8 retention
	if h.client.UnconfirmedAcks(peerAP) != 2 {
		t.Fatalf("unconfirmed = %d after first SYNC, want 2", h.client.UnconfirmedAcks(peerAP))
	}
	h.llack(false)               // Block ACK generation 2 lost too
	h.indicate(true, true, true) // second SYNC: chain abandoned
	if h.client.UnconfirmedAcks(peerAP) != 0 || h.client.PendingAcks(peerAP) != 0 {
		t.Fatalf("held state survives double BA gap: unconf=%d pending=%d",
			h.client.UnconfirmedAcks(peerAP), h.client.PendingAcks(peerAP))
	}
	if got := h.client.PeerState(peerAP); got != StateResyncing {
		t.Fatalf("state = %v after double BA gap, want %v", got, StateResyncing)
	}
	if h.client.Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", h.client.Resyncs)
	}
	// Conservative replay: the newest retained ACK re-anchors natively.
	if len(h.nativeQueue) != 1 || h.nativeQueue[0].TCP.Ack != g.ack {
		t.Fatalf("replay queue = %d (want 1 native carrying ack %d)", len(h.nativeQueue), g.ack)
	}
	h.deliverNative()
	// The chain reopens on the next held ACK and stays lossless.
	h.client.SubmitAck(peerAP, g.next(2920))
	if got := h.client.PeerState(peerAP); got != StateCompressing {
		t.Fatalf("state = %v after reopen, want %v", got, StateCompressing)
	}
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	if p := h.llack(true); len(p) == 0 {
		t.Fatal("reopened chain produced no payload")
	}
	if h.ap.DecompFailures != 0 {
		t.Fatalf("decompression failures after double-loss recovery: %d", h.ap.DecompFailures)
	}
	if h.ap.ResyncNeeded() {
		t.Error("AP decompressor reports damaged context after recovery")
	}
	if n := len(h.forwarded); n == 0 || h.forwarded[n-1].TCP.Ack != g.ack {
		t.Errorf("post-resync ACK not reconstructed (forwarded %d)", n)
	}
}

// TestResyncReopenBeforeReplayArrives pins the reorder race behind the
// residual collapse failures: the resync's native replay is parked (a
// reorder buffer, a lost frame — here simply never delivered) while
// the reopened chain's first Block ACK arrives. The IR refresh must
// carry the chain on its own; the decompressor never sees the native.
func TestResyncReopenBeforeReplayArrives(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	h.llack(false)
	h.indicate(true, true, true) // SYNC 1: retain
	h.llack(false)
	h.indicate(true, true, true) // SYNC 2: resync, replay queued
	if len(h.nativeQueue) == 0 {
		t.Fatal("no native replay")
	}
	// Replay NOT delivered: the decompressor's context is stale.
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	if p := h.llack(true); len(p) == 0 {
		t.Fatal("no payload from reopened chain")
	}
	if h.ap.DecompFailures != 0 {
		t.Fatalf("IR reopen not self-contained: %d failures (crc=%d noctx=%d)",
			h.ap.DecompFailures, h.ap.FailCRC, h.ap.FailNoContext)
	}
	if n := len(h.forwarded); n == 0 || h.forwarded[n-1].TCP.Ack != g.ack {
		t.Fatalf("reopened chain's ACK not delivered (forwarded %d)", n)
	}
}

// TestPayloadBudgetGuard: retained state that would push one
// link-layer ACK past the MAC's timeout allowance must trigger a
// resync instead of emitting a frame the peer would time out on — the
// positive feedback loop behind the collapse.
func TestPayloadBudgetGuard(t *testing.T) {
	h := newHarness(ModeMoreData)
	h.client.cfg.MaxPayload = 48
	g := setupSteady(h)
	for i := 0; i < 16; i++ { // ≈16 × (4-5 B) ≫ 48 B budget
		h.client.SubmitAck(peerAP, g.next(2920))
	}
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	if p := h.llack(true); p != nil {
		t.Fatalf("over-budget frame emitted (%d bytes)", len(p))
	}
	if h.client.PeerState(peerAP) != StateResyncing || h.client.Resyncs != 1 {
		t.Fatalf("budget violation did not resync (state=%v resyncs=%d)",
			h.client.PeerState(peerAP), h.client.Resyncs)
	}
	// Every held ACK was replayed natively — nothing is lost to TCP.
	if len(h.nativeQueue) == 0 {
		t.Fatal("budget resync replayed nothing")
	}
	last := h.nativeQueue[len(h.nativeQueue)-1]
	if last.TCP.Ack != g.ack {
		t.Errorf("replay tip ack = %d, want %d", last.TCP.Ack, g.ack)
	}
}

// TestMSNWindowGuard: a retained generation spanning close to the
// decompressor's 7-bit duplicate window must re-anchor before a stale
// re-ride could wrap into the "fresh" half and poison the context.
func TestMSNWindowGuard(t *testing.T) {
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	for i := 0; i < 125; i++ {
		h.client.SubmitAck(peerAP, g.next(2920))
	}
	h.advance(50 * sim.Microsecond)
	h.indicate(true, false, true)
	if p := h.llack(true); p != nil {
		t.Fatalf("window-spanning frame emitted (%d bytes)", len(p))
	}
	if h.client.Resyncs != 1 {
		t.Fatalf("MSN window violation did not resync (resyncs=%d)", h.client.Resyncs)
	}
	if h.ap.DecompFailures != 0 {
		t.Errorf("failures: %d", h.ap.DecompFailures)
	}
}

func TestNoMoreDataFlushes(t *testing.T) {
	// Paper Figure 7: the final batch carries no MORE DATA. Ready ACKs
	// ride its Block ACK unretained; if that is lost, state is cleared
	// and later ACKs travel natively (cumulative ACKs absorb the gap).
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	h.indicate(false, false, true) // final batch: no MORE DATA
	payload := h.llack(false)      // Block ACK lost
	if len(payload) == 0 {
		t.Fatal("ready ACK should still ride the final Block ACK")
	}
	if h.client.UnconfirmedAcks(peerAP) != 0 {
		t.Error("state retained despite no-MORE-DATA (Figure 7 requires clearing)")
	}
	// The clear is accompanied by one native re-sync duplicate of the
	// newest cleared ACK, so the compression chain cannot silently gap.
	if len(h.nativeQueue) != 1 {
		t.Fatalf("resync dup not sent (queue %d)", len(h.nativeQueue))
	}
	// ACKs generated after the latch dropped travel natively.
	h.client.SubmitAck(peerAP, g.next(2920))
	if len(h.nativeQueue) != 2 {
		t.Fatalf("post-latch ACK not native (queue %d)", len(h.nativeQueue))
	}
}

func TestNoMoreDataDMARaceFallsBackToNative(t *testing.T) {
	// The Figure 3/4 race: ACKs not yet DMA-visible when the final
	// (no-MORE-DATA) frame's LL ACK goes out are re-enqueued natively.
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	h.client.SubmitAck(peerAP, g.next(2920))
	h.indicate(false, false, true) // immediately: DMA not complete
	payload := h.llack(true)
	if len(payload) != 0 {
		t.Fatal("not-ready ACK rode the LL ACK")
	}
	if len(h.nativeQueue) != 1 {
		t.Fatalf("native fallback queue = %d, want 1", len(h.nativeQueue))
	}
	if h.client.PendingAcks(peerAP) != 0 {
		t.Error("pending not drained by native fallback")
	}
}

func TestTimerModeFlushes(t *testing.T) {
	h := newHarness(ModeTimer)
	g := &ackGen{ack: 1000}
	h.client.SubmitAck(peerAP, g.next(2920)) // native bootstrap
	h.deliverNative()
	h.client.SubmitAck(peerAP, g.next(2920))
	if h.client.PendingAcks(peerAP) != 1 {
		t.Fatal("timer mode did not hold the ACK")
	}
	// No piggyback opportunity: the hold timer flushes it natively.
	h.advance(10 * sim.Millisecond)
	if h.client.PendingAcks(peerAP) != 0 {
		t.Fatal("hold timer never flushed")
	}
	if len(h.nativeQueue) != 1 {
		t.Fatalf("flushed natively %d, want 1", len(h.nativeQueue))
	}
	// With an opportunity inside the window, it rides instead.
	h.deliverNative()
	h.client.SubmitAck(peerAP, g.next(2920))
	h.advance(50 * sim.Microsecond)
	payload := h.llack(true)
	if len(payload) == 0 {
		t.Fatal("timer-held ACK did not ride opportunity")
	}
	h.advance(20 * sim.Millisecond)
	if len(h.nativeQueue) != 0 {
		t.Error("ridden ACK also flushed natively")
	}
}

func TestOpportunisticWithdrawal(t *testing.T) {
	h := newHarness(ModeOpportunistic)
	withdrawn := 0
	h.client.WithdrawNative = func(dst mac.Addr, p *packet.Packet) bool {
		for i, q := range h.nativeQueue {
			if q == p {
				h.nativeQueue = append(h.nativeQueue[:i], h.nativeQueue[i+1:]...)
				withdrawn++
				return true
			}
		}
		return false
	}
	g := &ackGen{ack: 1000}
	h.client.SubmitAck(peerAP, g.next(2920)) // bootstrap: native only
	h.deliverNative()
	h.client.SubmitAck(peerAP, g.next(2920))
	// Both paths armed: one native copy queued, one compressed pending.
	if len(h.nativeQueue) != 1 || h.client.PendingAcks(peerAP) != 1 {
		t.Fatalf("native=%d pending=%d, want 1/1", len(h.nativeQueue), h.client.PendingAcks(peerAP))
	}
	// Data beats the native copy: payload rides, native withdrawn.
	h.advance(50 * sim.Microsecond)
	payload := h.llack(true)
	if len(payload) == 0 {
		t.Fatal("opportunistic ACK did not ride")
	}
	if withdrawn != 1 || len(h.nativeQueue) != 0 {
		t.Errorf("withdrawn=%d queue=%d, want 1/0", withdrawn, len(h.nativeQueue))
	}
	if len(h.forwarded) != 1 {
		t.Errorf("forwarded %d, want 1", len(h.forwarded))
	}
}

func TestAccountingTable2Shape(t *testing.T) {
	// In steady state virtually all ACKs travel compressed at ~4-6
	// bytes each (the paper's Table 2 shape: 10 native vs 9050
	// compressed, ratio ≈12 with timestamp-bearing ACKs).
	h := newHarness(ModeMoreData)
	g := setupSteady(h)
	for batch := 0; batch < 100; batch++ {
		h.client.SubmitAck(peerAP, g.next(2920))
		h.client.SubmitAck(peerAP, g.next(2920))
		h.advance(time50())
		h.indicate(true, false, true)
		h.llack(true)
	}
	a := &h.client.Acct
	// One bootstrap native plus U-mode periodic refresh duplicates
	// (one per 200 ridden ACKs in this 200-ACK fixture).
	if a.NativeAcks < 1 || a.NativeAcks > 3 {
		t.Errorf("native = %d, want 1-3 (bootstrap + refresh)", a.NativeAcks)
	}
	if a.CompressedAcks != 200 {
		t.Errorf("compressed = %d, want 200", a.CompressedAcks)
	}
	perAck := float64(a.CompressedBytes) / float64(a.CompressedAcks)
	if perAck > 6 {
		t.Errorf("compressed bytes/ACK = %.1f, want ≤6", perAck)
	}
	if r := a.CompressionRatio(); r < 6 {
		t.Errorf("ratio = %.1f, want ≥6 (no timestamps in fixture)", r)
	}
	if h.ap.DecompFailures != 0 {
		t.Errorf("decompression failures: %d", h.ap.DecompFailures)
	}
	if len(h.forwarded) != 200 {
		t.Errorf("forwarded %d of 200", len(h.forwarded))
	}
}

func time50() sim.Duration { return 50 * sim.Microsecond }

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeMoreData, ModeOpportunistic, ModeTimer} {
		if m.String() == "" {
			t.Errorf("mode %d empty string", int(m))
		}
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode empty string")
	}
}

func TestSubmitNonAckPanics(t *testing.T) {
	h := newHarness(ModeMoreData)
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-ACK packet")
		}
	}()
	h.client.SubmitAck(peerAP, &packet.Packet{
		IP:  packet.IPv4{Protocol: packet.ProtoTCP},
		TCP: &packet.TCP{Flags: packet.FlagSYN},
	})
}

// TestOpportunisticPayloadBudget: opportunistic rides must respect the
// same MaxPayload budget as the holding modes (the MAC's ACK-timeout
// allowance is sized to it). Copies beyond the budget keep their
// native twins queued and ride later — nothing is withdrawn and then
// dropped.
func TestOpportunisticPayloadBudget(t *testing.T) {
	h := newHarness(ModeOpportunistic)
	h.client.cfg.MaxPayload = 64 // opportunistic copies are ~30 B IRs
	withdraw := func(dst mac.Addr, p *packet.Packet) bool {
		for i, q := range h.nativeQueue {
			if q == p {
				h.nativeQueue = append(h.nativeQueue[:i], h.nativeQueue[i+1:]...)
				return true
			}
		}
		return false
	}
	h.client.WithdrawNative = withdraw
	g := &ackGen{ack: 1000}
	h.client.SubmitAck(peerAP, g.next(2920)) // bootstrap
	h.deliverNative()
	for i := 0; i < 6; i++ {
		h.client.SubmitAck(peerAP, g.next(2920))
	}
	h.advance(50 * sim.Microsecond)
	payload := h.llack(true)
	if len(payload) == 0 || len(payload) > 64 {
		t.Fatalf("payload %d bytes, want (0, 64]", len(payload))
	}
	// Every ACK that did not ride still has its native copy queued.
	if len(h.forwarded)+len(h.nativeQueue) != 6 {
		t.Fatalf("rode %d + native %d, want 6 total", len(h.forwarded), len(h.nativeQueue))
	}
	if len(h.nativeQueue) == 0 {
		t.Fatal("budget did not block anything; test too weak")
	}
	if h.ap.DecompFailures != 0 {
		t.Errorf("failures: %d", h.ap.DecompFailures)
	}
}
