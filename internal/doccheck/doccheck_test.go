// Package doccheck is the repository's documentation gate: a
// stdlib-only lint (no revive/staticcheck dependency) that fails when
// an exported identifier in the audited packages lacks a doc comment.
// It runs as an ordinary test, so `go test ./...` — locally and in CI
// — enforces the godoc contract established by the documentation pass.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// auditedPackages lists the package directories (relative to the
// repository root) whose exported identifiers must all carry doc
// comments. Grow this list as packages get their documentation pass.
var auditedPackages = []string{
	"internal/scenario",
	"internal/campaign",
	"internal/results",
	"internal/mac",
	"internal/hack",
	"internal/channel",
	"internal/phy",
	"internal/sim",
	"internal/node",
	"internal/dist",
	"internal/trace",
	".", // the public tcphack package
}

// TestExportedIdentifiersDocumented parses each audited package and
// reports every exported declaration without a doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	root := "../.."
	for _, pkg := range auditedPackages {
		dir := filepath.Join(root, pkg)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, p := range pkgs {
			if strings.HasSuffix(p.Name, "_test") {
				continue
			}
			for fname, f := range p.Files {
				for _, missing := range undocumented(f) {
					pos := fset.Position(missing.pos)
					t.Errorf("%s:%d: exported %s %s has no doc comment",
						filepath.ToSlash(filepath.Join(pkg, filepath.Base(fname))), pos.Line,
						missing.kind, missing.name)
				}
			}
		}
	}
}

type finding struct {
	kind string
	name string
	pos  token.Pos
}

// undocumented walks one file's top-level declarations and returns
// exported identifiers lacking doc comments. Grouped declarations
// (`var (...)`, `const (...)`, multi-spec type blocks) accept either a
// group comment or per-spec comments — the enumeration/table idiom.
// Conventional fmt.Stringer implementations (`String() string`, no
// parameters) are exempt: their contract is the interface's.
func undocumented(f *ast.File) []finding {
	var out []finding
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc.Text() == "" &&
				!methodOfUnexported(d) && !isStringer(d) {
				out = append(out, finding{"func", funcName(d), d.Name.Pos()})
			}
		case *ast.GenDecl:
			groupDoc := d.Doc.Text() != ""
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc.Text() == "" && s.Comment.Text() == "" && !groupDoc {
						out = append(out, finding{"type", s.Name.Name, s.Name.Pos()})
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							out = append(out, finding{strings.ToLower(d.Tok.String()), n.Name, n.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// isStringer reports whether d is a conventional String() string
// method.
func isStringer(d *ast.FuncDecl) bool {
	if d.Recv == nil || d.Name.Name != "String" {
		return false
	}
	ft := d.Type
	if ft.Params != nil && len(ft.Params.List) > 0 {
		return false
	}
	if ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	id, ok := ft.Results.List[0].Type.(*ast.Ident)
	return ok && id.Name == "string"
}

// methodOfUnexported reports whether d is a method on an unexported
// receiver type (its docs are not part of the package's public godoc).
func methodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return !v.IsExported()
		default:
			return false
		}
	}
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return fmt.Sprintf("(%s).%s", types(d.Recv.List[0].Type), d.Name.Name)
}

func types(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.StarExpr:
		return "*" + types(v.X)
	case *ast.Ident:
		return v.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}
