package campaign

import (
	"context"
	"fmt"
	"strconv"

	"tcphack/internal/hack"
	"tcphack/internal/mac"
	"tcphack/internal/phy"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// WireAxes is Axes in wire form: every dimension expressed in the
// command-line vocabulary (mode names, named rates, adapter specs), so
// a sweep grid can cross a process boundary as JSON and re-materialize
// identically on the other side.
type WireAxes struct {
	// Modes are HACK mode names (hack.ParseMode vocabulary).
	Modes []string `json:"modes,omitempty"`
	// Clients are the client-count axis values.
	Clients []int `json:"clients,omitempty"`
	// Seeds are the RNG seed axis values.
	Seeds []int64 `json:"seeds,omitempty"`
	// Rates are named PHY rates (phy.ParseRate vocabulary).
	Rates []string `json:"rates,omitempty"`
	// Adapters are rate-adapter specs (mac.ParseAdapterSpec vocabulary).
	Adapters []string `json:"adapters,omitempty"`
	// Loss are uniform per-frame loss probabilities.
	Loss []float64 `json:"loss,omitempty"`
	// SNRsDB are fixed channel SNRs in dB.
	SNRsDB []float64 `json:"snrs_db,omitempty"`
	// Topologies are registered topology names
	// (scenario.RegisterTopology vocabulary).
	Topologies []string `json:"topologies,omitempty"`
}

// Axes parses the wire form back into executable Axes, validating
// every mode name, rate name, and adapter spec.
func (w WireAxes) Axes() (Axes, error) {
	var a Axes
	for _, s := range w.Modes {
		m, err := hack.ParseMode(s)
		if err != nil {
			return Axes{}, err
		}
		a.Modes = append(a.Modes, m)
	}
	a.Clients = append(a.Clients, w.Clients...)
	a.Seeds = append(a.Seeds, w.Seeds...)
	for _, s := range w.Rates {
		r, err := phy.ParseRate(s)
		if err != nil {
			return Axes{}, err
		}
		a.Rates = append(a.Rates, r)
	}
	for _, s := range w.Adapters {
		if _, err := mac.ParseAdapterSpec(s); err != nil {
			return Axes{}, err
		}
		a.Adapters = append(a.Adapters, s)
	}
	a.Loss = append(a.Loss, w.Loss...)
	a.SNRsDB = append(a.SNRsDB, w.SNRsDB...)
	for _, s := range w.Topologies {
		if _, ok := scenario.TopologyOption(s); !ok {
			return Axes{}, fmt.Errorf("campaign: unknown topology %q (want one of %v)",
				s, scenario.TopologyNames())
		}
		a.Topologies = append(a.Topologies, s)
	}
	return a, nil
}

// WireSpec is the serializable subset of Spec: a campaign declared as
// a registered scenario name plus wire-form axes and the measurement
// windows. It deliberately omits Spec's function hooks (Build,
// Workload beyond the named kinds, Collect, Skip, Progress) — only
// registry scenarios with named workloads are servable, which is what
// makes a job's grid points reproducible on any worker and therefore
// memoizable. Two processes resolving the same WireSpec against the
// same code version produce byte-identical result rows.
type WireSpec struct {
	// Name labels the result rows; empty defaults to Scenario.
	Name string `json:"name,omitempty"`
	// Scenario is the registered scenario name (scenario.Lookup).
	Scenario string `json:"scenario"`
	// Workload is the named traffic pattern ("download", "upload",
	// "mixed"); empty adopts the scenario registry entry's workload.
	Workload string `json:"workload,omitempty"`
	// Axes are the sweep dimensions in wire form.
	Axes WireAxes `json:"axes"`
	// Warmup, Measure, and Duration are Spec's measurement windows, in
	// simulated nanoseconds.
	Warmup   sim.Duration `json:"warmup_ns,omitempty"`
	Measure  sim.Duration `json:"measure_ns,omitempty"`
	Duration sim.Duration `json:"duration_ns,omitempty"`
}

// DisplayName is the campaign label result rows carry: Name, falling
// back to the scenario name.
func (w WireSpec) DisplayName() string {
	if w.Name != "" {
		return w.Name
	}
	return w.Scenario
}

// ResolvedWorkload is the workload kind the spec executes: the
// explicit Workload field, falling back to the scenario registry
// entry's registered workload (empty means the default download
// pattern).
func (w WireSpec) ResolvedWorkload() string {
	if w.Workload != "" {
		return w.Workload
	}
	return scenario.WorkloadOf(w.Scenario)
}

// Spec materializes the wire spec into an executable campaign Spec,
// resolving the scenario from the registry and the workload from the
// named-workload vocabulary. The resolution is deterministic: every
// process holding the same registry (i.e. the same build) produces an
// equivalent Spec, which is the distributed layer's correctness
// foundation.
func (w WireSpec) Spec() (Spec, error) {
	e, ok := scenario.Lookup(w.Scenario)
	if !ok {
		return Spec{}, fmt.Errorf("campaign: unknown scenario %q in wire spec", w.Scenario)
	}
	axes, err := w.Axes.Axes()
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: bad wire axes: %v", err)
	}
	workload, err := NamedWorkload(w.ResolvedWorkload())
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Name:     w.DisplayName(),
		Base:     e.Config(),
		Axes:     axes,
		Warmup:   w.Warmup,
		Measure:  w.Measure,
		Duration: w.Duration,
		Workload: workload,
	}, nil
}

// SweptAxes names the axes the wire spec actually sweeps, in canonical
// column order. It is part of a grid point's memoization identity:
// sweeping an axis can change more than the axis value itself (e.g.
// sweeping the rate reverts the LL ACK rate to the control-response
// rules), so a swept point and an unswept point with equal axis values
// are distinct simulations.
func (w WireSpec) SweptAxes() []string {
	var out []string
	add := func(name string, n int) {
		if n > 0 {
			out = append(out, name)
		}
	}
	add("mode", len(w.Axes.Modes))
	add("clients", len(w.Axes.Clients))
	add("seed", len(w.Axes.Seeds))
	add("rate_kbps", len(w.Axes.Rates))
	add("adapter", len(w.Axes.Adapters))
	add("loss_pct", len(w.Axes.Loss))
	add("snr_db", len(w.Axes.SNRsDB))
	add("topology", len(w.Axes.Topologies))
	return out
}

// FingerprintFields returns one grid point's content-addressed
// identity as flat key=value components: everything that determines
// the point's Result — scenario, workload, measurement windows, the
// swept-axis set, and the point's axis values — and nothing that does
// not (the campaign display name, the grid position, worker count).
// The results layer hashes these fields together with a code-version
// salt into the memoization key (results.PointFingerprint).
func (w WireSpec) FingerprintFields(pt Point) map[string]string {
	fields := pt.AxisValues()
	fields["scenario"] = w.Scenario
	fields["workload"] = w.ResolvedWorkload()
	fields["warmup_ns"] = strconv.FormatInt(int64(w.Warmup), 10)
	fields["measure_ns"] = strconv.FormatInt(int64(w.Measure), 10)
	fields["duration_ns"] = strconv.FormatInt(int64(w.Duration), 10)
	swept := ""
	for i, a := range w.SweptAxes() {
		if i > 0 {
			swept += ","
		}
		swept += a
	}
	fields["swept"] = swept
	return fields
}

// RunPoints simulates just the listed grid points of the spec — the
// shard-extraction primitive the distributed layer leases to workers.
// Points run serially in the given index order (shard-level
// parallelism comes from running many workers); each returned row is
// identical to the corresponding row of a full Run, because every grid
// point is an independent simulation. The context is honored between
// points: cancellation returns the rows completed so far with ctx's
// error, never a half-simulated point.
func RunPoints(ctx context.Context, s Spec, indexes []int) (Results, error) {
	s = s.withDefaults()
	pts := s.Points()
	out := make(Results, 0, len(indexes))
	for _, i := range indexes {
		if i < 0 || i >= len(pts) {
			return out, fmt.Errorf("campaign: point index %d out of range [0,%d)", i, len(pts))
		}
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out = append(out, s.runPoint(pts[i]))
	}
	return out, nil
}
