package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON emits the rows as an indented JSON array.
func (rs Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// csvHeader is the fixed CSV column set (Extra metrics are JSON-only).
var csvHeader = []string{
	"campaign", "index", "mode", "clients", "seed", "rate_kbps", "adapter",
	"loss_pct", "snr_db", "topology", "skipped", "aggregate_mbps", "per_client_mbps",
	"airtime_busy_pct", "collisions", "mpdus_sent", "mpdus_delivered",
	"retries", "queue_drops", "no_retry_pct", "decomp_failures",
	"flows_done", "flows_total",
}

// WriteCSV emits the rows as CSV with a header line.
func (rs Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rs {
		per := ""
		for i, v := range r.PerClientMbps {
			if i > 0 {
				per += "/"
			}
			per += strconv.FormatFloat(v, 'f', 3, 64)
		}
		rec := []string{
			r.Campaign,
			strconv.Itoa(r.Index),
			r.ModeName,
			strconv.Itoa(r.Clients),
			strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(r.RateKbps),
			r.Adapter,
			strconv.FormatFloat(r.LossPct, 'f', 3, 64),
			strconv.FormatFloat(r.SNRdB, 'f', 1, 64),
			r.Topology,
			strconv.FormatBool(r.Skipped),
			strconv.FormatFloat(r.AggregateMbps, 'f', 3, 64),
			per,
			strconv.FormatFloat(r.AirtimeBusyPct, 'f', 1, 64),
			strconv.FormatUint(r.Collisions, 10),
			strconv.FormatUint(r.MPDUsSent, 10),
			strconv.FormatUint(r.MPDUsDelivered, 10),
			strconv.FormatUint(r.Retries, 10),
			strconv.FormatUint(r.QueueDrops, 10),
			strconv.FormatFloat(r.NoRetryPct, 'f', 1, 64),
			strconv.FormatUint(r.DecompFailures, 10),
			strconv.Itoa(r.FlowsDone),
			strconv.Itoa(r.FlowsTotal),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String summarizes one row for human-readable logs.
func (r Result) String() string {
	return fmt.Sprintf("%s[%d] mode=%s clients=%d seed=%d: %.1f Mbps",
		r.Campaign, r.Index, r.ModeName, r.Clients, r.Seed, r.AggregateMbps)
}
