package campaign

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"tcphack/internal/hack"
	"tcphack/internal/mac"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
	"tcphack/internal/trace"
)

// Axes are the sweep dimensions. An empty axis is not swept: the base
// configuration's value applies and the corresponding Point field
// reports it. Rates behaves like scenario.WithRate: sweeping the data
// rate reverts the LL ACK rate to the 802.11 control-response rules.
// Error-model axes (Loss, SNRsDB) install a fresh model per point,
// composing with each other and with the base configuration's model as
// independent loss processes — the same semantics as the
// scenario.WithUniformLoss/WithSNR options. Any base Err must be safe
// for concurrent read; stateless models (FixedLoss, SNRModel) are,
// and stateful ones (GilbertElliott) are forked per network
// (channel.ForkableErrorModel), so all built-in models are
// campaign-safe. Adapters sweeps rate adaptation in
// scenario.WithRateAdapter's vocabulary ("fixed", "fixed:<rate>",
// "ideal", "minstrel"); adapter state is per station per network, so
// the axis preserves the parallel-equals-serial guarantee.
type Axes struct {
	Modes    []hack.Mode
	Clients  []int
	Seeds    []int64
	Rates    []phy.Rate
	Adapters []string  // rate-adapter specs (scenario.WithRateAdapter)
	Loss     []float64 // uniform per-frame loss probability
	SNRsDB   []float64 // fixed channel SNR via the physical model
	// Topologies sweeps registered topology names
	// (scenario.RegisterTopology): spatial layouts, BSS plans, and
	// geometry presets applied on top of the base configuration.
	// Unknown names panic when the point is materialized; CLIs should
	// pre-validate against scenario.TopologyNames.
	Topologies []string
}

// Seeds returns n consecutive seeds starting at base — the usual
// "average over seeded repetitions" axis.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Point is one cell of the sweep grid.
type Point struct {
	// Index is the point's position in Spec.Points() order; Results are
	// returned in Index order regardless of worker count.
	Index    int       `json:"index"`
	Mode     hack.Mode `json:"-"`
	Clients  int       `json:"clients"`
	Seed     int64     `json:"seed"`
	Rate     phy.Rate  `json:"-"`
	Adapter  string    `json:"adapter,omitempty"`  // rate-adapter spec; "" when unswept
	LossPct  float64   `json:"loss_pct"`           // percent, 0 when the axis is unswept
	SNRdB    float64   `json:"snr_db"`             // 0 when the axis is unswept
	Topology string    `json:"topology,omitempty"` // topology name; "" when unswept

	sweepRate, sweepAdapter, sweepLoss, sweepSNR, sweepTopology bool
}

// AxisValues returns the point's axis values as canonical strings,
// keyed by the results-layer axis column names ("mode", "clients",
// "seed", "rate_kbps", "adapter", "loss_pct", "snr_db",
// "topology"). Numeric
// values use the shortest round-tripping decimal form — the same
// canonicalization as results.Num — so the map can key group lookups
// and content-addressed fingerprints interchangeably.
func (pt Point) AxisValues() map[string]string {
	return map[string]string{
		"mode":      pt.Mode.String(),
		"clients":   strconv.Itoa(pt.Clients),
		"seed":      strconv.FormatInt(pt.Seed, 10),
		"rate_kbps": strconv.Itoa(pt.Rate.Kbps),
		"adapter":   pt.Adapter,
		"loss_pct":  strconv.FormatFloat(pt.LossPct, 'f', -1, 64),
		"snr_db":    strconv.FormatFloat(pt.SNRdB, 'f', -1, 64),
		"topology":  pt.Topology,
	}
}

// Spec declares one campaign.
type Spec struct {
	// Name labels the campaign's result rows.
	Name string
	// Base is the scenario configuration every grid point starts from.
	Base node.Config
	// Axes are the sweep dimensions.
	Axes Axes

	// Warmup precedes the goodput measurement window (default 2 s);
	// Measure is the window length (default 4 s). When Duration is set
	// instead, the simulation runs exactly that long with no window and
	// goodput is measured from time zero — the shape of the paper's
	// fixed-transfer experiments (Tables 2 and 3).
	Warmup   sim.Duration
	Measure  sim.Duration
	Duration sim.Duration

	// Workers bounds the worker pool (default GOMAXPROCS; 1 = serial).
	Workers int

	// Build replaces node.New for network construction.
	Build func(cfg node.Config) *node.Network
	// Workload starts traffic; the default starts one unbounded TCP
	// download per client, staggered 50 ms apart (NamedWorkload's
	// "download").
	Workload func(n *node.Network, pt Point)
	// Collect extracts additional metrics into the point's Result
	// (typically into Result.Extra) after the simulation finishes.
	Collect func(n *node.Network, r *Result)
	// Trace, when set, returns a tracer to attach to the grid point's
	// network (nil attaches nothing for that point). If the returned
	// tracer is an io.Closer it is closed when the point finishes —
	// the hook for per-point JSONL trace files. Tracing is
	// determinism-neutral, so attaching one changes no metric.
	Trace func(pt Point) trace.Tracer
	// Airtime attaches an airtime ledger to every grid point and writes
	// the breakdown into Result.Extra: airtime_{data,wifi_ack,bar,
	// tcp_ack,retry,idle}_pct (shares of wall-clock medium time) and
	// airtime_efficiency (useful share of busy airtime).
	Airtime bool
	// Skip prunes a grid point without simulating; its Result row is
	// emitted with Skipped set and zero metrics.
	Skip func(pt Point) bool
	// Progress, when set, is called after each grid point finishes
	// (including skipped points, and — under cancellation — points
	// that never ran and come back as Skipped rows) with the number of
	// completed points and the grid total. Calls are serialized and
	// done is strictly increasing from 1 to total, never exceeding
	// total, so the callback can drive live reporting without its own
	// locking.
	Progress func(done, total int)
}

// NamedWorkload returns the standard traffic pattern for a registered
// workload kind — the vocabulary scenario.Entry.Workload uses:
//
//   - "" or "download": one unbounded TCP download per client,
//     staggered 50 ms apart (the default).
//   - "upload": one unbounded TCP upload per client, staggered 50 ms
//     apart — the paper's wireless-backup direction (§3.1).
//   - "mixed": clients alternate download/upload (even index down, odd
//     index up); a lone client runs both directions concurrently.
//
// Upload goodput lands at the wired server rather than a client, so
// Result.AggregateMbps folds upload flows in explicitly (see Result).
//
// The closures drive every client the network actually built
// (len(n.Clients)), not the point's clients-axis value: multi-BSS
// topologies instantiate the per-BSS client count in each BSS, so the
// totals differ.
func NamedWorkload(kind string) (func(n *node.Network, pt Point), error) {
	switch kind {
	case "", "download":
		return func(n *node.Network, pt Point) {
			for ci := 0; ci < len(n.Clients); ci++ {
				n.StartDownload(ci, 0, sim.Duration(ci)*50*sim.Millisecond)
			}
		}, nil
	case "upload":
		return func(n *node.Network, pt Point) {
			for ci := 0; ci < len(n.Clients); ci++ {
				n.StartUpload(ci, 0, sim.Duration(ci)*50*sim.Millisecond)
			}
		}, nil
	case "mixed":
		return func(n *node.Network, pt Point) {
			if len(n.Clients) == 1 {
				n.StartDownload(0, 0, 0)
				n.StartUpload(0, 0, 25*sim.Millisecond)
				return
			}
			for ci := 0; ci < len(n.Clients); ci++ {
				stagger := sim.Duration(ci) * 50 * sim.Millisecond
				if ci%2 == 0 {
					n.StartDownload(ci, 0, stagger)
				} else {
					n.StartUpload(ci, 0, stagger)
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("campaign: unknown workload %q (want download, upload, or mixed)", kind)
}

// Result is one grid point's measurements.
type Result struct {
	Campaign string `json:"campaign"`
	Point
	ModeName string `json:"mode"`
	RateKbps int    `json:"rate_kbps"`
	Skipped  bool   `json:"skipped,omitempty"`

	// Goodput. PerClientMbps measures bytes delivered at each client
	// (downloads and UDP); AggregateMbps additionally folds in upload
	// flows, whose goodput lands at the wired peer instead of a
	// client, so upload and mixed workloads measure without a Collect
	// hook.
	PerClientMbps []float64 `json:"per_client_mbps"`
	AggregateMbps float64   `json:"aggregate_mbps"`

	// Medium utilization.
	AirtimeBusyPct float64 `json:"airtime_busy_pct"`
	Collisions     uint64  `json:"collisions"`

	// AP MAC health (Table 1's statistics).
	MPDUsSent      uint64  `json:"mpdus_sent"`
	MPDUsDelivered uint64  `json:"mpdus_delivered"`
	Retries        uint64  `json:"retries"`
	QueueDrops     uint64  `json:"queue_drops"`
	NoRetryPct     float64 `json:"no_retry_pct"`

	// HACK health.
	DecompFailures uint64 `json:"decomp_failures"`

	// Flow completion (fixed-size transfers).
	FlowsDone  int `json:"flows_done"`
	FlowsTotal int `json:"flows_total"`

	// Extra carries Collect's campaign-specific metrics.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Results is an ordered set of result rows with emitters.
type Results []Result

func (s Spec) withDefaults() Spec {
	if s.Duration == 0 {
		if s.Warmup == 0 {
			s.Warmup = 2 * sim.Second
		}
		if s.Measure == 0 {
			s.Measure = 4 * sim.Second
		}
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.Build == nil {
		s.Build = node.New
	}
	if s.Workload == nil {
		s.Workload, _ = NamedWorkload("download")
	}
	return s
}

// Points enumerates the sweep grid in its deterministic order: modes,
// then clients, then topologies, then rates, then adapters, then
// loss, then SNR, then seeds (seeds innermost, so repetitions of one
// cell are adjacent).
func (s Spec) Points() []Point {
	modes := s.Axes.Modes
	if len(modes) == 0 {
		modes = []hack.Mode{s.Base.Mode}
	}
	clients := s.Axes.Clients
	if len(clients) == 0 {
		c := s.Base.Clients
		if c == 0 {
			c = 1
		}
		clients = []int{c}
	}
	seeds := s.Axes.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Base.Seed}
	}
	rates := s.Axes.Rates
	sweepRate := len(rates) > 0
	if !sweepRate {
		rates = []phy.Rate{s.Base.DataRate}
	}
	adapters := s.Axes.Adapters
	sweepAdapter := len(adapters) > 0
	if !sweepAdapter {
		adapters = []string{s.Base.RateAdapter}
	}
	loss := s.Axes.Loss
	sweepLoss := len(loss) > 0
	if !sweepLoss {
		loss = []float64{0}
	}
	snrs := s.Axes.SNRsDB
	sweepSNR := len(snrs) > 0
	if !sweepSNR {
		snrs = []float64{0}
	}
	topos := s.Axes.Topologies
	sweepTopology := len(topos) > 0
	if !sweepTopology {
		topos = []string{""}
	}

	var pts []Point
	for _, m := range modes {
		for _, c := range clients {
			for _, topo := range topos {
				for _, r := range rates {
					for _, a := range adapters {
						for _, l := range loss {
							for _, snr := range snrs {
								for _, seed := range seeds {
									pts = append(pts, Point{
										Index: len(pts), Mode: m, Clients: c, Seed: seed,
										Rate: r, Adapter: a, LossPct: l * 100, SNRdB: snr,
										Topology:  topo,
										sweepRate: sweepRate, sweepAdapter: sweepAdapter,
										sweepLoss: sweepLoss, sweepSNR: sweepSNR,
										sweepTopology: sweepTopology,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// config materializes the node configuration for one grid point.
func (s Spec) config(pt Point) node.Config {
	cfg := s.Base
	cfg.Mode = pt.Mode
	cfg.Clients = pt.Clients
	cfg.Seed = pt.Seed
	if pt.sweepTopology {
		topo, ok := scenario.TopologyOption(pt.Topology)
		if !ok {
			panic(fmt.Sprintf("campaign: unknown topology %q (want one of %v)",
				pt.Topology, scenario.TopologyNames()))
		}
		topo(&cfg)
		// Topologies may pin a client count (WithPositions); the clients
		// axis still wins when it is actually swept.
		if len(s.Axes.Clients) > 0 {
			cfg.Clients = pt.Clients
		}
	}
	if pt.sweepRate {
		scenario.WithRate(pt.Rate)(&cfg)
	}
	if pt.sweepAdapter {
		scenario.WithRateAdapter(pt.Adapter)(&cfg)
	}
	if pt.sweepLoss {
		scenario.WithUniformLoss(pt.LossPct / 100)(&cfg)
	}
	if pt.sweepSNR {
		scenario.WithSNR(pt.SNRdB)(&cfg)
	}
	return cfg
}

// Run executes the sweep on the worker pool and returns one Result per
// grid point, in Points() order. Each simulation is fully independent
// (own scheduler, own RNG streams), so the output is identical for any
// worker count. Run never cancels; RunContext adds that.
func Run(s Spec) Results {
	rs, _ := RunContext(context.Background(), s)
	return rs
}

// RunContext is Run with cancellation: when ctx is cancelled, no new
// grid points start, in-flight simulations finish (a point is the unit
// of work — individual simulations are not interruptible), and the
// call returns ctx's error along with the partial Results. Rows whose
// points never ran carry Skipped like a Skip-pruned point, so the
// emitters and the results layer handle partial output unchanged;
// completed rows sit at their Points() index as usual. The Progress
// callback (see Spec) fires monotonically throughout.
func RunContext(ctx context.Context, s Spec) (Results, error) {
	s = s.withDefaults()
	pts := s.Points()
	results := make(Results, len(pts))
	ran := make([]bool, len(pts))

	// done counts finished rows; reported is the highest count already
	// delivered to the callback. Reporting only strictly increasing
	// values clamped to the grid size keeps the callback's contract
	// (monotonic, never past total) even when rows error out under
	// cancellation and the unrun tail is accounted separately below.
	var progressMu sync.Mutex
	done, reported := 0, 0
	finished := func() {
		if s.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		if n := len(pts); done > n {
			done = n
		}
		if done > reported {
			reported = done
			s.Progress(done, len(pts))
		}
		progressMu.Unlock()
	}

	work := make(chan int)
	var wg sync.WaitGroup
	workers := s.Workers
	if workers > len(pts) {
		workers = len(pts)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = s.runPoint(pts[i])
				ran[i] = true
				finished()
			}
		}()
	}
feed:
	for i := range pts {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	for i := range pts {
		if !ran[i] {
			results[i] = Result{
				Campaign: s.Name, Point: pts[i],
				ModeName: pts[i].Mode.String(), RateKbps: pts[i].Rate.Kbps,
				Skipped: true,
			}
			finished()
		}
	}
	return results, ctx.Err()
}

func (s Spec) runPoint(pt Point) Result {
	r := Result{
		Campaign: s.Name,
		Point:    pt,
		ModeName: pt.Mode.String(),
		RateKbps: pt.Rate.Kbps,
	}
	if s.Skip != nil && s.Skip(pt) {
		r.Skipped = true
		return r
	}
	cfg := s.config(pt)
	var userTr trace.Tracer
	if s.Trace != nil {
		userTr = s.Trace(pt)
	}
	var ledger *trace.AirtimeLedger
	if s.Airtime {
		ledger = trace.NewAirtimeLedger()
	}
	if userTr != nil || ledger != nil {
		// Build the list member-by-member: a nil *AirtimeLedger boxed
		// into the Tracer interface would defeat Multi's nil filtering.
		trs := []trace.Tracer{cfg.Tracer, userTr}
		if ledger != nil {
			trs = append(trs, ledger)
		}
		cfg.Tracer = trace.Multi(trs...)
	}
	n := s.Build(cfg)
	s.Workload(n, pt)

	if s.Duration > 0 {
		n.Run(s.Duration)
	} else {
		n.Run(s.Warmup)
		for _, c := range n.Clients {
			c.Goodput.MarkWindow(n.Sched.Now())
		}
		for _, f := range n.Flows {
			f.Goodput.MarkWindow(n.Sched.Now())
		}
		n.Run(s.Warmup + s.Measure)
	}

	now := n.Sched.Now()
	for _, c := range n.Clients {
		mbps := c.Goodput.WindowMbps(now)
		if s.Duration > 0 {
			mbps = c.Goodput.Mbps(now)
		}
		r.PerClientMbps = append(r.PerClientMbps, mbps)
		r.AggregateMbps += mbps
	}
	// Upload goodput lands at the wired peer, not a client, so fold
	// upload flows into the aggregate separately (download and UDP
	// traffic is already counted in the per-client meters).
	for _, f := range n.Flows {
		if !f.Upload {
			continue
		}
		if s.Duration > 0 {
			r.AggregateMbps += f.Goodput.Mbps(now)
		} else {
			r.AggregateMbps += f.Goodput.WindowMbps(now)
		}
	}
	if now > 0 {
		r.AirtimeBusyPct = 100 * float64(n.Medium.AirtimeBusy) / float64(now)
	}
	r.Collisions = n.Medium.CollidedTx
	// Sum AP-side MAC health over every BSS; for the single-BSS star
	// this is exactly the legacy n.AP numbers.
	var ap stats.MAC
	for _, b := range n.BSSes {
		s := b.AP.MAC.Stats
		ap.MPDUsSent += s.MPDUsSent
		ap.MPDUsDelivered += s.MPDUsDelivered
		ap.DeliveredFirstTry += s.DeliveredFirstTry
		ap.DeliveredRetried += s.DeliveredRetried
		ap.Retries += s.Retries
		ap.QueueDrops += s.QueueDrops
	}
	r.MPDUsSent = ap.MPDUsSent
	r.MPDUsDelivered = ap.MPDUsDelivered
	r.Retries = ap.Retries
	r.QueueDrops = ap.QueueDrops
	r.NoRetryPct = ap.NoRetryFraction() * 100
	r.DecompFailures = n.DecompFailures()
	r.FlowsTotal = len(n.Flows)
	for _, f := range n.Flows {
		if f.Done {
			r.FlowsDone++
		}
	}
	if ledger != nil {
		rep := ledger.Snapshot(now)
		if r.Extra == nil {
			r.Extra = make(map[string]float64, 7)
		}
		if el := float64(rep.Elapsed); el > 0 {
			r.Extra["airtime_data_pct"] = 100 * float64(rep.Total.Data) / el
			r.Extra["airtime_wifi_ack_pct"] = 100 * float64(rep.Total.WifiAck) / el
			r.Extra["airtime_bar_pct"] = 100 * float64(rep.Total.BAR) / el
			r.Extra["airtime_tcp_ack_pct"] = 100 * float64(rep.Total.TCPAck) / el
			r.Extra["airtime_retry_pct"] = 100 * float64(rep.Total.Retry) / el
			r.Extra["airtime_idle_pct"] = 100 * float64(rep.Idle) / el
		}
		r.Extra["airtime_efficiency"] = rep.Efficiency()
		// Per-BSS attribution: group station airtime by owning BSS so
		// multi-BSS sweeps expose each cell's airtime share and useful
		// fraction of it (data / busy).
		if len(n.BSSes) > 1 {
			busy := make([]sim.Duration, len(n.BSSes))
			data := make([]sim.Duration, len(n.BSSes))
			for _, st := range rep.Stations {
				bi := n.BSSOfAddr(mac.Addr(st.Station))
				if bi < 0 {
					continue
				}
				busy[bi] += st.Buckets.Busy()
				data[bi] += st.Buckets.Data
			}
			for bi := range n.BSSes {
				prefix := fmt.Sprintf("airtime_bss%d_", bi)
				if el := float64(rep.Elapsed); el > 0 {
					r.Extra[prefix+"busy_pct"] = 100 * float64(busy[bi]) / el
				}
				if busy[bi] > 0 {
					r.Extra[prefix+"efficiency"] = float64(data[bi]) / float64(busy[bi])
				}
			}
		}
	}
	if c, ok := userTr.(io.Closer); ok {
		c.Close()
	}
	if s.Collect != nil {
		s.Collect(n, &r)
	}
	return r
}
