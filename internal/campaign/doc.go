// Package campaign runs grids of simulations in parallel. A Spec
// names a base scenario configuration and the axes to sweep, and Run
// executes the cross-product on a bounded worker pool, one independent
// deterministic simulation per grid point, producing one structured
// Result row per point.
//
// # Axis semantics
//
// Axes sweep HACK modes × client counts × seeds × PHY rates × rate
// adapters × uniform loss × SNR. An empty axis is not swept: the base
// configuration's value applies and the Point field reports it. Swept
// axes override the base per point with the same semantics as the
// corresponding scenario option: Rates releases a pinned LL ACK rate
// to the 802.11 control-response rules (scenario.WithRate), Adapters
// takes scenario.WithRateAdapter's vocabulary, and the error-model
// axes (Loss, SNRsDB) compose with each other and with the base model
// as independent loss processes. Points enumerates the grid in a fixed
// nesting order — modes, clients, rates, adapters, loss, SNR, seeds —
// with seeds innermost so repetitions of one cell are adjacent.
//
// # Determinism contract
//
// Parallel and serial executions yield row-for-row identical output.
// This holds because every grid point is a fully independent
// simulation: its own scheduler seeded from the point, its own forked
// RNG streams (medium noise, MAC backoffs, Minstrel probe schedules),
// its own forked stateful error models (channel.ForkableErrorModel),
// and no shared mutable state between workers. The base configuration
// is only ever read; anything stateful it references must either be
// fork-per-network or safe for concurrent read. Results are written
// into a pre-sized slice at the point's Index, so worker scheduling
// cannot reorder rows.
//
// # Hooks
//
// Hooks cover the workloads the paper's evaluation needs: Build
// replaces network construction (custom error models, per-link loss),
// Workload replaces traffic generation (uploads, UDP saturation,
// bounded transfers), Collect extracts extra metrics into the row, and
// Skip prunes hopeless grid points without running them. WriteJSON and
// WriteCSV emit the rows for downstream tooling.
package campaign
