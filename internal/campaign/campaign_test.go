package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// testSpec is a small but non-trivial grid over the SoRa scenario:
// 2 modes × 2 client counts × 2 seeds = 8 lossy simulations.
func testSpec(workers int) Spec {
	return Spec{
		Name: "determinism",
		Base: scenario.New(scenario.WithSoRa(), scenario.WithUniformLoss(0.01)),
		Axes: Axes{
			Modes:   []hack.Mode{hack.ModeOff, hack.ModeMoreData},
			Clients: []int{1, 2},
			Seeds:   Seeds(1, 2),
		},
		Warmup:  500 * sim.Millisecond,
		Measure: 500 * sim.Millisecond,
		Workers: workers,
	}
}

// TestParallelMatchesSerial is the campaign's core guarantee: the same
// sweep produces row-for-row identical results with 1 worker, with
// GOMAXPROCS workers, and with an oversubscribed pool (8 goroutines
// even on a single-core machine, so interleaving is exercised
// regardless of the host).
func TestParallelMatchesSerial(t *testing.T) {
	serial := Run(testSpec(1))
	if len(serial) != 8 {
		t.Fatalf("serial rows = %d, want 8", len(serial))
	}
	for _, workers := range []int{runtime.GOMAXPROCS(0), 8} {
		parallel := Run(testSpec(workers))
		if !reflect.DeepEqual(serial, parallel) {
			for i := range serial {
				if !reflect.DeepEqual(serial[i], parallel[i]) {
					t.Errorf("workers=%d row %d differs:\n serial:   %+v\n parallel: %+v",
						workers, i, serial[i], parallel[i])
				}
			}
			t.Fatalf("workers=%d run diverged from serial run", workers)
		}
	}
	// The runs must have simulated something real.
	for _, r := range serial {
		if r.AggregateMbps <= 0 {
			t.Errorf("row %d: no goodput (%+v)", r.Index, r)
		}
		if r.MPDUsDelivered == 0 {
			t.Errorf("row %d: no MPDUs delivered", r.Index)
		}
	}
}

// TestLargeNParallelMatchesSerial extends the determinism guarantee to
// the 500-station grid scenario the timing wheel targets: a dense
// topology whose per-event NAV/carrier churn stresses the wheel's
// cascade and min-cache paths far harder than the small CI grids. Rows
// must be identical serial vs. parallel, and a RunPoints shard must
// reproduce the full run's rows exactly.
func TestLargeNParallelMatchesSerial(t *testing.T) {
	const stations = 500
	spec := func(workers int) Spec {
		return Spec{
			Name: "large-n",
			Base: scenario.New(scenario.With80211n(), scenario.WithGrid(stations, 2)),
			Axes: Axes{
				Modes: []hack.Mode{hack.ModeOff},
				Seeds: Seeds(1, 2),
			},
			Warmup:  100 * sim.Millisecond,
			Measure: 100 * sim.Millisecond,
			Workers: workers,
			Workload: func(n *node.Network, pt Point) {
				for ci := 0; ci < stations; ci++ {
					n.StartUDPDownload(ci, 160, 1500, sim.Duration(ci)*37*sim.Microsecond)
				}
			},
		}
	}
	serial := Run(spec(1))
	if len(serial) != 2 {
		t.Fatalf("serial rows = %d, want 2", len(serial))
	}
	for _, r := range serial {
		if r.AggregateMbps <= 0 {
			t.Errorf("row %d: no goodput (%+v)", r.Index, r)
		}
	}
	parallel := Run(spec(runtime.NumCPU()))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("500-station parallel run diverged from serial run")
	}
	shard, err := RunPoints(context.Background(), spec(1), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shard[0], serial[1]) {
		t.Error("500-station RunPoints shard differs from the full run's row")
	}
}

// TestAdaptersAxisParallelMatchesSerial extends the determinism
// guarantee to rate adaptation: Minstrel keeps per-station learned
// state and draws probe schedules from an RNG, all of which must be
// forked per network — a parallel sweep over an Adapters axis must be
// row-identical to the serial run.
func TestAdaptersAxisParallelMatchesSerial(t *testing.T) {
	spec := func(workers int) Spec {
		return Spec{
			Name: "adapters",
			Base: scenario.New(scenario.With80211n(), scenario.WithSNR(22)),
			Axes: Axes{
				Modes:    []hack.Mode{hack.ModeOff, hack.ModeMoreData},
				Adapters: []string{"fixed", "ideal", "minstrel"},
			},
			Warmup:  500 * sim.Millisecond,
			Measure: 500 * sim.Millisecond,
			Workers: workers,
		}
	}
	serial := Run(spec(1))
	if len(serial) != 6 {
		t.Fatalf("serial rows = %d, want 6", len(serial))
	}
	parallel := Run(spec(8))
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("row %d differs:\n serial:   %+v\n parallel: %+v", i, serial[i], parallel[i])
			}
		}
		t.Fatal("adapters-axis parallel run diverged from serial run")
	}
	for _, r := range serial {
		if r.Adapter != "fixed" && r.AggregateMbps <= 0 {
			t.Errorf("row %d (%s): no goodput", r.Index, r.Adapter)
		}
	}
	// At SNR 22 the fixed 150 Mbps rate is hopeless (zero goodput —
	// the oracle drops to a clean mid rate instead), which is the
	// whole point of the axis: the adapter rows must beat the
	// pinned-rate rows.
	byAdapter := map[string]float64{}
	for _, r := range serial {
		if r.Mode == hack.ModeOff {
			byAdapter[r.Adapter] = r.AggregateMbps
		}
	}
	if byAdapter["ideal"] <= byAdapter["fixed"] {
		t.Errorf("ideal (%.1f Mbps) did not beat fixed MCS7 (%.1f Mbps) at SNR 22",
			byAdapter["ideal"], byAdapter["fixed"])
	}
	if byAdapter["minstrel"] <= byAdapter["fixed"] {
		t.Errorf("minstrel (%.1f Mbps) did not beat fixed MCS7 (%.1f Mbps) at SNR 22",
			byAdapter["minstrel"], byAdapter["fixed"])
	}
}

// TestGilbertElliottAxisCampaignSafe: a stateful bursty-loss model in
// the campaign base must be forked per network, keeping parallel runs
// row-identical to serial ones (it used to be the one campaign-unsafe
// model).
func TestGilbertElliottAxisCampaignSafe(t *testing.T) {
	spec := func(workers int) Spec {
		return Spec{
			Name: "bursty",
			Base: scenario.New(scenario.WithSoRa(),
				scenario.WithBurstyLoss(0.01, 0.2, 0.001, 0.5)),
			Axes: Axes{
				Modes: []hack.Mode{hack.ModeOff, hack.ModeMoreData},
				Seeds: Seeds(1, 2),
			},
			Warmup:  500 * sim.Millisecond,
			Measure: 500 * sim.Millisecond,
			Workers: workers,
		}
	}
	serial := Run(spec(1))
	parallel := Run(spec(8))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("bursty-loss parallel run diverged from serial run")
	}
	again := Run(spec(1))
	if !reflect.DeepEqual(serial, again) {
		t.Fatal("bursty-loss campaign not reproducible across runs")
	}
	for _, r := range serial {
		if r.AggregateMbps <= 0 {
			t.Errorf("row %d: no goodput under bursty loss", r.Index)
		}
		if r.Retries == 0 {
			t.Errorf("row %d: bursty loss produced no retries; model inert?", r.Index)
		}
	}
}

func TestPointsOrderAndDefaults(t *testing.T) {
	s := testSpec(1)
	pts := s.Points()
	if len(pts) != 8 {
		t.Fatalf("%d points, want 8", len(pts))
	}
	// Order: modes outermost, seeds innermost.
	want := []struct {
		mode    hack.Mode
		clients int
		seed    int64
	}{
		{hack.ModeOff, 1, 1}, {hack.ModeOff, 1, 2},
		{hack.ModeOff, 2, 1}, {hack.ModeOff, 2, 2},
		{hack.ModeMoreData, 1, 1}, {hack.ModeMoreData, 1, 2},
		{hack.ModeMoreData, 2, 1}, {hack.ModeMoreData, 2, 2},
	}
	for i, w := range want {
		p := pts[i]
		if p.Index != i || p.Mode != w.mode || p.Clients != w.clients || p.Seed != w.seed {
			t.Errorf("point %d = %+v, want mode=%v clients=%d seed=%d", i, p, w.mode, w.clients, w.seed)
		}
	}

	// Empty axes fall back to the base configuration.
	base := Spec{Base: node.Config{Seed: 9, Clients: 3, Mode: hack.ModeTimer}}
	pts = base.Points()
	if len(pts) != 1 {
		t.Fatalf("%d points, want 1", len(pts))
	}
	if pts[0].Mode != hack.ModeTimer || pts[0].Clients != 3 || pts[0].Seed != 9 {
		t.Errorf("defaults not drawn from base: %+v", pts[0])
	}
}

func TestAxisConfigMaterialization(t *testing.T) {
	s := Spec{
		Base: scenario.New(scenario.With80211n()),
		Axes: Axes{
			Rates: []phy.Rate{phy.HTRate(3, 1)},
			Loss:  []float64{0.02},
		},
	}
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("%d points, want 1", len(pts))
	}
	cfg := s.config(pts[0])
	if cfg.DataRate != phy.HTRate(3, 1) {
		t.Errorf("rate axis not applied: %v", cfg.DataRate)
	}
	if cfg.Err == nil {
		t.Error("loss axis did not install an error model")
	}
	if pts[0].LossPct != 2 {
		t.Errorf("LossPct = %v, want 2", pts[0].LossPct)
	}
}

// stubRadio satisfies channel.Radio for direct error-model queries.
type stubRadio struct{ pos channel.Pos }

func (r stubRadio) Position() channel.Pos                                 { return r.pos }
func (stubRadio) CarrierBusy()                                            {}
func (stubRadio) CarrierIdle()                                            {}
func (stubRadio) EndRx(tx *channel.Transmission, outcome channel.Outcome) {}

// TestLossAndSNRAxesCompose: sweeping both error-model axes must
// simulate their combination, not let one silently win — rows at the
// same SNR but different loss must differ.
func TestLossAndSNRAxesCompose(t *testing.T) {
	s := Spec{
		Base: scenario.New(scenario.With80211n()),
		Axes: Axes{Loss: []float64{0, 0.3}, SNRsDB: []float64{25}},
	}
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	cfg0, cfg1 := s.config(pts[0]), s.config(pts[1])
	// Identical SNR, different loss: the combined model must differ.
	src, dst := stubRadio{}, stubRadio{channel.Pos{X: 5}}
	p0 := cfg0.Err.LossProb(src, dst, cfg0.DataRate, 1500)
	p1 := cfg1.Err.LossProb(src, dst, cfg1.DataRate, 1500)
	if p1 <= p0 {
		t.Errorf("loss axis ignored when combined with SNR: p(loss=0)=%v p(loss=0.3)=%v", p0, p1)
	}
	if p1 < 0.3 {
		t.Errorf("combined loss %v below the uniform component 0.3", p1)
	}
}

// TestRateAxisFollowsControlResponseRules: sweeping Rates behaves like
// scenario.WithRate — a preset's pinned LL ACK rate is released so the
// 802.11 basic-rate rules pick it per eliciting frame.
func TestRateAxisFollowsControlResponseRules(t *testing.T) {
	s := Spec{
		Base: scenario.New(scenario.With80211n()), // pins AckRate to 24 Mbps
		Axes: Axes{Rates: []phy.Rate{phy.HTRate(0, 1)}},
	}
	cfg := s.config(s.Points()[0])
	if !cfg.AckRate.IsZero() {
		t.Errorf("AckRate still pinned at %v while sweeping rates", cfg.AckRate)
	}
}

func TestSkip(t *testing.T) {
	s := testSpec(1)
	s.Axes = Axes{Modes: []hack.Mode{hack.ModeOff}, Clients: []int{1, 2}}
	s.Skip = func(pt Point) bool { return pt.Clients == 2 }
	rs := Run(s)
	if len(rs) != 2 {
		t.Fatalf("%d rows", len(rs))
	}
	if rs[0].Skipped || rs[0].AggregateMbps <= 0 {
		t.Errorf("row 0 should have run: %+v", rs[0])
	}
	if !rs[1].Skipped || rs[1].AggregateMbps != 0 {
		t.Errorf("row 1 should be skipped with zero metrics: %+v", rs[1])
	}
}

func TestCollectAndDurationMode(t *testing.T) {
	s := Spec{
		Name:     "fixed",
		Base:     scenario.New(scenario.WithSoRa()),
		Duration: 2 * sim.Second,
		Workload: func(n *node.Network, pt Point) {
			n.StartDownload(0, 1<<20, 0) // bounded 1 MB transfer
		},
		Collect: func(n *node.Network, r *Result) {
			r.Extra = map[string]float64{"native_acks": float64(n.Clients[0].Driver.Acct.NativeAcks)}
		},
	}
	rs := Run(s)
	if len(rs) != 1 {
		t.Fatalf("%d rows", len(rs))
	}
	r := rs[0]
	if r.FlowsDone != 1 || r.FlowsTotal != 1 {
		t.Errorf("1 MB transfer did not complete in 2 s: %+v", r)
	}
	if r.AggregateMbps <= 0 {
		t.Error("duration-mode goodput not measured")
	}
	if r.Extra["native_acks"] == 0 {
		t.Error("Collect hook did not run (no native ACKs recorded)")
	}
}

// TestProgressMonotonic: the Progress callback must fire exactly once
// per grid point with a strictly increasing done count, regardless of
// worker interleaving.
func TestProgressMonotonic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		s := testSpec(workers)
		var dones []int
		s.Progress = func(done, total int) {
			if total != 8 {
				t.Errorf("workers=%d: total = %d, want 8", workers, total)
			}
			dones = append(dones, done)
		}
		rs, err := RunContext(context.Background(), s)
		if err != nil {
			t.Fatalf("workers=%d: RunContext: %v", workers, err)
		}
		if len(rs) != 8 || len(dones) != 8 {
			t.Fatalf("workers=%d: %d rows, %d progress calls, want 8/8", workers, len(rs), len(dones))
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("workers=%d: progress call %d reported done=%d (not monotonic)", workers, i, d)
			}
		}
	}
}

// TestRunContextCancellation: cancelling mid-sweep must stop feeding
// new points and return promptly with the completed rows plus the
// context's error.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := testSpec(1)
	s.Progress = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	rs, err := RunContext(ctx, s)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rs) != 8 {
		t.Fatalf("%d rows, want the full (partially zero) 8-row slice", len(rs))
	}
	// Row 0 completed before the cancel; the tail never ran (with one
	// worker at most one more point can already be in flight). Unrun
	// points must come back Skipped so emitters and the results layer
	// don't mistake them for real zero measurements.
	if rs[0].Skipped || rs[0].AggregateMbps <= 0 {
		t.Errorf("row 0 should have completed: %+v", rs[0])
	}
	ran := 0
	for i, r := range rs {
		if r.Campaign != "determinism" {
			t.Errorf("row %d lost its campaign label: %+v", i, r)
		}
		if !r.Skipped {
			ran++
		} else if r.Index != i || r.AggregateMbps != 0 {
			t.Errorf("unrun row %d not a clean skipped placeholder: %+v", i, r)
		}
	}
	if ran > 2 {
		t.Errorf("%d rows ran after cancellation at done=1 with 1 worker, want ≤ 2", ran)
	}
	// The partial run must agree row-for-row with an uncancelled one.
	full := Run(testSpec(1))
	for i, r := range rs {
		if !r.Skipped && !reflect.DeepEqual(r, full[i]) {
			t.Errorf("partial row %d differs from the full run", i)
		}
	}
}

// TestNamedWorkloads: the registered traffic patterns must measure
// goodput through the standard metrics — in particular upload goodput,
// which lands at the wired peer rather than a client, must be folded
// into AggregateMbps.
func TestNamedWorkloads(t *testing.T) {
	run := func(kind string, clients int) Result {
		wl, err := NamedWorkload(kind)
		if err != nil {
			t.Fatalf("NamedWorkload(%q): %v", kind, err)
		}
		s := Spec{
			Name:     kind,
			Base:     scenario.New(scenario.WithSoRa(), scenario.WithClients(clients)),
			Warmup:   500 * sim.Millisecond,
			Measure:  500 * sim.Millisecond,
			Workers:  1,
			Workload: wl,
		}
		return Run(s)[0]
	}

	up := run("upload", 1)
	if up.AggregateMbps <= 0 {
		t.Errorf("upload workload: aggregate %.2f Mbps, want > 0 (upload flows not folded in?)", up.AggregateMbps)
	}
	if up.PerClientMbps[0] != 0 {
		t.Errorf("upload workload: client meter %.2f Mbps, want 0 (goodput lands at the peer)", up.PerClientMbps[0])
	}

	mixed := run("mixed", 2)
	if mixed.PerClientMbps[0] <= 0 {
		t.Errorf("mixed workload: downloading client got %.2f Mbps", mixed.PerClientMbps[0])
	}
	if mixed.AggregateMbps <= mixed.PerClientMbps[0]+mixed.PerClientMbps[1] {
		t.Errorf("mixed workload: aggregate %.2f Mbps does not exceed the download share %.2f (upload missing)",
			mixed.AggregateMbps, mixed.PerClientMbps[0]+mixed.PerClientMbps[1])
	}

	if _, err := NamedWorkload("bogus"); err == nil {
		t.Error("NamedWorkload(bogus) did not error")
	}
}

func TestEmitters(t *testing.T) {
	rs := Run(testSpec(0))

	var jsonBuf bytes.Buffer
	if err := rs.WriteJSON(&jsonBuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(decoded) != len(rs) {
		t.Fatalf("JSON rows = %d, want %d", len(decoded), len(rs))
	}
	if decoded[4]["mode"] != "more-data" {
		t.Errorf("row 4 mode = %v, want more-data", decoded[4]["mode"])
	}

	var csvBuf bytes.Buffer
	if err := rs.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(rs)+1 {
		t.Fatalf("CSV lines = %d, want header + %d rows", len(lines), len(rs))
	}
	if !strings.HasPrefix(lines[0], "campaign,index,mode,clients,seed") {
		t.Errorf("CSV header = %q", lines[0])
	}
}
