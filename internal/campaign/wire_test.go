package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"tcphack/internal/sim"
)

// testWireSpec is the wire form of the determinism grid: the sora-stock
// registry scenario swept over 2 modes × 2 seeds = 4 points.
func testWireSpec() WireSpec {
	return WireSpec{
		Name:     "wire-test",
		Scenario: "sora-stock",
		Axes: WireAxes{
			Modes: []string{"off", "more-data"},
			Seeds: []int64{1, 2},
		},
		Warmup:  100 * sim.Millisecond,
		Measure: 100 * sim.Millisecond,
	}
}

// TestWireSpecRoundTrip: a spec that crosses a process boundary as JSON
// must materialize into a campaign whose rows are identical to the
// original's — the distributed layer's determinism foundation.
func TestWireSpecRoundTrip(t *testing.T) {
	w := testWireSpec()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, back) {
		t.Fatalf("wire spec not JSON-stable:\n sent: %+v\n got:  %+v", w, back)
	}

	orig, err := w.Spec()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := back.Spec()
	if err != nil {
		t.Fatal(err)
	}
	a, b := Run(orig), Run(remote)
	if len(a) != 4 {
		t.Fatalf("%d rows, want 4", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rows diverged across the wire round trip")
	}
}

// TestWireSpecValidation: every vocabulary error must surface at
// materialization, not as a worker crash.
func TestWireSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*WireSpec)
	}{
		{"unknown scenario", func(w *WireSpec) { w.Scenario = "no-such-scenario" }},
		{"bad mode", func(w *WireSpec) { w.Axes.Modes = []string{"bogus"} }},
		{"bad rate", func(w *WireSpec) { w.Axes.Rates = []string{"z99"} }},
		{"bad adapter", func(w *WireSpec) { w.Axes.Adapters = []string{"telepathy"} }},
		{"bad workload", func(w *WireSpec) { w.Workload = "scatter" }},
	}
	for _, tc := range cases {
		w := testWireSpec()
		tc.mutate(&w)
		if _, err := w.Spec(); err == nil {
			t.Errorf("%s: Spec() accepted %+v", tc.name, w)
		}
	}
}

// TestWireSpecWorkloadResolution: the explicit field wins; otherwise
// the scenario registry entry's workload applies.
func TestWireSpecWorkloadResolution(t *testing.T) {
	w := WireSpec{Scenario: "ht150-upload"}
	if got := w.ResolvedWorkload(); got != "upload" {
		t.Errorf("registry workload = %q, want upload", got)
	}
	w.Workload = "mixed"
	if got := w.ResolvedWorkload(); got != "mixed" {
		t.Errorf("explicit workload = %q, want mixed", got)
	}
	if w2 := testWireSpec(); w2.ResolvedWorkload() != "" {
		t.Errorf("sora-stock workload = %q, want default", w2.ResolvedWorkload())
	}
}

// TestFingerprintFields: the memoization identity must include what
// determines a row (axis values, windows, the swept-axis set) and
// exclude what does not (the display name).
func TestFingerprintFields(t *testing.T) {
	w := testWireSpec()
	spec, err := w.Spec()
	if err != nil {
		t.Fatal(err)
	}
	pt := spec.Points()[0]
	fields := w.FingerprintFields(pt)

	renamed := w
	renamed.Name = "same-sweep-other-label"
	if !reflect.DeepEqual(fields, renamed.FingerprintFields(pt)) {
		t.Error("display name leaked into the fingerprint fields")
	}

	if got := fields["swept"]; got != "mode,seed" {
		t.Errorf("swept = %q, want mode,seed", got)
	}
	// Sweeping an extra axis changes the identity even where the axis
	// value would be equal (axis materialization has side effects, e.g.
	// WithRate resets the LL ACK rate).
	withRate := w
	withRate.Axes.Rates = []string{"a54"}
	spec2, err := withRate.Spec()
	if err != nil {
		t.Fatal(err)
	}
	f2 := withRate.FingerprintFields(spec2.Points()[0])
	if f2["swept"] == fields["swept"] {
		t.Error("adding a rate axis did not change the swept set")
	}

	longer := w
	longer.Measure = 200 * sim.Millisecond
	if reflect.DeepEqual(fields, longer.FingerprintFields(pt)) {
		t.Error("measurement window not part of the fingerprint fields")
	}
}

// TestRunPoints: the shard primitive must reproduce exactly the rows a
// full Run puts at those indexes, honor cancellation between points,
// and reject out-of-range indexes.
func TestRunPoints(t *testing.T) {
	w := testWireSpec()
	spec, err := w.Spec()
	if err != nil {
		t.Fatal(err)
	}
	full := Run(spec)

	rows, err := RunPoints(context.Background(), spec, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if !reflect.DeepEqual(rows[0], full[2]) || !reflect.DeepEqual(rows[1], full[0]) {
		t.Error("shard rows differ from the full run's rows at the same indexes")
	}

	if _, err := RunPoints(context.Background(), spec, []int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err = RunPoints(cancelled, spec, []int{0, 1})
	if err != context.Canceled || len(rows) != 0 {
		t.Errorf("cancelled RunPoints = %d rows, err %v; want 0 rows, context.Canceled", len(rows), err)
	}
}

// TestProgressUnderCancellation is the regression test for the
// progress-callback contract when a sweep is cancelled: the unrun tail
// is accounted as Skipped rows through the same callback, and the
// reported counts must stay strictly increasing, never exceed the
// total, and reach it — previously the worker-side and tail-side
// accounting could double-count a row and overshoot.
func TestProgressUnderCancellation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		s := testSpec(workers)
		var dones []int
		s.Progress = func(done, total int) {
			if done == 1 {
				cancel()
			}
			if total != 8 {
				t.Errorf("workers=%d: total = %d, want 8", workers, total)
			}
			dones = append(dones, done)
		}
		if _, err := RunContext(ctx, s); err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(dones) == 0 {
			t.Fatalf("workers=%d: no progress calls", workers)
		}
		last := 0
		for i, d := range dones {
			if d <= last {
				t.Fatalf("workers=%d: call %d reported done=%d after %d (not strictly increasing)",
					workers, i, d, last)
			}
			if d > 8 {
				t.Fatalf("workers=%d: call %d reported done=%d > total", workers, i, d)
			}
			last = d
		}
		if last != 8 {
			t.Errorf("workers=%d: final progress %d, want 8 (cancelled tail must be reported)", workers, last)
		}
	}
}

// TestWireSpecRowsSurviveResultsJSON: a Result produced from a wire
// spec must survive the campaign JSON emitters bit-for-bit — what the
// distributed layer relies on when rows cross HTTP.
func TestWireSpecRowsSurviveResultsJSON(t *testing.T) {
	w := testWireSpec()
	spec, err := w.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunPoints(context.Background(), spec, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(rows); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	// Mode/Rate are json:"-" and the sweep flags are unexported: the
	// decoded row must still agree on every serialized field.
	if back[0].Campaign != rows[0].Campaign || back[0].ModeName != rows[0].ModeName ||
		back[0].RateKbps != rows[0].RateKbps ||
		back[0].AggregateMbps != rows[0].AggregateMbps ||
		!reflect.DeepEqual(back[0].PerClientMbps, rows[0].PerClientMbps) {
		t.Errorf("row changed across JSON:\n sent: %+v\n got:  %+v", rows[0], back[0])
	}
}
