package channel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// testRadio records channel callbacks.
type testRadio struct {
	pos      Pos
	busy     int
	idle     int
	received []Outcome
	frames   []any
}

func (r *testRadio) Position() Pos { return r.pos }
func (r *testRadio) CarrierBusy()  { r.busy++ }
func (r *testRadio) CarrierIdle()  { r.idle++ }
func (r *testRadio) EndRx(tx *Transmission, o Outcome) {
	r.received = append(r.received, o)
	r.frames = append(r.frames, tx.Frame)
}

func newTestMedium(model ErrorModel) (*sim.Scheduler, *Medium, *testRadio, *testRadio) {
	s := sim.NewScheduler(1)
	m := New(s, model)
	a := &testRadio{}
	b := &testRadio{pos: Pos{X: 5}}
	m.Attach(a)
	m.Attach(b)
	return s, m, a, b
}

func TestDeliverySingleTx(t *testing.T) {
	s, m, a, b := newTestMedium(nil)
	m.Transmit(a, phy.RateA54, 1500, "hello")
	s.Run()
	if len(b.received) != 1 || b.received[0] != RxOK {
		t.Fatalf("b received %v", b.received)
	}
	if b.frames[0] != "hello" {
		t.Errorf("frame = %v", b.frames[0])
	}
	if len(a.received) != 0 {
		t.Error("sender received its own frame")
	}
	if b.busy != 1 || b.idle != 1 {
		t.Errorf("busy/idle = %d/%d, want 1/1", b.busy, b.idle)
	}
	if m.TxCount != 1 {
		t.Errorf("TxCount = %d", m.TxCount)
	}
}

func TestDeliveryTiming(t *testing.T) {
	s, m, a, b := newTestMedium(nil)
	var deliveredAt sim.Time
	s.At(0, func() { m.Transmit(a, phy.RateA24, 14, "ack") })
	s.Run()
	_ = b
	deliveredAt = s.Now()
	if want := phy.FrameDuration(phy.RateA24, 14); deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestCollisionBothLost(t *testing.T) {
	s, m, a, b := newTestMedium(nil)
	c := &testRadio{pos: Pos{Y: 3}}
	m.Attach(c)
	// a and b transmit overlapping frames; c must see both as collided.
	s.At(0, func() { m.Transmit(a, phy.RateA54, 1500, "A") })
	s.At(10*sim.Microsecond, func() { m.Transmit(b, phy.RateA54, 1500, "B") })
	s.Run()
	if len(c.received) != 2 {
		t.Fatalf("c received %d frames", len(c.received))
	}
	for i, o := range c.received {
		if o != RxCollided {
			t.Errorf("frame %d outcome %v, want collided", i, o)
		}
	}
	// a hears b's frame (collided), b hears a's.
	if a.received[0] != RxCollided || b.received[0] != RxCollided {
		t.Error("transmitters did not observe collision")
	}
	if m.CollidedTx != 2 {
		t.Errorf("CollidedTx = %d, want 2", m.CollidedTx)
	}
}

func TestNonOverlappingNoCollision(t *testing.T) {
	s, m, a, b := newTestMedium(nil)
	d := phy.FrameDuration(phy.RateA54, 1500)
	s.At(0, func() { m.Transmit(a, phy.RateA54, 1500, 1) })
	s.At(d+sim.Microsecond, func() { m.Transmit(a, phy.RateA54, 1500, 2) }) // gap, no overlap
	s.Run()
	if len(b.received) != 2 {
		t.Fatalf("received %d", len(b.received))
	}
	for _, o := range b.received {
		if o != RxOK {
			t.Errorf("outcome %v", o)
		}
	}
	if b.busy != 2 || b.idle != 2 {
		t.Errorf("busy/idle = %d/%d", b.busy, b.idle)
	}
}

func TestThreeWayCollision(t *testing.T) {
	s, m, a, b := newTestMedium(nil)
	c := &testRadio{}
	m.Attach(c)
	s.At(0, func() { m.Transmit(a, phy.RateA6, 100, nil) })
	s.At(sim.Microsecond, func() { m.Transmit(b, phy.RateA6, 100, nil) })
	s.At(2*sim.Microsecond, func() { m.Transmit(c, phy.RateA6, 100, nil) })
	s.Run()
	if m.CollidedTx != 3 {
		t.Errorf("CollidedTx = %d, want 3", m.CollidedTx)
	}
}

func TestBusyTracking(t *testing.T) {
	s, m, a, _ := newTestMedium(nil)
	if m.Busy() {
		t.Error("medium busy at start")
	}
	s.At(0, func() {
		m.Transmit(a, phy.RateA6, 1000, nil)
		if !m.Busy() {
			t.Error("medium idle during tx")
		}
	})
	s.Run()
	if m.Busy() {
		t.Error("medium busy after tx")
	}
	if m.AirtimeBusy != phy.FrameDuration(phy.RateA6, 1000) {
		t.Errorf("airtime = %v", m.AirtimeBusy)
	}
}

func TestFixedLoss(t *testing.T) {
	model := &FixedLoss{Default: 1.0}
	_, m, a, b := newTestMedium(model)
	if !m.Corrupted(a, b, phy.RateA54, 1500) {
		t.Error("loss 1.0 did not corrupt")
	}
	// Per-link override: lossless a→b.
	model.SetLink(a, b, 0)
	if m.Corrupted(a, b, phy.RateA54, 1500) {
		t.Error("per-link 0 corrupted")
	}
	if got := model.LossProb(b, a, phy.RateA54, 10); got != 1.0 {
		t.Errorf("reverse link loss = %v, want default", got)
	}
	if m.CorruptedRx != 1 || m.DeliveredRx != 1 {
		t.Errorf("counters %d/%d, want 1/1", m.CorruptedRx, m.DeliveredRx)
	}
}

func TestFixedLossStatistics(t *testing.T) {
	model := &FixedLoss{Default: 0.3}
	_, m, a, b := newTestMedium(model)
	n := 5000
	lost := 0
	for i := 0; i < n; i++ {
		if m.Corrupted(a, b, phy.RateA54, 100) {
			lost++
		}
	}
	frac := float64(lost) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("observed loss %.3f, want ≈0.30", frac)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	g := &GilbertElliott{
		PGoodToBad: 0.05, PBadToGood: 0.2,
		LossGood: 0.0, LossBad: 1.0,
		Rng: rand.New(rand.NewSource(7)),
	}
	// Drive the chain and check it visits both states and produces
	// runs (burstiness): expected bad fraction = 0.05/(0.05+0.2) = 0.2.
	bad := 0
	n := 10000
	for i := 0; i < n; i++ {
		if g.LossProb(nil, nil, phy.RateA6, 0) > 0.5 {
			bad++
		}
	}
	frac := float64(bad) / float64(n)
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("bad-state fraction %.3f, want ≈0.2", frac)
	}
}

// TestGilbertElliottForkPerMedium: a configured GilbertElliott acts as
// a template — each medium forks its own copy (fresh chain state, RNG
// from the network's deterministic stream), so the template is never
// mutated and identical schedulers observe identical loss processes.
func TestGilbertElliottForkPerMedium(t *testing.T) {
	tmpl := &GilbertElliott{
		PGoodToBad: 0.05, PBadToGood: 0.2,
		LossGood: 0.0, LossBad: 1.0,
	}
	drive := func() []bool {
		sched := sim.NewScheduler(42)
		m := New(sched, tmpl)
		a, b := &testRadio{}, &testRadio{pos: Pos{X: 5}}
		m.Attach(a)
		m.Attach(b)
		out := make([]bool, 2000)
		for i := range out {
			out[i] = m.Corrupted(a, b, phy.RateA54, 1500)
		}
		return out
	}
	first := drive()
	second := drive()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("equal-seed media observed different bursty loss processes")
	}
	if tmpl.Rng != nil || tmpl.bad {
		t.Errorf("template mutated: rng=%v bad=%v", tmpl.Rng, tmpl.bad)
	}
	lost := 0
	for _, l := range first {
		if l {
			lost++
		}
	}
	if lost == 0 || lost == len(first) {
		t.Errorf("forked chain inert: %d/%d lost", lost, len(first))
	}
}

// TestIndependentForksStatefulComponents: forking must reach stateful
// models nested inside Independent compositions without disturbing the
// stateless siblings.
func TestIndependentForksStatefulComponents(t *testing.T) {
	ge := &GilbertElliott{PGoodToBad: 0.05, PBadToGood: 0.2, LossBad: 1.0}
	fixed := &FixedLoss{Default: 0.1}
	comp := Independent(fixed, ge)
	forked, ok := forkModel(comp, func() *rand.Rand { return rand.New(rand.NewSource(9)) })
	if !ok {
		t.Fatal("composite with a stateful component reported nothing to fork")
	}
	fc, isComp := forked.(independent)
	if !isComp || len(fc) != 2 {
		t.Fatalf("fork changed composition shape: %T", forked)
	}
	if fc[0] != ErrorModel(fixed) {
		t.Error("stateless component was not shared as-is")
	}
	if fc[1] == ErrorModel(ge) {
		t.Error("stateful component was not forked")
	}
	if _, ok := forkModel(Independent(fixed, &SNRModel{}), func() *rand.Rand {
		t.Fatal("stateless composite consumed an RNG fork")
		return nil
	}); ok {
		t.Error("stateless composite reported a fork")
	}
}

// TestFindSNRModel locates the SNR model inside compositions.
func TestFindSNRModel(t *testing.T) {
	snr := DefaultSNRModel()
	if FindSNRModel(snr) != snr {
		t.Error("direct SNRModel not found")
	}
	if FindSNRModel(Independent(&FixedLoss{Default: 0.1}, snr)) != snr {
		t.Error("composed SNRModel not found")
	}
	if FindSNRModel(&FixedLoss{}) != nil || FindSNRModel(nil) != nil {
		t.Error("phantom SNRModel found")
	}
}

func TestCodedBERMonotoneInSNR(t *testing.T) {
	for _, r := range phy.RatesA {
		prev := math.Inf(1)
		for snr := -5.0; snr <= 40; snr += 0.5 {
			b := CodedBER(r, snr)
			if b > prev+1e-15 {
				t.Fatalf("%v: BER not monotone at %.1f dB (%g > %g)", r, snr, b, prev)
			}
			prev = b
		}
	}
}

func TestFasterRatesNeedMoreSNR(t *testing.T) {
	// At a mid SNR, higher rates must have ≥ BER of lower rates — with
	// the one well-known real-world inversion: 9 Mbps (BPSK 3/4) is
	// weaker than 12 Mbps (QPSK 1/2), which is why 9 Mbps is rarely
	// used in practice. The model reproduces that, so skip the 9→12
	// pair.
	for _, snr := range []float64{5, 10, 15, 20, 25} {
		for i := 0; i+1 < len(phy.RatesA); i++ {
			if phy.RatesA[i].Kbps == 9000 {
				continue
			}
			lo := CodedBER(phy.RatesA[i], snr)
			hi := CodedBER(phy.RatesA[i+1], snr)
			if hi < lo-1e-12 {
				t.Errorf("at %v dB, %v BER (%g) < %v BER (%g)",
					snr, phy.RatesA[i+1], hi, phy.RatesA[i], lo)
			}
		}
	}
	// And the documented inversion really holds (it is a property of
	// the code spectra, not a bug).
	if CodedBER(phy.RateA9, 8) < CodedBER(phy.RateA12, 8) {
		t.Error("expected BPSK 3/4 to be weaker than QPSK 1/2 at 8 dB")
	}
}

func TestFrameErrorRateWaterfalls(t *testing.T) {
	// Rough operating points for 1500-byte frames: BPSK 1/2 usable by
	// ~6 dB; 64-QAM 3/4 not usable at 15 dB, usable by ~27 dB.
	if per := FrameErrorRate(phy.RateA6, 6, 1500); per > 0.05 {
		t.Errorf("6 Mbps @6dB PER = %.3f, want <0.05", per)
	}
	if per := FrameErrorRate(phy.RateA6, 0, 1500); per < 0.5 {
		t.Errorf("6 Mbps @0dB PER = %.3f, want >0.5", per)
	}
	if per := FrameErrorRate(phy.RateA54, 15, 1500); per < 0.9 {
		t.Errorf("54 Mbps @15dB PER = %.3f, want ≈1", per)
	}
	if per := FrameErrorRate(phy.RateA54, 27, 1500); per > 0.05 {
		t.Errorf("54 Mbps @27dB PER = %.3f, want <0.05", per)
	}
	// HT MCS7 (64-QAM 5/6) needs slightly more than MCS6.
	mcs7, mcs6 := phy.HTRate(7, 1), phy.HTRate(6, 1)
	if FrameErrorRate(mcs7, 26, 1500) < FrameErrorRate(mcs6, 26, 1500)-1e-9 {
		t.Error("MCS7 easier than MCS6 at 26 dB")
	}
	// Longer frames fail more.
	if FrameErrorRate(phy.RateA24, 14, 64) > FrameErrorRate(phy.RateA24, 14, 1500) {
		t.Error("short frame PER exceeds long frame PER")
	}
	// Extremes clamp.
	if FrameErrorRate(phy.RateA54, -20, 1500) != 1 {
		t.Error("PER at -20 dB should clamp to 1 (BER 0.5 regime)")
	}
	if FrameErrorRate(phy.RateA6, 60, 1500) != 0 {
		t.Error("PER at 60 dB should be 0")
	}
}

func TestSNRModelGeometry(t *testing.T) {
	mdl := DefaultSNRModel()
	// SNR decreases with distance.
	if mdl.SNRAt(1) <= mdl.SNRAt(10) {
		t.Error("SNR not decreasing with distance")
	}
	// DistanceForSNR inverts SNRAt.
	for _, snr := range []float64{5, 15, 25} {
		d := mdl.DistanceForSNR(snr)
		if got := mdl.SNRAt(d); math.Abs(got-snr) > 0.01 {
			t.Errorf("roundtrip SNR %v → d=%.2f → %v", snr, d, got)
		}
	}
	// Sub-metre clamps to 1 m.
	if mdl.SNRAt(0.1) != mdl.SNRAt(1) {
		t.Error("sub-metre distance not clamped")
	}
	// Override pins the SNR.
	snr := 12.5
	mdl.SNROverrideDB = &snr
	if mdl.SNRAt(1000) != 12.5 {
		t.Error("override ignored")
	}
}

func TestSNRModelAsErrorModel(t *testing.T) {
	mdl := DefaultSNRModel()
	s := sim.NewScheduler(1)
	m := New(s, mdl)
	a := &testRadio{}
	// ~3 m: strong signal at 6 Mbps.
	b := &testRadio{pos: Pos{X: 3}}
	m.Attach(a)
	m.Attach(b)
	ok := 0
	for i := 0; i < 100; i++ {
		if !m.Corrupted(a, b, phy.RateA6, 1500) {
			ok++
		}
	}
	if ok < 95 {
		t.Errorf("only %d/100 frames delivered at 3 m / 6 Mbps", ok)
	}
	// At 60 m the paper-style office model should be mostly dead for
	// 54 Mbps frames.
	c := &testRadio{pos: Pos{X: 60}}
	m.Attach(c)
	ok = 0
	for i := 0; i < 100; i++ {
		if !m.Corrupted(a, c, phy.RateA54, 1500) {
			ok++
		}
	}
	if ok > 20 {
		t.Errorf("%d/100 54 Mbps frames delivered at 60 m; model too generous", ok)
	}
}

func TestOutcomeString(t *testing.T) {
	if RxOK.String() != "ok" || RxCollided.String() != "collided" || RxCorrupted.String() != "corrupted" {
		t.Error("outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome empty")
	}
}

func TestPosDistance(t *testing.T) {
	if d := (Pos{0, 0}).DistanceTo(Pos{3, 4}); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
}

func BenchmarkMediumTransmit(b *testing.B) {
	s := sim.NewScheduler(1)
	m := New(s, nil)
	a := &testRadio{}
	r := &testRadio{}
	m.Attach(a)
	m.Attach(r)
	b.ReportAllocs()
	d := phy.FrameDuration(phy.RateA54, 1500)
	for i := 0; i < b.N; i++ {
		m.Transmit(a, phy.RateA54, 1500, nil)
		s.RunUntil(s.Now() + d)
	}
}

func BenchmarkFrameErrorRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FrameErrorRate(phy.RateA54, 22.5, 1500)
	}
}

func TestIndependentComposition(t *testing.T) {
	a := &FixedLoss{Default: 0.1}
	b := &FixedLoss{Default: 0.2}
	got := Independent(a, b).LossProb(nil, nil, phy.RateA54, 1500)
	want := 1 - 0.9*0.8
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("combined loss = %v, want %v", got, want)
	}
	if p := Independent(a).LossProb(nil, nil, phy.RateA54, 1500); p != 0.1 {
		t.Errorf("single-model Independent = %v, want 0.1", p)
	}
	if p := Independent().LossProb(nil, nil, phy.RateA54, 1500); p != 0 {
		t.Errorf("empty Independent = %v, want 0 (NoLoss)", p)
	}
}
