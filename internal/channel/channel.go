package channel

import (
	"fmt"
	"math"
	"math/rand"

	"tcphack/internal/phy"
	"tcphack/internal/sim"
	"tcphack/internal/trace"
)

// Pos is a 2-D position in metres.
type Pos struct{ X, Y float64 }

// DistanceTo returns the Euclidean distance in metres.
func (p Pos) DistanceTo(q Pos) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Outcome classifies the fate of one frame at one receiver.
type Outcome int

const (
	// RxOK means the frame decoded successfully.
	RxOK Outcome = iota
	// RxCollided means another transmission overlapped in time.
	RxCollided
	// RxCorrupted means channel noise defeated the FEC.
	RxCorrupted
)

func (o Outcome) String() string {
	switch o {
	case RxOK:
		return "ok"
	case RxCollided:
		return "collided"
	case RxCorrupted:
		return "corrupted"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Transmission describes one PPDU in flight.
type Transmission struct {
	// ID numbers transmissions from 1 in transmit order; trace
	// tx_start / tx_end / collision records correlate through it.
	ID       uint64
	Source   Radio
	Rate     phy.Rate
	Length   int // PPDU payload length in bytes
	Frame    any // opaque MAC frame
	Start    sim.Time
	End      sim.Time
	collided bool

	// Spatial-regime state: the source's radio index and, per receiver
	// index, the worst-instant aggregate interference power (mW) seen
	// during the frame. +Inf marks a receiver that was itself
	// transmitting during an overlap (half-duplex: it can never decode).
	srcIdx    int
	interfMax []float64
}

// Duration returns the airtime of the transmission.
func (t *Transmission) Duration() sim.Duration { return t.End - t.Start }

// Radio is the channel-facing side of a station. The medium invokes
// CarrierBusy/CarrierIdle as the channel transitions between any
// activity and silence, and EndRx once per completed transmission from
// another radio.
//
// The medium decides collisions (overlap in time); noise corruption is
// drawn by the receiver per decoded unit via Medium.Corrupted, so that
// individual MPDUs inside an A-MPDU fail independently — the property
// that makes Block ACK selective retransmission meaningful.
type Radio interface {
	// Position in metres, for path-loss models.
	Position() Pos
	// CarrierBusy is called when the medium goes busy (including the
	// radio's own transmissions).
	CarrierBusy()
	// CarrierIdle is called when the medium goes idle.
	CarrierIdle()
	// EndRx delivers a completed transmission and its outcome at this
	// radio (RxOK or RxCollided). Frames are delivered promiscuously;
	// MAC-layer address filtering is the receiver's job.
	EndRx(tx *Transmission, outcome Outcome)
}

// ErrorModel yields the probability that a non-collided frame is
// corrupted at a receiver. Models installed in a node.Config that is
// shared across concurrently running networks (a campaign base) must
// be safe for concurrent read; stateful models additionally implement
// ForkableErrorModel so each network gets its own instance.
type ErrorModel interface {
	LossProb(src, dst Radio, rate phy.Rate, length int) float64
}

// ForkableErrorModel is implemented by stateful error models (ones
// whose LossProb mutates internal state, like GilbertElliott's Markov
// chain). New forks such a model once per medium — the same pattern as
// the medium's own RNG fork — so one configured model instance can
// seed many concurrently running networks, each with independent,
// deterministic loss state.
type ForkableErrorModel interface {
	ErrorModel
	// ForkErrorModel returns an independent instance with fresh state,
	// drawing randomness from rng.
	ForkErrorModel(rng *rand.Rand) ErrorModel
}

// forkModel recursively forks any stateful components of model,
// calling fork only when a fork is actually needed so that stateless
// configurations consume no extra RNG draws (their event streams stay
// bit-identical to builds that predate forking).
func forkModel(model ErrorModel, fork func() *rand.Rand) (ErrorModel, bool) {
	switch v := model.(type) {
	case independent:
		out := make(independent, len(v))
		forked := false
		for i, c := range v {
			f, ok := forkModel(c, fork)
			out[i] = f
			forked = forked || ok
		}
		if forked {
			return out, true
		}
		return model, false
	case ForkableErrorModel:
		return v.ForkErrorModel(fork()), true
	}
	return model, false
}

// Medium is the broadcast channel. It is driven entirely by the
// simulation scheduler and is not safe for concurrent use.
type Medium struct {
	sched    *sim.Scheduler
	model    ErrorModel
	rng      *rand.Rand
	radios   []Radio
	active   map[*Transmission]struct{}
	finishFn func(any) // persistent Post callback for transmission ends

	// Tracer, when non-nil, receives tx_start / tx_end / collision
	// probes. Assign it before the first Transmit; it observes only and
	// never perturbs the medium's RNG or event stream.
	Tracer trace.Tracer
	// nextMeta annotates the next Transmit for tracing (see StageTx).
	nextMeta TxMeta

	// Geometry, when non-nil, switches the medium to the spatial PHY:
	// per-pair path loss, per-receiver carrier sensing, and SINR-based
	// capture (see doc.go). Assign it before the first Transmit; radio
	// positions are sampled when the power matrix is built and must not
	// move afterwards. Nil keeps the scalar single-collision-domain
	// channel bit-identical to pre-spatial builds.
	Geometry *Geometry

	// Spatial-regime state, built lazily by ensureSpatial.
	radioIdx   map[Radio]int
	powerMW    [][]float64 // symmetric rx-power matrix, diagonal 0
	txOwn      []int       // in-flight transmissions per source radio
	senseBusy  []bool      // last carrier state reported to each radio
	senseMW    []float64   // summed on-air rx power at each radio
	activeList []*Transmission
	noiseMW    float64
	csMW       float64
	floorMW    float64
	scratchSum []float64
	scratchOut []Outcome
	interfFree [][]float64

	// Stats.
	TxCount        uint64
	CollidedTx     uint64
	CorruptedRx    uint64
	DeliveredRx    uint64
	AirtimeBusy    sim.Duration
	lastBusyStart  sim.Time
	busyDepthTotal int
}

// New creates a medium using the scheduler's clock and a forked random
// stream. A nil model means a lossless channel. Stateful error models
// (ForkableErrorModel, e.g. GilbertElliott) are forked per medium so
// the configured instance is never mutated and can be reused across
// concurrently running networks.
func New(sched *sim.Scheduler, model ErrorModel) *Medium {
	if model == nil {
		model = NoLoss{}
	}
	m := &Medium{
		sched:  sched,
		rng:    sched.ForkRand(),
		active: make(map[*Transmission]struct{}),
	}
	m.finishFn = func(a any) { m.finish(a.(*Transmission)) }
	if forked, ok := forkModel(model, sched.ForkRand); ok {
		model = forked
	}
	m.model = model
	return m
}

// Attach registers a radio with the medium.
func (m *Medium) Attach(r Radio) { m.radios = append(m.radios, r) }

// Busy reports whether any transmission is in flight.
func (m *Medium) Busy() bool { return len(m.active) > 0 }

// TxMeta annotates the next Transmit call for tracing: the MAC stages
// it (StageTx) immediately before transmitting, carrying the frame
// class and addressing the channel layer cannot see, so the tx_start
// probe is emitted inside Transmit — before any collision probes for
// the same transmission.
type TxMeta struct {
	// Src and Dst are MAC addresses.
	Src, Dst uint16
	// Class is the frame's airtime-attribution class.
	Class trace.FrameClass
	// MPDUs is the A-MPDU batch size (0 for control frames).
	MPDUs int
	// Retried counts MPDUs in the batch carrying a retry.
	Retried int
	// Extra is the HACK-payload share of an ACK frame's duration.
	Extra sim.Duration
}

// StageTx stages tracing metadata for the next Transmit call. Only
// useful when a Tracer is attached; the metadata is consumed (and
// reset) by that Transmit.
func (m *Medium) StageTx(meta TxMeta) { m.nextMeta = meta }

// Transmit starts sending frame at rate; the PPDU carries length
// payload bytes. Completion (and delivery at every other radio) is
// scheduled automatically. Returns the transmission for tracing.
func (m *Medium) Transmit(src Radio, rate phy.Rate, length int, frame any) *Transmission {
	now := m.sched.Now()
	tx := &Transmission{
		Source: src,
		Rate:   rate,
		Length: length,
		Frame:  frame,
		Start:  now,
		End:    now + phy.FrameDuration(rate, length),
	}
	m.TxCount++
	tx.ID = m.TxCount
	if m.Tracer != nil {
		meta := m.nextMeta
		m.nextMeta = TxMeta{}
		m.Tracer.TxStart(now, tx.ID, meta.Src, meta.Dst, meta.Class,
			rate.Kbps, length, meta.MPDUs, meta.Retried, tx.End, meta.Extra)
	}
	if m.Geometry != nil {
		m.transmitSpatial(tx, now)
		m.sched.Post(tx.End, m.finishFn, tx)
		return tx
	}
	// Any overlap collides every involved transmission, both ways. A
	// transmission ending exactly now does not overlap (its finish event
	// may simply not have run yet at this instant).
	for other := range m.active {
		if other.End <= now {
			continue
		}
		if m.Tracer != nil {
			m.Tracer.Collision(now, tx.ID, other.ID)
		}
		if !tx.collided {
			tx.collided = true
			m.CollidedTx++
		}
		if !other.collided {
			other.collided = true
			m.CollidedTx++
		}
	}
	if len(m.active) == 0 {
		m.lastBusyStart = now
		for _, r := range m.radios {
			r.CarrierBusy()
		}
	}
	m.active[tx] = struct{}{}
	m.sched.Post(tx.End, m.finishFn, tx)
	return tx
}

func (m *Medium) finish(tx *Transmission) {
	if m.Geometry != nil {
		m.finishSpatial(tx)
		return
	}
	delete(m.active, tx)
	if len(m.active) == 0 {
		m.AirtimeBusy += m.sched.Now() - m.lastBusyStart
	}
	if m.Tracer != nil {
		m.Tracer.TxEnd(m.sched.Now(), tx.ID, tx.collided)
	}
	for _, r := range m.radios {
		if r == tx.Source {
			continue
		}
		outcome := RxOK
		if tx.collided {
			outcome = RxCollided
		}
		r.EndRx(tx, outcome)
	}
	// Idle notification strictly after deliveries: receivers see the
	// frame before timers that the idle transition may restart.
	if len(m.active) == 0 {
		for _, r := range m.radios {
			r.CarrierIdle()
		}
	}
}

// Corrupted draws whether a decode unit of length bytes from src
// fails at dst due to channel noise. Receivers call it once per MPDU
// of an A-MPDU (independent delimiter-CRC failures) and once per
// control or unaggregated frame.
func (m *Medium) Corrupted(src, dst Radio, rate phy.Rate, length int) bool {
	p := m.model.LossProb(src, dst, rate, length)
	if p > 0 && m.rng.Float64() < p {
		m.CorruptedRx++
		return true
	}
	m.DeliveredRx++
	return false
}

// NoLoss is the lossless channel.
type NoLoss struct{}

// LossProb implements ErrorModel.
func (NoLoss) LossProb(_, _ Radio, _ phy.Rate, _ int) float64 { return 0 }

// FixedLoss applies a constant frame-loss probability per directed
// link, with a default for unlisted pairs. It reproduces testbed-style
// loss asymmetry (the paper's Client 1 lost more frames than Client 2).
type FixedLoss struct {
	Default float64
	// PerLink overrides the default for a specific (src,dst) pair.
	PerLink map[[2]Radio]float64
}

// SetLink sets the loss probability for frames from src to dst.
func (f *FixedLoss) SetLink(src, dst Radio, p float64) {
	if f.PerLink == nil {
		f.PerLink = make(map[[2]Radio]float64)
	}
	f.PerLink[[2]Radio{src, dst}] = p
}

// LossProb implements ErrorModel.
func (f *FixedLoss) LossProb(src, dst Radio, _ phy.Rate, _ int) float64 {
	if p, ok := f.PerLink[[2]Radio{src, dst}]; ok {
		return p
	}
	return f.Default
}

// Independent composes error models as independent loss processes: a
// frame survives only if it survives every model, so the combined loss
// probability is 1-Π(1-pᵢ). With zero or one model it degenerates to
// NoLoss or the model itself.
func Independent(models ...ErrorModel) ErrorModel {
	switch len(models) {
	case 0:
		return NoLoss{}
	case 1:
		return models[0]
	}
	return independent(models)
}

type independent []ErrorModel

// LossProb implements ErrorModel.
func (ms independent) LossProb(src, dst Radio, rate phy.Rate, length int) float64 {
	survive := 1.0
	for _, m := range ms {
		survive *= 1 - m.LossProb(src, dst, rate, length)
	}
	return 1 - survive
}

// GilbertElliott is a two-state bursty loss model: the link flips
// between a good state (loss pG) and a bad state (loss pB) with the
// given per-frame transition probabilities. Used for failure-injection
// tests of HACK's repeated-Block-ACK-loss recovery (paper Figure 8)
// and as the bursty-loss scenario axis (scenario.WithBurstyLoss).
//
// The model is stateful, so a configured instance acts as a template:
// each Medium forks its own copy with fresh chain state and an RNG
// from the network's deterministic stream (ForkErrorModel), which
// makes it safe to put in a campaign base configuration. Rng may be
// left nil when the model is used through node/campaign construction;
// it is only required when calling LossProb on the instance directly.
type GilbertElliott struct {
	PGoodToBad, PBadToGood float64
	LossGood, LossBad      float64
	Rng                    *rand.Rand

	bad bool
}

// ForkErrorModel implements ForkableErrorModel: a copy with fresh
// chain state drawing from rng, leaving the template untouched.
func (g *GilbertElliott) ForkErrorModel(rng *rand.Rand) ErrorModel {
	c := *g
	c.Rng = rng
	c.bad = false
	return &c
}

// LossProb implements ErrorModel; it advances the Markov chain one
// step per queried frame.
func (g *GilbertElliott) LossProb(_, _ Radio, _ phy.Rate, _ int) float64 {
	if g.bad {
		if g.Rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if g.Rng.Float64() < g.PGoodToBad {
		g.bad = true
	}
	if g.bad {
		return g.LossBad
	}
	return g.LossGood
}

// SNRModel computes frame loss from physics: transmit power minus
// log-distance path loss over noise, then modulation-specific AWGN BER
// with a Chernoff union bound for the convolutional code, then
// PER = 1-(1-BER)^bits.
type SNRModel struct {
	// TxPowerDBm is the transmit power (default 16 dBm).
	TxPowerDBm float64
	// RefLossDB is path loss at 1 m (≈46.7 dB at 2.4 GHz free space).
	RefLossDB float64
	// Exponent is the path-loss exponent (3.0 ≈ indoor office).
	Exponent float64
	// NoiseDBm is the receiver noise floor (thermal + noise figure;
	// ≈ -90.9 dBm for 40 MHz with a 7 dB noise figure).
	NoiseDBm float64
	// SNROverrideDB, if non-nil, bypasses geometry and fixes the SNR —
	// how the Figure 11 sweep sets its x-axis directly.
	SNROverrideDB *float64
}

// DefaultSNRModel returns parameters matching the paper's setup
// (indoor, 40 MHz 802.11n).
func DefaultSNRModel() *SNRModel {
	return &SNRModel{
		TxPowerDBm: 16,
		RefLossDB:  46.7,
		Exponent:   3.0,
		NoiseDBm:   -90.9,
	}
}

// SNRAt returns the SNR in dB for a receiver at distance metres.
func (s *SNRModel) SNRAt(distance float64) float64 {
	if s.SNROverrideDB != nil {
		return *s.SNROverrideDB
	}
	if distance < 1 {
		distance = 1
	}
	pl := s.RefLossDB + 10*s.Exponent*math.Log10(distance)
	return s.TxPowerDBm - pl - s.NoiseDBm
}

// DistanceForSNR inverts SNRAt: the distance at which the model yields
// the target SNR. Used to place the Figure 11 client.
func (s *SNRModel) DistanceForSNR(snrDB float64) float64 {
	pl := s.TxPowerDBm - s.NoiseDBm - snrDB
	return math.Pow(10, (pl-s.RefLossDB)/(10*s.Exponent))
}

// LossProb implements ErrorModel.
func (s *SNRModel) LossProb(src, dst Radio, rate phy.Rate, length int) float64 {
	snrDB := s.SNRAt(src.Position().DistanceTo(dst.Position()))
	return FrameErrorRate(rate, snrDB, length)
}

// FindSNRModel walks an error model (descending into Independent
// compositions) and returns the first SNRModel found, or nil. Rate
// adapters use it to give the IdealSNR oracle the channel's actual
// SNR→error tables without perturbing stateful sibling models.
func FindSNRModel(em ErrorModel) *SNRModel {
	switch v := em.(type) {
	case *SNRModel:
		return v
	case independent:
		for _, c := range v {
			if s := FindSNRModel(c); s != nil {
				return s
			}
		}
	}
	return nil
}

// FrameErrorRate returns the probability that a frame of length bytes
// at the given rate fails to decode at the given SNR (dB).
func FrameErrorRate(rate phy.Rate, snrDB float64, length int) float64 {
	ber := CodedBER(rate, snrDB)
	bits := float64(8 * length)
	// 1-(1-ber)^bits, computed stably.
	per := 1 - math.Exp(bits*math.Log1p(-ber))
	if per < 0 {
		return 0
	}
	if per > 1 {
		return 1
	}
	return per
}

// uncodedBER returns the raw channel bit error rate for a modulation
// at symbol SNR γ (linear). Standard AWGN Gray-coded expressions:
// BPSK ½erfc(√γ); QPSK ½erfc(√(γ/2)); 16-QAM ⅜erfc(√(γ/10));
// 64-QAM (7/24)erfc(√(γ/42)).
func uncodedBER(mod phy.Modulation, snrLin float64) float64 {
	switch mod {
	case phy.BPSK:
		return 0.5 * math.Erfc(math.Sqrt(snrLin))
	case phy.QPSK:
		return 0.5 * math.Erfc(math.Sqrt(snrLin/2))
	case phy.QAM16:
		return 0.375 * math.Erfc(math.Sqrt(snrLin/10))
	case phy.QAM64:
		return 7.0 / 24.0 * math.Erfc(math.Sqrt(snrLin/42))
	}
	panic("channel: unknown modulation")
}

// Distance spectra (first five terms) of the industry-standard K=7
// convolutional code and its punctured variants, used in the Chernoff
// union bound. Index 0 corresponds to the free distance.
var codeSpectra = map[phy.CodeRate]struct {
	dfree int
	ad    [5]float64
	step  int // distance increment between terms (2 for rate 1/2)
}{
	phy.R12: {dfree: 10, ad: [5]float64{36, 211, 1404, 11633, 77433}, step: 2},
	phy.R23: {dfree: 6, ad: [5]float64{3, 70, 285, 1276, 6160}, step: 1},
	phy.R34: {dfree: 5, ad: [5]float64{42, 201, 1492, 10469, 62935}, step: 1},
	phy.R56: {dfree: 4, ad: [5]float64{92, 528, 8694, 79453, 792114}, step: 1},
}

// CodedBER estimates the post-Viterbi bit error rate at snrDB for the
// rate's modulation and code, via the Chernoff parameter
// D = √(4p(1-p)) over the raw BER p (NIST error-model style).
func CodedBER(rate phy.Rate, snrDB float64) float64 {
	snrLin := math.Pow(10, snrDB/10)
	p := uncodedBER(rate.Mod, snrLin)
	if p <= 0 {
		return 0
	}
	if p >= 0.5 {
		return 0.5
	}
	spec, ok := codeSpectra[rate.Code]
	if !ok {
		panic(fmt.Sprintf("channel: no spectrum for code rate %v", rate.Code))
	}
	d := math.Sqrt(4 * p * (1 - p))
	var pe float64
	for i, a := range spec.ad {
		pe += a * math.Pow(d, float64(spec.dfree+i*spec.step))
	}
	pe /= float64(2 * spec.step)
	if pe > 0.5 {
		return 0.5
	}
	return pe
}
