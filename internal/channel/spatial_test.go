package channel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// scriptedMedium builds a medium with three radios in the legacy test
// layout and runs a fixed transmission script with overlapping and
// sequential frames — the stimulus for the degenerate-geometry
// equivalence check.
func scriptedMedium(g *Geometry) (*Medium, []*testRadio) {
	s := sim.NewScheduler(1)
	m := New(s, nil)
	m.Geometry = g
	a := &testRadio{}
	b := &testRadio{pos: Pos{X: 5}}
	c := &testRadio{pos: Pos{Y: 3}}
	m.Attach(a)
	m.Attach(b)
	m.Attach(c)
	// Overlap pair, a clean frame, then a triple overlap.
	s.At(0, func() { m.Transmit(a, phy.RateA54, 1500, "A1") })
	s.At(10*sim.Microsecond, func() { m.Transmit(b, phy.RateA54, 1500, "B1") })
	s.At(2*sim.Millisecond, func() { m.Transmit(c, phy.RateA24, 300, "C1") })
	s.At(4*sim.Millisecond, func() { m.Transmit(a, phy.RateA54, 1500, "A2") })
	s.At(4*sim.Millisecond+20*sim.Microsecond, func() { m.Transmit(b, phy.RateA54, 1400, "B2") })
	s.At(4*sim.Millisecond+40*sim.Microsecond, func() { m.Transmit(c, phy.RateA54, 1300, "C2") })
	s.Run()
	return m, []*testRadio{a, b, c}
}

// TestDegenerateMatchesScalar is the channel-level differential check:
// the spatial engine pinned to the degenerate geometry must reproduce
// the scalar channel's observable behavior — outcomes, frames, carrier
// edges, and counters — exactly.
func TestDegenerateMatchesScalar(t *testing.T) {
	lm, lr := scriptedMedium(nil)
	sm, sr := scriptedMedium(DegenerateGeometry())

	for i := range lr {
		if !reflect.DeepEqual(lr[i].received, sr[i].received) {
			t.Errorf("radio %d outcomes: scalar %v, spatial %v", i, lr[i].received, sr[i].received)
		}
		if !reflect.DeepEqual(lr[i].frames, sr[i].frames) {
			t.Errorf("radio %d frames: scalar %v, spatial %v", i, lr[i].frames, sr[i].frames)
		}
		if lr[i].busy != sr[i].busy || lr[i].idle != sr[i].idle {
			t.Errorf("radio %d busy/idle: scalar %d/%d, spatial %d/%d",
				i, lr[i].busy, lr[i].idle, sr[i].busy, sr[i].idle)
		}
	}
	if lm.TxCount != sm.TxCount {
		t.Errorf("TxCount: scalar %d, spatial %d", lm.TxCount, sm.TxCount)
	}
	if lm.CollidedTx != sm.CollidedTx {
		t.Errorf("CollidedTx: scalar %d, spatial %d", lm.CollidedTx, sm.CollidedTx)
	}
	if lm.AirtimeBusy != sm.AirtimeBusy {
		t.Errorf("AirtimeBusy: scalar %v, spatial %v", lm.AirtimeBusy, sm.AirtimeBusy)
	}
}

// TestSpatialReuse pins the hidden-terminal physics at the channel
// level: two senders out of mutual range transmit concurrently. Each
// sender's nearby receiver decodes its frame (spatial reuse / capture),
// a receiver in the crossfire loses both, and the senders never sense
// each other.
func TestSpatialReuse(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, nil)
	m.Geometry = DefaultGeometry()
	a := &testRadio{pos: Pos{X: 0}}
	b := &testRadio{pos: Pos{X: 100}}
	nearA := &testRadio{pos: Pos{X: 2}}
	nearB := &testRadio{pos: Pos{X: 98}}
	mid := &testRadio{pos: Pos{X: 50}}
	for _, r := range []*testRadio{a, b, nearA, nearB, mid} {
		m.Attach(r)
	}
	s.At(0, func() { m.Transmit(a, phy.RateA54, 1500, "A") })
	s.At(5*sim.Microsecond, func() { m.Transmit(b, phy.RateA54, 1500, "B") })
	s.Run()

	if got := nearA.received; len(got) != 1 || got[0] != RxOK {
		t.Errorf("nearA outcomes %v, want [ok] (capture over 98 m interferer)", got)
	}
	if got := nearB.received; len(got) != 1 || got[0] != RxOK {
		t.Errorf("nearB outcomes %v, want [ok]", got)
	}
	if len(mid.received) != 2 {
		t.Fatalf("mid received %d frames, want both", len(mid.received))
	}
	for i, o := range mid.received {
		if o != RxCollided {
			t.Errorf("mid frame %d outcome %v, want collided", i, o)
		}
	}
	// 100 m apart is far beyond the ≈51.5 m sense range: neither sender
	// hears the other, and the overlap is uncoupled spatial reuse —
	// neither a carrier edge nor a counted collision at the senders.
	if a.busy != 1 || b.busy != 1 {
		t.Errorf("sender busy edges a=%d b=%d, want 1 each (own tx only)", a.busy, b.busy)
	}
	if len(a.received) != 0 || len(b.received) != 0 {
		t.Errorf("senders received frames from out-of-range peer: a=%v b=%v",
			a.received, b.received)
	}
}

// TestSpatialCarrierSense checks the energy-detect deferral footprint:
// a radio inside the carrier-sense range gets busy/idle edges for a
// foreign transmission, a radio beyond it stays idle.
func TestSpatialCarrierSense(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, nil)
	m.Geometry = DefaultGeometry()
	src := &testRadio{}
	near := &testRadio{pos: Pos{X: 40}}
	far := &testRadio{pos: Pos{X: 60}}
	m.Attach(src)
	m.Attach(near)
	m.Attach(far)
	m.Transmit(src, phy.RateA54, 1500, "x")
	s.Run()

	if near.busy != 1 || near.idle != 1 {
		t.Errorf("near busy/idle = %d/%d, want 1/1", near.busy, near.idle)
	}
	if far.busy != 0 || far.idle != 0 {
		t.Errorf("far busy/idle = %d/%d, want 0/0 (beyond CS range)", far.busy, far.idle)
	}
	if len(near.received) != 1 || near.received[0] != RxOK {
		t.Errorf("near outcomes %v", near.received)
	}
	if len(far.received) != 0 {
		t.Errorf("far received %v, want nothing (below delivery floor)", far.received)
	}
	if src.busy != 1 || src.idle != 1 {
		t.Errorf("src busy/idle = %d/%d, want 1/1 (own transmission)", src.busy, src.idle)
	}
}

// TestCaptureThreshold checks the capture decision directly: a strong
// frame decodes over a weak interferer, the margin can disable capture
// entirely, and a frame with no interferers always decodes.
func TestCaptureThreshold(t *testing.T) {
	g := DefaultGeometry()
	if !g.CaptureOK(phy.RateA54, -50, nil) {
		t.Error("frame with no interferers must decode")
	}
	if !g.CaptureOK(phy.RateA54, -50, []float64{-85}) {
		t.Error("35 dB SIR should capture at 54 Mbps")
	}
	if g.CaptureOK(phy.RateA54, -60, []float64{-62}) {
		t.Error("2 dB SIR should not decode 64-QAM")
	}
	noCapture := *g
	noCapture.CaptureMarginDB = math.Inf(1)
	if noCapture.CaptureOK(phy.RateA54, -50, []float64{-85}) {
		t.Error("infinite capture margin must reject any overlapped frame")
	}
}

// TestSINRThresholdOrdering: faster rates need more SINR.
func TestSINRThresholdOrdering(t *testing.T) {
	rates := []phy.Rate{phy.RateA6, phy.RateA24, phy.RateA54}
	for i := 1; i < len(rates); i++ {
		lo, hi := SINRThresholdDB(rates[i-1]), SINRThresholdDB(rates[i])
		if hi <= lo {
			t.Errorf("threshold(%v)=%.2f not above threshold(%v)=%.2f",
				rates[i], hi, rates[i-1], lo)
		}
	}
}

// TestRxPowerMonotoneDistance: received power never increases with
// distance (property over random distance pairs).
func TestRxPowerMonotoneDistance(t *testing.T) {
	g := DefaultGeometry()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		d1 := rng.Float64() * 200
		d2 := d1 + rng.Float64()*200
		if g.RxPowerDBm(d1) < g.RxPowerDBm(d2) {
			t.Fatalf("closer sender weaker: P(%.2f m)=%.2f < P(%.2f m)=%.2f",
				d1, g.RxPowerDBm(d1), d2, g.RxPowerDBm(d2))
		}
	}
}

// TestSINRMonotoneInterferers: adding an interferer never raises SINR
// (property over random interferer sets).
func TestSINRMonotoneInterferers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		sig := -90 + rng.Float64()*60
		n := rng.Intn(6)
		ints := make([]float64, n)
		for j := range ints {
			ints[j] = -100 + rng.Float64()*60
		}
		before := SINRdB(sig, ints, -90.9)
		after := SINRdB(sig, append(ints, -100+rng.Float64()*60), -90.9)
		if after > before {
			t.Fatalf("adding interferer raised SINR: %.4f -> %.4f (set %v)",
				before, after, ints)
		}
	}
}

// TestPowerMatrixSymmetry: the pairwise rx-power matrix is symmetric
// with a zero diagonal, including rows appended by a mid-run Attach.
func TestPowerMatrixSymmetry(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, nil)
	m.Geometry = DefaultGeometry()
	rng := rand.New(rand.NewSource(3))
	radios := make([]*testRadio, 6)
	for i := range radios {
		radios[i] = &testRadio{pos: Pos{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
		m.Attach(radios[i])
	}
	m.ensureSpatial()
	// Mid-run attach: the matrix is extended, old entries preserved.
	late := &testRadio{pos: Pos{X: 33, Y: 44}}
	m.Attach(late)
	m.ensureSpatial()
	n := len(m.powerMW)
	if n != 7 {
		t.Fatalf("matrix order %d, want 7", n)
	}
	for i := 0; i < n; i++ {
		if m.powerMW[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %g, want 0", i, i, m.powerMW[i][i])
		}
		for j := 0; j < n; j++ {
			if m.powerMW[i][j] != m.powerMW[j][i] {
				t.Errorf("asymmetry [%d][%d]=%g vs [%d][%d]=%g",
					i, j, m.powerMW[i][j], j, i, m.powerMW[j][i])
			}
			if i != j && m.powerMW[i][j] <= 0 {
				t.Errorf("off-diagonal [%d][%d] = %g, want > 0", i, j, m.powerMW[i][j])
			}
		}
	}
}

// sinrPerms3 enumerates the six orderings of three interferers.
var sinrPerms3 = [6][3]int{
	{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}

// FuzzCapture asserts the decode decision is deterministic and
// independent of interferer order: for any signal level and interferer
// triple, every permutation yields the same CaptureOK verdict and the
// bit-identical SINR.
func FuzzCapture(f *testing.F) {
	f.Add(-60.0, -70.0, -75.0, -80.0, byte(1))
	f.Add(-82.0, -82.0, -82.0, -82.0, byte(5))
	f.Add(-50.0, -90.0, -55.0, -120.0, byte(3))
	f.Fuzz(func(t *testing.T, sig, i1, i2, i3 float64, perm byte) {
		for _, v := range []float64{sig, i1, i2, i3} {
			if math.IsNaN(v) || v > 30 || v < -200 {
				t.Skip("outside physical dBm range")
			}
		}
		g := DefaultGeometry()
		ints := []float64{i1, i2, i3}
		base := g.CaptureOK(phy.RateA54, sig, ints)
		baseSINR := SINRdB(sig, ints, g.NoiseDBm)
		p := sinrPerms3[int(perm)%len(sinrPerms3)]
		shuffled := []float64{ints[p[0]], ints[p[1]], ints[p[2]]}
		if got := g.CaptureOK(phy.RateA54, sig, shuffled); got != base {
			t.Fatalf("capture verdict order-dependent: %v vs %v for perm %v of %v",
				got, base, p, ints)
		}
		if got := SINRdB(sig, shuffled, g.NoiseDBm); got != baseSINR {
			t.Fatalf("SINR not bit-identical under permutation: %g vs %g", got, baseSINR)
		}
		if again := g.CaptureOK(phy.RateA54, sig, ints); again != base {
			t.Fatalf("capture verdict not deterministic: %v then %v", base, again)
		}
	})
}
