// Package channel models the shared wireless medium in one of two
// regimes selected by Medium.Geometry.
//
// # Scalar regime (Geometry == nil)
//
// The legacy single collision domain: every attached radio hears every
// transmission, any overlap in time collides every involved frame at
// every receiver (no capture effect), and non-collided frames are
// subject to an error model. This is the regime every pre-spatial
// golden baseline was recorded under, and it remains bit-identical.
//
// # Spatial regime (Geometry != nil)
//
// Radios have positions and the medium computes physics per pair:
//
//   - A log-distance path-loss model yields a symmetric per-pair
//     received-power matrix (Geometry.RxPowerDBm), built lazily from
//     radio positions at the first Transmit.
//   - Carrier sense is per receiver: a radio's CarrierBusy/CarrierIdle
//     edges fire when the summed received power of in-flight
//     transmissions crosses Geometry.CSThresholdDBm (own transmissions
//     always count as busy). Stations outside each other's sense range
//     do not defer to one another — hidden and exposed terminals
//     emerge from geometry, not special cases.
//   - Decoding uses SINR with capture: for each receiver the medium
//     tracks the worst-instant aggregate interference over the frame's
//     airtime, and the frame decodes (RxOK) iff its SINR clears the
//     rate's decode threshold (SINRThresholdDB) plus
//     Geometry.CaptureMarginDB. A frame with no overlap at a receiver
//     always decodes. Overlapping transmitters can never decode each
//     other (half-duplex). Receivers below Geometry.DeliveryFloorDBm
//     get no EndRx at all — no NAV, no EIFS, no promiscuous copy.
//
// The scalar regime is exactly the degenerate point of the spatial
// one: DegenerateGeometry() (carrier sense and delivery floor at -Inf,
// capture margin +Inf) reproduces the scalar channel's busy edges,
// collision marking, and deliveries byte-for-byte on the same event
// stream, drawing zero additional random numbers. The differential
// suite in internal/node pins that equivalence.
//
// Error models are orthogonal to both regimes and range from "no
// loss" through fixed per-link frame loss (used to reproduce the
// paper's SoRa testbed, which observed 12%/2% loss for stock TCP vs
// TCP/HACK) to a physical SNR model: log-distance path loss feeding
// AWGN bit-error-rate curves per modulation, with convolutional-code
// performance estimated by a Chernoff union bound (the approach of
// ns-3's NIST error model) — used for the paper's Figure 11 SNR
// sweep. SINRThresholdDB reuses the same FrameErrorRate tables, so
// the capture threshold and the noise model cannot drift apart.
package channel
