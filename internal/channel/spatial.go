package channel

import (
	"math"
	"sort"
	"sync"

	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// Geometry configures the spatial PHY regime (see doc.go): log-distance
// path loss, per-receiver carrier sensing, and SINR capture. A Geometry
// is read-only once in use — one instance may be shared by many
// concurrently running media (campaign workers).
type Geometry struct {
	// TxPowerDBm is the transmit power of every radio (default 16 dBm).
	TxPowerDBm float64
	// RefLossDB is path loss at 1 m (≈46.7 dB at 2.4 GHz free space).
	RefLossDB float64
	// Exponent is the path-loss exponent (3.0 ≈ indoor office).
	Exponent float64
	// NoiseDBm is the receiver noise floor (≈ -90.9 dBm for 40 MHz with
	// a 7 dB noise figure).
	NoiseDBm float64
	// CSThresholdDBm is the energy-detect carrier-sense threshold: a
	// radio reports busy while the summed received power of in-flight
	// transmissions is at or above it. -Inf makes every radio sense
	// every transmission (the scalar channel's global busy state).
	CSThresholdDBm float64
	// DeliveryFloorDBm is the weakest received power at which a frame
	// is still handed to a receiver at all. Below it there is no EndRx:
	// no NAV, no EIFS, no promiscuous copy. -Inf delivers everywhere.
	DeliveryFloorDBm float64
	// CaptureMarginDB is added to the rate's SINR decode threshold when
	// a frame suffered overlap. 0 models ideal capture; +Inf disables
	// capture entirely (any overlap collides, the scalar semantics).
	CaptureMarginDB float64
}

// DefaultGeometry returns the spatial PHY matching the paper's indoor
// 40 MHz 802.11n setup (the same constants as DefaultSNRModel) with an
// 802.11-style -82 dBm carrier-sense threshold and delivery floor and
// ideal capture. Sense/delivery range works out to ≈51.5 m.
func DefaultGeometry() *Geometry {
	return &Geometry{
		TxPowerDBm:       16,
		RefLossDB:        46.7,
		Exponent:         3.0,
		NoiseDBm:         -90.9,
		CSThresholdDBm:   -82,
		DeliveryFloorDBm: -82,
		CaptureMarginDB:  0,
	}
}

// DegenerateGeometry returns the spatial configuration that reproduces
// the scalar channel exactly regardless of radio positions: every radio
// senses every transmission (CS threshold -Inf), every frame reaches
// every radio (delivery floor -Inf), and capture never succeeds
// (margin +Inf), so any overlap collides everywhere. It is the oracle
// geometry for the differential suite.
func DegenerateGeometry() *Geometry {
	g := DefaultGeometry()
	g.CSThresholdDBm = math.Inf(-1)
	g.DeliveryFloorDBm = math.Inf(-1)
	g.CaptureMarginDB = math.Inf(1)
	return g
}

// RxPowerDBm returns the received power at distance metres under the
// geometry's log-distance path-loss model. Distances under 1 m clamp
// to the 1 m reference point.
func (g *Geometry) RxPowerDBm(distance float64) float64 {
	if distance < 1 {
		distance = 1
	}
	return g.TxPowerDBm - g.RefLossDB - 10*g.Exponent*math.Log10(distance)
}

// CaptureOK reports whether a frame at rate received at signalDBm
// decodes despite the given concurrent interferers: its SINR must
// clear SINRThresholdDB(rate) plus the capture margin. With no
// interferers the frame always decodes (noise corruption is the error
// model's job, drawn separately). The decision is deterministic and
// independent of interferer order.
func (g *Geometry) CaptureOK(rate phy.Rate, signalDBm float64, interferersDBm []float64) bool {
	if len(interferersDBm) == 0 {
		return true
	}
	return SINRdB(signalDBm, interferersDBm, g.NoiseDBm) >= SINRThresholdDB(rate)+g.CaptureMarginDB
}

// SINRdB returns the signal-to-interference-plus-noise ratio in dB for
// a signal received at signalDBm over the given interferer powers and
// noise floor. Summation is performed in a canonical order, so the
// result is bit-identical under any permutation of interferersDBm.
func SINRdB(signalDBm float64, interferersDBm []float64, noiseDBm float64) float64 {
	terms := make([]float64, 0, len(interferersDBm)+1)
	terms = append(terms, phy.DBmToMilliwatts(noiseDBm))
	for _, p := range interferersDBm {
		terms = append(terms, phy.DBmToMilliwatts(p))
	}
	// Descending canonical order: float addition is commutative but not
	// associative, so a fixed order is what makes the decode decision
	// permutation-independent (FuzzCapture pins this).
	sort.Sort(sort.Reverse(sort.Float64Slice(terms)))
	denom := 0.0
	for _, t := range terms {
		denom += t
	}
	sig := phy.DBmToMilliwatts(signalDBm)
	if denom == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/denom)
}

// sinrThresholds caches SINRThresholdDB per rate; phy.Rate is a
// comparable struct, so it keys the map directly.
var sinrThresholds sync.Map

// SINRThresholdDB returns the decode threshold for rate: the lowest
// SINR (dB) at which a 1460-byte frame's FrameErrorRate is at most
// 10%. It reuses the scalar channel's SNR→FER tables, so the capture
// model and the noise model share one waterfall per rate.
func SINRThresholdDB(rate phy.Rate) float64 {
	if v, ok := sinrThresholds.Load(rate); ok {
		return v.(float64)
	}
	const frameLen = 1460
	lo, hi := -10.0, 60.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if FrameErrorRate(rate, mid, frameLen) <= 0.1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	sinrThresholds.Store(rate, hi)
	return hi
}

// rxNone marks a receiver that gets no EndRx for a transmission
// (below the delivery floor, or the source itself).
const rxNone Outcome = -1

// ensureSpatial (idempotently) extends the spatial state to cover all
// attached radios: index map, symmetric power matrix, per-radio
// carrier state, and linear-domain thresholds. Radios attached after
// the first Transmit get rows appended; existing indices never move.
func (m *Medium) ensureSpatial() {
	n := len(m.radios)
	if len(m.powerMW) == n {
		return
	}
	if m.radioIdx == nil {
		m.radioIdx = make(map[Radio]int, n)
	}
	g := m.Geometry
	old := len(m.powerMW)
	mat := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range mat {
		mat[i] = buf[i*n : (i+1)*n]
	}
	for i := 0; i < old; i++ {
		copy(mat[i], m.powerMW[i])
	}
	for i := old; i < n; i++ {
		m.radioIdx[m.radios[i]] = i
		m.txOwn = append(m.txOwn, 0)
		m.senseBusy = append(m.senseBusy, false)
		m.senseMW = append(m.senseMW, 0)
	}
	for i := 0; i < n; i++ {
		pi := m.radios[i].Position()
		lo := i + 1
		if lo < old {
			lo = old
		}
		for j := lo; j < n; j++ {
			p := phy.DBmToMilliwatts(g.RxPowerDBm(pi.DistanceTo(m.radios[j].Position())))
			mat[i][j] = p
			mat[j][i] = p
		}
	}
	m.powerMW = mat
	// Radios attached mid-transmission start sensing the power already
	// on the air.
	for i := old; i < n; i++ {
		for _, o := range m.activeList {
			m.senseMW[i] += mat[o.srcIdx][i]
		}
	}
	m.noiseMW = phy.DBmToMilliwatts(g.NoiseDBm)
	m.csMW = phy.DBmToMilliwatts(g.CSThresholdDBm)
	m.floorMW = phy.DBmToMilliwatts(g.DeliveryFloorDBm)
	m.scratchSum = make([]float64, n)
	m.scratchOut = make([]Outcome, n)
}

// interfBuf returns a zeroed interference-maximum buffer of length n,
// reusing retired buffers so steady-state transmission is alloc-free.
func (m *Medium) interfBuf(n int) []float64 {
	if k := len(m.interfFree); k > 0 {
		b := m.interfFree[k-1]
		m.interfFree = m.interfFree[:k-1]
		if cap(b) >= n {
			b = b[:n]
			for i := range b {
				b[i] = 0
			}
			return b
		}
	}
	return make([]float64, n)
}

// transmitSpatial is the spatial-regime half of Transmit: it accrues
// interference maxima on every overlapping transmission, marks coupled
// collisions, registers the transmission, and re-evaluates per-radio
// carrier state. It draws no randomness.
func (m *Medium) transmitSpatial(tx *Transmission, now sim.Time) {
	m.ensureSpatial()
	nR := len(m.radios)
	si := m.radioIdx[tx.Source]
	tx.srcIdx = si
	tx.interfMax = m.interfBuf(nR)
	row := m.powerMW[si]
	if len(m.active) == 0 {
		m.lastBusyStart = now
	}
	// Sensed-energy bookkeeping: the new transmission's power lands at
	// every radio. A fresh busy period copies rather than accumulates,
	// which also discards any float drift from the previous period.
	if len(m.activeList) == 0 {
		copy(m.senseMW, row)
	} else {
		for j := 0; j < nR; j++ {
			m.senseMW[j] += row[j]
		}
	}
	// A transmission ending exactly now does not overlap (its finish
	// event may simply not have run yet at this instant).
	nOverlap := 0
	for _, o := range m.activeList {
		if o.End > now {
			nOverlap++
		}
	}
	if nOverlap > 0 {
		// Total received power at each radio with the new transmission
		// on the air.
		S := m.scratchSum
		copy(S, row)
		for _, o := range m.activeList {
			if o.End <= now {
				continue
			}
			orow := m.powerMW[o.srcIdx]
			for j := 0; j < nR; j++ {
				S[j] += orow[j]
			}
		}
		for _, o := range m.activeList {
			if o.End <= now {
				continue
			}
			oi := o.srcIdx
			orow := m.powerMW[oi]
			// Worst-instant aggregate interference for the ongoing
			// transmission at every receiver. +Inf entries (half-duplex)
			// are sticky: no finite max can overwrite them.
			for j := 0; j < nR; j++ {
				if j == oi {
					continue
				}
				if v := S[j] - orow[j]; v > o.interfMax[j] {
					o.interfMax[j] = v
				}
			}
			// Half-duplex: a radio transmitting during any part of a
			// frame can never decode that frame.
			o.interfMax[si] = math.Inf(1)
			tx.interfMax[oi] = math.Inf(1)
			// The pair is a coupled collision — traced and counted —
			// when the sources hear each other or share any in-range
			// third receiver. Uncoupled overlaps are mere spatial reuse.
			coupled := row[oi] >= m.floorMW
			if !coupled {
				for j := 0; j < nR; j++ {
					if j == si || j == oi {
						continue
					}
					if row[j] >= m.floorMW && orow[j] >= m.floorMW {
						coupled = true
						break
					}
				}
			}
			if coupled {
				if m.Tracer != nil {
					m.Tracer.Collision(now, tx.ID, o.ID)
				}
				if !tx.collided {
					tx.collided = true
					m.CollidedTx++
				}
				if !o.collided {
					o.collided = true
					m.CollidedTx++
				}
			}
		}
		for j := 0; j < nR; j++ {
			if j == si {
				continue
			}
			if v := S[j] - row[j]; v > tx.interfMax[j] {
				tx.interfMax[j] = v
			}
		}
	}
	m.txOwn[si]++
	m.active[tx] = struct{}{}
	m.activeList = append(m.activeList, tx)
	m.updateCarrierSpatial()
}

// finishSpatial is the spatial-regime half of finish: per-receiver
// decode decisions from the accrued interference maxima, deliveries in
// attach order, then carrier re-evaluation strictly after deliveries.
func (m *Medium) finishSpatial(tx *Transmission) {
	now := m.sched.Now()
	delete(m.active, tx)
	for i, o := range m.activeList {
		if o == tx {
			m.activeList = append(m.activeList[:i], m.activeList[i+1:]...)
			break
		}
	}
	m.ensureSpatial()
	si := tx.srcIdx
	m.txOwn[si]--
	if len(m.active) == 0 {
		m.AirtimeBusy += now - m.lastBusyStart
	}
	g := m.Geometry
	row := m.powerMW[si]
	// The departing transmission's power leaves the air; a fully idle
	// medium resets the sums exactly, bounding float drift to one busy
	// period.
	if len(m.activeList) == 0 {
		for j := range m.senseMW {
			m.senseMW[j] = 0
		}
	} else {
		for j := range m.senseMW {
			m.senseMW[j] -= row[j]
		}
	}
	thr := SINRThresholdDB(tx.Rate) + g.CaptureMarginDB
	out := m.scratchOut
	for j := range out {
		out[j] = rxNone
		if j == si {
			continue
		}
		rp := row[j]
		if rp < m.floorMW {
			continue
		}
		iv := 0.0
		if j < len(tx.interfMax) {
			iv = tx.interfMax[j]
		}
		switch {
		case iv == 0:
			// Never overlapped at this receiver: decodes; noise
			// corruption is drawn separately via Corrupted.
			out[j] = RxOK
		case math.IsInf(iv, 1):
			out[j] = RxCollided
		default:
			if 10*math.Log10(rp/(m.noiseMW+iv)) >= thr {
				out[j] = RxOK
			} else {
				out[j] = RxCollided
			}
		}
		if out[j] == RxCollided && !tx.collided {
			tx.collided = true
			m.CollidedTx++
		}
	}
	if m.Tracer != nil {
		m.Tracer.TxEnd(now, tx.ID, tx.collided)
	}
	for j, r := range m.radios {
		if j < len(out) && out[j] != rxNone {
			r.EndRx(tx, out[j])
		}
	}
	m.interfFree = append(m.interfFree, tx.interfMax)
	tx.interfMax = nil
	// Carrier re-evaluation strictly after deliveries: receivers see
	// the frame before timers that an idle transition may restart.
	m.updateCarrierSpatial()
}

// updateCarrierSpatial re-reads each radio's sensed-energy state (the
// senseMW sums maintained by transmitSpatial/finishSpatial) and emits
// CarrierBusy/CarrierIdle edges for radios whose state changed, in
// attach order. A radio is busy while it is transmitting or while the
// summed power of transmissions on the air reaches the carrier-sense
// threshold. Transmissions past their End but not yet finished still
// count — they are on the air until their finish event runs, which
// keeps idle edges strictly after deliveries.
func (m *Medium) updateCarrierSpatial() {
	onAir := len(m.activeList) > 0
	for j, r := range m.radios {
		busy := m.txOwn[j] > 0 || (onAir && m.senseMW[j] >= m.csMW)
		if busy != m.senseBusy[j] {
			m.senseBusy[j] = busy
			if busy {
				r.CarrierBusy()
			} else {
				r.CarrierIdle()
			}
		}
	}
}
