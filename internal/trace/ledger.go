package trace

import (
	"sort"

	"tcphack/internal/sim"
)

// Buckets partitions one station's transmit airtime by what the air
// carried. All values are simulated nanoseconds.
type Buckets struct {
	// Data is first-transmission data-frame airtime — the useful share.
	Data sim.Duration `json:"data"`
	// WifiAck is link-layer ACK / Block ACK airtime (minus any HACK
	// payload share, which lands in TCPAck).
	WifiAck sim.Duration `json:"wifi_ack"`
	// BAR is Block ACK Request airtime.
	BAR sim.Duration `json:"bar"`
	// TCPAck is airtime spent moving TCP ACKs: natively-travelling pure
	// ACK data frames plus the HACK compressed-payload share of LL ACKs.
	TCPAck sim.Duration `json:"tcp_ack"`
	// Retry is data-frame airtime containing retransmitted MPDUs.
	Retry sim.Duration `json:"retry"`
}

// Busy returns the bucket total — the station's attributed airtime.
func (b Buckets) Busy() sim.Duration {
	return b.Data + b.WifiAck + b.BAR + b.TCPAck + b.Retry
}

func (b *Buckets) add(o Buckets) {
	b.Data += o.Data
	b.WifiAck += o.WifiAck
	b.BAR += o.BAR
	b.TCPAck += o.TCPAck
	b.Retry += o.Retry
}

// ledgerTx is one in-flight transmission: accrued holds the medium
// time attributed to it so far (only the earliest-started active
// transmission accrues, so every instant is counted exactly once).
type ledgerTx struct {
	id      uint64
	src     uint16
	class   FrameClass
	extra   sim.Duration
	accrued sim.Duration
}

// AirtimeLedger is a Tracer that accounts every nanosecond of
// simulated time into per-station Buckets plus idle, exactly: at any
// snapshot, busy + idle equals the elapsed simulated time with zero
// remainder. It consumes only TxStart/TxEnd (the embedded Nop absorbs
// the other probes), so it composes with recorders via Multi. The
// zero value is not usable; construct with NewAirtimeLedger.
type AirtimeLedger struct {
	Nop
	lastEdge sim.Time
	idle     sim.Duration
	active   []ledgerTx
	stations map[uint16]*Buckets
}

// NewAirtimeLedger returns an empty ledger starting at time 0.
func NewAirtimeLedger() *AirtimeLedger {
	return &AirtimeLedger{stations: make(map[uint16]*Buckets)}
}

// advance attributes the span since the last edge: to idle when the
// medium is quiet, else to the earliest-started active transmission.
func (l *AirtimeLedger) advance(now sim.Time) {
	d := now - l.lastEdge
	if d <= 0 {
		return
	}
	if len(l.active) == 0 {
		l.idle += d
	} else {
		l.active[0].accrued += d
	}
	l.lastEdge = now
}

// TxStart implements Tracer.
func (l *AirtimeLedger) TxStart(now sim.Time, id uint64, src, _ uint16, class FrameClass,
	_, _, _, _ int, _ sim.Time, extra sim.Duration) {
	l.advance(now)
	l.active = append(l.active, ledgerTx{id: id, src: src, class: class, extra: extra})
}

// TxEnd implements Tracer.
func (l *AirtimeLedger) TxEnd(now sim.Time, id uint64, _ bool) {
	l.advance(now)
	for i := range l.active {
		if l.active[i].id == id {
			l.settle(l.stations, l.active[i])
			l.active = append(l.active[:i], l.active[i+1:]...)
			return
		}
	}
	// A transmission the ledger never saw start (attached mid-run):
	// nothing accrued, nothing to settle.
}

// settle books a finished transmission's accrued time: up to extra
// goes to the TCP-ACK bucket (the HACK payload share of an LL ACK),
// the remainder to the frame class's bucket.
func (l *AirtimeLedger) settle(into map[uint16]*Buckets, tx ledgerTx) {
	b := into[tx.src]
	if b == nil {
		b = &Buckets{}
		into[tx.src] = b
	}
	rest := tx.accrued
	if p := tx.extra; p > 0 {
		if p > rest {
			p = rest
		}
		b.TCPAck += p
		rest -= p
	}
	switch tx.class {
	case ClassData:
		b.Data += rest
	case ClassRetry:
		b.Retry += rest
	case ClassTCPAck:
		b.TCPAck += rest
	case ClassAck:
		b.WifiAck += rest
	case ClassBAR:
		b.BAR += rest
	}
}

// InFlight returns how many transmissions are currently on the air.
func (l *AirtimeLedger) InFlight() int { return len(l.active) }

// StationAirtime is one station's row in an AirtimeReport.
type StationAirtime struct {
	// Station is the MAC address.
	Station uint16 `json:"station"`
	Buckets
}

// AirtimeReport is a point-in-time snapshot of the ledger.
type AirtimeReport struct {
	// Elapsed is the simulated time the report covers (from 0).
	Elapsed sim.Duration `json:"elapsed"`
	// Idle is the time the medium carried nothing.
	Idle sim.Duration `json:"idle"`
	// Total sums every station's buckets.
	Total Buckets `json:"total"`
	// Stations lists per-station buckets, sorted by address.
	Stations []StationAirtime `json:"stations"`
}

// Snapshot returns the ledger's state at now, including the accrued
// (but unsettled) time of in-flight transmissions, so the report
// always conserves: Busy() + Idle == Elapsed exactly.
func (l *AirtimeLedger) Snapshot(now sim.Time) AirtimeReport {
	l.advance(now)
	per := make(map[uint16]*Buckets, len(l.stations))
	for sta, b := range l.stations {
		cp := *b
		per[sta] = &cp
	}
	for _, tx := range l.active {
		l.settle(per, tx)
	}
	rep := AirtimeReport{Elapsed: sim.Duration(now), Idle: l.idle}
	addrs := make([]int, 0, len(per))
	for sta := range per {
		addrs = append(addrs, int(sta))
	}
	sort.Ints(addrs)
	for _, sta := range addrs {
		b := per[uint16(sta)]
		rep.Stations = append(rep.Stations, StationAirtime{Station: uint16(sta), Buckets: *b})
		rep.Total.add(*b)
	}
	return rep
}

// Busy returns the total attributed (non-idle) airtime.
func (r AirtimeReport) Busy() sim.Duration { return r.Total.Busy() }

// Efficiency returns the useful share of busy airtime — data-frame
// time over all attributed time (the paper's medium-utilization
// metric: LL ACKs, BARs, TCP-ACK transport, and retries are overhead).
func (r AirtimeReport) Efficiency() float64 {
	busy := r.Busy()
	if busy == 0 {
		return 0
	}
	return float64(r.Total.Data) / float64(busy)
}

// Conserved reports whether every nanosecond is accounted for:
// busy + idle == elapsed, with zero remainder.
func (r AirtimeReport) Conserved() bool { return r.Busy()+r.Idle == r.Elapsed }
