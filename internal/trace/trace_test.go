package trace

import (
	"bytes"
	"strings"
	"testing"

	"tcphack/internal/sim"
)

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	var tr Tracer = r
	for i := 1; i <= 6; i++ {
		tr.NAV(sim.Time(i), 1, sim.Time(i+10))
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := sim.Time(i + 3); e.T != want {
			t.Errorf("event %d at t=%v, want %v (oldest overwritten, order kept)", i, e.T, want)
		}
	}
}

// emitSample drives every probe once, in a schema-legal order.
func emitSample(tr Tracer) {
	tr.TxStart(10, 1, 1, 2, ClassData, 150_000, 1500, 4, 1, 110, 0)
	tr.TxStart(20, 2, 3, 1, ClassAck, 24_000, 46, 0, 0, 60, 12)
	tr.Collision(20, 1, 2)
	tr.NAV(25, 2, 200)
	tr.TxEnd(60, 2, true)
	tr.TxEnd(110, 1, true)
	tr.RxFrame(110, 1, 2, 4, 3)
	tr.BAWindow(112, 2, 1, 100, 0xdeadbeef)
	tr.MPDUFate(115, 1, 2, 101, 1, FateRetry)
	tr.HackState(120, 2, 1, StateCompressing, StateResyncing, CauseSyncGap)
	tr.ROHCPacket(130, 2, true, 23)
	tr.ROHCResult(140, 1, 3, 1, 0)
	tr.TCPRetransmit(150, 5001, 4242)
	tr.TCPRTO(160, 5001, sim.Second)
	tr.TCPCwnd(160, 5001, 1460, 14600)
}

func TestWriterValidateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	emitSample(w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != 15 {
		t.Fatalf("Count = %d, want 15", w.Count())
	}
	n, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if n != 15 {
		t.Fatalf("validated %d events, want 15", n)
	}
}

func TestRecorderJSONLValidates(t *testing.T) {
	r := NewRecorder(0)
	emitSample(r)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if n, err := ValidateJSONL(&buf); err != nil || n != 15 {
		t.Fatalf("ValidateJSONL = %d, %v; want 15, nil", n, err)
	}
}

func TestValidateRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   `{"t":1,"kind":"warp"}`,
		"time backwards": `{"t":5,"kind":"nav"}` + "\n" + `{"t":4,"kind":"nav"}`,
		"orphan tx_end":  `{"t":1,"kind":"tx_end","id":9}`,
		"double start": `{"t":1,"kind":"tx_start","id":7,"end":5}` + "\n" +
			`{"t":2,"kind":"tx_start","id":7,"end":6}`,
		"not json": `nope`,
	}
	for name, in := range cases {
		if _, err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	r := NewRecorder(8)
	if got := Multi(nil, r); got != Tracer(r) {
		t.Error("Multi with one survivor should unwrap it")
	}
	r2 := NewRecorder(8)
	m := Multi(r, nil, r2)
	m.NAV(1, 1, 2)
	if r.Total() != 1 || r2.Total() != 1 {
		t.Errorf("fan-out totals = %d, %d; want 1, 1", r.Total(), r2.Total())
	}
}

func TestLedgerConservationAndOverlap(t *testing.T) {
	l := NewAirtimeLedger()
	// A: data from sta 1, [100, 200]. B: ack from sta 2 with a 30 ns
	// HACK payload share, [150, 250] — overlapping A. Overlap rule:
	// A (earliest) accrues until it ends, then B.
	l.TxStart(100, 1, 1, 2, ClassData, 0, 0, 1, 0, 200, 0)
	l.TxStart(150, 2, 2, 1, ClassAck, 0, 0, 0, 0, 250, 30)
	l.TxEnd(200, 1, false)
	l.TxEnd(250, 2, false)
	// C: retry frame [300, 340].
	l.TxStart(300, 3, 1, 2, ClassRetry, 0, 0, 1, 1, 340, 0)
	l.TxEnd(340, 3, false)

	rep := l.Snapshot(1000)
	if !rep.Conserved() {
		t.Fatalf("not conserved: busy %d + idle %d != elapsed %d", rep.Busy(), rep.Idle, rep.Elapsed)
	}
	if rep.Idle != 100+ /*gap*/ 50+660 {
		t.Errorf("idle = %d, want 810", rep.Idle)
	}
	sta1 := rep.Stations[0]
	if sta1.Station != 1 || sta1.Data != 100 || sta1.Retry != 40 {
		t.Errorf("sta1 = %+v, want data=100 retry=40", sta1)
	}
	// B accrued only [200, 250] = 50; 30 of it is TCP-ACK payload.
	sta2 := rep.Stations[1]
	if sta2.Station != 2 || sta2.TCPAck != 30 || sta2.WifiAck != 20 {
		t.Errorf("sta2 = %+v, want tcp_ack=30 wifi_ack=20", sta2)
	}
	if rep.Busy() != 190 {
		t.Errorf("busy = %d, want 190", rep.Busy())
	}
	if eff := rep.Efficiency(); eff != float64(100)/190 {
		t.Errorf("efficiency = %v, want 100/190", eff)
	}
}

func TestLedgerSnapshotMidFlight(t *testing.T) {
	l := NewAirtimeLedger()
	l.TxStart(10, 1, 1, 2, ClassData, 0, 0, 1, 0, 100, 0)
	rep := l.Snapshot(50)
	if !rep.Conserved() {
		t.Fatalf("mid-flight snapshot not conserved: %+v", rep)
	}
	if rep.Total.Data != 40 || rep.Idle != 10 {
		t.Errorf("mid-flight: data=%d idle=%d, want 40, 10", rep.Total.Data, rep.Idle)
	}
	if l.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", l.InFlight())
	}
	// The snapshot must not have settled the live transmission.
	l.TxEnd(100, 1, false)
	rep = l.Snapshot(100)
	if rep.Total.Data != 90 || rep.Idle != 10 || !rep.Conserved() {
		t.Errorf("final: %+v, want data=90 idle=10 conserved", rep.Total)
	}
}

func TestNopAllocFree(t *testing.T) {
	var tr Tracer = Nop{}
	allocs := testing.AllocsPerRun(100, func() { emitSample(tr) })
	if allocs != 0 {
		t.Fatalf("Nop tracer allocated %.1f times per probe sweep, want 0", allocs)
	}
}
