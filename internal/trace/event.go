package trace

import "tcphack/internal/sim"

// Kind names an event's probe in the JSONL schema.
type Kind string

// Event kinds, one per Tracer method.
const (
	// KindTxStart: a transmission entered the medium.
	KindTxStart Kind = "tx_start"
	// KindTxEnd: a transmission left the medium.
	KindTxEnd Kind = "tx_end"
	// KindCollision: two transmissions overlapped.
	KindCollision Kind = "collision"
	// KindRxFrame: a data frame was received and decoded.
	KindRxFrame Kind = "rx_frame"
	// KindNAV: a virtual carrier-sense update.
	KindNAV Kind = "nav"
	// KindBAWindow: Block ACK window state.
	KindBAWindow Kind = "ba_window"
	// KindMPDUFate: the outcome of one MPDU attempt.
	KindMPDUFate Kind = "mpdu_fate"
	// KindHackState: a HACK driver state transition.
	KindHackState Kind = "hack_state"
	// KindROHCPacket: one compressed (or IR) TCP ACK was encoded.
	KindROHCPacket Kind = "rohc_packet"
	// KindROHCResult: one HACK frame was decompressed.
	KindROHCResult Kind = "rohc_result"
	// KindTCPRetransmit: a TCP segment retransmission.
	KindTCPRetransmit Kind = "tcp_rtx"
	// KindTCPRTO: a TCP retransmission timeout fired.
	KindTCPRTO Kind = "tcp_rto"
	// KindTCPCwnd: a TCP congestion-window change.
	KindTCPCwnd Kind = "tcp_cwnd"
)

// Event is the flat JSONL record every probe maps onto. Unused fields
// for a given kind are omitted from the encoding; times and durations
// are simulated nanoseconds.
type Event struct {
	// T is the simulated time of the event.
	T sim.Time `json:"t"`
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind `json:"kind"`
	// ID correlates tx_start / tx_end / collision records.
	ID uint64 `json:"id,omitempty"`
	// ID2 is the other transmission in a collision.
	ID2 uint64 `json:"id2,omitempty"`
	// Src and Dst are MAC addresses (tx_start, rx_frame).
	Src uint16 `json:"src,omitempty"`
	Dst uint16 `json:"dst,omitempty"`
	// Sta is the observing station (nav, ba_window, mpdu_fate, rohc_*,
	// hack_state's local end).
	Sta uint16 `json:"sta,omitempty"`
	// Peer is the remote station (ba_window, mpdu_fate, hack_state).
	Peer uint16 `json:"peer,omitempty"`
	// Class is the transmitted frame's class token (tx_start).
	Class string `json:"class,omitempty"`
	// RateKbps is the PHY rate of a transmission.
	RateKbps int `json:"rate_kbps,omitempty"`
	// Bytes is the on-air payload size (tx_start) or encoded
	// compressed-ACK size (rohc_packet).
	Bytes int `json:"bytes,omitempty"`
	// MPDUs is the A-MPDU batch size (tx_start, rx_frame).
	MPDUs int `json:"mpdus,omitempty"`
	// Retried counts the batch's MPDUs carrying a retry (tx_start).
	Retried int `json:"retried,omitempty"`
	// End is the scheduled end of a transmission (tx_start).
	End sim.Time `json:"end,omitempty"`
	// Extra is the HACK-payload share of an ACK frame's duration.
	Extra sim.Duration `json:"extra,omitempty"`
	// Collided marks a transmission destroyed by overlap (tx_end).
	Collided bool `json:"collided,omitempty"`
	// Decoded counts the MPDUs that survived the channel (rx_frame).
	Decoded int `json:"decoded,omitempty"`
	// Until is the NAV expiry (nav).
	Until sim.Time `json:"until,omitempty"`
	// StartSeq is the Block ACK bitmap origin (ba_window).
	StartSeq uint16 `json:"start_seq,omitempty"`
	// Bitmap is the Block ACK bitmap (ba_window).
	Bitmap uint64 `json:"bitmap,omitempty"`
	// Seq is an MPDU sequence number (mpdu_fate) or TCP sequence
	// number (tcp_rtx).
	Seq uint32 `json:"seq,omitempty"`
	// Retries is the MPDU's retry count so far (mpdu_fate).
	Retries int `json:"retries,omitempty"`
	// Fate is the MPDU outcome token (mpdu_fate).
	Fate string `json:"fate,omitempty"`
	// From and To are driver state tokens (hack_state).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Cause is the transition cause token (hack_state).
	Cause string `json:"cause,omitempty"`
	// IR marks a self-contained IR refresh (rohc_packet).
	IR bool `json:"ir,omitempty"`
	// Packets, Dups, Failures are decompression outcomes (rohc_result).
	Packets  int `json:"packets,omitempty"`
	Dups     int `json:"dups,omitempty"`
	Failures int `json:"failures,omitempty"`
	// Port identifies a TCP flow by its sender port (tcp_*).
	Port uint16 `json:"port,omitempty"`
	// RTO is the expired retransmission timeout (tcp_rto).
	RTO sim.Duration `json:"rto,omitempty"`
	// Cwnd and Ssthresh are congestion state in bytes (tcp_cwnd).
	Cwnd     int `json:"cwnd,omitempty"`
	Ssthresh int `json:"ssthresh,omitempty"`
}

// sink adapts the Tracer probe methods onto a single emit(Event)
// function — the one shared mapping Recorder and Writer both use, so
// the two can never disagree on the schema.
type sink struct{ emit func(Event) }

func (s sink) TxStart(now sim.Time, id uint64, src, dst uint16, class FrameClass,
	rateKbps, bytes, mpdus, retried int, end sim.Time, extra sim.Duration) {
	s.emit(Event{T: now, Kind: KindTxStart, ID: id, Src: src, Dst: dst,
		Class: class.String(), RateKbps: rateKbps, Bytes: bytes,
		MPDUs: mpdus, Retried: retried, End: end, Extra: extra})
}

func (s sink) TxEnd(now sim.Time, id uint64, collided bool) {
	s.emit(Event{T: now, Kind: KindTxEnd, ID: id, Collided: collided})
}

func (s sink) Collision(now sim.Time, id, otherID uint64) {
	s.emit(Event{T: now, Kind: KindCollision, ID: id, ID2: otherID})
}

func (s sink) RxFrame(now sim.Time, src, dst uint16, mpdus, decoded int) {
	s.emit(Event{T: now, Kind: KindRxFrame, Src: src, Dst: dst, MPDUs: mpdus, Decoded: decoded})
}

func (s sink) NAV(now sim.Time, sta uint16, until sim.Time) {
	s.emit(Event{T: now, Kind: KindNAV, Sta: sta, Until: until})
}

func (s sink) BAWindow(now sim.Time, sta, peer, startSeq uint16, bitmap uint64) {
	s.emit(Event{T: now, Kind: KindBAWindow, Sta: sta, Peer: peer, StartSeq: startSeq, Bitmap: bitmap})
}

func (s sink) MPDUFate(now sim.Time, sta, peer, seq uint16, retries int, fate Fate) {
	s.emit(Event{T: now, Kind: KindMPDUFate, Sta: sta, Peer: peer,
		Seq: uint32(seq), Retries: retries, Fate: fate.String()})
}

func (s sink) HackState(now sim.Time, self, peer uint16, from, to DriverState, cause Cause) {
	s.emit(Event{T: now, Kind: KindHackState, Sta: self, Peer: peer,
		From: from.String(), To: to.String(), Cause: cause.String()})
}

func (s sink) ROHCPacket(now sim.Time, sta uint16, ir bool, bytes int) {
	s.emit(Event{T: now, Kind: KindROHCPacket, Sta: sta, IR: ir, Bytes: bytes})
}

func (s sink) ROHCResult(now sim.Time, sta uint16, packets, dups, failures int) {
	s.emit(Event{T: now, Kind: KindROHCResult, Sta: sta,
		Packets: packets, Dups: dups, Failures: failures})
}

func (s sink) TCPRetransmit(now sim.Time, port uint16, seq uint32) {
	s.emit(Event{T: now, Kind: KindTCPRetransmit, Port: port, Seq: seq})
}

func (s sink) TCPRTO(now sim.Time, port uint16, rto sim.Duration) {
	s.emit(Event{T: now, Kind: KindTCPRTO, Port: port, RTO: rto})
}

func (s sink) TCPCwnd(now sim.Time, port uint16, cwnd, ssthresh int) {
	s.emit(Event{T: now, Kind: KindTCPCwnd, Port: port, Cwnd: cwnd, Ssthresh: ssthresh})
}
