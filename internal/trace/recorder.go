package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// DefaultRecorderCap is the ring capacity NewRecorder uses when the
// caller passes a non-positive one: enough for a few simulated seconds
// of a saturated single-BSS network.
const DefaultRecorderCap = 1 << 16

// Recorder is the bounded ring-buffer flight recorder: it retains the
// newest capacity events, overwriting the oldest once full. The zero
// value is not usable; construct with NewRecorder.
type Recorder struct {
	sink
	buf   []Event
	next  int // overwrite position once the ring is full
	total int // events ever emitted, including overwritten ones
}

// NewRecorder returns a flight recorder retaining the newest capacity
// events (DefaultRecorderCap when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	r := &Recorder{buf: make([]Event, 0, capacity)}
	r.sink.emit = r.record
	return r
}

func (r *Recorder) record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
}

// Total returns how many events were emitted over the recorder's
// lifetime, including any the ring has since overwritten.
func (r *Recorder) Total() int { return r.total }

// Events returns the retained events in emission order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// WriteJSONL writes the retained events as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Writer streams every probe event to an io.Writer as JSON Lines,
// buffered. Close flushes the buffer (and closes the underlying
// writer when it is an io.Closer) and reports the first error
// encountered. The zero value is not usable; construct with NewWriter.
type Writer struct {
	sink
	under io.Writer
	bw    *bufio.Writer
	enc   *json.Encoder
	err   error
	n     int
}

// NewWriter returns a streaming JSONL exporter over w.
func NewWriter(w io.Writer) *Writer {
	wr := &Writer{under: w, bw: bufio.NewWriter(w)}
	wr.enc = json.NewEncoder(wr.bw)
	wr.sink.emit = wr.write
	return wr
}

func (w *Writer) write(e Event) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(e)
	w.n++
}

// Count returns how many events were written.
func (w *Writer) Count() int { return w.n }

// Close flushes buffered events, closes the underlying writer when it
// implements io.Closer, and returns the first error seen.
func (w *Writer) Close() error {
	if ferr := w.bw.Flush(); w.err == nil {
		w.err = ferr
	}
	if c, ok := w.under.(io.Closer); ok {
		if cerr := c.Close(); w.err == nil {
			w.err = cerr
		}
	}
	return w.err
}

// knownKinds is the JSONL schema's kind vocabulary.
var knownKinds = map[Kind]bool{
	KindTxStart: true, KindTxEnd: true, KindCollision: true,
	KindRxFrame: true, KindNAV: true, KindBAWindow: true,
	KindMPDUFate: true, KindHackState: true,
	KindROHCPacket: true, KindROHCResult: true,
	KindTCPRetransmit: true, KindTCPRTO: true, KindTCPCwnd: true,
}

// ValidateJSONL checks a JSONL trace stream against the schema: every
// line must decode as an Event with a known kind, timestamps must be
// non-decreasing, and tx_end / collision records must reference a
// transmission that started earlier in the stream and has not ended.
// It returns the number of events validated. Transmissions still open
// at EOF are legal (the trace may end mid-flight).
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var (
		n    int
		last Event
		open = map[uint64]bool{}
	)
	for line := 1; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return n, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if !knownKinds[e.Kind] {
			return n, fmt.Errorf("trace: line %d: unknown kind %q", line, e.Kind)
		}
		if n > 0 && e.T < last.T {
			return n, fmt.Errorf("trace: line %d: time went backwards (%d after %d)", line, e.T, last.T)
		}
		switch e.Kind {
		case KindTxStart:
			if open[e.ID] {
				return n, fmt.Errorf("trace: line %d: tx id %d started twice", line, e.ID)
			}
			if e.End < e.T {
				return n, fmt.Errorf("trace: line %d: tx id %d ends before it starts", line, e.ID)
			}
			open[e.ID] = true
		case KindTxEnd:
			if !open[e.ID] {
				return n, fmt.Errorf("trace: line %d: tx_end for unknown id %d", line, e.ID)
			}
			delete(open, e.ID)
		case KindCollision:
			if !open[e.ID] {
				return n, fmt.Errorf("trace: line %d: collision for unknown id %d", line, e.ID)
			}
		}
		last = e
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("trace: %v", err)
	}
	return n, nil
}
