package trace

import (
	"fmt"

	"tcphack/internal/sim"
)

// FrameClass labels what a transmission carries, for airtime
// attribution. The sender computes it at transmit time (the receiver
// cannot always: a collided frame is never decoded).
type FrameClass uint8

// Frame classes, in airtime-ledger bucket order.
const (
	// ClassData is a data frame carrying payload on first transmission.
	ClassData FrameClass = iota
	// ClassRetry is a data frame containing at least one retried MPDU.
	ClassRetry
	// ClassTCPAck is a data frame whose MPDUs are all pure TCP ACKs —
	// the reverse-channel traffic HACK exists to remove.
	ClassTCPAck
	// ClassAck is a link-layer ACK or Block ACK.
	ClassAck
	// ClassBAR is a Block ACK Request.
	ClassBAR
)

// String returns the class's JSONL token.
func (c FrameClass) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassRetry:
		return "retry"
	case ClassTCPAck:
		return "tcp_ack"
	case ClassAck:
		return "ack"
	case ClassBAR:
		return "bar"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Fate is the terminal or intermediate outcome of one MPDU
// transmission attempt.
type Fate uint8

// MPDU fates.
const (
	// FateDelivered: the MPDU was acknowledged.
	FateDelivered Fate = iota
	// FateRetry: the MPDU was not acknowledged and re-queued.
	FateRetry
	// FateExpired: the MPDU exhausted its retry budget and was dropped.
	FateExpired
)

// String returns the fate's JSONL token.
func (f Fate) String() string {
	switch f {
	case FateDelivered:
		return "delivered"
	case FateRetry:
		return "retry"
	case FateExpired:
		return "expired"
	}
	return fmt.Sprintf("fate%d", uint8(f))
}

// DriverState mirrors the HACK driver's per-peer recovery states for
// trace output (the driver asserts the numbering matches its own).
type DriverState uint8

// HACK driver states (paper §3.4 recovery machine).
const (
	// StateNative: ACKs travel uncompressed.
	StateNative DriverState = iota
	// StateCompressing: ACKs ride compressed inside link-layer ACKs.
	StateCompressing
	// StateResyncing: held state was withdrawn; awaiting a native
	// re-anchor before compression resumes.
	StateResyncing
)

// String returns the state's JSONL token.
func (s DriverState) String() string {
	switch s {
	case StateNative:
		return "native"
	case StateCompressing:
		return "compressing"
	case StateResyncing:
		return "resyncing"
	}
	return fmt.Sprintf("state%d", uint8(s))
}

// Cause explains why a HACK driver state transition fired.
type Cause uint8

// HACK state-transition causes.
const (
	// CauseHold: an ACK was held for compression (entering Compressing).
	CauseHold Cause = iota
	// CauseNativeInterleave: a non-compressible packet forced held ACKs
	// back onto the native path.
	CauseNativeInterleave
	// CauseGuard: the frame-safety guard found regeneration unsafe.
	CauseGuard
	// CauseChainClose: the MORE-DATA chain closed (paper §3.2).
	CauseChainClose
	// CauseTimerFlush: the hold timer expired before a carrier frame.
	CauseTimerFlush
	// CauseSyncGap: a SYNC-marked frame revealed a lost link-layer ACK.
	CauseSyncGap
)

// String returns the cause's JSONL token.
func (c Cause) String() string {
	switch c {
	case CauseHold:
		return "hold"
	case CauseNativeInterleave:
		return "native_interleave"
	case CauseGuard:
		return "guard"
	case CauseChainClose:
		return "chain_close"
	case CauseTimerFlush:
		return "timer_flush"
	case CauseSyncGap:
		return "sync_gap"
	}
	return fmt.Sprintf("cause%d", uint8(c))
}

// Tracer receives probe events from every simulator layer. All
// arguments are scalars so that implementations (and in particular
// Nop) can be called through the interface without heap allocation.
// Implementations must not mutate simulator state, schedule events,
// or consume RNG draws: tracing is determinism-neutral by contract.
type Tracer interface {
	// TxStart reports a transmission entering the medium. id correlates
	// with TxEnd/Collision; src and dst are MAC addresses; extra is the
	// share of the frame's duration attributable to an appended HACK
	// compressed-ACK payload (ClassAck frames only, 0 otherwise); end
	// is the scheduled end of the transmission.
	TxStart(now sim.Time, id uint64, src, dst uint16, class FrameClass,
		rateKbps, bytes, mpdus, retried int, end sim.Time, extra sim.Duration)
	// TxEnd reports a transmission leaving the medium, and whether it
	// was destroyed by a collision.
	TxEnd(now sim.Time, id uint64, collided bool)
	// Collision reports that transmission id overlapped with otherID.
	Collision(now sim.Time, id, otherID uint64)
	// RxFrame reports a received data frame: mpdus of its A-MPDU were
	// on the air, decoded survived the channel.
	RxFrame(now sim.Time, src, dst uint16, mpdus, decoded int)
	// NAV reports a virtual carrier-sense update: sta defers until the
	// given time.
	NAV(now sim.Time, sta uint16, until sim.Time)
	// BAWindow reports the Block ACK state sta advertises to peer:
	// bitmap bit i covers sequence startSeq+i.
	BAWindow(now sim.Time, sta, peer, startSeq uint16, bitmap uint64)
	// MPDUFate reports the outcome of one MPDU transmission attempt
	// from sta to peer, with the retry count so far.
	MPDUFate(now sim.Time, sta, peer, seq uint16, retries int, fate Fate)
	// HackState reports a HACK driver recovery-state transition for the
	// (self, peer) pair, with its cause.
	HackState(now sim.Time, self, peer uint16, from, to DriverState, cause Cause)
	// ROHCPacket reports one TCP ACK leaving the compressor: ir marks
	// the self-contained IR refresh form, bytes the encoded size.
	ROHCPacket(now sim.Time, sta uint16, ir bool, bytes int)
	// ROHCResult reports one decompressed HACK frame's outcome.
	ROHCResult(now sim.Time, sta uint16, packets, dups, failures int)
	// TCPRetransmit reports a TCP segment retransmission on the flow
	// identified by the sender's port.
	TCPRetransmit(now sim.Time, port uint16, seq uint32)
	// TCPRTO reports a retransmission-timeout firing, with the RTO that
	// expired.
	TCPRTO(now sim.Time, port uint16, rto sim.Duration)
	// TCPCwnd reports a congestion-window change at a loss event or
	// recovery exit (not every ACK), in bytes.
	TCPCwnd(now sim.Time, port uint16, cwnd, ssthresh int)
}

// Nop is the zero-cost Tracer: every method is an empty function. Its
// calls through the Tracer interface are allocation-free.
type Nop struct{}

// TxStart implements Tracer.
func (Nop) TxStart(sim.Time, uint64, uint16, uint16, FrameClass, int, int, int, int, sim.Time, sim.Duration) {
}

// TxEnd implements Tracer.
func (Nop) TxEnd(sim.Time, uint64, bool) {}

// Collision implements Tracer.
func (Nop) Collision(sim.Time, uint64, uint64) {}

// RxFrame implements Tracer.
func (Nop) RxFrame(sim.Time, uint16, uint16, int, int) {}

// NAV implements Tracer.
func (Nop) NAV(sim.Time, uint16, sim.Time) {}

// BAWindow implements Tracer.
func (Nop) BAWindow(sim.Time, uint16, uint16, uint16, uint64) {}

// MPDUFate implements Tracer.
func (Nop) MPDUFate(sim.Time, uint16, uint16, uint16, int, Fate) {}

// HackState implements Tracer.
func (Nop) HackState(sim.Time, uint16, uint16, DriverState, DriverState, Cause) {}

// ROHCPacket implements Tracer.
func (Nop) ROHCPacket(sim.Time, uint16, bool, int) {}

// ROHCResult implements Tracer.
func (Nop) ROHCResult(sim.Time, uint16, int, int, int) {}

// TCPRetransmit implements Tracer.
func (Nop) TCPRetransmit(sim.Time, uint16, uint32) {}

// TCPRTO implements Tracer.
func (Nop) TCPRTO(sim.Time, uint16, sim.Duration) {}

// TCPCwnd implements Tracer.
func (Nop) TCPCwnd(sim.Time, uint16, int, int) {}

// Multi fans probes out to several tracers in argument order. Nil
// entries are dropped; Multi returns nil when none remain and the
// single survivor unwrapped, so call sites can compose optional
// tracers without paying for absent ones.
func Multi(trs ...Tracer) Tracer {
	live := make([]Tracer, 0, len(trs))
	for _, tr := range trs {
		if tr != nil {
			live = append(live, tr)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Tracer

func (m multi) TxStart(now sim.Time, id uint64, src, dst uint16, class FrameClass,
	rateKbps, bytes, mpdus, retried int, end sim.Time, extra sim.Duration) {
	for _, t := range m {
		t.TxStart(now, id, src, dst, class, rateKbps, bytes, mpdus, retried, end, extra)
	}
}

func (m multi) TxEnd(now sim.Time, id uint64, collided bool) {
	for _, t := range m {
		t.TxEnd(now, id, collided)
	}
}

func (m multi) Collision(now sim.Time, id, otherID uint64) {
	for _, t := range m {
		t.Collision(now, id, otherID)
	}
}

func (m multi) RxFrame(now sim.Time, src, dst uint16, mpdus, decoded int) {
	for _, t := range m {
		t.RxFrame(now, src, dst, mpdus, decoded)
	}
}

func (m multi) NAV(now sim.Time, sta uint16, until sim.Time) {
	for _, t := range m {
		t.NAV(now, sta, until)
	}
}

func (m multi) BAWindow(now sim.Time, sta, peer, startSeq uint16, bitmap uint64) {
	for _, t := range m {
		t.BAWindow(now, sta, peer, startSeq, bitmap)
	}
}

func (m multi) MPDUFate(now sim.Time, sta, peer, seq uint16, retries int, fate Fate) {
	for _, t := range m {
		t.MPDUFate(now, sta, peer, seq, retries, fate)
	}
}

func (m multi) HackState(now sim.Time, self, peer uint16, from, to DriverState, cause Cause) {
	for _, t := range m {
		t.HackState(now, self, peer, from, to, cause)
	}
}

func (m multi) ROHCPacket(now sim.Time, sta uint16, ir bool, bytes int) {
	for _, t := range m {
		t.ROHCPacket(now, sta, ir, bytes)
	}
}

func (m multi) ROHCResult(now sim.Time, sta uint16, packets, dups, failures int) {
	for _, t := range m {
		t.ROHCResult(now, sta, packets, dups, failures)
	}
}

func (m multi) TCPRetransmit(now sim.Time, port uint16, seq uint32) {
	for _, t := range m {
		t.TCPRetransmit(now, port, seq)
	}
}

func (m multi) TCPRTO(now sim.Time, port uint16, rto sim.Duration) {
	for _, t := range m {
		t.TCPRTO(now, port, rto)
	}
}

func (m multi) TCPCwnd(now sim.Time, port uint16, cwnd, ssthresh int) {
	for _, t := range m {
		t.TCPCwnd(now, port, cwnd, ssthresh)
	}
}
