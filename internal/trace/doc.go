// Package trace is the simulator's flight recorder: a typed probe
// interface (Tracer) threaded through every protocol layer, with a
// no-op default that costs nothing when tracing is disabled.
//
// # Design constraints
//
// Probes are zero-overhead when disabled and determinism-neutral when
// enabled:
//
//   - Disabled is the default: every layer holds a nil Tracer and
//     guards each probe with a nil check, so the steady-state hot path
//     pays one predictable branch. The Nop implementation exists for
//     call sites that want an always-valid Tracer; its methods take
//     only scalar arguments (no interface boxing, no formatting), so
//     calling them through the Tracer interface performs zero heap
//     allocations (guarded by TestNopTracerAllocFree).
//   - Attaching a tracer must not change what the simulation computes.
//     Tracers observe; they never schedule events, consume RNG draws,
//     or mutate protocol state, so any golden baseline regenerates
//     byte-for-byte with a recorder attached (guarded by
//     TestTracerDeterminismNeutral).
//
// # Probes
//
// The Tracer interface carries one method per event kind:
//
//   - PHY/channel: TxStart (frame class, rate, bytes, A-MPDU size,
//     retry count), TxEnd (with collision outcome), Collision.
//   - MAC: RxFrame (A-MPDU decode results), NAV (virtual carrier-sense
//     updates), BAWindow (Block ACK bitmap state), MPDUFate (delivered
//     / retried / expired, with the retry chain length).
//   - HACK driver: HackState (Native/Compressing/Resyncing transitions
//     with cause).
//   - ROHC: ROHCPacket (IR refresh vs compressed delta, encoded
//     bytes), ROHCResult (decompression outcomes and failures).
//   - TCP: TCPRetransmit, TCPRTO, TCPCwnd (congestion events).
//
// # Recorders and export
//
// Recorder is a bounded ring-buffer flight recorder (the newest N
// events survive); Writer streams every event as one JSON object per
// line (JSONL). ValidateJSONL checks an exported stream against the
// schema. Multi fans one probe stream out to several tracers.
//
// # Airtime ledger
//
// AirtimeLedger consumes TxStart/TxEnd and partitions every
// nanosecond of simulated time into per-station buckets — data,
// wifi-ACK/BA, BAR, TCP-ACK payload, retries — plus idle, exactly
// (the buckets sum to the wall-clock simulated time with zero
// remainder; see TestAirtimeConservation). Overlapping transmissions
// (collisions) attribute each instant to the earliest-started active
// transmission, so no instant is counted twice.
package trace
