package node

import (
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// TestBurstyLossSyncRecovery exercises the paper's Figure 8 machinery
// end to end: a Gilbert-Elliott channel produces loss bursts long
// enough to exhaust BAR retries, forcing SYNC-bit recovery; the
// transfer must complete with at most transient decompression drops
// and no permanent stall.
func TestBurstyLossSyncRecovery(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 31)
	// The bursty model is a template: the medium forks its own copy
	// with the network's deterministic RNG (channel.ForkableErrorModel).
	cfg.Err = &channel.GilbertElliott{
		PGoodToBad: 0.002, PBadToGood: 0.05,
		LossGood: 0.002, LossBad: 0.9,
	}
	n2 := New(cfg)
	const total = 2 << 20
	f := n2.StartDownload(0, total, 0)
	n2.Run(60 * sim.Second)
	if !f.Done {
		t.Fatalf("bursty-loss transfer incomplete: %d of %d (AP retries=%d, BARs=%d)",
			f.Goodput.Total(), total, n2.AP.MAC.Stats.Retries, n2.AP.MAC.Stats.BARsSent)
	}
	if n2.AP.MAC.Stats.BARsSent == 0 {
		t.Error("bursty loss produced no BAR exchanges; model too gentle")
	}
	// Multi-second 90%-loss bursts exhaust every §3.4 bridge, but the
	// recovery machine re-anchors (resync + IR refresh) instead of
	// regenerating from a stale chain — the run must stay
	// decompression-lossless even here.
	assertFailuresBounded(t, n2)
}

// TestUploadUnderLoss exercises the symmetric direction with link
// errors: the AP holds the server's ACKs and must obey the client's
// MORE DATA bits while frames are being lost.
func TestUploadUnderLoss(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 37)
	cfg.Err = &channel.FixedLoss{Default: 0.05}
	n := New(cfg)
	const total = 2 << 20
	f := n.StartUpload(0, total, 0)
	n.Run(30 * sim.Second)
	if !f.Done {
		t.Fatalf("lossy upload incomplete: %d of %d", f.Goodput.Total(), total)
	}
	assertFailuresBounded(t, n)
	if n.AP.Driver.Acct.CompressedAcks == 0 {
		t.Error("AP compressed nothing on upload")
	}
}

// TestBidirectionalFlows runs a download and an upload on the same
// client simultaneously: both directions carry TCP ACKs through their
// respective HACK drivers at once.
func TestBidirectionalFlows(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 41)
	n := New(cfg)
	down := n.StartDownload(0, 2<<20, 0)
	up := n.StartUpload(0, 2<<20, 10*sim.Millisecond)
	n.Run(30 * sim.Second)
	if !down.Done || !up.Done {
		t.Fatalf("bidirectional incomplete: down=%v (%d) up=%v (%d)",
			down.Done, down.Goodput.Total(), up.Done, up.Goodput.Total())
	}
	assertFailuresBounded(t, n)
}

// TestManyFlowsOneClient multiplexes four flows to one client: one
// AP queue per destination but several TCP flows sharing it, several
// ROHC contexts at one decompressor.
func TestManyFlowsOneClient(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 43)
	cfg.APQueueLimit = 126 * 4
	n := New(cfg)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, n.StartDownload(0, 1<<20, sim.Duration(i)*20*sim.Millisecond))
	}
	n.Run(30 * sim.Second)
	for i, f := range flows {
		if !f.Done {
			t.Errorf("flow %d incomplete: %d", i, f.Goodput.Total())
		}
	}
	assertFailuresBounded(t, n)
}

// TestLowRateHighLossEdge drives the weakest HT rate at an SNR where
// a large fraction of frames die: the system must degrade, not wedge.
func TestLowRateHighLossEdge(t *testing.T) {
	snr := 3.5 // near MCS0's waterfall for 1538-byte frames
	em := channel.DefaultSNRModel()
	em.SNROverrideDB = &snr
	cfg := ht150Config(hack.ModeMoreData, 1, 47)
	cfg.DataRate = phy.HTRate(0, 1)
	cfg.AckRate = phy.Rate{}
	cfg.Err = em
	n := New(cfg)
	f := n.StartDownload(0, 0, 0)
	n.Run(10 * sim.Second)
	if f.Goodput.Total() == 0 {
		t.Skip("channel fully dead at this SNR; nothing to assert")
	}
	assertFailuresBounded(t, n)
	if n.AP.MAC.Stats.Retries == 0 {
		t.Error("no retries at near-waterfall SNR")
	}
}

// TestTimerModeUnderLoss covers the rejected strawman's loss paths:
// held ACKs flushed by the timer while frames are being dropped.
func TestTimerModeUnderLoss(t *testing.T) {
	cfg := ht150Config(hack.ModeTimer, 1, 53)
	cfg.Err = &channel.FixedLoss{Default: 0.05}
	n := New(cfg)
	const total = 1 << 20
	f := n.StartDownload(0, total, 0)
	n.Run(30 * sim.Second)
	if !f.Done {
		t.Fatalf("timer-mode lossy transfer incomplete: %d", f.Goodput.Total())
	}
	assertFailuresBounded(t, n)
}

// TestDrasticQueueLimit shrinks the AP queue below one A-MPDU: batches
// stay small, MORE DATA rarely sets, HACK degrades gracefully toward
// native ACKs.
func TestDrasticQueueLimit(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 59)
	cfg.APQueueLimit = 8
	n := New(cfg)
	f := n.StartDownload(0, 1<<20, 0)
	n.Run(30 * sim.Second)
	if !f.Done {
		t.Fatalf("tiny-queue transfer incomplete: %d", f.Goodput.Total())
	}
	assertFailuresBounded(t, n)
}

// TestUniformLossRecovery is the regression test for the historical
// MORE-DATA collapse: on the aggregated 802.11n scenario, 5% uniform
// frame loss once drove the driver into a BAR give-up spiral whose
// stale MSN chains produced tens of thousands of ROHC decompression
// failures (§4.3 demands zero) and, in the worst regimes, ≈0.4 Mbps.
// With the recovery state machine the run must be decompression-
// lossless and hold goodput within 2× of the non-aggregated SoRa
// scenario under the same loss (in practice it is several times
// faster; SoRa always handled this loss fine).
func TestUniformLossRecovery(t *testing.T) {
	run := func(cfg Config) (float64, *Network) {
		cfg.Err = &channel.FixedLoss{Default: 0.05}
		n := New(cfg)
		f := n.StartDownload(0, 0, 0)
		n.Run(2 * sim.Second)
		f.Goodput.MarkWindow(n.Sched.Now())
		n.Run(5 * sim.Second)
		return f.Goodput.WindowMbps(n.Sched.Now()), n
	}

	ht, nHT := run(ht150Config(hack.ModeMoreData, 1, 61))
	if fails := nHT.DecompFailures(); fails != 0 {
		t.Errorf("ht150 at 5%% loss: %d decompression failures, want 0 (§4.3)", fails)
	}
	if ht < 15 {
		t.Errorf("ht150 at 5%% loss: %.1f Mbps, want ≥ 15 (collapse regression)", ht)
	}

	sora, nSoRa := run(a54Config(hack.ModeMoreData, 1, 61))
	if fails := nSoRa.DecompFailures(); fails != 0 {
		t.Errorf("sora at 5%% loss: %d decompression failures, want 0", fails)
	}
	if 2*ht < sora {
		t.Errorf("ht150 (%.1f Mbps) below half the SoRa equivalent (%.1f Mbps)", ht, sora)
	}
}

// assertFailuresBounded verifies the §3.4/§4.3 health property: the
// recovery state machine keeps regeneration lossless — zero ROHC
// decompression failures — under every loss process the suite throws
// at it (the IR refresh re-establishes contexts absolutely whenever a
// chain reopens, so there is no transient-damage allowance to grant).
func assertFailuresBounded(t *testing.T, n *Network) {
	t.Helper()
	var acks uint64
	for _, c := range append([]*WifiNode{n.AP}, n.Clients...) {
		acks += c.Driver.Acct.NativeAcks + c.Driver.Acct.CompressedAcks
	}
	if fails := n.DecompFailures(); fails != 0 {
		t.Errorf("decompression failures %d of %d ACKs, want 0", fails, acks)
	}
}
