package node

import (
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// TestBurstyLossSyncRecovery exercises the paper's Figure 8 machinery
// end to end: a Gilbert-Elliott channel produces loss bursts long
// enough to exhaust BAR retries, forcing SYNC-bit recovery; the
// transfer must complete with at most transient decompression drops
// and no permanent stall.
func TestBurstyLossSyncRecovery(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 31)
	// The bursty model is a template: the medium forks its own copy
	// with the network's deterministic RNG (channel.ForkableErrorModel).
	cfg.Err = &channel.GilbertElliott{
		PGoodToBad: 0.002, PBadToGood: 0.05,
		LossGood: 0.002, LossBad: 0.9,
	}
	n2 := New(cfg)
	const total = 2 << 20
	f := n2.StartDownload(0, total, 0)
	n2.Run(60 * sim.Second)
	if !f.Done {
		t.Fatalf("bursty-loss transfer incomplete: %d of %d (AP retries=%d, BARs=%d)",
			f.Goodput.Total(), total, n2.AP.MAC.Stats.Retries, n2.AP.MAC.Stats.BARsSent)
	}
	if n2.AP.MAC.Stats.BARsSent == 0 {
		t.Error("bursty loss produced no BAR exchanges; model too gentle")
	}
	// Multi-second 90%-loss bursts can poison a ROHC context; the
	// damage is CRC-caught (never silent), re-ride noise is counted
	// per parse, and the context heals at the next organic native
	// (latch-off). Distinct damage events must stay rare and the
	// transfer must make it through.
	if n2.AP.Driver.FailCRC > 5 {
		t.Errorf("distinct CRC damage events: %d, want ≤5", n2.AP.Driver.FailCRC)
	}
}

// TestUploadUnderLoss exercises the symmetric direction with link
// errors: the AP holds the server's ACKs and must obey the client's
// MORE DATA bits while frames are being lost.
func TestUploadUnderLoss(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 37)
	cfg.Err = &channel.FixedLoss{Default: 0.05}
	n := New(cfg)
	const total = 2 << 20
	f := n.StartUpload(0, total, 0)
	n.Run(30 * sim.Second)
	if !f.Done {
		t.Fatalf("lossy upload incomplete: %d of %d", f.Goodput.Total(), total)
	}
	assertFailuresBounded(t, n)
	if n.AP.Driver.Acct.CompressedAcks == 0 {
		t.Error("AP compressed nothing on upload")
	}
}

// TestBidirectionalFlows runs a download and an upload on the same
// client simultaneously: both directions carry TCP ACKs through their
// respective HACK drivers at once.
func TestBidirectionalFlows(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 41)
	n := New(cfg)
	down := n.StartDownload(0, 2<<20, 0)
	up := n.StartUpload(0, 2<<20, 10*sim.Millisecond)
	n.Run(30 * sim.Second)
	if !down.Done || !up.Done {
		t.Fatalf("bidirectional incomplete: down=%v (%d) up=%v (%d)",
			down.Done, down.Goodput.Total(), up.Done, up.Goodput.Total())
	}
	assertFailuresBounded(t, n)
}

// TestManyFlowsOneClient multiplexes four flows to one client: one
// AP queue per destination but several TCP flows sharing it, several
// ROHC contexts at one decompressor.
func TestManyFlowsOneClient(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 43)
	cfg.APQueueLimit = 126 * 4
	n := New(cfg)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, n.StartDownload(0, 1<<20, sim.Duration(i)*20*sim.Millisecond))
	}
	n.Run(30 * sim.Second)
	for i, f := range flows {
		if !f.Done {
			t.Errorf("flow %d incomplete: %d", i, f.Goodput.Total())
		}
	}
	assertFailuresBounded(t, n)
}

// TestLowRateHighLossEdge drives the weakest HT rate at an SNR where
// a large fraction of frames die: the system must degrade, not wedge.
func TestLowRateHighLossEdge(t *testing.T) {
	snr := 3.5 // near MCS0's waterfall for 1538-byte frames
	em := channel.DefaultSNRModel()
	em.SNROverrideDB = &snr
	cfg := ht150Config(hack.ModeMoreData, 1, 47)
	cfg.DataRate = phy.HTRate(0, 1)
	cfg.AckRate = phy.Rate{}
	cfg.Err = em
	n := New(cfg)
	f := n.StartDownload(0, 0, 0)
	n.Run(10 * sim.Second)
	if f.Goodput.Total() == 0 {
		t.Skip("channel fully dead at this SNR; nothing to assert")
	}
	assertFailuresBounded(t, n)
	if n.AP.MAC.Stats.Retries == 0 {
		t.Error("no retries at near-waterfall SNR")
	}
}

// TestTimerModeUnderLoss covers the rejected strawman's loss paths:
// held ACKs flushed by the timer while frames are being dropped.
func TestTimerModeUnderLoss(t *testing.T) {
	cfg := ht150Config(hack.ModeTimer, 1, 53)
	cfg.Err = &channel.FixedLoss{Default: 0.05}
	n := New(cfg)
	const total = 1 << 20
	f := n.StartDownload(0, total, 0)
	n.Run(30 * sim.Second)
	if !f.Done {
		t.Fatalf("timer-mode lossy transfer incomplete: %d", f.Goodput.Total())
	}
	acks := n.Clients[0].Driver.Acct.NativeAcks + n.Clients[0].Driver.Acct.CompressedAcks
	if fails := n.DecompFailures(); fails > acks/50 {
		t.Errorf("timer mode failures %d of %d ACKs", fails, acks)
	}
}

// TestDrasticQueueLimit shrinks the AP queue below one A-MPDU: batches
// stay small, MORE DATA rarely sets, HACK degrades gracefully toward
// native ACKs.
func TestDrasticQueueLimit(t *testing.T) {
	cfg := ht150Config(hack.ModeMoreData, 1, 59)
	cfg.APQueueLimit = 8
	n := New(cfg)
	f := n.StartDownload(0, 1<<20, 0)
	n.Run(30 * sim.Second)
	if !f.Done {
		t.Fatalf("tiny-queue transfer incomplete: %d", f.Goodput.Total())
	}
	assertFailuresBounded(t, n)
}

// assertFailuresBounded verifies the §3.4 health property as this
// reproduction provides it: ROHC decompression failures are transient
// (CRC-caught drops during loss-recovery phases, healed by the next
// native re-anchor), never silent corruption, and bounded to a small
// fraction of the ACK traffic. Steady lossless runs see zero.
func assertFailuresBounded(t *testing.T, n *Network) {
	t.Helper()
	var acks uint64
	for _, c := range append([]*WifiNode{n.AP}, n.Clients...) {
		acks += c.Driver.Acct.NativeAcks + c.Driver.Acct.CompressedAcks
	}
	limit := uint64(5) + acks/100
	if fails := n.DecompFailures(); fails > limit {
		t.Errorf("decompression failures %d of %d ACKs (limit %d)", fails, acks, limit)
	}
}
