// Package node composes the full simulated network the paper
// evaluates: WiFi stations (clients and access points) that stack a
// host TCP/IP implementation, a HACK driver, and an 802.11 MAC; wired
// backhaul links; and a wired server. It provides the flow
// orchestration (staggered TCP downloads/uploads, saturating UDP) that
// the experiment runners parameterize.
//
// Topology (the paper's §4.3 setup):
//
//	server ──(500 Mbps, 1 ms wire)── AP ))) clients (≤10, 10 m circle)
//
// For the SoRa testbed experiments (§4.1) the AP itself hosts the TCP
// sender (the testbed ran iperf between SoRa nodes in ad-hoc mode), so
// the wire is unused.
//
// Config.BSSs generalizes the topology to multiple overlapping BSSs —
// each its own AP (with its own backhaul to the shared server) plus
// client set, all contending on one channel.Medium — for the spatial
// PHY scenarios (Config.Geometry). MAC addresses are globally unique
// across BSSs and each AP bridges over WiFi only to its own clients,
// so block-ack sessions and ROHC contexts can never cross BSSs. With
// one BSS the assembly is bit-identical to the pre-spatial builds.
package node

import (
	"fmt"
	"math"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/mac"
	"tcphack/internal/packet"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
	"tcphack/internal/tcp"
	"tcphack/internal/trace"
)

// Config parameterizes a Network.
type Config struct {
	Seed int64
	// SchedulerBackend selects the event-queue implementation (the
	// zero value is the timing wheel). Executions are byte-identical
	// across backends; the heap exists for differential testing and
	// benchmark comparison.
	SchedulerBackend sim.Backend
	// Mode selects the HACK policy at every station (ModeOff = stock).
	Mode hack.Mode

	// PHY/MAC.
	DataRate phy.Rate
	AckRate  phy.Rate // zero: 802.11 control-response rules
	// RateAdapter selects per-station rate adaptation, in
	// mac.ParseAdapterSpec's vocabulary: "" or "fixed" pins DataRate
	// (the paper's fixed-rate methodology), "fixed:<rate>" pins a
	// named rate, "ideal" is the negligible-FER threshold oracle,
	// "argmax" the expected-goodput argmax oracle, "minstrel" the
	// sampling adapter. Every station gets its own adapter instance
	// with per-network deterministic state. Invalid specs panic in
	// New; CLIs should pre-validate with mac.ParseAdapterSpec.
	RateAdapter     string
	AIFSN           int // 2 = 802.11a DCF, 3 = 802.11n EDCA BE
	Aggregation     bool
	TXOPLimit       sim.Duration
	RetryLimit      int
	AckTurnaround   sim.Duration // SoRa LL ACK lateness (all stations)
	AckTimeoutSlack sim.Duration // widened ACK timeout to match

	// Topology.
	Clients   int
	ClientPos func(i int) channel.Pos // default: circle of radius 10 m
	Err       channel.ErrorModel      // default: lossless
	// APPos places the (first) AP; the default origin matches the
	// paper's star topology.
	APPos channel.Pos
	// BSSs, when non-empty, replaces the single-BSS topology: one
	// entry per BSS, all sharing the medium. Empty means one implicit
	// BSS built from APPos/Clients/ClientPos (the legacy layout).
	BSSs []BSSSpec
	// Geometry, when non-nil, switches the shared medium to the
	// spatial PHY (per-pair path loss, per-receiver carrier sense,
	// SINR capture). Nil keeps the scalar collision-domain channel.
	Geometry *channel.Geometry

	// Queues: the paper sizes the AP transmit queue at 126 packets per
	// flow ("three batches of 42").
	APQueueLimit     int
	ClientQueueLimit int

	// Host model.
	StackDelay    sim.Duration // TCP stack turnaround (≫ SIFS; default 50 µs)
	ForwardDelay  sim.Duration // AP driver forwarding latency (default 10 µs)
	DriverLatency sim.Duration // HACK compress+DMA latency (default 20 µs)

	// Wire (server—AP). WireRate 0 disables the server (AP hosts
	// senders, the SoRa topology).
	WireRateKbps int
	WireDelay    sim.Duration

	// TCPConfig is the base endpoint configuration (ports/addresses
	// are filled per flow).
	TCPConfig tcp.Config

	// Tracer, when non-nil, is threaded through every layer — channel,
	// MAC, HACK driver, TCP — as the network is assembled. Tracing is
	// determinism-neutral: attaching a tracer perturbs no RNG stream,
	// event ordering, or protocol decision; with a nil Tracer every
	// probe site is a single pointer check.
	Tracer trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.DataRate.IsZero() {
		c.DataRate = phy.RateA54
	}
	if c.AIFSN == 0 {
		if c.DataRate.HT {
			c.AIFSN = phy.AIFSNBestEffort
		} else {
			c.AIFSN = 2
		}
	}
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.ClientPos == nil {
		n := c.Clients
		ap := c.APPos
		c.ClientPos = func(i int) channel.Pos {
			angle := 2 * math.Pi * float64(i) / float64(n)
			return channel.Pos{X: ap.X + 10*math.Cos(angle), Y: ap.Y + 10*math.Sin(angle)}
		}
	}
	if len(c.BSSs) == 0 {
		c.BSSs = []BSSSpec{{APPos: c.APPos, Clients: c.Clients, ClientPos: c.ClientPos}}
	}
	for bi := range c.BSSs {
		if c.BSSs[bi].Clients == 0 {
			c.BSSs[bi].Clients = c.Clients
		}
		if c.BSSs[bi].ClientPos == nil {
			k := c.BSSs[bi].Clients
			ap := c.BSSs[bi].APPos
			c.BSSs[bi].ClientPos = func(i int) channel.Pos {
				angle := 2 * math.Pi * float64(i) / float64(k)
				return channel.Pos{X: ap.X + 10*math.Cos(angle), Y: ap.Y + 10*math.Sin(angle)}
			}
		}
	}
	if c.APQueueLimit == 0 {
		c.APQueueLimit = 126
	}
	if c.ClientQueueLimit == 0 {
		c.ClientQueueLimit = 1000
	}
	if c.StackDelay == 0 {
		c.StackDelay = 50 * sim.Microsecond
	}
	if c.ForwardDelay == 0 {
		c.ForwardDelay = 10 * sim.Microsecond
	}
	if c.DriverLatency == 0 {
		c.DriverLatency = 20 * sim.Microsecond
	}
	if c.WireDelay == 0 {
		c.WireDelay = sim.Millisecond
	}
	if c.TCPConfig.MSS == 0 {
		tr := c.TCPConfig.Tracer
		c.TCPConfig = tcp.DefaultConfig()
		c.TCPConfig.Tracer = tr
	}
	if c.TCPConfig.Tracer == nil {
		c.TCPConfig.Tracer = c.Tracer
	}
	return c
}

// BSSSpec describes one BSS of a multi-BSS topology: an AP position
// plus its client set. Zero Clients inherits Config.Clients (so a
// campaign's clients axis scales every BSS together); nil ClientPos
// defaults to a 10 m circle around the AP.
type BSSSpec struct {
	// APPos places the BSS's access point.
	APPos channel.Pos
	// Clients is the number of client stations (0 inherits
	// Config.Clients).
	Clients int
	// ClientPos places client i of this BSS (nil: 10 m circle around
	// APPos).
	ClientPos func(i int) channel.Pos
}

// BSS is one assembled BSS: its AP, its clients (also present in
// Network.Clients), and its backhaul links to the shared server.
type BSS struct {
	// Index is the BSS's position in Network.BSSes.
	Index int
	// AP is the BSS's access point.
	AP *WifiNode
	// Clients are the BSS's client nodes, in global-index order.
	Clients        []*WifiNode
	wireUp, wireDn *Link // up: AP→server, dn: server→AP
}

// Addressing plan. MAC addresses are assigned sequentially in
// construction order (BSS 0's AP, its clients, BSS 1's AP, …), so
// with a single BSS the AP is addr 1 and clients start at 2 — the
// historical constants below.
const (
	apMAC    = mac.Addr(1)
	baseMAC  = mac.Addr(2)
	basePort = 5001
)

var (
	serverIP = packet.IP(10, 0, 0, 1)
	apIP     = packet.IP(192, 168, 0, 1)
)

func clientIP(i int) packet.Addr { return packet.IP(192, 168, 0, byte(10+i)) }

// bssAPIP returns the AP address for BSS b: 192.168.b.1, so BSS 0
// keeps the historical apIP.
func bssAPIP(b int) packet.Addr { return packet.IP(192, 168, byte(b), 1) }

// Link is a full-duplex point-to-point wired link (one Link per
// direction): fixed rate, fixed propagation delay, FIFO serialization.
type Link struct {
	sched     *sim.Scheduler
	rateKbps  int
	delay     sim.Duration
	busyUntil sim.Time
	deliver   func(any) // persistent Post callback wrapping Deliver
	// Deliver receives packets at the far end.
	Deliver func(*packet.Packet)
}

// NewLink creates a link; rateKbps 0 means infinite rate.
func NewLink(sched *sim.Scheduler, rateKbps int, delay sim.Duration) *Link {
	l := &Link{sched: sched, rateKbps: rateKbps, delay: delay}
	l.deliver = func(a any) { l.Deliver(a.(*packet.Packet)) }
	return l
}

// Send serializes p onto the link.
func (l *Link) Send(p *packet.Packet) {
	now := l.sched.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var txTime sim.Duration
	if l.rateKbps > 0 {
		txTime = sim.Duration(int64(p.Len()) * 8 * int64(sim.Second) / (int64(l.rateKbps) * 1000))
	}
	l.busyUntil = start + txTime
	l.sched.Post(l.busyUntil+l.delay, l.deliver, p)
}

// WifiNode is a WiFi station with a host stack and HACK driver.
type WifiNode struct {
	net     *Network
	bss     *BSS
	isAP    bool
	MAC     *mac.Station
	Driver  *hack.Driver
	IP      packet.Addr
	MACAddr mac.Addr

	// Persistent Post callbacks for the per-packet host-delay events
	// (one closure per node instead of one per packet).
	localIn func(any)
	routeFn func(any)

	endpoints map[packet.FiveTuple]*tcp.Endpoint
	// Goodput measures application bytes received at this node
	// (TCP payload or UDP payload).
	Goodput stats.Goodput
}

// Network is the assembled simulation.
type Network struct {
	Cfg    Config
	Sched  *sim.Scheduler
	Medium *channel.Medium
	// AP is BSS 0's access point (every network has at least one BSS).
	AP *WifiNode
	// Clients holds every client of every BSS in global-index order
	// (BSS 0's clients first).
	Clients []*WifiNode
	// BSSes lists the assembled BSSs; a legacy single-BSS network has
	// exactly one.
	BSSes []*BSS
	// Server endpoints/state (nil when WireRateKbps == 0).
	serverEndpoints map[packet.FiveTuple]*tcp.Endpoint
	clientIdx       map[packet.Addr]int
	clientBSS       []int // global client index → BSS index
	addrBSS         map[mac.Addr]int

	Flows []*Flow

	nextPort uint16
}

// Flow is one transfer and its measurement hooks.
type Flow struct {
	Client   int
	Upload   bool
	Sender   *tcp.Endpoint
	Receiver *tcp.Endpoint
	Goodput  stats.Goodput
	Done     bool
	DoneAt   sim.Time
}

// New assembles a network per cfg.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	sched := sim.NewSchedulerBackend(cfg.Seed, cfg.SchedulerBackend)
	medium := channel.New(sched, cfg.Err)
	medium.Tracer = cfg.Tracer
	medium.Geometry = cfg.Geometry
	n := &Network{
		Cfg:             cfg,
		Sched:           sched,
		Medium:          medium,
		serverEndpoints: make(map[packet.FiveTuple]*tcp.Endpoint),
		clientIdx:       make(map[packet.Addr]int),
		addrBSS:         make(map[mac.Addr]int),
		nextPort:        basePort,
	}

	// Address/position plan: MAC addresses assigned sequentially in
	// construction order, client IPs numbered globally. Planned up
	// front so rate adapters can resolve any peer's position.
	type bssPlan struct {
		apAddr  mac.Addr
		clients []mac.Addr
	}
	plans := make([]bssPlan, len(cfg.BSSs))
	positions := make(map[mac.Addr]channel.Pos)
	nextMAC := apMAC
	global := 0
	for bi, spec := range cfg.BSSs {
		plans[bi].apAddr = nextMAC
		positions[nextMAC] = spec.APPos
		n.addrBSS[nextMAC] = bi
		nextMAC++
		for i := 0; i < spec.Clients; i++ {
			plans[bi].clients = append(plans[bi].clients, nextMAC)
			positions[nextMAC] = spec.ClientPos(i)
			n.addrBSS[nextMAC] = bi
			n.clientIdx[clientIP(global)] = global
			n.clientBSS = append(n.clientBSS, bi)
			nextMAC++
			global++
		}
	}

	payloadAllowance := 0
	if cfg.Mode != hack.ModeOff {
		// Budget the ACK timeout for the worst-case compressed payload.
		// The driver's frame budget (hack.Config.MaxPayload) is bounded
		// by this same constant, so a link-layer ACK can never outlast
		// the response deadline its peer derived from the allowance —
		// the contract whose violation once drove the MORE-DATA
		// collapse under uniform loss.
		payloadAllowance = hack.DefaultMaxPayload
	}
	adapterSpec, err := mac.ParseAdapterSpec(cfg.RateAdapter)
	if err != nil {
		panic(fmt.Sprintf("node: %v", err))
	}
	posOf := func(a mac.Addr) channel.Pos { return positions[a] }
	snrModel := channel.FindSNRModel(cfg.Err)
	// newAdapter builds one per-station adapter instance. Minstrel
	// forks its probe-schedule RNG off the network scheduler (like the
	// medium's RNG fork), so campaigns stay deterministic and
	// race-free; the fixed default returns nil so seed scenarios keep
	// bit-identical RNG streams.
	newAdapter := func(self mac.Addr) mac.RateAdapter {
		switch adapterSpec.Kind {
		case mac.AdapterIdeal:
			return &mac.IdealSNR{
				Rates: phy.RateFamily(cfg.DataRate),
				SNRFor: func(dst mac.Addr) (float64, bool) {
					if snrModel == nil {
						return 0, false
					}
					return snrModel.SNRAt(posOf(self).DistanceTo(posOf(dst))), true
				},
			}
		case mac.AdapterArgmax:
			batch := 1
			if cfg.Aggregation {
				// One A-MPDU elicits a Block ACK window of per-MPDU
				// fates; the argmax scores whole-batch survival.
				batch = mac.BAWindowSize
			}
			return &mac.ExpectedGoodput{
				Rates:    phy.RateFamily(cfg.DataRate),
				BatchLen: batch,
				SNRFor: func(dst mac.Addr) (float64, bool) {
					if snrModel == nil {
						return 0, false
					}
					return snrModel.SNRAt(posOf(self).DistanceTo(posOf(dst))), true
				},
			}
		case mac.AdapterMinstrel:
			return mac.NewMinstrel(mac.MinstrelConfig{Rates: phy.RateFamily(cfg.DataRate)}, sched.ForkRand())
		default:
			if !adapterSpec.Rate.IsZero() {
				return mac.FixedRate{Rate: adapterSpec.Rate}
			}
			return nil // mac defaults to FixedRate{DataRate}
		}
	}
	mkStation := func(addr mac.Addr, pos channel.Pos, queueLimit int) *mac.Station {
		return mac.NewStation(sched, medium, mac.Config{
			Addr: addr, Pos: pos,
			DataRate: cfg.DataRate, AckRate: cfg.AckRate,
			RateAdapter: newAdapter(addr),
			AIFSN:       cfg.AIFSN, RetryLimit: cfg.RetryLimit,
			Aggregation: cfg.Aggregation, TXOPLimit: cfg.TXOPLimit,
			QueueLimit:          queueLimit,
			AckTurnaround:       cfg.AckTurnaround,
			AckTimeoutSlack:     cfg.AckTimeoutSlack,
			AckPayloadAllowance: payloadAllowance,
			Tracer:              cfg.Tracer,
		})
	}

	global = 0
	for bi, spec := range cfg.BSSs {
		b := &BSS{Index: bi}
		ap := n.newNode(mkStation(plans[bi].apAddr, spec.APPos, cfg.APQueueLimit), bssAPIP(bi), plans[bi].apAddr)
		ap.bss, ap.isAP = b, true
		b.AP = ap
		for i, addr := range plans[bi].clients {
			st := mkStation(addr, spec.ClientPos(i), cfg.ClientQueueLimit)
			c := n.newNode(st, clientIP(global), addr)
			c.bss = b
			b.Clients = append(b.Clients, c)
			n.Clients = append(n.Clients, c)
			global++
		}
		n.BSSes = append(n.BSSes, b)
	}
	n.AP = n.BSSes[0].AP

	if cfg.WireRateKbps > 0 {
		for _, b := range n.BSSes {
			b := b
			b.wireUp = NewLink(sched, cfg.WireRateKbps, cfg.WireDelay)
			b.wireDn = NewLink(sched, cfg.WireRateKbps, cfg.WireDelay)
			b.wireUp.Deliver = n.serverInput
			b.wireDn.Deliver = func(p *packet.Packet) { b.AP.route(p) }
		}
	}
	return n
}

// newNode builds a WifiNode around a MAC station.
func (n *Network) newNode(st *mac.Station, ip packet.Addr, addr mac.Addr) *WifiNode {
	w := &WifiNode{
		net: n, MAC: st, IP: ip, MACAddr: addr,
		endpoints: make(map[packet.FiveTuple]*tcp.Endpoint),
	}
	w.localIn = func(a any) { w.localInput(a.(*packet.Packet)) }
	w.routeFn = func(a any) { w.route(a.(*packet.Packet)) }
	d := hack.NewDriver(n.Sched, hack.Config{
		Mode:          n.Cfg.Mode,
		DriverLatency: n.Cfg.DriverLatency,
		Addr:          addr,
		Tracer:        n.Cfg.Tracer,
	})
	d.EnqueueNative = func(dst mac.Addr, p *packet.Packet) {
		if !st.EnqueuePacket(dst, p, true) {
			// Queue overflow: the native ACK is gone; keep the driver's
			// syncing gate honest.
			d.NativeResolved(dst, p, false)
		}
	}
	d.ForwardUp = func(from mac.Addr, p *packet.Packet) {
		// Reconstituted TCP ACKs surface at the driver; forward after
		// the driver's processing latency.
		n.Sched.PostAfter(n.Cfg.ForwardDelay, w.routeFn, p)
	}
	d.WithdrawNative = func(dst mac.Addr, p *packet.Packet) bool {
		if st.RemoveQueued(dst, func(m *mac.MSDU) bool { return m.Packet == p }) {
			// The compressed copy supersedes the withdrawn native.
			d.NativeResolved(dst, p, true)
			return true
		}
		return false
	}
	st.OnMSDUResolved = func(m *mac.MSDU, delivered bool) {
		if m.IsTCPAck {
			d.NativeResolved(m.Dst, m.Packet, delivered)
		}
	}
	w.Driver = d
	st.Hooks = d
	st.Deliver = func(m *mac.MSDU) { w.fromWifi(m) }
	return w
}

// fromWifi handles an MSDU delivered by the MAC.
func (w *WifiNode) fromWifi(m *mac.MSDU) {
	p := m.Packet
	if p.IsTCPAck() {
		// Keep the decompressor context in sync with natively
		// travelling ACKs.
		w.Driver.ObserveNativeAck(p)
	}
	if p.IP.Dst == w.IP {
		// Local delivery through the host stack.
		w.net.Sched.PostAfter(w.net.Cfg.StackDelay, w.localIn, p)
		return
	}
	// Forwarding (AP role).
	w.net.Sched.PostAfter(w.net.Cfg.ForwardDelay, w.routeFn, p)
}

// localInput demultiplexes a packet to this node's stack.
func (w *WifiNode) localInput(p *packet.Packet) {
	if p.UDP != nil {
		w.Goodput.Add(w.net.Sched.Now(), p.PayloadLen)
		return
	}
	if t, ok := p.Tuple(); ok {
		if ep, found := w.endpoints[t.Reverse()]; found {
			ep.Input(p)
		}
	}
}

// route sends p toward its destination IP from this node.
func (w *WifiNode) route(p *packet.Packet) {
	dst := p.IP.Dst
	switch {
	case dst == w.IP:
		w.localInput(p)
	case w.isAP:
		// AP: toward one of its own clients over WiFi, or upstream over
		// its wire. Clients of other BSSs are never bridged over WiFi —
		// that confinement (plus globally unique MAC addresses) is what
		// keeps block-ack sessions and ROHC contexts BSS-local.
		if ci, ok := w.net.clientByIP(dst); ok && w.net.clientBSS[ci] == w.bss.Index {
			w.sendWifi(w.net.Clients[ci].MACAddr, p)
		} else if w.bss.wireUp != nil {
			w.bss.wireUp.Send(p)
		}
	default:
		// Clients reach everything via their own AP.
		w.sendWifi(w.bss.AP.MACAddr, p)
	}
}

// sendWifi enqueues p for WiFi transmission, routing pure TCP ACKs
// through the HACK driver.
func (w *WifiNode) sendWifi(dst mac.Addr, p *packet.Packet) {
	if p.IsTCPAck() {
		w.Driver.SubmitAck(dst, p)
		return
	}
	w.MAC.EnqueuePacket(dst, p, false)
}

func (n *Network) clientByIP(ip packet.Addr) (int, bool) {
	ci, ok := n.clientIdx[ip]
	return ci, ok
}

// bssOf returns the BSS owning global client index ci.
func (n *Network) bssOf(ci int) *BSS { return n.BSSes[n.clientBSS[ci]] }

// BSSOfAddr maps a station MAC address to its BSS index, or -1 for an
// unknown address. Campaign collectors use it to attribute per-station
// airtime to BSSs.
func (n *Network) BSSOfAddr(a mac.Addr) int {
	if bi, ok := n.addrBSS[a]; ok {
		return bi
	}
	return -1
}

// serverInput demultiplexes a packet arriving at the server.
func (n *Network) serverInput(p *packet.Packet) {
	if t, ok := p.Tuple(); ok {
		if ep, found := n.serverEndpoints[t.Reverse()]; found {
			ep.Input(p)
		}
	}
}

// endpointPair creates a connected sender/receiver endpoint pair for a
// flow between srcIP and dstIP. Output wiring depends on where each
// end lives.
func (n *Network) allocPort() uint16 {
	n.nextPort++
	return n.nextPort
}

// StartDownload starts a TCP transfer of totalBytes toward client ci,
// beginning at startAt. totalBytes 0 means unbounded. The sender lives
// on the server when the wire exists, else on the AP (SoRa topology).
func (n *Network) StartDownload(ci int, totalBytes uint64, startAt sim.Duration) *Flow {
	port := n.allocPort()
	bss := n.bssOf(ci)
	senderIP := serverIP
	if bss.wireDn == nil {
		senderIP = bss.AP.IP
	}
	scfg := n.Cfg.TCPConfig
	scfg.Local, scfg.LocalPort = senderIP, port
	scfg.Remote, scfg.RemotePort = clientIP(ci), port
	rcfg := n.Cfg.TCPConfig
	rcfg.Local, rcfg.LocalPort = clientIP(ci), port
	rcfg.Remote, rcfg.RemotePort = senderIP, port

	sender := tcp.NewEndpoint(n.Sched, scfg)
	receiver := tcp.NewEndpoint(n.Sched, rcfg)
	f := &Flow{Client: ci, Sender: sender, Receiver: receiver}
	return n.finishFlow(f, ci, sender, receiver, totalBytes, startAt, false)
}

// StartUpload starts a TCP transfer of totalBytes from client ci.
func (n *Network) StartUpload(ci int, totalBytes uint64, startAt sim.Duration) *Flow {
	port := n.allocPort()
	bss := n.bssOf(ci)
	peerIP := serverIP
	if bss.wireUp == nil {
		peerIP = bss.AP.IP
	}
	scfg := n.Cfg.TCPConfig
	scfg.Local, scfg.LocalPort = clientIP(ci), port
	scfg.Remote, scfg.RemotePort = peerIP, port
	rcfg := n.Cfg.TCPConfig
	rcfg.Local, rcfg.LocalPort = peerIP, port
	rcfg.Remote, rcfg.RemotePort = clientIP(ci), port

	sender := tcp.NewEndpoint(n.Sched, scfg)
	receiver := tcp.NewEndpoint(n.Sched, rcfg)
	f := &Flow{Client: ci, Upload: true, Sender: sender, Receiver: receiver}
	return n.finishFlow(f, ci, sender, receiver, totalBytes, startAt, true)
}

// finishFlow wires endpoints into their hosts and schedules the start.
func (n *Network) finishFlow(f *Flow, ci int, sender, receiver *tcp.Endpoint, totalBytes uint64, startAt sim.Duration, upload bool) *Flow {
	client := n.Clients[ci]
	bss := n.bssOf(ci)

	bindWifi := func(w *WifiNode, ep *tcp.Endpoint) {
		w.endpoints[ep.Tuple()] = ep
		ep.Output = func(p *packet.Packet) { w.route(p) }
	}
	bindServer := func(ep *tcp.Endpoint) {
		n.serverEndpoints[ep.Tuple()] = ep
		ep.Output = func(p *packet.Packet) { bss.wireDn.Send(p) }
	}

	wifiPeer := bss.AP // AP-resident endpoint when no wire
	if upload {
		bindWifi(client, sender)
		if bss.wireUp != nil {
			bindServer(receiver)
		} else {
			bindWifi(wifiPeer, receiver)
		}
	} else {
		bindWifi(client, receiver)
		if bss.wireDn != nil {
			bindServer(sender)
		} else {
			bindWifi(wifiPeer, sender)
		}
	}

	receiver.OnDeliver = func(nb int) {
		f.Goodput.Add(n.Sched.Now(), nb)
		if !upload {
			client.Goodput.Add(n.Sched.Now(), nb)
		}
	}
	receiver.OnDone = func() {
		f.Done = true
		f.DoneAt = n.Sched.Now()
	}
	receiver.Listen()
	n.Sched.At(sim.Time(startAt), func() {
		if totalBytes == 0 {
			sender.SendForever()
		} else {
			sender.Send(totalBytes)
		}
		sender.Connect()
	})
	n.Flows = append(n.Flows, f)
	return f
}

// StartUDPDownload saturates client ci with UDP at rateKbps using
// payload-length pktLen datagrams, beginning at startAt. Delivered
// bytes accumulate in the client's Goodput.
func (n *Network) StartUDPDownload(ci int, rateKbps int, pktLen int, startAt sim.Duration) {
	dst := clientIP(ci)
	bss := n.bssOf(ci)
	srcIP := serverIP
	if bss.wireDn == nil {
		srcIP = bss.AP.IP
	}
	interval := sim.Duration(int64(pktLen) * 8 * int64(sim.Second) / (int64(rateKbps) * 1000))
	var ipID uint16
	var tick func(any)
	tick = func(any) {
		ipID++
		p := &packet.Packet{
			IP:         packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, ID: ipID, Src: srcIP, Dst: dst},
			UDP:        &packet.UDP{SrcPort: 9, DstPort: 9},
			PayloadLen: pktLen - packet.IPv4HeaderLen - packet.UDPHeaderLen,
		}
		if bss.wireDn != nil {
			bss.wireDn.Send(p)
		} else {
			bss.AP.route(p)
		}
		n.Sched.PostAfter(interval, tick, nil)
	}
	n.Sched.Post(sim.Time(startAt), tick, nil)
}

// Run advances the simulation to the given time.
func (n *Network) Run(until sim.Duration) {
	n.Sched.RunUntil(sim.Time(until))
}

// minstrelOf returns the station's Minstrel adapter, or nil when the
// station runs a different (or no) rate-adaptation strategy.
func minstrelOf(st *mac.Station) *mac.Minstrel {
	m, _ := st.Config().RateAdapter.(*mac.Minstrel)
	return m
}

// APMinstrelStats returns the per-rate statistics the AP's Minstrel
// adapter has learned toward client ci — the download direction's
// learned state. It returns nil when the AP is not running Minstrel,
// ci is out of range, or no frames have flowed toward that client yet.
func (n *Network) APMinstrelStats(ci int) []mac.RateStats {
	if ci < 0 || ci >= len(n.Clients) {
		return nil
	}
	if m := minstrelOf(n.bssOf(ci).AP.MAC); m != nil {
		return m.Snapshot(n.Clients[ci].MACAddr)
	}
	return nil
}

// ClientMinstrelStats returns the per-rate statistics client ci's
// Minstrel adapter has learned toward the AP — the upload direction
// (and TCP ACK traffic under stock TCP).
func (n *Network) ClientMinstrelStats(ci int) []mac.RateStats {
	if ci < 0 || ci >= len(n.Clients) {
		return nil
	}
	if m := minstrelOf(n.Clients[ci].MAC); m != nil {
		return m.Snapshot(n.bssOf(ci).AP.MACAddr)
	}
	return nil
}

// DecompFailures totals ROHC decompression failures across all nodes —
// the paper's §4.3 health check (must be zero).
func (n *Network) DecompFailures() uint64 {
	var total uint64
	for _, b := range n.BSSes {
		total += b.AP.Driver.DecompFailures
	}
	for _, c := range n.Clients {
		total += c.Driver.DecompFailures
	}
	return total
}

func (n *Network) String() string {
	return fmt.Sprintf("network[%d clients, %v, mode=%v]", len(n.Clients), n.Cfg.DataRate, n.Cfg.Mode)
}
