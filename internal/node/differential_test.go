// Differential geometry harness: the scalar channel (the engine's
// original medium) is the oracle for the spatial PHY pinned to the
// degenerate geometry — every radio senses everything, every frame
// reaches everyone, any overlap collides. Driven from the same ht150
// network workload as the scheduler differential suite, the two
// regimes must produce identical event-time traces, and a campaign
// sweep over the degenerate geometry must emit byte-identical result
// rows. Any divergence is a spatial-engine semantics bug.
package node_test

import (
	"bytes"
	"testing"

	"tcphack/internal/campaign"
	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// geometryTrace runs the ht150 network (aggregated 802.11n, HACK
// MORE-DATA, 3 TCP downloads) on the given channel regime and records
// the virtual time of every executed event.
func geometryTrace(geom *channel.Geometry, loss float64, maxEvents int) ([]sim.Time, uint64) {
	opts := []scenario.Option{
		scenario.With80211n(),
		scenario.WithClients(3),
		scenario.WithMode(hack.ModeMoreData),
	}
	if loss > 0 {
		opts = append(opts, scenario.WithUniformLoss(loss))
	}
	cfg := scenario.New(opts...)
	cfg.Geometry = geom
	n := node.New(cfg)
	for ci := 0; ci < 3; ci++ {
		n.StartDownload(ci, 0, sim.Duration(ci)*sim.Millisecond)
	}
	trace := make([]sim.Time, 0, maxEvents)
	for len(trace) < maxEvents && n.Sched.Step() {
		trace = append(trace, n.Sched.Now())
	}
	return trace, n.Sched.EventsFired()
}

// TestDifferentialGeometryTrace requires the spatial engine under the
// degenerate geometry to replay the scalar channel's event trace
// exactly, lossless and at 5% uniform loss. Loss exercises the RNG
// path: the spatial regime must draw exactly the same random numbers
// at the same points, or retry timers shift and the traces diverge.
func TestDifferentialGeometryTrace(t *testing.T) {
	const maxEvents = 200_000
	for _, tc := range []struct {
		name string
		loss float64
	}{{"lossless", 0}, {"loss5pct", 0.05}} {
		t.Run(tc.name, func(t *testing.T) {
			scalar, scalarFired := geometryTrace(nil, tc.loss, maxEvents)
			spatial, spatialFired := geometryTrace(channel.DegenerateGeometry(), tc.loss, maxEvents)
			if len(scalar) != len(spatial) {
				t.Fatalf("trace length: scalar %d, spatial %d", len(scalar), len(spatial))
			}
			if len(scalar) < maxEvents/2 {
				t.Fatalf("degenerate trace: only %d events", len(scalar))
			}
			for i := range scalar {
				if scalar[i] != spatial[i] {
					t.Fatalf("trace diverges at event %d: scalar %v, spatial %v",
						i, scalar[i], spatial[i])
				}
			}
			if scalarFired != spatialFired {
				t.Fatalf("events fired: scalar %d, spatial %d", scalarFired, spatialFired)
			}
		})
	}
}

// TestDifferentialCampaignRows runs one small sweep twice — scalar
// base vs the same base pinned to the degenerate geometry — and
// requires the emitted JSON result rows to be byte-identical: every
// metric, counter, and airtime bucket, across modes, seeds, and a
// lossy point.
func TestDifferentialCampaignRows(t *testing.T) {
	spec := func(geom *channel.Geometry) campaign.Spec {
		cfg := scenario.New(scenario.With80211n(), scenario.WithClients(2))
		cfg.Geometry = geom
		return campaign.Spec{
			Name: "differential",
			Base: cfg,
			Axes: campaign.Axes{
				Modes: []hack.Mode{hack.ModeOff, hack.ModeMoreData},
				Seeds: campaign.Seeds(1, 2),
				Loss:  []float64{0, 0.05},
			},
			Warmup:  100 * sim.Millisecond,
			Measure: 200 * sim.Millisecond,
			Workers: 2,
			Airtime: true,
		}
	}
	var scalar, spatial bytes.Buffer
	if err := campaign.Run(spec(nil)).WriteJSON(&scalar); err != nil {
		t.Fatal(err)
	}
	if err := campaign.Run(spec(channel.DegenerateGeometry())).WriteJSON(&spatial); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scalar.Bytes(), spatial.Bytes()) {
		t.Errorf("campaign rows diverge between scalar and degenerate-spatial runs:\n--- scalar ---\n%s\n--- spatial ---\n%s",
			scalar.String(), spatial.String())
	}
}
