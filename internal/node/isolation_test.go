// Inter-BSS isolation regression: two overlapping BSSs share one
// medium, so every radio hears the other cell's frames promiscuously.
// Addressing must keep the cells logically disjoint — globally unique
// MAC addresses, per-BSS AP IPs, own-BSS-only bridging — or Block ACK
// sessions and ROHC decompressor contexts cross-poison between cells.
package node_test

import (
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/node"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// twoBSSNetwork builds two 2-client BSSs whose APs sit 10 m apart on
// the spatial PHY: close enough that every station senses and hears
// every other, the worst case for cross-BSS confusion.
func twoBSSNetwork(t *testing.T) *node.Network {
	t.Helper()
	cfg := scenario.New(
		scenario.With80211n(),
		scenario.WithClients(2),
		scenario.WithPathLoss(),
		scenario.WithBSSLayout(
			node.BSSSpec{APPos: channel.Pos{}},
			node.BSSSpec{APPos: channel.Pos{X: 10}},
		),
	)
	return node.New(cfg)
}

func TestInterBSSIsolation(t *testing.T) {
	n := twoBSSNetwork(t)
	if len(n.BSSes) != 2 {
		t.Fatalf("built %d BSSs, want 2", len(n.BSSes))
	}
	if len(n.Clients) != 4 {
		t.Fatalf("built %d clients, want 2 per BSS", len(n.Clients))
	}

	// Globally unique MAC addresses across both cells.
	seen := map[uint16]string{}
	check := func(addr uint16, who string) {
		if prev, dup := seen[addr]; dup {
			t.Errorf("MAC %d assigned to both %s and %s", addr, prev, who)
		}
		seen[addr] = who
	}
	for bi, b := range n.BSSes {
		check(uint16(b.AP.MACAddr), "AP"+string(rune('0'+bi)))
		for ci, c := range b.Clients {
			check(uint16(c.MACAddr), "client"+string(rune('0'+bi))+string(rune('0'+ci)))
		}
	}
	// Per-BSS AP IPs stay distinct.
	if n.BSSes[0].AP.IP == n.BSSes[1].AP.IP {
		t.Errorf("both APs share IP %v", n.BSSes[0].AP.IP)
	}
	// Address→BSS attribution covers every station.
	for bi, b := range n.BSSes {
		if got := n.BSSOfAddr(b.AP.MACAddr); got != bi {
			t.Errorf("BSSOfAddr(AP%d) = %d", bi, got)
		}
		for _, c := range b.Clients {
			if got := n.BSSOfAddr(c.MACAddr); got != bi {
				t.Errorf("BSSOfAddr(client %d) = %d, want %d", c.MACAddr, got, bi)
			}
		}
	}

	// Both cells carry concurrent TCP downloads to completion with HACK
	// compression active. Cross-poisoned ROHC contexts would surface as
	// decompression failures; cross-keyed BA sessions as stalled flows.
	for ci := range n.Clients {
		n.StartDownload(ci, 0, sim.Duration(ci)*10*sim.Millisecond)
	}
	n.Run(2 * sim.Second)
	now := n.Sched.Now()
	for ci, c := range n.Clients {
		if mbps := c.Goodput.Mbps(now); mbps < 1 {
			t.Errorf("client %d goodput %.2f Mbps — flow starved", ci, mbps)
		}
	}
	if df := n.DecompFailures(); df != 0 {
		t.Errorf("DecompFailures = %d, want 0 (ROHC contexts cross-poisoned?)", df)
	}
}

// TestSingleBSSLegacyShape pins the degenerate multi-BSS plan: with no
// BSS layout configured, the network is exactly the legacy single-AP
// star — BSS 0 wraps the same AP and client set the old fields expose.
func TestSingleBSSLegacyShape(t *testing.T) {
	n := node.New(scenario.New(scenario.With80211n(), scenario.WithClients(3)))
	if len(n.BSSes) != 1 {
		t.Fatalf("built %d BSSs, want 1", len(n.BSSes))
	}
	if n.BSSes[0].AP != n.AP {
		t.Error("BSS 0 AP is not Network.AP")
	}
	if len(n.BSSes[0].Clients) != len(n.Clients) {
		t.Errorf("BSS 0 has %d clients, network %d", len(n.BSSes[0].Clients), len(n.Clients))
	}
	if got := n.BSSOfAddr(n.AP.MACAddr); got != 0 {
		t.Errorf("BSSOfAddr(AP) = %d", got)
	}
	if got := n.BSSOfAddr(9999); got != -1 {
		t.Errorf("BSSOfAddr(unknown) = %d, want -1", got)
	}
}
