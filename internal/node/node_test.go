package node

import (
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/packet"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

func ht150Config(mode hack.Mode, clients int, seed int64) Config {
	return Config{
		Seed:         seed,
		Mode:         mode,
		DataRate:     phy.HTRate(7, 1),
		Aggregation:  true,
		TXOPLimit:    4 * sim.Millisecond,
		Clients:      clients,
		WireRateKbps: 500_000,
	}
}

func a54Config(mode hack.Mode, clients int, seed int64) Config {
	return Config{
		Seed:         seed,
		Mode:         mode,
		DataRate:     phy.RateA54,
		Clients:      clients,
		WireRateKbps: 500_000,
	}
}

// steadyRun measures steady-state goodput of a one-client unbounded
// download, per the paper's methodology (measurement window after slow
// start and buffer-overshoot transients).
func steadyRun(t *testing.T, mode hack.Mode, seed int64) (float64, *Network) {
	t.Helper()
	n := New(ht150Config(mode, 1, seed))
	f := n.StartDownload(0, 0, 0)
	n.Run(2 * sim.Second)
	f.Goodput.MarkWindow(n.Sched.Now())
	n.Run(8 * sim.Second)
	return f.Goodput.WindowMbps(n.Sched.Now()), n
}

func TestDownloadStock80211n(t *testing.T) {
	mbps, n := steadyRun(t, hack.ModeOff, 1)
	// Stock TCP over 150 Mbps 802.11n lands near 105 Mbps in the
	// paper's Figure 10 (one client).
	if mbps < 95 || mbps > 125 {
		t.Errorf("stock goodput = %.1f Mbps, want ≈105-111", mbps)
	}
	if n.Medium.TxCount == 0 {
		t.Error("no transmissions")
	}
}

func TestDownloadHACKBeatStock(t *testing.T) {
	stock, _ := steadyRun(t, hack.ModeOff, 7)
	hackMbps, hn := steadyRun(t, hack.ModeMoreData, 7)
	improvement := (hackMbps - stock) / stock * 100
	t.Logf("stock=%.1f hack=%.1f improvement=%.1f%%", stock, hackMbps, improvement)
	// Paper Figure 10: +15% for one client at 150 Mbps. Accept a band.
	if improvement < 10 || improvement > 25 {
		t.Errorf("HACK improvement %.1f%%, want ≈15%% (stock %.1f, hack %.1f)",
			improvement, stock, hackMbps)
	}
	assertFailuresBounded(t, hn)
	// HACK must actually carry ACKs on LL ACKs.
	client := hn.Clients[0]
	if client.MAC.Stats.HackPayloadsSent == 0 {
		t.Error("no HACK payloads rode Block ACKs")
	}
	if client.Driver.Acct.CompressedAcks == 0 {
		t.Error("no ACKs compressed")
	}
	// The vast majority of TCP ACKs travel compressed (Table 2 shape).
	acct := &client.Driver.Acct
	fracNative := float64(acct.NativeAcks) / float64(acct.NativeAcks+acct.CompressedAcks)
	if fracNative > 0.30 {
		t.Errorf("native ACK fraction %.2f, want small", fracNative)
	}
	// HACK reduces collisions (the paper's key secondary finding).
	_, sn := steadyRun(t, hack.ModeOff, 7)
	if hn.Medium.CollidedTx >= sn.Medium.CollidedTx {
		t.Errorf("collisions: hack=%d stock=%d, want fewer under HACK",
			hn.Medium.CollidedTx, sn.Medium.CollidedTx)
	}
}

func TestDownloadHACK80211a(t *testing.T) {
	run := func(mode hack.Mode) float64 {
		n := New(a54Config(mode, 1, 3))
		f := n.StartDownload(0, 0, 0)
		n.Run(2 * sim.Second)
		f.Goodput.MarkWindow(n.Sched.Now())
		n.Run(8 * sim.Second)
		return f.Goodput.WindowMbps(n.Sched.Now())
	}
	stock := run(hack.ModeOff)
	hackMbps := run(hack.ModeMoreData)
	t.Logf("802.11a stock=%.1f hack=%.1f", stock, hackMbps)
	// Theory (§2.1): stock ≈ 24, HACK ≈ 29 for one client at 54 Mbps.
	if stock < 20 || stock > 27 {
		t.Errorf("stock = %.1f Mbps, want ≈24", stock)
	}
	if hackMbps < stock*1.1 {
		t.Errorf("HACK (%.1f) did not clearly beat stock (%.1f) on 802.11a", hackMbps, stock)
	}
}

func TestUploadSymmetric(t *testing.T) {
	// The paper's wireless-backup scenario: the client uploads; the
	// server's TCP ACKs ride the AP's Block ACKs.
	run := func(mode hack.Mode) (float64, *Network) {
		n := New(ht150Config(mode, 1, 9))
		const total = 4 << 20
		f := n.StartUpload(0, total, 0)
		n.Run(10 * sim.Second)
		if !f.Done {
			t.Fatalf("mode %v upload incomplete: %d", mode, f.Goodput.Total())
		}
		return float64(total) * 8 / f.DoneAt.Seconds() / 1e6, n
	}
	stock, _ := run(hack.ModeOff)
	hackMbps, hn := run(hack.ModeMoreData)
	t.Logf("upload stock=%.1f hack=%.1f", stock, hackMbps)
	if hackMbps <= stock {
		t.Errorf("upload HACK (%.1f) did not beat stock (%.1f)", hackMbps, stock)
	}
	// In the upload direction the AP compresses and the client
	// decompresses.
	if hn.AP.Driver.Acct.CompressedAcks == 0 {
		t.Error("AP compressed no ACKs on upload")
	}
	if hn.AP.MAC.Stats.HackPayloadsSent == 0 {
		t.Error("AP sent no HACK payloads on upload")
	}
}

func TestLossyDownloadNoFailures(t *testing.T) {
	// §4.3's health claim: under loss, HACK produces no decompression
	// CRC failures and no stalls.
	snr := 10.0 // ≈30% frame error rate for 1538-byte MPDUs at MCS2
	em := channel.DefaultSNRModel()
	em.SNROverrideDB = &snr
	cfg := ht150Config(hack.ModeMoreData, 1, 11)
	cfg.DataRate = phy.HTRate(2, 1) // 45 Mbps: mid-SNR operating point
	cfg.Err = em
	n := New(cfg)
	const total = 2 << 20
	f := n.StartDownload(0, total, 0)
	n.Run(20 * sim.Second)
	if !f.Done {
		t.Fatalf("lossy transfer incomplete: %d of %d (retries=%d)",
			f.Goodput.Total(), total, n.AP.MAC.Stats.Retries)
	}
	if n.AP.MAC.Stats.Retries == 0 {
		t.Error("no link-layer retries at 10 dB; error model inactive?")
	}
	assertFailuresBounded(t, n)
}

func TestUDPDownloadSaturation(t *testing.T) {
	n := New(a54Config(hack.ModeOff, 1, 13))
	n.StartUDPDownload(0, 40_000, 1500, 0) // 40 Mbps offered > capacity
	n.Run(2 * sim.Second)
	got := n.Clients[0].Goodput.Mbps(n.Sched.Now())
	// 802.11a UDP capacity with LL ACKs ≈ 30 Mbps (paper: ideal 30.2).
	if got < 27 || got > 32 {
		t.Errorf("UDP goodput = %.1f Mbps, want ≈30", got)
	}
	if n.AP.MAC.Stats.QueueDrops == 0 {
		t.Error("offered load above capacity must overflow the AP queue")
	}
}

func TestMultiClientFairness(t *testing.T) {
	n := New(ht150Config(hack.ModeMoreData, 2, 17))
	n.StartDownload(0, 0, 0)
	n.StartDownload(1, 0, 100*sim.Millisecond) // staggered start
	// Measure a steady window after both flows have converged past
	// their slow-start transients (the paper's methodology).
	n.Run(6 * sim.Second)
	for _, f := range n.Flows {
		f.Goodput.MarkWindow(n.Sched.Now())
	}
	n.Run(14 * sim.Second)
	g0 := n.Flows[0].Goodput.WindowMbps(n.Sched.Now())
	g1 := n.Flows[1].Goodput.WindowMbps(n.Sched.Now())
	if g0 == 0 || g1 == 0 {
		t.Fatalf("starved flow: %.1f / %.1f", g0, g1)
	}
	ratio := g0 / g1
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("fairness ratio %.2f (%.1f vs %.1f Mbps)", ratio, g0, g1)
	}
	assertFailuresBounded(t, n)
}

func TestOpportunisticRuns(t *testing.T) {
	n := New(ht150Config(hack.ModeOpportunistic, 1, 19))
	const total = 2 << 20
	f := n.StartDownload(0, total, 0)
	n.Run(5 * sim.Second)
	if !f.Done {
		t.Fatalf("opportunistic incomplete: %d", f.Goodput.Total())
	}
	// Opportunistic interleaves native and compressed copies of the
	// same ACKs; the rare reorder races are caught by the ROHC CRC and
	// healed by the next native re-anchor. They must stay a tiny
	// fraction of the ACK traffic and must never corrupt (CRC catches
	// are counted, silent corruption would break TCP, checked by the
	// transfer completing byte-exactly).
	assertFailuresBounded(t, n)
}

func TestTimerModeRuns(t *testing.T) {
	n := New(ht150Config(hack.ModeTimer, 1, 23))
	const total = 2 << 20
	f := n.StartDownload(0, total, 0)
	n.Run(5 * sim.Second)
	if !f.Done {
		t.Fatalf("timer mode incomplete: %d", f.Goodput.Total())
	}
	assertFailuresBounded(t, n)
}

func TestSoRaTopologyAPSender(t *testing.T) {
	// WireRateKbps 0: the AP hosts the sender (ad-hoc testbed mode).
	cfg := a54Config(hack.ModeOff, 1, 29)
	cfg.WireRateKbps = 0
	cfg.AckTurnaround = 37 * sim.Microsecond
	cfg.AckTimeoutSlack = 80 * sim.Microsecond
	n := New(cfg)
	const total = 2 << 20
	f := n.StartDownload(0, total, 0)
	n.Run(5 * sim.Second)
	if !f.Done {
		t.Fatalf("SoRa-mode transfer incomplete: %d", f.Goodput.Total())
	}
	mbps := float64(total) * 8 / f.DoneAt.Seconds() / 1e6
	// SoRa's late LL ACKs shave throughput below the ideal ≈24.
	if mbps < 15 || mbps > 24 {
		t.Errorf("SoRa stock goodput = %.1f, want below ideal ≈24", mbps)
	}
}

func TestDeterministicNetworkRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		n := New(ht150Config(hack.ModeMoreData, 2, 42))
		n.StartDownload(0, 1<<20, 0)
		n.StartDownload(1, 1<<20, 50*sim.Millisecond)
		n.Run(3 * sim.Second)
		return n.Flows[0].Goodput.Total() + n.Flows[1].Goodput.Total(), n.Medium.TxCount
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestLinkSerialization(t *testing.T) {
	sched := sim.NewScheduler(1)
	l := NewLink(sched, 8000, sim.Millisecond) // 8 Mbps, 1 ms
	var arrivals []sim.Time
	l.Deliver = func(*packet.Packet) { arrivals = append(arrivals, sched.Now()) }
	mk := func() *packet.Packet {
		return &packet.Packet{
			IP:         packet.IPv4{Protocol: packet.ProtoUDP},
			UDP:        &packet.UDP{},
			PayloadLen: 972, // 1000-byte datagram = 1 ms at 8 Mbps
		}
	}
	l.Send(mk())
	l.Send(mk())
	sched.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	if arrivals[0] != 2*sim.Millisecond { // 1 ms tx + 1 ms prop
		t.Errorf("first at %v, want 2ms", arrivals[0])
	}
	if arrivals[1] != 3*sim.Millisecond { // serialized behind the first
		t.Errorf("second at %v, want 3ms", arrivals[1])
	}
}
