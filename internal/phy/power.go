package phy

import "math"

// DBmToMilliwatts converts a power level in dBm to linear milliwatts.
// -Inf dBm maps to 0 mW, so sentinel thresholds (e.g. a disabled
// carrier-sense floor) survive the conversion.
func DBmToMilliwatts(dbm float64) float64 {
	if math.IsInf(dbm, -1) {
		return 0
	}
	return math.Pow(10, dbm/10)
}

// MilliwattsToDBm converts linear milliwatts to dBm. 0 mW maps to
// -Inf dBm, the inverse of DBmToMilliwatts.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}
