package phy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcphack/internal/sim"
)

func TestLegacyRateTable(t *testing.T) {
	// NDBPS must equal Mbps × 4 µs symbol for every legacy rate.
	for _, r := range RatesA {
		if got := r.Kbps * 4 / 1000; got != r.NDBPS {
			t.Errorf("%v: NDBPS %d inconsistent with rate (want %d)", r, r.NDBPS, got)
		}
		// NDBPS must also match 48 subcarriers × bits/sym × coding.
		want := 48 * r.Mod.BitsPerSymbol() * r.Code.Num / r.Code.Den
		if r.NDBPS != want {
			t.Errorf("%v: NDBPS %d, want %d from modulation table", r, r.NDBPS, want)
		}
	}
}

func TestHTRateTable(t *testing.T) {
	want := []int{15000, 30000, 45000, 60000, 90000, 120000, 135000, 150000}
	for i, r := range RatesHT40SGI1() {
		if r.Kbps != want[i] {
			t.Errorf("MCS%d = %d Kbps, want %d", i, r.Kbps, want[i])
		}
		if !r.HT || r.Streams != 1 {
			t.Errorf("MCS%d: HT=%v streams=%d", i, r.HT, r.Streams)
		}
	}
	// Four streams at MCS7 is the paper's 600 Mbps configuration.
	if r := HTRate(7, 4); r.Kbps != 600000 {
		t.Errorf("MCS7x4 = %d Kbps, want 600000", r.Kbps)
	}
	if r := HTRate(7, 2); r.Kbps != 300000 {
		t.Errorf("MCS7x2 = %d Kbps, want 300000", r.Kbps)
	}
}

func TestHTRatePanics(t *testing.T) {
	for _, tc := range []struct{ mcs, ss int }{{-1, 1}, {8, 1}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HTRate(%d,%d) did not panic", tc.mcs, tc.ss)
				}
			}()
			HTRate(tc.mcs, tc.ss)
		}()
	}
}

func TestFrameDurationKnownValues(t *testing.T) {
	// 802.11a ACK (14 bytes) at 24 Mbps: 16+112+6 = 134 bits →
	// 2 symbols of 96 bits → 20 + 8 = 28 µs. A standard reference value.
	if d := FrameDuration(RateA24, 14); d != 28*sim.Microsecond {
		t.Errorf("ACK@24 = %v, want 28µs", d)
	}
	// 1536-byte MPDU (1500 IP + 8 LLC + 28 MAC) at 54 Mbps:
	// 16+12288+6 = 12310 bits → ceil(12310/216)=57 symbols → 20+228 = 248 µs.
	if d := FrameDuration(RateA54, 1536); d != 248*sim.Microsecond {
		t.Errorf("1536B@54 = %v, want 248µs", d)
	}
	// 6 Mbps minimum-size frame: preamble dominates.
	if d := FrameDuration(RateA6, 0); d != 24*sim.Microsecond {
		t.Errorf("0B@6 = %v, want 24µs (20 preamble + 1 symbol)", d)
	}
	// HT 150 Mbps: 1500 bytes of payload ≈ 80 µs of symbols (paper §1).
	r := HTRate(7, 1)
	d := FrameDuration(r, 1500)
	symbolsOnly := d - 36*sim.Microsecond
	if symbolsOnly < 79*sim.Microsecond || symbolsOnly > 84*sim.Microsecond {
		t.Errorf("1500B@150 symbol time = %v, want ≈80µs", symbolsOnly)
	}
}

func TestFrameDurationMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		la, lb := int(a), int(b)
		if la > lb {
			la, lb = lb, la
		}
		for _, r := range []Rate{RateA6, RateA54, HTRate(0, 1), HTRate(7, 4)} {
			if FrameDuration(r, la) > FrameDuration(r, lb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestFasterRateNeverSlower(t *testing.T) {
	for _, n := range []int{1, 100, 1500, 65535} {
		for i := 0; i < len(RatesA)-1; i++ {
			if FrameDuration(RatesA[i], n) < FrameDuration(RatesA[i+1], n) {
				t.Errorf("len %d: %v slower than %v", n, RatesA[i+1], RatesA[i])
			}
		}
	}
}

func TestPayloadCapacityInvertsDuration(t *testing.T) {
	f := func(lenU uint16, rateIdx uint8) bool {
		rates := append(append([]Rate{}, RatesA...), RatesHT40SGI1()...)
		r := rates[int(rateIdx)%len(rates)]
		n := int(lenU)
		d := FrameDuration(r, n)
		cap := PayloadCapacity(r, d)
		// Capacity at exactly the frame's duration must admit the frame...
		if cap < n {
			return false
		}
		// ...and a frame of the returned capacity must still fit.
		return FrameDuration(r, cap) <= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestPayloadCapacityTXOP(t *testing.T) {
	// Paper: at 150 Mbps a 64 KB A-MPDU (~42×1542B) fits in 4 ms; at
	// 15 Mbps the TXOP limit bites first.
	fast := HTRate(7, 1)
	if c := PayloadCapacity(fast, 4*sim.Millisecond); c < 64*1024 {
		t.Errorf("capacity@150/4ms = %d, want ≥ 64KiB", c)
	}
	slow := HTRate(0, 1)
	c := PayloadCapacity(slow, 4*sim.Millisecond)
	if c >= 64*1024 {
		t.Errorf("capacity@15/4ms = %d, want < 64KiB (TXOP must limit)", c)
	}
	if c < 4*1542 {
		t.Errorf("capacity@15/4ms = %d, want ≥ ~4 MPDUs", c)
	}
	if PayloadCapacity(fast, 1*sim.Microsecond) != 0 {
		t.Error("sub-preamble duration should have zero capacity")
	}
}

func TestControlResponseRate(t *testing.T) {
	cases := []struct {
		data Rate
		want Rate
	}{
		{RateA6, RateA6},
		{RateA9, RateA6},
		{RateA12, RateA12},
		{RateA18, RateA12},
		{RateA24, RateA24},
		{RateA54, RateA24},
		{HTRate(0, 1), RateA6},  // 15 Mbps → BPSK ref (6) → 6
		{HTRate(1, 1), RateA12}, // QPSK 1/2 → 12
		{HTRate(2, 1), RateA12}, // QPSK 3/4 → ref 18 → 12
		{HTRate(3, 1), RateA24}, // 16-QAM → 24
		{HTRate(7, 1), RateA24}, // 150 Mbps → 24 (paper's pairing)
		{HTRate(7, 4), RateA24},
	}
	for _, c := range cases {
		if got := ControlResponseRate(c.data); got.Kbps != c.want.Kbps {
			t.Errorf("ControlResponseRate(%v) = %v, want %v", c.data, got, c.want)
		}
	}
}

func TestMeanIdleMatchesPaper(t *testing.T) {
	// Paper §1: EDCA enforces an average idle of 110.5 µs before a
	// frame's transmission: AIFS (43 µs) + CWmin/2 (7.5 slots).
	mean := AIFS + SlotTime*sim.Duration(CWMin)/2
	if mean != sim.Duration(110500)*sim.Nanosecond {
		t.Errorf("mean idle = %v, want 110.5µs", mean)
	}
	if DIFS != 34*sim.Microsecond {
		t.Errorf("DIFS = %v, want 34µs", DIFS)
	}
}

func TestStringers(t *testing.T) {
	if RateA54.String() != "54Mbps" {
		t.Errorf("RateA54 = %q", RateA54.String())
	}
	if got := HTRate(7, 1).String(); got != "MCS7(150Mbps)" {
		t.Errorf("HT = %q", got)
	}
	if QAM64.String() != "64-QAM" || BPSK.String() != "BPSK" {
		t.Error("modulation stringer wrong")
	}
	if R56.String() != "5/6" {
		t.Errorf("code rate = %q", R56.String())
	}
	if Modulation(99).String() == "" {
		t.Error("unknown modulation should still format")
	}
}

func TestRateZero(t *testing.T) {
	var r Rate
	if !r.IsZero() {
		t.Error("zero Rate not IsZero")
	}
	if RateA6.IsZero() {
		t.Error("RateA6 IsZero")
	}
	var c CodeRate
	if !c.IsZero() || R12.IsZero() {
		t.Error("CodeRate IsZero wrong")
	}
}
