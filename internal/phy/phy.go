// Package phy models the 802.11a (legacy OFDM) and 802.11n (HT) physical
// layers at the level of detail the MAC needs: rate tables with their
// modulation and coding parameters, frame airtime computation
// (preamble + symbol-quantized payload), control-response rate
// selection, and the per-PHY MAC timing constants (slot, SIFS, CW
// bounds).
//
// Airtime formulas follow IEEE 802.11-2012: a legacy OFDM PPDU carries
// a 16 µs preamble plus 4 µs SIGNAL field and then
// ceil((16 service + 8·len + 6 tail) / N_DBPS) 4 µs symbols; an HT
// mixed-format PPDU carries a 36 µs preamble (one spatial stream; +4 µs
// per extra HT-LTF) and 3.6 µs symbols at 400 ns guard interval.
package phy

import (
	"fmt"
	"strconv"
	"strings"

	"tcphack/internal/sim"
)

// Modulation identifies the subcarrier modulation of a rate; the
// channel error model maps (Modulation, CodeRate, SNR) to a bit error
// rate.
type Modulation int

// The 802.11a/n subcarrier modulations, in increasing density.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// BitsPerSymbol returns coded bits carried per subcarrier per symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("phy: unknown modulation")
}

// CodeRate is a convolutional code rate expressed as a fraction.
type CodeRate struct{ Num, Den int }

// Common 802.11 code rates.
var (
	R12 = CodeRate{1, 2}
	R23 = CodeRate{2, 3}
	R34 = CodeRate{3, 4}
	R56 = CodeRate{5, 6}
)

// Value returns the code rate as a float in (0, 1].
func (r CodeRate) Value() float64 { return float64(r.Num) / float64(r.Den) }

func (r CodeRate) String() string { return fmt.Sprintf("%d/%d", r.Num, r.Den) }

// IsZero reports whether r is the zero CodeRate (no code selected).
func (r CodeRate) IsZero() bool { return r.Den == 0 }

// Rate describes one PHY rate: its nominal bit-rate, the data bits per
// OFDM symbol it carries, and its modulation/coding pair.
type Rate struct {
	// Kbps is the nominal data rate in kilobits per second. Kilobits
	// (not megabits) keep the 802.11a 9 Mbps-style rates integral.
	Kbps int
	// NDBPS is data bits per OFDM symbol.
	NDBPS int
	// Mod and Code drive the SNR→BER error model.
	Mod  Modulation
	Code CodeRate
	// HT marks 802.11n HT rates (3.6 µs symbols, HT preamble).
	HT bool
	// Streams is the number of spatial streams (HT only; 1 for legacy).
	Streams int
	// MCS is the HT MCS index (HT only; -1 for legacy).
	MCS int
}

// Mbps returns the nominal rate in megabits per second.
func (r Rate) Mbps() float64 { return float64(r.Kbps) / 1000 }

func (r Rate) String() string {
	if r.HT {
		return fmt.Sprintf("MCS%d(%gMbps)", r.MCS, r.Mbps())
	}
	return fmt.Sprintf("%gMbps", r.Mbps())
}

// IsZero reports whether r is the zero Rate (no rate selected).
func (r Rate) IsZero() bool { return r.Kbps == 0 }

// Legacy 802.11a OFDM rates (20 MHz, 48 data subcarriers, 4 µs symbol).
var (
	RateA6  = Rate{Kbps: 6000, NDBPS: 24, Mod: BPSK, Code: R12, Streams: 1, MCS: -1}
	RateA9  = Rate{Kbps: 9000, NDBPS: 36, Mod: BPSK, Code: R34, Streams: 1, MCS: -1}
	RateA12 = Rate{Kbps: 12000, NDBPS: 48, Mod: QPSK, Code: R12, Streams: 1, MCS: -1}
	RateA18 = Rate{Kbps: 18000, NDBPS: 72, Mod: QPSK, Code: R34, Streams: 1, MCS: -1}
	RateA24 = Rate{Kbps: 24000, NDBPS: 96, Mod: QAM16, Code: R12, Streams: 1, MCS: -1}
	RateA36 = Rate{Kbps: 36000, NDBPS: 144, Mod: QAM16, Code: R34, Streams: 1, MCS: -1}
	RateA48 = Rate{Kbps: 48000, NDBPS: 192, Mod: QAM64, Code: R23, Streams: 1, MCS: -1}
	RateA54 = Rate{Kbps: 54000, NDBPS: 216, Mod: QAM64, Code: R34, Streams: 1, MCS: -1}
)

// RatesA lists all 802.11a rates in increasing order.
var RatesA = []Rate{RateA6, RateA9, RateA12, RateA18, RateA24, RateA36, RateA48, RateA54}

// BasicRatesA is the mandatory 802.11a basic rate set used for control
// responses (ACKs, Block ACKs).
var BasicRatesA = []Rate{RateA6, RateA12, RateA24}

// HTRate constructs the 802.11n HT rate for the given MCS index
// (0–7 per stream) and stream count, on a 40 MHz channel with 400 ns
// guard interval — the configuration the paper evaluates (MCS7 × 1
// stream = 150 Mbps; MCS7 × 4 streams = 600 Mbps).
func HTRate(mcs, streams int) Rate {
	if mcs < 0 || mcs > 7 {
		panic(fmt.Sprintf("phy: HT MCS %d out of range [0,7]", mcs))
	}
	if streams < 1 || streams > 4 {
		panic(fmt.Sprintf("phy: %d spatial streams out of range [1,4]", streams))
	}
	type mc struct {
		mod  Modulation
		code CodeRate
	}
	table := [8]mc{
		{BPSK, R12}, {QPSK, R12}, {QPSK, R34}, {QAM16, R12},
		{QAM16, R34}, {QAM64, R23}, {QAM64, R34}, {QAM64, R56},
	}
	e := table[mcs]
	// 40 MHz HT: 108 data subcarriers per stream.
	coded := 108 * e.mod.BitsPerSymbol() * streams
	ndbps := coded * e.code.Num / e.code.Den
	// 400 ns GI symbol = 3.6 µs ⇒ Kbps = NDBPS / 3.6 µs.
	kbps := ndbps * 1000 / 36 * 10
	return Rate{
		Kbps: kbps, NDBPS: ndbps, Mod: e.mod, Code: e.code,
		HT: true, Streams: streams, MCS: mcs + 8*(streams-1),
	}
}

// RatesHT40SGI1 lists single-stream HT rates MCS0–7 at 40 MHz / 400 ns
// GI: 15, 30, 45, 60, 90, 120, 135, 150 Mbps — the rate set in the
// paper's Figure 11.
func RatesHT40SGI1() []Rate {
	rates := make([]Rate, 8)
	for i := range rates {
		rates[i] = HTRate(i, 1)
	}
	return rates
}

// RateFamily returns the candidate rate set a rate adapter should
// sweep for a station configured at rate r: the single-stream (or
// r.Streams-stream) HT ladder MCS0–7 for HT rates, the eight 802.11a
// rates otherwise. The result is freshly allocated, in increasing-rate
// order.
func RateFamily(r Rate) []Rate {
	if r.HT {
		streams := r.Streams
		if streams < 1 {
			streams = 1
		}
		rates := make([]Rate, 8)
		for i := range rates {
			rates[i] = HTRate(i, streams)
		}
		return rates
	}
	return append([]Rate(nil), RatesA...)
}

// ParseRate resolves a rate by its command-line name: "a6" through
// "a54" for the 802.11a set, "mcs0" through "mcs7" for single-stream
// HT, and "mcs<i>x<streams>" (e.g. "mcs7x4") for multi-stream HT.
func ParseRate(s string) (Rate, error) {
	for _, r := range RatesA {
		if s == fmt.Sprintf("a%d", r.Kbps/1000) {
			return r, nil
		}
	}
	if rest, ok := strings.CutPrefix(s, "mcs"); ok {
		mcsStr, streamsStr, multi := strings.Cut(rest, "x")
		streams := 1
		if multi {
			n, err := strconv.Atoi(streamsStr)
			if err != nil || n < 1 || n > 4 {
				return Rate{}, fmt.Errorf("phy: unknown rate %q (want a6..a54, mcs0..mcs7, or mcs<i>x<streams>)", s)
			}
			streams = n
		}
		if mcs, err := strconv.Atoi(mcsStr); err == nil && mcs >= 0 && mcs <= 7 {
			return HTRate(mcs, streams), nil
		}
	}
	return Rate{}, fmt.Errorf("phy: unknown rate %q (want a6..a54, mcs0..mcs7, or mcs<i>x<streams>)", s)
}

// MAC timing constants shared by 802.11a and 802.11n OFDM PHYs.
const (
	SlotTime sim.Duration = 9 * sim.Microsecond
	SIFS     sim.Duration = 16 * sim.Microsecond
	DIFS     sim.Duration = SIFS + 2*SlotTime // 34 µs (802.11a DCF)
	CWMin                 = 15
	CWMax                 = 1023
	// AIFSNBestEffort is the EDCA best-effort arbitration IFS number;
	// AIFS = SIFS + AIFSN·slot = 43 µs, giving the paper's 110.5 µs
	// mean idle (43 + 7.5 slots).
	AIFSNBestEffort              = 3
	AIFS            sim.Duration = SIFS + AIFSNBestEffort*SlotTime // 43 µs

	legacyPreamble sim.Duration = 20 * sim.Microsecond // 16 µs PLCP + 4 µs SIGNAL
	legacySymbol   sim.Duration = 4 * sim.Microsecond
	htSymbol       sim.Duration = 3600 * sim.Nanosecond // 400 ns GI
	// HT mixed-format preamble with one HT-LTF:
	// L-STF(8) + L-LTF(8) + L-SIG(4) + HT-SIG(8) + HT-STF(4) + HT-LTF(4).
	htPreambleBase sim.Duration = 36 * sim.Microsecond
	htLTFPerStream sim.Duration = 4 * sim.Microsecond

	serviceBits = 16
	tailBits    = 6
)

// FrameDuration returns the airtime of a PPDU carrying length payload
// bytes at the given rate, including preamble and symbol rounding.
func FrameDuration(rate Rate, length int) sim.Duration {
	if rate.NDBPS <= 0 {
		panic("phy: FrameDuration with zero rate")
	}
	bits := serviceBits + 8*length + tailBits
	symbols := sim.Duration((bits + rate.NDBPS - 1) / rate.NDBPS)
	if rate.HT {
		pre := htPreambleBase + htLTFPerStream*sim.Duration(rate.Streams-1)
		return pre + symbols*htSymbol
	}
	return legacyPreamble + symbols*legacySymbol
}

// PayloadCapacity returns the maximum payload bytes whose PPDU at rate
// fits within dur. It inverts FrameDuration and is used to honour TXOP
// limits when sizing A-MPDUs. Returns 0 if even an empty frame does
// not fit.
func PayloadCapacity(rate Rate, dur sim.Duration) int {
	pre := legacyPreamble
	symbol := legacySymbol
	if rate.HT {
		pre = htPreambleBase + htLTFPerStream*sim.Duration(rate.Streams-1)
		symbol = htSymbol
	}
	if dur < pre {
		return 0
	}
	symbols := int((dur - pre) / symbol)
	bits := symbols*rate.NDBPS - serviceBits - tailBits
	if bits < 0 {
		return 0
	}
	return bits / 8
}

// nonHTReference maps an HT MCS (per-stream index 0–7) to the legacy
// rate with the same modulation and coding, per the 802.11n control
// response rules.
var nonHTReference = [8]Rate{RateA6, RateA12, RateA18, RateA24, RateA36, RateA48, RateA54, RateA54}

// ControlResponseRate returns the rate for a control response frame
// (ACK / Block ACK) elicited by a frame received at dataRate: the
// highest rate in the basic rate set no faster than the eliciting
// frame (802.11-2012 §9.7.6.5.2). HT rates are first mapped to their
// non-HT reference rate.
func ControlResponseRate(dataRate Rate) Rate {
	ref := dataRate
	if dataRate.HT {
		ref = nonHTReference[dataRate.MCS%8]
	}
	best := BasicRatesA[0]
	for _, r := range BasicRatesA {
		if r.Kbps <= ref.Kbps && r.Kbps > best.Kbps {
			best = r
		}
	}
	return best
}
