package mac

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"tcphack/internal/channel"
	"tcphack/internal/phy"
)

// RateAdapter selects the PHY rate for data frames, per destination,
// and learns from transmission outcomes. Four adapters are built in
// (ParseAdapterSpec's vocabulary, scenario.WithRateAdapter's axis):
//
//	adapter   selection rule                    loss regime it targets           determinism
//	───────   ───────────────────────────────   ──────────────────────────────   ─────────────────────────
//	fixed     pin one configured rate           none: the paper's per-           stateless; no RNG
//	          (FixedRate)                       experiment methodology — the
//	                                            experiment chooses the regime
//	ideal     highest rate with FER ≤ 1e-3      negligible loss only: steps      oracle; choice cached per
//	          per MPDU, from the channel's      down a rate rather than ever     destination; no RNG
//	          SNR→FER tables (IdealSNR, ns-3    operate lossy (ns-3's rule,
//	          IdealWifiManager style)           and the historic workaround
//	                                            for the MORE-DATA collapse)
//	argmax    argmax over rate of               deliberate ~1% per-MPDU FER      oracle; choice cached per
//	          rate × (1−FER)^BatchLen           when the rate step pays for      destination; no RNG
//	          (ExpectedGoodput)                 it: requires the loss-
//	                                            resilient HACK recovery
//	                                            (internal/hack state machine)
//	minstrel  EWMA per-rate delivery probs,     any: learns the live loss        probe schedule drawn from
//	          throughput ranking, periodic      process from MPDU outcomes       an RNG forked off the
//	          probes, reliable fallback         instead of assuming a model      station's scheduler; a
//	          (Minstrel, mac80211 style)                                         fixed seed fixes decisions
//
// The MAC calls RateFor once per data PPDU and OnTxResult once per
// MPDU resolution (delivered, or scheduled for retry/drop), so an
// A-MPDU of k MPDUs produces one RateFor call and k OnTxResult calls.
// Implementations must be deterministic: any randomness must come from
// an RNG forked off the owning station's scheduler, never from global
// sources. Adapters are per-station state and are not safe for
// concurrent use; campaigns get one adapter instance per station per
// network, exactly like the medium's forked RNG.
type RateAdapter interface {
	// RateFor returns the PHY rate for the next data frame to dst. A
	// zero Rate tells the station to fall back to its configured
	// DataRate.
	RateFor(dst Addr) phy.Rate
	// OnTxResult reports the fate of one MPDU sent to dst at rate:
	// ok is true when a (Block) ACK confirmed delivery, false when the
	// attempt failed (timeout or unacknowledged in a Block ACK).
	// retries is the MPDU's retry count at resolution time.
	OnTxResult(dst Addr, rate phy.Rate, ok bool, retries int)
}

// FixedRate pins every transmission to one rate — the seed behavior,
// and the paper's per-experiment fixed-rate methodology.
type FixedRate struct {
	Rate phy.Rate
}

// RateFor implements RateAdapter.
func (f FixedRate) RateFor(Addr) phy.Rate { return f.Rate }

// OnTxResult implements RateAdapter.
func (FixedRate) OnTxResult(Addr, phy.Rate, bool, int) {}

// IdealSNR is the oracle adapter: it knows the channel's SNR on each
// link and picks, from the channel's SNR→error tables, the highest
// rate whose frame error rate is negligible (at most TargetFER per
// RefLen-byte MPDU) — the threshold strategy of ns-3's
// IdealWifiManager. When no rate qualifies (deep in the low-SNR
// regime) it falls back to maximizing expected per-MPDU goodput
// rate × (1 − FER). It replaces the Figure 11 trick of sweeping every
// fixed rate and taking the per-SNR envelope: one simulation per SNR
// point instead of one per (rate, SNR) cell.
//
// The threshold, rather than an expected-goodput argmax across the
// board, matters: a rate with a "small" per-MPDU FER still loses an
// MPDU in most A-MPDUs once ~50 are aggregated, and the protocol-level
// cost of those losses (Block ACK recovery, TCP dynamics) exceeds the
// raw 1 − FER factor.
//
// Without an SNR source (SNRFor nil or reporting !ok, e.g. a lossless
// or uniform-loss channel whose error rate is rate-independent) the
// oracle picks the highest candidate rate, which is then optimal.
type IdealSNR struct {
	// Rates is the candidate set, in increasing-rate order
	// (phy.RateFamily builds the usual ones).
	Rates []phy.Rate
	// SNRFor reports the link SNR toward dst in dB, if the channel has
	// a notion of SNR (see channel.FindSNRModel).
	SNRFor func(dst Addr) (snrDB float64, ok bool)
	// RefLen is the MPDU length used to evaluate the frame error rate
	// (default 1538, an MSS-sized TCP segment on the air).
	RefLen int
	// TargetFER is the highest per-MPDU frame error rate considered
	// negligible (default 1e-3).
	TargetFER float64

	choice map[Addr]phy.Rate
}

// oracleRateFor is the shared skeleton of the SNR-oracle adapters:
// resolve the per-destination choice once via pick (the oracles'
// channel models are static), falling back to the highest candidate
// when the channel has no SNR notion, and cache it.
func oracleRateFor(rates []phy.Rate, snrFor func(Addr) (float64, bool),
	choice *map[Addr]phy.Rate, dst Addr, pick func(snrDB float64) phy.Rate) phy.Rate {
	if r, ok := (*choice)[dst]; ok {
		return r
	}
	if len(rates) == 0 {
		return phy.Rate{}
	}
	best := rates[len(rates)-1]
	if snrFor != nil {
		if snr, ok := snrFor(dst); ok {
			best = pick(snr)
		}
	}
	if *choice == nil {
		*choice = make(map[Addr]phy.Rate)
	}
	(*choice)[dst] = best
	return best
}

// RateFor implements RateAdapter. The per-destination choice is
// computed once and cached — the SNR models are static.
func (a *IdealSNR) RateFor(dst Addr) phy.Rate {
	return oracleRateFor(a.Rates, a.SNRFor, &a.choice, dst, a.pick)
}

// pick applies the threshold rule at one SNR.
func (a *IdealSNR) pick(snrDB float64) phy.Rate {
	refLen := a.RefLen
	if refLen == 0 {
		refLen = 1538
	}
	target := a.TargetFER
	if target == 0 {
		target = 1e-3
	}
	fallback, fallbackScore := a.Rates[0], -1.0
	for i := len(a.Rates) - 1; i >= 0; i-- {
		r := a.Rates[i]
		fer := channel.FrameErrorRate(r, snrDB, refLen)
		if fer <= target {
			return r // highest qualifying rate: candidates are ordered
		}
		if score := r.Mbps() * (1 - fer); score > fallbackScore {
			fallback, fallbackScore = r, score
		}
	}
	return fallback
}

// OnTxResult implements RateAdapter; the oracle does not learn.
func (*IdealSNR) OnTxResult(Addr, phy.Rate, bool, int) {}

// ExpectedGoodput is the expected-goodput argmax oracle ("argmax"): it
// knows the channel's SNR like IdealSNR but, instead of thresholding
// on a negligible FER, picks the rate maximizing
//
//	rate × (1 − FER(snr, rate, RefLen))^BatchLen
//
// — the expected goodput of a whole link-layer batch. BatchLen models
// the protocol-level cost of a loss anywhere in an A-MPDU (Block ACK
// recovery, retransmission airtime, TCP dynamics): with BatchLen 64 a
// per-MPDU FER of 1% costs the whole batch a factor (0.99)^64 ≈ 0.53,
// which is what pushes the argmax away from marginal rates that the
// raw per-MPDU expectation would still favor.
//
// This is the adapter the IdealSNR threshold deliberately stood in
// for while HACK's recovery collapsed in the ~1% per-MPDU FER regime:
// the argmax intentionally operates there, so it requires the
// loss-resilient recovery machine (internal/hack) to be worth running.
// Like IdealSNR it is an oracle — it neither probes nor learns — and
// falls back to the highest candidate rate when the channel has no
// SNR notion.
type ExpectedGoodput struct {
	// Rates is the candidate set, in increasing-rate order
	// (phy.RateFamily builds the usual ones).
	Rates []phy.Rate
	// SNRFor reports the link SNR toward dst in dB, if the channel has
	// a notion of SNR (see channel.FindSNRModel).
	SNRFor func(dst Addr) (snrDB float64, ok bool)
	// RefLen is the MPDU length used to evaluate the frame error rate
	// (default 1538, an MSS-sized TCP segment on the air).
	RefLen int
	// BatchLen is the batch size the per-MPDU survival probability is
	// raised to (default 1; aggregated setups use the Block ACK window
	// — BAWindowSize — since one A-MPDU elicits that many fates at
	// once).
	BatchLen int

	choice map[Addr]phy.Rate
}

// RateFor implements RateAdapter. The per-destination choice is
// computed once and cached — the SNR models are static.
func (a *ExpectedGoodput) RateFor(dst Addr) phy.Rate {
	return oracleRateFor(a.Rates, a.SNRFor, &a.choice, dst, a.pick)
}

// pick applies the argmax rule at one SNR.
func (a *ExpectedGoodput) pick(snrDB float64) phy.Rate {
	refLen := a.RefLen
	if refLen == 0 {
		refLen = 1538
	}
	batch := a.BatchLen
	if batch == 0 {
		batch = 1
	}
	best, bestScore := a.Rates[0], -1.0
	for _, r := range a.Rates {
		fer := channel.FrameErrorRate(r, snrDB, refLen)
		score := r.Mbps() * math.Pow(1-fer, float64(batch))
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// OnTxResult implements RateAdapter; the oracle does not learn.
func (*ExpectedGoodput) OnTxResult(Addr, phy.Rate, bool, int) {}

// MinstrelConfig parameterizes a Minstrel adapter. Zero fields take
// the defaults noted on each field. All intervals are counted in data
// frames (RateFor calls), so behavior is independent of A-MPDU size.
type MinstrelConfig struct {
	// Rates is the candidate set in increasing-rate order
	// (phy.RateFamily builds the usual ones).
	Rates []phy.Rate
	// EWMAWeight is the weight of the newest sampling window in the
	// per-rate success-probability EWMA (default 0.25).
	EWMAWeight float64
	// SampleEvery makes every Nth data frame a probe at a random
	// non-best rate (default 16). Probes at rates slower than the
	// current best are additionally throttled by StaleAfter.
	SampleEvery int
	// UpdateEvery recomputes the per-rate statistics every N data
	// frames (default 25).
	UpdateEvery int
	// StaleAfter throttles probes slower than the current best rate:
	// such a rate is probed only if it has not been sampled in the
	// last StaleAfter frames (default 128). This bounds the airtime
	// spent probing rates that cannot win, the trick that keeps
	// Minstrel within a few percent of the fixed-best-rate envelope.
	StaleAfter int
	// FallbackAfter switches to the most reliable known rate after N
	// consecutive failed MPDU results (default 8) until a success —
	// the frame-by-frame approximation of Minstrel's
	// throughput-ordered retry chain.
	FallbackAfter int
}

func (c MinstrelConfig) withDefaults() MinstrelConfig {
	if c.EWMAWeight == 0 {
		c.EWMAWeight = 0.25
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 25
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 128
	}
	if c.FallbackAfter == 0 {
		c.FallbackAfter = 8
	}
	return c
}

// minstrelRate is one candidate rate's statistics for one destination.
type minstrelRate struct {
	attempts  uint64 // current window
	successes uint64
	tried     bool
	prob      float64 // EWMA delivery probability
	tput      float64 // prob × Kbps, the ranking metric
	sampledAt uint64  // frame counter at the last probe of this rate

	// Lifetime totals, for introspection (RateStats).
	totalAttempts  uint64
	totalSuccesses uint64
}

// minstrelDst is the per-destination adapter state.
type minstrelDst struct {
	rates       []minstrelRate
	best        int // index of the highest-throughput tried rate
	safe        int // index of the most reliable tried rate (fallback)
	frames      uint64
	lastUpdate  uint64
	everUpdated bool
	consecFails int
	nextUntried int
}

// Minstrel adapts the rate from observed delivery outcomes, after the
// Linux mac80211 algorithm of the same name: per-rate success
// probabilities smoothed by an EWMA over sampling windows, rates
// ranked by expected throughput (probability × rate), periodic probe
// frames at non-best rates to track a changing channel, and a
// most-reliable fallback rate after consecutive failures. All state is
// per destination; all randomness comes from the RNG handed to
// NewMinstrel, so a fixed seed yields a fixed decision sequence.
type Minstrel struct {
	cfg  MinstrelConfig
	rng  *rand.Rand
	dsts map[Addr]*minstrelDst
}

// NewMinstrel creates a Minstrel adapter drawing its probe schedule
// from rng (fork it from the owning station's scheduler — see
// sim.Scheduler.ForkRand — to keep simulations reproducible).
func NewMinstrel(cfg MinstrelConfig, rng *rand.Rand) *Minstrel {
	return &Minstrel{cfg: cfg.withDefaults(), rng: rng, dsts: make(map[Addr]*minstrelDst)}
}

func (m *Minstrel) dst(a Addr) *minstrelDst {
	d, ok := m.dsts[a]
	if !ok {
		d = &minstrelDst{rates: make([]minstrelRate, len(m.cfg.Rates))}
		// Start optimistic: rank untried rates by nominal throughput so
		// the initial ramp begins at the top.
		d.best = len(m.cfg.Rates) - 1
		d.safe = d.best
		m.dsts[a] = d
	}
	return d
}

// index resolves a rate to its candidate index, or -1.
func (m *Minstrel) index(r phy.Rate) int {
	for i, c := range m.cfg.Rates {
		if c.Kbps == r.Kbps && c.HT == r.HT {
			return i
		}
	}
	return -1
}

// RateFor implements RateAdapter.
func (m *Minstrel) RateFor(dst Addr) phy.Rate {
	if len(m.cfg.Rates) == 0 {
		return phy.Rate{}
	}
	d := m.dst(dst)
	d.frames++
	// Regular updates every UpdateEvery frames, plus one immediately
	// after the initial ramp: until the first update the ranking still
	// points at the optimistic top-rate default, which on a poor
	// channel would stall the first UpdateEvery frames at a dead rate.
	if d.frames-d.lastUpdate >= uint64(m.cfg.UpdateEvery) ||
		(!d.everUpdated && d.nextUntried >= len(d.rates)) {
		m.update(d)
	}
	// Initial ramp: try every rate once, top-down, before trusting the
	// ranking.
	if d.nextUntried < len(d.rates) {
		i := len(d.rates) - 1 - d.nextUntried
		d.nextUntried++
		d.rates[i].sampledAt = d.frames
		return m.cfg.Rates[i]
	}
	// Probe schedule: every SampleEvery-th frame samples a random
	// non-best rate; rates slower than the best only when stale. The
	// RNG is drawn on every eligible frame regardless of the outcome,
	// keeping the stream's consumption pattern simple.
	if m.cfg.SampleEvery > 0 && d.frames%uint64(m.cfg.SampleEvery) == 0 && len(d.rates) > 1 {
		i := m.rng.Intn(len(d.rates) - 1)
		if i >= d.best {
			i++
		}
		s := &d.rates[i]
		slower := m.cfg.Rates[i].Kbps < m.cfg.Rates[d.best].Kbps
		if !slower || d.frames-s.sampledAt >= uint64(m.cfg.StaleAfter) {
			s.sampledAt = d.frames
			return m.cfg.Rates[i]
		}
	}
	// Retry-chain approximation: after a burst of failures, drop to the
	// most reliable known rate until a success comes back.
	if d.consecFails >= m.cfg.FallbackAfter && d.safe != d.best {
		return m.cfg.Rates[d.safe]
	}
	return m.cfg.Rates[d.best]
}

// OnTxResult implements RateAdapter.
func (m *Minstrel) OnTxResult(dst Addr, rate phy.Rate, ok bool, retries int) {
	i := m.index(rate)
	if i < 0 {
		return
	}
	d := m.dst(dst)
	s := &d.rates[i]
	s.attempts++
	s.totalAttempts++
	if ok {
		s.successes++
		s.totalSuccesses++
		d.consecFails = 0
	} else {
		d.consecFails++
	}
	_ = retries
}

// update folds the current sampling windows into the EWMA statistics
// and re-ranks the rates.
func (m *Minstrel) update(d *minstrelDst) {
	d.lastUpdate = d.frames
	d.everUpdated = true
	for i := range d.rates {
		s := &d.rates[i]
		if s.attempts == 0 {
			continue
		}
		p := float64(s.successes) / float64(s.attempts)
		if s.tried {
			s.prob = (1-m.cfg.EWMAWeight)*s.prob + m.cfg.EWMAWeight*p
		} else {
			s.prob = p
			s.tried = true
		}
		s.tput = s.prob * float64(m.cfg.Rates[i].Kbps)
		s.attempts, s.successes = 0, 0
	}
	best, safe := -1, -1
	for i := range d.rates {
		s := &d.rates[i]
		if !s.tried {
			continue
		}
		if best < 0 || s.tput > d.rates[best].tput {
			best = i
		}
		if safe < 0 || s.prob > d.rates[safe].prob ||
			(s.prob == d.rates[safe].prob && s.tput > d.rates[safe].tput) {
			safe = i
		}
	}
	if best >= 0 {
		d.best, d.safe = best, safe
	}
}

// RateStats is one rate's learned state, for tests and CLIs.
type RateStats struct {
	Rate      phy.Rate
	Prob      float64 // EWMA delivery probability
	TputKbps  float64 // prob × rate, the ranking metric
	Attempts  uint64  // lifetime MPDU attempts
	Successes uint64  // lifetime delivered MPDUs
	Best      bool    // currently the top-ranked rate
}

// Snapshot reports the learned per-rate statistics toward dst, in
// candidate-rate order.
func (m *Minstrel) Snapshot(dst Addr) []RateStats {
	d, ok := m.dsts[dst]
	if !ok {
		return nil
	}
	out := make([]RateStats, len(d.rates))
	for i := range d.rates {
		s := &d.rates[i]
		out[i] = RateStats{
			Rate: m.cfg.Rates[i], Prob: s.prob, TputKbps: s.tput,
			Attempts: s.totalAttempts, Successes: s.totalSuccesses,
			Best: i == d.best,
		}
	}
	return out
}

// AdapterKind enumerates the built-in rate-adaptation strategies.
type AdapterKind int

// The built-in adapter kinds, in ParseAdapterSpec's vocabulary.
const (
	AdapterFixed AdapterKind = iota
	AdapterIdeal
	AdapterMinstrel
	AdapterArgmax
)

func (k AdapterKind) String() string {
	switch k {
	case AdapterFixed:
		return "fixed"
	case AdapterIdeal:
		return "ideal"
	case AdapterMinstrel:
		return "minstrel"
	case AdapterArgmax:
		return "argmax"
	}
	return fmt.Sprintf("AdapterKind(%d)", int(k))
}

// AdapterSpec is a parsed rate-adapter selection: which strategy, and
// for AdapterFixed optionally which pinned rate.
type AdapterSpec struct {
	Kind AdapterKind
	// Rate pins the fixed rate ("fixed:<rate>"); zero means the
	// station's configured DataRate.
	Rate phy.Rate
}

// ParseAdapterSpec parses the scenario-axis vocabulary for rate
// adaptation: "" or "fixed" (pin the configured rate), "fixed:<rate>"
// (pin a named rate — see phy.ParseRate for names like "mcs3" or
// "a54"), "ideal" (the negligible-FER threshold oracle), "argmax"
// (the expected-goodput argmax oracle), and "minstrel".
func ParseAdapterSpec(s string) (AdapterSpec, error) {
	switch {
	case s == "" || s == "fixed":
		return AdapterSpec{Kind: AdapterFixed}, nil
	case s == "ideal":
		return AdapterSpec{Kind: AdapterIdeal}, nil
	case s == "minstrel":
		return AdapterSpec{Kind: AdapterMinstrel}, nil
	case s == "argmax":
		return AdapterSpec{Kind: AdapterArgmax}, nil
	case strings.HasPrefix(s, "fixed:"):
		r, err := phy.ParseRate(strings.TrimPrefix(s, "fixed:"))
		if err != nil {
			return AdapterSpec{}, fmt.Errorf("adapter %q: %w", s, err)
		}
		return AdapterSpec{Kind: AdapterFixed, Rate: r}, nil
	}
	return AdapterSpec{}, fmt.Errorf("unknown rate adapter %q (want fixed, fixed:<rate>, ideal, argmax, or minstrel)", s)
}
