package mac

import (
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
	"tcphack/internal/trace"
)

// spatialEnv builds a spatial-PHY environment under the default
// geometry (≈51.5 m sense/delivery range).
func spatialEnv(seed int64) *env {
	e := newEnv(seed, nil)
	e.medium.Geometry = channel.DefaultGeometry()
	return e
}

// saturate queues n frames from src to dst.
func saturate(src *Station, dst Addr, n int) {
	for i := 0; i < n; i++ {
		src.Enqueue(udpMSDU(src.Addr(), dst, 1500, uint16(i)))
	}
}

// runHiddenPair runs two saturated senders transmitting to one shared
// receiver, with the senders placed at ±senderX (so 2·senderX apart),
// and returns delivered frames and the medium.
func runHiddenPair(senderX float64, dur sim.Duration) (delivered int, m *channel.Medium) {
	e := spatialEnv(42)
	// 6 Mbps keeps each 1500-byte frame ≈2 ms on the air, so blind
	// senders overlap with near certainty.
	r := e.station(Config{Addr: 1, DataRate: phy.RateA6})
	a := e.station(Config{Addr: 2, DataRate: phy.RateA6, Pos: channel.Pos{X: -senderX}})
	b := e.station(Config{Addr: 3, DataRate: phy.RateA6, Pos: channel.Pos{X: senderX}})
	r.Deliver = func(*MSDU) { delivered++ }
	saturate(a, 1, 4000)
	saturate(b, 1, 4000)
	e.sched.RunUntil(sim.Time(dur))
	return delivered, e.medium
}

// TestHiddenTerminalCollisionCollapse reproduces the classic 3-node
// hidden-terminal pathology without RTS/CTS: two senders 80 m apart
// (mutually out of the ≈51.5 m sense range) saturate one receiver in
// the middle. Unable to defer to each other, their frames overlap at
// the receiver constantly; the coupled control — same workload with
// the senders 20 m apart, inside mutual sense range — resolves almost
// everything through carrier deferral.
func TestHiddenTerminalCollisionCollapse(t *testing.T) {
	const dur = 300 * sim.Millisecond
	hiddenDelivered, hiddenM := runHiddenPair(40, dur)
	coupledDelivered, coupledM := runHiddenPair(10, dur)

	if hiddenM.CollidedTx < 50 {
		t.Errorf("hidden pair CollidedTx = %d, want a collision collapse", hiddenM.CollidedTx)
	}
	if hiddenM.CollidedTx < 5*coupledM.CollidedTx {
		t.Errorf("hidden CollidedTx = %d not >> coupled %d",
			hiddenM.CollidedTx, coupledM.CollidedTx)
	}
	if coupledDelivered < 2*hiddenDelivered {
		t.Errorf("delivery: hidden %d vs coupled %d, want coupled at least 2x",
			hiddenDelivered, coupledDelivered)
	}
}

// runExposedPair runs two saturated independent flows A→B and C→D with
// the senders 40 m apart (inside mutual sense range) and the receivers
// pointing away from the other flow. cx shifts the second flow: 40
// makes the senders exposed terminals; 300 decouples them entirely.
func runExposedPair(cx float64, dur sim.Duration) (delivered int, m *channel.Medium) {
	e := spatialEnv(7)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA24})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA24, Pos: channel.Pos{X: -30}})
	c := e.station(Config{Addr: 3, DataRate: phy.RateA24, Pos: channel.Pos{X: cx}})
	d := e.station(Config{Addr: 4, DataRate: phy.RateA24, Pos: channel.Pos{X: cx + 30}})
	count := func(*MSDU) { delivered++ }
	b.Deliver = count
	d.Deliver = count
	saturate(a, 2, 4000)
	saturate(c, 4, 4000)
	e.sched.RunUntil(sim.Time(dur))
	return delivered, e.medium
}

// TestExposedTerminalDeferralLoss pins the exposed-terminal cost: two
// flows whose receivers are out of each other's interference range
// could run concurrently, but energy-detect carrier sensing makes the
// senders defer to each other, so together they deliver roughly what
// one flow would — about half of the decoupled control's aggregate.
func TestExposedTerminalDeferralLoss(t *testing.T) {
	const dur = 300 * sim.Millisecond
	exposedDelivered, exposedM := runExposedPair(40, dur)
	farDelivered, farM := runExposedPair(300, dur)

	ratio := float64(farDelivered) / float64(exposedDelivered)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("decoupled/exposed delivery ratio = %.2f (%d vs %d), want ≈2",
			ratio, farDelivered, exposedDelivered)
	}
	// Deferral, not collisions, causes the exposed loss: overlap only
	// happens on same-slot backoff expiry.
	if exposedM.CollidedTx > exposedM.TxCount/10 {
		t.Errorf("exposed pair CollidedTx = %d of %d transmissions — deferral should prevent most overlap",
			exposedM.CollidedTx, exposedM.TxCount)
	}
	if farM.CollidedTx != 0 {
		t.Errorf("decoupled pair CollidedTx = %d, want 0 (pure spatial reuse)", farM.CollidedTx)
	}
}

// TestAirtimeLedgerConservedSpatial checks the ledger's exact
// accounting under concurrent spatial transmissions: with two
// decoupled flows overlapping freely on the air, every nanosecond is
// still attributed exactly once — busy + idle == elapsed.
func TestAirtimeLedgerConservedSpatial(t *testing.T) {
	e := spatialEnv(9)
	ledger := trace.NewAirtimeLedger()
	e.medium.Tracer = ledger
	a := e.station(Config{Addr: 1, DataRate: phy.RateA24})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA24, Pos: channel.Pos{X: -30}})
	c := e.station(Config{Addr: 3, DataRate: phy.RateA24, Pos: channel.Pos{X: 300}})
	d := e.station(Config{Addr: 4, DataRate: phy.RateA24, Pos: channel.Pos{X: 330}})
	_, _ = b, d
	saturate(a, 2, 2000)
	saturate(c, 4, 2000)
	e.sched.RunUntil(200 * sim.Millisecond)

	rep := ledger.Snapshot(e.sched.Now())
	if !rep.Conserved() {
		t.Fatalf("ledger not conserved: busy %v + idle %v != elapsed %v",
			rep.Busy(), rep.Idle, rep.Elapsed)
	}
	if rep.Idle == 0 || rep.Busy() == 0 {
		t.Errorf("degenerate report: busy %v idle %v", rep.Busy(), rep.Idle)
	}
	// Concurrency really happened: with decoupled flows the summed
	// attributed airtime of a serial medium would exceed what one
	// collision domain could carry, yet the ledger still conserves.
	if e.medium.CollidedTx != 0 {
		t.Errorf("decoupled flows collided %d times", e.medium.CollidedTx)
	}
}
