package mac

import (
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// dcf implements the 802.11 contention engine for one station:
// arbitration inter-frame spacing, slotted backoff with freeze/resume,
// exponential contention-window growth, NAV-based virtual carrier
// sense, and EIFS deferral after reception errors.
//
// The engine is edge-driven: the channel reports physical busy/idle
// transitions, the station reports NAV reservations and reception
// errors, and the station asks for transmission opportunities via
// request(). When the medium has been idle for IFS plus the remaining
// backoff slots, fire() calls Station.txOpportunity.
type dcf struct {
	st *Station

	wantTx bool // a transmission is requested
	slots  int  // remaining backoff slots
	cw     int  // current contention window

	physBusy   bool
	physBusyAt sim.Time // when the current physical-busy period began
	navUntil   sim.Time
	eifs       bool // next deferral uses EIFS (post-error)

	idleAt   sim.Time   // when the medium (phys+NAV) last went idle
	armedAt  sim.Time   // when the pending request started waiting
	timer    *sim.Timer // persistent fire() timer
	navTimer *sim.Timer // persistent NAV-lapse re-evaluation timer
}

func (d *dcf) init(st *Station) {
	d.st = st
	d.cw = st.cfg.CWMin
	d.timer = sim.NewTimer(d.fire)
	d.navTimer = sim.NewTimer(d.recomputeIdle)
}

// ifs returns the arbitration IFS currently in force.
func (d *dcf) ifs() sim.Duration {
	base := phy.SIFS + sim.Duration(d.st.cfg.AIFSN)*phy.SlotTime
	if d.eifs {
		// EIFS = SIFS + ACKTxTime at the lowest basic rate + AIFS.
		return phy.SIFS + phy.FrameDuration(phy.RateA6, ackLen) + base
	}
	return base
}

// busy reports the logical carrier state (physical or NAV).
func (d *dcf) busy() bool {
	return d.physBusy || d.st.sched.Now() < d.navUntil
}

// onPhysBusy handles a physical busy edge from the channel.
func (d *dcf) onPhysBusy() {
	wasBusy := d.busy()
	d.physBusy = true
	d.physBusyAt = d.st.sched.Now()
	if !wasBusy {
		d.freeze()
	}
}

// onPhysIdle handles a physical idle edge from the channel.
func (d *dcf) onPhysIdle() {
	d.physBusy = false
	d.recomputeIdle()
}

// setNAV extends the virtual carrier reservation until t.
func (d *dcf) setNAV(t sim.Time) {
	if t <= d.navUntil {
		return
	}
	wasBusy := d.busy()
	d.navUntil = t
	if tr := d.st.cfg.Tracer; tr != nil {
		tr.NAV(d.st.sched.Now(), uint16(d.st.cfg.Addr), t)
	}
	if !wasBusy {
		d.freeze()
	}
	// Re-evaluate when the reservation lapses.
	d.st.sched.Reset(d.navTimer, t)
}

// noteRxError switches the next deferral to EIFS (802.11: a station
// that could not decode a frame must assume it may have been addressed
// to someone awaiting a SIFS response).
func (d *dcf) noteRxError() {
	d.eifs = true
}

// noteRxOK clears EIFS: a correctly received frame resynchronizes the
// station with the medium.
func (d *dcf) noteRxOK() {
	d.eifs = false
}

// recomputeIdle starts the idle clock if the logical medium is idle.
func (d *dcf) recomputeIdle() {
	if d.busy() {
		return
	}
	d.idleAt = d.st.sched.Now()
	d.arm()
}

// freeze cancels a pending fire and banks backoff slots consumed
// during the idle period that just ended. A timer due at this very
// instant is left alone: the station has already committed to
// transmit in this slot, which is precisely how two stations that
// draw the same backoff collide.
func (d *dcf) freeze() {
	if !d.timer.Pending() {
		return
	}
	if d.timer.At() <= d.st.sched.Now() {
		return
	}
	d.st.sched.Cancel(d.timer)
	elapsed := d.st.sched.Now() - (d.idleAt + d.ifs())
	if elapsed > 0 {
		consumed := int(elapsed / phy.SlotTime)
		if consumed > d.slots {
			consumed = d.slots
		}
		d.slots -= consumed
	}
}

// request asks for a transmission opportunity. Idempotent.
func (d *dcf) request() {
	if d.wantTx {
		return
	}
	d.wantTx = true
	d.armedAt = d.st.sched.Now()
	if !d.busy() {
		// The idle clock may predate this request; keep the earlier
		// idleAt so a station that has been idle ≥ IFS may send at once.
		d.arm()
	}
}

// drawBackoff draws a fresh backoff from the current contention window.
func (d *dcf) drawBackoff() {
	d.slots = d.st.rng.Intn(d.cw + 1)
}

// onTxFailure doubles the contention window (up to CWmax).
func (d *dcf) onTxFailure() {
	d.cw = (d.cw+1)*2 - 1
	if d.cw > d.st.cfg.CWMax {
		d.cw = d.st.cfg.CWMax
	}
}

// onTxSuccess resets the contention window.
func (d *dcf) onTxSuccess() {
	d.cw = d.st.cfg.CWMin
}

// arm schedules fire() once the medium has stayed idle for IFS plus
// the remaining backoff.
func (d *dcf) arm() {
	if !d.wantTx || d.busy() || !d.st.canTransmit() {
		return
	}
	if d.timer.Pending() {
		return
	}
	at := d.idleAt + d.ifs() + sim.Duration(d.slots)*phy.SlotTime
	now := d.st.sched.Now()
	if at < now {
		at = now
	}
	d.st.sched.Reset(d.timer, at)
}

func (d *dcf) fire() {
	if !d.wantTx || !d.st.canTransmit() {
		return
	}
	// Committed-slot semantics: a transmission that began at this very
	// instant does not stop us — both stations chose this slot, and the
	// medium will register the collision.
	now := d.st.sched.Now()
	committed := d.physBusy && d.physBusyAt == now && now >= d.navUntil
	if d.busy() && !committed {
		return
	}
	d.wantTx = false
	d.slots = 0
	d.st.txOpportunity(now - d.armedAt)
}
