package mac

import (
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/packet"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// udpMSDU builds an MSDU whose IP datagram totals ipLen bytes, tagged
// with id in the IP header for order tracking.
func udpMSDU(src, dst Addr, ipLen int, id uint16) *MSDU {
	return &MSDU{
		Src: src, Dst: dst,
		Packet: &packet.Packet{
			IP:         packet.IPv4{Protocol: packet.ProtoUDP, TTL: 64, ID: id},
			UDP:        &packet.UDP{SrcPort: 1, DstPort: 2},
			PayloadLen: ipLen - packet.IPv4HeaderLen - packet.UDPHeaderLen,
		},
	}
}

type env struct {
	sched  *sim.Scheduler
	medium *channel.Medium
}

func newEnv(seed int64, model channel.ErrorModel) *env {
	s := sim.NewScheduler(seed)
	return &env{sched: s, medium: channel.New(s, model)}
}

func (e *env) station(cfg Config) *Station {
	return NewStation(e.sched, e.medium, cfg)
}

func collectIDs(st *Station) *[]uint16 {
	ids := &[]uint16{}
	st.Deliver = func(m *MSDU) { *ids = append(*ids, m.Packet.IP.ID) }
	return ids
}

func TestSinglePacketTiming(t *testing.T) {
	e := newEnv(1, nil)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	var deliveredAt sim.Time = -1
	b.Deliver = func(m *MSDU) { deliveredAt = e.sched.Now() }
	a.Enqueue(udpMSDU(1, 2, 1500, 0))
	e.sched.RunUntil(10 * sim.Millisecond)
	// Idle medium, no backoff owed: TX at DIFS (34 µs); 1536-byte MPDU
	// at 54 Mbps lasts 248 µs → delivery at 282 µs.
	want := phy.DIFS + phy.FrameDuration(phy.RateA54, 1536)
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if a.Stats.MPDUsDelivered != 1 || a.Stats.DeliveredFirstTry != 1 {
		t.Errorf("sender stats: %+v", a.Stats)
	}
	if b.Stats.AcksSent != 1 {
		t.Errorf("AcksSent = %d, want 1", b.Stats.AcksSent)
	}
	if a.Backlogged() {
		t.Error("sender still backlogged")
	}
}

func TestSaturatedThroughput80211a(t *testing.T) {
	e := newEnv(2, nil)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	bytes := 0
	b.Deliver = func(m *MSDU) { bytes += m.Len() }
	for i := 0; i < 5000; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	dur := sim.Time(500 * sim.Millisecond)
	e.sched.RunUntil(dur)
	mbps := float64(bytes) * 8 / dur.Seconds() / 1e6
	// Analytical 802.11a capacity at 54 Mbps with 1500-byte IP packets:
	// DIFS(34) + E[backoff](67.5) + data(248) + SIFS(16) + ACK@24(28)
	// = 393.5 µs per 1500 bytes → ≈30.5 Mbps.
	if mbps < 28.5 || mbps > 32 {
		t.Errorf("saturated goodput = %.1f Mbps, want ≈30.5", mbps)
	}
}

func TestDeliveryInOrderNoLoss(t *testing.T) {
	e := newEnv(3, nil)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	ids := collectIDs(b)
	for i := 0; i < 200; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(sim.Second)
	if len(*ids) != 200 {
		t.Fatalf("delivered %d, want 200", len(*ids))
	}
	for i, id := range *ids {
		if id != uint16(i) {
			t.Fatalf("out of order at %d: got %d", i, id)
		}
	}
}

func TestRetryAndDedup(t *testing.T) {
	model := &channel.FixedLoss{Default: 0.4}
	e := newEnv(4, model)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	ids := collectIDs(b)
	n := 300
	for i := 0; i < n; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(3 * sim.Second)
	if a.Stats.Retries == 0 {
		t.Error("no retries under 40% loss")
	}
	// Every packet delivered exactly once, in order, despite
	// retransmissions (ACK loss causes duplicates on the air).
	seen := make(map[uint16]int)
	for _, id := range *ids {
		seen[id]++
	}
	for i := 0; i < n; i++ {
		if c := seen[uint16(i)]; c > 1 {
			t.Errorf("packet %d delivered %d times", i, c)
		}
	}
	// With retry limit 7 and 40% loss, effectively everything arrives.
	if len(*ids) < n-2 {
		t.Errorf("delivered %d of %d", len(*ids), n)
	}
	prev := -1
	for _, id := range *ids {
		if int(id) <= prev {
			t.Fatalf("out of order: %d after %d", id, prev)
		}
		prev = int(id)
	}
}

func TestRetryLimitExpiry(t *testing.T) {
	model := &channel.FixedLoss{Default: 1.0}
	e := newEnv(5, model)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54, RetryLimit: 3})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	ids := collectIDs(b)
	a.Enqueue(udpMSDU(1, 2, 1500, 0))
	e.sched.RunUntil(sim.Second)
	if len(*ids) != 0 {
		t.Error("delivered through a fully lossy channel")
	}
	if a.Stats.Expired != 1 {
		t.Errorf("Expired = %d, want 1", a.Stats.Expired)
	}
	// Initial + 3 retries = 4 attempts.
	if a.Stats.FramesSent != 4 {
		t.Errorf("FramesSent = %d, want 4", a.Stats.FramesSent)
	}
	if a.Backlogged() {
		t.Error("still backlogged after expiry")
	}
}

func htConfig(addr Addr) Config {
	return Config{
		Addr:        addr,
		DataRate:    phy.HTRate(7, 1),
		AIFSN:       3,
		Aggregation: true,
		TXOPLimit:   4 * sim.Millisecond,
	}
}

func TestAggregationBatch(t *testing.T) {
	e := newEnv(6, nil)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	ids := collectIDs(b)
	for i := 0; i < 100; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(100 * sim.Millisecond)
	if len(*ids) != 100 {
		t.Fatalf("delivered %d, want 100", len(*ids))
	}
	// 100 packets at 42 per 64 KB A-MPDU → 3 data PPDUs.
	if a.Stats.FramesSent != 3 {
		t.Errorf("FramesSent = %d, want 3 (42+42+16)", a.Stats.FramesSent)
	}
	if b.Stats.BlockAcksSent != 3 {
		t.Errorf("BlockAcksSent = %d, want 3", b.Stats.BlockAcksSent)
	}
	for i, id := range *ids {
		if id != uint16(i) {
			t.Fatalf("out of order at %d: %d", i, id)
		}
	}
}

func TestAggregatedThroughput80211n(t *testing.T) {
	e := newEnv(7, nil)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	bytes := 0
	b.Deliver = func(m *MSDU) { bytes += m.Len() }
	for i := 0; i < 20000; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	dur := sim.Time(500 * sim.Millisecond)
	e.sched.RunUntil(dur)
	mbps := float64(bytes) * 8 / dur.Seconds() / 1e6
	// Cycle: AIFS(43) + E[bo](67.5) + A-MPDU(42×1542B ≈ 3492 µs) +
	// SIFS + BA@24(32) ≈ 3650 µs per 63 KB → ≈138 Mbps.
	if mbps < 130 || mbps > 146 {
		t.Errorf("aggregated goodput = %.1f Mbps, want ≈138", mbps)
	}
}

func TestPartialAMPDULossSelectiveRetransmit(t *testing.T) {
	model := &channel.FixedLoss{Default: 0.3}
	e := newEnv(8, model)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	ids := collectIDs(b)
	n := 500
	for i := 0; i < n; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(2 * sim.Second)
	if len(*ids) < n-5 {
		t.Fatalf("delivered %d of %d", len(*ids), n)
	}
	if a.Stats.Retries == 0 {
		t.Error("no selective retransmissions under loss")
	}
	// In-order delivery must survive selective retransmission.
	prev := -1
	dups := 0
	for _, id := range *ids {
		if int(id) <= prev {
			dups++
		} else {
			prev = int(id)
		}
	}
	if dups > 0 {
		t.Errorf("%d out-of-order/duplicate deliveries", dups)
	}
	// Efficiency: far fewer PPDUs than MPDUs (batching held up).
	if a.Stats.FramesSent*10 > a.Stats.MPDUsSent {
		t.Errorf("FramesSent=%d vs MPDUsSent=%d: batching collapsed",
			a.Stats.FramesSent, a.Stats.MPDUsSent)
	}
}

// baKiller corrupts the next `remaining` Block-ACK-sized frames
// (32 bytes without payload), leaving data and BARs untouched. It
// gives tests precise control over which link-layer ACKs are lost,
// independent of exact frame timing.
type baKiller struct{ remaining int }

func (k *baKiller) LossProb(_, _ channel.Radio, _ phy.Rate, n int) float64 {
	if n == blockAckLen && k.remaining > 0 {
		k.remaining--
		return 1
	}
	return 0
}

func TestBlockAckLossTriggersBAR(t *testing.T) {
	model := &baKiller{remaining: 1} // kill only the first Block ACK
	e := newEnv(9, model)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	ids := collectIDs(b)
	for i := 0; i < 10; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(sim.Second)
	if a.Stats.BARsSent == 0 {
		t.Error("no BAR sent after Block ACK loss")
	}
	if len(*ids) != 10 {
		t.Errorf("delivered %d of 10", len(*ids))
	}
	// The BAR-solicited Block ACK acks everything; no data retransmit
	// needed.
	if a.Stats.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (BA loss ≠ data loss)", a.Stats.Retries)
	}
	if a.Stats.AckTimeouts != 1 {
		t.Errorf("AckTimeouts = %d, want 1", a.Stats.AckTimeouts)
	}
}

// syncSniffer watches the air for data frames and records header bits.
type syncSniffer struct {
	more []bool
	sync []bool
}

func (s *syncSniffer) Position() channel.Pos { return channel.Pos{} }
func (s *syncSniffer) CarrierBusy()          {}
func (s *syncSniffer) CarrierIdle()          {}
func (s *syncSniffer) EndRx(tx *channel.Transmission, _ channel.Outcome) {
	if f, ok := tx.Frame.(*DataFrame); ok {
		s.more = append(s.more, f.MoreData)
		s.sync = append(s.sync, f.Sync)
	}
}

func TestMoreDataBit(t *testing.T) {
	e := newEnv(10, nil)
	a := e.station(htConfig(1))
	e.station(htConfig(2))
	sniff := &syncSniffer{}
	e.medium.Attach(sniff)
	for i := 0; i < 100; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(100 * sim.Millisecond)
	if len(sniff.more) != 3 {
		t.Fatalf("%d data frames, want 3", len(sniff.more))
	}
	// 42 + 42 + 16: more data pending on the first two, not the last.
	want := []bool{true, true, false}
	for i := range want {
		if sniff.more[i] != want[i] {
			t.Errorf("frame %d MoreData = %v, want %v", i, sniff.more[i], want[i])
		}
	}
}

func TestSyncBitAfterBARGiveUp(t *testing.T) {
	// Kill the data frame's Block ACK plus every BAR-solicited Block
	// ACK through the retry limit (1 + 8), then heal: the next data
	// frame must carry SYNC (paper Fig. 8).
	model := &baKiller{remaining: 9}
	e := newEnv(11, model)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	collectIDs(b)
	sniff := &syncSniffer{}
	e.medium.Attach(sniff)
	for i := 0; i < 50; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(sim.Second)
	if a.Stats.BARsSent < 8 {
		t.Errorf("BARsSent = %d, want ≥ 8 (limit exhausted)", a.Stats.BARsSent)
	}
	foundSync := false
	for i, sy := range sniff.sync {
		if sy {
			foundSync = true
			if i == 0 {
				t.Error("first frame must not carry SYNC")
			}
		}
	}
	if !foundSync {
		t.Error("no SYNC bit observed after BAR give-up")
	}
	// The retransmitted batch eventually delivers everything.
	if a.Stats.Expired > 0 {
		t.Errorf("Expired = %d MPDUs; give-up should recycle, not drop below limit", a.Stats.Expired)
	}
}

func TestTXOPLimitsAMPDUAtLowRate(t *testing.T) {
	e := newEnv(12, nil)
	cfg := htConfig(1)
	cfg.DataRate = phy.HTRate(0, 1) // 15 Mbps
	a := e.station(cfg)
	cfgB := htConfig(2)
	cfgB.DataRate = phy.HTRate(0, 1)
	b := e.station(cfgB)
	ids := collectIDs(b)
	for i := 0; i < 20; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(sim.Second)
	if len(*ids) != 20 {
		t.Fatalf("delivered %d of 20", len(*ids))
	}
	// 4 ms at 15 Mbps ≈ 7.4 KB → 4 MPDUs of 1542 B per batch.
	if a.Stats.FramesSent < 4 {
		t.Errorf("FramesSent = %d: TXOP limit not constraining batch", a.Stats.FramesSent)
	}
	perBatch := float64(a.Stats.MPDUsSent) / float64(a.Stats.FramesSent)
	if perBatch > 5 {
		t.Errorf("%.1f MPDUs per batch at 15 Mbps, want ≤ ~4.8", perBatch)
	}
}

func TestTwoContendingStations(t *testing.T) {
	e := newEnv(13, nil)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	c := e.station(Config{Addr: 3, DataRate: phy.RateA54})
	got := map[Addr]int{}
	c.Deliver = func(m *MSDU) { got[m.Src]++ }
	for i := 0; i < 2000; i++ {
		a.Enqueue(udpMSDU(1, 3, 1500, uint16(i)))
		b.Enqueue(udpMSDU(2, 3, 1500, uint16(i)))
	}
	e.sched.RunUntil(500 * sim.Millisecond)
	if got[1] == 0 || got[2] == 0 {
		t.Fatalf("deliveries %v", got)
	}
	// Rough fairness: neither starves.
	ratio := float64(got[1]) / float64(got[2])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("fairness ratio %.2f (deliveries %v)", ratio, got)
	}
	// Contention must produce some collisions (same-slot draws).
	if e.medium.CollidedTx == 0 {
		t.Error("no collisions between two saturated stations")
	}
	// ...but collisions resolve: most MPDUs delivered.
	total := got[1] + got[2]
	if total < 1000 {
		t.Errorf("only %d delivered under contention", total)
	}
}

// payloadHooks appends a fixed payload to every LL ACK and records
// received payloads and indications.
type payloadHooks struct {
	NopHooks
	payload  []byte
	received [][]byte
	inds     []DataInd
}

func (h *payloadHooks) BuildAckPayload(Addr) []byte { return h.payload }
func (h *payloadHooks) AckPayloadReceived(_ Addr, p []byte) {
	h.received = append(h.received, append([]byte(nil), p...))
}
func (h *payloadHooks) DataIndication(_ Addr, ind DataInd) {
	h.inds = append(h.inds, ind)
}

func TestHackPayloadPiggyback(t *testing.T) {
	e := newEnv(14, nil)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	collectIDs(b)
	hb := &payloadHooks{payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	b.Hooks = hb
	ha := &payloadHooks{}
	a.Hooks = ha
	for i := 0; i < 100; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(100 * sim.Millisecond)
	if len(ha.received) == 0 {
		t.Fatal("AP-side hook never received the piggybacked payload")
	}
	for _, p := range ha.received {
		if len(p) != 8 || p[0] != 1 || p[7] != 8 {
			t.Errorf("payload corrupted: %v", p)
		}
	}
	if b.Stats.HackPayloadsSent == 0 || b.Stats.HackBytesSent == 0 {
		t.Error("piggyback stats not counted")
	}
	if a.Stats.HackPayloadsRecvd == 0 {
		t.Error("receive stats not counted")
	}
	// Client-side indications observed MORE DATA on the first frame.
	if len(hb.inds) == 0 || !hb.inds[0].MoreData {
		t.Errorf("indications: %+v", hb.inds)
	}
	if !hb.inds[len(hb.inds)-1].Progress {
		t.Error("aggregated indication must report progress")
	}
}

// ackKiller corrupts the next `remaining` plain-ACK-sized frames.
type ackKiller struct{ remaining int }

func (k *ackKiller) LossProb(_, _ channel.Radio, _ phy.Rate, n int) float64 {
	if n == ackLen && k.remaining > 0 {
		k.remaining--
		return 1
	}
	return 0
}

func TestNonAggProgressSemantics(t *testing.T) {
	// When an ACK is lost, the sender retransmits the same sequence
	// number; the receiver's indication must report no progress for the
	// retransmission (paper Fig. 5b).
	model := &ackKiller{remaining: 1}
	e := newEnv(15, model)
	a := e.station(Config{Addr: 1, DataRate: phy.RateA54})
	b := e.station(Config{Addr: 2, DataRate: phy.RateA54})
	collectIDs(b)
	hb := &payloadHooks{}
	b.Hooks = hb
	a.Enqueue(udpMSDU(1, 2, 1500, 0))
	a.Enqueue(udpMSDU(1, 2, 1500, 1))
	e.sched.RunUntil(sim.Second)
	if len(hb.inds) < 3 {
		t.Fatalf("only %d indications", len(hb.inds))
	}
	if !hb.inds[0].Progress {
		t.Error("first frame should be progress")
	}
	if hb.inds[1].Progress {
		t.Error("retransmission of same seq must not be progress")
	}
	if !hb.inds[2].Progress {
		t.Error("next new seq must be progress")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		model := &channel.FixedLoss{Default: 0.2}
		e := newEnv(42, model)
		a := e.station(htConfig(1))
		b := e.station(htConfig(2))
		collectIDs(b)
		for i := 0; i < 500; i++ {
			a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
		}
		e.sched.RunUntil(sim.Second)
		return a.Stats.FramesSent, a.Stats.Retries, e.medium.TxCount
	}
	f1, r1, t1 := run()
	f2, r2, t2 := run()
	if f1 != f2 || r1 != r2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", f1, r1, t1, f2, r2, t2)
	}
}

func TestQueueLimitDrops(t *testing.T) {
	e := newEnv(16, nil)
	cfg := htConfig(1)
	cfg.QueueLimit = 10
	a := e.station(cfg)
	e.station(htConfig(2))
	accepted := 0
	for i := 0; i < 50; i++ {
		if a.Enqueue(udpMSDU(1, 2, 1500, uint16(i))) {
			accepted++
		}
	}
	if accepted != 10 {
		t.Errorf("accepted %d, want 10", accepted)
	}
	if a.Stats.QueueDrops != 40 {
		t.Errorf("QueueDrops = %d, want 40", a.Stats.QueueDrops)
	}
}

func TestSeqArithmetic(t *testing.T) {
	if seqNext(4095) != 0 {
		t.Error("seqNext wrap")
	}
	if seqAdd(10, -20) != 4086 {
		t.Errorf("seqAdd(10,-20) = %d", seqAdd(10, -20))
	}
	if seqDiff(5, 4090) != 11 {
		t.Errorf("seqDiff wrap = %d", seqDiff(5, 4090))
	}
	if !seqLT(4090, 5) {
		t.Error("4090 < 5 across wrap")
	}
	if seqLT(5, 4090) {
		t.Error("5 !< 4090 across wrap")
	}
	if seqLT(7, 7) {
		t.Error("equal seqs not LT")
	}
}

func TestSeqWraparoundDelivery(t *testing.T) {
	// More MSDUs than the 4096 sequence space forces wraparound.
	e := newEnv(17, nil)
	a := e.station(htConfig(1))
	b := e.station(htConfig(2))
	count := 0
	last := -1
	ooo := 0
	b.Deliver = func(m *MSDU) {
		count++
		id := int(m.Packet.IP.ID)
		if id <= last && last-id < 30000 {
			ooo++
		}
		last = id
	}
	n := 6000
	for i := 0; i < n; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	e.sched.RunUntil(2 * sim.Second)
	if count != n {
		t.Fatalf("delivered %d of %d across seq wrap", count, n)
	}
	if ooo != 0 {
		t.Errorf("%d out-of-order deliveries across wrap", ooo)
	}
}

func TestAckedBitmapSemantics(t *testing.T) {
	f := &AckFrame{Block: true, StartSeq: 100, Bitmap: 0b1011}
	if !f.Acked(100) || !f.Acked(101) || f.Acked(102) || !f.Acked(103) {
		t.Error("bitmap bits misread")
	}
	if !f.Acked(50) {
		t.Error("seq before window must be implicitly acked")
	}
	if f.Acked(100 + 64) {
		t.Error("seq beyond window must not be acked")
	}
	// Wraparound window.
	g := &AckFrame{Block: true, StartSeq: 4090, Bitmap: 1 << 10}
	if !g.Acked(4) { // 4090+10 = 4 mod 4096
		t.Error("wrapped bitmap bit misread")
	}
}

func TestFrameWireLens(t *testing.T) {
	msdu := udpMSDU(1, 2, 1500, 0)
	single := &DataFrame{From: 1, To: 2, MPDUs: []*MPDU{{MSDU: msdu}}}
	if got := single.WireLen(false); got != 1536 {
		t.Errorf("legacy single = %d, want 1536", got)
	}
	if got := single.WireLen(true); got != 1538 {
		t.Errorf("ht single = %d, want 1538", got)
	}
	agg := &DataFrame{From: 1, To: 2, Aggregated: true,
		MPDUs: []*MPDU{{MSDU: msdu}, {MSDU: msdu}}}
	// Each subframe: 4 + pad4(1538) = 4 + 1540 = 1544.
	if got := agg.WireLen(true); got != 2*1544 {
		t.Errorf("ampdu = %d, want %d", got, 2*1544)
	}
	ack := &AckFrame{}
	if ack.WireLen() != 14 {
		t.Errorf("ack len %d", ack.WireLen())
	}
	ba := &AckFrame{Block: true, Payload: make([]byte, 20)}
	if ba.WireLen() != 52 {
		t.Errorf("ba+payload len %d, want 52", ba.WireLen())
	}
}

func TestStringers(t *testing.T) {
	msdu := udpMSDU(1, 2, 100, 0)
	f := &DataFrame{From: 1, To: 2, MPDUs: []*MPDU{{Seq: 7, MSDU: msdu}}, MoreData: true, Sync: true}
	if f.String() == "" {
		t.Error("DataFrame string empty")
	}
	agg := &DataFrame{From: 1, To: 2, Aggregated: true, MPDUs: []*MPDU{{Seq: 7, MSDU: msdu}}}
	if agg.String() == "" {
		t.Error("aggregated string empty")
	}
	if (&AckFrame{From: 1, To: 2}).String() == "" {
		t.Error("AckFrame string empty")
	}
	if (&AckFrame{From: 1, To: 2, Block: true}).String() == "" {
		t.Error("BlockAck string empty")
	}
	if (&BARFrame{From: 1, To: 2}).String() == "" {
		t.Error("BAR string empty")
	}
	if Addr(3).String() != "sta3" {
		t.Error("addr string")
	}
}

func BenchmarkSaturatedMAC80211n(b *testing.B) {
	e := newEnv(1, nil)
	a := e.station(htConfig(1))
	r := e.station(htConfig(2))
	r.Deliver = func(*MSDU) {}
	for i := 0; i < b.N; i++ {
		a.Enqueue(udpMSDU(1, 2, 1500, uint16(i)))
	}
	b.ResetTimer()
	e.sched.RunUntil(sim.Time(b.N) * 80 * sim.Microsecond)
}
