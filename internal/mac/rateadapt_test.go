package mac

import (
	"math/rand"
	"reflect"
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/phy"
)

func TestParseAdapterSpec(t *testing.T) {
	cases := []struct {
		in   string
		kind AdapterKind
		rate phy.Rate
		bad  bool
	}{
		{in: "", kind: AdapterFixed},
		{in: "fixed", kind: AdapterFixed},
		{in: "ideal", kind: AdapterIdeal},
		{in: "minstrel", kind: AdapterMinstrel},
		{in: "fixed:mcs3", kind: AdapterFixed, rate: phy.HTRate(3, 1)},
		{in: "fixed:mcs7x4", kind: AdapterFixed, rate: phy.HTRate(7, 4)},
		{in: "fixed:a54", kind: AdapterFixed, rate: phy.RateA54},
		{in: "fixed:warp9", bad: true},
		{in: "fixed:mcs9", bad: true},
		{in: "fixed:mcs3x", bad: true},
		{in: "fixed:mcs3junk", bad: true},
		{in: "fixed:mcs3x2junk", bad: true},
		{in: "fixed:mcs3x9", bad: true},
		{in: "closedloop", bad: true},
	}
	for _, c := range cases {
		spec, err := ParseAdapterSpec(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseAdapterSpec(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAdapterSpec(%q): %v", c.in, err)
			continue
		}
		if spec.Kind != c.kind || spec.Rate != c.rate {
			t.Errorf("ParseAdapterSpec(%q) = %+v, want kind=%v rate=%v", c.in, spec, c.kind, c.rate)
		}
	}
}

func TestIdealSNRThreshold(t *testing.T) {
	rates := phy.RatesHT40SGI1()
	mk := func(snr float64, ok bool) *IdealSNR {
		return &IdealSNR{
			Rates:  rates,
			SNRFor: func(Addr) (float64, bool) { return snr, ok },
		}
	}
	// No SNR notion (lossless / uniform loss): highest rate.
	if r := mk(0, false).RateFor(1); r.MCS != 7 {
		t.Errorf("no-SNR oracle chose %v, want MCS7", r)
	}
	// High SNR: every rate is clean, highest wins.
	if r := mk(30, true).RateFor(1); r.MCS != 7 {
		t.Errorf("SNR 30 chose %v, want MCS7", r)
	}
	// SNR 25: MCS7's ~1%-per-MPDU FER violates the negligible-loss
	// threshold; MCS6 is the highest clean rate.
	if r := mk(25, true).RateFor(1); r.MCS != 6 {
		t.Errorf("SNR 25 chose %v, want MCS6", r)
	}
	// SNR 10: MCS2 loses ~18% of MPDUs; MCS1 is clean.
	if r := mk(10, true).RateFor(1); r.MCS != 1 {
		t.Errorf("SNR 10 chose %v, want MCS1", r)
	}
	// Monotonicity in the thresholded regime (where at least one rate
	// is clean; below that the expected-goodput fallback governs): the
	// chosen rate never decreases with SNR.
	prev := 0
	for snr := 5.0; snr <= 35; snr += 0.5 {
		r := mk(snr, true).RateFor(1)
		if r.Kbps < prev {
			t.Fatalf("chosen rate decreased at SNR %.1f: %v", snr, r)
		}
		prev = r.Kbps
	}
	// The choice is cached per destination.
	a := mk(25, true)
	if a.RateFor(1) != a.RateFor(1) {
		t.Error("oracle choice not stable")
	}
}

// driveMinstrel feeds m a synthetic workload toward dst: frames of
// mpdusPerFrame MPDUs whose delivery succeeds with the rate's
// (1 − FER) at the given SNR, drawn from rng.
func driveMinstrel(m *Minstrel, dst Addr, frames, mpdusPerFrame int, snrDB float64, rng *rand.Rand) []phy.Rate {
	var chosen []phy.Rate
	for i := 0; i < frames; i++ {
		r := m.RateFor(dst)
		chosen = append(chosen, r)
		per := channel.FrameErrorRate(r, snrDB, 1538)
		for k := 0; k < mpdusPerFrame; k++ {
			m.OnTxResult(dst, r, rng.Float64() >= per, 0)
		}
	}
	return chosen
}

// TestMinstrelDeterminism: the same seed must yield the identical rate
// decision sequence — the property campaigns rely on.
func TestMinstrelDeterminism(t *testing.T) {
	run := func() []phy.Rate {
		m := NewMinstrel(MinstrelConfig{Rates: phy.RatesHT40SGI1()}, rand.New(rand.NewSource(7)))
		return driveMinstrel(m, 1, 2000, 16, 25, rand.New(rand.NewSource(99)))
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical seeds produced different rate decision sequences")
	}
}

// TestMinstrelConvergesHighSNR: on a clean channel Minstrel must
// settle on the top rate and spend only a small fraction of frames
// probing below it.
func TestMinstrelConvergesHighSNR(t *testing.T) {
	m := NewMinstrel(MinstrelConfig{Rates: phy.RatesHT40SGI1()}, rand.New(rand.NewSource(1)))
	chosen := driveMinstrel(m, 1, 4000, 16, 35, rand.New(rand.NewSource(2)))
	top := phy.HTRate(7, 1)
	atTop := 0
	for _, r := range chosen[2000:] {
		if r.Kbps == top.Kbps {
			atTop++
		}
	}
	if frac := float64(atTop) / 2000; frac < 0.90 {
		t.Errorf("steady state spends only %.1f%% of frames at MCS7", frac*100)
	}
	stats := m.Snapshot(1)
	if !stats[7].Best {
		t.Errorf("MCS7 not ranked best: %+v", stats)
	}
}

// TestMinstrelStepDropConvergence: after a step drop in SNR the
// adapter must converge to (within one notch of) the best sustainable
// rate within a bounded number of update intervals.
func TestMinstrelStepDropConvergence(t *testing.T) {
	rates := phy.RatesHT40SGI1()
	cfg := MinstrelConfig{Rates: rates}.withDefaults()
	m := NewMinstrel(cfg, rand.New(rand.NewSource(3)))
	feedback := rand.New(rand.NewSource(4))

	driveMinstrel(m, 1, 3000, 16, 35, feedback) // settle at MCS7
	// Step drop: SNR 35 → 15 dB. MCS3 is the best sustainable rate
	// (MCS4+ lose essentially every MPDU at 15 dB).
	const drop = 15.0
	// Allow 40 probe intervals' worth of frames for rediscovery: the
	// EWMA must both demote the dead top rates and refresh the stale
	// low-rate estimates via probes.
	driveMinstrel(m, 1, 40*cfg.SampleEvery, 16, drop, feedback)
	tail := driveMinstrel(m, 1, 500, 16, drop, feedback)
	best := phy.HTRate(3, 1)
	good := 0
	for _, r := range tail {
		if r.Kbps == best.Kbps || r.Kbps == phy.HTRate(2, 1).Kbps {
			good++
		}
	}
	if frac := float64(good) / float64(len(tail)); frac < 0.85 {
		hist := map[int]int{}
		for _, r := range tail {
			hist[r.MCS]++
		}
		t.Errorf("after SNR step drop, only %.1f%% of frames at MCS2/MCS3 (histogram %v)", frac*100, hist)
	}
}

// TestMinstrelFallbackAfterFailures: a failure burst must drop the
// very next frames to the most reliable known rate (the retry-chain
// approximation), and a success must restore the best rate.
func TestMinstrelFallbackAfterFailures(t *testing.T) {
	rates := phy.RatesHT40SGI1()
	cfg := MinstrelConfig{Rates: rates, SampleEvery: 1 << 30} // no probes
	m := NewMinstrel(cfg, rand.New(rand.NewSource(5)))
	// Establish at SNR 25: MCS7 wins on throughput despite its ~1%
	// MPDU loss, while MCS6 is fully reliable — so best and safe
	// differ, which is what arms the fallback path.
	driveMinstrel(m, 1, 400, 16, 25, rand.New(rand.NewSource(6)))
	if d := m.dst(1); d.best == d.safe {
		t.Skipf("feedback draw left best == safe (best=%d safe=%d); fallback not armed", d.best, d.safe)
	}
	// Now MCS7 fails hard; the EWMA needs an update interval to
	// notice, but the fallback must kick in after FallbackAfter
	// consecutive failures.
	for i := 0; i < m.cfg.FallbackAfter; i++ {
		m.OnTxResult(1, phy.HTRate(7, 1), false, i)
	}
	r := m.RateFor(1)
	if r.Kbps == phy.HTRate(7, 1).Kbps {
		t.Fatalf("after %d consecutive failures the adapter still uses MCS7", m.cfg.FallbackAfter)
	}
	m.OnTxResult(1, r, true, 0)
	// A success clears the burst; once stats re-update MCS7 can win
	// again. Immediately we must at least be off the fallback path.
	if got := m.RateFor(1); got.Kbps != m.cfg.Rates[m.dst(1).best].Kbps {
		t.Errorf("after a success RateFor = %v, want the ranked best", got)
	}
}

// TestFixedRateNoops: the default adapter pins the rate and ignores
// feedback — the seed behavior.
func TestFixedRateNoops(t *testing.T) {
	f := FixedRate{Rate: phy.RateA54}
	for i := 0; i < 3; i++ {
		if r := f.RateFor(Addr(i)); r != phy.RateA54 {
			t.Fatalf("FixedRate returned %v", r)
		}
		f.OnTxResult(Addr(i), phy.RateA54, i%2 == 0, i)
	}
}
