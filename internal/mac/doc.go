// Package mac implements the 802.11 MAC layer: DCF/EDCA contention
// (IFS + slotted exponential backoff), immediate link-layer ACKs,
// A-MPDU aggregation with Block ACK agreements and Block ACK Requests,
// per-MPDU retransmission with retry limits, duplicate detection,
// receive-side reordering, NAV-based virtual carrier sense, EIFS, and
// per-station rate adaptation.
//
// # Stations
//
// A Station is one 802.11 station — the MAC is symmetric, so clients
// and the access point run the same code. Stations attach to a
// channel.Medium, accept MSDUs through Enqueue, and deliver received
// MSDUs through the Deliver callback. Contention lives in the dcf
// engine; framing and wire sizes in frames.go; the Block ACK
// recipient scoreboard in ba.go.
//
// # Rate adaptation
//
// The RateAdapter interface decouples rate selection from the
// transmit path: the station asks RateFor(dst) once per data PPDU and
// reports per-MPDU outcomes through OnTxResult. Three implementations
// cover the repository's needs:
//
//   - FixedRate pins one rate — the paper's fixed-rate-per-experiment
//     methodology, and the default when Config.RateAdapter is nil.
//   - IdealSNR is the oracle: from the channel's SNR it picks the
//     highest rate whose frame error rate is negligible. It turns the
//     Figure 11 "sweep every fixed rate and take the envelope" grid
//     into one simulation per SNR point.
//   - Minstrel adapts from observed outcomes alone, after the Linux
//     algorithm: per-rate EWMA success probabilities, rates ranked by
//     expected throughput, probe frames on a deterministic random
//     schedule, and a most-reliable fallback after failure bursts.
//
// ParseAdapterSpec maps the scenario-axis vocabulary ("fixed",
// "fixed:<rate>", "ideal", "minstrel") onto these.
//
// # Determinism contract
//
// Everything in this package is single-goroutine, driven by the
// sim.Scheduler, and draws randomness only from streams forked off
// the scheduler (the station's backoff RNG, a Minstrel's probe RNG).
// Two networks built with the same seed therefore execute
// bit-identically, which is what lets internal/campaign run grid
// points in parallel and still produce row-for-row identical results.
// Adapter state is per station and must never be shared across
// stations or networks.
//
// # HACK extension points
//
// Two extension points carry the paper's HACK protocol without the MAC
// knowing anything about TCP: frames expose the MORE DATA and SYNC
// header bits, and the Hooks interface lets a driver append opaque
// bytes to outgoing link-layer acknowledgments and receive them on the
// other side (the NIC treats compressed TCP ACKs "as opaque bits that
// it needn't understand", §2.2).
package mac
