package mac

import (
	"tcphack/internal/sim"
)

// reorderTimeout bounds how long the Block ACK recipient holds
// out-of-order MSDUs after the last reception from the peer. Holes
// persist only when the originator drops an MPDU at its retry limit,
// so the timer must comfortably exceed one full retry cycle (a 64 KB
// A-MPDU at 150 Mbps lasts ~3.5 ms, and several retries may be
// needed); flushing early would discard retransmissions that are
// still on their way. Commodity receivers use reorder-release
// timeouts of tens to hundreds of milliseconds.
const reorderTimeout = 20 * sim.Millisecond

// baRecipient is the receive side of a Block ACK agreement with one
// peer: the scoreboard that answers Block ACKs and the reorder buffer
// that restores in-sequence delivery.
type baRecipient struct {
	st         *Station
	peer       Addr
	started    bool
	winStart   uint16
	buf        map[uint16]*MSDU // received, undelivered, seq ≥ winStart
	flushTimer *sim.Timer       // persistent inactivity timer
}

func newBARecipient(st *Station, peer Addr) *baRecipient {
	r := &baRecipient{st: st, peer: peer, buf: make(map[uint16]*MSDU)}
	r.flushTimer = sim.NewTimer(r.flush)
	return r
}

// receive processes one decoded MPDU. It returns false for duplicates.
func (r *baRecipient) receive(m *MPDU) bool {
	if !r.started {
		r.started = true
		r.winStart = m.Seq
	}
	if seqLT(m.Seq, r.winStart) {
		return false // old duplicate; implicitly acknowledged
	}
	if _, dup := r.buf[m.Seq]; dup {
		return false
	}
	// A sequence number beyond the window forces the window forward
	// (802.11-2012 §9.21.7.6.2).
	if d := seqDiff(m.Seq, r.winStart); d >= baWindowSize {
		r.advanceTo(seqAdd(m.Seq, -(baWindowSize - 1)))
	}
	r.buf[m.Seq] = m.MSDU
	m.MSDU.retain() // the sender may resolve (and recycle) it first
	r.deliverInOrder()
	r.armFlush()
	return true
}

// deliverInOrder releases the contiguous run at winStart.
func (r *baRecipient) deliverInOrder() {
	for {
		msdu, ok := r.buf[r.winStart]
		if !ok {
			return
		}
		delete(r.buf, r.winStart)
		r.winStart = seqNext(r.winStart)
		r.st.deliverUp(msdu)
		msdu.release()
	}
}

// advanceTo moves the window start to seq, releasing everything below
// it in sequence order (holes are abandoned — the originator dropped
// or moved past them).
func (r *baRecipient) advanceTo(seq uint16) {
	if !r.started {
		r.started = true
		r.winStart = seq
		return
	}
	for r.winStart != seq {
		if msdu, ok := r.buf[r.winStart]; ok {
			delete(r.buf, r.winStart)
			r.st.deliverUp(msdu)
			msdu.release()
		}
		r.winStart = seqNext(r.winStart)
	}
	r.deliverInOrder()
	r.armFlush()
}

// bitmap builds the compressed Block ACK response: origin and 64 bits.
func (r *baRecipient) bitmap() (start uint16, bits uint64) {
	start = r.winStart
	for i := 0; i < baWindowSize; i++ {
		if _, ok := r.buf[seqAdd(start, i)]; ok {
			bits |= 1 << uint(i)
		}
	}
	return start, bits
}

// armFlush (re)starts the hole-recovery timer. It is called on every
// reception, so the timer measures inactivity: it fires only after the
// peer has gone reorderTimeout without delivering anything new, by
// which point pending retransmissions have either arrived or expired
// at the originator's retry limit.
func (r *baRecipient) armFlush() {
	r.st.sched.Cancel(r.flushTimer)
	if len(r.buf) == 0 {
		return
	}
	r.st.sched.Reset(r.flushTimer, r.st.sched.Now()+reorderTimeout)
}

// flush abandons all holes: delivers every buffered MSDU in sequence
// order and advances the window past them.
func (r *baRecipient) flush() {
	if len(r.buf) == 0 {
		return
	}
	// Find the highest buffered sequence number relative to winStart.
	maxD := 0
	for s := range r.buf {
		if d := seqDiff(s, r.winStart); d > maxD {
			maxD = d
		}
	}
	r.advanceTo(seqAdd(r.winStart, maxD+1))
}
