package mac

import (
	"fmt"

	"tcphack/internal/packet"
	"tcphack/internal/sim"
)

// Addr is a MAC address. Small integers keep traces readable.
type Addr uint16

func (a Addr) String() string { return fmt.Sprintf("sta%d", uint16(a)) }

// MSDU is one IP datagram handed to (or delivered by) the MAC.
type MSDU struct {
	Src, Dst Addr
	Packet   *packet.Packet
	// IsTCPAck tags pure TCP ACK packets. The MAC does not interpret
	// packet contents; the network layer sets this so per-cause time
	// accounting (paper Table 3) can attribute medium time to TCP ACKs.
	IsTCPAck bool
	// EnqueuedAt records when the MSDU entered the transmit queue.
	EnqueuedAt sim.Time
	// pool is the owning station's freelist, nil for manually
	// constructed MSDUs (which are never recycled); refs counts the
	// holders that must release before the MSDU returns to the pool.
	// See Station.EnqueuePacket.
	pool *Station
	refs int32
}

// retain adds a holder reference to a pooled MSDU. The Block ACK
// reorder buffer takes one when it stores a received MSDU, since the
// sender may resolve (and otherwise recycle) it first. No-op for
// manually constructed MSDUs.
func (m *MSDU) retain() {
	if m.pool != nil {
		m.refs++
	}
}

// release drops one holder reference; the last one returns the MSDU to
// its owning station's freelist. No-op for manually constructed MSDUs.
func (m *MSDU) release() {
	if m.pool == nil {
		return
	}
	if m.refs--; m.refs == 0 {
		m.pool.putMSDU(m)
	}
}

// Len returns the IP datagram length in bytes.
func (m *MSDU) Len() int { return m.Packet.Len() }

// MPDU wraps an MSDU with MAC sequencing and retry state.
type MPDU struct {
	Seq     uint16
	MSDU    *MSDU
	Retries int
}

// Wire-format sizes in bytes (IEEE 802.11-2012).
const (
	ackLen      = 14 // control ACK
	blockAckLen = 32 // compressed Block ACK (8-byte bitmap)
	barLen      = 24 // Block ACK Request
	// Data frame overhead added to an MSDU: MAC header + FCS + LLC/SNAP.
	legacyDataOverhead = 24 + 4 + 8 // 36: non-QoS data
	htDataOverhead     = 26 + 4 + 8 // 38: QoS data
	ampduDelimiter     = 4
)

// Block ACK parameters.
const (
	seqModulus   = 4096
	baWindowSize = 64
	// BAWindowSize is the Block ACK reordering window (64 MPDUs),
	// exported for capacity models.
	BAWindowSize = baWindowSize
)

// seqNext returns the sequence number after a.
func seqNext(a uint16) uint16 { return (a + 1) % seqModulus }

// seqAdd returns a + d modulo the sequence space.
func seqAdd(a uint16, d int) uint16 {
	v := (int(a) + d) % seqModulus
	if v < 0 {
		v += seqModulus
	}
	return uint16(v)
}

// seqDiff returns (a - b) mod 4096 in [0, 4096).
func seqDiff(a, b uint16) int {
	return (int(a) - int(b) + seqModulus) % seqModulus
}

// seqLT reports whether a precedes b in the circular sequence space
// (within half the space, the standard 802.11 convention).
func seqLT(a, b uint16) bool {
	d := seqDiff(b, a)
	return d != 0 && d < seqModulus/2
}

// mpduWireLen returns the on-air MPDU size for an MSDU of n bytes.
func mpduWireLen(n int, ht bool) int {
	if ht {
		return n + htDataOverhead
	}
	return n + legacyDataOverhead
}

// subframeLen returns the A-MPDU subframe size for an MPDU: delimiter
// plus the MPDU padded to a 4-byte boundary.
func subframeLen(mpduLen int) int {
	return ampduDelimiter + (mpduLen+3)&^3
}

// DataFrame is a data PPDU: a single MPDU, or an A-MPDU batch when
// Aggregated is set.
type DataFrame struct {
	From, To Addr
	MPDUs    []*MPDU
	// Aggregated marks A-MPDU framing (with Block ACK response).
	Aggregated bool
	// MoreData is the 802.11 MORE DATA header bit — set by the paper's
	// AP when further packets for this client remain queued (§3.2).
	MoreData bool
	// Sync is the paper's SYNC bit (§3.4, Figure 8): the sender gave up
	// soliciting a Block ACK and moved on; the receiver must retain and
	// re-append its compressed TCP ACK state.
	Sync bool
	// Dur is the NAV duration after frame end (covers SIFS + response).
	Dur sim.Duration
}

// WireLen returns the PPDU payload length in bytes.
func (f *DataFrame) WireLen(ht bool) int {
	if !f.Aggregated {
		return mpduWireLen(f.MPDUs[0].MSDU.Len(), ht)
	}
	n := 0
	for _, m := range f.MPDUs {
		n += subframeLen(mpduWireLen(m.MSDU.Len(), ht))
	}
	return n
}

func (f *DataFrame) String() string {
	kind := "data"
	if f.Aggregated {
		kind = fmt.Sprintf("ampdu[%d]", len(f.MPDUs))
	}
	flags := ""
	if f.MoreData {
		flags += "+more"
	}
	if f.Sync {
		flags += "+sync"
	}
	return fmt.Sprintf("%s %v->%v seq=%d%s", kind, f.From, f.To, f.MPDUs[0].Seq, flags)
}

// AckFrame is a link-layer acknowledgment: either a plain ACK or a
// compressed Block ACK. Payload carries HACK's compressed TCP ACK
// frame, opaque to the MAC.
type AckFrame struct {
	From, To Addr
	Block    bool
	StartSeq uint16 // Block ACK only: bitmap origin
	Bitmap   uint64 // Block ACK only: bit i = StartSeq+i received
	Payload  []byte
}

// WireLen returns the control frame length including any appended
// HACK payload.
func (f *AckFrame) WireLen() int {
	base := ackLen
	if f.Block {
		base = blockAckLen
	}
	return base + len(f.Payload)
}

// Acked reports whether seq is acknowledged by this Block ACK:
// explicitly via the bitmap or implicitly by preceding the window.
func (f *AckFrame) Acked(seq uint16) bool {
	if seqLT(seq, f.StartSeq) {
		return true
	}
	d := seqDiff(seq, f.StartSeq)
	return d < baWindowSize && f.Bitmap&(1<<uint(d)) != 0
}

func (f *AckFrame) String() string {
	if f.Block {
		return fmt.Sprintf("blockack %v->%v start=%d bitmap=%#x payload=%dB",
			f.From, f.To, f.StartSeq, f.Bitmap, len(f.Payload))
	}
	return fmt.Sprintf("ack %v->%v payload=%dB", f.From, f.To, len(f.Payload))
}

// BARFrame is a Block ACK Request soliciting a Block ACK and advancing
// the recipient's reorder window to StartSeq.
type BARFrame struct {
	From, To Addr
	StartSeq uint16
	Dur      sim.Duration
}

func (f *BARFrame) String() string {
	return fmt.Sprintf("bar %v->%v start=%d", f.From, f.To, f.StartSeq)
}

// Hooks is the driver-facing extension interface that carries HACK.
// All methods may be called with high frequency; implementations must
// not retain the payload slices they return across mutations.
type Hooks interface {
	// BuildAckPayload returns opaque bytes to append to the LL ACK or
	// Block ACK about to be transmitted to peer, or nil.
	BuildAckPayload(peer Addr) []byte
	// AckPayloadReceived delivers opaque bytes found on a received LL
	// ACK or Block ACK from peer.
	AckPayloadReceived(peer Addr, payload []byte)
	// DataIndication reports a successfully received data frame from
	// peer, before its MSDUs are delivered upward.
	DataIndication(peer Addr, ind DataInd)
}

// DataInd summarizes a received data frame for the driver.
type DataInd struct {
	// MoreData and Sync echo the frame header bits.
	MoreData, Sync bool
	// Progress reports evidence that the peer received our previous
	// link-layer ACK: any A-MPDU (aggregated mode, paper Fig. 5a) or an
	// MPDU with a higher sequence number (single-MPDU mode, Fig. 5b).
	// A retransmission of the same single MPDU is not progress.
	Progress bool
	// MPDUs is the number of MPDUs decoded from the frame.
	MPDUs int
}

// NopHooks is the default no-op Hooks implementation.
type NopHooks struct{}

// BuildAckPayload implements Hooks.
func (NopHooks) BuildAckPayload(Addr) []byte { return nil }

// AckPayloadReceived implements Hooks.
func (NopHooks) AckPayloadReceived(Addr, []byte) {}

// DataIndication implements Hooks.
func (NopHooks) DataIndication(Addr, DataInd) {}
