package mac

import (
	"fmt"
	"math/rand"

	"tcphack/internal/channel"
	"tcphack/internal/packet"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
	"tcphack/internal/trace"
)

// Config parameterizes one station.
type Config struct {
	Addr Addr
	Pos  channel.Pos

	// DataRate is the PHY rate for data frames when no RateAdapter is
	// installed (the paper fixes rates per experiment), and the
	// fallback when an adapter declines to pick.
	DataRate phy.Rate
	// RateAdapter selects the data rate per destination; nil pins
	// DataRate (FixedRate). Adapters hold per-station state and must
	// not be shared between stations or networks.
	RateAdapter RateAdapter
	// AckRate overrides the control-response rate; zero derives it
	// from the eliciting frame per the 802.11 basic-rate rules.
	AckRate phy.Rate

	// AIFSN selects the arbitration IFS: 2 reproduces 802.11a DCF
	// (DIFS), 3 the 802.11n EDCA best-effort class.
	AIFSN        int
	CWMin, CWMax int
	// RetryLimit bounds retransmissions of one MPDU (and of a Block
	// ACK Request exchange) beyond the initial attempt.
	RetryLimit int

	// Aggregation enables A-MPDU batching with Block ACKs.
	Aggregation bool
	// MaxAMPDULen bounds the A-MPDU in bytes (spec: 65535).
	MaxAMPDULen int
	// MaxAMPDUFrames bounds MPDUs per A-MPDU (Block ACK window: 64).
	MaxAMPDUFrames int
	// TXOPLimit bounds one data PPDU's airtime (the paper applies the
	// 802.11e 4 ms transmit-opportunity limit). Zero = no limit.
	TXOPLimit sim.Duration

	// QueueLimit caps each destination's transmit queue in MSDUs
	// (the paper sizes the AP queue at 126 packets per flow). Zero =
	// unbounded.
	QueueLimit int

	// AckTurnaround adds delay beyond SIFS before this station sends
	// link-layer ACKs — the SoRa software-radio artifact the paper
	// measures at ~37 µs (commercial NICs: 10–13 µs).
	AckTurnaround sim.Duration
	// AckTimeoutSlack widens this station's ACK timeout, mirroring the
	// paper's raised timeout that accommodates SoRa's late LL ACKs.
	AckTimeoutSlack sim.Duration
	// AckPayloadAllowance sizes the ACK timeout for HACK-lengthened
	// responses: the longest compressed-ACK payload expected.
	AckPayloadAllowance int

	// Tracer, when non-nil, receives MAC-layer probes (A-MPDU decode
	// results, NAV updates, Block ACK window state, MPDU fates) and
	// stages tx_start metadata on the medium before each transmission.
	// Tracers observe only; they never perturb RNG or event order.
	Tracer trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.DataRate.IsZero() {
		c.DataRate = phy.RateA54
	}
	if c.AIFSN == 0 {
		c.AIFSN = 2
	}
	if c.CWMin == 0 {
		c.CWMin = phy.CWMin
	}
	if c.CWMax == 0 {
		c.CWMax = phy.CWMax
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 7
	}
	if c.MaxAMPDULen == 0 {
		c.MaxAMPDULen = 65535
	}
	if c.MaxAMPDUFrames == 0 {
		c.MaxAMPDUFrames = baWindowSize
	}
	if c.RateAdapter == nil {
		c.RateAdapter = FixedRate{Rate: c.DataRate}
	}
	return c
}

// destQueue holds per-destination transmit state.
type destQueue struct {
	dst         Addr
	fifo        []*MSDU
	retryQ      []*MPDU // MPDUs awaiting retransmission, oldest first
	outstanding []*MPDU // transmitted, awaiting a (Block) ACK
	nextSeq     uint16
	awaitingBAR bool
	barRetries  int
	syncPending bool
	// lastDataRate is the rate of the most recent data PPDU to this
	// destination; MPDU outcomes resolved later (Block ACKs, BAR
	// give-ups) are attributed to it.
	lastDataRate phy.Rate
}

func (q *destQueue) hasWork() bool {
	return q.awaitingBAR || len(q.retryQ) > 0 || len(q.fifo) > 0
}

// exchange is one in-flight frame exchange awaiting its response. The
// response deadline lives in the station's persistent respTimeout
// timer (only one exchange is ever outstanding).
type exchange struct {
	q         *destQueue
	frame     *DataFrame // nil for BAR exchanges
	bar       *BARFrame  // nil for data exchanges
	txEnd     sim.Time
	allTCPAck bool
}

// Station is one 802.11 station (client or AP — the MAC is symmetric).
type Station struct {
	sched  *sim.Scheduler
	medium *channel.Medium
	cfg    Config
	rng    *rand.Rand

	dcf dcf

	queues map[Addr]*destQueue
	order  []Addr
	rrNext int

	waiting     *exchange
	respTimeout *sim.Timer // persistent (Block) ACK deadline for waiting
	respPending bool
	respTimer   *sim.Timer // persistent SIFS-turnaround timer
	respDone    func(any)  // clears respPending at response tx end
	// Pending response parameters (the respTimer callback's state).
	respPeer       Addr
	respBlock      bool
	respElicitRate phy.Rate

	rxLastSeq map[Addr]int32
	rxBA      map[Addr]*baRecipient

	// mpduPool and framePool recycle the per-transmission wrapper
	// objects (ROADMAP perf follow-on: ≈10% of steady-state
	// allocations). An MPDU returns to its pool when its fate resolves
	// (delivered or dropped at the retry limit); a DataFrame when its
	// exchange resolves. Receivers never retain either — they extract
	// the MSDU at EndRx — so reuse after those points cannot alias.
	// msduPool recycles the MSDUs created by EnqueuePacket; unlike the
	// other two, an MSDU can outlive the sender's exchange (the
	// receiver's Block ACK reorder buffer holds it for up to
	// reorderTimeout), so MSDUs are reference-counted and return here
	// only when the last holder releases.
	mpduPool  []*MPDU
	framePool []*DataFrame
	msduPool  []*MSDU

	// rxScratch is the reusable decode buffer for rxData (per-frame MPDU
	// filtering); no callee retains the slice.
	rxScratch []*MPDU

	// Hooks receives HACK driver callbacks; defaults to NopHooks.
	Hooks Hooks
	// Deliver receives MSDUs addressed to this station, in order.
	Deliver func(*MSDU)
	// OnMSDUResolved, if set, reports the final fate of each
	// transmitted MSDU: true once its delivery is confirmed by a
	// (Block) ACK, false when it is dropped at the retry limit. The
	// HACK driver uses this to know when natively-sent TCP ACKs have
	// actually reached the peer.
	OnMSDUResolved func(m *MSDU, delivered bool)

	// Stats and TCPAckTime expose the counters the experiments read.
	Stats      stats.MAC
	TCPAckTime stats.TimeBreakdown
}

// NewStation creates a station, attaches it to the medium, and readies
// it for traffic.
func NewStation(sched *sim.Scheduler, medium *channel.Medium, cfg Config) *Station {
	st := &Station{
		sched:     sched,
		medium:    medium,
		cfg:       cfg.withDefaults(),
		rng:       sched.ForkRand(),
		queues:    make(map[Addr]*destQueue),
		rxLastSeq: make(map[Addr]int32),
		rxBA:      make(map[Addr]*baRecipient),
		Hooks:     NopHooks{},
		Deliver:   func(*MSDU) {},
	}
	st.respTimeout = sim.NewTimer(st.onRespTimeout)
	st.respTimer = sim.NewTimer(func() {
		st.sendResponse(st.respPeer, st.respBlock, st.respElicitRate)
	})
	st.respDone = func(any) {
		st.respPending = false
		// The carrier-idle edge for this transmission fires earlier in
		// the same instant (the medium delivers it before this event),
		// while respPending still blocked us — re-evaluate now.
		st.dcf.recomputeIdle()
	}
	st.dcf.init(st)
	medium.Attach(st)
	return st
}

// Addr returns the station's MAC address.
func (st *Station) Addr() Addr { return st.cfg.Addr }

// Config returns the station's effective configuration.
func (st *Station) Config() Config { return st.cfg }

// Position implements channel.Radio.
func (st *Station) Position() channel.Pos { return st.cfg.Pos }

// CarrierBusy implements channel.Radio.
func (st *Station) CarrierBusy() { st.dcf.onPhysBusy() }

// CarrierIdle implements channel.Radio.
func (st *Station) CarrierIdle() { st.dcf.onPhysIdle() }

// Enqueue queues an MSDU for transmission. It reports false (and
// counts a drop) if the destination queue is full.
func (st *Station) Enqueue(m *MSDU) bool {
	q := st.queue(m.Dst)
	if st.cfg.QueueLimit > 0 && len(q.fifo) >= st.cfg.QueueLimit {
		st.Stats.QueueDrops++
		return false
	}
	m.EnqueuedAt = st.sched.Now()
	q.fifo = append(q.fifo, m)
	st.dcf.request()
	return true
}

// EnqueuePacket wraps p in a recycled MSDU from the station's freelist
// and queues it for dst, reporting false (and counting a drop) if the
// destination queue is full. It is the allocation-free equivalent of
// Enqueue for hot paths: the MSDU returns to the freelist automatically
// once every holder — the transmit path and, for aggregated traffic,
// the receiver's reorder buffer — has released it.
func (st *Station) EnqueuePacket(dst Addr, p *packet.Packet, isTCPAck bool) bool {
	m := st.getMSDU(dst, p, isTCPAck)
	if !st.Enqueue(m) {
		m.release()
		return false
	}
	return true
}

// QueueLen returns the number of MSDUs queued for dst.
func (st *Station) QueueLen(dst Addr) int { return len(st.queue(dst).fifo) }

// RemoveQueued withdraws the first MSDU for dst matching match from
// the transmit queue, reporting whether one was found. HACK's
// opportunistic mode uses this to cancel a native TCP ACK whose
// compressed copy just rode a link-layer ACK; packets already handed
// to the aggregation machinery cannot be withdrawn.
func (st *Station) RemoveQueued(dst Addr, match func(*MSDU) bool) bool {
	q := st.queue(dst)
	for i, m := range q.fifo {
		if match(m) {
			q.fifo = append(q.fifo[:i], q.fifo[i+1:]...)
			m.release()
			return true
		}
	}
	return false
}

// Backlogged reports whether any transmission work remains (queued,
// awaiting retry, or awaiting Block ACK resolution).
func (st *Station) Backlogged() bool {
	if st.waiting != nil {
		return true
	}
	for _, q := range st.queues {
		if q.hasWork() || len(q.outstanding) > 0 {
			return true
		}
	}
	return false
}

func (st *Station) queue(dst Addr) *destQueue {
	q, ok := st.queues[dst]
	if !ok {
		q = &destQueue{dst: dst}
		st.queues[dst] = q
		st.order = append(st.order, dst)
	}
	return q
}

func (st *Station) canTransmit() bool {
	return st.waiting == nil && !st.respPending
}

func (st *Station) hasTraffic() bool {
	for _, q := range st.queues {
		if q.hasWork() {
			return true
		}
	}
	return false
}

// ackRateFor returns the control-response rate for a frame received at
// dataRate.
func (st *Station) ackRateFor(dataRate phy.Rate) phy.Rate {
	if !st.cfg.AckRate.IsZero() {
		return st.cfg.AckRate
	}
	return phy.ControlResponseRate(dataRate)
}

// dataRateFor returns the rate for the next data frame to q's
// destination, consulting the adapter and falling back to the
// configured DataRate.
func (st *Station) dataRateFor(q *destQueue) phy.Rate {
	r := st.cfg.RateAdapter.RateFor(q.dst)
	if r.IsZero() {
		return st.cfg.DataRate
	}
	return r
}

// lastRateFor returns the rate of the most recent data PPDU to q's
// destination, for attributing late MPDU resolutions.
func (st *Station) lastRateFor(q *destQueue) phy.Rate {
	if q.lastDataRate.IsZero() {
		return st.cfg.DataRate
	}
	return q.lastDataRate
}

// getMSDU returns a recycled (or new) MSDU owned by this station's
// freelist, fully reinitialized with one reference held by the caller.
func (st *Station) getMSDU(dst Addr, p *packet.Packet, isTCPAck bool) *MSDU {
	var m *MSDU
	if n := len(st.msduPool); n > 0 {
		m = st.msduPool[n-1]
		st.msduPool = st.msduPool[:n-1]
	} else {
		m = &MSDU{}
	}
	*m = MSDU{Src: st.cfg.Addr, Dst: dst, Packet: p, IsTCPAck: isTCPAck, pool: st, refs: 1}
	return m
}

// putMSDU recycles an MSDU whose last reference was released. The
// packet reference is dropped so the pool never extends its lifetime.
func (st *Station) putMSDU(m *MSDU) {
	m.Packet = nil
	st.msduPool = append(st.msduPool, m)
}

// getMPDU returns a recycled (or new) MPDU initialized to {seq, msdu}.
func (st *Station) getMPDU(seq uint16, msdu *MSDU) *MPDU {
	if n := len(st.mpduPool); n > 0 {
		m := st.mpduPool[n-1]
		st.mpduPool = st.mpduPool[:n-1]
		*m = MPDU{Seq: seq, MSDU: msdu}
		return m
	}
	return &MPDU{Seq: seq, MSDU: msdu}
}

// putMPDU recycles a resolved MPDU. The MSDU reference is dropped so
// the pool never extends packet lifetimes.
func (st *Station) putMPDU(m *MPDU) {
	m.MSDU = nil
	st.mpduPool = append(st.mpduPool, m)
}

// getFrame returns a recycled (or new) empty DataFrame, retaining the
// recycled frame's MPDU slice capacity.
func (st *Station) getFrame() *DataFrame {
	if n := len(st.framePool); n > 0 {
		f := st.framePool[n-1]
		st.framePool = st.framePool[:n-1]
		return f
	}
	return &DataFrame{}
}

// putFrame recycles a DataFrame once its exchange resolved. MPDU
// pointers are cleared (the MPDUs live on in retry queues or their own
// pool); the slice capacity is kept for the next frame.
func (st *Station) putFrame(f *DataFrame) {
	for i := range f.MPDUs {
		f.MPDUs[i] = nil
	}
	*f = DataFrame{MPDUs: f.MPDUs[:0]}
	st.framePool = append(st.framePool, f)
}

// expectedRespDur returns the worst-case airtime of the response we
// await to a frame sent at dataRate, including the HACK payload
// allowance.
func (st *Station) expectedRespDur(dataRate phy.Rate, block bool) sim.Duration {
	n := ackLen
	if block {
		n = blockAckLen
	}
	n += st.cfg.AckPayloadAllowance
	return phy.FrameDuration(st.ackRateFor(dataRate), n)
}

// txOpportunity is called by the DCF when the station has won the
// medium. waited is the contention time for Table 3 accounting.
func (st *Station) txOpportunity(waited sim.Duration) {
	q := st.pickQueue()
	if q == nil {
		return
	}
	if q.awaitingBAR {
		st.sendBAR(q, waited)
		return
	}
	st.sendData(q, waited)
}

func (st *Station) pickQueue() *destQueue {
	n := len(st.order)
	for i := 0; i < n; i++ {
		dst := st.order[(st.rrNext+i)%n]
		if q := st.queues[dst]; q.hasWork() {
			st.rrNext = (st.rrNext + i + 1) % n
			return q
		}
	}
	return nil
}

// sendData builds and transmits the next data PPDU for q.
func (st *Station) sendData(q *destQueue, waited sim.Duration) {
	rate := st.dataRateFor(q)
	q.lastDataRate = rate
	frame := st.buildFrame(q, rate)
	wire := frame.WireLen(rate.HT)

	allAck := true
	retried := 0
	for _, m := range frame.MPDUs {
		if !m.MSDU.IsTCPAck {
			allAck = false
		}
		if m.Retries > 0 {
			retried++
		}
	}
	if st.cfg.Tracer != nil {
		class := trace.ClassData
		switch {
		case retried > 0:
			class = trace.ClassRetry
		case allAck:
			class = trace.ClassTCPAck
		}
		st.medium.StageTx(channel.TxMeta{
			Src: uint16(st.cfg.Addr), Dst: uint16(q.dst), Class: class,
			MPDUs: len(frame.MPDUs), Retried: retried,
		})
	}
	tx := st.medium.Transmit(st, rate, wire, frame)

	st.Stats.FramesSent++
	st.Stats.MPDUsSent += uint64(len(frame.MPDUs))

	if allAck {
		st.TCPAckTime.ChannelWait += waited
		st.TCPAckTime.TCPAckAir += tx.Duration()
	}

	ex := &exchange{q: q, frame: frame, txEnd: tx.End, allTCPAck: allAck}
	st.waiting = ex
	st.sched.Reset(st.respTimeout, st.respDeadline(tx.End, frame.Aggregated, rate))
}

// respDeadline computes when to give up on the response to a frame
// sent at dataRate whose transmission ends at txEnd.
func (st *Station) respDeadline(txEnd sim.Time, block bool, dataRate phy.Rate) sim.Time {
	return txEnd + phy.SIFS + phy.SlotTime + st.expectedRespDur(dataRate, block) +
		st.cfg.AckTimeoutSlack + sim.Microsecond
}

// buildFrame assembles the next DataFrame for transmission at rate:
// pending retransmissions first, then fresh MSDUs, within the A-MPDU
// and TXOP limits.
func (st *Station) buildFrame(q *destQueue, rate phy.Rate) *DataFrame {
	f := st.getFrame()
	f.From, f.To, f.Aggregated = st.cfg.Addr, q.dst, st.cfg.Aggregation
	ht := rate.HT

	if !st.cfg.Aggregation {
		if len(q.retryQ) == 0 {
			msdu := q.fifo[0]
			q.fifo = q.fifo[1:]
			q.retryQ = append(q.retryQ, st.getMPDU(q.nextSeq, msdu))
			q.nextSeq = seqNext(q.nextSeq)
		}
		f.MPDUs = append(f.MPDUs, q.retryQ[0])
		f.MoreData = len(q.fifo) > 0
		f.Dur = phy.SIFS + st.expectedRespDur(rate, false)
		return f
	}

	budget := st.cfg.MaxAMPDULen
	if st.cfg.TXOPLimit > 0 {
		if c := phy.PayloadCapacity(rate, st.cfg.TXOPLimit); c < budget {
			budget = c
		}
	}
	used := 0
	add := func(m *MPDU) bool {
		n := subframeLen(mpduWireLen(m.MSDU.Len(), ht))
		if used+n > budget && len(f.MPDUs) > 0 {
			return false
		}
		used += n
		f.MPDUs = append(f.MPDUs, m)
		return true
	}
	for len(q.retryQ) > 0 && len(f.MPDUs) < st.cfg.MaxAMPDUFrames {
		if !add(q.retryQ[0]) {
			break
		}
		q.retryQ = q.retryQ[1:]
	}
	// New MPDUs must stay inside the 64-sequence transmit window
	// anchored at the oldest pending retransmission; otherwise the
	// recipient would be forced to advance its scoreboard past the
	// hole and the retried MPDU would be silently discarded.
	winAnchor, anchored := uint16(0), false
	if len(f.MPDUs) > 0 {
		winAnchor, anchored = f.MPDUs[0].Seq, true
	}
	for len(q.retryQ) == 0 && len(q.fifo) > 0 && len(f.MPDUs) < st.cfg.MaxAMPDUFrames {
		if anchored && seqDiff(q.nextSeq, winAnchor) >= baWindowSize {
			break
		}
		m := st.getMPDU(q.nextSeq, q.fifo[0])
		if !add(m) {
			st.putMPDU(m)
			break
		}
		q.nextSeq = seqNext(q.nextSeq)
		q.fifo = q.fifo[1:]
	}
	q.outstanding = append(q.outstanding, f.MPDUs...)
	f.MoreData = len(q.fifo) > 0 || len(q.retryQ) > 0
	f.Sync = q.syncPending
	q.syncPending = false
	f.Dur = phy.SIFS + st.expectedRespDur(rate, true)
	return f
}

// sendBAR transmits a Block ACK Request for q's oldest unresolved MPDU.
func (st *Station) sendBAR(q *destQueue, waited sim.Duration) {
	start := st.oldestUnresolved(q)
	bar := &BARFrame{From: st.cfg.Addr, To: q.dst, StartSeq: start}
	dataRate := st.lastRateFor(q)
	bar.Dur = phy.SIFS + st.expectedRespDur(dataRate, true)
	rate := st.ackRateFor(dataRate)
	if st.cfg.Tracer != nil {
		st.medium.StageTx(channel.TxMeta{
			Src: uint16(st.cfg.Addr), Dst: uint16(q.dst), Class: trace.ClassBAR,
		})
	}
	tx := st.medium.Transmit(st, rate, barLen, bar)
	st.Stats.BARsSent++
	ex := &exchange{q: q, bar: bar, txEnd: tx.End}
	st.waiting = ex
	st.sched.Reset(st.respTimeout, st.respDeadline(tx.End, true, dataRate))
	_ = waited
}

func (st *Station) oldestUnresolved(q *destQueue) uint16 {
	var oldest uint16
	found := false
	consider := func(m *MPDU) {
		if !found || seqLT(m.Seq, oldest) {
			oldest = m.Seq
			found = true
		}
	}
	for _, m := range q.outstanding {
		consider(m)
	}
	for _, m := range q.retryQ {
		consider(m)
	}
	if !found {
		return q.nextSeq
	}
	return oldest
}

// EndRx implements channel.Radio: a transmission completed on the air.
func (st *Station) EndRx(tx *channel.Transmission, outcome channel.Outcome) {
	if outcome != channel.RxOK {
		st.dcf.noteRxError()
		return
	}
	switch f := tx.Frame.(type) {
	case *DataFrame:
		st.rxData(f, tx)
	case *AckFrame:
		st.rxAck(f, tx)
	case *BARFrame:
		st.rxBAR(f, tx)
	default:
		panic(fmt.Sprintf("mac: unknown frame type %T", tx.Frame))
	}
}

func (st *Station) rxData(f *DataFrame, tx *channel.Transmission) {
	if f.To != st.cfg.Addr {
		st.dcf.noteRxOK()
		st.dcf.setNAV(st.sched.Now() + f.Dur)
		return
	}
	ht := tx.Rate.HT
	decoded := st.rxScratch[:0]
	for _, m := range f.MPDUs {
		if !st.medium.Corrupted(tx.Source, st, tx.Rate, mpduWireLen(m.MSDU.Len(), ht)) {
			decoded = append(decoded, m)
		}
	}
	st.rxScratch = decoded[:0]
	if st.cfg.Tracer != nil {
		st.cfg.Tracer.RxFrame(st.sched.Now(), uint16(f.From), uint16(f.To), len(f.MPDUs), len(decoded))
	}
	if len(decoded) == 0 {
		// Nothing decodable: the station cannot even tell the frame was
		// addressed to it; no response, sender times out.
		st.dcf.noteRxError()
		return
	}
	st.dcf.noteRxOK()

	progress := true
	if !f.Aggregated {
		last, seen := st.rxLastSeq[f.From]
		progress = !seen || seqLT(uint16(last), decoded[0].Seq)
	}
	st.Hooks.DataIndication(f.From, DataInd{
		MoreData: f.MoreData,
		Sync:     f.Sync,
		Progress: progress,
		MPDUs:    len(decoded),
	})

	if f.Aggregated {
		r := st.baRecipient(f.From)
		for _, m := range decoded {
			r.receive(m)
		}
	} else {
		m := decoded[0]
		last, seen := st.rxLastSeq[f.From]
		if !seen || uint16(last) != m.Seq {
			st.rxLastSeq[f.From] = int32(m.Seq)
			st.deliverUp(m.MSDU)
		}
	}
	st.scheduleResponse(f.From, f.Aggregated, tx.Rate)
}

func (st *Station) baRecipient(peer Addr) *baRecipient {
	r, ok := st.rxBA[peer]
	if !ok {
		r = newBARecipient(st, peer)
		st.rxBA[peer] = r
	}
	return r
}

func (st *Station) scheduleResponse(peer Addr, block bool, elicitRate phy.Rate) {
	if st.respPending {
		// Can only occur if an eliciting frame somehow completed inside
		// our SIFS window; prefer the newer response.
		st.sched.Cancel(st.respTimer)
	}
	st.respPending = true
	st.respPeer, st.respBlock, st.respElicitRate = peer, block, elicitRate
	st.sched.Reset(st.respTimer, st.sched.Now()+phy.SIFS+st.cfg.AckTurnaround)
}

func (st *Station) sendResponse(peer Addr, block bool, elicitRate phy.Rate) {
	f := &AckFrame{From: st.cfg.Addr, To: peer, Block: block}
	if block {
		f.StartSeq, f.Bitmap = st.baRecipient(peer).bitmap()
	}
	f.Payload = st.Hooks.BuildAckPayload(peer)
	rate := st.ackRateFor(elicitRate)
	if st.cfg.Tracer != nil {
		if block {
			st.cfg.Tracer.BAWindow(st.sched.Now(), uint16(st.cfg.Addr), uint16(peer), f.StartSeq, f.Bitmap)
		}
		var extra sim.Duration
		if len(f.Payload) > 0 {
			base := ackLen
			if block {
				base = blockAckLen
			}
			extra = phy.FrameDuration(rate, f.WireLen()) - phy.FrameDuration(rate, base)
		}
		st.medium.StageTx(channel.TxMeta{
			Src: uint16(st.cfg.Addr), Dst: uint16(peer), Class: trace.ClassAck, Extra: extra,
		})
	}
	tx := st.medium.Transmit(st, rate, f.WireLen(), f)
	if block {
		st.Stats.BlockAcksSent++
	} else {
		st.Stats.AcksSent++
	}
	if len(f.Payload) > 0 {
		st.Stats.HackPayloadsSent++
		st.Stats.HackBytesSent += uint64(len(f.Payload))
		base := ackLen
		if block {
			base = blockAckLen
		}
		st.TCPAckTime.ROHCAir += tx.Duration() - phy.FrameDuration(rate, base)
	}
	st.sched.Post(tx.End, st.respDone, nil)
}

func (st *Station) rxAck(f *AckFrame, tx *channel.Transmission) {
	if f.To != st.cfg.Addr {
		st.dcf.noteRxOK()
		return
	}
	if st.medium.Corrupted(tx.Source, st, tx.Rate, f.WireLen()) {
		st.dcf.noteRxError()
		return
	}
	st.dcf.noteRxOK()
	if len(f.Payload) > 0 {
		st.Stats.HackPayloadsRecvd++
		st.Hooks.AckPayloadReceived(f.From, f.Payload)
	}
	ex := st.waiting
	if ex == nil || ex.q.dst != f.From {
		return // stale or unexpected response (e.g. after our timeout)
	}
	st.sched.Cancel(st.respTimeout)
	st.waiting = nil
	if ex.allTCPAck {
		st.TCPAckTime.LLAckOverhead += st.sched.Now() - ex.txEnd
	}
	if f.Block {
		st.processBlockAck(ex.q, f)
	} else {
		st.processAck(ex.q)
	}
	if ex.frame != nil {
		st.putFrame(ex.frame)
	}
	st.dcf.onTxSuccess()
	st.postTx()
}

func (st *Station) processAck(q *destQueue) {
	if len(q.retryQ) == 0 {
		return
	}
	m := q.retryQ[0]
	q.retryQ = q.retryQ[1:]
	st.recordDelivered(q, m)
	st.putMPDU(m)
}

func (st *Station) processBlockAck(q *destQueue, f *AckFrame) {
	outstanding := q.outstanding
	q.outstanding = nil
	q.awaitingBAR = false
	q.barRetries = 0
	for _, m := range outstanding {
		if f.Acked(m.Seq) {
			st.recordDelivered(q, m)
			st.putMPDU(m)
		} else {
			st.retryOrDrop(q, m)
		}
	}
}

func (st *Station) recordDelivered(q *destQueue, m *MPDU) {
	st.Stats.MPDUsDelivered++
	if m.Retries == 0 {
		st.Stats.DeliveredFirstTry++
	} else {
		st.Stats.DeliveredRetried++
	}
	st.cfg.RateAdapter.OnTxResult(q.dst, st.lastRateFor(q), true, m.Retries)
	if st.cfg.Tracer != nil {
		st.cfg.Tracer.MPDUFate(st.sched.Now(), uint16(st.cfg.Addr), uint16(q.dst), m.Seq, m.Retries, trace.FateDelivered)
	}
	if st.OnMSDUResolved != nil {
		st.OnMSDUResolved(m.MSDU, true)
	}
	m.MSDU.release()
}

func (st *Station) retryOrDrop(q *destQueue, m *MPDU) {
	st.cfg.RateAdapter.OnTxResult(q.dst, st.lastRateFor(q), false, m.Retries)
	m.Retries++
	if m.Retries > st.cfg.RetryLimit {
		st.Stats.Expired++
		if st.cfg.Tracer != nil {
			st.cfg.Tracer.MPDUFate(st.sched.Now(), uint16(st.cfg.Addr), uint16(q.dst), m.Seq, m.Retries, trace.FateExpired)
		}
		if st.OnMSDUResolved != nil {
			st.OnMSDUResolved(m.MSDU, false)
		}
		m.MSDU.release()
		st.putMPDU(m)
		return
	}
	st.Stats.Retries++
	if st.cfg.Tracer != nil {
		st.cfg.Tracer.MPDUFate(st.sched.Now(), uint16(st.cfg.Addr), uint16(q.dst), m.Seq, m.Retries, trace.FateRetry)
	}
	q.retryQ = append(q.retryQ, m)
}

func (st *Station) rxBAR(f *BARFrame, tx *channel.Transmission) {
	if f.To != st.cfg.Addr {
		st.dcf.noteRxOK()
		st.dcf.setNAV(st.sched.Now() + f.Dur)
		return
	}
	if st.medium.Corrupted(tx.Source, st, tx.Rate, barLen) {
		st.dcf.noteRxError()
		return
	}
	st.dcf.noteRxOK()
	r := st.baRecipient(f.From)
	if r.started && seqLT(r.winStart, f.StartSeq) {
		r.advanceTo(f.StartSeq)
	}
	st.scheduleResponse(f.From, true, tx.Rate)
}

// onRespTimeout handles an expired (Block) ACK wait.
func (st *Station) onRespTimeout() {
	ex := st.waiting
	if ex == nil {
		return
	}
	st.waiting = nil
	st.Stats.AckTimeouts++
	if ex.allTCPAck {
		st.TCPAckTime.LLAckOverhead += st.sched.Now() - ex.txEnd
	}
	q := ex.q
	switch {
	case ex.bar != nil:
		q.barRetries++
		if q.barRetries > st.cfg.RetryLimit {
			// Give up soliciting (paper Fig. 8): recycle the outstanding
			// MPDUs into the retry queue, move on, and mark the next
			// data frame with SYNC so the receiver keeps its retained
			// compressed-ACK state.
			outstanding := q.outstanding
			q.outstanding = nil
			q.awaitingBAR = false
			q.barRetries = 0
			q.syncPending = true
			for _, m := range outstanding {
				st.retryOrDrop(q, m)
			}
			st.dcf.onTxSuccess() // fresh contention state for the new batch
		} else {
			st.dcf.onTxFailure()
		}
	case ex.frame.Aggregated:
		// No Block ACK: solicit one with a BAR (paper §3.4).
		q.awaitingBAR = true
		st.putFrame(ex.frame)
		st.dcf.onTxFailure()
	default:
		// Single-MPDU exchange: retransmit the same sequence number.
		m := q.retryQ[0]
		st.cfg.RateAdapter.OnTxResult(q.dst, st.lastRateFor(q), false, m.Retries)
		m.Retries++
		if m.Retries > st.cfg.RetryLimit {
			st.Stats.Expired++
			q.retryQ = q.retryQ[1:]
			if st.cfg.Tracer != nil {
				st.cfg.Tracer.MPDUFate(st.sched.Now(), uint16(st.cfg.Addr), uint16(q.dst), m.Seq, m.Retries, trace.FateExpired)
			}
			if st.OnMSDUResolved != nil {
				st.OnMSDUResolved(m.MSDU, false)
			}
			m.MSDU.release()
			st.putMPDU(m)
			st.dcf.onTxSuccess()
		} else {
			st.Stats.Retries++
			if st.cfg.Tracer != nil {
				st.cfg.Tracer.MPDUFate(st.sched.Now(), uint16(st.cfg.Addr), uint16(q.dst), m.Seq, m.Retries, trace.FateRetry)
			}
			st.dcf.onTxFailure()
		}
		st.putFrame(ex.frame)
	}
	st.postTx()
}

// postTx re-enters contention after an exchange resolves.
func (st *Station) postTx() {
	st.dcf.drawBackoff()
	st.dcf.wantTx = st.hasTraffic()
	st.dcf.armedAt = st.sched.Now()
	st.dcf.arm()
}

func (st *Station) deliverUp(m *MSDU) {
	st.Deliver(m)
}
