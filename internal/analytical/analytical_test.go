package analytical

import (
	"testing"

	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

func TestBatchSizeMatchesPaper(t *testing.T) {
	p := Defaults()
	// Paper §4.3: "batches of 42 packets" at 150 Mbps (64 KB bound).
	if n := p.BatchSize(phy.HTRate(7, 1)); n != 42 {
		t.Errorf("batch@150 = %d, want 42", n)
	}
	// At 15 Mbps the 4 ms TXOP limits the batch to a handful.
	if n := p.BatchSize(phy.HTRate(0, 1)); n < 3 || n > 6 {
		t.Errorf("batch@15 = %d, want ≈4 (TXOP-limited)", n)
	}
	// Unlimited TXOP at 600 Mbps still capped by the BA window / 64 KB.
	if n := p.BatchSize(phy.HTRate(7, 4)); n != 42 {
		t.Errorf("batch@600 = %d, want 42 (64 KB bound)", n)
	}
}

func TestUDPCapacity80211a(t *testing.T) {
	p := Defaults()
	// Paper §4.2: "In an ideal 802.11 MAC, UDP would achieve 30.2 Mbps"
	// at 54 Mbps.
	got := p.Goodput80211a(phy.RateA54, ModeUDP)
	if got < 29 || got > 31 {
		t.Errorf("UDP@54 = %.1f Mbps, want ≈30.2", got)
	}
}

func TestTCPvsHACK80211a(t *testing.T) {
	p := Defaults()
	tcp := p.Goodput80211a(phy.RateA54, ModeTCP)
	hck := p.Goodput80211a(phy.RateA54, ModeHACK)
	// §2.1/§4.2 imply theory ≈22-24 stock and ≈28-29 HACK at 54 Mbps.
	if tcp < 22 || tcp > 25 {
		t.Errorf("TCP@54 = %.1f, want ≈24", tcp)
	}
	if hck < 27 || hck > 30 {
		t.Errorf("HACK@54 = %.1f, want ≈29", hck)
	}
	if hck <= tcp {
		t.Error("HACK must beat stock")
	}
	// HACK stays below the UDP bound.
	if hck >= p.Goodput80211a(phy.RateA54, ModeUDP) {
		t.Error("HACK exceeded the UDP bound")
	}
}

func TestImprovementShape80211n(t *testing.T) {
	p := Defaults()
	// Paper Figure 12: ≈7% predicted improvement at 150 Mbps.
	imp150 := p.Improvement(phy.HTRate(7, 1), true)
	if imp150 < 0.05 || imp150 > 0.10 {
		t.Errorf("improvement@150 = %.1f%%, want ≈7%%", imp150*100)
	}
	// Paper Figure 1(b): ≈20% at 600 Mbps.
	imp600 := p.Improvement(phy.HTRate(7, 4), true)
	if imp600 < 0.15 || imp600 > 0.25 {
		t.Errorf("improvement@600 = %.1f%%, want ≈20%%", imp600*100)
	}
	// Gain grows with PHY rate (the paper's central observation).
	if imp600 <= imp150 {
		t.Error("improvement must grow with rate")
	}
	// Paper Figure 1(b): ≈8% average for rates < 100 Mbps.
	var sum float64
	var count int
	for _, r := range phy.RatesHT40SGI1() {
		if r.Kbps < 100000 {
			sum += p.Improvement(r, true)
			count++
		}
	}
	avg := sum / float64(count)
	if avg < 0.05 || avg > 0.12 {
		t.Errorf("avg improvement <100 Mbps = %.1f%%, want ≈8%%", avg*100)
	}
}

func TestEfficiencyFallsWithRate(t *testing.T) {
	// Paper Figure 1: achievable TCP throughput is a progressively
	// smaller fraction of the PHY rate.
	p := Defaults()
	prev := 1.0
	for _, r := range phy.RatesA {
		eff := p.Goodput80211a(r, ModeTCP) / r.Mbps()
		if eff >= prev {
			t.Errorf("efficiency at %v = %.2f did not fall (prev %.2f)", r, eff, prev)
		}
		prev = eff
	}
}

func TestMonotoneInRate(t *testing.T) {
	p := Defaults()
	for _, mode := range []Mode{ModeTCP, ModeHACK, ModeUDP} {
		prev := 0.0
		for _, r := range phy.RatesA {
			g := p.Goodput80211a(r, mode)
			if g <= prev {
				t.Errorf("mode %d: goodput not increasing at %v", mode, r)
			}
			prev = g
		}
		prev = 0.0
		for _, r := range phy.RatesHT40SGI1() {
			g := p.Goodput80211n(r, mode)
			if g <= prev {
				t.Errorf("mode %d: HT goodput not increasing at %v", mode, r)
			}
			prev = g
		}
	}
}

func TestHACKBetween(t *testing.T) {
	p := Defaults()
	for _, r := range phy.RatesHT40SGI1() {
		tcp := p.Goodput80211n(r, ModeTCP)
		hck := p.Goodput80211n(r, ModeHACK)
		udp := p.Goodput80211n(r, ModeUDP)
		if !(tcp < hck && hck < udp) {
			t.Errorf("%v: want TCP (%.1f) < HACK (%.1f) < UDP (%.1f)", r, tcp, hck, udp)
		}
	}
}

func TestParamsOverrides(t *testing.T) {
	// No delayed ACK doubles ACK traffic: stock TCP loses more, so
	// HACK's edge grows (the paper's footnote 1).
	d := Defaults()
	nd := Defaults()
	nd.DelayedAckRatio = 1
	if nd.Improvement(phy.RateA54, false) <= d.Improvement(phy.RateA54, false) {
		t.Error("disabling delayed ACK should increase HACK's edge")
	}
	// Unlimited TXOP grows batches at low rates.
	unlim := Defaults()
	unlim.TXOPLimit = -1
	unlim.TXOPLimit = 0 // explicit zero after withDefaults would reset; use direct call
	p := Params{MSS: 1448, DataIPLen: 1500, AckIPLen: 52, CompressedAckLen: 5,
		DelayedAckRatio: 2, TXOPLimit: sim.Second}
	if p.BatchSize(phy.HTRate(0, 1)) <= d.BatchSize(phy.HTRate(0, 1)) {
		t.Error("longer TXOP should allow bigger batches at 15 Mbps")
	}
}
