// Package analytical computes the closed-form 802.11 MAC capacity
// models behind the paper's Figures 1(a), 1(b) and the "theoretical"
// curves of Figure 12: the goodput of TCP, TCP/HACK, and UDP over
// 802.11a (single frames, immediate ACKs) and 802.11n (A-MPDU
// aggregation, Block ACKs) as a function of PHY rate.
//
// The models mirror §2.1 of the paper: every medium acquisition costs
// an arbitration IFS plus the mean backoff (CWmin/2 slots), each data
// unit carries preamble and header overhead, and the TCP receiver
// produces one delayed ACK per two data segments. TCP/HACK removes the
// TCP-ACK acquisitions entirely, lengthening each link-layer ACK by
// the compressed ACK bytes instead. Collisions, retransmissions, and
// TCP dynamics are deliberately absent (the simulator supplies them);
// the paper makes the same simplification, which is why its simulated
// goodputs run below these curves (Figure 12).
package analytical

import (
	"tcphack/internal/mac"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// Params fixes the workload and protocol constants shared by the
// models.
type Params struct {
	// MSS is the TCP payload per data segment (default 1448: 1500-byte
	// IP MTU minus 40 TCP/IP and 12 timestamp-option bytes).
	MSS int
	// DataIPLen is the IP length of one data packet (default 1500).
	DataIPLen int
	// AckIPLen is the IP length of one TCP ACK (default 52).
	AckIPLen int
	// CompressedAckLen is HACK's per-ACK compressed size in bytes
	// (default 5: ~4 paper bytes plus the 8-bit MSN anchor amortized).
	CompressedAckLen float64
	// DelayedAckRatio is data segments per TCP ACK (default 2).
	DelayedAckRatio int
	// TXOPLimit bounds one PPDU's airtime in aggregated mode
	// (default 4 ms, the paper's setting; 0 = unlimited).
	TXOPLimit sim.Duration
	// AckRate overrides the control-response rate (zero: 802.11 rules).
	AckRate phy.Rate
}

// Defaults returns the paper's parameterization.
func Defaults() Params {
	return Params{
		MSS:              1448,
		DataIPLen:        1500,
		AckIPLen:         52,
		CompressedAckLen: 5,
		DelayedAckRatio:  2,
		TXOPLimit:        4 * sim.Millisecond,
	}
}

func (p Params) withDefaults() Params {
	d := Defaults()
	if p.MSS == 0 {
		p.MSS = d.MSS
	}
	if p.DataIPLen == 0 {
		p.DataIPLen = d.DataIPLen
	}
	if p.AckIPLen == 0 {
		p.AckIPLen = d.AckIPLen
	}
	if p.CompressedAckLen == 0 {
		p.CompressedAckLen = d.CompressedAckLen
	}
	if p.DelayedAckRatio == 0 {
		p.DelayedAckRatio = d.DelayedAckRatio
	}
	if p.TXOPLimit == 0 {
		p.TXOPLimit = d.TXOPLimit
	}
	return p
}

func (p Params) ackRate(data phy.Rate) phy.Rate {
	if !p.AckRate.IsZero() {
		return p.AckRate
	}
	return phy.ControlResponseRate(data)
}

// acquisition returns the mean medium-acquisition overhead: AIFS (or
// DIFS) plus the average initial backoff.
func acquisition(rate phy.Rate) sim.Duration {
	ifs := phy.DIFS
	if rate.HT {
		ifs = phy.AIFS
	}
	return ifs + phy.SlotTime*phy.CWMin/2
}

// Frame sizes mirroring internal/mac.
const (
	ackLen             = 14
	blockAckLen        = 32
	legacyDataOverhead = 36
	htDataOverhead     = 38
	ampduDelimiter     = 4
)

func mpduLen(ipLen int, ht bool) int {
	if ht {
		return ipLen + htDataOverhead
	}
	return ipLen + legacyDataOverhead
}

func subframe(n int) int { return ampduDelimiter + (n+3)&^3 }

// BatchSize returns the A-MPDU size in MPDUs for data packets at rate
// under the 64 KB and TXOP limits — 42 at 150 Mbps, shrinking at low
// rates where the 4 ms TXOP bites (paper §4.3).
func (p Params) BatchSize(rate phy.Rate) int {
	p = p.withDefaults()
	budget := 65535
	if p.TXOPLimit > 0 {
		if c := phy.PayloadCapacity(rate, p.TXOPLimit); c < budget {
			budget = c
		}
	}
	n := budget / subframe(mpduLen(p.DataIPLen, true))
	if n > mac.BAWindowSize {
		n = mac.BAWindowSize
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Mode selects the protocol whose capacity is modelled.
type Mode int

const (
	// ModeTCP is stock TCP over the stock MAC.
	ModeTCP Mode = iota
	// ModeHACK is TCP with HACK carrying all TCP ACKs in LL ACKs.
	ModeHACK
	// ModeUDP is unidirectional UDP (the capacity upper bound).
	ModeUDP
)

// Goodput80211a returns the application-level goodput in Mbps for a
// single flow at the given legacy rate.
func (p Params) Goodput80211a(rate phy.Rate, mode Mode) float64 {
	p = p.withDefaults()
	acq := acquisition(rate)
	ctrl := p.ackRate(rate)
	data := phy.FrameDuration(rate, mpduLen(p.DataIPLen, false))
	llack := phy.FrameDuration(ctrl, ackLen)
	dataCycle := acq + data + phy.SIFS + llack

	switch mode {
	case ModeUDP:
		payload := float64(p.DataIPLen-28) * 8 // IP+UDP headers removed
		return payload / dataCycle.Seconds() / 1e6
	case ModeTCP:
		k := p.DelayedAckRatio
		tcpAck := phy.FrameDuration(rate, mpduLen(p.AckIPLen, false))
		ackCycle := acq + tcpAck + phy.SIFS + llack
		total := sim.Duration(k)*dataCycle + ackCycle
		return float64(k*p.MSS) * 8 / total.Seconds() / 1e6
	case ModeHACK:
		// One of every k LL ACKs is lengthened by one compressed ACK.
		k := p.DelayedAckRatio
		hackAck := phy.FrameDuration(ctrl, ackLen+int(p.CompressedAckLen+0.5))
		total := sim.Duration(k)*(acq+data+phy.SIFS) + sim.Duration(k-1)*llack + hackAck
		return float64(k*p.MSS) * 8 / total.Seconds() / 1e6
	}
	panic("analytical: unknown mode")
}

// Goodput80211n returns the application-level goodput in Mbps for a
// single flow at the given HT rate with A-MPDU aggregation and Block
// ACKs.
func (p Params) Goodput80211n(rate phy.Rate, mode Mode) float64 {
	p = p.withDefaults()
	acq := acquisition(rate)
	ctrl := p.ackRate(rate)
	n := p.BatchSize(rate)
	ampdu := phy.FrameDuration(rate, n*subframe(mpduLen(p.DataIPLen, true)))
	ba := phy.FrameDuration(ctrl, blockAckLen)
	dataCycle := acq + ampdu + phy.SIFS + ba

	switch mode {
	case ModeUDP:
		payload := float64(n*(p.DataIPLen-28)) * 8
		return payload / dataCycle.Seconds() / 1e6
	case ModeTCP:
		nAcks := (n + p.DelayedAckRatio - 1) / p.DelayedAckRatio
		ackAMPDU := phy.FrameDuration(rate, nAcks*subframe(mpduLen(p.AckIPLen, true)))
		ackCycle := acq + ackAMPDU + phy.SIFS + ba
		total := dataCycle + ackCycle
		return float64(n*p.MSS) * 8 / total.Seconds() / 1e6
	case ModeHACK:
		nAcks := (n + p.DelayedAckRatio - 1) / p.DelayedAckRatio
		baHack := phy.FrameDuration(ctrl, blockAckLen+int(float64(nAcks)*p.CompressedAckLen+0.5))
		total := acq + ampdu + phy.SIFS + baHack
		return float64(n*p.MSS) * 8 / total.Seconds() / 1e6
	}
	panic("analytical: unknown mode")
}

// Improvement returns HACK's fractional goodput gain over stock TCP at
// the given rate (e.g. 0.07 = 7%).
func (p Params) Improvement(rate phy.Rate, ht bool) float64 {
	if ht {
		s := p.Goodput80211n(rate, ModeTCP)
		h := p.Goodput80211n(rate, ModeHACK)
		return (h - s) / s
	}
	s := p.Goodput80211a(rate, ModeTCP)
	h := p.Goodput80211a(rate, ModeHACK)
	return (h - s) / s
}
