package scenario

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
	"tcphack/internal/trace"
)

// Option mutates a node.Config under construction.
type Option func(*node.Config)

// New builds a configuration from options, starting from the shared
// baseline every preset assumes: seed 1, one client, and the paper's
// 126-packet AP queue. Remaining zero fields pick up node.Config's own
// defaults when the network is assembled.
func New(opts ...Option) node.Config {
	cfg := node.Config{
		Seed:         1,
		Clients:      1,
		APQueueLimit: 126,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// With80211n applies the paper's §4.3 simulation preset: 150 Mbps
// 802.11n (MCS 7, one stream) with A-MPDU aggregation under a 4 ms
// TXOP, 24 Mbps link-layer ACKs, and a 500 Mbps / 1 ms wired backhaul
// to the TCP server.
func With80211n() Option {
	return func(c *node.Config) {
		c.DataRate = phy.HTRate(7, 1)
		c.AckRate = phy.RateA24
		c.Aggregation = true
		c.TXOPLimit = 4 * sim.Millisecond
		c.WireRateKbps = 500_000
		c.WireDelay = sim.Millisecond
	}
}

// WithSoRa applies the paper's §4.1 testbed preset: 802.11a at
// 54 Mbps, the AP as TCP sender (ad-hoc mode, no wire), and SoRa's
// 37 µs late link-layer ACKs with a widened ACK timeout.
func WithSoRa() Option {
	return func(c *node.Config) {
		c.DataRate = phy.RateA54
		c.AckRate = phy.Rate{}
		c.Aggregation = false
		c.TXOPLimit = 0
		c.WireRateKbps = 0
		c.WireDelay = 0
		c.AckTurnaround = 37 * sim.Microsecond
		c.AckTimeoutSlack = 80 * sim.Microsecond
	}
}

// WithMode selects the HACK ACK-holding policy (hack.ModeOff = stock).
func WithMode(m hack.Mode) Option {
	return func(c *node.Config) { c.Mode = m }
}

// WithClients sets the number of WiFi clients.
func WithClients(n int) Option {
	return func(c *node.Config) { c.Clients = n }
}

// WithSeed sets the RNG seed.
func WithSeed(s int64) Option {
	return func(c *node.Config) { c.Seed = s }
}

// WithRate sets the PHY data rate, leaving the LL ACK rate to the
// 802.11 control-response rules unless WithAckRate also applies.
func WithRate(r phy.Rate) Option {
	return func(c *node.Config) {
		c.DataRate = r
		c.AckRate = phy.Rate{}
	}
}

// WithAckRate pins the link-layer ACK rate.
func WithAckRate(r phy.Rate) Option {
	return func(c *node.Config) { c.AckRate = r }
}

// WithRateAdapter selects per-station rate adaptation by spec:
// "fixed" (pin the scenario's data rate — the default), "fixed:<rate>"
// (pin a named rate, e.g. "fixed:mcs3"), "ideal" (negligible-FER
// threshold oracle from the channel's SNR→rate tables), "argmax"
// (expected-goodput argmax oracle over the same tables — the regime
// that needs the loss-resilient HACK recovery), or "minstrel"
// (sampling adapter).
// Invalid specs panic when the network is assembled; CLIs should
// pre-validate with mac.ParseAdapterSpec.
func WithRateAdapter(spec string) Option {
	return func(c *node.Config) { c.RateAdapter = spec }
}

// addErrorModel layers em onto any model already installed: multiple
// loss sources act as independent processes (channel.Independent), so
// e.g. WithSNR + WithUniformLoss simulate both.
func addErrorModel(c *node.Config, em channel.ErrorModel) {
	if c.Err == nil {
		c.Err = em
		return
	}
	c.Err = channel.Independent(c.Err, em)
}

// WithUniformLoss applies a uniform per-frame loss probability on
// every link (0 ≤ p < 1), composing with any error model already
// installed.
func WithUniformLoss(p float64) Option {
	return func(c *node.Config) { addErrorModel(c, &channel.FixedLoss{Default: p}) }
}

// WithSNR fixes the channel SNR in dB via the physical error model
// (the Figure 11 x-axis), overriding geometry and composing with any
// error model already installed.
func WithSNR(db float64) Option {
	return func(c *node.Config) {
		em := channel.DefaultSNRModel()
		snr := db
		em.SNROverrideDB = &snr
		addErrorModel(c, em)
	}
}

// WithBurstyLoss layers a Gilbert-Elliott two-state bursty loss
// process onto the channel: the link flips between a good state (loss
// pGood) and a bad state (loss pBad) with per-frame transition
// probabilities gToB and bToG. The model is forked per network (see
// channel.ForkableErrorModel), so the option is campaign-safe and can
// join sweep grids.
func WithBurstyLoss(gToB, bToG, pGood, pBad float64) Option {
	return func(c *node.Config) {
		addErrorModel(c, &channel.GilbertElliott{
			PGoodToBad: gToB, PBadToGood: bToG,
			LossGood: pGood, LossBad: pBad,
		})
	}
}

// WithErrorModel installs an arbitrary channel error model, replacing
// whatever was there (the absolute form; the loss options above
// compose instead).
func WithErrorModel(em channel.ErrorModel) Option {
	return func(c *node.Config) { c.Err = em }
}

// WithTopology places client i at the returned position (metres from
// the AP at the origin). The default is a 10 m circle.
func WithTopology(fn func(i int) channel.Pos) Option {
	return func(c *node.Config) { c.ClientPos = fn }
}

// GridPos returns the position of client i on a √n×√n row-major grid
// with the given spacing in metres, centred on the AP at the origin.
// It is the dense-deployment topology the N-scaling benchmarks use:
// unlike the default 10 m circle, station density grows with n, so
// every station stays within carrier-sense range of the rest.
func GridPos(n int, spacing float64, i int) channel.Pos {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	off := spacing * float64(side-1) / 2
	return channel.Pos{
		X: spacing*float64(i%side) - off,
		Y: spacing*float64(i/side) - off,
	}
}

// WithGrid configures n clients on a √n×√n grid with the given spacing
// in metres (see GridPos) — the topology for large-N scaling runs.
func WithGrid(n int, spacing float64) Option {
	return func(c *node.Config) {
		c.Clients = n
		c.ClientPos = func(i int) channel.Pos { return GridPos(n, spacing, i) }
	}
}

// WithWire sets the server—AP wired backhaul (rateKbps 0 disables the
// server; the AP then hosts the TCP senders).
func WithWire(rateKbps int, delay sim.Duration) Option {
	return func(c *node.Config) {
		c.WireRateKbps = rateKbps
		c.WireDelay = delay
	}
}

// WithConfig overlays fn's arbitrary edits — the escape hatch for
// fields without a dedicated option.
func WithConfig(fn func(*node.Config)) Option {
	return Option(fn)
}

// WithTracer attaches tr to every layer of the assembled network
// (channel, MAC, HACK driver, TCP). Tracing is determinism-neutral:
// the run's RNG streams, event order, and results are byte-identical
// with or without a tracer attached.
func WithTracer(tr trace.Tracer) Option {
	return func(c *node.Config) { c.Tracer = tr }
}

// Entry is one named scenario in the registry.
type Entry struct {
	Name string
	Desc string
	// Workload names the entry's traffic pattern in
	// campaign.NamedWorkload's vocabulary ("download", "upload",
	// "mixed"); empty means the default download workload. The
	// scenario config itself only shapes the network — the workload
	// kind rides along so CLIs start the right flows.
	Workload string
	opts     []Option
}

// Config builds the entry's configuration, applying extra options on
// top (e.g. a client count or seed).
func (e Entry) Config(extra ...Option) node.Config {
	return New(append(append([]Option{}, e.opts...), extra...)...)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Entry{}
)

// Register names a scenario built from opts. Registering an existing
// name replaces it.
func Register(name, desc string, opts ...Option) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = Entry{Name: name, Desc: desc, opts: opts}
}

// RegisterWorkload names a scenario whose traffic pattern differs from
// the default download workload — workload is "upload" or "mixed" (see
// Entry.Workload). Registering an existing name replaces it.
func RegisterWorkload(name, desc, workload string, opts ...Option) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = Entry{Name: name, Desc: desc, Workload: workload, opts: opts}
}

// WorkloadOf returns the named scenario's workload kind ("" for the
// default download workload or an unknown name).
func WorkloadOf(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].Workload
}

// Lookup returns the named scenario entry.
func Lookup(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names lists registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns registered entries sorted by name.
func All() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	entries := make([]Entry, 0, len(registry))
	for _, e := range registry {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

func init() {
	presets := []struct {
		prefix, desc string
		opt          func() Option
	}{
		{"ht150", "150 Mbps 802.11n with A-MPDU aggregation and wired backhaul (§4.3)", With80211n},
		{"sora", "802.11a @54 Mbps SoRa testbed model, AP-resident sender (§4.1)", WithSoRa},
	}
	modes := []struct {
		suffix string
		mode   hack.Mode
	}{
		{"stock", hack.ModeOff},
		{"moredata", hack.ModeMoreData},
		{"opportunistic", hack.ModeOpportunistic},
		{"timer", hack.ModeTimer},
	}
	for _, p := range presets {
		for _, m := range modes {
			Register(
				fmt.Sprintf("%s-%s", p.prefix, m.suffix),
				fmt.Sprintf("%s, HACK mode %v", p.desc, m.mode),
				p.opt(), WithMode(m.mode),
			)
		}
	}
	// Traffic-direction variants of the 802.11n scenario: the paper's
	// motivating upload case (wireless backup to LAN storage, §3.1)
	// and a mixed up/down workload. Mode stays stock so -sweep-modes
	// and WithMode choose the protocol.
	RegisterWorkload("ht150-upload",
		"150 Mbps 802.11n, clients uploading to the wired server (wireless backup, §3.1)",
		"upload", With80211n())
	RegisterWorkload("ht150-mixed",
		"150 Mbps 802.11n, mixed workload: clients alternate download/upload",
		"mixed", With80211n())
	// Rate-adaptive variants of the 802.11n scenarios: the same preset
	// with a per-station adapter instead of the pinned 150 Mbps rate.
	for _, m := range []struct {
		suffix string
		mode   hack.Mode
	}{{"stock", hack.ModeOff}, {"moredata", hack.ModeMoreData}} {
		for _, a := range []string{"minstrel", "ideal", "argmax"} {
			Register(
				fmt.Sprintf("ht150-%s-%s", m.suffix, a),
				fmt.Sprintf("802.11n with %s rate adaptation, HACK mode %v", a, m.mode),
				With80211n(), WithMode(m.mode), WithRateAdapter(a),
			)
		}
	}
}
