// Package scenario builds simulation configurations compositionally.
// A scenario is a node.Config assembled from functional options — a
// PHY/topology preset refined by per-axis options — plus a
// process-wide registry that names the paper's scenarios so CLIs and
// tests can enumerate and look them up by string.
//
// # Builder options
//
// Options apply in order: later options override earlier ones, so a
// preset can be specialized freely:
//
//	cfg := scenario.New(scenario.With80211n(), scenario.WithMode(hack.ModeMoreData),
//		scenario.WithClients(4), scenario.WithSeed(7))
//
// The presets are With80211n (the paper's §4.3 ns-3 setup: 150 Mbps
// 802.11n, A-MPDU aggregation, wired backhaul) and WithSoRa (the §4.1
// software-radio testbed: 802.11a at 54 Mbps, AP-resident sender,
// late link-layer ACKs). Per-axis options:
//
//   - WithMode: the HACK ACK-holding policy (hack.ModeOff = stock).
//   - WithClients, WithSeed, WithTopology, WithWire: topology and
//     repetition knobs.
//   - WithRate / WithAckRate: PHY rates. WithRate releases the LL ACK
//     rate back to the 802.11 control-response rules.
//   - WithRateAdapter: per-station rate adaptation — "fixed" (pin the
//     scenario rate), "fixed:<rate>", "ideal" (SNR oracle), or
//     "minstrel" (sampling adapter). See mac.RateAdapter.
//   - WithUniformLoss, WithSNR, WithBurstyLoss: channel error models.
//     These compose — each layers onto whatever model is already
//     installed as independent loss processes — while WithErrorModel
//     replaces the model outright.
//   - WithConfig: the escape hatch for fields without an option.
//
// # Registry
//
// Register/Lookup/Names/All maintain the named-scenario registry. The
// built-ins cover each preset × HACK mode ("ht150-moredata",
// "sora-stock", ...) plus rate-adaptive 802.11n variants
// ("ht150-moredata-minstrel", "ht150-stock-ideal", ...). Entry.Config
// re-applies the registered options, so extra options specialize a
// named scenario without mutating the registry.
//
// # Determinism
//
// A scenario is pure data: building one performs no I/O and draws no
// randomness. All randomness is deferred to network construction
// (node.New), which derives every stochastic subsystem — MAC
// backoffs, channel noise, bursty-loss chains, Minstrel probe
// schedules — from the single configured Seed. Equal configurations
// therefore simulate bit-identically, and a configuration value can
// seed many concurrent simulations (see internal/campaign).
package scenario
