package scenario

import (
	"reflect"
	"testing"

	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// TestWith80211nMatchesLegacyConstructor pins the preset to the exact
// configuration the old Scenario80211n constructor produced,
// field-for-field.
func TestWith80211nMatchesLegacyConstructor(t *testing.T) {
	got := New(With80211n(), WithMode(hack.ModeMoreData), WithClients(4))
	want := node.Config{
		Seed:         1,
		Mode:         hack.ModeMoreData,
		DataRate:     phy.HTRate(7, 1),
		AckRate:      phy.RateA24,
		Aggregation:  true,
		TXOPLimit:    4 * sim.Millisecond,
		Clients:      4,
		APQueueLimit: 126,
		WireRateKbps: 500_000,
		WireDelay:    sim.Millisecond,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v\nwant %+v", got, want)
	}
}

// TestWithSoRaMatchesLegacyConstructor pins the preset to the old
// ScenarioSoRa constructor, field-for-field.
func TestWithSoRaMatchesLegacyConstructor(t *testing.T) {
	got := New(WithSoRa(), WithMode(hack.ModeOff), WithClients(2))
	want := node.Config{
		Seed:            1,
		Mode:            hack.ModeOff,
		DataRate:        phy.RateA54,
		Clients:         2,
		AckTurnaround:   37 * sim.Microsecond,
		AckTimeoutSlack: 80 * sim.Microsecond,
		APQueueLimit:    126,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v\nwant %+v", got, want)
	}
}

// TestOptionOrder: later options override earlier ones, so presets can
// layer (ht150 base specialized to SoRa, a different seed, etc.).
func TestOptionOrder(t *testing.T) {
	cfg := New(With80211n(), WithSoRa(), WithSeed(42))
	if cfg.DataRate != phy.RateA54 {
		t.Errorf("later preset did not win: rate %v", cfg.DataRate)
	}
	if cfg.WireRateKbps != 0 || cfg.Aggregation {
		t.Errorf("WithSoRa did not clear 802.11n fields: %+v", cfg)
	}
	if cfg.Seed != 42 {
		t.Errorf("seed %d, want 42", cfg.Seed)
	}

	cfg = New(WithSeed(7), WithSeed(8))
	if cfg.Seed != 8 {
		t.Errorf("seed %d, want last-wins 8", cfg.Seed)
	}
}

func TestPerAxisOptions(t *testing.T) {
	pos := func(i int) channel.Pos { return channel.Pos{X: float64(i)} }
	cfg := New(
		WithRate(phy.HTRate(3, 2)),
		WithAckRate(phy.RateA24),
		WithUniformLoss(0.05),
		WithTopology(pos),
		WithWire(100_000, 2*sim.Millisecond),
		WithConfig(func(c *node.Config) { c.RetryLimit = 4 }),
	)
	if cfg.DataRate != phy.HTRate(3, 2) || cfg.AckRate != phy.RateA24 {
		t.Errorf("rates: %v / %v", cfg.DataRate, cfg.AckRate)
	}
	fl, ok := cfg.Err.(*channel.FixedLoss)
	if !ok || fl.Default != 0.05 {
		t.Errorf("uniform loss not installed: %#v", cfg.Err)
	}
	if cfg.ClientPos(3).X != 3 {
		t.Error("topology not installed")
	}
	if cfg.WireRateKbps != 100_000 || cfg.WireDelay != 2*sim.Millisecond {
		t.Errorf("wire: %d/%v", cfg.WireRateKbps, cfg.WireDelay)
	}
	if cfg.RetryLimit != 4 {
		t.Error("WithConfig escape hatch not applied")
	}

	cfg = New(WithSNR(17))
	em, ok := cfg.Err.(*channel.SNRModel)
	if !ok || em.SNROverrideDB == nil || *em.SNROverrideDB != 17 {
		t.Errorf("SNR override not installed: %#v", cfg.Err)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d registered scenarios: %v", len(names), names)
	}
	for _, want := range []string{"ht150-stock", "ht150-moredata", "sora-stock", "sora-moredata"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("missing built-in scenario %q (have %v)", want, names)
		}
	}
	// Rate-adaptive variants carry the adapter spec.
	for _, want := range []string{"ht150-moredata-minstrel", "ht150-moredata-ideal",
		"ht150-stock-minstrel", "ht150-stock-ideal"} {
		e, ok := Lookup(want)
		if !ok {
			t.Errorf("missing rate-adaptive scenario %q", want)
			continue
		}
		cfg := e.Config()
		if cfg.RateAdapter == "" || cfg.RateAdapter == "fixed" {
			t.Errorf("%s: adapter spec not set (%q)", want, cfg.RateAdapter)
		}
	}
	if cfg := New(With80211n(), WithRateAdapter("minstrel")); cfg.RateAdapter != "minstrel" {
		t.Errorf("WithRateAdapter not applied: %q", cfg.RateAdapter)
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("lookup of unknown name succeeded")
	}

	e, _ := Lookup("ht150-moredata")
	cfg := e.Config(WithClients(10), WithSeed(3))
	if cfg.Mode != hack.ModeMoreData || !cfg.Aggregation {
		t.Errorf("ht150-moredata config wrong: %+v", cfg)
	}
	if cfg.Clients != 10 || cfg.Seed != 3 {
		t.Errorf("extra options not applied: clients=%d seed=%d", cfg.Clients, cfg.Seed)
	}
	// Extra options must not leak back into the registered entry.
	again := e.Config()
	if again.Clients != 1 || again.Seed != 1 {
		t.Errorf("registry entry mutated by extra options: %+v", again)
	}

	// All() is sorted and covers Names().
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All()=%d Names()=%d", len(all), len(names))
	}
	for i, e := range all {
		if e.Name != names[i] {
			t.Errorf("All()[%d]=%q, Names()[%d]=%q", i, e.Name, i, names[i])
		}
		if e.Desc == "" {
			t.Errorf("%q has no description", e.Name)
		}
	}

	Register("test-custom", "test entry", WithSoRa(), WithClients(5))
	defer func() {
		regMu.Lock()
		delete(registry, "test-custom")
		regMu.Unlock()
	}()
	e, ok := Lookup("test-custom")
	if !ok {
		t.Fatal("custom registration not found")
	}
	if cfg := e.Config(); cfg.Clients != 5 || cfg.DataRate != phy.RateA54 {
		t.Errorf("custom entry config: %+v", cfg)
	}
}

// TestWorkloadEntries: the upload and mixed 802.11n scenarios must be
// registered with their workload kinds, and WorkloadOf must expose
// them (empty for download scenarios and unknown names).
func TestWorkloadEntries(t *testing.T) {
	for name, want := range map[string]string{
		"ht150-upload": "upload",
		"ht150-mixed":  "mixed",
	} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if e.Workload != want {
			t.Errorf("%s workload = %q, want %q", name, e.Workload, want)
		}
		if got := WorkloadOf(name); got != want {
			t.Errorf("WorkloadOf(%s) = %q, want %q", name, got, want)
		}
		cfg := e.Config()
		if !cfg.Aggregation || cfg.Mode != hack.ModeOff {
			t.Errorf("%s config: want stock-mode 802.11n preset, got %+v", name, cfg)
		}
	}
	if got := WorkloadOf("ht150-moredata"); got != "" {
		t.Errorf("WorkloadOf(ht150-moredata) = %q, want empty", got)
	}
	if got := WorkloadOf("no-such-scenario"); got != "" {
		t.Errorf("WorkloadOf(unknown) = %q, want empty", got)
	}
}
