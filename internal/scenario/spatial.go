package scenario

import (
	"math"
	"sort"

	"tcphack/internal/channel"
	"tcphack/internal/node"
)

// WithGeometry installs a spatial PHY configuration on the medium
// (per-pair path loss, per-receiver carrier sense, SINR capture). Nil
// restores the scalar collision-domain channel.
func WithGeometry(g *channel.Geometry) Option {
	return func(c *node.Config) { c.Geometry = g }
}

// WithPathLoss switches the medium to the spatial PHY with the default
// geometry: the paper's indoor log-distance path-loss constants, a
// -82 dBm carrier-sense threshold and delivery floor, and ideal
// capture (≈51.5 m sense/delivery range).
func WithPathLoss() Option {
	return WithGeometry(channel.DefaultGeometry())
}

// WithCSThreshold sets the spatial PHY's energy-detect carrier-sense
// threshold in dBm, installing the default geometry first if none is
// configured yet. Raising it shrinks the deferral footprint (more
// spatial reuse, more hidden terminals); lowering it widens deferral
// (more exposed terminals).
func WithCSThreshold(dbm float64) Option {
	return func(c *node.Config) {
		if c.Geometry == nil {
			c.Geometry = channel.DefaultGeometry()
		} else {
			g := *c.Geometry
			c.Geometry = &g
		}
		c.Geometry.CSThresholdDBm = dbm
	}
}

// WithPositions pins the AP and every client to explicit coordinates
// (metres), setting the client count to len(clients). Combine with
// WithPathLoss to make the geometry matter.
func WithPositions(ap channel.Pos, clients ...channel.Pos) Option {
	pts := append([]channel.Pos(nil), clients...)
	return func(c *node.Config) {
		c.APPos = ap
		c.Clients = len(pts)
		c.ClientPos = func(i int) channel.Pos { return pts[i] }
	}
}

// WithBSSLayout replaces the single-BSS star with the given BSS specs,
// all contending on one medium. Specs with zero Clients inherit the
// scenario's client count (so a campaign's clients axis scales every
// BSS together).
func WithBSSLayout(specs ...node.BSSSpec) Option {
	layout := append([]node.BSSSpec(nil), specs...)
	return func(c *node.Config) { c.BSSs = append([]node.BSSSpec(nil), layout...) }
}

// clusterPos places clients on a small circle of the given radius
// around a cluster center — the client layout for the canonical
// two-BSS topologies.
func clusterPos(center channel.Pos, radius float64, n, i int) channel.Pos {
	angle := 2 * math.Pi * float64(i) / float64(n)
	return channel.Pos{
		X: center.X + radius*math.Cos(angle),
		Y: center.Y + radius*math.Sin(angle),
	}
}

// clusteredBSS builds a BSSSpec whose clients sit on a 3 m circle
// around center. Clients stays 0 so the scenario/campaign client count
// applies per BSS.
func clusteredBSS(ap, center channel.Pos) node.BSSSpec {
	return node.BSSSpec{
		APPos: ap,
		ClientPos: func(i int) channel.Pos {
			// The circle size only needs every client near its cluster;
			// n in the angle just spreads them, so a fixed modulus keeps
			// the closure independent of the final client count.
			return clusterPos(center, 3, 8, i%8)
		},
	}
}

// Topology registry: named position/BSS layouts that campaigns sweep
// as the "topology" axis.
var topoRegistry = map[string]topoEntry{}

type topoEntry struct {
	desc string
	opts []Option
}

// RegisterTopology names a topology built from opts (position/BSS/
// geometry options). Registering an existing name replaces it.
func RegisterTopology(name, desc string, opts ...Option) {
	regMu.Lock()
	defer regMu.Unlock()
	topoRegistry[name] = topoEntry{desc: desc, opts: opts}
}

// TopologyOption returns a single option applying the named topology,
// and whether the name is registered.
func TopologyOption(name string) (Option, bool) {
	regMu.RLock()
	e, ok := topoRegistry[name]
	regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return func(c *node.Config) {
		for _, o := range e.opts {
			o(c)
		}
	}, true
}

// TopologyNames lists registered topology names, sorted.
func TopologyNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(topoRegistry))
	for n := range topoRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Canonical spatial layouts. Under the default geometry the sense/
// delivery range is ≈51.5 m, so:
//
//   - 2bss-hidden: APs 80 m apart (mutually hidden) with client
//     clusters at 25 m and 55 m — each cluster decodes its own AP but
//     the APs cannot sense each other, so their downlink bursts
//     overlap at the clients and collide (the hidden-terminal regime
//     RTS/CTS would fix).
//   - 2bss-overlap: APs 30 m apart — inside carrier-sense range, so
//     the BSSs defer to each other and share airtime politely (the
//     exposed-terminal regime; no extra collisions, but each BSS sees
//     roughly half the medium).
//   - grid-3x3-dense: one BSS, nine clients on a 5 m grid — the dense
//     deployment where everyone senses everyone.
func init() {
	RegisterTopology("default", "scalar channel, legacy star topology")
	RegisterTopology("degenerate",
		"spatial PHY pinned to the scalar channel's semantics (differential oracle)",
		WithGeometry(channel.DegenerateGeometry()))
	RegisterTopology("2bss-hidden",
		"two BSSs 80 m apart, mutually hidden APs, client clusters in the crossfire",
		WithPathLoss(),
		WithBSSLayout(
			clusteredBSS(channel.Pos{}, channel.Pos{X: 25}),
			clusteredBSS(channel.Pos{X: 80}, channel.Pos{X: 55}),
		))
	RegisterTopology("2bss-overlap",
		"two BSSs 30 m apart, inside carrier-sense range, politely sharing airtime",
		WithPathLoss(),
		WithBSSLayout(
			node.BSSSpec{APPos: channel.Pos{}},
			node.BSSSpec{APPos: channel.Pos{X: 30}},
		))
	RegisterTopology("grid-3x3-dense",
		"one BSS, nine clients on a 5 m grid under the spatial PHY",
		WithPathLoss(), WithGrid(9, 5))

	for _, t := range []string{"2bss-hidden", "2bss-overlap", "grid-3x3-dense"} {
		topo, _ := TopologyOption(t)
		Register(t,
			"150 Mbps 802.11n on the spatial PHY, topology "+t,
			With80211n(), topo)
	}
}
