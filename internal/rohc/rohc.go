// Package rohc implements the TCP ACK header compression TCP/HACK
// carries inside link-layer acknowledgments.
//
// The scheme follows RFC 6846 (ROHC-TCP) in structure — per-flow
// contexts holding the static five-tuple and dynamic header fields,
// delta encoding against the context, a master sequence number (MSN)
// for duplicate elimination, and a CRC over the original header to
// validate decompression — with the paper's §3.3.2 simplifications:
//
//   - No Initialize/Refresh packets: contexts are established by
//     observing TCP ACKs that travel natively (uncompressed), which
//     both ends see.
//   - Context IDs are computed independently at each end as the lowest
//     byte of the MD5 hash over the flow five-tuple.
//   - The first compressed ACK in a frame carries its full 8-bit MSN
//     (an A-MPDU can carry 64 packets, so 4 LSBs are not enough);
//     subsequent ACKs carry 4 bits.
//
// A compressed ACK occupies 3 bytes when the flow's cumulative-ACK
// stride and timestamp advance match the learned pattern (the paper's
// "3 bytes if the associated flow transmits a constant payload size"),
// and ~4–6 bytes otherwise.
package rohc

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"

	"tcphack/internal/packet"
)

// CID computes the context identifier for a flow: the lowest byte of
// the MD5 hash over the five-tuple (paper §3.3.2). Both ends compute
// it independently; no negotiation messages are exchanged.
//
// The hash is a per-flow constant, so per-packet paths never call this
// directly: Compressor and Decompressor memoize it per five-tuple (see
// cidCache), computing the MD5 once per flow instead of per packet.
func CID(t packet.FiveTuple) byte {
	var b [13]byte
	copy(b[0:4], t.Src[:])
	copy(b[4:8], t.Dst[:])
	binary.BigEndian.PutUint16(b[8:], t.SrcPort)
	binary.BigEndian.PutUint16(b[10:], t.DstPort)
	b[12] = t.Proto
	sum := md5.Sum(b[:])
	return sum[len(sum)-1]
}

// cidCache memoizes CID per five-tuple. A flow's CID never changes, so
// one MD5 per flow suffices; lookups are a single map probe and
// allocation-free.
type cidCache map[packet.FiveTuple]byte

func (c cidCache) cid(t packet.FiveTuple) byte {
	if id, ok := c[t]; ok {
		return id
	}
	id := CID(t)
	c[t] = id
	return id
}

// crc8Table is the 256-entry lookup table for the ROHC CRC-8
// polynomial, generated at init from the bitwise definition (which
// crc8Bitwise preserves as the golden reference).
var crc8Table = func() (tbl [256]byte) {
	for i := range tbl {
		crc := byte(i)
		for bit := 0; bit < 8; bit++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		tbl[i] = crc
	}
	return tbl
}()

// crc8 implements the ROHC CRC-8 (RFC 5795 §5.3.1.1: polynomial
// x^8 + x^2 + x + 1), computed over the original uncompressed header
// bytes so the decompressor can validate its reconstruction.
// Table-driven; bit-identical to crc8Bitwise.
func crc8(data []byte) byte {
	crc := byte(0xff)
	for _, b := range data {
		crc = crc8Table[crc^b]
	}
	return crc
}

// crc8Bitwise is the direct RFC 5795 §5.3.1.1 shift-register CRC — the
// reference implementation crc8's lookup table is golden-tested
// against.
func crc8Bitwise(data []byte) byte {
	crc := byte(0xff)
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// headerCRC computes the validation CRC over a pure ACK's wire image,
// marshalling into the caller's scratch buffer (retained across calls)
// so the steady-state path performs no allocation.
func headerCRC(p *packet.Packet, scratch *[]byte) byte {
	*scratch = p.MarshalAppend((*scratch)[:0])
	return crc8(*scratch)
}

// Compressed-format flag bits (high nibble of the second byte).
const (
	flagExtMSN      = 0x8 // full 8-bit MSN byte follows
	flagAckExplicit = 0x4 // varint ACK delta follows (else ACK advances by the learned stride)
	flagWinChanged  = 0x2 // 2-byte window follows
	flagOptExt      = 0x1 // options byte follows
)

// Options-byte bits.
const (
	optTS         = 0x80 // timestamps present on this ACK
	optTSExplicit = 0x40 // varint TS deltas follow (else learned strides apply)
	optIPID       = 0x20 // varint IP-ID delta follows (else learned stride applies)
	optSeqChanged = 0x10 // signed varint SEQ delta follows
	optSACKShift  = 2    // bits 3:2 hold the SACK block count (0–3)
	optSACKMask   = 0x0c
	// optIR marks an IR refresh (RFC 6846's Initialize/Refresh, the
	// loss-resilience extension to the paper's §3.3.2 "no IR packets"
	// simplification): every carried field is an absolute value, and
	// the 15-byte static chain (five-tuple, TTL, TOS) follows the
	// options byte. An IR re-establishes the decompressor context from
	// nothing — the first compressed ACK of a flow after any native
	// re-anchor travels in this form, so chain reopening never depends
	// on the order in which natives and link-layer ACKs arrive.
	optIR = 0x02
)

// irStaticLen is the IR static chain: 4+4 addresses, 2+2 ports,
// protocol, TTL, TOS.
const irStaticLen = 15

// context holds the shared compressor/decompressor state for one flow.
// The two ends evolve their contexts identically because they process
// the same sequence of ACKs (natively observed or compressed-delivered,
// duplicates excluded).
type context struct {
	tuple packet.FiveTuple
	ttl   byte
	tos   byte
	ipID  uint16

	seq, ack     uint32
	window       uint16
	tsVal, tsEcr uint32
	hasTS        bool

	ackStride   uint32 // learned cumulative-ACK advance
	lastAckD    uint32
	tsValStride uint32
	lastTSValD  uint32
	tsEcrStride uint32
	lastTSEcrD  uint32
	ipIDStride  uint16 // learned per-packet IP-ID advance (RFC 6846 §6.1.1)
	lastIPIDD   uint16

	msn     uint8 // compressor: last assigned; decompressor: last delivered
	started bool  // decompressor: any compressed ACK delivered yet
	valid   bool  // decompressor: context trusted (cleared on CRC failure)
	// refreshed (compressor): a native re-anchor was absorbed since the
	// last compressed ACK, so the decompressor's context state is
	// unknowable (the native may still be in flight, parked in the
	// peer's reorder buffer, or lost). The next Compress for the flow
	// emits an IR refresh, which re-establishes the context absolutely.
	refreshed bool
}

// learn updates the stride predictors after an ACK with the given
// deltas has been processed. A stride is trusted after two consecutive
// equal non-zero deltas — both ends apply the same rule to the same
// delta sequence, keeping predictors in lockstep.
func (c *context) learn(ackD, tsValD, tsEcrD uint32, ipIDD uint16) {
	if ackD != 0 && ackD == c.lastAckD {
		c.ackStride = ackD
	}
	c.lastAckD = ackD
	if tsValD == c.lastTSValD {
		c.tsValStride = tsValD
	}
	c.lastTSValD = tsValD
	if tsEcrD == c.lastTSEcrD {
		c.tsEcrStride = tsEcrD
	}
	c.lastTSEcrD = tsEcrD
	if ipIDD == c.lastIPIDD {
		c.ipIDStride = ipIDD
	}
	c.lastIPIDD = ipIDD
}

// absorb installs the absolute state of a natively-travelling ACK —
// the IR-equivalent context refresh. Stride predictors reset: they are
// learned from per-packet histories, and the compressor's (every
// compressed ACK) and decompressor's (every delivered ACK) histories
// can differ across a loss. Resetting on every re-anchor puts both
// ends in the same known state; the compressor encodes explicitly
// until the predictors re-lock from the shared chain.
func (c *context) absorb(p *packet.Packet) {
	t := p.TCP
	c.tuple = tupleOf(p)
	c.ttl, c.tos, c.ipID = p.IP.TTL, p.IP.TOS, p.IP.ID
	c.seq, c.ack = t.Seq, t.Ack
	c.window = t.Window
	c.hasTS = t.Opt.HasTimestamps
	c.tsVal, c.tsEcr = t.Opt.TSVal, t.Opt.TSEcr
	c.valid = true
	c.refreshed = true
	c.ackStride, c.lastAckD = 0, 0
	c.tsValStride, c.lastTSValD = 0, 0
	c.tsEcrStride, c.lastTSEcrD = 0, 0
	c.ipIDStride, c.lastIPIDD = 0, 0
}

func tupleOf(p *packet.Packet) packet.FiveTuple {
	t, _ := p.Tuple()
	return t
}

// Compressor turns pure TCP ACKs into compressed representations.
type Compressor struct {
	contexts map[byte]*context
	cids     cidCache
	scratch  []byte // headerCRC marshal buffer
}

// NewCompressor returns an empty compressor.
func NewCompressor() *Compressor {
	return &Compressor{
		contexts: make(map[byte]*context),
		cids:     make(cidCache),
	}
}

// CID returns the context identifier for a flow, memoized per
// five-tuple (the MD5 in the package-level CID runs once per flow).
func (c *Compressor) CID(t packet.FiveTuple) byte { return c.cids.cid(t) }

// Invalidate declares the flow's context damaged: Compress refuses
// the flow (forcing its ACKs onto the native path) until a native ACK
// is Observed, which re-anchors the context absolutely and re-enables
// compression through an IR refresh. It is the compressor-side mirror
// of the decompressor's CRC damage path — the recovery driver itself
// does not need it on resync (the IR refresh already makes reopening
// self-contained); it exists so codec-level tooling and tests can
// force the "regeneration unsafe until a fresh anchor" condition
// explicitly.
func (c *Compressor) Invalidate(t packet.FiveTuple) {
	if ctx, ok := c.contexts[c.cids.cid(t)]; ok && ctx.tuple == t {
		ctx.valid = false
	}
}

// Refresh forces the flow's next compressed ACK into the absolute IR
// form without distrusting the context. The HACK driver's
// opportunistic mode uses it for every registered copy: the mode
// retains nothing across lost link-layer ACKs, so only a
// self-contained encoding survives arbitrary gaps in what the
// decompressor has seen.
func (c *Compressor) Refresh(t packet.FiveTuple) {
	if ctx, ok := c.contexts[c.cids.cid(t)]; ok && ctx.valid && ctx.tuple == t {
		ctx.refreshed = true
	}
}

// ResyncNeeded reports whether any flow context is invalid — i.e. at
// least one flow must re-anchor through a native ACK before compressed
// regeneration is safe again.
func (c *Compressor) ResyncNeeded() bool {
	for _, ctx := range c.contexts {
		if !ctx.valid {
			return true
		}
	}
	return false
}

// shouldAbsorb decides whether a natively-travelling ACK re-anchors a
// context. Both ends apply the same rule, and every absorb forces the
// compressor's next encoding for the flow into the absolute IR form
// (context.refreshed), so a skipped absorb at one end can never fork
// the chain:
//
//   - a missing or damaged context absorbs (bootstrap / §3.4 healing,
//     and the driver's explicit Invalidate on resync);
//   - a valid context owned by a different flow (CID collision) never
//     absorbs — the colliding flow permanently falls back to native
//     ACKs;
//   - a strictly newer cumulative ACK absorbs;
//   - an equal cumulative ACK absorbs only when its IP-ID is strictly
//     newer — a genuinely newer duplicate ACK in a dup-ACK train.
//     Equal-or-older state (the packet just compressed in
//     opportunistic mode, or a stale native released late from the
//     peer's reorder buffer) must NOT re-anchor: regressing the
//     dynamic fields (IP-ID, timestamps) onto an old duplicate would
//     poison every later delta against the live chain.
func (c *context) shouldAbsorb(p *packet.Packet) bool {
	if !c.valid {
		return true
	}
	if c.tuple != tupleOf(p) {
		return false
	}
	if d := int32(p.TCP.Ack - c.ack); d != 0 {
		return d > 0
	}
	return int16(p.IP.ID-c.ipID) > 0
}

// Observe records a TCP ACK that is travelling natively so the
// compression context can re-anchor on it. Call it for every pure ACK
// sent outside of HACK.
//
// Whether or not the native absorbs (a replayed chain tip carries
// state the context already holds), the flow is flagged for an IR
// refresh: the peer's decompressor may absorb this native from an
// older position, so the next compressed ACK must be self-contained
// rather than a delta the peer might misapply.
func (c *Compressor) Observe(p *packet.Packet) {
	if !p.IsTCPAck() {
		return
	}
	cid := c.cids.cid(tupleOf(p))
	ctx, ok := c.contexts[cid]
	if !ok {
		ctx = &context{}
		c.contexts[cid] = ctx
	}
	if !ctx.shouldAbsorb(p) {
		if ctx.valid && ctx.tuple == tupleOf(p) {
			ctx.refreshed = true
		}
		if debugLog != nil {
			debugLog("CNAT-SKIP cid=%d native.ack=%d ctx.ack=%d", cid, p.TCP.Ack, ctx.ack)
		}
		return
	}
	if debugLog != nil {
		debugLog("CNAT-ABSORB cid=%d native.ack=%d ctx.ack=%d", cid, p.TCP.Ack, ctx.ack)
	}
	ctx.absorb(p)
	// The MSN counter deliberately survives the absorb: it must stay
	// monotone for the decompressor's dedup window even when the two
	// ends absorb a given native at different chain positions (the
	// decompressor resets its `started` latch instead, accepting
	// whatever MSN the next compressed ACK carries).
}

// Anchor widens a compressed ACK's master sequence number to the
// 8-bit form (paper §3.4: the first compressed ACK in a link-layer
// ACK carries its full MSN, since an A-MPDU can elicit 64 of them).
// The driver applies it at frame-assembly time to the first ACK of
// each flow in the payload — mirroring the paper's NIC, which widens
// the leading descriptor's MSN when it concatenates the frame.
func Anchor(data []byte, msn uint8) []byte {
	if len(data) < 2 || data[1]>>4&flagExtMSN != 0 {
		// Already anchored (or malformed); return as-is.
		return data
	}
	out := make([]byte, 0, len(data)+1)
	out = append(out, data[0], data[1]|flagExtMSN<<4, msn)
	return append(out, data[2:]...)
}

// AppendAnchor appends data to dst in Anchor's widened form (or
// verbatim when already anchored/malformed), without the intermediate
// allocation — the frame assembler's hot path.
func AppendAnchor(dst, data []byte, msn uint8) []byte {
	if len(data) < 2 || data[1]>>4&flagExtMSN != 0 {
		return append(dst, data...)
	}
	dst = append(dst, data[0], data[1]|flagExtMSN<<4, msn)
	return append(dst, data[2:]...)
}

// IsIR reports whether a single compressed record is an IR refresh —
// the self-contained form carrying the static chain. Observability
// helper (the decompressor makes its own determination inline); a
// malformed record reports false.
func IsIR(data []byte) bool {
	if len(data) < 2 {
		return false
	}
	flags := data[1] >> 4
	if flags&flagOptExt == 0 {
		return false
	}
	i := 2
	if flags&flagExtMSN != 0 {
		i++
	}
	if i > len(data) {
		return false
	}
	if flags&flagAckExplicit != 0 {
		_, n := binary.Uvarint(data[i:])
		if n <= 0 {
			return false
		}
		i += n
	}
	if flags&flagWinChanged != 0 {
		i += 2
	}
	if i >= len(data) {
		return false
	}
	return data[i]&optIR != 0
}

// Compress encodes a pure TCP ACK against its flow context, in the
// compact 4-bit-MSN form; msn is the ACK's full master sequence
// number, which the frame assembler passes to Anchor for the first
// ACK of each flow in a frame. It returns ok=false when the ACK
// cannot travel compressed (no context yet, option shape change, >3
// SACK blocks); such ACKs must travel natively, which establishes the
// context at both ends.
func (c *Compressor) Compress(p *packet.Packet) (data []byte, msn uint8, ok bool) {
	if !p.IsTCPAck() {
		return nil, 0, false
	}
	tuple := tupleOf(p)
	cid := c.cids.cid(tuple)
	ctx, exists := c.contexts[cid]
	if !exists || !ctx.valid || ctx.tuple != tuple {
		return nil, 0, false
	}
	t := p.TCP
	if t.Opt.HasTimestamps != ctx.hasTS && !ctx.refreshed {
		return nil, 0, false // option shape changed; refresh natively
	}

	nSACK := len(t.Opt.SACKBlocks)
	if nSACK > 3 {
		return nil, 0, false // beyond the encodable range; send natively
	}

	if ctx.refreshed {
		// First compressed ACK after a native re-anchor: the
		// decompressor's context state is unknowable (the anchor may be
		// parked in the peer's reorder buffer), so emit a
		// self-contained IR refresh rather than a delta.
		return c.compressIR(p, ctx, cid)
	}

	ctx.msn++
	msn = ctx.msn

	ackD := t.Ack - ctx.ack
	seqD := int64(int32(t.Seq - ctx.seq))
	tsValD := t.Opt.TSVal - ctx.tsVal
	tsEcrD := t.Opt.TSEcr - ctx.tsEcr
	ipIDD := p.IP.ID - ctx.ipID

	var flags byte
	ackImplicit := ctx.ackStride != 0 && ackD == ctx.ackStride
	if !ackImplicit {
		flags |= flagAckExplicit
	}
	if t.Window != ctx.window {
		flags |= flagWinChanged
	}

	var opt byte
	if ctx.hasTS {
		opt |= optTS
		if tsValD != ctx.tsValStride || tsEcrD != ctx.tsEcrStride {
			opt |= optTSExplicit
		}
	}
	if ipIDD != ctx.ipIDStride {
		opt |= optIPID
	}
	if seqD != 0 {
		opt |= optSeqChanged
	}
	opt |= byte(nSACK) << optSACKShift
	if opt != 0 {
		flags |= flagOptExt
	}

	buf := make([]byte, 0, 8)
	buf = append(buf, cid, flags<<4|msn&0x0f)
	var tmp [binary.MaxVarintLen64]byte
	if !ackImplicit {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(ackD))]...)
	}
	if flags&flagWinChanged != 0 {
		buf = append(buf, byte(t.Window>>8), byte(t.Window))
	}
	if flags&flagOptExt != 0 {
		buf = append(buf, opt)
		if opt&optTS != 0 && opt&optTSExplicit != 0 {
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(tsValD))]...)
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(tsEcrD))]...)
		}
		if opt&optIPID != 0 {
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(ipIDD))]...)
		}
		if opt&optSeqChanged != 0 {
			buf = append(buf, tmp[:binary.PutVarint(tmp[:], seqD)]...)
		}
		for _, blk := range t.Opt.SACKBlocks {
			rel := blk[0] - t.Ack
			length := blk[1] - blk[0]
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(rel))]...)
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(length))]...)
		}
	}
	buf = append(buf, headerCRC(p, &c.scratch))
	if debugLog != nil {
		debugLog("COMP cid=%d msn=%d ack=%d seq=%d win=%d tsv=%d tse=%d ipid=%d sack=%d flags=%x opt=%x",
			cid, msn, t.Ack, t.Seq, t.Window, t.Opt.TSVal, t.Opt.TSEcr, p.IP.ID, nSACK, flags, opt)
	}

	// Commit the context only after a successful encode.
	ctx.seq, ctx.ack = t.Seq, t.Ack
	ctx.window = t.Window
	ctx.tsVal, ctx.tsEcr = t.Opt.TSVal, t.Opt.TSEcr
	ctx.ipID = p.IP.ID
	ctx.learn(ackD, tsValD, tsEcrD, ipIDD)
	return buf, msn, true
}

// compressIR encodes p as an IR refresh: every field absolute, static
// chain included, so the decompressor can (re)establish the flow
// context from the frame alone. The compressor commits the same
// absolute state (stride predictors reset) that the IR installs at the
// decompressor, re-synchronizing both ends by construction.
func (c *Compressor) compressIR(p *packet.Packet, ctx *context, cid byte) (data []byte, msn uint8, ok bool) {
	t := p.TCP
	nSACK := len(t.Opt.SACKBlocks)
	ctx.msn++
	msn = ctx.msn

	flags := byte(flagExtMSN | flagAckExplicit | flagWinChanged | flagOptExt)
	opt := byte(optIR) | byte(nSACK)<<optSACKShift | optIPID | optSeqChanged
	if t.Opt.HasTimestamps {
		opt |= optTS | optTSExplicit
	}

	buf := make([]byte, 0, 48)
	buf = append(buf, cid, flags<<4|msn&0x0f, msn)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(t.Ack))]...)
	buf = append(buf, byte(t.Window>>8), byte(t.Window))
	buf = append(buf, opt)
	tuple := tupleOf(p)
	buf = append(buf, tuple.Src[:]...)
	buf = append(buf, tuple.Dst[:]...)
	buf = append(buf, byte(tuple.SrcPort>>8), byte(tuple.SrcPort),
		byte(tuple.DstPort>>8), byte(tuple.DstPort), tuple.Proto,
		p.IP.TTL, p.IP.TOS)
	if opt&optTS != 0 {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(t.Opt.TSVal))]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(t.Opt.TSEcr))]...)
	}
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(p.IP.ID))]...)
	buf = append(buf, tmp[:binary.PutVarint(tmp[:], int64(t.Seq))]...)
	for _, blk := range t.Opt.SACKBlocks {
		rel := blk[0] - t.Ack
		length := blk[1] - blk[0]
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(rel))]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(length))]...)
	}
	buf = append(buf, headerCRC(p, &c.scratch))

	ctx.absorb(p)
	ctx.refreshed = false
	return buf, msn, true
}

// reconstruct builds a pure-ACK packet from absolute header fields —
// the single reconstruction path both the delta decoder and the IR
// installer feed into headerCRC, so the two can never diverge on
// which fields a reconstruction carries. The packet and its TCP
// header share one allocation (reconstruction is the decompressor's
// hot path).
func reconstruct(tuple packet.FiveTuple, tos, ttl byte, ipID uint16,
	seq, ack uint32, window uint16, hasTS bool, tsVal, tsEcr uint32,
	sacks [][2]uint32) *packet.Packet {
	recon := &struct {
		p packet.Packet
		t packet.TCP
	}{
		p: packet.Packet{
			IP: packet.IPv4{
				TOS: tos, TTL: ttl, ID: ipID,
				Protocol: packet.ProtoTCP,
				Src:      tuple.Src, Dst: tuple.Dst,
			},
		},
		t: packet.TCP{
			SrcPort: tuple.SrcPort, DstPort: tuple.DstPort,
			Seq: seq, Ack: ack, Window: window,
			Flags: packet.FlagACK,
		},
	}
	p := &recon.p
	p.TCP = &recon.t
	if hasTS {
		p.TCP.Opt.HasTimestamps = true
		p.TCP.Opt.TSVal, p.TCP.Opt.TSEcr = tsVal, tsEcr
	}
	for _, s := range sacks {
		left := ack + s[0]
		p.TCP.Opt.SACKBlocks = append(p.TCP.Opt.SACKBlocks, [2]uint32{left, left + s[1]})
	}
	return p
}

// Result reports the outcome of decompressing one HACK frame.
type Result struct {
	// Packets are the reconstituted TCP ACKs, in frame order,
	// duplicates excluded.
	Packets []*packet.Packet
	// Duplicates counts ACKs discarded by MSN-based dedup (normal
	// under link-layer retransmission, paper Figure 6).
	Duplicates int
	// Failures counts ACKs dropped because of CRC mismatch or missing
	// context — a context damage event.
	Failures int
	// Failure breakdown (diagnostics).
	FailNoAnchor  int // first-of-flow ACK lacked the 8-bit MSN
	FailNoContext int // no valid context for the CID
	FailCRC       int // reconstruction rejected by the header CRC
}

// Decompressor reconstitutes TCP ACKs from compressed HACK frames.
type Decompressor struct {
	contexts map[byte]*context
	cids     cidCache
	scratch  []byte // headerCRC marshal buffer

	// Per-frame MSN chain (the prevMSN map of Decompress, flattened):
	// prevMSN[cid] is valid for the current frame iff prevEpoch[cid]
	// equals epoch, which bumping epoch invalidates in O(1) per frame.
	prevMSN   [256]uint8
	prevEpoch [256]uint64
	epoch     uint64
}

// NewDecompressor returns an empty decompressor.
func NewDecompressor() *Decompressor {
	return &Decompressor{
		contexts: make(map[byte]*context),
		cids:     make(cidCache),
	}
}

// debugLog, when set, receives decompressor diagnostics (tests only).
var debugLog func(format string, args ...any)

// SetDebugLog installs a diagnostic logger (tests only).
func SetDebugLog(f func(string, ...any)) { debugLog = f }

// Observe records a natively-received TCP ACK, establishing the flow
// context, re-anchoring it on newer state, or restoring it after CRC
// damage. The absorb rule mirrors the compressor's exactly.
func (d *Decompressor) Observe(p *packet.Packet) {
	if !p.IsTCPAck() {
		return
	}
	cid := d.cids.cid(tupleOf(p))
	ctx, ok := d.contexts[cid]
	if !ok {
		ctx = &context{}
		d.contexts[cid] = ctx
	}
	if !ctx.shouldAbsorb(p) {
		if debugLog != nil {
			debugLog("OBS-SKIP cid=%d native.ack=%d ctx.ack=%d valid=%v", cid, p.TCP.Ack, ctx.ack, ctx.valid)
		}
		return
	}
	if debugLog != nil {
		debugLog("OBS-ABSORB cid=%d native.ack=%d ctx.ack=%d wasvalid=%v", cid, p.TCP.Ack, ctx.ack, ctx.valid)
	}
	ctx.absorb(p)
	ctx.msn = 0
	ctx.started = false
}

// Invalidate marks the context for cid as damaged — the decompressor
// itself calls it on a reconstruction CRC mismatch: compressed delta
// ACKs for the flow are dropped (counted as context failures) until a
// native ACK or an IR refresh restores the context. It is exported so
// drivers and tests can declare damage explicitly and probe it via
// ResyncNeeded instead of inferring it from failure counters.
func (d *Decompressor) Invalidate(cid byte) {
	if ctx := d.contexts[cid]; ctx != nil {
		ctx.valid = false
	}
}

// ResyncNeeded reports whether any flow context is damaged and awaiting
// a native re-anchor — the §3.4 condition under which compressed ACKs
// cannot be regenerated and are being dropped.
func (d *Decompressor) ResyncNeeded() bool {
	for _, ctx := range d.contexts {
		if !ctx.valid {
			return true
		}
	}
	return false
}

var (
	errTruncated = errors.New("rohc: truncated compressed frame")
	errVarint    = errors.New("rohc: bad varint")
)

// Decompress parses a HACK frame (a concatenation of compressed ACKs)
// and returns the reconstituted, deduplicated packets. A parse error
// aborts the remainder of the frame (framing is self-delimiting only
// while the stream is intact); per-ACK CRC or context failures skip
// the affected ACK and poison its context until a native refresh.
func (d *Decompressor) Decompress(frame []byte) (Result, error) {
	var res Result
	d.epoch++ // invalidate the previous frame's per-CID MSN chain
	i := 0
	for i < len(frame) {
		n, err := d.one(frame[i:], &res)
		if err != nil {
			return res, fmt.Errorf("at offset %d: %w", i, err)
		}
		i += n
	}
	return res, nil
}

// one parses a single compressed ACK, returning its encoded length.
func (d *Decompressor) one(b []byte, res *Result) (int, error) {
	if len(b) < 3 {
		return 0, errTruncated
	}
	cid := b[0]
	flags := b[1] >> 4
	msnLow := b[1] & 0x0f
	i := 2

	ctx := d.contexts[cid]

	var msn uint8
	haveMSN := true
	if flags&flagExtMSN != 0 {
		if i >= len(b) {
			return 0, errTruncated
		}
		msn = b[i]
		i++
	} else if prev, ok := d.prevMSN[cid], d.prevEpoch[cid] == d.epoch; ok {
		// Reconstruct the full MSN from 4 LSBs against the previous ACK
		// of the same flow in this frame: batch ACKs are consecutive,
		// so snap to the candidate nearest prev+1.
		expected := prev + 1
		msn = expected&0xf0 | msnLow
		if d := int8(msn - expected); d > 8 {
			msn -= 16
		} else if d < -8 {
			msn += 16
		}
	} else {
		// No anchor: the encoder contract (BatchEncoder) was violated
		// or the anchor was unparseable. The ACK cannot be trusted.
		haveMSN = false
	}

	var ackD uint64
	ackExplicit := flags&flagAckExplicit != 0
	if ackExplicit {
		v, n := binary.Uvarint(b[i:])
		if n <= 0 {
			return 0, errVarint
		}
		ackD, i = v, i+n
	}
	var window uint16
	if flags&flagWinChanged != 0 {
		if i+2 > len(b) {
			return 0, errTruncated
		}
		window = uint16(b[i])<<8 | uint16(b[i+1])
		i += 2
	}
	var opt byte
	var tsValD, tsEcrD uint64
	tsExplicit := false
	var ipIDD uint64
	ipIDExplicit := false
	var seqD int64
	var sacks [][2]uint32 // relative (offset, length) pairs
	var ir bool
	var irTuple packet.FiveTuple
	var irTTL, irTOS byte
	if flags&flagOptExt != 0 {
		if i >= len(b) {
			return 0, errTruncated
		}
		opt = b[i]
		i++
		if opt&optIR != 0 {
			ir = true
			if i+irStaticLen > len(b) {
				return 0, errTruncated
			}
			copy(irTuple.Src[:], b[i:i+4])
			copy(irTuple.Dst[:], b[i+4:i+8])
			irTuple.SrcPort = uint16(b[i+8])<<8 | uint16(b[i+9])
			irTuple.DstPort = uint16(b[i+10])<<8 | uint16(b[i+11])
			irTuple.Proto = b[i+12]
			irTTL, irTOS = b[i+13], b[i+14]
			i += irStaticLen
		}
		if opt&optTS != 0 && opt&optTSExplicit != 0 {
			tsExplicit = true
			v, n := binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, errVarint
			}
			tsValD, i = v, i+n
			v, n = binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, errVarint
			}
			tsEcrD, i = v, i+n
		}
		if opt&optIPID != 0 {
			ipIDExplicit = true
			v, n := binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, errVarint
			}
			ipIDD, i = v, i+n
		}
		if opt&optSeqChanged != 0 {
			v, n := binary.Varint(b[i:])
			if n <= 0 {
				return 0, errVarint
			}
			seqD, i = v, i+n
		}
		for k := 0; k < int(opt&optSACKMask>>optSACKShift); k++ {
			rel, n := binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, errVarint
			}
			i += n
			length, n := binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, errVarint
			}
			i += n
			sacks = append(sacks, [2]uint32{uint32(rel), uint32(length)})
		}
	}
	if i >= len(b) {
		return 0, errTruncated
	}
	wantCRC := b[i]
	i++

	if !haveMSN {
		res.Failures++
		res.FailNoAnchor++
		return i, nil
	}
	d.prevMSN[cid] = msn
	d.prevEpoch[cid] = d.epoch

	if ir {
		return i, d.installIR(irFields{
			cid: cid, msn: msn, tuple: irTuple, ttl: irTTL, tos: irTOS,
			ack: uint32(ackD), window: window, hasTS: opt&optTS != 0,
			tsVal: uint32(tsValD), tsEcr: uint32(tsEcrD),
			ipID: uint16(ipIDD), seq: uint32(seqD), sacks: sacks,
			wantCRC: wantCRC,
		}, ctx, res)
	}

	if ctx == nil || !ctx.valid {
		res.Failures++
		res.FailNoContext++
		return i, nil
	}

	// MSN dedup: deliver only ACKs newer than the last delivered one.
	if ctx.started {
		if delta := msn - ctx.msn; delta == 0 || delta >= 128 {
			res.Duplicates++
			return i, nil
		}
	}

	// Reconstruct the full packet from context + deltas.
	if !ackExplicit {
		ackD = uint64(ctx.ackStride)
	}
	if opt&optTS != 0 && !tsExplicit {
		tsValD, tsEcrD = uint64(ctx.tsValStride), uint64(ctx.tsEcrStride)
	}
	if !ipIDExplicit {
		ipIDD = uint64(ctx.ipIDStride)
	}
	if flags&flagWinChanged == 0 {
		window = ctx.window
	}
	p := reconstruct(ctx.tuple, ctx.tos, ctx.ttl, ctx.ipID+uint16(ipIDD),
		ctx.seq+uint32(seqD), ctx.ack+uint32(ackD), window,
		opt&optTS != 0, ctx.tsVal+uint32(tsValD), ctx.tsEcr+uint32(tsEcrD), sacks)

	if debugLog != nil && headerCRC(p, &d.scratch) != wantCRC {
		debugLog("CRCFAIL cid=%d msn=%d ctx.ack=%d recon=[ack=%d seq=%d win=%d tsv=%d tse=%d ipid=%d] strides[ack=%d tsv=%d tse=%d ipid=%d] lasts[%d %d %d %d] flags=%x opt=%x started=%v",
			cid, msn, ctx.ack, p.TCP.Ack, p.TCP.Seq, p.TCP.Window, p.TCP.Opt.TSVal, p.TCP.Opt.TSEcr, p.IP.ID,
			ctx.ackStride, ctx.tsValStride, ctx.tsEcrStride, ctx.ipIDStride,
			ctx.lastAckD, ctx.lastTSValD, ctx.lastTSEcrD, ctx.lastIPIDD, flags, opt, ctx.started)
	}
	if headerCRC(p, &d.scratch) != wantCRC {
		// Context damage: reject and distrust until a native or IR
		// refresh (paper §3.4 — damage must not persist; the flow's
		// next anchor restores synchronization).
		d.Invalidate(cid)
		res.Failures++
		res.FailCRC++
		return i, nil
	}

	ctx.seq, ctx.ack = p.TCP.Seq, p.TCP.Ack
	ctx.window = p.TCP.Window
	ctx.tsVal, ctx.tsEcr = p.TCP.Opt.TSVal, p.TCP.Opt.TSEcr
	ctx.ipID = p.IP.ID
	ctx.learn(uint32(ackD), uint32(tsValD), uint32(tsEcrD), uint16(ipIDD))
	ctx.msn = msn
	ctx.started = true
	if debugLog != nil {
		debugLog("DELIV cid=%d msn=%d ack=%d", cid, msn, p.TCP.Ack)
	}
	res.Packets = append(res.Packets, p)
	return i, nil
}

// irFields carries one parsed IR refresh.
type irFields struct {
	cid          byte
	msn          uint8
	tuple        packet.FiveTuple
	ttl, tos     byte
	ack          uint32
	window       uint16
	hasTS        bool
	tsVal, tsEcr uint32
	ipID         uint16
	seq          uint32
	sacks        [][2]uint32
	wantCRC      byte
}

// installIR applies an IR refresh: reconstruct the ACK from the
// carried absolute values, validate it, and (re)establish the flow
// context — healing a damaged context and bootstrapping a missing one,
// with no dependence on any natively-travelling packet.
func (d *Decompressor) installIR(f irFields, ctx *context, res *Result) error {
	if d.cids.cid(f.tuple) != f.cid {
		// The static chain does not hash to the carried CID: the frame
		// is not self-consistent. Drop the ACK.
		res.Failures++
		res.FailNoContext++
		return nil
	}
	if ctx == nil {
		ctx = &context{}
		d.contexts[f.cid] = ctx
	}
	if ctx.valid && ctx.tuple != f.tuple {
		// CID collision against a live flow: like the native absorb
		// rule, never displace it (the colliding flow stays native).
		res.Failures++
		res.FailNoContext++
		return nil
	}
	if ctx.valid && ctx.started {
		// MSN dedup, same window as the delta path; additionally never
		// regress the cumulative ACK (a stale IR re-ride must not
		// rewind a context that has moved on).
		if delta := f.msn - ctx.msn; delta == 0 || delta >= 128 {
			res.Duplicates++
			return nil
		}
		if int32(f.ack-ctx.ack) < 0 {
			res.Duplicates++
			return nil
		}
	}

	p := reconstruct(f.tuple, f.tos, f.ttl, f.ipID, f.seq, f.ack, f.window,
		f.hasTS, f.tsVal, f.tsEcr, f.sacks)
	if headerCRC(p, &d.scratch) != f.wantCRC {
		// An IR is self-contained, so a CRC mismatch means the frame
		// itself is damaged; the context keeps whatever trust it had.
		res.Failures++
		res.FailCRC++
		return nil
	}

	ctx.absorb(p)
	ctx.msn = f.msn
	ctx.started = true
	if debugLog != nil {
		debugLog("DELIV-IR cid=%d msn=%d ack=%d", f.cid, f.msn, p.TCP.Ack)
	}
	res.Packets = append(res.Packets, p)
	return nil
}
