package rohc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tcphack/internal/packet"
)

// flowGen generates successive pure ACKs of one TCP flow.
type flowGen struct {
	tuple packet.FiveTuple
	seq   uint32
	ack   uint32
	win   uint16
	tsv   uint32
	tse   uint32
	ts    bool
	ipID  uint16
}

func newFlow(ts bool) *flowGen {
	return &flowGen{
		tuple: packet.FiveTuple{
			Src: packet.IP(10, 0, 0, 2), Dst: packet.IP(192, 168, 0, 1),
			SrcPort: 50123, DstPort: 5001, Proto: packet.ProtoTCP,
		},
		seq: 1000, ack: 5000, win: 8192, tsv: 100, tse: 50, ts: ts,
	}
}

func (f *flowGen) ackPkt(ackAdvance uint32) *packet.Packet {
	f.ack += ackAdvance
	f.ipID++
	p := &packet.Packet{
		IP: packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, ID: f.ipID,
			Src: f.tuple.Src, Dst: f.tuple.Dst},
		TCP: &packet.TCP{
			SrcPort: f.tuple.SrcPort, DstPort: f.tuple.DstPort,
			Seq: f.seq, Ack: f.ack, Flags: packet.FlagACK, Window: f.win,
		},
	}
	if f.ts {
		f.tsv++
		f.tse++
		p.TCP.Opt.HasTimestamps = true
		p.TCP.Opt.TSVal, p.TCP.Opt.TSEcr = f.tsv, f.tse
	}
	return p
}

// pair returns a compressor and decompressor that have both observed
// the flow's first native ACK.
func pair(f *flowGen) (*Compressor, *Decompressor) {
	c := NewCompressor()
	d := NewDecompressor()
	native := f.ackPkt(2920)
	c.Observe(native)
	d.Observe(native)
	return c, d
}

// compress1 compresses p as a standalone single-ACK frame (anchored).
func compress1(c *Compressor, p *packet.Packet) ([]byte, bool) {
	data, msn, ok := c.Compress(p)
	if !ok {
		return nil, false
	}
	return Anchor(data, msn), true
}

// frame assembles compressed ACKs into one HACK frame, anchoring the
// first ACK of each flow like the driver does.
type frame struct {
	buf      []byte
	anchored map[byte]bool
}

func newFrame() *frame { return &frame{anchored: make(map[byte]bool)} }

func (fr *frame) add(c *Compressor, p *packet.Packet) bool {
	data, msn, ok := c.Compress(p)
	if !ok {
		return false
	}
	t, _ := p.Tuple()
	cid := CID(t)
	if !fr.anchored[cid] {
		fr.anchored[cid] = true
		data = Anchor(data, msn)
	}
	fr.buf = append(fr.buf, data...)
	return true
}

func sameHeader(a, b *packet.Packet) bool {
	return bytes.Equal(a.Marshal(), b.Marshal())
}

func TestRoundtripSteadyState(t *testing.T) {
	f := newFlow(true)
	c, d := pair(f)
	for i := 0; i < 100; i++ {
		orig := f.ackPkt(2920)
		data, ok := compress1(c, orig)
		if !ok {
			t.Fatalf("ack %d: no context", i)
		}
		res, err := d.Decompress(data)
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if res.Failures != 0 || res.Duplicates != 0 {
			t.Fatalf("ack %d: failures=%d dups=%d", i, res.Failures, res.Duplicates)
		}
		if len(res.Packets) != 1 {
			t.Fatalf("ack %d: %d packets", i, len(res.Packets))
		}
		if !sameHeader(orig, res.Packets[0]) {
			t.Fatalf("ack %d: reconstruction differs\n got %v\nwant %v", i, res.Packets[0], orig)
		}
	}
}

func TestSteadyStateSize(t *testing.T) {
	// Constant stride, no timestamps: once the predictors lock on, the
	// compact (unanchored) form is 3 bytes — the paper's best case.
	// With timestamps the options byte brings it to 4.
	f := newFlow(false)
	c, _ := pair(f)
	var last int
	for i := 0; i < 10; i++ {
		data, _, ok := c.Compress(f.ackPkt(2920))
		if !ok {
			t.Fatal("no context")
		}
		last = len(data)
	}
	if last != 3 {
		t.Errorf("steady-state size (no TS) = %d, want 3", last)
	}

	ft := newFlow(true)
	ct, _ := pair(ft)
	for i := 0; i < 10; i++ {
		data, _, ok := ct.Compress(ft.ackPkt(2920))
		if !ok {
			t.Fatal("no context")
		}
		last = len(data)
	}
	if last != 4 {
		t.Errorf("steady-state size (TS) = %d, want 4", last)
	}
}

func TestAnchorForm(t *testing.T) {
	f := newFlow(false)
	c, _ := pair(f)
	c.Compress(f.ackPkt(2920)) // first post-anchor ACK travels as IR
	data, msn, ok := c.Compress(f.ackPkt(2920))
	if !ok {
		t.Fatal("no context")
	}
	anchored := Anchor(data, msn)
	if len(anchored) != len(data)+1 {
		t.Errorf("anchored len %d, want %d", len(anchored), len(data)+1)
	}
	if anchored[2] != msn {
		t.Errorf("anchor MSN byte %d, want %d", anchored[2], msn)
	}
	// Anchoring an anchored frame is a no-op.
	if again := Anchor(anchored, msn); len(again) != len(anchored) {
		t.Error("double anchor changed length")
	}
	// Degenerate input.
	if got := Anchor([]byte{1}, 5); len(got) != 1 {
		t.Error("short input mishandled")
	}
}

func TestCompressionRatioMatchesPaper(t *testing.T) {
	// The paper's Table 2 reports ~12× on 52-byte ACKs (40 bytes +
	// 12 of timestamp options), i.e. ≈4.4 bytes per compressed ACK.
	f := newFlow(true)
	c, d := pair(f)
	totalOrig, totalComp := 0, 0
	delivered := 0
	for frm := 0; frm < 50; frm++ {
		// 21 ACKs per frame: one delayed ACK per two packets of a
		// 42-MPDU A-MPDU.
		fr := newFrame()
		for i := 0; i < 21; i++ {
			orig := f.ackPkt(2920)
			before := len(fr.buf)
			if !fr.add(c, orig) {
				t.Fatal("no context")
			}
			totalOrig += orig.Len()
			totalComp += len(fr.buf) - before
		}
		res, err := d.Decompress(fr.buf)
		if err != nil || res.Failures != 0 {
			t.Fatalf("frame %d: err=%v failures=%d", frm, err, res.Failures)
		}
		delivered += len(res.Packets)
	}
	if delivered != 50*21 {
		t.Fatalf("delivered %d of %d", delivered, 50*21)
	}
	ratio := float64(totalOrig) / float64(totalComp)
	if ratio < 10 || ratio > 16 {
		t.Errorf("compression ratio = %.1f, want ≈12", ratio)
	}
}

func TestMultiAckFrame(t *testing.T) {
	f := newFlow(true)
	c, d := pair(f)
	fr := newFrame()
	var origs []*packet.Packet
	for i := 0; i < 64; i++ {
		orig := f.ackPkt(2920)
		if !fr.add(c, orig) {
			t.Fatal("no context")
		}
		origs = append(origs, orig)
	}
	res, err := d.Decompress(fr.buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 64 {
		t.Fatalf("decoded %d of 64", len(res.Packets))
	}
	for i := range origs {
		if !sameHeader(origs[i], res.Packets[i]) {
			t.Fatalf("ack %d differs", i)
		}
	}
}

func TestMSNDedup(t *testing.T) {
	f := newFlow(false)
	c, d := pair(f)
	fr := newFrame()
	for i := 0; i < 3; i++ {
		if !fr.add(c, f.ackPkt(2920)) {
			t.Fatal("no context")
		}
	}
	res, err := d.Decompress(fr.buf)
	if err != nil || len(res.Packets) != 3 {
		t.Fatalf("first delivery: %v, %d packets", err, len(res.Packets))
	}
	// The identical frame retransmitted (paper Fig. 6): all duplicates,
	// no deliveries, no failures.
	res, err = d.Decompress(fr.buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 0 || res.Duplicates != 3 || res.Failures != 0 {
		t.Errorf("retransmit: packets=%d dups=%d failures=%d, want 0/3/0",
			len(res.Packets), res.Duplicates, res.Failures)
	}
	// A frame carrying the old ACKs plus a new one delivers only the new.
	frame2 := append([]byte(nil), fr.buf...)
	newOrig := f.ackPkt(2920)
	data, msn, ok := c.Compress(newOrig)
	if !ok {
		t.Fatal("no context")
	}
	// Within the same frame the old run anchors the CID; the new ACK
	// chains off it in compact form.
	frame2 = append(frame2, data...)
	_ = msn
	res, err = d.Decompress(frame2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 1 || res.Duplicates != 3 {
		t.Fatalf("mixed frame: packets=%d dups=%d", len(res.Packets), res.Duplicates)
	}
	if !sameHeader(newOrig, res.Packets[0]) {
		t.Error("new ACK reconstruction differs")
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	f := newFlow(true)
	c, _ := pair(f)
	orig := f.ackPkt(2920)
	data, _ := compress1(c, orig)
	// Flip each byte in turn; decompression must never deliver a
	// wrong packet silently (it may parse-fail or CRC-fail).
	for i := range data {
		f2 := newFlow(true)
		c2, d2 := pair(f2)
		o2 := f2.ackPkt(2920)
		d2data, _ := compress1(c2, o2)
		corrupted := bytes.Clone(d2data)
		corrupted[i] ^= 0x5a
		res, err := d2.Decompress(corrupted)
		if err != nil {
			continue // parse error: fine, nothing delivered
		}
		for _, p := range res.Packets {
			if !sameHeader(o2, p) {
				t.Errorf("byte %d: corrupted frame delivered wrong packet", i)
			}
		}
	}
}

func TestContextDamageAndRecovery(t *testing.T) {
	f := newFlow(false)
	c, d := pair(f)
	// Deliver one compressed ACK normally.
	a1 := f.ackPkt(2920)
	d1, _ := compress1(c, a1)
	if res, _ := d.Decompress(d1); len(res.Packets) != 1 {
		t.Fatal("setup delivery failed")
	}
	// Compress a2 but never deliver it (lost): contexts diverge.
	a2 := f.ackPkt(1460) // irregular advance → explicit delta
	compress1(c, a2)
	// a3 compressed against the post-a2 context; the decompressor is
	// still at post-a1. Reconstruction mismatches → CRC failure, no
	// bogus delivery.
	a3 := f.ackPkt(1460)
	d3, _ := compress1(c, a3)
	res, err := d.Decompress(d3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Packets {
		if !sameHeader(a3, p) {
			t.Fatal("divergent context delivered a wrong packet")
		}
	}
	if res.Failures == 0 {
		t.Error("context divergence not detected")
	}
	// A native ACK (newer cumulative state) re-anchors both ends;
	// compression resumes cleanly (paper: damage must not persist).
	a4 := f.ackPkt(2920)
	c.Observe(a4)
	d.Observe(a4)
	a5 := f.ackPkt(2920)
	d5, ok := compress1(c, a5)
	if !ok {
		t.Fatal("no context after refresh")
	}
	res, err = d.Decompress(d5)
	if err != nil || len(res.Packets) != 1 || !sameHeader(a5, res.Packets[0]) {
		t.Errorf("recovery failed: err=%v packets=%d failures=%d", err, len(res.Packets), res.Failures)
	}
}

func TestStaleNativeDoesNotDesync(t *testing.T) {
	// A native duplicate of an ACK that already travelled compressed
	// must not disturb either end's chain (the opportunistic-mode
	// interleaving).
	f := newFlow(false)
	c, d := pair(f)
	a1 := f.ackPkt(2920)
	d1, _ := compress1(c, a1)
	res, _ := d.Decompress(d1)
	if len(res.Packets) != 1 {
		t.Fatal("setup")
	}
	// The same a1 also travelled natively and arrives late.
	c.Observe(a1)
	d.Observe(a1)
	a2 := f.ackPkt(2920)
	d2, _ := compress1(c, a2)
	res, err := d.Decompress(d2)
	if err != nil || len(res.Packets) != 1 || res.Failures != 0 {
		t.Fatalf("stale native desynced: err=%v packets=%d failures=%d",
			err, len(res.Packets), res.Failures)
	}
	if !sameHeader(a2, res.Packets[0]) {
		t.Error("reconstruction differs after stale native")
	}
}

func TestNoContextFailure(t *testing.T) {
	f := newFlow(false)
	c, _ := pair(f)
	c.Compress(f.ackPkt(2920))  // IR form; skip it
	dFresh := NewDecompressor() // never observed the flow
	data, _ := compress1(c, f.ackPkt(2920))
	res, err := dFresh.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 0 || res.Failures != 1 {
		t.Errorf("packets=%d failures=%d, want 0/1", len(res.Packets), res.Failures)
	}
}

// TestIRBootstrapsFreshDecompressor covers the loss-resilience
// extension: the first compressed ACK after a native re-anchor is a
// self-contained IR refresh, so a decompressor that never saw any
// native (the re-anchor may be parked in a reorder buffer or lost)
// still reconstructs it and establishes the context for the deltas
// that follow.
func TestIRBootstrapsFreshDecompressor(t *testing.T) {
	f := newFlow(true)
	c, _ := pair(f)
	dFresh := NewDecompressor() // never observed the flow
	orig := f.ackPkt(2920)
	ir, _ := compress1(c, orig)
	res, err := dFresh.Decompress(ir)
	if err != nil || len(res.Packets) != 1 || res.Failures != 0 {
		t.Fatalf("IR bootstrap: err=%v packets=%d failures=%d", err, len(res.Packets), res.Failures)
	}
	if !sameHeader(orig, res.Packets[0]) {
		t.Error("IR reconstruction differs from original")
	}
	// The context the IR established carries the deltas that follow.
	next := f.ackPkt(2920)
	data, _ := compress1(c, next)
	res, err = dFresh.Decompress(data)
	if err != nil || len(res.Packets) != 1 || res.Failures != 0 {
		t.Fatalf("delta after IR: err=%v packets=%d failures=%d", err, len(res.Packets), res.Failures)
	}
	if !sameHeader(next, res.Packets[0]) {
		t.Error("delta reconstruction differs after IR bootstrap")
	}
}

// TestIRDedupAndNoRegression: a retained IR re-ridden after delivery
// dedups by MSN, and a stale IR can never rewind an advanced context.
func TestIRDedupAndNoRegression(t *testing.T) {
	f := newFlow(false)
	c, d := pair(f)
	ir, _ := compress1(c, f.ackPkt(2920))
	if res, _ := d.Decompress(ir); len(res.Packets) != 1 {
		t.Fatal("IR not delivered")
	}
	// Deltas advance the context past the IR.
	for i := 0; i < 3; i++ {
		data, _ := compress1(c, f.ackPkt(2920))
		if res, _ := d.Decompress(data); len(res.Packets) != 1 {
			t.Fatalf("delta %d not delivered", i)
		}
	}
	// The same IR bytes again (a §3.4 re-ride): duplicate, no failure,
	// and the context still decodes fresh deltas.
	res, err := d.Decompress(ir)
	if err != nil || res.Duplicates != 1 || res.Failures != 0 || len(res.Packets) != 0 {
		t.Fatalf("IR re-ride: err=%v dups=%d failures=%d packets=%d",
			err, res.Duplicates, res.Failures, len(res.Packets))
	}
	next := f.ackPkt(2920)
	data, _ := compress1(c, next)
	r2, _ := d.Decompress(data)
	if len(r2.Packets) != 1 || !sameHeader(next, r2.Packets[0]) {
		t.Fatal("context damaged by IR re-ride")
	}
}

func TestCompressRequiresContext(t *testing.T) {
	c := NewCompressor()
	f := newFlow(false)
	if _, _, ok := c.Compress(f.ackPkt(2920)); ok {
		t.Error("compressed without a context")
	}
	// Non-ACK packets are refused.
	p := f.ackPkt(0)
	p.TCP.Flags |= packet.FlagSYN
	c.Observe(p) // must be ignored
	if _, _, ok := c.Compress(p); ok {
		t.Error("compressed a SYN")
	}
}

func TestWindowChange(t *testing.T) {
	f := newFlow(false)
	c, d := pair(f)
	orig := f.ackPkt(2920)
	orig.TCP.Window = 123 // receiver window update
	data, ok := compress1(c, orig)
	if !ok {
		t.Fatal("no context")
	}
	res, err := d.Decompress(data)
	if err != nil || len(res.Packets) != 1 {
		t.Fatalf("err=%v packets=%d", err, len(res.Packets))
	}
	if res.Packets[0].TCP.Window != 123 {
		t.Errorf("window = %d, want 123", res.Packets[0].TCP.Window)
	}
	if !sameHeader(orig, res.Packets[0]) {
		t.Error("reconstruction differs")
	}
}

func TestSACKBlocks(t *testing.T) {
	f := newFlow(true)
	c, d := pair(f)
	orig := f.ackPkt(0) // dup ACK with SACK
	orig.TCP.Opt.SACKBlocks = [][2]uint32{
		{orig.TCP.Ack + 2920, orig.TCP.Ack + 5840},
		{orig.TCP.Ack + 8760, orig.TCP.Ack + 10220},
	}
	data, ok := compress1(c, orig)
	if !ok {
		t.Fatal("no context")
	}
	res, err := d.Decompress(data)
	if err != nil || len(res.Packets) != 1 {
		t.Fatalf("err=%v packets=%d failures=%d", err, len(res.Packets), res.Failures)
	}
	if !sameHeader(orig, res.Packets[0]) {
		t.Errorf("SACK reconstruction differs:\n got %+v\nwant %+v",
			res.Packets[0].TCP.Opt, orig.TCP.Opt)
	}
	// Four blocks exceed the format: refuse, forcing native transmission.
	big := f.ackPkt(0)
	big.TCP.Opt.SACKBlocks = make([][2]uint32, 4)
	if _, _, ok := c.Compress(big); ok {
		t.Error("compressed 4 SACK blocks")
	}
}

func TestBatchMultiFlow(t *testing.T) {
	// Two flows interleaved in one frame: the first ACK of each flow
	// is anchored; later ones chain 4-bit MSNs per flow.
	fa := newFlow(true)
	fb := newFlow(true)
	fb.tuple.SrcPort = 50999
	c := NewCompressor()
	d := NewDecompressor()
	na, nb := fa.ackPkt(2920), fb.ackPkt(2920)
	c.Observe(na)
	c.Observe(nb)
	d.Observe(na)
	d.Observe(nb)
	if CID(fa.tuple) == CID(fb.tuple) {
		t.Skip("fixture CID collision")
	}
	fr := newFrame()
	var origs []*packet.Packet
	for i := 0; i < 10; i++ {
		for _, f := range []*flowGen{fa, fb} {
			orig := f.ackPkt(2920)
			if !fr.add(c, orig) {
				t.Fatal("no context")
			}
			origs = append(origs, orig)
		}
	}
	res, err := d.Decompress(fr.buf)
	if err != nil || res.Failures != 0 {
		t.Fatalf("err=%v failures=%d", err, res.Failures)
	}
	if len(res.Packets) != len(origs) {
		t.Fatalf("delivered %d of %d", len(res.Packets), len(origs))
	}
	for i := range origs {
		if !sameHeader(origs[i], res.Packets[i]) {
			t.Fatalf("ack %d differs", i)
		}
	}
}

func TestMissingAnchorIsFailureNotCorruption(t *testing.T) {
	// A frame whose first ACK of a flow is in compact form (assembler
	// bug) must count as a failure, never deliver wrong content.
	f := newFlow(false)
	c, d := pair(f)
	if ir, _ := compress1(c, f.ackPkt(2920)); len(ir) > 0 {
		d.Decompress(ir) // consume the IR so the next form is compact
	}
	orig := f.ackPkt(2920)
	data, _, ok := c.Compress(orig) // compact, never anchored
	if !ok {
		t.Fatal("no context")
	}
	res, err := d.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) != 0 || res.Failures != 1 {
		t.Errorf("packets=%d failures=%d, want 0/1", len(res.Packets), res.Failures)
	}
}

func TestCIDProperties(t *testing.T) {
	f := newFlow(false)
	tp := f.tuple
	if CID(tp) != CID(tp) {
		t.Error("CID not deterministic")
	}
	other := tp
	other.SrcPort++
	if CID(tp) == CID(other) {
		t.Skip("fixture CID collision; adjust ports")
	}
}

func TestCIDCollisionFallsBackToNative(t *testing.T) {
	// Force a collision by observing two flows and checking that the
	// second (whichever loses the context) is refused by Compress.
	fa := newFlow(false)
	fb := newFlow(false)
	fb.tuple = fa.tuple // identical tuple hashes identically...
	fb.tuple.SrcPort = fa.tuple.SrcPort
	c := NewCompressor()
	na := fa.ackPkt(2920)
	c.Observe(na)
	// Simulate a colliding flow by directly asking to compress a
	// different tuple mapped to the same context slot: craft a packet
	// whose tuple differs but force-check the refusal path.
	pb := fb.ackPkt(2920)
	pb.TCP.SrcPort = 1 // different tuple; CID almost surely different
	if CID(fa.tuple) == CID(packet.FiveTuple{Src: pb.IP.Src, Dst: pb.IP.Dst, SrcPort: 1, DstPort: pb.TCP.DstPort, Proto: packet.ProtoTCP}) {
		t.Skip("unexpected CID equality")
	}
	// The real property: a valid context owned by flow A never absorbs
	// or serves another tuple.
	if _, _, ok := c.Compress(pb); ok {
		t.Error("compressed against a foreign context")
	}
}

func TestMSNWraparound(t *testing.T) {
	f := newFlow(false)
	c, d := pair(f)
	// Push well past the 8-bit MSN space; every single-ACK frame is
	// anchored.
	for i := 0; i < 600; i++ {
		orig := f.ackPkt(2920)
		data, ok := compress1(c, orig)
		if !ok {
			t.Fatal("no context")
		}
		res, err := d.Decompress(data)
		if err != nil || len(res.Packets) != 1 {
			t.Fatalf("i=%d err=%v packets=%d dups=%d failures=%d",
				i, err, len(res.Packets), res.Duplicates, res.Failures)
		}
		if !sameHeader(orig, res.Packets[0]) {
			t.Fatalf("i=%d reconstruction differs", i)
		}
	}
}

func TestTruncatedFrames(t *testing.T) {
	f := newFlow(true)
	c, _ := pair(f)
	data, _ := compress1(c, f.ackPkt(2920))
	for n := 1; n < len(data); n++ {
		d2 := NewDecompressor()
		if res, err := d2.Decompress(data[:n]); err == nil && len(res.Packets) > 0 {
			t.Errorf("truncation to %d bytes delivered a packet", n)
		}
	}
	if _, err := NewDecompressor().Decompress([]byte{0x01}); err == nil {
		t.Error("1-byte frame accepted")
	}
}

// Property: compress∘decompress = identity over randomized flow
// evolutions with mixed advances, window changes, and timestamps.
func TestRoundtripProperty(t *testing.T) {
	check := func(advances []uint16, winBumps []bool, useTS bool) bool {
		f := newFlow(useTS)
		c, d := pair(f)
		for i, adv := range advances {
			orig := f.ackPkt(uint32(adv))
			if i < len(winBumps) && winBumps[i] {
				f.win += 64
				orig.TCP.Window = f.win
			}
			data, ok := compress1(c, orig)
			if !ok {
				return false
			}
			res, err := d.Decompress(data)
			if err != nil || len(res.Packets) != 1 || res.Failures != 0 {
				return false
			}
			if !sameHeader(orig, res.Packets[0]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestCRC8KnownBehaviour(t *testing.T) {
	data := []byte{0xde, 0xad, 0xbe, 0xef}
	c := crc8(data)
	if c != crc8(data) {
		t.Error("crc8 not deterministic")
	}
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 1
		if crc8(mut) == c {
			t.Errorf("bit flip at byte %d undetected", i)
		}
	}
	if crc8(nil) != 0xff {
		t.Errorf("crc8(nil) = %#x, want initial value 0xff", crc8(nil))
	}
}

func BenchmarkCompress(b *testing.B) {
	f := newFlow(true)
	c, _ := pair(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Compress(f.ackPkt(2920)); !ok {
			b.Fatal("no context")
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	f := newFlow(true)
	c, d := pair(f)
	frames := make([][]byte, 256)
	for i := range frames {
		data, _ := compress1(c, f.ackPkt(2920))
		frames[i] = data
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decompress(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDamageSurface exercises the explicit context-damage API: an
// invalidated compressor context refuses the flow until a native
// re-anchor; an invalidated decompressor context drops deltas (counted,
// ResyncNeeded reports it) until an IR refresh heals it.
func TestDamageSurface(t *testing.T) {
	f := newFlow(false)
	c, d := pair(f)
	ir, _ := compress1(c, f.ackPkt(2920))
	if res, _ := d.Decompress(ir); len(res.Packets) != 1 {
		t.Fatal("setup: IR not delivered")
	}

	// Compressor side: declared damage forces the native path.
	c.Invalidate(f.tuple)
	if !c.ResyncNeeded() {
		t.Error("compressor ResyncNeeded false after Invalidate")
	}
	if _, _, ok := c.Compress(f.ackPkt(2920)); ok {
		t.Fatal("invalidated context still compresses")
	}
	native := f.ackPkt(2920)
	c.Observe(native) // the native re-anchor heals it...
	d.Observe(native)
	if c.ResyncNeeded() {
		t.Error("compressor ResyncNeeded true after native re-anchor")
	}
	data, ok := compress1(c, f.ackPkt(2920)) // ...and the next ACK is an IR
	if !ok {
		t.Fatal("healed context refuses to compress")
	}
	if res, _ := d.Decompress(data); len(res.Packets) != 1 {
		t.Fatal("post-heal IR not delivered")
	}

	// Decompressor side: declared damage drops deltas until an IR.
	d.Invalidate(CID(f.tuple))
	if !d.ResyncNeeded() {
		t.Error("decompressor ResyncNeeded false after Invalidate")
	}
	delta, _ := compress1(c, f.ackPkt(2920))
	res, _ := d.Decompress(delta)
	if res.FailNoContext != 1 || len(res.Packets) != 0 {
		t.Fatalf("damaged context accepted a delta: failures=%d packets=%d",
			res.FailNoContext, len(res.Packets))
	}
	// The compressor cannot see the peer's damage; in the driver the
	// resulting native/IR traffic heals it. Here: force an IR.
	c.Refresh(f.tuple)
	heal := f.ackPkt(2920)
	irData, _ := compress1(c, heal)
	res, _ = d.Decompress(irData)
	if len(res.Packets) != 1 || !sameHeader(heal, res.Packets[0]) {
		t.Fatal("IR did not heal the damaged decompressor context")
	}
	if d.ResyncNeeded() {
		t.Error("decompressor ResyncNeeded true after IR heal")
	}
}
