package rohc

import (
	"math/rand"
	"testing"

	"tcphack/internal/packet"
)

// TestCRC8TableMatchesBitwise golden-tests the lookup-table CRC
// against the bitwise RFC 5795 reference over random inputs and the
// edge cases (empty, single bytes, long runs).
func TestCRC8TableMatchesBitwise(t *testing.T) {
	if got, want := crc8(nil), byte(0xff); got != want {
		t.Errorf("crc8(nil) = %#x, want %#x", got, want)
	}
	for b := 0; b < 256; b++ {
		one := []byte{byte(b)}
		if crc8(one) != crc8Bitwise(one) {
			t.Fatalf("crc8([%#x]) = %#x, bitwise %#x", b, crc8(one), crc8Bitwise(one))
		}
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		if got, want := crc8(buf), crc8Bitwise(buf); got != want {
			t.Fatalf("crc8(%x) = %#x, bitwise %#x", buf, got, want)
		}
	}
}

func testAck(seed int64) *packet.Packet {
	rng := rand.New(rand.NewSource(seed))
	return &packet.Packet{
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoTCP, ID: uint16(rng.Intn(1 << 16)),
			Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(192, 168, 0, 10),
		},
		TCP: &packet.TCP{
			SrcPort: 5001, DstPort: 5001,
			Seq: rng.Uint32(), Ack: rng.Uint32(), Flags: packet.FlagACK,
			Window: uint16(rng.Intn(1 << 16)),
			Opt:    packet.TCPOptions{HasTimestamps: true, TSVal: rng.Uint32(), TSEcr: rng.Uint32()},
		},
	}
}

// TestHotPathAllocFree pins the per-packet ROHC primitives at zero
// allocations: the table CRC, the memoized CID lookup, and the
// scratch-buffer header CRC (after its buffer has warmed).
func TestHotPathAllocFree(t *testing.T) {
	p := testAck(1)
	wire := p.Marshal()
	if n := testing.AllocsPerRun(200, func() { crc8(wire) }); n != 0 {
		t.Errorf("crc8: %v allocs/op, want 0", n)
	}

	c := NewCompressor()
	tuple := tupleOf(p)
	c.CID(tuple) // warm the memo (one MD5 + map insert)
	if n := testing.AllocsPerRun(200, func() { c.CID(tuple) }); n != 0 {
		t.Errorf("memoized CID: %v allocs/op, want 0", n)
	}
	if c.CID(tuple) != CID(tuple) {
		t.Error("memoized CID disagrees with the MD5 definition")
	}

	var scratch []byte
	headerCRC(p, &scratch) // warm the scratch buffer
	want := crc8(wire)
	if n := testing.AllocsPerRun(200, func() { headerCRC(p, &scratch) }); n != 0 {
		t.Errorf("headerCRC (warm scratch): %v allocs/op, want 0", n)
	}
	if got := headerCRC(p, &scratch); got != want {
		t.Errorf("headerCRC = %#x, want crc8(Marshal) = %#x", got, want)
	}
}

// TestAppendAnchorMatchesAnchor checks the in-place anchor path against
// the allocating reference for fresh, already-anchored, and malformed
// inputs.
func TestAppendAnchorMatchesAnchor(t *testing.T) {
	cases := [][]byte{
		{0x11, 0x23, 0x99, 0xab},       // unanchored
		{0x11, 0x83, 0x07, 0x99, 0xab}, // already anchored (ExtMSN set)
		{0x42},                         // malformed: too short
	}
	for _, data := range cases {
		want := Anchor(append([]byte(nil), data...), 0x55)
		got := AppendAnchor(nil, data, 0x55)
		if string(got) != string(want) {
			t.Errorf("AppendAnchor(%x) = %x, Anchor = %x", data, got, want)
		}
		pre := []byte{0xde, 0xad}
		got = AppendAnchor(pre, data, 0x55)
		if string(got[:2]) != string(pre[:2]) || string(got[2:]) != string(want) {
			t.Errorf("AppendAnchor with prefix = %x, want %x + %x", got, pre, want)
		}
	}
}

// TestCompressDecompressStayInSync exercises the memoized/scratch paths
// end to end: a run of ACKs compressed then decompressed must
// reconstruct bit-identical packets (CRC-validated), exactly as the
// pre-optimization implementation did.
func TestCompressDecompressStayInSync(t *testing.T) {
	comp, dec := NewCompressor(), NewDecompressor()
	p := testAck(2)
	comp.Observe(p)
	dec.Observe(p)
	for i := 0; i < 50; i++ {
		p = p.Clone()
		p.IP.ID++
		p.TCP.Ack += 2920
		p.TCP.Opt.TSVal++
		data, msn, ok := comp.Compress(p)
		if !ok {
			t.Fatalf("ack %d did not compress", i)
		}
		res, err := dec.Decompress(Anchor(data, msn))
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if res.Failures != 0 || len(res.Packets) != 1 {
			t.Fatalf("ack %d: %+v", i, res)
		}
		got, want := res.Packets[0].Marshal(), p.Marshal()
		if string(got) != string(want) {
			t.Fatalf("ack %d reconstructed differently:\n got %x\nwant %x", i, got, want)
		}
	}
}
