package results

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"tcphack/internal/campaign"
	"tcphack/internal/hack"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// testResults runs one small lossy SoRa campaign: 2 modes × 2 clients
// × 2 seeds = 8 rows, the same grid the campaign determinism tests
// use.
func testResults(t *testing.T) campaign.Results {
	t.Helper()
	return campaign.Run(campaign.Spec{
		Name: "results-test",
		Base: scenario.New(scenario.WithSoRa(), scenario.WithUniformLoss(0.01)),
		Axes: campaign.Axes{
			Modes:   []hack.Mode{hack.ModeOff, hack.ModeMoreData},
			Clients: []int{1, 2},
			Seeds:   campaign.Seeds(1, 2),
		},
		Warmup:  500 * sim.Millisecond,
		Measure: 500 * sim.Millisecond,
	})
}

func TestFromResultsShape(t *testing.T) {
	rs := testResults(t)
	tab := FromResults(rs)
	if tab.Campaign != "results-test" {
		t.Errorf("campaign = %q", tab.Campaign)
	}
	if len(tab.Rows) != len(rs) {
		t.Fatalf("%d rows, want %d", len(tab.Rows), len(rs))
	}
	r0 := tab.Rows[0]
	for _, col := range AxisColumns {
		if _, ok := r0.Axes[col]; !ok {
			t.Errorf("row 0 missing axis %q", col)
		}
	}
	for _, m := range ScalarMetrics {
		if _, ok := r0.Metrics[m]; !ok {
			t.Errorf("row 0 missing metric %q", m)
		}
	}
	if _, ok := r0.Metrics["per_client_mbps.0"]; !ok {
		t.Error("per-client goodput not expanded into metrics")
	}
	if got := tab.SweptAxes(); !reflect.DeepEqual(got, []string{"mode", "clients"}) {
		t.Errorf("SweptAxes = %v, want [mode clients]", got)
	}
}

// TestJSONRoundTripLossless: campaign rows → WriteJSON → ReadJSON must
// reproduce the exact table FromResults builds — float64 survives the
// JSON emitters bit-for-bit.
func TestJSONRoundTripLossless(t *testing.T) {
	rs := testResults(t)
	direct := FromResults(rs)

	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, loaded) {
		for i := range direct.Rows {
			if !reflect.DeepEqual(direct.Rows[i], loaded.Rows[i]) {
				t.Errorf("row %d differs:\n direct: %+v\n loaded: %+v", i, direct.Rows[i], loaded.Rows[i])
			}
		}
		t.Fatal("JSON round trip not lossless")
	}
}

// TestCSVRoundTrip: the CSV emitters format floats with fixed
// precision, so the round trip is exact on axes and group keys and
// within formatting precision on metrics.
func TestCSVRoundTrip(t *testing.T) {
	rs := testResults(t)
	direct := FromResults(rs)

	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Campaign != direct.Campaign || len(loaded.Rows) != len(direct.Rows) {
		t.Fatalf("loaded %q/%d rows, want %q/%d",
			loaded.Campaign, len(loaded.Rows), direct.Campaign, len(direct.Rows))
	}
	for i := range direct.Rows {
		if !reflect.DeepEqual(direct.Rows[i].Axes, loaded.Rows[i].Axes) {
			t.Errorf("row %d axes differ (canonicalization broken): %v vs %v",
				i, direct.Rows[i].Axes, loaded.Rows[i].Axes)
		}
		for m, v := range direct.Rows[i].Metrics {
			lv, ok := loaded.Rows[i].Metrics[m]
			if !ok {
				t.Errorf("row %d: CSV lost metric %q", i, m)
				continue
			}
			if math.Abs(lv-v) > 0.51 { // worst column precision: 1 decimal
				t.Errorf("row %d %s: %v vs %v", i, m, v, lv)
			}
		}
	}
}

func TestAggregateStatistics(t *testing.T) {
	tab := &Table{Campaign: "synthetic"}
	for i, v := range []float64{1, 2, 3} {
		tab.Rows = append(tab.Rows, Row{
			Axes:    map[string]string{"mode": "off", "seed": Num(float64(i + 1))},
			Metrics: map[string]float64{"aggregate_mbps": v},
		})
	}
	agg, err := tab.Aggregate("mode")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Groups) != 1 {
		t.Fatalf("%d groups", len(agg.Groups))
	}
	s, ok := agg.Groups[0].Stat("aggregate_mbps")
	if !ok {
		t.Fatal("metric missing")
	}
	// Student-t interval: n=3 → df=2 → t=4.303 (not the normal 1.96,
	// which is far too tight at campaign-sized seed counts).
	wantCI := 4.303 * 1 / math.Sqrt(3)
	if s.Count != 3 || s.Mean != 2 || s.StdDev != 1 || s.Min != 1 || s.Max != 3 ||
		math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("stat = %+v, want count=3 mean=2 stddev=1 min=1 max=3 ci=%.4f", s, wantCI)
	}

	if _, err := tab.Aggregate("bogus"); err == nil {
		t.Error("unknown group-by column did not error")
	}
}

// TestAggregateDeterministic: equal inputs must aggregate to deeply
// equal (and identically serialized) outputs despite map-based
// internals.
func TestAggregateDeterministic(t *testing.T) {
	rs := testResults(t)
	a1, err := FromResults(rs).Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := FromResults(rs).Aggregate("mode", "clients")
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("repeated aggregation differs")
	}
	var b1, b2 bytes.Buffer
	if err := NewBaseline(a1).Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := NewBaseline(a2).Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("baseline serialization not byte-identical")
	}
	// Group order: numeric-aware, deterministic.
	if len(a1.Groups) != 4 {
		t.Fatalf("%d groups, want 4", len(a1.Groups))
	}
	if a1.Groups[0].Key[0] != "more-data" || a1.Groups[0].Key[1] != "1" ||
		a1.Groups[1].Key[1] != "2" {
		t.Errorf("group order: %v / %v", a1.Groups[0].Key, a1.Groups[1].Key)
	}
	if g := a1.Find("off", "2"); g == nil || g.N != 2 {
		t.Errorf("Find(off, 2) = %+v, want a 2-seed group", g)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	agg, err := FromResults(testResults(t)).Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBaseline(agg)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, loaded) {
		t.Fatal("baseline JSON round trip differs")
	}

	if _, err := ReadBaseline(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future baseline version accepted")
	}
}

// TestCompareCleanAndRegressed is the subsystem's acceptance story: a
// run compared against its own baseline is clean; the same run with an
// injected goodput collapse (and an injected ROHC-failure burst) flags
// exactly the degraded groups and metrics.
func TestCompareCleanAndRegressed(t *testing.T) {
	rs := testResults(t)
	agg, err := FromResults(rs).Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline(agg)

	clean, err := Compare(agg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.FingerprintMatched {
		t.Error("self-comparison fingerprint mismatch")
	}
	if clean.HasRegressions() {
		t.Fatalf("self-comparison regressed: %+v", clean.Regressions())
	}
	if len(clean.Groups) != 4 {
		t.Fatalf("%d groups compared, want 4", len(clean.Groups))
	}

	// Inject: halve goodput in one group, add decompression failures in
	// another. (A deep copy via serialization keeps the baseline
	// pristine.)
	var buf bytes.Buffer
	if err := NewBaseline(agg).Write(&buf); err != nil {
		t.Fatal(err)
	}
	hurtB, _ := ReadBaseline(&buf)
	hurt := &Agg{Campaign: agg.Campaign, Fingerprint: agg.Fingerprint,
		GroupBy: hurtB.GroupBy, Groups: hurtB.Groups}
	g0 := hurt.Find("more-data", "1")
	s := g0.Metrics["aggregate_mbps"]
	s.Mean *= 0.5
	g0.Metrics["aggregate_mbps"] = s
	g1 := hurt.Find("off", "2")
	f := g1.Metrics["decomp_failures"]
	f.Mean += 10
	g1.Metrics["decomp_failures"] = f

	cmp, err := Compare(hurt, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	regs := cmp.Regressions()
	if len(regs) != 2 {
		t.Fatalf("%d regressed groups, want 2: %+v", len(regs), regs)
	}
	for _, gr := range regs {
		for _, d := range gr.Deltas {
			if !d.Regressed {
				continue
			}
			key := strings.Join(gr.Key, ",")
			switch {
			case key == "more-data,1" && d.Metric == "aggregate_mbps":
			case key == "off,2" && d.Metric == "decomp_failures":
			default:
				t.Errorf("unexpected regression %s in group %s", d.Metric, key)
			}
		}
	}
	var report bytes.Buffer
	cmp.Report(&report)
	if !strings.Contains(report.String(), "REGRESSED") ||
		!strings.Contains(report.String(), "aggregate_mbps") {
		t.Errorf("report missing regression details:\n%s", report.String())
	}

	// Improvement must not flag: double goodput everywhere.
	better := &Agg{Campaign: agg.Campaign, Fingerprint: agg.Fingerprint, GroupBy: agg.GroupBy}
	for _, g := range agg.Groups {
		ng := Group{Key: g.Key, N: g.N, Metrics: map[string]Stat{}}
		for m, st := range g.Metrics {
			if m == "aggregate_mbps" {
				st.Mean *= 2
			}
			ng.Metrics[m] = st
		}
		better.Groups = append(better.Groups, ng)
	}
	cmp, err = Compare(better, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HasRegressions() {
		t.Errorf("improvement flagged as regression: %+v", cmp.Regressions())
	}
}

// TestCompareShapeChanges: mismatched grouping is an error; a changed
// grid surfaces as fingerprint mismatch plus one-sided groups, while
// matched groups still compare.
func TestCompareShapeChanges(t *testing.T) {
	rs := testResults(t)
	tab := FromResults(rs)
	agg, _ := tab.Aggregate("mode", "clients")
	base := NewBaseline(agg)

	byMode, _ := tab.Aggregate("mode")
	if _, err := Compare(byMode, base, nil); err == nil {
		t.Error("group-by mismatch did not error")
	}

	// Drop the 2-client rows: fewer groups, different fingerprint.
	small := &Table{Campaign: tab.Campaign}
	for _, r := range tab.Rows {
		if r.Axes["clients"] == "1" {
			small.Rows = append(small.Rows, r)
		}
	}
	smallAgg, _ := small.Aggregate("mode", "clients")
	cmp, err := Compare(smallAgg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FingerprintMatched {
		t.Error("shrunken grid matched the baseline fingerprint")
	}
	if len(cmp.Groups) != 2 || len(cmp.BaselineOnly) != 2 {
		t.Errorf("matched %d groups / %d baseline-only, want 2/2", len(cmp.Groups), len(cmp.BaselineOnly))
	}
	if cmp.HasRegressions() {
		t.Errorf("identical matched groups regressed: %+v", cmp.Regressions())
	}
	// Losing baseline groups is not a metric regression but must fail
	// the gate verdict — coverage silently disappeared.
	if cmp.Clean() {
		t.Error("Clean() passed despite lost baseline groups")
	}
}

// TestCompareLoadedFromEmitters closes the loop the doc promises:
// aggregation over a table re-loaded from the CSV emitter compares
// clean against a baseline built from the in-memory rows (the CSV
// precision loss stays inside the default tolerances).
func TestCompareLoadedFromEmitters(t *testing.T) {
	rs := testResults(t)
	agg, _ := FromResults(rs).Aggregate("mode", "clients")
	base := NewBaseline(agg)

	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loadedAgg, err := loaded.Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	if loadedAgg.Fingerprint != agg.Fingerprint {
		t.Error("CSV round trip changed the sweep fingerprint")
	}
	cmp, err := Compare(loadedAgg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HasRegressions() {
		t.Errorf("CSV-loaded comparison regressed: %+v", cmp.Regressions())
	}
}
