// Package results is the statistical layer above the campaign runner:
// it turns raw campaign.Results rows into a typed Table, aggregates the
// table with group-by semantics (any subset of axis columns → count,
// mean, standard deviation, min, max, and a 95% confidence interval per
// metric), persists aggregated sweeps as versioned JSON baselines, and
// compares a fresh run against a stored baseline to flag regressions
// beyond configurable per-metric tolerances.
//
// The paper's evaluation (§4, Figures 9–12, Tables 2–3) is built from
// exactly this discipline — repeated seeded sweeps summarized into
// means with deviation bars — so every runner in internal/experiments
// aggregates through this package instead of hand-rolling summary
// loops.
//
// # Pipeline
//
// Data flows through four stages, each usable on its own:
//
//	campaign.Results ──FromResults──▶ Table ──Aggregate──▶ Agg
//	                                    ▲                   │
//	         ReadCSV / ReadJSON ────────┘        NewBaseline │ Compare
//	         (campaign emitter output)                       ▼
//	                                                 Baseline ⇄ JSON
//
// A Table holds one row per simulated grid point: the sweep-axis
// columns (mode, clients, seed, rate_kbps, adapter, loss_pct, snr_db,
// topology) as canonical strings and every scalar metric as a float64, including
// expanded per-client goodputs ("per_client_mbps.0", …) and campaign
// Extra metrics ("extra.<name>"). Tables build losslessly from
// in-memory campaign.Results or from the campaign CSV/JSON emitters'
// output, so a sweep can be aggregated live or re-loaded later.
//
// Aggregate groups rows on any subset of axis columns — typically the
// swept axes minus the seed, which SweptAxes computes — and reduces
// each metric per group. Group order and all serialized forms are
// deterministic: equal inputs produce byte-identical baselines.
//
// # Baselines and regression detection
//
// NewBaseline snapshots an aggregation together with a fingerprint of
// the sweep (campaign name, axis columns, and each axis's distinct
// values), and Compare matches a fresh aggregation's groups against a
// stored baseline's, flagging any metric whose mean moved in its worse
// direction (lower goodput, more retries, more decompression failures,
// more airtime) beyond the metric's relative tolerance. cmd/hackbench
// exposes the workflow as -save-baseline / -baseline / -groupby, and a
// committed golden baseline gates CI.
package results
