package results

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stat summarizes one metric across the rows of one group.
type Stat struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CI95 is the 95% confidence half-width of the mean using the
	// Student-t critical value for n-1 degrees of freedom
	// (t·σ/√n; 0 below two observations). Campaign groups typically
	// hold n ≤ 5 seeds, where the normal approximation's 1.96
	// understates the interval badly (t₀.₉₇₅ at 2 degrees of freedom
	// is 4.30).
	CI95 float64 `json:"ci95"`
}

// Group is one aggregation cell: the axis values it was grouped on
// (aligned with Agg.GroupBy) and a Stat per metric.
type Group struct {
	Key     []string        `json:"key"`
	N       int             `json:"n"`
	Metrics map[string]Stat `json:"metrics"`
}

// Mean returns the group's mean for one metric (0 when absent) — the
// common single-value read for report tables.
func (g *Group) Mean(metric string) float64 {
	return g.Metrics[metric].Mean
}

// Stat returns the full summary for one metric.
func (g *Group) Stat(metric string) (Stat, bool) {
	s, ok := g.Metrics[metric]
	return s, ok
}

// Agg is a grouped aggregation of a Table: one Group per distinct
// combination of the GroupBy columns, in deterministic (numeric-aware)
// key order.
type Agg struct {
	Campaign string `json:"campaign"`
	// Fingerprint identifies the sweep the aggregation came from (see
	// Table.Fingerprint); Compare checks it against a baseline's.
	Fingerprint string `json:"fingerprint"`
	// Axes is the sweep shape behind Fingerprint (Table.Shape),
	// persisted into baselines so mismatches can name the diverging
	// component.
	Axes    map[string][]string `json:"axes,omitempty"`
	GroupBy []string            `json:"group_by"`
	Groups  []Group             `json:"groups"`
}

// keySep joins group-key components; ASCII unit separator cannot occur
// in axis values.
const keySep = "\x1f"

// Aggregate groups the table's rows on the given axis columns and
// reduces every metric per group. With no columns the whole table
// collapses into a single group (the grand summary — e.g. a
// seeds-only sweep). Metrics absent from some rows (per-client columns
// across different client counts, optional extras) aggregate over the
// rows that carry them; each Stat's Count records how many.
func (t *Table) Aggregate(groupBy ...string) (*Agg, error) {
	for _, col := range groupBy {
		if !isAxis(col) {
			return nil, fmt.Errorf("results: unknown group-by column %q (axis columns: %s)",
				col, strings.Join(AxisColumns, ", "))
		}
	}
	type acc struct {
		key    []string
		n      int
		values map[string][]float64
	}
	cells := map[string]*acc{}
	for _, r := range t.Rows {
		key := make([]string, len(groupBy))
		for i, col := range groupBy {
			key[i] = r.Axes[col]
		}
		id := strings.Join(key, keySep)
		c, ok := cells[id]
		if !ok {
			c = &acc{key: key, values: map[string][]float64{}}
			cells[id] = c
		}
		c.n++
		for metric, v := range r.Metrics {
			c.values[metric] = append(c.values[metric], v)
		}
	}

	a := &Agg{
		Campaign:    t.Campaign,
		Fingerprint: t.Fingerprint(),
		Axes:        t.Shape(),
		GroupBy:     append([]string{}, groupBy...),
	}
	for _, c := range cells {
		g := Group{Key: c.key, N: c.n, Metrics: make(map[string]Stat, len(c.values))}
		for metric, vals := range c.values {
			g.Metrics[metric] = summarize(vals)
		}
		a.Groups = append(a.Groups, g)
	}
	sort.Slice(a.Groups, func(i, j int) bool {
		ki, kj := a.Groups[i].Key, a.Groups[j].Key
		for x := range ki {
			if ki[x] != kj[x] {
				return axisLess(ki[x], kj[x])
			}
		}
		return false
	})
	return a, nil
}

// summarize reduces one metric's observations into a Stat.
func summarize(vals []float64) Stat {
	s := Stat{Count: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.Count)
	if s.Count >= 2 {
		var sq float64
		for _, v := range vals {
			d := v - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(s.Count-1))
		s.CI95 = tCritical95(s.Count-1) * s.StdDev / math.Sqrt(float64(s.Count))
	}
	return s
}

// tCritical95Table holds the two-sided 95% Student-t critical values
// for 1–30 degrees of freedom (standard statistical tables).
var tCritical95Table = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% Student-t critical value for
// df degrees of freedom: exact table values through df=30, the
// standard coarse table rows (40, 60, 120) beyond, and the normal
// limit 1.96 for larger samples — at which point the difference from
// the exact quantile is under half a percent.
func tCritical95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tCritical95Table):
		return tCritical95Table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.96
}

// Find returns the group with exactly this key (values in GroupBy
// order, canonical form — use Num for numeric axes), or nil.
func (a *Agg) Find(key ...string) *Group {
	for i := range a.Groups {
		g := &a.Groups[i]
		if len(g.Key) != len(key) {
			continue
		}
		match := true
		for x := range key {
			if g.Key[x] != key[x] {
				match = false
				break
			}
		}
		if match {
			return g
		}
	}
	return nil
}

// MeanAt is Find followed by Mean, returning 0 when the group does not
// exist — the shape lookup tables in experiment runners want (a
// missing group is a skipped/hopeless grid point).
func (a *Agg) MeanAt(metric string, key ...string) float64 {
	if g := a.Find(key...); g != nil {
		return g.Mean(metric)
	}
	return 0
}

// StatAt is Find followed by Stat, for callers that also want the
// deviation (error bars on the paper's figures).
func (a *Agg) StatAt(metric string, key ...string) (Stat, bool) {
	if g := a.Find(key...); g != nil {
		return g.Stat(metric)
	}
	return Stat{}, false
}
