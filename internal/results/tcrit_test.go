package results

import "testing"

// TestTCritical95 pins the Student-t critical values at the sample
// sizes campaigns actually use and the table's fall-off behaviour.
func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0},       // undefined: single observation, no interval
		{1, 12.706},  // n=2, the worst case the normal approx hid
		{2, 4.303},   // n=3
		{4, 2.776},   // n=5, the paper's run count
		{30, 2.042},  // last exact table row
		{35, 2.021},  // coarse rows beyond the table
		{50, 2.000},  //
		{100, 1.980}, //
		{1000, 1.96}, // normal limit
	}
	for _, c := range cases {
		if got := tCritical95(c.df); got != c.want {
			t.Errorf("tCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Monotone non-increasing in df: more data never widens the interval.
	prev := tCritical95(1)
	for df := 2; df <= 200; df++ {
		cur := tCritical95(df)
		if cur > prev {
			t.Fatalf("tCritical95 not monotone at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}
