package results

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"sort"

	"tcphack/internal/campaign"
)

// CodeVersion is the simulator's behavior version, folded into every
// point fingerprint as a salt. Bump it whenever a change alters
// simulation output (new MAC timing, a fixed RNG stream, a changed
// default), so memoization stores built by older builds miss instead
// of serving stale rows. Changes that cannot affect any Result (docs,
// CLIs, the distribution layer itself) need no bump.
const CodeVersion = "hack-sim-v6"

// PointFingerprint hashes one grid point's content-addressed identity
// — flat key=value fields (campaign.WireSpec.FingerprintFields) plus a
// code-version salt — into the memoization key. The hash is over
// sorted keys, so field insertion order never matters; it extends the
// sweep-shape fingerprint (Table.Fingerprint) down to point
// granularity: equal fingerprints promise byte-identical Result rows,
// which is what lets overlapping sweeps re-simulate only what changed.
func PointFingerprint(salt string, fields map[string]string) string {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "salt=%s\n", salt)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, fields[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// Merge assembles partial row sets into one complete result slice of n
// grid points in Points() order — the deterministic join the
// distributed layer uses to turn shard emissions back into the exact
// output a serial campaign.Run would have produced. Every row lands at
// its Point.Index; duplicate deliveries of the same index (at-least-
// once shard completion) must agree exactly, and every index must be
// covered. Violations are errors, never silent: a conflicting
// duplicate means two workers disagreed on a deterministic simulation
// (a code-version mismatch), and a gap means the job is not actually
// complete.
func Merge(n int, parts ...campaign.Results) (campaign.Results, error) {
	out := make(campaign.Results, n)
	have := make([]bool, n)
	for _, part := range parts {
		for _, r := range part {
			if r.Index < 0 || r.Index >= n {
				return nil, fmt.Errorf("results: merge: row index %d out of range [0,%d)", r.Index, n)
			}
			if have[r.Index] {
				if !reflect.DeepEqual(out[r.Index], r) {
					return nil, fmt.Errorf("results: merge: conflicting duplicate rows for index %d (non-deterministic producer or code-version mismatch)", r.Index)
				}
				continue
			}
			out[r.Index] = r
			have[r.Index] = true
		}
	}
	var missing []int
	for i, ok := range have {
		if !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("results: merge: %d of %d rows missing (first missing index %d)",
			len(missing), n, missing[0])
	}
	return out, nil
}
