package results

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BaselineVersion is the on-disk format version; ReadBaseline rejects
// files written by an incompatible future format.
const BaselineVersion = 1

// Baseline is a persisted aggregation: the reference a later run of
// the same sweep is compared against. The file form is deterministic
// JSON (sorted map keys, fixed group order), so regenerating an
// unchanged sweep rewrites an identical file — friendly to version
// control and CI golden files.
type Baseline struct {
	Version     int    `json:"version"`
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	// Axes is the sweep shape behind Fingerprint (axis column → sorted
	// distinct values). Older baseline files lack it; Compare then
	// falls back to the bare mismatch warning.
	Axes    map[string][]string `json:"axes,omitempty"`
	GroupBy []string            `json:"group_by"`
	Groups  []Group             `json:"groups"`
}

// NewBaseline snapshots an aggregation as a baseline.
func NewBaseline(a *Agg) *Baseline {
	return &Baseline{
		Version:     BaselineVersion,
		Campaign:    a.Campaign,
		Fingerprint: a.Fingerprint,
		Axes:        a.Axes,
		GroupBy:     a.GroupBy,
		Groups:      a.Groups,
	}
}

// Fingerprint identifies the sweep's shape: a hash over the campaign
// name, the axis columns, and each axis's sorted distinct values.
// Runs of the same scenario and grid share a fingerprint regardless of
// row order or worker count; changing any axis (different rates, an
// added loss point) changes it, which Compare reports as a shape
// mismatch — with the diverging components named via Shape.
func (t *Table) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign=%s\n", t.Campaign)
	for _, col := range AxisColumns {
		vals := t.axisValues(col)
		if skipUnsweptAxis(col, vals) {
			continue
		}
		fmt.Fprintf(h, "%s=%v\n", col, vals)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// skipUnsweptAxis reports whether an axis column is excluded from the
// fingerprint and shape. The topology axis joined the column set after
// baselines were first persisted, so when a table never sweeps it
// (every row carries the empty value) it is left out — keeping
// pre-existing golden files' fingerprints valid.
func skipUnsweptAxis(col string, vals []string) bool {
	return col == "topology" && len(vals) == 1 && vals[0] == ""
}

// Shape returns the sweep's shape explicitly — each axis column's
// sorted distinct values — the expansion of what Fingerprint hashes.
// Baselines persist it so a later fingerprint mismatch can report
// which component (campaign name, axis set, axis values) diverged
// instead of a bare warning.
func (t *Table) Shape() map[string][]string {
	shape := make(map[string][]string, len(AxisColumns))
	for _, col := range AxisColumns {
		vals := t.axisValues(col)
		if skipUnsweptAxis(col, vals) {
			continue
		}
		shape[col] = vals
	}
	return shape
}

// Write emits the baseline as indented JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline decodes a baseline and validates its version.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("results: decoding baseline: %v", err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("results: baseline version %d, this build reads %d",
			b.Version, BaselineVersion)
	}
	return &b, nil
}

// SaveBaselineFile writes the baseline to path.
func SaveBaselineFile(path string, b *Baseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBaselineFile reads a baseline from path.
func LoadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}
