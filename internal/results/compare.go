package results

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"strings"
)

// Direction says which way a metric gets worse.
type Direction int

// The two regression directions: goodput regresses downward, error
// counters regress upward.
const (
	LowerIsWorse Direction = iota
	HigherIsWorse
)

func (d Direction) String() string {
	if d == HigherIsWorse {
		return "higher-is-worse"
	}
	return "lower-is-worse"
}

// Tolerance bounds how far one metric's mean may move in its worse
// direction before Compare flags a regression: the allowance is
// max(|baseline|·Rel, Abs), so Rel governs healthy operating points
// and Abs absorbs noise around zero (a baseline of 0 retries must not
// flag 1).
type Tolerance struct {
	// Rel is the allowed relative change (0.05 = 5%).
	Rel float64 `json:"rel"`
	// Abs is the absolute slack floor, in the metric's own unit.
	Abs float64 `json:"abs"`
	// Worse is the direction in which the metric degrades.
	Worse Direction `json:"worse"`
}

// DefaultTolerances covers the paper's health metrics: goodput
// (lower is worse), retry volume, ROHC decompression failures (§4.3
// demands zero, so any real growth flags), and medium airtime.
func DefaultTolerances() map[string]Tolerance {
	return map[string]Tolerance{
		"aggregate_mbps":   {Rel: 0.05, Abs: 0.05, Worse: LowerIsWorse},
		"retries":          {Rel: 0.10, Abs: 50, Worse: HigherIsWorse},
		"decomp_failures":  {Rel: 0, Abs: 0.5, Worse: HigherIsWorse},
		"airtime_busy_pct": {Rel: 0.05, Abs: 1, Worse: HigherIsWorse},
	}
}

// MetricDelta is one metric's baseline-vs-run movement within a group.
type MetricDelta struct {
	Metric string  `json:"metric"`
	Base   Stat    `json:"base"`
	Run    Stat    `json:"run"`
	Change float64 `json:"change"` // signed relative change of the mean
	// Regressed is set when the mean moved in the metric's worse
	// direction beyond its tolerance.
	Regressed bool `json:"regressed,omitempty"`
}

// GroupResult is the comparison of one matched group.
type GroupResult struct {
	Key       []string      `json:"key"`
	Deltas    []MetricDelta `json:"deltas"`
	Regressed bool          `json:"regressed,omitempty"`
}

// Comparison is the outcome of matching a run against a baseline.
type Comparison struct {
	Campaign string   `json:"campaign"`
	GroupBy  []string `json:"group_by"`
	// FingerprintMatched is false when the run's sweep shape (axes and
	// their values) differs from the baseline's; matched groups are
	// still compared, so a deliberately degraded axis value (say a
	// forced lower rate) surfaces as regressions rather than silence.
	FingerprintMatched bool `json:"fingerprint_matched"`
	// ShapeDiff names the diverging shape components on a fingerprint
	// mismatch — one line per difference (campaign name, an axis's
	// value set). Empty when the fingerprints match, or when the
	// baseline predates shape recording (a single explanatory line).
	ShapeDiff []string `json:"shape_diff,omitempty"`
	// BaselineOnly and RunOnly list group keys present on one side
	// only (grid shrank or grew).
	BaselineOnly [][]string    `json:"baseline_only,omitempty"`
	RunOnly      [][]string    `json:"run_only,omitempty"`
	Groups       []GroupResult `json:"groups"`
}

// Compare matches the run's groups against the baseline's by key and
// evaluates every metric that has a tolerance entry and appears on
// both sides. A nil tolerances map uses DefaultTolerances. The group-by
// columns must agree — comparing incompatible aggregations is an
// error, not a report.
func Compare(run *Agg, base *Baseline, tolerances map[string]Tolerance) (*Comparison, error) {
	if !slices.Equal(run.GroupBy, base.GroupBy) {
		return nil, fmt.Errorf("results: group-by mismatch: run %v vs baseline %v",
			run.GroupBy, base.GroupBy)
	}
	if tolerances == nil {
		tolerances = DefaultTolerances()
	}
	c := &Comparison{
		Campaign:           run.Campaign,
		GroupBy:            run.GroupBy,
		FingerprintMatched: run.Fingerprint == base.Fingerprint,
	}
	if !c.FingerprintMatched {
		c.ShapeDiff = shapeDiff(run, base)
	}

	baseByKey := make(map[string]*Group, len(base.Groups))
	for i := range base.Groups {
		baseByKey[strings.Join(base.Groups[i].Key, keySep)] = &base.Groups[i]
	}
	runKeys := make(map[string]bool, len(run.Groups))
	for i := range run.Groups {
		g := &run.Groups[i]
		id := strings.Join(g.Key, keySep)
		runKeys[id] = true
		bg, ok := baseByKey[id]
		if !ok {
			c.RunOnly = append(c.RunOnly, g.Key)
			continue
		}
		c.Groups = append(c.Groups, compareGroup(g, bg, tolerances))
	}
	for i := range base.Groups {
		if !runKeys[strings.Join(base.Groups[i].Key, keySep)] {
			c.BaselineOnly = append(c.BaselineOnly, base.Groups[i].Key)
		}
	}
	return c, nil
}

// shapeDiff pinpoints which sweep-shape components diverged between a
// run and a baseline whose fingerprints mismatch: the campaign name
// and, per axis column, the distinct-value sets. A baseline written
// before shape recording (no Axes) yields a single explanatory line
// rather than guessing.
func shapeDiff(run *Agg, base *Baseline) []string {
	var out []string
	if run.Campaign != base.Campaign {
		out = append(out, fmt.Sprintf("campaign name: run %q vs baseline %q", run.Campaign, base.Campaign))
	}
	if base.Axes == nil {
		return append(out, "baseline predates shape recording (no axis values stored); re-save it to enable axis-level diagnostics")
	}
	for _, col := range AxisColumns {
		rv, bv := run.Axes[col], base.Axes[col]
		if slices.Equal(rv, bv) {
			continue
		}
		out = append(out, fmt.Sprintf("axis %s: run %s vs baseline %s", col, valueSet(rv), valueSet(bv)))
	}
	if len(out) == 0 {
		out = append(out, "fingerprints differ but recorded shapes agree (fingerprint scheme changed between builds)")
	}
	return out
}

// valueSet renders one axis's distinct values for the shape report.
func valueSet(vals []string) string {
	if len(vals) == 0 {
		return "(none)"
	}
	quoted := make([]string, len(vals))
	for i, v := range vals {
		if v == "" {
			v = `""`
		}
		quoted[i] = v
	}
	return "[" + strings.Join(quoted, " ") + "]"
}

// compareGroup evaluates every toleranced metric present on both sides.
func compareGroup(run, base *Group, tolerances map[string]Tolerance) GroupResult {
	gr := GroupResult{Key: run.Key}
	metrics := make([]string, 0, len(tolerances))
	for m := range tolerances {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		rs, rok := run.Metrics[m]
		bs, bok := base.Metrics[m]
		if !rok || !bok {
			continue
		}
		d := MetricDelta{Metric: m, Base: bs, Run: rs}
		if bs.Mean != 0 {
			d.Change = (rs.Mean - bs.Mean) / bs.Mean
		} else if rs.Mean != 0 {
			d.Change = 1
		}
		tol := tolerances[m]
		allow := math.Abs(bs.Mean) * tol.Rel
		if allow < tol.Abs {
			allow = tol.Abs
		}
		switch tol.Worse {
		case LowerIsWorse:
			d.Regressed = rs.Mean < bs.Mean-allow
		case HigherIsWorse:
			d.Regressed = rs.Mean > bs.Mean+allow
		}
		if d.Regressed {
			gr.Regressed = true
		}
		gr.Deltas = append(gr.Deltas, d)
	}
	return gr
}

// Regressions returns only the groups that regressed.
func (c *Comparison) Regressions() []GroupResult {
	var out []GroupResult
	for _, g := range c.Groups {
		if g.Regressed {
			out = append(out, g)
		}
	}
	return out
}

// HasRegressions reports whether any matched group regressed.
func (c *Comparison) HasRegressions() bool {
	return len(c.Regressions()) > 0
}

// Clean is the gate verdict: no matched group regressed AND no
// baseline group went missing from the run. Losing a group (a shrunken
// sweep, a newly pruned grid point) silently removes regression
// coverage, so gates treat it as a failure rather than a warning; new
// run-only groups are fine — coverage grew.
func (c *Comparison) Clean() bool {
	return !c.HasRegressions() && len(c.BaselineOnly) == 0
}

// keyString renders a group key against the group-by columns
// ("mode=off clients=2"); the grand group renders as "(all)".
func keyString(groupBy, key []string) string {
	if len(key) == 0 {
		return "(all)"
	}
	parts := make([]string, len(key))
	for i := range key {
		v := key[i]
		if v == "" {
			v = `""`
		}
		parts[i] = groupBy[i] + "=" + v
	}
	return strings.Join(parts, " ")
}

// Report writes the human-readable comparison: one line per group, the
// per-metric movements of any regressed group, and a verdict line.
func (c *Comparison) Report(w io.Writer) {
	fmt.Fprintf(w, "baseline comparison: campaign %q, %d group(s) matched",
		c.Campaign, len(c.Groups))
	if len(c.GroupBy) > 0 {
		fmt.Fprintf(w, ", grouped by %s", strings.Join(c.GroupBy, ","))
	}
	fmt.Fprintln(w)
	if !c.FingerprintMatched {
		fmt.Fprintln(w, "warning: sweep shape differs from the baseline; comparing matched groups only:")
		for _, d := range c.ShapeDiff {
			fmt.Fprintf(w, "  shape: %s\n", d)
		}
	}
	for _, key := range c.BaselineOnly {
		fmt.Fprintf(w, "warning: baseline group %s missing from this run\n", keyString(c.GroupBy, key))
	}
	for _, key := range c.RunOnly {
		fmt.Fprintf(w, "note: group %s has no baseline (new grid point)\n", keyString(c.GroupBy, key))
	}
	for _, g := range c.Groups {
		status := "ok"
		if g.Regressed {
			status = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-40s %s\n", keyString(c.GroupBy, g.Key), status)
		for _, d := range g.Deltas {
			if !g.Regressed && !d.Regressed {
				continue
			}
			mark := ""
			if d.Regressed {
				mark = "  <-- beyond tolerance"
			}
			fmt.Fprintf(w, "      %-18s %12.3f -> %-12.3f (%+.1f%%)%s\n",
				d.Metric, d.Base.Mean, d.Run.Mean, d.Change*100, mark)
		}
	}
	switch {
	case c.HasRegressions():
		fmt.Fprintf(w, "RESULT: %d of %d group(s) regressed\n", len(c.Regressions()), len(c.Groups))
	case len(c.BaselineOnly) > 0:
		fmt.Fprintf(w, "RESULT: no metric regressions, but %d baseline group(s) lost coverage\n",
			len(c.BaselineOnly))
	default:
		fmt.Fprintf(w, "RESULT: no regressions across %d group(s)\n", len(c.Groups))
	}
}
