package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tcphack/internal/campaign"
)

// AxisColumns are the sweep-axis columns every row carries, in
// canonical order. They mirror the campaign emitters' column names.
var AxisColumns = []string{
	"mode", "clients", "seed", "rate_kbps", "adapter", "loss_pct", "snr_db",
	"topology",
}

// ScalarMetrics are the metric columns every campaign.Result provides.
// Rows may carry more: expanded per-client goodputs
// ("per_client_mbps.<i>") and campaign Extra metrics ("extra.<name>").
var ScalarMetrics = []string{
	"aggregate_mbps", "airtime_busy_pct", "collisions",
	"mpdus_sent", "mpdus_delivered", "retries", "queue_drops",
	"no_retry_pct", "decomp_failures", "flows_done", "flows_total",
}

// Num renders a float in the canonical axis-value form shared by every
// Table constructor: the shortest decimal string that round-trips, so
// "5", "0.05", and "22.5" — never "5.000". Callers use it to build
// group keys for Agg.Find.
func Num(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Row is one simulated grid point: axis values as canonical strings,
// metrics as float64.
type Row struct {
	Axes    map[string]string
	Metrics map[string]float64
}

// Table is an ordered set of result rows from one campaign, ready for
// group-by aggregation. Skipped grid points are excluded at
// construction — they carry no measurements and would skew means.
type Table struct {
	Campaign string
	Rows     []Row
}

// FromResults builds a Table from in-memory campaign rows.
func FromResults(rs campaign.Results) *Table {
	t := &Table{}
	for _, r := range rs {
		if r.Skipped {
			continue
		}
		if t.Campaign == "" {
			t.Campaign = r.Campaign
		}
		row := Row{
			Axes: map[string]string{
				"mode":      r.ModeName,
				"clients":   Num(float64(r.Clients)),
				"seed":      Num(float64(r.Seed)),
				"rate_kbps": Num(float64(r.RateKbps)),
				"adapter":   r.Adapter,
				"loss_pct":  Num(r.LossPct),
				"snr_db":    Num(r.SNRdB),
				"topology":  r.Topology,
			},
			Metrics: map[string]float64{
				"aggregate_mbps":   r.AggregateMbps,
				"airtime_busy_pct": r.AirtimeBusyPct,
				"collisions":       float64(r.Collisions),
				"mpdus_sent":       float64(r.MPDUsSent),
				"mpdus_delivered":  float64(r.MPDUsDelivered),
				"retries":          float64(r.Retries),
				"queue_drops":      float64(r.QueueDrops),
				"no_retry_pct":     r.NoRetryPct,
				"decomp_failures":  float64(r.DecompFailures),
				"flows_done":       float64(r.FlowsDone),
				"flows_total":      float64(r.FlowsTotal),
			},
		}
		for i, v := range r.PerClientMbps {
			row.Metrics["per_client_mbps."+strconv.Itoa(i)] = v
		}
		for k, v := range r.Extra {
			row.Metrics["extra."+k] = v
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// isAxis reports whether col is a sweep-axis column.
func isAxis(col string) bool {
	for _, a := range AxisColumns {
		if a == col {
			return true
		}
	}
	return false
}

// numericAxes are the axis columns holding numbers; their values are
// re-canonicalized on load so "5.000" from a CSV emitter and "5" from
// FromResults land on the same group key.
var numericAxes = map[string]bool{
	"clients": true, "seed": true, "rate_kbps": true,
	"loss_pct": true, "snr_db": true,
}

// canonAxis normalizes one axis value to the FromResults form.
func canonAxis(col, raw string) (string, error) {
	if !numericAxes[col] {
		return raw, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return "", fmt.Errorf("results: bad %s value %q: %v", col, raw, err)
	}
	return Num(v), nil
}

// ReadCSV builds a Table from the campaign CSV emitter's output
// (WriteCSV). Axis values are canonicalized, the per_client_mbps
// column is expanded into per-index metrics, and skipped rows are
// dropped. Precision is bounded by the emitter's formatting (three
// decimals on goodputs).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("results: reading CSV header: %v", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	t := &Table{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("results: reading CSV row: %v", err)
		}
		if i, ok := col["skipped"]; ok && rec[i] == "true" {
			continue
		}
		row := Row{Axes: map[string]string{}, Metrics: map[string]float64{}}
		for name, i := range col {
			switch {
			case name == "campaign":
				if t.Campaign == "" {
					t.Campaign = rec[i]
				}
			case name == "index" || name == "skipped":
				// Ordering and skip state are not measurements.
			case name == "per_client_mbps":
				if rec[i] == "" {
					continue
				}
				for ci, s := range strings.Split(rec[i], "/") {
					v, err := strconv.ParseFloat(s, 64)
					if err != nil {
						return nil, fmt.Errorf("results: bad per_client_mbps %q: %v", rec[i], err)
					}
					row.Metrics["per_client_mbps."+strconv.Itoa(ci)] = v
				}
			case isAxis(name):
				v, err := canonAxis(name, rec[i])
				if err != nil {
					return nil, err
				}
				row.Axes[name] = v
			default:
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return nil, fmt.Errorf("results: bad metric %s=%q: %v", name, rec[i], err)
				}
				row.Metrics[name] = v
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ReadJSON builds a Table from the campaign JSON emitter's output
// (WriteJSON). Unlike CSV, the round trip is lossless: float64 values
// survive JSON encoding exactly.
func ReadJSON(r io.Reader) (*Table, error) {
	var rows []map[string]any
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("results: decoding JSON rows: %v", err)
	}
	t := &Table{}
	num := func(m map[string]any, key string) float64 {
		v, _ := m[key].(float64)
		return v
	}
	str := func(m map[string]any, key string) string {
		v, _ := m[key].(string)
		return v
	}
	for _, m := range rows {
		if skipped, _ := m["skipped"].(bool); skipped {
			continue
		}
		if t.Campaign == "" {
			t.Campaign = str(m, "campaign")
		}
		row := Row{Axes: map[string]string{}, Metrics: map[string]float64{}}
		for _, col := range AxisColumns {
			switch {
			case col == "mode" || col == "adapter" || col == "topology":
				row.Axes[col] = str(m, col)
			default:
				row.Axes[col] = Num(num(m, col))
			}
		}
		for _, metric := range ScalarMetrics {
			row.Metrics[metric] = num(m, metric)
		}
		if per, ok := m["per_client_mbps"].([]any); ok {
			for i, v := range per {
				f, _ := v.(float64)
				row.Metrics["per_client_mbps."+strconv.Itoa(i)] = f
			}
		}
		if extra, ok := m["extra"].(map[string]any); ok {
			for k, v := range extra {
				f, _ := v.(float64)
				row.Metrics["extra."+k] = f
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SweptAxes returns the axis columns that take more than one distinct
// value across the table, excluding the seed axis — the natural
// group-by set: repetitions (seeds) aggregate within a group while
// every other swept dimension separates groups.
func (t *Table) SweptAxes() []string {
	var out []string
	for _, col := range AxisColumns {
		if col == "seed" {
			continue
		}
		distinct := map[string]bool{}
		for _, r := range t.Rows {
			distinct[r.Axes[col]] = true
		}
		if len(distinct) > 1 {
			out = append(out, col)
		}
	}
	return out
}

// axisValues returns the sorted distinct values of one axis column.
func (t *Table) axisValues(col string) []string {
	distinct := map[string]bool{}
	for _, r := range t.Rows {
		distinct[r.Axes[col]] = true
	}
	vals := make([]string, 0, len(distinct))
	for v := range distinct {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return axisLess(vals[i], vals[j]) })
	return vals
}

// axisLess orders axis values numerically when both parse as numbers
// (so clients 10 sorts after 2), lexically otherwise.
func axisLess(a, b string) bool {
	fa, ea := strconv.ParseFloat(a, 64)
	fb, eb := strconv.ParseFloat(b, 64)
	if ea == nil && eb == nil {
		if fa != fb {
			return fa < fb
		}
		return a < b
	}
	return a < b
}
