package results

import (
	"reflect"
	"strings"
	"testing"

	"tcphack/internal/campaign"
)

func TestPointFingerprint(t *testing.T) {
	fields := map[string]string{"scenario": "sora-stock", "mode": "off", "seed": "1"}
	fp := PointFingerprint(CodeVersion, fields)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex chars", fp)
	}
	if fp != PointFingerprint(CodeVersion, fields) {
		t.Error("fingerprint not deterministic")
	}
	if fp == PointFingerprint("other-salt", fields) {
		t.Error("salt not folded into the fingerprint")
	}
	changed := map[string]string{"scenario": "sora-stock", "mode": "more-data", "seed": "1"}
	if fp == PointFingerprint(CodeVersion, changed) {
		t.Error("field change did not change the fingerprint")
	}
	// Insertion order is irrelevant: the hash sorts keys.
	reordered := map[string]string{"seed": "1", "mode": "off", "scenario": "sora-stock"}
	if fp != PointFingerprint(CodeVersion, reordered) {
		t.Error("fingerprint depends on map insertion order")
	}
}

// mergeRows builds n distinguishable rows for Merge tests.
func mergeRows(n int) campaign.Results {
	rows := make(campaign.Results, n)
	for i := range rows {
		rows[i] = campaign.Result{
			Campaign:      "merge-test",
			Point:         campaign.Point{Index: i, Seed: int64(i + 1)},
			AggregateMbps: float64(10 + i),
		}
	}
	return rows
}

func TestMergeReassemblesShards(t *testing.T) {
	full := mergeRows(5)
	// Out-of-order shards with one row delivered twice (identically).
	parts := []campaign.Results{
		{full[3], full[1]},
		{full[0], full[4]},
		{full[2], full[1]},
	}
	got, err := Merge(5, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, full) {
		t.Fatalf("merge = %+v, want %+v", got, full)
	}
}

func TestMergeRejectsConflictsAndGaps(t *testing.T) {
	full := mergeRows(3)

	conflict := full[1]
	conflict.AggregateMbps++
	if _, err := Merge(3, campaign.Results{full[0], full[1], full[2]}, campaign.Results{conflict}); err == nil ||
		!strings.Contains(err.Error(), "conflicting duplicate") {
		t.Errorf("conflicting duplicate not rejected: %v", err)
	}

	if _, err := Merge(3, campaign.Results{full[0], full[2]}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("gap not rejected: %v", err)
	}

	oob := full[0]
	oob.Index = 7
	if _, err := Merge(3, campaign.Results{oob}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range index not rejected: %v", err)
	}
}

// TestShapeDiffDiagnostics: a fingerprint mismatch must name the
// diverging component — campaign label or per-axis value sets — and a
// baseline from before shape recording must say so instead of
// guessing.
func TestShapeDiffDiagnostics(t *testing.T) {
	rs := testResults(t)
	agg, err := FromResults(rs).Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline(agg)

	// Same campaign, one axis swept differently: drop the 2-client rows.
	var narrower campaign.Results
	for _, r := range rs {
		if r.Clients == 1 {
			narrower = append(narrower, r)
		}
	}
	nagg, err := FromResults(narrower).Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(nagg, base, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FingerprintMatched {
		t.Fatal("narrower sweep matched the baseline fingerprint")
	}
	found := false
	for _, d := range cmp.ShapeDiff {
		if strings.Contains(d, "axis clients") && strings.Contains(d, "[1]") && strings.Contains(d, "[1 2]") {
			found = true
		}
		if strings.Contains(d, "axis mode") {
			t.Errorf("unchanged axis reported: %q", d)
		}
	}
	if !found {
		t.Errorf("clients-axis divergence not named: %v", cmp.ShapeDiff)
	}

	// Renamed campaign: the name is called out.
	renamed := make(campaign.Results, len(rs))
	copy(renamed, rs)
	for i := range renamed {
		renamed[i].Campaign = "other-name"
	}
	ragg, err := FromResults(renamed).Aggregate("mode", "clients")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err = Compare(ragg, base, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, d := range cmp.ShapeDiff {
		if strings.Contains(d, "campaign name") && strings.Contains(d, "other-name") {
			found = true
		}
	}
	if !found {
		t.Errorf("campaign rename not named: %v", cmp.ShapeDiff)
	}

	// A legacy baseline without recorded axes explains itself.
	legacy := *base
	legacy.Axes = nil
	legacy.Fingerprint = "stale"
	cmp, err = Compare(agg, &legacy, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.ShapeDiff) != 1 || !strings.Contains(cmp.ShapeDiff[0], "predates shape recording") {
		t.Errorf("legacy baseline diagnostic = %v", cmp.ShapeDiff)
	}
}
