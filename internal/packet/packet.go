// Package packet implements wire-format IPv4, TCP, and UDP headers.
//
// The simulator moves parsed header structs around for speed, but the
// formats here are real: Marshal produces RFC-conformant bytes with
// valid checksums and Unmarshal parses them back. ROHC compression
// (internal/rohc) operates on these exact bytes, so compressed-ACK
// sizes measured in experiments reflect genuine header redundancy, not
// a toy encoding.
//
// Hot paths that marshal per packet use MarshalAppend with a retained
// scratch buffer instead of Marshal; the two produce identical bytes,
// but the append form is allocation-free once its buffer has grown to
// the working size.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address.
type Addr [4]byte

// IP constructs an Addr from four octets.
func IP(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Protocol numbers used in the IPv4 header.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Header sizes in bytes.
const (
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20 // without options
)

// IPv4 is an IPv4 header (no options — the simulator never emits
// them, and ROHC-TCP's static chain assumes their absence).
type IPv4 struct {
	TOS      byte
	ID       uint16
	TTL      byte
	Protocol byte
	Src, Dst Addr
	// Length is the total datagram length (header + payload). Marshal
	// fills it from the payload length; Unmarshal reports the parsed
	// value.
	Length uint16
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// TCPOptions carries the TCP options the simulator's stack uses. A
// zero value means "option absent".
type TCPOptions struct {
	// MSS advertises the maximum segment size (SYN segments only).
	MSS uint16
	// WindowScale is the window shift count + 1 (0 = absent), so that
	// an advertised shift of 0 is representable.
	WindowScale uint8
	// SACKPermitted is sent on SYNs to negotiate selective ACKs.
	SACKPermitted bool
	// Timestamps: TSVal/TSEcr per RFC 7323. Present if HasTimestamps.
	HasTimestamps bool
	TSVal, TSEcr  uint32
	// SACKBlocks lists up to 3 (left, right) sequence edges (RFC 2018;
	// 3 when combined with timestamps).
	SACKBlocks [][2]uint32
}

// TCP is a TCP header plus options.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	Urgent           uint16
	Opt              TCPOptions
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	// Length is header + payload; Marshal computes it.
	Length uint16
}

// Packet is one IP datagram as it traverses the simulated network:
// parsed headers plus an opaque payload length. Payload bytes
// themselves are not materialized (the workloads are bulk transfers of
// synthetic data), but PayloadLen enters all length and checksum
// fields so the wire image is the right size.
type Packet struct {
	IP         IPv4
	TCP        *TCP // nil unless IP.Protocol == ProtoTCP
	UDP        *UDP // nil unless IP.Protocol == ProtoUDP
	PayloadLen int
}

// Len returns the total IP datagram length in bytes.
func (p *Packet) Len() int {
	n := IPv4HeaderLen + p.PayloadLen
	switch {
	case p.TCP != nil:
		n += TCPHeaderLen + p.TCP.Opt.wireLen()
	case p.UDP != nil:
		n += UDPHeaderLen
	}
	return n
}

// IsTCPAck reports whether p is a pure TCP ACK: an ACK-flagged segment
// carrying no payload and no SYN/FIN/RST. These are the packets HACK
// compresses into link-layer acknowledgments.
func (p *Packet) IsTCPAck() bool {
	return p.TCP != nil && p.PayloadLen == 0 &&
		p.TCP.Flags&FlagACK != 0 &&
		p.TCP.Flags&(FlagSYN|FlagFIN|FlagRST) == 0
}

// Clone returns a deep copy of p.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.TCP != nil {
		t := *p.TCP
		if len(p.TCP.Opt.SACKBlocks) > 0 {
			t.Opt.SACKBlocks = append([][2]uint32(nil), p.TCP.Opt.SACKBlocks...)
		}
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	return &q
}

func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("TCP %v:%d>%v:%d seq=%d ack=%d len=%d flags=%s",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			p.TCP.Seq, p.TCP.Ack, p.PayloadLen, flagString(p.TCP.Flags))
	case p.UDP != nil:
		return fmt.Sprintf("UDP %v:%d>%v:%d len=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, p.PayloadLen)
	}
	return fmt.Sprintf("IP %v>%v proto=%d len=%d", p.IP.Src, p.IP.Dst, p.IP.Protocol, p.PayloadLen)
}

func flagString(f byte) string {
	names := []struct {
		bit  byte
		name string
	}{
		{FlagSYN, "S"}, {FlagFIN, "F"}, {FlagRST, "R"},
		{FlagPSH, "P"}, {FlagACK, "A"}, {FlagURG, "U"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			s += n.name
		}
	}
	if s == "" {
		return "-"
	}
	return s
}

// wireLen returns the encoded length of the options, padded to a
// 4-byte boundary.
func (o *TCPOptions) wireLen() int {
	n := 0
	if o.MSS != 0 {
		n += 4
	}
	if o.WindowScale != 0 {
		n += 3
	}
	if o.SACKPermitted {
		n += 2
	}
	if o.HasTimestamps {
		n += 10
	}
	if len(o.SACKBlocks) > 0 {
		n += 2 + 8*len(o.SACKBlocks)
	}
	return (n + 3) &^ 3
}

func (o *TCPOptions) marshal(b []byte) int {
	i := 0
	if o.MSS != 0 {
		b[i], b[i+1] = 2, 4
		binary.BigEndian.PutUint16(b[i+2:], o.MSS)
		i += 4
	}
	if o.WindowScale != 0 {
		b[i], b[i+1], b[i+2] = 3, 3, o.WindowScale-1
		i += 3
	}
	if o.SACKPermitted {
		b[i], b[i+1] = 4, 2
		i += 2
	}
	if o.HasTimestamps {
		b[i], b[i+1] = 8, 10
		binary.BigEndian.PutUint32(b[i+2:], o.TSVal)
		binary.BigEndian.PutUint32(b[i+6:], o.TSEcr)
		i += 10
	}
	if len(o.SACKBlocks) > 0 {
		b[i], b[i+1] = 5, byte(2+8*len(o.SACKBlocks))
		i += 2
		for _, blk := range o.SACKBlocks {
			binary.BigEndian.PutUint32(b[i:], blk[0])
			binary.BigEndian.PutUint32(b[i+4:], blk[1])
			i += 8
		}
	}
	for i%4 != 0 {
		b[i] = 1 // NOP padding
		i++
	}
	return i
}

func parseTCPOptions(b []byte) (TCPOptions, error) {
	var o TCPOptions
	for i := 0; i < len(b); {
		kind := b[i]
		switch kind {
		case 0: // EOL
			return o, nil
		case 1: // NOP
			i++
			continue
		}
		if i+1 >= len(b) {
			return o, errors.New("packet: truncated TCP option")
		}
		l := int(b[i+1])
		if l < 2 || i+l > len(b) {
			return o, errors.New("packet: bad TCP option length")
		}
		body := b[i+2 : i+l]
		switch kind {
		case 2:
			if len(body) != 2 {
				return o, errors.New("packet: bad MSS option")
			}
			o.MSS = binary.BigEndian.Uint16(body)
		case 3:
			if len(body) != 1 {
				return o, errors.New("packet: bad wscale option")
			}
			o.WindowScale = body[0] + 1
		case 4:
			o.SACKPermitted = true
		case 8:
			if len(body) != 8 {
				return o, errors.New("packet: bad timestamp option")
			}
			o.HasTimestamps = true
			o.TSVal = binary.BigEndian.Uint32(body)
			o.TSEcr = binary.BigEndian.Uint32(body[4:])
		case 5:
			if len(body)%8 != 0 || len(body) == 0 {
				return o, errors.New("packet: bad SACK option")
			}
			for j := 0; j < len(body); j += 8 {
				o.SACKBlocks = append(o.SACKBlocks, [2]uint32{
					binary.BigEndian.Uint32(body[j:]),
					binary.BigEndian.Uint32(body[j+4:]),
				})
			}
		}
		i += l
	}
	return o, nil
}

// Marshal encodes the packet's headers into wire format. The payload
// is represented by PayloadLen zero bytes so checksums are stable and
// sizes exact.
func (p *Packet) Marshal() []byte {
	b := make([]byte, p.Len())
	p.marshalInto(b)
	return b
}

// MarshalAppend appends the packet's wire image to buf and returns the
// extended slice, allocating only when buf lacks capacity. Hot paths
// that marshal per packet (the ROHC header CRC) call it with a
// per-owner scratch buffer re-sliced to zero length, making the
// steady-state encode allocation-free:
//
//	c.scratch = p.MarshalAppend(c.scratch[:0])
//
// The appended bytes are identical to Marshal's output.
func (p *Packet) MarshalAppend(buf []byte) []byte {
	n := p.Len()
	off := len(buf)
	if cap(buf)-off < n {
		grown := make([]byte, off+n, 2*(off+n))
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:off+n]
	}
	seg := buf[off:]
	// Scratch reuse can hand back stale bytes; the encoders below skip
	// reserved fields and the zero payload, so clear first (compiles to
	// one memclr).
	for i := range seg {
		seg[i] = 0
	}
	p.marshalInto(seg)
	return buf
}

// marshalInto encodes the packet into b, which must be exactly Len()
// zeroed bytes.
func (p *Packet) marshalInto(b []byte) {
	ip := &p.IP
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(p.Len()))
	binary.BigEndian.PutUint16(b[4:], ip.ID)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	binary.BigEndian.PutUint16(b[10:], 0)
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))

	switch {
	case p.TCP != nil:
		t := p.TCP
		seg := b[IPv4HeaderLen:]
		binary.BigEndian.PutUint16(seg[0:], t.SrcPort)
		binary.BigEndian.PutUint16(seg[2:], t.DstPort)
		binary.BigEndian.PutUint32(seg[4:], t.Seq)
		binary.BigEndian.PutUint32(seg[8:], t.Ack)
		optLen := t.Opt.wireLen()
		seg[12] = byte((TCPHeaderLen+optLen)/4) << 4
		seg[13] = t.Flags
		binary.BigEndian.PutUint16(seg[14:], t.Window)
		binary.BigEndian.PutUint16(seg[18:], t.Urgent)
		t.Opt.marshal(seg[TCPHeaderLen : TCPHeaderLen+optLen])
		binary.BigEndian.PutUint16(seg[16:], 0)
		binary.BigEndian.PutUint16(seg[16:], pseudoChecksum(ip, ProtoTCP, seg))
	case p.UDP != nil:
		u := p.UDP
		seg := b[IPv4HeaderLen:]
		binary.BigEndian.PutUint16(seg[0:], u.SrcPort)
		binary.BigEndian.PutUint16(seg[2:], u.DstPort)
		binary.BigEndian.PutUint16(seg[4:], uint16(UDPHeaderLen+p.PayloadLen))
		binary.BigEndian.PutUint16(seg[6:], 0)
		binary.BigEndian.PutUint16(seg[6:], pseudoChecksum(ip, ProtoUDP, seg))
	}
}

// Unmarshal parses a wire-format IP datagram produced by Marshal (or
// any conformant encoder without IP options). It validates checksums.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < IPv4HeaderLen {
		return nil, errors.New("packet: short IPv4 header")
	}
	if b[0]>>4 != 4 {
		return nil, errors.New("packet: not IPv4")
	}
	ihl := int(b[0]&0xf) * 4
	if ihl != IPv4HeaderLen {
		return nil, errors.New("packet: IP options unsupported")
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return nil, errors.New("packet: bad IP checksum")
	}
	var p Packet
	p.IP = IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: b[9],
		Length:   binary.BigEndian.Uint16(b[2:]),
	}
	copy(p.IP.Src[:], b[12:16])
	copy(p.IP.Dst[:], b[16:20])
	total := int(p.IP.Length)
	if total > len(b) || total < ihl {
		return nil, errors.New("packet: bad IP length")
	}
	seg := b[ihl:total]
	switch p.IP.Protocol {
	case ProtoTCP:
		if len(seg) < TCPHeaderLen {
			return nil, errors.New("packet: short TCP header")
		}
		if pseudoChecksum(&p.IP, ProtoTCP, seg) != 0 {
			return nil, errors.New("packet: bad TCP checksum")
		}
		dataOff := int(seg[12]>>4) * 4
		if dataOff < TCPHeaderLen || dataOff > len(seg) {
			return nil, errors.New("packet: bad TCP data offset")
		}
		opt, err := parseTCPOptions(seg[TCPHeaderLen:dataOff])
		if err != nil {
			return nil, err
		}
		p.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(seg[0:]),
			DstPort: binary.BigEndian.Uint16(seg[2:]),
			Seq:     binary.BigEndian.Uint32(seg[4:]),
			Ack:     binary.BigEndian.Uint32(seg[8:]),
			Flags:   seg[13],
			Window:  binary.BigEndian.Uint16(seg[14:]),
			Urgent:  binary.BigEndian.Uint16(seg[18:]),
			Opt:     opt,
		}
		p.PayloadLen = len(seg) - dataOff
	case ProtoUDP:
		if len(seg) < UDPHeaderLen {
			return nil, errors.New("packet: short UDP header")
		}
		if pseudoChecksum(&p.IP, ProtoUDP, seg) != 0 {
			return nil, errors.New("packet: bad UDP checksum")
		}
		p.UDP = &UDP{
			SrcPort: binary.BigEndian.Uint16(seg[0:]),
			DstPort: binary.BigEndian.Uint16(seg[2:]),
			Length:  binary.BigEndian.Uint16(seg[4:]),
		}
		p.PayloadLen = len(seg) - UDPHeaderLen
	default:
		p.PayloadLen = len(seg)
	}
	return &p, nil
}

// Checksum computes the RFC 1071 Internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header.
func pseudoChecksum(ip *IPv4, proto byte, seg []byte) uint16 {
	var ph [12]byte
	copy(ph[0:4], ip.Src[:])
	copy(ph[4:8], ip.Dst[:])
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:], uint16(len(seg)))
	var sum uint32
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ph[i:]))
	}
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i:]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// FiveTuple identifies a TCP flow.
type FiveTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            byte
}

// Tuple extracts the flow five-tuple of a TCP packet; ok is false for
// non-TCP packets.
func (p *Packet) Tuple() (t FiveTuple, ok bool) {
	if p.TCP == nil {
		return t, false
	}
	return FiveTuple{
		Src: p.IP.Src, Dst: p.IP.Dst,
		SrcPort: p.TCP.SrcPort, DstPort: p.TCP.DstPort,
		Proto: ProtoTCP,
	}, true
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Src: t.Dst, Dst: t.Src,
		SrcPort: t.DstPort, DstPort: t.SrcPort,
		Proto: t.Proto,
	}
}

func (t FiveTuple) String() string {
	return fmt.Sprintf("%v:%d>%v:%d/%d", t.Src, t.SrcPort, t.Dst, t.DstPort, t.Proto)
}
