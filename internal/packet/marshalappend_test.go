package packet

import (
	"bytes"
	"testing"
)

func marshalCases() []*Packet {
	return []*Packet{
		{
			IP:  IPv4{TTL: 64, Protocol: ProtoTCP, ID: 7, Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2)},
			TCP: &TCP{SrcPort: 5001, DstPort: 80, Seq: 100, Ack: 200, Flags: FlagACK, Window: 512},
		},
		{
			IP: IPv4{TTL: 64, Protocol: ProtoTCP, ID: 9, Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2)},
			TCP: &TCP{
				SrcPort: 5001, DstPort: 80, Seq: 1, Flags: FlagSYN, Window: 0xffff,
				Opt: TCPOptions{
					MSS: 1460, WindowScale: 8, SACKPermitted: true,
					HasTimestamps: true, TSVal: 123, TSEcr: 456,
				},
			},
		},
		{
			IP: IPv4{TTL: 64, Protocol: ProtoTCP, ID: 11, Src: IP(10, 0, 0, 2), Dst: IP(10, 0, 0, 1)},
			TCP: &TCP{
				SrcPort: 80, DstPort: 5001, Seq: 5, Ack: 1000, Flags: FlagACK, Window: 512,
				Opt: TCPOptions{
					HasTimestamps: true, TSVal: 9, TSEcr: 8,
					SACKBlocks: [][2]uint32{{2000, 3000}, {4000, 5000}},
				},
			},
			PayloadLen: 0,
		},
		{
			IP:         IPv4{TTL: 64, Protocol: ProtoUDP, ID: 3, Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 3)},
			UDP:        &UDP{SrcPort: 9, DstPort: 9},
			PayloadLen: 1400,
		},
	}
}

// TestMarshalAppendMatchesMarshal: the append path must produce
// Marshal's exact bytes — fresh, appended after a prefix, and reusing
// a dirty scratch buffer (stale bytes must not leak into the image).
func TestMarshalAppendMatchesMarshal(t *testing.T) {
	for i, p := range marshalCases() {
		want := p.Marshal()
		if got := p.MarshalAppend(nil); !bytes.Equal(got, want) {
			t.Errorf("case %d: MarshalAppend(nil) differs\n got %x\nwant %x", i, got, want)
		}
		pre := []byte{1, 2, 3}
		got := p.MarshalAppend(pre)
		if !bytes.Equal(got[:3], pre) || !bytes.Equal(got[3:], want) {
			t.Errorf("case %d: MarshalAppend(prefix) differs", i)
		}
		// Dirty scratch reuse: fill with 0xff, then re-marshal over it.
		scratch := make([]byte, 0, len(want)+64)
		scratch = scratch[:cap(scratch)]
		for j := range scratch {
			scratch[j] = 0xff
		}
		scratch = scratch[:0]
		if got := p.MarshalAppend(scratch); !bytes.Equal(got, want) {
			t.Errorf("case %d: MarshalAppend(dirty scratch) differs\n got %x\nwant %x", i, got, want)
		}
		// Round-trip through the validating parser for good measure.
		if _, err := Unmarshal(p.MarshalAppend(nil)); err != nil {
			t.Errorf("case %d: Unmarshal(MarshalAppend): %v", i, err)
		}
	}
}

// TestMarshalAppendAllocFree pins the warm-buffer append path at zero
// allocations per op — the property the ROHC header CRC relies on.
func TestMarshalAppendAllocFree(t *testing.T) {
	p := marshalCases()[2] // timestamps + SACK: the largest ACK shape
	var scratch []byte
	scratch = p.MarshalAppend(scratch[:0])
	if n := testing.AllocsPerRun(200, func() {
		scratch = p.MarshalAppend(scratch[:0])
	}); n != 0 {
		t.Errorf("MarshalAppend (warm): %v allocs/op, want 0", n)
	}
}
