package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func tcpAck(seq, ack uint32) *Packet {
	return &Packet{
		IP: IPv4{TTL: 64, Protocol: ProtoTCP, ID: 7, Src: IP(10, 0, 0, 2), Dst: IP(192, 168, 1, 1)},
		TCP: &TCP{
			SrcPort: 50000, DstPort: 5001,
			Seq: seq, Ack: ack, Flags: FlagACK, Window: 4096,
		},
	}
}

func TestMarshalUnmarshalRoundtripTCP(t *testing.T) {
	p := tcpAck(100, 2920)
	p.TCP.Opt = TCPOptions{
		HasTimestamps: true, TSVal: 123456, TSEcr: 654321,
		SACKBlocks: [][2]uint32{{3000, 4460}},
	}
	b := p.Marshal()
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.TCP == nil {
		t.Fatal("lost TCP header")
	}
	if !reflect.DeepEqual(p.TCP, q.TCP) {
		t.Errorf("TCP headers differ:\n got %+v\nwant %+v", q.TCP, p.TCP)
	}
	if q.IP.Src != p.IP.Src || q.IP.Dst != p.IP.Dst || q.IP.ID != p.IP.ID {
		t.Errorf("IP header differs: %+v vs %+v", q.IP, p.IP)
	}
	if q.PayloadLen != 0 {
		t.Errorf("payload len %d, want 0", q.PayloadLen)
	}
}

func TestMarshalUnmarshalUDP(t *testing.T) {
	p := &Packet{
		IP:         IPv4{TTL: 64, Protocol: ProtoUDP, Src: IP(1, 2, 3, 4), Dst: IP(5, 6, 7, 8)},
		UDP:        &UDP{SrcPort: 9, DstPort: 10},
		PayloadLen: 1472,
	}
	b := p.Marshal()
	if len(b) != IPv4HeaderLen+UDPHeaderLen+1472 {
		t.Fatalf("marshal len %d", len(b))
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.UDP == nil || q.UDP.SrcPort != 9 || q.UDP.DstPort != 10 {
		t.Errorf("UDP header %+v", q.UDP)
	}
	if q.PayloadLen != 1472 {
		t.Errorf("payload %d, want 1472", q.PayloadLen)
	}
}

func TestChecksumValidation(t *testing.T) {
	p := tcpAck(1, 2)
	b := p.Marshal()
	// Verify self-check passes, then corrupt one byte everywhere and
	// ensure some checksum fails (IP or TCP depending on position).
	if _, err := Unmarshal(b); err != nil {
		t.Fatalf("clean packet rejected: %v", err)
	}
	for i := range b {
		c := bytes.Clone(b)
		c[i] ^= 0xff
		if _, err := Unmarshal(c); err == nil {
			// Flipping only the urgent pointer together with checksum
			// cannot happen with one byte; any single-byte flip must fail.
			t.Errorf("corruption at byte %d undetected", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10), // short
		append([]byte{0x65}, make([]byte, 19)...), // IPv6 version nibble
		append([]byte{0x46}, make([]byte, 23)...), // IHL 6 (options)
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	// Truncated TCP.
	p := tcpAck(1, 2)
	b := p.Marshal()
	if _, err := Unmarshal(b[:IPv4HeaderLen+10]); err == nil {
		t.Error("truncated TCP accepted")
	}
}

func TestOptionEncoding(t *testing.T) {
	o := TCPOptions{MSS: 1460, WindowScale: 8, SACKPermitted: true, HasTimestamps: true, TSVal: 1, TSEcr: 0}
	p := tcpAck(0, 0)
	p.TCP.Flags = FlagSYN
	p.TCP.Opt = o
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := q.TCP.Opt
	if got.MSS != 1460 || got.WindowScale != 8 || !got.SACKPermitted || !got.HasTimestamps {
		t.Errorf("options lost: %+v", got)
	}
	// WindowScale encodes shift+1 so shift 0 is distinguishable from absent.
	p2 := tcpAck(0, 0)
	p2.TCP.Opt.WindowScale = 1 // shift 0
	q2, err := Unmarshal(p2.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q2.TCP.Opt.WindowScale != 1 {
		t.Errorf("shift-0 wscale roundtrip = %d, want 1", q2.TCP.Opt.WindowScale)
	}
}

func TestOptionWireLenPadding(t *testing.T) {
	var o TCPOptions
	if o.wireLen() != 0 {
		t.Errorf("empty options len %d", o.wireLen())
	}
	o.HasTimestamps = true
	if o.wireLen() != 12 { // 10 rounded to 12
		t.Errorf("ts options len %d, want 12", o.wireLen())
	}
	o.SACKBlocks = [][2]uint32{{1, 2}, {3, 4}}
	if o.wireLen()%4 != 0 {
		t.Errorf("options len %d not 4-aligned", o.wireLen())
	}
}

func TestIsTCPAck(t *testing.T) {
	p := tcpAck(1, 100)
	if !p.IsTCPAck() {
		t.Error("pure ACK not detected")
	}
	p.PayloadLen = 10
	if p.IsTCPAck() {
		t.Error("data segment treated as pure ACK")
	}
	p.PayloadLen = 0
	p.TCP.Flags |= FlagSYN
	if p.IsTCPAck() {
		t.Error("SYN-ACK treated as pure ACK")
	}
	u := &Packet{IP: IPv4{Protocol: ProtoUDP}, UDP: &UDP{}}
	if u.IsTCPAck() {
		t.Error("UDP treated as TCP ACK")
	}
}

func TestClone(t *testing.T) {
	p := tcpAck(5, 6)
	p.TCP.Opt.SACKBlocks = [][2]uint32{{1, 2}}
	q := p.Clone()
	q.TCP.Seq = 99
	q.TCP.Opt.SACKBlocks[0][0] = 77
	if p.TCP.Seq != 5 {
		t.Error("clone aliases TCP header")
	}
	if p.TCP.Opt.SACKBlocks[0][0] != 1 {
		t.Error("clone aliases SACK blocks")
	}
}

func TestTupleReverse(t *testing.T) {
	p := tcpAck(0, 0)
	tp, ok := p.Tuple()
	if !ok {
		t.Fatal("no tuple for TCP packet")
	}
	r := tp.Reverse()
	if r.Src != tp.Dst || r.SrcPort != tp.DstPort || r.Reverse() != tp {
		t.Errorf("reverse broken: %v / %v", tp, r)
	}
	u := &Packet{IP: IPv4{Protocol: ProtoUDP}, UDP: &UDP{}}
	if _, ok := u.Tuple(); ok {
		t.Error("tuple for UDP")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 0001 f203 f4f5 f6f7 = 0x220d (ones
	// complement of ddf2).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("checksum = %#x, want 0x220d", got)
	}
	// Odd length.
	if got := Checksum([]byte{0xff}); got != 0x00ff {
		t.Errorf("odd checksum = %#x", got)
	}
}

// Property: Marshal→Unmarshal is the identity on randomized valid ACKs.
func TestRoundtripProperty(t *testing.T) {
	f := func(seq, ack, tsv, tse uint32, win uint16, id uint16, sackL, sackR uint32, hasTS, hasSACK bool) bool {
		p := tcpAck(seq, ack)
		p.IP.ID = id
		p.TCP.Window = win
		if hasTS {
			p.TCP.Opt.HasTimestamps = true
			p.TCP.Opt.TSVal, p.TCP.Opt.TSEcr = tsv, tse
		}
		if hasSACK {
			if sackR < sackL {
				sackL, sackR = sackR, sackL
			}
			p.TCP.Opt.SACKBlocks = [][2]uint32{{sackL, sackR}}
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p.TCP, q.TCP) && p.IP.ID == q.IP.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	p := tcpAck(1, 2)
	if s := p.String(); s == "" {
		t.Error("empty TCP string")
	}
	u := &Packet{IP: IPv4{Protocol: ProtoUDP, Src: IP(1, 2, 3, 4)}, UDP: &UDP{SrcPort: 1, DstPort: 2}}
	if s := u.String(); s == "" {
		t.Error("empty UDP string")
	}
	raw := &Packet{IP: IPv4{Protocol: 89}}
	if s := raw.String(); s == "" {
		t.Error("empty raw string")
	}
	if flagString(0) != "-" {
		t.Error("zero flags should format as -")
	}
	if flagString(FlagSYN|FlagACK) != "SA" {
		t.Errorf("SYN|ACK = %q", flagString(FlagSYN|FlagACK))
	}
}

func BenchmarkMarshalACK(b *testing.B) {
	p := tcpAck(1, 2)
	p.TCP.Opt.HasTimestamps = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Marshal()
	}
}

func BenchmarkUnmarshalACK(b *testing.B) {
	p := tcpAck(1, 2)
	p.TCP.Opt.HasTimestamps = true
	buf := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
