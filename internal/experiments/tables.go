package experiments

import (
	"tcphack/internal/campaign"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
)

// tableModes is the stock-vs-HACK comparison both tables sweep.
var tableModes = []hack.Mode{hack.ModeOff, hack.ModeMoreData}

func tableProtocol(m hack.Mode) string {
	if m == hack.ModeMoreData {
		return "HACK"
	}
	return "TCP"
}

// Table2Row is one protocol's row of Table 2: how a fixed 25 MB
// transfer's TCP ACKs travelled.
type Table2Row struct {
	Protocol         string
	NativeAcks       uint64
	NativeAckBytes   uint64
	CompressedAcks   uint64
	CompressedBytes  uint64
	CompressionRatio float64
}

// Table2 transfers a fixed payload over the SoRa scenario under stock
// TCP and TCP/HACK, accounting every TCP ACK (paper Table 2; the paper
// used 25 MB — bytes scales the workload). Both protocols run as one
// campaign in fixed-duration mode.
func Table2(o Options, bytes uint64) []Table2Row {
	o = o.withDefaults()
	if bytes == 0 {
		bytes = 25 << 20
	}
	spec := o.spec("table2", soraBase(hack.ModeOff))
	spec.Axes = campaign.Axes{Modes: tableModes, Seeds: []int64{o.Seed}}
	spec.Duration = 400 * sim.Second
	spec.Workload = func(n *node.Network, pt campaign.Point) {
		n.StartDownload(0, bytes, 0)
	}
	accts := make([]stats.AckAccounting, len(spec.Points()))
	spec.Collect = func(n *node.Network, r *campaign.Result) {
		accts[r.Index] = n.Clients[0].Driver.Acct
	}
	results := campaign.Run(spec)

	var rows []Table2Row
	for _, r := range results {
		acct := accts[r.Index]
		row := Table2Row{
			Protocol:         tableProtocol(r.Mode),
			NativeAcks:       acct.NativeAcks,
			NativeAckBytes:   acct.NativeAckBytes,
			CompressedAcks:   acct.CompressedAcks,
			CompressedBytes:  acct.CompressedBytes,
			CompressionRatio: acct.CompressionRatio(),
		}
		if r.FlowsDone < r.FlowsTotal {
			row.Protocol += " (incomplete)"
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3Row is one protocol's row of Table 3: where TCP-ACK time goes.
type Table3Row struct {
	Protocol  string
	Breakdown stats.TimeBreakdown
}

// Table3 reruns the Table 2 workload and reports the per-cause time
// spent delivering TCP ACKs (paper Table 3).
func Table3(o Options, bytes uint64) []Table3Row {
	o = o.withDefaults()
	if bytes == 0 {
		bytes = 25 << 20
	}
	spec := o.spec("table3", soraBase(hack.ModeOff))
	spec.Axes = campaign.Axes{Modes: tableModes, Seeds: []int64{o.Seed}}
	spec.Duration = 400 * sim.Second
	spec.Workload = func(n *node.Network, pt campaign.Point) {
		n.StartDownload(0, bytes, 0)
	}
	breakdowns := make([]stats.TimeBreakdown, len(spec.Points()))
	spec.Collect = func(n *node.Network, r *campaign.Result) {
		var b stats.TimeBreakdown
		b.Add(n.Clients[0].MAC.TCPAckTime) // native ACK costs at the client
		b.Add(n.AP.MAC.TCPAckTime)
		breakdowns[r.Index] = b
	}
	results := campaign.Run(spec)

	var rows []Table3Row
	for _, r := range results {
		rows = append(rows, Table3Row{Protocol: tableProtocol(r.Mode), Breakdown: breakdowns[r.Index]})
	}
	return rows
}

// XValRow is one cell of the §4.2 SoRa/ns-3 cross-validation: the same
// protocol with and without the SoRa LL ACK latency artifact.
type XValRow struct {
	Protocol      string
	IdealMbps     float64 // simulator without SoRa artifacts ("ns-3")
	SoRaModeMbps  float64 // with the 37 µs LL ACK delay
	RecoveredMbps float64 // SoRa mode with the delay cost added back
}

// CrossValidation reproduces §4.2's reconciliation: removing the SoRa
// LL ACK delay from the simulation must close most of the gap to the
// ideal-MAC numbers. The four (protocol × MAC model) cells run as two
// parallel campaigns.
func CrossValidation(o Options) []XValRow {
	o = o.withDefaults()
	run := func(name string, sora bool) campaign.Results {
		base := soraBase(hack.ModeOff)
		if !sora {
			base.AckTurnaround = 0
			base.AckTimeoutSlack = 0
		}
		spec := o.spec(name, base)
		spec.Axes = campaign.Axes{Modes: tableModes, Seeds: []int64{o.Seed}}
		spec.Build = buildSora
		spec.Workload = soraWorkload(false)
		return campaign.Run(spec)
	}
	ideal := run("xval-ideal", false)
	sora := run("xval-sora", true)

	var rows []XValRow
	for i, mode := range tableModes {
		proto := tableProtocol(mode)
		rows = append(rows, XValRow{
			Protocol: proto, IdealMbps: ideal[i].AggregateMbps, SoRaModeMbps: sora[i].AggregateMbps,
			RecoveredMbps: removeAckDelay(sora[i].AggregateMbps, proto == "TCP"),
		})
	}
	return rows
}

// removeAckDelay post-processes a SoRa-mode goodput the way the paper
// does (§4.2): subtract the extra 37 µs LL ACK turnaround from each
// exchange's time base. Stock TCP pays it on the data frame and
// (amortized over two segments) on the TCP ACK frame; HACK only on the
// data frame.
func removeAckDelay(mbps float64, stockTCP bool) float64 {
	if mbps <= 0 {
		return 0
	}
	const payload = 1448.0 // bytes per data segment
	extra := 37e-6         // data frame's late LL ACK
	if stockTCP {
		extra += 37e-6 / 2 // the TCP ACK frame's late LL ACK, per segment
	}
	perPkt := payload * 8 / (mbps * 1e6)
	if perPkt <= extra {
		return mbps
	}
	return payload * 8 / (perPkt - extra) / 1e6
}
