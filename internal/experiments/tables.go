package experiments

import (
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
)

// Table2Row is one protocol's row of Table 2: how a fixed 25 MB
// transfer's TCP ACKs travelled.
type Table2Row struct {
	Protocol         string
	NativeAcks       uint64
	NativeAckBytes   uint64
	CompressedAcks   uint64
	CompressedBytes  uint64
	CompressionRatio float64
}

// Table2 transfers a fixed payload over the SoRa scenario under stock
// TCP and TCP/HACK, accounting every TCP ACK (paper Table 2; the paper
// used 25 MB — bytes scales the workload).
func Table2(o Options, bytes uint64) []Table2Row {
	o = o.withDefaults()
	if bytes == 0 {
		bytes = 25 << 20
	}
	var rows []Table2Row
	for _, proto := range []string{"TCP", "HACK"} {
		mode := hack.ModeOff
		if proto == "HACK" {
			mode = hack.ModeMoreData
		}
		n := node.New(soraConfig(mode, 1, o.Seed))
		f := n.StartDownload(0, bytes, 0)
		n.Run(400 * sim.Second)
		acct := n.Clients[0].Driver.Acct
		rows = append(rows, Table2Row{
			Protocol:         proto,
			NativeAcks:       acct.NativeAcks,
			NativeAckBytes:   acct.NativeAckBytes,
			CompressedAcks:   acct.CompressedAcks,
			CompressedBytes:  acct.CompressedBytes,
			CompressionRatio: acct.CompressionRatio(),
		})
		if !f.Done {
			rows[len(rows)-1].Protocol += " (incomplete)"
		}
	}
	return rows
}

// Table3Row is one protocol's row of Table 3: where TCP-ACK time goes.
type Table3Row struct {
	Protocol  string
	Breakdown stats.TimeBreakdown
}

// Table3 reruns the Table 2 workload and reports the per-cause time
// spent delivering TCP ACKs (paper Table 3).
func Table3(o Options, bytes uint64) []Table3Row {
	o = o.withDefaults()
	if bytes == 0 {
		bytes = 25 << 20
	}
	var rows []Table3Row
	for _, proto := range []string{"TCP", "HACK"} {
		mode := hack.ModeOff
		if proto == "HACK" {
			mode = hack.ModeMoreData
		}
		n := node.New(soraConfig(mode, 1, o.Seed))
		n.StartDownload(0, bytes, 0)
		n.Run(400 * sim.Second)
		var b stats.TimeBreakdown
		b.Add(n.Clients[0].MAC.TCPAckTime) // native ACK costs at the client
		b.Add(n.AP.MAC.TCPAckTime)
		rows = append(rows, Table3Row{Protocol: proto, Breakdown: b})
	}
	return rows
}

// XValRow is one cell of the §4.2 SoRa/ns-3 cross-validation: the same
// protocol with and without the SoRa LL ACK latency artifact.
type XValRow struct {
	Protocol      string
	IdealMbps     float64 // simulator without SoRa artifacts ("ns-3")
	SoRaModeMbps  float64 // with the 37 µs LL ACK delay
	RecoveredMbps float64 // SoRa mode with the delay cost added back
}

// CrossValidation reproduces §4.2's reconciliation: removing the SoRa
// LL ACK delay from the simulation must close most of the gap to the
// ideal-MAC numbers.
func CrossValidation(o Options) []XValRow {
	o = o.withDefaults()
	run := func(mode hack.Mode, sora bool) float64 {
		cfg := soraConfig(mode, 1, o.Seed)
		if !sora {
			cfg.AckTurnaround = 0
			cfg.AckTimeoutSlack = 0
		}
		n := buildSora(cfg, "TCP", 1)
		n.Run(o.Warmup)
		n.Clients[0].Goodput.MarkWindow(n.Sched.Now())
		n.Run(o.Warmup + o.Measure)
		return n.Clients[0].Goodput.WindowMbps(n.Sched.Now())
	}
	var rows []XValRow
	for _, proto := range []string{"TCP", "HACK"} {
		mode := hack.ModeOff
		if proto == "HACK" {
			mode = hack.ModeMoreData
		}
		ideal := run(mode, false)
		sora := run(mode, true)
		rows = append(rows, XValRow{
			Protocol: proto, IdealMbps: ideal, SoRaModeMbps: sora,
			RecoveredMbps: removeAckDelay(sora, proto == "TCP"),
		})
	}
	return rows
}

// removeAckDelay post-processes a SoRa-mode goodput the way the paper
// does (§4.2): subtract the extra 37 µs LL ACK turnaround from each
// exchange's time base. Stock TCP pays it on the data frame and
// (amortized over two segments) on the TCP ACK frame; HACK only on the
// data frame.
func removeAckDelay(mbps float64, stockTCP bool) float64 {
	if mbps <= 0 {
		return 0
	}
	const payload = 1448.0 // bytes per data segment
	extra := 37e-6         // data frame's late LL ACK
	if stockTCP {
		extra += 37e-6 / 2 // the TCP ACK frame's late LL ACK, per segment
	}
	perPkt := payload * 8 / (mbps * 1e6)
	if perPkt <= extra {
		return mbps
	}
	return payload * 8 / (perPkt - extra) / 1e6
}
