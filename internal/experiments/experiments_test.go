package experiments

import (
	"testing"

	"tcphack/internal/sim"
)

// quick keeps experiment smoke tests fast; the bench harness runs the
// full windows.
var quick = Options{Warmup: 1 * sim.Second, Measure: 1 * sim.Second, Runs: 1, Seed: 1}

func TestFig1aShape(t *testing.T) {
	rows := Fig1a()
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if !(r.TCPMbps < r.HACKMbps && r.HACKMbps < r.UDPMbps) {
			t.Errorf("%v: ordering broken (%.1f/%.1f/%.1f)", r.Rate, r.TCPMbps, r.HACKMbps, r.UDPMbps)
		}
	}
	// At 54 Mbps: TCP ≈24, HACK ≈29 (§2.1-derived).
	last := rows[len(rows)-1]
	if last.TCPMbps < 22 || last.TCPMbps > 25 || last.HACKMbps < 27 || last.HACKMbps > 30 {
		t.Errorf("54 Mbps row: tcp=%.1f hack=%.1f", last.TCPMbps, last.HACKMbps)
	}
}

func TestFig1bShape(t *testing.T) {
	rows := Fig1b()
	if len(rows) != 32 {
		t.Fatalf("%d rows, want 32 (8 MCS × 4 streams)", len(rows))
	}
	// Gain at 600 Mbps ≈ 20% (paper Figure 1b).
	top := rows[len(rows)-1]
	if top.Rate.Kbps != 600000 {
		t.Fatalf("last row rate %v", top.Rate)
	}
	if top.GainPct < 15 || top.GainPct > 25 {
		t.Errorf("gain@600 = %.1f%%, want ≈20%%", top.GainPct)
	}
}

func TestFig9Shape(t *testing.T) {
	cells := Fig9(quick)
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	byKey := map[string]Fig9Cell{}
	for _, c := range cells {
		byKey[c.Protocol+string(rune('0'+c.Clients))] = c
	}
	// Ordering per the paper: UDP > HACK > TCP for each client count.
	for _, k := range []string{"1", "2"} {
		udp, hck, tcp := byKey["UDP"+k], byKey["HACK"+k], byKey["TCP"+k]
		if !(udp.TotalMbps > hck.TotalMbps && hck.TotalMbps > tcp.TotalMbps) {
			t.Errorf("clients=%s ordering: udp=%.1f hack=%.1f tcp=%.1f",
				k, udp.TotalMbps, hck.TotalMbps, tcp.TotalMbps)
		}
		// Table 1's shape: HACK retries ≪ TCP retries.
		if hck.NoRetryPct <= tcp.NoRetryPct {
			t.Errorf("clients=%s no-retry%%: hack=%.1f tcp=%.1f (want hack higher)",
				k, hck.NoRetryPct, tcp.NoRetryPct)
		}
	}
	// HACK's gain over stock in the paper: 29% (one client), 32% (two).
	gain1 := (byKey["HACK1"].TotalMbps - byKey["TCP1"].TotalMbps) / byKey["TCP1"].TotalMbps * 100
	if gain1 < 10 || gain1 > 45 {
		t.Errorf("one-client HACK gain = %.1f%%, want ≈29%%", gain1)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(quick, 4<<20) // 4 MB keeps the test quick
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	tcp, hck := rows[0], rows[1]
	if tcp.CompressedAcks != 0 {
		t.Errorf("stock TCP compressed %d ACKs", tcp.CompressedAcks)
	}
	if tcp.NativeAcks == 0 {
		t.Error("stock TCP sent no ACKs")
	}
	// HACK: virtually all ACKs compressed; ratio ≈ 12 (paper Table 2).
	if hck.CompressedAcks < 9*hck.NativeAcks {
		t.Errorf("HACK: %d compressed vs %d native, want compressed ≫ native",
			hck.CompressedAcks, hck.NativeAcks)
	}
	// The paper reports ≈12× on its 25 MB steady run; a short 4 MB run
	// carries more recovery-phase ACKs with explicit (larger) deltas,
	// landing lower. The steady-state encoder ratio is covered by the
	// rohc unit tests.
	if hck.CompressionRatio < 6 || hck.CompressionRatio > 16 {
		t.Errorf("compression ratio = %.1f, want ≈8-12", hck.CompressionRatio)
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3(quick, 4<<20)
	tcp, hck := rows[0].Breakdown, rows[1].Breakdown
	// Paper Table 3: stock TCP's channel-acquisition and LL ACK
	// overheads dwarf HACK's by orders of magnitude.
	if hck.ChannelWait*10 > tcp.ChannelWait {
		t.Errorf("channel wait: hack=%v tcp=%v, want ≫10× reduction",
			hck.ChannelWait, tcp.ChannelWait)
	}
	if hck.TCPAckAir*10 > tcp.TCPAckAir {
		t.Errorf("ACK airtime: hack=%v tcp=%v", hck.TCPAckAir, tcp.TCPAckAir)
	}
	if hck.ROHCAir == 0 {
		t.Error("HACK spent no time on compressed ACKs")
	}
	if tcp.ROHCAir != 0 {
		t.Error("stock TCP has ROHC airtime")
	}
}

func TestCrossValidationShape(t *testing.T) {
	rows := CrossValidation(quick)
	for _, r := range rows {
		// SoRa mode must cost throughput; removing the delay must
		// recover most of the gap (paper §4.2: 19.6→22 vs 22.4 ideal).
		if r.SoRaModeMbps >= r.IdealMbps {
			t.Errorf("%s: SoRa mode (%.1f) not below ideal (%.1f)", r.Protocol, r.SoRaModeMbps, r.IdealMbps)
		}
		gapBefore := r.IdealMbps - r.SoRaModeMbps
		gapAfter := r.IdealMbps - r.RecoveredMbps
		if gapAfter > gapBefore*0.7 {
			t.Errorf("%s: recovery closed too little (%.1f→%.1f vs ideal %.1f)",
				r.Protocol, r.SoRaModeMbps, r.RecoveredMbps, r.IdealMbps)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(quick, []int{1, 2})
	if len(rows) != 8 {
		t.Fatalf("rows %d, want 8", len(rows))
	}
	get := func(clients int, proto string) Fig10Row {
		for _, r := range rows {
			if r.Clients == clients && r.Protocol == proto {
				return r
			}
		}
		t.Fatalf("missing row %d/%s", clients, proto)
		return Fig10Row{}
	}
	for _, c := range []int{1, 2} {
		udp := get(c, "UDP")
		hck := get(c, "HACK MoreData")
		tcp := get(c, "TCP")
		if !(udp.AggregateMbps > hck.AggregateMbps && hck.AggregateMbps > tcp.AggregateMbps) {
			t.Errorf("clients=%d: udp=%.1f hack=%.1f tcp=%.1f (paper ordering broken)",
				c, udp.AggregateMbps, hck.AggregateMbps, tcp.AggregateMbps)
		}
		// Paper: 15–22% gains for MORE DATA HACK.
		if hck.GainOverTCPPct < 8 || hck.GainOverTCPPct > 30 {
			t.Errorf("clients=%d: HACK gain %.1f%%, want ≈15-22%%", c, hck.GainOverTCPPct)
		}
		// Opportunistic ≈ stock (the paper's surprise finding): no
		// dramatic gain.
		opp := get(c, "Opp. HACK")
		if opp.GainOverTCPPct > hck.GainOverTCPPct {
			t.Errorf("clients=%d: opportunistic (%.1f%%) beat MORE DATA (%.1f%%)",
				c, opp.GainOverTCPPct, hck.GainOverTCPPct)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	res := Fig11(quick, []float64{10, 25}, nil)
	// Envelope must grow with SNR.
	if res.EnvelopeTCP[25] <= res.EnvelopeTCP[10] {
		t.Errorf("TCP envelope not increasing: %v", res.EnvelopeTCP)
	}
	// HACK envelope above TCP envelope at usable SNRs.
	for _, snr := range []float64{10, 25} {
		if res.EnvelopeHACK[snr] <= res.EnvelopeTCP[snr] {
			t.Errorf("snr=%v: hack=%.1f ≤ tcp=%.1f",
				snr, res.EnvelopeHACK[snr], res.EnvelopeTCP[snr])
		}
	}
	if res.MeanImprovementPct < 5 || res.MeanImprovementPct > 30 {
		t.Errorf("mean improvement %.1f%%, want ≈12.6%%", res.MeanImprovementPct)
	}
}

// TestFig11AdapterMatchesEnvelope cross-validates the reworked Figure
// 11 against the legacy method it replaced: at usable SNRs the
// IdealSNR adapter (one simulation per SNR) must land within 10% of
// the fixed-rate-sweep envelope, and the stock-vs-HACK ordering must
// be preserved.
func TestFig11AdapterMatchesEnvelope(t *testing.T) {
	snrs := []float64{25, 30}
	adaptive := Fig11(quick, snrs, nil)
	envelope := Fig11Envelope(quick, snrs, nil)
	if adaptive.Method != "ideal" || envelope.Method != "envelope" {
		t.Fatalf("methods: %q / %q", adaptive.Method, envelope.Method)
	}
	for _, snr := range snrs {
		for _, c := range []struct {
			proto   string
			ad, env float64
		}{
			{proto: "TCP", ad: adaptive.EnvelopeTCP[snr], env: envelope.EnvelopeTCP[snr]},
			{proto: "HACK", ad: adaptive.EnvelopeHACK[snr], env: envelope.EnvelopeHACK[snr]},
		} {
			if c.env <= 0 {
				t.Fatalf("%s envelope empty at %v dB", c.proto, snr)
			}
			if diff := (c.ad - c.env) / c.env; diff < -0.10 {
				t.Errorf("snr=%v %s: adapter %.1f Mbps is %.1f%% below envelope %.1f Mbps",
					snr, c.proto, c.ad, -diff*100, c.env)
			}
		}
		if adaptive.EnvelopeHACK[snr] <= adaptive.EnvelopeTCP[snr] {
			t.Errorf("snr=%v: adapter path lost the HACK>TCP ordering (%.1f vs %.1f)",
				snr, adaptive.EnvelopeHACK[snr], adaptive.EnvelopeTCP[snr])
		}
	}
}

// TestFig11MinstrelUsable: the Minstrel variant of the reworked
// figure must stay in the same ballpark as the oracle at a clean
// operating point (it pays for probes and learning).
func TestFig11MinstrelUsable(t *testing.T) {
	snrs := []float64{30}
	oracle := Fig11(quick, snrs, nil)
	minstrel := Fig11Adaptive(quick, snrs, nil, "minstrel")
	for _, m := range []map[float64]float64{minstrel.EnvelopeTCP, minstrel.EnvelopeHACK} {
		if m[30] <= 0 {
			t.Fatalf("minstrel produced no goodput: %v", minstrel)
		}
	}
	if minstrel.EnvelopeTCP[30] < oracle.EnvelopeTCP[30]*0.85 {
		t.Errorf("minstrel TCP %.1f Mbps ≪ oracle %.1f Mbps at 30 dB",
			minstrel.EnvelopeTCP[30], oracle.EnvelopeTCP[30])
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(quick, nil)
	if len(rows) != 8 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		// Simulated goodput at or below theory (collisions, TCP
		// dynamics); allow 5% modelling slack on the approximate
		// analytical curves.
		if r.SimTCP >= r.TheoryTCP*1.05 {
			t.Errorf("%v: sim TCP %.1f ≥ theory %.1f", r.Rate, r.SimTCP, r.TheoryTCP)
		}
		if r.SimHACK >= r.TheoryHACK*1.05 {
			t.Errorf("%v: sim HACK %.1f ≥ theory %.1f", r.Rate, r.SimHACK, r.TheoryHACK)
		}
	}
	// Paper: at 150 Mbps the simulated gain (14%) exceeds the
	// analytical prediction (7%) because HACK also removes collisions.
	top := rows[len(rows)-1]
	if top.SimGainPct <= top.TheoGainPct {
		t.Errorf("sim gain %.1f%% ≤ theory gain %.1f%% at 150 Mbps; paper finds the opposite",
			top.SimGainPct, top.TheoGainPct)
	}
}

func TestSpatialGridShape(t *testing.T) {
	rows := SpatialGrid(quick, []int{1, 2}, []int{1})
	if len(rows) != 4 {
		t.Fatalf("rows %d, want 4", len(rows))
	}
	get := func(aps int, mode string) SpatialRow {
		for _, r := range rows {
			if r.APs == aps && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("missing row aps=%d mode=%s", aps, mode)
		return SpatialRow{}
	}
	for _, aps := range []int{1, 2} {
		off := get(aps, "off")
		hck := get(aps, "more-data")
		if off.AggregateMbps <= 0 || hck.AggregateMbps <= 0 {
			t.Errorf("aps=%d: zero goodput (off %.1f, hack %.1f)",
				aps, off.AggregateMbps, hck.AggregateMbps)
		}
		if hck.GainOverTCPPct < 0 {
			t.Errorf("aps=%d: HACK gain %.1f%% negative", aps, hck.GainOverTCPPct)
		}
		if off.Efficiency <= 0 || off.Efficiency >= 1 {
			t.Errorf("aps=%d: efficiency %.3f outside (0,1)", aps, off.Efficiency)
		}
	}
	// Two contending BSSs split one channel: aggregate must not double,
	// and per-deployment goodput cannot exceed the single-BSS cell by
	// much (the exposed-terminal sharing regime at 30 m spacing).
	if one, two := get(1, "off").AggregateMbps, get(2, "off").AggregateMbps; two > 1.5*one {
		t.Errorf("2-BSS aggregate %.1f vs 1-BSS %.1f — contention should cap sharing", two, one)
	}
}
