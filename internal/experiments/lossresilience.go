package experiments

import (
	"tcphack/internal/campaign"
	"tcphack/internal/hack"
	"tcphack/internal/results"
	"tcphack/internal/scenario"
)

// LossResilienceRow is one cell of the loss-resilience grid: goodput
// and the §4.3 health counter for one (loss, mode, adapter) point,
// averaged over the sweep's seeds.
type LossResilienceRow struct {
	LossPct        float64
	Mode           hack.Mode
	Adapter        string
	GoodputMbps    float64
	GoodputStdDev  float64
	Retries        float64
	DecompFailures float64
	// AirtimeEff is useful airtime over total busy airtime (the airtime
	// ledger's efficiency metric): the medium-utilization view of what
	// goodput alone can hide — a mode can hold goodput while burning
	// more of the medium on retries and ACK transport.
	AirtimeEff float64
}

// LossResilienceSNRdB is the channel SNR the loss-resilience sweep
// fixes underneath the uniform-loss axis: 18 dB sits in the regime
// where the threshold oracle (ideal) steps down to a conservative rate
// while the expected-goodput argmax accepts ~1% per-MPDU FER for a
// ~50% faster rate — exactly the operating point that used to collapse
// HACK's compressed-ACK recovery.
const LossResilienceSNRdB = 18.0

// LossResilience runs the loss-resilience grid on the 802.11n
// scenario: uniform frame loss × HACK mode × rate adapter, with the
// channel fixed at LossResilienceSNRdB so the adapter axis is live.
// Every cell must report zero ROHC decompression failures — the §4.3
// losslessness invariant the recovery state machine (internal/hack)
// preserves even when both the loss axis and the adapter's chosen FER
// stress it. Rows come back in grid order (loss, then mode, then
// adapter), aggregated over the seeds through the results layer.
func LossResilience(o Options, losses []float64, adapters []string) []LossResilienceRow {
	o = o.withDefaults()
	if losses == nil {
		losses = []float64{0, 0.01, 0.02, 0.05}
	}
	if adapters == nil {
		adapters = []string{"ideal", "argmax"}
	}
	base := ht150Base(hack.ModeOff)
	scenario.WithSNR(LossResilienceSNRdB)(&base)
	modes := []hack.Mode{hack.ModeOff, hack.ModeMoreData}

	spec := o.spec("loss-resilience", base)
	spec.Airtime = true
	spec.Axes = campaign.Axes{
		Modes:    modes,
		Loss:     losses,
		Adapters: adapters,
		Seeds:    campaign.Seeds(o.Seed, o.Runs),
	}
	agg, err := results.FromResults(campaign.Run(spec)).Aggregate("loss_pct", "mode", "adapter")
	if err != nil {
		panic(err) // static group-by columns
	}

	var rows []LossResilienceRow
	for _, loss := range losses {
		for _, mode := range modes {
			for _, adapter := range adapters {
				key := []string{results.Num(loss * 100), mode.String(), adapter}
				row := LossResilienceRow{
					LossPct:        loss * 100,
					Mode:           mode,
					Adapter:        adapter,
					GoodputMbps:    agg.MeanAt("aggregate_mbps", key...),
					Retries:        agg.MeanAt("retries", key...),
					DecompFailures: agg.MeanAt("decomp_failures", key...),
					AirtimeEff:     agg.MeanAt("extra.airtime_efficiency", key...),
				}
				if st, ok := agg.StatAt("aggregate_mbps", key...); ok {
					row.GoodputStdDev = st.StdDev
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}
