// Package experiments reproduces every table and figure in the
// paper's evaluation (§4): each runner builds the corresponding
// scenario on the simulator, sweeps the paper's parameters, and
// returns rows shaped like the published results. DESIGN.md carries
// the experiment index; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"tcphack/internal/analytical"
	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
	"tcphack/internal/stats"
)

// Options scales the simulations. The defaults run every experiment in
// benchmark-friendly time; the paper's full durations (120 s runs,
// five repetitions) are a matter of turning these up.
type Options struct {
	// Warmup precedes the measurement window (slow-start transients,
	// paper §4.3 methodology). Default 2 s.
	Warmup sim.Duration
	// Measure is the steady-state measurement window. Default 4 s.
	Measure sim.Duration
	// Runs averages over this many seeded repetitions (paper: 5).
	// Default 1.
	Runs int
	// Seed is the base RNG seed; run i uses Seed+i.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 2 * sim.Second
	}
	if o.Measure == 0 {
		o.Measure = 4 * sim.Second
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Fig1Row is one point of Figure 1's theoretical curves.
type Fig1Row struct {
	Rate       phy.Rate
	TCPMbps    float64
	HACKMbps   float64
	UDPMbps    float64
	GainPct    float64
	BatchMPDUs int // 802.11n only
}

// Fig1a computes Figure 1(a): theoretical goodput over the 802.11a
// rates.
func Fig1a() []Fig1Row {
	p := analytical.Defaults()
	rows := make([]Fig1Row, 0, len(phy.RatesA))
	for _, r := range phy.RatesA {
		tcp := p.Goodput80211a(r, analytical.ModeTCP)
		hck := p.Goodput80211a(r, analytical.ModeHACK)
		rows = append(rows, Fig1Row{
			Rate: r, TCPMbps: tcp, HACKMbps: hck,
			UDPMbps: p.Goodput80211a(r, analytical.ModeUDP),
			GainPct: (hck - tcp) / tcp * 100,
		})
	}
	return rows
}

// Fig1b computes Figure 1(b): theoretical goodput over 802.11n rates
// up to 600 Mbps (MCS0–7 at 1–4 spatial streams).
func Fig1b() []Fig1Row {
	p := analytical.Defaults()
	var rows []Fig1Row
	for streams := 1; streams <= 4; streams++ {
		for mcs := 0; mcs < 8; mcs++ {
			r := phy.HTRate(mcs, streams)
			tcp := p.Goodput80211n(r, analytical.ModeTCP)
			hck := p.Goodput80211n(r, analytical.ModeHACK)
			rows = append(rows, Fig1Row{
				Rate: r, TCPMbps: tcp, HACKMbps: hck,
				UDPMbps:    p.Goodput80211n(r, analytical.ModeUDP),
				GainPct:    (hck - tcp) / tcp * 100,
				BatchMPDUs: p.BatchSize(r),
			})
		}
	}
	return rows
}

// soraConfig builds the SoRa testbed model (§4.1): 802.11a at 54 Mbps,
// AP-resident iperf sender (ad-hoc, no wire), 37 µs late LL ACKs with
// a widened ACK timeout, and mild per-client intrinsic loss (client 1
// lossier than client 2, as measured).
func soraConfig(mode hack.Mode, clients int, seed int64) node.Config {
	return node.Config{
		Seed:            seed,
		Mode:            mode,
		DataRate:        phy.RateA54,
		Clients:         clients,
		AckTurnaround:   37 * sim.Microsecond,
		AckTimeoutSlack: 80 * sim.Microsecond,
		APQueueLimit:    126,
	}
}

// Fig9Cell is one bar of Figure 9 plus the Table 1 retry statistics
// that the same runs produce.
type Fig9Cell struct {
	Protocol      string // "UDP", "HACK", "TCP"
	Clients       int
	PerClientMbps []float64
	TotalMbps     float64
	// NoRetryPct is the percentage of AP MPDUs delivered without
	// retries (Table 1's "no retries" row).
	NoRetryPct float64
}

// Fig9 runs the SoRa testbed experiments: bulk downloads to one and
// two clients under UDP, TCP/HACK, and stock TCP (Figure 9), also
// yielding Table 1's retry percentages.
func Fig9(o Options) []Fig9Cell {
	o = o.withDefaults()
	var out []Fig9Cell
	for _, clients := range []int{1, 2} {
		for _, proto := range []string{"UDP", "HACK", "TCP"} {
			var total stats.Summary
			per := make([]stats.Summary, clients)
			var noRetry stats.Summary
			for run := 0; run < o.Runs; run++ {
				mode := hack.ModeOff
				if proto == "HACK" {
					mode = hack.ModeMoreData
				}
				cfg := soraConfig(mode, clients, o.Seed+int64(run))
				n := buildSora(cfg, proto, clients)
				n.Run(o.Warmup)
				for _, c := range n.Clients {
					c.Goodput.MarkWindow(n.Sched.Now())
				}
				n.Run(o.Warmup + o.Measure)
				var sum float64
				for ci := 0; ci < clients; ci++ {
					mbps := n.Clients[ci].Goodput.WindowMbps(n.Sched.Now())
					per[ci].Observe(mbps)
					sum += mbps
				}
				total.Observe(sum)
				noRetry.Observe(n.AP.MAC.Stats.NoRetryFraction() * 100)
			}
			cell := Fig9Cell{Protocol: proto, Clients: clients,
				TotalMbps: total.Mean(), NoRetryPct: noRetry.Mean()}
			for ci := range per {
				cell.PerClientMbps = append(cell.PerClientMbps, per[ci].Mean())
			}
			out = append(out, cell)
		}
	}
	return out
}

func buildSora(cfg node.Config, proto string, clients int) *node.Network {
	// Intrinsic per-link loss: client 1 measurably lossier than client
	// 2 (paper §4.2, "Client 1's throughput is slightly less...").
	fl := &channel.FixedLoss{Default: 0.005}
	cfg.Err = fl
	n := node.New(cfg)
	fl.SetLink(n.AP.MAC, n.Clients[0].MAC, 0.03)
	if clients > 1 {
		fl.SetLink(n.AP.MAC, n.Clients[1].MAC, 0.015)
	}
	for ci := 0; ci < clients; ci++ {
		if proto == "UDP" {
			n.StartUDPDownload(ci, 40_000/clients+8000, 1500, sim.Duration(ci)*10*sim.Millisecond)
		} else {
			n.StartDownload(ci, 0, sim.Duration(ci)*50*sim.Millisecond)
		}
	}
	return n
}
