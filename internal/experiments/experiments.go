// Package experiments reproduces every table and figure in the
// paper's evaluation (§4). Each runner declares its scenario grid as a
// campaign.Spec — base scenario × sweep axes — and aggregates the
// campaign's Result rows into rows shaped like the published results.
// The campaign runner executes each grid in parallel across cores;
// Options.Workers bounds the pool.
package experiments

import (
	"strconv"

	"tcphack/internal/analytical"
	"tcphack/internal/campaign"
	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/results"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// Options scales the simulations. The defaults run every experiment in
// benchmark-friendly time; the paper's full durations (120 s runs,
// five repetitions) are a matter of turning these up.
type Options struct {
	// Warmup precedes the measurement window (slow-start transients,
	// paper §4.3 methodology). Default 2 s.
	Warmup sim.Duration
	// Measure is the steady-state measurement window. Default 4 s.
	Measure sim.Duration
	// Runs averages over this many seeded repetitions (paper: 5).
	// Default 1.
	Runs int
	// Seed is the base RNG seed; run i uses Seed+i.
	Seed int64
	// Workers bounds the campaign worker pool (default GOMAXPROCS;
	// 1 forces serial execution).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 2 * sim.Second
	}
	if o.Measure == 0 {
		o.Measure = 4 * sim.Second
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// spec seeds a campaign.Spec with o's shared knobs.
func (o Options) spec(name string, base node.Config) campaign.Spec {
	return campaign.Spec{
		Name:    name,
		Base:    base,
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Workers: o.Workers,
	}
}

// Fig1Row is one point of Figure 1's theoretical curves.
type Fig1Row struct {
	Rate       phy.Rate
	TCPMbps    float64
	HACKMbps   float64
	UDPMbps    float64
	GainPct    float64
	BatchMPDUs int // 802.11n only
}

// Fig1a computes Figure 1(a): theoretical goodput over the 802.11a
// rates.
func Fig1a() []Fig1Row {
	p := analytical.Defaults()
	rows := make([]Fig1Row, 0, len(phy.RatesA))
	for _, r := range phy.RatesA {
		tcp := p.Goodput80211a(r, analytical.ModeTCP)
		hck := p.Goodput80211a(r, analytical.ModeHACK)
		rows = append(rows, Fig1Row{
			Rate: r, TCPMbps: tcp, HACKMbps: hck,
			UDPMbps: p.Goodput80211a(r, analytical.ModeUDP),
			GainPct: (hck - tcp) / tcp * 100,
		})
	}
	return rows
}

// Fig1b computes Figure 1(b): theoretical goodput over 802.11n rates
// up to 600 Mbps (MCS0–7 at 1–4 spatial streams).
func Fig1b() []Fig1Row {
	p := analytical.Defaults()
	var rows []Fig1Row
	for streams := 1; streams <= 4; streams++ {
		for mcs := 0; mcs < 8; mcs++ {
			r := phy.HTRate(mcs, streams)
			tcp := p.Goodput80211n(r, analytical.ModeTCP)
			hck := p.Goodput80211n(r, analytical.ModeHACK)
			rows = append(rows, Fig1Row{
				Rate: r, TCPMbps: tcp, HACKMbps: hck,
				UDPMbps:    p.Goodput80211n(r, analytical.ModeUDP),
				GainPct:    (hck - tcp) / tcp * 100,
				BatchMPDUs: p.BatchSize(r),
			})
		}
	}
	return rows
}

// soraBase builds the SoRa testbed scenario (§4.1) via the builder.
func soraBase(mode hack.Mode) node.Config {
	return scenario.New(scenario.WithSoRa(), scenario.WithMode(mode))
}

// buildSora assembles a SoRa network with the testbed's measured
// per-link intrinsic loss (client 1 lossier than client 2, paper
// §4.2: "Client 1's throughput is slightly less...").
func buildSora(cfg node.Config) *node.Network {
	fl := &channel.FixedLoss{Default: 0.005}
	cfg.Err = fl
	n := node.New(cfg)
	fl.SetLink(n.AP.MAC, n.Clients[0].MAC, 0.03)
	if len(n.Clients) > 1 {
		fl.SetLink(n.AP.MAC, n.Clients[1].MAC, 0.015)
	}
	return n
}

// soraWorkload starts the testbed's traffic: saturating UDP or
// staggered bulk TCP downloads to every client.
func soraWorkload(udp bool) func(n *node.Network, pt campaign.Point) {
	return func(n *node.Network, pt campaign.Point) {
		for ci := 0; ci < pt.Clients; ci++ {
			if udp {
				n.StartUDPDownload(ci, 40_000/pt.Clients+8000, 1500, sim.Duration(ci)*10*sim.Millisecond)
			} else {
				n.StartDownload(ci, 0, sim.Duration(ci)*50*sim.Millisecond)
			}
		}
	}
}

// Fig9Cell is one bar of Figure 9 plus the Table 1 retry statistics
// that the same runs produce.
type Fig9Cell struct {
	Protocol      string // "UDP", "HACK", "TCP"
	Clients       int
	PerClientMbps []float64
	TotalMbps     float64
	// NoRetryPct is the percentage of AP MPDUs delivered without
	// retries (Table 1's "no retries" row).
	NoRetryPct float64
}

// fig9Protocols lists the testbed's transmission schemes.
var fig9Protocols = []struct {
	Name string
	Mode hack.Mode
	UDP  bool
}{
	{"UDP", hack.ModeOff, true},
	{"HACK", hack.ModeMoreData, false},
	{"TCP", hack.ModeOff, false},
}

// Fig9 runs the SoRa testbed experiments: bulk downloads to one and
// two clients under UDP, TCP/HACK, and stock TCP (Figure 9), also
// yielding Table 1's retry percentages. Each protocol's
// {clients × seeds} grid runs as one parallel campaign; seeded
// repetitions aggregate through the results layer (group by client
// count, mean per metric).
func Fig9(o Options) []Fig9Cell {
	o = o.withDefaults()
	clientCounts := []int{1, 2}
	byProto := make(map[string]*results.Agg, len(fig9Protocols))
	for _, proto := range fig9Protocols {
		spec := o.spec("fig9-"+proto.Name, soraBase(proto.Mode))
		spec.Axes = campaign.Axes{
			Clients: clientCounts,
			Seeds:   campaign.Seeds(o.Seed, o.Runs),
		}
		spec.Build = buildSora
		spec.Workload = soraWorkload(proto.UDP)
		agg, err := results.FromResults(campaign.Run(spec)).Aggregate("clients")
		if err != nil {
			panic(err) // static group-by column
		}
		byProto[proto.Name] = agg
	}

	var out []Fig9Cell
	for _, clients := range clientCounts {
		key := results.Num(float64(clients))
		for _, proto := range fig9Protocols {
			agg := byProto[proto.Name]
			cell := Fig9Cell{Protocol: proto.Name, Clients: clients,
				TotalMbps:  agg.MeanAt("aggregate_mbps", key),
				NoRetryPct: agg.MeanAt("no_retry_pct", key)}
			for ci := 0; ci < clients; ci++ {
				cell.PerClientMbps = append(cell.PerClientMbps,
					agg.MeanAt("per_client_mbps."+strconv.Itoa(ci), key))
			}
			out = append(out, cell)
		}
	}
	return out
}
