package experiments

import (
	"tcphack/internal/campaign"
	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/results"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// SpatialRow is one cell of the spatial-density grid: a deployment of
// APs many co-channel BSSs, ClientsPerBSS stations each, under Mode.
type SpatialRow struct {
	// APs is the number of overlapping BSSs on the channel.
	APs int
	// ClientsPerBSS is the station count in each BSS.
	ClientsPerBSS int
	// Mode names the HACK mode ("off", "more-data", ...).
	Mode string
	// AggregateMbps is the mean TCP goodput summed over every client
	// in every BSS.
	AggregateMbps float64
	// StdDev is the seed-to-seed standard deviation of AggregateMbps.
	StdDev float64
	// Efficiency is the useful share of busy airtime (AirtimeLedger:
	// data time over all attributed time).
	Efficiency float64
	// Collisions is the mean collided-transmission count.
	Collisions float64
	// GainOverTCPPct is AggregateMbps's gain over the same cell with
	// HACK off (0 for the off rows themselves).
	GainOverTCPPct float64
}

// SpatialGrid runs the AP-density × station-density × mode experiment:
// 1..N overlapping BSSs 30 m apart on the spatial PHY (inside mutual
// carrier-sense range, so cells contend rather than collide), each
// with the same client count, HACK off vs MORE-DATA. It measures how
// HACK's ACK-compression gain holds up as co-channel contention grows
// — more contenders mean more airtime recovered per suppressed TCP
// ACK, but also more collision loss for HACK's compressed payloads to
// ride through. nil axes default to apCounts {1,2,3} and
// clientCounts {1,2}.
func SpatialGrid(o Options, apCounts, clientCounts []int) []SpatialRow {
	o = o.withDefaults()
	if apCounts == nil {
		apCounts = []int{1, 2, 3}
	}
	if clientCounts == nil {
		clientCounts = []int{1, 2}
	}
	var rows []SpatialRow
	for _, aps := range apCounts {
		specs := make([]node.BSSSpec, aps)
		for i := range specs {
			specs[i] = node.BSSSpec{APPos: channel.Pos{X: 30 * float64(i)}}
		}
		base := ht150Base(hack.ModeOff)
		scenario.WithPathLoss()(&base)
		scenario.WithBSSLayout(specs...)(&base)

		spec := o.spec("spatial-grid", base)
		spec.Axes = campaign.Axes{
			Modes:   []hack.Mode{hack.ModeOff, hack.ModeMoreData},
			Clients: clientCounts,
			Seeds:   campaign.Seeds(o.Seed, o.Runs),
		}
		spec.Airtime = true
		spec.Workload = func(n *node.Network, pt campaign.Point) {
			for ci := 0; ci < len(n.Clients); ci++ {
				n.StartDownload(ci, 0, sim.Duration(ci)*50*sim.Millisecond)
			}
		}
		agg, err := results.FromResults(campaign.Run(spec)).Aggregate("mode", "clients")
		if err != nil {
			panic(err) // static group-by columns
		}
		for _, clients := range clientCounts {
			ck := results.Num(float64(clients))
			off, _ := agg.StatAt("aggregate_mbps", "off", ck)
			for _, mode := range []hack.Mode{hack.ModeOff, hack.ModeMoreData} {
				st, ok := agg.StatAt("aggregate_mbps", mode.String(), ck)
				if !ok {
					continue
				}
				row := SpatialRow{
					APs: aps, ClientsPerBSS: clients, Mode: mode.String(),
					AggregateMbps: st.Mean, StdDev: st.StdDev,
					Efficiency: agg.MeanAt("extra.airtime_efficiency", mode.String(), ck),
					Collisions: agg.MeanAt("collisions", mode.String(), ck),
				}
				if mode != hack.ModeOff && off.Mean > 0 {
					row.GainOverTCPPct = (st.Mean - off.Mean) / off.Mean * 100
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}
