package experiments

import (
	"tcphack/internal/analytical"
	"tcphack/internal/campaign"
	"tcphack/internal/channel"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/results"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// ht150Base builds the §4.3 ns-3 scenario via the builder: 802.11n at
// 150 Mbps data / 24 Mbps LL ACKs, A-MPDU aggregation under a 4 ms
// TXOP, a 500 Mbps 1 ms wire to the server, and an AP queue of 126
// packets per flow.
func ht150Base(mode hack.Mode) node.Config {
	return scenario.New(scenario.With80211n(), scenario.WithMode(mode))
}

// Fig10Row is one bar group of Figure 10.
type Fig10Row struct {
	Clients       int
	Protocol      string // "UDP", "HACK MoreData", "Opp. HACK", "TCP"
	AggregateMbps float64
	StdDev        float64
	// GainOverTCPPct is this protocol's gain over the same-row stock
	// TCP (filled for the HACK rows).
	GainOverTCPPct float64
}

// Fig10Protocols lists Figure 10's transmission schemes.
var Fig10Protocols = []struct {
	Name string
	Mode hack.Mode
	UDP  bool
}{
	{"UDP", hack.ModeOff, true},
	{"HACK MoreData", hack.ModeMoreData, false},
	{"Opp. HACK", hack.ModeOpportunistic, false},
	{"TCP", hack.ModeOff, false},
}

// Fig10 reproduces Figure 10: aggregate steady-state goodput for
// 1/2/4/10 clients under UDP, TCP/HACK (MORE DATA), opportunistic
// HACK, and stock TCP on the 150 Mbps 802.11n network. Each
// protocol's {clients × seeds} grid runs as one parallel campaign;
// seeded repetitions aggregate through the results layer, whose
// per-group deviation becomes the figure's error bars.
func Fig10(o Options, clientCounts []int) []Fig10Row {
	o = o.withDefaults()
	if clientCounts == nil {
		clientCounts = []int{1, 2, 4, 10}
	}
	byProto := make(map[string]*results.Agg, len(Fig10Protocols))
	for _, proto := range Fig10Protocols {
		spec := o.spec("fig10-"+proto.Name, ht150Base(proto.Mode))
		spec.Axes = campaign.Axes{
			Clients: clientCounts,
			Seeds:   campaign.Seeds(o.Seed, o.Runs),
		}
		udp := proto.UDP
		spec.Workload = func(n *node.Network, pt campaign.Point) {
			for ci := 0; ci < pt.Clients; ci++ {
				stagger := sim.Duration(ci) * 100 * sim.Millisecond
				if udp {
					n.StartUDPDownload(ci, 160_000/pt.Clients+8_000, 1500, stagger)
				} else {
					n.StartDownload(ci, 0, stagger)
				}
			}
		}
		agg, err := results.FromResults(campaign.Run(spec)).Aggregate("clients")
		if err != nil {
			panic(err) // static group-by column
		}
		byProto[proto.Name] = agg
	}

	var rows []Fig10Row
	for _, clients := range clientCounts {
		key := results.Num(float64(clients))
		tcp := byProto["TCP"].MeanAt("aggregate_mbps", key)
		for _, proto := range Fig10Protocols {
			st, _ := byProto[proto.Name].StatAt("aggregate_mbps", key)
			row := Fig10Row{
				Clients: clients, Protocol: proto.Name,
				AggregateMbps: st.Mean, StdDev: st.StdDev,
			}
			if proto.Name != "TCP" && tcp > 0 {
				row.GainOverTCPPct = (st.Mean - tcp) / tcp * 100
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig11Point is one (SNR, rate) cell of Figure 11's envelope sweep.
type Fig11Point struct {
	SNRdB    float64
	Rate     phy.Rate
	TCPMbps  float64
	HACKMbps float64
}

// Fig11Result carries the per-SNR goodput curves. Method records how
// they were produced: a rate adapter ("ideal", "minstrel") running
// one simulation per SNR point, or the legacy fixed-rate envelope
// ("envelope"), whose per-(rate, SNR) cells are then also in Points.
type Fig11Result struct {
	Method string
	Points []Fig11Point
	// EnvelopeTCP/EnvelopeHACK map SNR → goodput under (ideal or
	// emulated-ideal) rate adaptation, per protocol.
	EnvelopeTCP  map[float64]float64
	EnvelopeHACK map[float64]float64
	// MeanImprovementPct is HACK's average envelope gain (paper: 12.6%).
	MeanImprovementPct float64
}

// finishFig11 computes the mean HACK-over-TCP gain across usable SNRs.
func finishFig11(res *Fig11Result, snrsDB []float64) {
	var gains, count float64
	for _, snr := range snrsDB {
		tcp, hck := res.EnvelopeTCP[snr], res.EnvelopeHACK[snr]
		if tcp > 1 { // meaningful operating points only
			gains += (hck - tcp) / tcp * 100
			count++
		}
	}
	if count > 0 {
		res.MeanImprovementPct = gains / count
	}
}

// Fig11 reproduces Figure 11 with in-simulation rate adaptation: one
// client downloads at each SNR with every station running the
// IdealSNR adapter (the oracle the paper's "ideal rate adaptation"
// assumes), so the whole figure is one {mode × SNR} campaign — one
// simulation per SNR point instead of one per (rate, SNR) cell. The
// legacy fixed-rate-sweep-plus-envelope method survives as
// Fig11Envelope for cross-validation.
func Fig11(o Options, snrsDB []float64, rates []phy.Rate) Fig11Result {
	return Fig11Adaptive(o, snrsDB, rates, "ideal")
}

// Fig11Adaptive runs the Figure 11 SNR sweep with the named rate
// adapter ("ideal" or "minstrel") at every station, one simulation per
// (mode, SNR) point. rates bounds the hopeless-point pruning (nil: the
// single-stream HT ladder, which is also the adapters' candidate set).
func Fig11Adaptive(o Options, snrsDB []float64, rates []phy.Rate, adapter string) Fig11Result {
	o = o.withDefaults()
	if snrsDB == nil {
		snrsDB = []float64{0, 5, 10, 15, 20, 25, 30}
	}
	if rates == nil {
		rates = phy.RatesHT40SGI1()
	}
	base := ht150Base(hack.ModeOff)
	base.AckRate = phy.Rate{} // basic-rate rules per eliciting frame
	base.RateAdapter = adapter
	spec := o.spec("fig11-"+adapter, base)
	spec.Axes = campaign.Axes{
		Modes:  []hack.Mode{hack.ModeOff, hack.ModeMoreData},
		SNRsDB: snrsDB,
		Seeds:  []int64{o.Seed},
	}
	// Skip SNRs where even the most robust candidate rate cannot
	// decode a Block ACK sized frame: goodput is 0 at every rate.
	lowest := rates[0]
	spec.Skip = func(pt campaign.Point) bool {
		return channel.FrameErrorRate(lowest, pt.SNRdB, 1538) > 0.999
	}
	spec.Workload = func(n *node.Network, pt campaign.Point) {
		n.StartDownload(0, 0, 0)
	}
	agg, err := results.FromResults(campaign.Run(spec)).Aggregate("mode", "snr_db")
	if err != nil {
		panic(err) // static group-by columns
	}

	res := Fig11Result{
		Method:       adapter,
		EnvelopeTCP:  make(map[float64]float64),
		EnvelopeHACK: make(map[float64]float64),
	}
	for _, snr := range snrsDB {
		key := results.Num(snr)
		res.EnvelopeTCP[snr] = agg.MeanAt("aggregate_mbps", hack.ModeOff.String(), key)
		res.EnvelopeHACK[snr] = agg.MeanAt("aggregate_mbps", hack.ModeMoreData.String(), key)
	}
	finishFig11(&res, snrsDB)
	return res
}

// Fig11Envelope is the legacy Figure 11 method the paper's text
// describes verbatim: sweep SNR × every fixed PHY rate and take the
// per-SNR envelope as the goodput an ideal rate-adaptation algorithm
// would achieve. It multiplies the grid by the rate count — kept for
// cross-validating the adapter-based Fig11 (the xval test asserts the
// two agree at usable SNRs).
func Fig11Envelope(o Options, snrsDB []float64, rates []phy.Rate) Fig11Result {
	o = o.withDefaults()
	if snrsDB == nil {
		snrsDB = []float64{0, 5, 10, 15, 20, 25, 30}
	}
	if rates == nil {
		rates = phy.RatesHT40SGI1()
	}
	base := ht150Base(hack.ModeOff)
	base.AckRate = phy.Rate{} // basic-rate rules per eliciting frame
	spec := o.spec("fig11-envelope", base)
	spec.Axes = campaign.Axes{
		Modes:  []hack.Mode{hack.ModeOff, hack.ModeMoreData},
		Rates:  rates,
		SNRsDB: snrsDB,
		Seeds:  []int64{o.Seed},
	}
	// Skip hopeless (rate, SNR) pairs cheaply: if even a Block ACK
	// sized frame fails with near-certainty, goodput is 0.
	spec.Skip = func(pt campaign.Point) bool {
		return channel.FrameErrorRate(pt.Rate, pt.SNRdB, 1538) > 0.999
	}
	spec.Workload = func(n *node.Network, pt campaign.Point) {
		n.StartDownload(0, 0, 0)
	}
	agg, err := results.FromResults(campaign.Run(spec)).Aggregate("mode", "rate_kbps", "snr_db")
	if err != nil {
		panic(err) // static group-by columns
	}

	// Skipped (hopeless) cells are absent from the aggregation and
	// read as zero goodput.
	goodput := func(mode hack.Mode, rate phy.Rate, snr float64) float64 {
		return agg.MeanAt("aggregate_mbps",
			mode.String(), results.Num(float64(rate.Kbps)), results.Num(snr))
	}

	res := Fig11Result{
		Method:       "envelope",
		EnvelopeTCP:  make(map[float64]float64),
		EnvelopeHACK: make(map[float64]float64),
	}
	for _, snr := range snrsDB {
		bestTCP, bestHACK := 0.0, 0.0
		for _, rate := range rates {
			tcp := goodput(hack.ModeOff, rate, snr)
			hck := goodput(hack.ModeMoreData, rate, snr)
			res.Points = append(res.Points, Fig11Point{SNRdB: snr, Rate: rate, TCPMbps: tcp, HACKMbps: hck})
			if tcp > bestTCP {
				bestTCP = tcp
			}
			if hck > bestHACK {
				bestHACK = hck
			}
		}
		res.EnvelopeTCP[snr] = bestTCP
		res.EnvelopeHACK[snr] = bestHACK
	}
	finishFig11(&res, snrsDB)
	return res
}

// Fig12Row compares theory and simulation at one PHY rate.
type Fig12Row struct {
	Rate        phy.Rate
	TheoryTCP   float64
	TheoryHACK  float64
	SimTCP      float64
	SimHACK     float64
	SimGainPct  float64
	TheoGainPct float64
}

// Fig12 reproduces Figure 12: analytical predictions versus simulated
// goodput at each 802.11n rate (lossless channel, best case — the
// paper extracts the best point per rate from the Figure 11 sweep).
// The {mode × rate} grid is one parallel campaign.
func Fig12(o Options, rates []phy.Rate) []Fig12Row {
	o = o.withDefaults()
	if rates == nil {
		rates = phy.RatesHT40SGI1()
	}
	p := analytical.Defaults()
	base := ht150Base(hack.ModeOff)
	base.AckRate = phy.Rate{}
	spec := o.spec("fig12", base)
	spec.Axes = campaign.Axes{
		Modes: []hack.Mode{hack.ModeOff, hack.ModeMoreData},
		Rates: rates,
		Seeds: []int64{o.Seed},
	}
	spec.Workload = func(n *node.Network, pt campaign.Point) {
		n.StartDownload(0, 0, 0)
	}
	agg, err := results.FromResults(campaign.Run(spec)).Aggregate("mode", "rate_kbps")
	if err != nil {
		panic(err) // static group-by columns
	}

	goodput := func(mode hack.Mode, rate phy.Rate) float64 {
		return agg.MeanAt("aggregate_mbps", mode.String(), results.Num(float64(rate.Kbps)))
	}

	var rows []Fig12Row
	for _, rate := range rates {
		simTCP := goodput(hack.ModeOff, rate)
		simHACK := goodput(hack.ModeMoreData, rate)
		thTCP := p.Goodput80211n(rate, analytical.ModeTCP)
		thHACK := p.Goodput80211n(rate, analytical.ModeHACK)
		row := Fig12Row{
			Rate: rate, TheoryTCP: thTCP, TheoryHACK: thHACK,
			SimTCP: simTCP, SimHACK: simHACK,
			TheoGainPct: (thHACK - thTCP) / thTCP * 100,
		}
		if simTCP > 0 {
			row.SimGainPct = (simHACK - simTCP) / simTCP * 100
		}
		rows = append(rows, row)
	}
	return rows
}
