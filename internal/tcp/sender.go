package tcp

import (
	"tcphack/internal/packet"
	"tcphack/internal/sim"
)

// flightSize returns the bytes in flight.
func (ep *Endpoint) flightSize() uint32 { return ep.sndNxt - ep.sndUna }

// window returns the current send window (min of cwnd and the peer's
// advertised window).
func (ep *Endpoint) window() uint32 {
	w := ep.cwnd
	if ep.peerWnd < w {
		w = ep.peerWnd
	}
	return w
}

// trySend emits segments as the window allows. After an RTO has
// pulled sndNxt back to sndUna, the region up to sndMax is
// retransmitted (go-back-N, skipping SACKed ranges); beyond sndMax,
// fresh application data flows.
func (ep *Endpoint) trySend() {
	// FIN-WAIT still needs to service the retransmission region after
	// an RTO; no new data can be queued there (the app is drained).
	if ep.state != stateEstablished && ep.state != stateFinWait {
		return
	}
	for {
		// Skip ranges the peer has already SACKed when retransmitting.
		if seqGT(ep.sndMax, ep.sndNxt) {
			for changed := true; changed; {
				changed = false
				for _, iv := range ep.sacked {
					if !seqGT(iv.s, ep.sndNxt) && seqGT(iv.e, ep.sndNxt) {
						ep.sndNxt = iv.e
						changed = true
					}
				}
			}
			if seqGT(ep.sndNxt, ep.sndMax) {
				ep.sndNxt = ep.sndMax
			}
		}
		inFlight := ep.flightSize()
		win := ep.window()
		if inFlight >= win {
			break
		}
		avail := win - inFlight
		if seqGT(ep.sndMax, ep.sndNxt) {
			// Retransmission region.
			n := uint32(ep.effectiveMSS)
			if left := ep.sndMax - ep.sndNxt; left < n {
				n = left
			}
			if n > avail {
				break
			}
			if ep.finSent && ep.sndNxt+n == ep.sndMax {
				n-- // final slot is the FIN, resent by maybeSendFin/RTO path
				if n == 0 {
					p := ep.newPacket(packet.FlagFIN|packet.FlagACK, ep.sndNxt, 0)
					ep.Output(p)
					ep.Stats.Retransmits++
					ep.sndNxt = ep.sndMax
					continue
				}
			}
			ep.emitSegment(ep.sndNxt, int(n), true)
			ep.sndNxt += n
			continue
		}
		remaining := ep.appTotal - ep.appQueued
		if remaining == 0 {
			break
		}
		n := uint32(ep.effectiveMSS)
		if uint64(n) > remaining {
			n = uint32(remaining)
		}
		if n > avail {
			// Send only full windows; a sub-MSS tail goes out when it is
			// the last of the transfer.
			if uint64(avail) < remaining {
				break
			}
			n = avail
		}
		ep.emitSegment(ep.sndNxt, int(n), false)
		ep.sndNxt += n
		ep.sndMax = ep.sndNxt
		ep.appQueued += uint64(n)
	}
	ep.maybeSendFin()
	if ep.flightSize() > 0 {
		ep.armRTXIfIdle()
	}
}

func (ep *Endpoint) maybeSendFin() {
	if ep.state != stateEstablished || ep.finSent {
		return
	}
	if ep.appTotal == 0 || ep.appTotal >= 1<<62 {
		return // endless source or pure receiver: never closes
	}
	if ep.appQueued != ep.appTotal {
		return
	}
	ep.finSent = true
	ep.state = stateFinWait
	p := ep.newPacket(packet.FlagFIN|packet.FlagACK, ep.sndNxt, 0)
	ep.sndNxt++
	ep.sndMax = ep.sndNxt
	ep.Output(p)
	ep.armRTXIfIdle()
}

// emitSegment transmits [seq, seq+n) with the ACK flag set.
func (ep *Endpoint) emitSegment(seq uint32, n int, rtx bool) {
	p := ep.newPacket(packet.FlagACK, seq, n)
	ep.Stats.SegsSent++
	if rtx {
		ep.Stats.Retransmits++
		if ep.cfg.Tracer != nil {
			ep.cfg.Tracer.TCPRetransmit(ep.sched.Now(), ep.cfg.LocalPort, seq)
		}
	} else if !ep.rttValid && !ep.tsEnabled {
		// Karn's algorithm: time one un-retransmitted segment.
		ep.rttSeq = seq + uint32(n)
		ep.rttAt = ep.sched.Now()
		ep.rttValid = true
	}
	ep.Output(p)
}

// handleAck processes the acknowledgment fields of an incoming segment.
func (ep *Endpoint) handleAck(p *packet.Packet) {
	t := p.TCP
	ack := t.Ack
	ep.peerWnd = uint32(t.Window) << ep.peerWScale
	if ep.sackEnabled {
		ep.absorbSACK(t.Ack, t.Opt.SACKBlocks)
	}

	switch {
	case seqGT(ack, ep.sndMax):
		return // acks data never sent; ignore
	case seqGT(ack, ep.sndUna):
		ep.newAck(ack, t)
	case ack == ep.sndUna && p.PayloadLen == 0 && ep.flightSize() > 0 && !hasDSACK(t):
		// A leading SACK block at or below the cumulative ACK is a
		// D-SACK (RFC 2883): the peer is reporting our own duplicate,
		// not signalling loss. Counting those as dup-ACKs would spin
		// up spurious recoveries after every go-back-N.
		ep.dupAck()
	}
	ep.trySend()
}

func hasDSACK(t *packet.TCP) bool {
	return len(t.Opt.SACKBlocks) > 0 && !seqGT(t.Opt.SACKBlocks[0][1], t.Ack)
}

func (ep *Endpoint) newAck(ack uint32, t *packet.TCP) {
	acked := ack - ep.sndUna
	ep.sndUna = ack
	if seqGT(ack, ep.sndNxt) {
		// A cumulative ACK can overtake a pulled-back sndNxt when the
		// receiver already held the retransmitted span out of order.
		ep.sndNxt = ack
	}
	ep.Stats.BytesAcked += uint64(acked)
	ep.dupAcks = 0

	// RTT sampling: timestamps when available, Karn otherwise. ACKs
	// inside a loss epoch echo frozen timestamps; skip them.
	if ep.tsEnabled && t.Opt.HasTimestamps && t.Opt.TSEcr != 0 && seqGT(ack, ep.sampleFloor) {
		echo := sim.Duration(ep.nowTS()-t.Opt.TSEcr) * sim.Millisecond
		ep.updateRTT(echo)
	} else if ep.rttValid && seqGE(ack, ep.rttSeq) {
		ep.updateRTT(ep.sched.Now() - ep.rttAt)
		ep.rttValid = false
	}

	if ep.inRec {
		if seqGE(ack, ep.recover) {
			// Full acknowledgment: leave recovery.
			ep.inRec = false
			ep.cwnd = ep.ssthresh
			ep.traceCwnd()
		} else {
			// Partial ACK: keep filling holes, pipe-limited (RFC 6675).
			ep.fillHoles()
			ep.armRTX()
		}
	} else if ep.cwnd < ep.ssthresh {
		// Slow start.
		inc := acked
		if inc > uint32(ep.effectiveMSS) {
			inc = uint32(ep.effectiveMSS)
		}
		ep.cwnd += inc
	} else {
		// Congestion avoidance: one MSS per cwnd of ACKed data.
		ep.caAcc += acked
		if ep.caAcc >= ep.cwnd {
			ep.caAcc -= ep.cwnd
			ep.cwnd += uint32(ep.effectiveMSS)
		}
	}

	ep.pruneSACK()

	// Everything ever sent is acknowledged only when sndUna reaches
	// sndMax; after an RTO pulls sndNxt back, flightSize() alone can
	// be zero with a retransmission backlog still pending.
	if ep.sndUna == ep.sndMax {
		ep.disarmRTX()
		if ep.state == stateFinWait && ep.finSent {
			ep.state = stateDone
			if ep.OnDone != nil {
				ep.OnDone()
			}
		}
	} else {
		ep.armRTX()
	}
}

func (ep *Endpoint) dupAck() {
	ep.Stats.DupAcksReceived++
	ep.dupAcks++
	switch {
	case ep.inRec:
		// Each duplicate ACK means a segment left the network: the
		// pipe shrank, so more holes may be filled (RFC 6675).
		ep.fillHoles()
	case ep.dupAcks == 3 && seqGT(ep.sndUna, ep.recover):
		// The recover guard (RFC 6582 §3.2 step 1) rejects the stale
		// duplicate ACKs that trail a just-finished recovery episode.
		ep.enterRecovery()
	}
}

func (ep *Endpoint) enterRecovery() {
	ep.Stats.FastRecoveries++
	ep.inRec = true
	ep.recover = ep.sndMax
	ep.rtxHigh = ep.sndUna
	ep.sampleFloor = ep.sndMax
	half := ep.flightSize() / 2
	min2 := uint32(2 * ep.effectiveMSS)
	if half < min2 {
		half = min2
	}
	ep.ssthresh = half
	ep.cwnd = ep.ssthresh
	ep.traceCwnd()
	ep.fillHoles()
	ep.armRTX()
}

// traceCwnd emits the congestion-window probe at loss-event edges
// (recovery entry/exit, RTO collapse) — the points a cwnd plot needs.
func (ep *Endpoint) traceCwnd() {
	if ep.cfg.Tracer != nil {
		ep.cfg.Tracer.TCPCwnd(ep.sched.Now(), ep.cfg.LocalPort, int(ep.cwnd), int(ep.ssthresh))
	}
}

// sackedBytes returns the SACKed octets within [from, to).
func (ep *Endpoint) sackedBytes(from, to uint32) uint32 {
	var n uint32
	for _, iv := range ep.sacked {
		s, e := iv.s, iv.e
		if seqGT(from, s) {
			s = from
		}
		if seqGT(e, to) {
			e = to
		}
		if seqGT(e, s) {
			n += e - s
		}
	}
	return n
}

// pipe estimates the octets currently in the network during loss
// recovery (RFC 6675 §4): retransmitted-and-unacknowledged octets
// below rtxHigh (excluding SACKed spans, which have left the network)
// plus any new data sent beyond the recovery point. Unsacked,
// unretransmitted octets in the hole region are presumed lost.
func (ep *Endpoint) pipe() uint32 {
	var p uint32
	if seqGT(ep.rtxHigh, ep.sndUna) {
		p = ep.rtxHigh - ep.sndUna - ep.sackedBytes(ep.sndUna, ep.rtxHigh)
	}
	if seqGT(ep.sndNxt, ep.recover) {
		p += ep.sndNxt - ep.recover
	}
	return p
}

// nextHole locates the first unSACKed, unretransmitted hole below the
// recovery point; n == 0 means none remain.
func (ep *Endpoint) nextHole() (seq uint32, n int) {
	// The FIN occupies the final sequence slot but carries no payload;
	// a hole retransmission must never cover it as data (the peer
	// would deliver a phantom byte and the FIN flag would be lost).
	// An outstanding FIN is retransmitted by the RTO path.
	limit := ep.recover
	if ep.finSent && limit == ep.sndMax {
		limit--
	}
	seq = ep.sndUna
	if seqGT(ep.rtxHigh, seq) {
		seq = ep.rtxHigh
	}
	// Skip ranges the peer has SACKed. The scoreboard is disjoint but
	// recency-ordered, so iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, iv := range ep.sacked {
			if !seqGT(iv.s, seq) && seqGT(iv.e, seq) {
				seq = iv.e
				changed = true
			}
		}
	}
	if seqGE(seq, limit) {
		return 0, 0
	}
	n = ep.effectiveMSS
	if left := limit - seq; left < uint32(n) {
		n = int(left)
	}
	return seq, n
}

// fillHoles retransmits as many presumed-lost holes as the pipe
// allows — the heart of SACK-based recovery. Without it, one hole per
// round trip recovers a burst loss agonizingly slowly, and under
// contention the retransmission timer fires first (the recovery
// spiral real stacks avoid).
func (ep *Endpoint) fillHoles() {
	for {
		if ep.pipe()+uint32(ep.effectiveMSS) > ep.cwnd {
			return
		}
		seq, n := ep.nextHole()
		if n == 0 {
			return
		}
		ep.emitSegment(seq, n, true)
		ep.rtxHigh = seq + uint32(n)
	}
}

// absorbSACK merges the peer's SACK blocks into the scoreboard.
// D-SACK blocks (at or below the cumulative ACK) carry no scoreboard
// information and are skipped.
func (ep *Endpoint) absorbSACK(ack uint32, blocks [][2]uint32) {
	for _, b := range blocks {
		if !seqGT(b[1], b[0]) || !seqGT(b[1], ack) {
			continue
		}
		ep.sacked = insertInterval(ep.sacked, interval{b[0], b[1]})
	}
}

// pruneSACK discards scoreboard entries below sndUna.
func (ep *Endpoint) pruneSACK() {
	kept := ep.sacked[:0]
	for _, iv := range ep.sacked {
		if seqGT(iv.e, ep.sndUna) {
			kept = append(kept, iv)
		}
	}
	ep.sacked = kept
}

// insertInterval merges iv into a sorted, disjoint interval list.
func insertInterval(list []interval, iv interval) []interval {
	out := list[:0]
	for _, cur := range list {
		switch {
		case seqGT(iv.s, cur.e):
			out = append(out, cur) // cur entirely before iv
		case seqGT(cur.s, iv.e):
			out = append(out, cur) // cur entirely after iv (order restored below)
		default: // overlap or adjacency: absorb
			if seqGT(iv.s, cur.s) {
				iv.s = cur.s
			}
			if seqGT(cur.e, iv.e) {
				iv.e = cur.e
			}
		}
	}
	// Insert iv preserving sequence order.
	res := make([]interval, 0, len(out)+1)
	inserted := false
	for _, cur := range out {
		if !inserted && seqGT(cur.s, iv.s) {
			res = append(res, iv)
			inserted = true
		}
		res = append(res, cur)
	}
	if !inserted {
		res = append(res, iv)
	}
	return res
}

// RTO management (RFC 6298).

func (ep *Endpoint) updateRTT(sample sim.Duration) {
	if sample <= 0 {
		sample = sim.Millisecond
	}
	if ep.srtt == 0 {
		ep.srtt = sample
		ep.rttvar = sample / 2
	} else {
		d := ep.srtt - sample
		if d < 0 {
			d = -d
		}
		ep.rttvar = (3*ep.rttvar + d) / 4
		ep.srtt = (7*ep.srtt + sample) / 8
	}
	ep.rto = ep.srtt + 4*ep.rttvar
	if ep.rto < ep.cfg.MinRTO {
		ep.rto = ep.cfg.MinRTO
	}
	if ep.rto > 60*sim.Second {
		ep.rto = 60 * sim.Second
	}
}

// SRTT exposes the smoothed RTT (0 until the first sample).
func (ep *Endpoint) SRTT() sim.Duration { return ep.srtt }

func (ep *Endpoint) armRTX() {
	ep.sched.Reset(ep.rtxTimer, ep.sched.Now()+ep.rto)
}

func (ep *Endpoint) armRTXIfIdle() {
	if !ep.rtxTimer.Pending() {
		ep.armRTX()
	}
}

func (ep *Endpoint) disarmRTX() {
	ep.sched.Cancel(ep.rtxTimer)
}

// onRTO fires when the retransmission timer expires.
func (ep *Endpoint) onRTO() {
	switch ep.state {
	case stateSynSent:
		ep.sendSyn(false)
		ep.backoffRTO()
		ep.armRTX()
		return
	case stateSynRcvd:
		ep.sendSyn(true)
		ep.backoffRTO()
		ep.armRTX()
		return
	case stateEstablished, stateFinWait:
	default:
		return
	}
	if ep.flightSize() == 0 {
		return
	}
	ep.Stats.Timeouts++
	if ep.cfg.Tracer != nil {
		ep.cfg.Tracer.TCPRTO(ep.sched.Now(), ep.cfg.LocalPort, ep.rto)
	}
	// RFC 5681: collapse to one segment, halve ssthresh, and restart
	// transmission from sndUna (go-back-N; slow start re-grows and
	// SACKed spans are skipped on the way back up to sndMax).
	half := ep.flightSize() / 2
	min2 := uint32(2 * ep.effectiveMSS)
	if half < min2 {
		half = min2
	}
	ep.ssthresh = half
	ep.cwnd = uint32(ep.effectiveMSS)
	ep.caAcc = 0
	ep.inRec = false
	ep.dupAcks = 0
	ep.sampleFloor = ep.sndMax
	ep.sndNxt = ep.sndUna
	ep.traceCwnd()

	if ep.finSent && ep.sndMax-ep.sndUna == 1 {
		// Only the FIN is outstanding.
		p := ep.newPacket(packet.FlagFIN|packet.FlagACK, ep.sndUna, 0)
		ep.Output(p)
		ep.Stats.Retransmits++
		ep.sndNxt = ep.sndMax
	} else {
		ep.trySend()
	}
	ep.backoffRTO()
	ep.armRTX()
}

func (ep *Endpoint) backoffRTO() {
	ep.rto *= 2
	if ep.rto > 60*sim.Second {
		ep.rto = 60 * sim.Second
	}
}
