package tcp

import (
	"tcphack/internal/packet"
)

// handleData processes the payload/FIN side of an incoming segment.
func (ep *Endpoint) handleData(p *packet.Packet) {
	t := p.TCP
	seg := interval{t.Seq, t.Seq + uint32(p.PayloadLen)}
	if t.Flags&packet.FlagFIN != 0 {
		ep.finPending = true
		ep.finSeq = seg.e // FIN occupies one sequence slot after payload
		seg.e++
	}

	switch {
	case seqGE(ep.rcvNxt, seg.e):
		// Entirely old: pure duplicate. Re-ack immediately so the
		// sender can make progress, reporting the duplicate range as a
		// D-SACK (RFC 2883) so the sender can tell this apart from a
		// genuine loss signal.
		ep.sendAckDup(seg)
		return
	case seqGT(seg.s, ep.rcvNxt):
		// Out of order: buffer and send an immediate duplicate ACK
		// (with SACK) — RFC 5681 §4.2.
		ep.ooo = insertInterval(ep.ooo, seg)
		ep.noteSACK(seg)
		ep.sendAck()
		return
	}

	// In order (possibly overlapping the left edge).
	ep.advanceRcv(seg.e)

	// Pull any now-contiguous buffered spans.
	changed := true
	for changed {
		changed = false
		for _, iv := range ep.ooo {
			if !seqGT(iv.s, ep.rcvNxt) && seqGT(iv.e, ep.rcvNxt) {
				ep.advanceRcv(iv.e)
				changed = true
			}
		}
	}
	ep.pruneOOO()

	if len(ep.ooo) > 0 {
		// A hole remains beyond this segment: keep acking immediately.
		ep.sendAck()
		return
	}
	if ep.finPending && ep.rcvNxt == ep.finSeq+1 {
		// FIN consumed: acknowledge and finish.
		ep.sendAck()
		if ep.state != stateDone {
			ep.state = stateDone
			if ep.OnDone != nil {
				ep.OnDone()
			}
		}
		return
	}
	ep.maybeDelayAck()
}

// advanceRcv moves rcvNxt forward to end, delivering payload bytes
// (the FIN slot, when present at the very end, is not payload).
func (ep *Endpoint) advanceRcv(end uint32) {
	n := end - ep.rcvNxt
	if ep.finPending && end == ep.finSeq+1 {
		n-- // the FIN's sequence slot carries no data
	}
	ep.rcvNxt = end
	if n > 0 {
		ep.Stats.BytesDelivered += uint64(n)
		ep.OnDeliver(int(n))
	}
}

// pruneOOO drops buffered spans at/below rcvNxt.
func (ep *Endpoint) pruneOOO() {
	kept := ep.ooo[:0]
	for _, iv := range ep.ooo {
		if seqGT(iv.e, ep.rcvNxt) {
			kept = append(kept, iv)
		}
	}
	ep.ooo = kept
}

// noteSACK moves the block containing seg to the front of the
// out-of-order list, per RFC 2018: the first SACK block must specify
// the most recently received segment's block.
func (ep *Endpoint) noteSACK(seg interval) {
	if !ep.sackEnabled {
		return
	}
	// Reorder ooo so the block containing seg comes first; ooo is kept
	// merged by insertInterval, so find the containing block.
	for i, iv := range ep.ooo {
		if !seqGT(iv.s, seg.s) && seqGE(iv.e, seg.e) {
			if i != 0 {
				blk := ep.ooo[i]
				copy(ep.ooo[1:i+1], ep.ooo[:i])
				ep.ooo[0] = blk
			}
			break
		}
	}
}

// maybeDelayAck implements delayed ACKs: acknowledge every second
// segment immediately, otherwise start the delayed-ACK timer.
func (ep *Endpoint) maybeDelayAck() {
	if !ep.cfg.DelayedAck {
		ep.sendAck()
		return
	}
	ep.delackCount++
	if ep.delackCount >= 2 {
		ep.sendAck()
		return
	}
	if !ep.delackTimer.Pending() {
		ep.sched.Reset(ep.delackTimer, ep.sched.Now()+ep.cfg.DelAckTimeout)
	}
}

// sendAck emits a pure ACK reflecting the current receive state —
// exactly the packet HACK compresses into link-layer acknowledgments.
func (ep *Endpoint) sendAck() {
	ep.sendAckDup(interval{})
}

// sendAckDup emits a pure ACK; a non-empty dup range is reported as
// the leading D-SACK block (RFC 2883).
func (ep *Endpoint) sendAckDup(dup interval) {
	ep.delackCount = 0
	ep.sched.Cancel(ep.delackTimer)
	p := ep.newPacket(packet.FlagACK, ep.sndNxt, 0)
	if ep.sackEnabled {
		max := 3
		if !ep.tsEnabled {
			max = 4
		}
		if dup.e != dup.s {
			p.TCP.Opt.SACKBlocks = append(p.TCP.Opt.SACKBlocks, [2]uint32{dup.s, dup.e})
		}
		for _, iv := range ep.ooo {
			if len(p.TCP.Opt.SACKBlocks) >= max {
				break
			}
			p.TCP.Opt.SACKBlocks = append(p.TCP.Opt.SACKBlocks, [2]uint32{iv.s, iv.e})
		}
	}
	ep.Stats.PureAcksSent++
	ep.Output(p)
}
