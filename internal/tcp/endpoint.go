// Package tcp implements a standards-shaped TCP endpoint for the
// simulator: three-way handshake, NewReno congestion control (slow
// start, congestion avoidance, fast retransmit/fast recovery), RFC
// 6298 retransmission timeouts with exponential backoff, delayed ACKs,
// RFC 7323 timestamps, window scaling, and RFC 2018 selective
// acknowledgments.
//
// TCP/HACK requires that end-host TCP be completely unmodified
// (paper §2.2); this package therefore contains no HACK-specific
// behaviour whatsoever. The HACK driver (internal/hack) intercepts the
// pure ACK packets this endpoint emits, and TCP's own machinery — ACK
// clocking, retransmission timers — must tolerate whatever delivery
// pattern results. The pathological interactions §3.2 describes (an
// entire congestion window of ACKs held at a stalled client) emerge
// naturally from this implementation.
//
// Payload bytes are not materialized: segments carry lengths, and the
// receiver reconstructs the in-order byte count. Everything that
// matters to header compression — sequence numbers, ACK numbers,
// windows, options — is exact.
package tcp

import (
	"fmt"

	"tcphack/internal/packet"
	"tcphack/internal/sim"
	"tcphack/internal/trace"
)

// Connection states (the subset a unidirectional-transfer simulator
// exercises; no simultaneous open/close, no TIME_WAIT modelling).
type state int

const (
	stateClosed state = iota
	stateListen
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait // our FIN sent, awaiting its ACK
	stateDone    // transfer complete (FIN exchanged)
)

func (s state) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateListen:
		return "listen"
	case stateSynSent:
		return "syn-sent"
	case stateSynRcvd:
		return "syn-rcvd"
	case stateEstablished:
		return "established"
	case stateFinWait:
		return "fin-wait"
	case stateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config parameterizes an endpoint.
type Config struct {
	Local      packet.Addr
	LocalPort  uint16
	Remote     packet.Addr
	RemotePort uint16

	// MSS is the maximum segment size advertised and used (default
	// 1460; the stack reduces its effective payload by 12 bytes when
	// timestamps are on, like real stacks do).
	MSS int
	// Timestamps enables RFC 7323 timestamps (default on via
	// DefaultConfig).
	Timestamps bool
	// SACK enables selective acknowledgment generation and use.
	SACK bool
	// WindowScale is the advertised window shift (default 7).
	WindowScale uint8
	// RcvWindow is the advertised receive window in bytes (default 1 MiB).
	RcvWindow uint32
	// DelayedAck acks every second full segment (default on) — the
	// paper's baseline assumption ("one TCP ACK packet for every two
	// TCP data packets").
	DelayedAck bool
	// DelAckTimeout bounds ACK delay (default 100 ms).
	DelAckTimeout sim.Duration
	// InitialCwnd in segments (default 10, RFC 6928).
	InitialCwnd int
	// MinRTO clamps the retransmission timeout (default 200 ms).
	MinRTO sim.Duration

	// Tracer, when non-nil, receives TCP probes (retransmissions, RTO
	// expiries, congestion-window changes), labeled by LocalPort.
	// Tracers observe only; they never perturb protocol state.
	Tracer trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.WindowScale == 0 {
		c.WindowScale = 7
	}
	if c.RcvWindow == 0 {
		c.RcvWindow = 1 << 20
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 100 * sim.Millisecond
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	return c
}

// DefaultConfig returns the configuration used throughout the
// experiments: timestamps + SACK + delayed ACK, Linux-like defaults.
func DefaultConfig() Config {
	return Config{Timestamps: true, SACK: true, DelayedAck: true}.withDefaults()
}

// Stats counts endpoint events.
type Stats struct {
	SegsSent        uint64 // data segments transmitted (incl. rtx)
	PureAcksSent    uint64
	Retransmits     uint64
	FastRecoveries  uint64
	Timeouts        uint64
	DupAcksReceived uint64
	BytesDelivered  uint64 // in-order payload delivered to the app
	BytesAcked      uint64 // payload acknowledged at the sender
}

// interval is a [start, end) range in sequence space.
type interval struct{ s, e uint32 }

// Endpoint is one side of a TCP connection.
type Endpoint struct {
	sched *sim.Scheduler
	cfg   Config

	// Output transmits an IP packet toward the peer. Required.
	Output func(*packet.Packet)
	// OnDeliver is called with each in-order payload span delivered
	// to the application (receiver side).
	OnDeliver func(n int)
	// OnEstablished fires when the handshake completes.
	OnEstablished func()
	// OnDone fires when a finite transfer finishes (sender: FIN acked;
	// receiver: FIN delivered).
	OnDone func()

	Stats Stats

	state state
	ipID  uint16

	// Negotiated.
	peerWScale   uint8
	tsEnabled    bool
	sackEnabled  bool
	effectiveMSS int

	// Sender.
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	sndMax   uint32 // high-water mark: one past the highest seq sent
	cwnd     uint32
	ssthresh uint32
	caAcc    uint32
	peerWnd  uint32
	dupAcks  int
	inRec    bool
	recover  uint32
	rtxHigh  uint32 // recovery retransmission high-water mark (RFC 6675)
	// sampleFloor gates RTT sampling: during a loss epoch the
	// receiver's echoed timestamp freezes at the pre-hole segment, so
	// a sample would measure the whole stall and blow up SRTT. Only
	// ACKs beyond the highest sequence sent before the last loss event
	// yield samples.
	sampleFloor uint32
	rtxTimer    *sim.Timer
	rto         sim.Duration
	srtt        sim.Duration
	rttvar      sim.Duration
	rttSeq      uint32
	rttAt       sim.Time
	rttValid    bool
	appTotal    uint64 // bytes the app asked to send (maxUint64 = endless)
	appQueued   uint64 // bytes assigned sequence numbers so far
	finSent     bool
	sacked      []interval // peer-reported SACK scoreboard

	// Receiver.
	irs         uint32
	rcvNxt      uint32
	ooo         []interval // recency-ordered out-of-order spans
	delackCount int
	delackTimer *sim.Timer
	tsRecent    uint32
	finSeq      uint32
	finPending  bool
}

// NewEndpoint creates an endpoint bound to sched.
func NewEndpoint(sched *sim.Scheduler, cfg Config) *Endpoint {
	ep := &Endpoint{
		sched:     sched,
		cfg:       cfg.withDefaults(),
		OnDeliver: func(int) {},
		Output:    func(*packet.Packet) { panic("tcp: Output not set") },
	}
	ep.effectiveMSS = ep.cfg.MSS
	if ep.cfg.Timestamps {
		ep.effectiveMSS -= 12
	}
	ep.rto = sim.Second
	// Both protocol timers are persistent: allocated once here with
	// their callbacks and Reset on every (re)arming, so the per-ACK
	// timer churn costs nothing.
	ep.rtxTimer = sim.NewTimer(ep.onRTO)
	ep.delackTimer = sim.NewTimer(func() {
		if ep.delackCount > 0 {
			ep.sendAck()
		}
	})
	return ep
}

// State returns a printable connection state (for traces and tests).
func (ep *Endpoint) State() string { return ep.state.String() }

// Established reports whether the handshake has completed.
func (ep *Endpoint) Established() bool {
	return ep.state == stateEstablished || ep.state == stateFinWait || ep.state == stateDone
}

// Done reports whether a finite transfer has fully completed.
func (ep *Endpoint) Done() bool { return ep.state == stateDone }

// Listen makes the endpoint accept an incoming connection.
func (ep *Endpoint) Listen() {
	ep.state = stateListen
}

// Connect initiates the three-way handshake.
func (ep *Endpoint) Connect() {
	ep.iss = 1
	ep.sndUna, ep.sndNxt, ep.sndMax = ep.iss, ep.iss+1, ep.iss+1
	ep.state = stateSynSent
	ep.sendSyn(false)
	ep.armRTX()
}

// Send queues n application bytes for transmission (sender side). It
// may be called once with the transfer size or repeatedly.
func (ep *Endpoint) Send(n uint64) {
	ep.appTotal += n
	ep.trySend()
}

// SendForever marks the endpoint as an unbounded bulk sender.
func (ep *Endpoint) SendForever() {
	ep.appTotal = 1 << 62
	ep.trySend()
}

// tuple returns the flow five-tuple (local → remote).
func (ep *Endpoint) Tuple() packet.FiveTuple {
	return packet.FiveTuple{
		Src: ep.cfg.Local, Dst: ep.cfg.Remote,
		SrcPort: ep.cfg.LocalPort, DstPort: ep.cfg.RemotePort,
		Proto: packet.ProtoTCP,
	}
}

// seqGT reports a > b in sequence space.
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// seqGE reports a ≥ b in sequence space.
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

func (ep *Endpoint) nowTS() uint32 {
	return uint32(ep.sched.Now() / sim.Millisecond)
}

// newPacket builds an IP/TCP packet toward the peer. The packet and
// its TCP header share one allocation — they share a lifetime, and
// this is the per-segment hot path.
func (ep *Endpoint) newPacket(flags byte, seq uint32, payload int) *packet.Packet {
	ep.ipID++
	pt := &struct {
		p packet.Packet
		t packet.TCP
	}{
		p: packet.Packet{
			IP: packet.IPv4{
				TTL: 64, Protocol: packet.ProtoTCP, ID: ep.ipID,
				Src: ep.cfg.Local, Dst: ep.cfg.Remote,
			},
			PayloadLen: payload,
		},
		t: packet.TCP{
			SrcPort: ep.cfg.LocalPort, DstPort: ep.cfg.RemotePort,
			Seq: seq, Flags: flags,
			Window: uint16(ep.cfg.RcvWindow >> ep.cfg.WindowScale),
		},
	}
	p := &pt.p
	p.TCP = &pt.t
	if flags&packet.FlagACK != 0 {
		p.TCP.Ack = ep.rcvNxt
	}
	if ep.tsEnabled {
		p.TCP.Opt.HasTimestamps = true
		p.TCP.Opt.TSVal = ep.nowTS()
		p.TCP.Opt.TSEcr = ep.tsRecent
	}
	return p
}

func (ep *Endpoint) sendSyn(ack bool) {
	flags := byte(packet.FlagSYN)
	seq := ep.iss
	if ack {
		flags |= packet.FlagACK
	}
	p := ep.newPacket(flags, seq, 0)
	// A SYN's window field is never scaled (RFC 7323 §2.2): advertise
	// the true window clamped to 16 bits.
	if ep.cfg.RcvWindow > 0xffff {
		p.TCP.Window = 0xffff
	} else {
		p.TCP.Window = uint16(ep.cfg.RcvWindow)
	}
	p.TCP.Opt.MSS = uint16(ep.cfg.MSS)
	p.TCP.Opt.WindowScale = ep.cfg.WindowScale + 1 // +1: encoded as shift+1
	p.TCP.Opt.SACKPermitted = ep.cfg.SACK
	if ep.cfg.Timestamps {
		p.TCP.Opt.HasTimestamps = true
		p.TCP.Opt.TSVal = ep.nowTS()
		p.TCP.Opt.TSEcr = ep.tsRecent
	}
	ep.Output(p)
}

// Input processes a packet from the network.
func (ep *Endpoint) Input(p *packet.Packet) {
	if p.TCP == nil {
		return
	}
	t := p.TCP
	switch ep.state {
	case stateListen:
		if t.Flags&packet.FlagSYN != 0 && t.Flags&packet.FlagACK == 0 {
			ep.handleSyn(p)
		}
	case stateSynSent:
		if t.Flags&packet.FlagSYN != 0 && t.Flags&packet.FlagACK != 0 {
			ep.handleSynAck(p)
		}
	case stateSynRcvd:
		if t.Flags&packet.FlagACK != 0 && seqGT(t.Ack, ep.sndUna) {
			ep.sndUna = t.Ack
			ep.enterEstablished()
		}
		// Data may ride the final handshake ACK.
		if p.PayloadLen > 0 && ep.state == stateEstablished {
			ep.handleSegment(p)
		}
	case stateEstablished, stateFinWait:
		ep.handleSegment(p)
	case stateDone, stateClosed:
		// Stray retransmissions: re-ack so the peer can finish.
		if p.PayloadLen > 0 || t.Flags&packet.FlagFIN != 0 {
			ep.sendAck()
		}
	}
}

func (ep *Endpoint) handleSyn(p *packet.Packet) {
	t := p.TCP
	ep.irs = t.Seq
	ep.rcvNxt = t.Seq + 1
	ep.negotiate(t)
	ep.iss = 1
	ep.sndUna, ep.sndNxt, ep.sndMax = ep.iss, ep.iss+1, ep.iss+1
	ep.state = stateSynRcvd
	ep.sendSyn(true)
	ep.armRTX()
}

func (ep *Endpoint) handleSynAck(p *packet.Packet) {
	t := p.TCP
	if !seqGT(t.Ack, ep.sndUna) {
		return
	}
	ep.irs = t.Seq
	ep.rcvNxt = t.Seq + 1
	ep.negotiate(t)
	ep.sndUna = t.Ack
	ep.enterEstablished()
	ep.sendAck()
}

// negotiate applies the peer's SYN options.
func (ep *Endpoint) negotiate(t *packet.TCP) {
	if t.Opt.MSS != 0 && int(t.Opt.MSS) < ep.cfg.MSS {
		ep.cfg.MSS = int(t.Opt.MSS)
	}
	ep.tsEnabled = ep.cfg.Timestamps && t.Opt.HasTimestamps
	ep.sackEnabled = ep.cfg.SACK && t.Opt.SACKPermitted
	if t.Opt.WindowScale != 0 {
		ep.peerWScale = t.Opt.WindowScale - 1
	}
	ep.effectiveMSS = ep.cfg.MSS
	if ep.tsEnabled {
		ep.effectiveMSS -= 12
	}
	if t.Opt.HasTimestamps {
		ep.tsRecent = t.Opt.TSVal
	}
	ep.peerWnd = uint32(t.Window) // SYN windows are unscaled
}

func (ep *Endpoint) enterEstablished() {
	ep.state = stateEstablished
	ep.cwnd = uint32(ep.cfg.InitialCwnd * ep.effectiveMSS)
	ep.ssthresh = 1 << 30
	ep.disarmRTX()
	if ep.OnEstablished != nil {
		ep.OnEstablished()
	}
	ep.trySend()
}

// handleSegment processes an established-state segment: ACK side
// first, then payload/FIN side.
func (ep *Endpoint) handleSegment(p *packet.Packet) {
	t := p.TCP
	if ep.tsEnabled && t.Opt.HasTimestamps {
		// RFC 7323: update tsRecent from segments that cover rcvNxt.
		if !seqGT(t.Seq, ep.rcvNxt) {
			ep.tsRecent = t.Opt.TSVal
		}
	}
	if t.Flags&packet.FlagACK != 0 {
		ep.handleAck(p)
	}
	if p.PayloadLen > 0 || t.Flags&packet.FlagFIN != 0 {
		ep.handleData(p)
	}
}

// DebugString exposes sender internals for diagnostics.
func (ep *Endpoint) DebugString() string {
	return fmt.Sprintf("cwnd=%d ssthresh=%d inRec=%v una=%d nxt=%d max=%d rto=%v flight=%d sacked=%d dupacks=%d",
		ep.cwnd, ep.ssthresh, ep.inRec, ep.sndUna, ep.sndNxt, ep.sndMax, ep.rto, ep.flightSize(), len(ep.sacked), ep.dupAcks)
}

// DebugRecvString exposes receiver internals for diagnostics.
func (ep *Endpoint) DebugRecvString() string {
	return fmt.Sprintf("rcvNxt=%d finPending=%v finSeq=%d ooo=%v delack=%d",
		ep.rcvNxt, ep.finPending, ep.finSeq, ep.ooo, ep.delackCount)
}
