package tcp

import (
	"math/rand"
	"testing"

	"tcphack/internal/packet"
	"tcphack/internal/sim"
)

// pipe wires two endpoints through a fixed-delay link with a
// programmable drop function.
type pipe struct {
	sched *sim.Scheduler
	delay sim.Duration
	// drop, if non-nil, is consulted per packet (direction "a2b" or
	// "b2a"); returning true discards the packet.
	drop func(dir string, n int, p *packet.Packet) bool

	countA2B, countB2A int
}

func newPair(seed int64, delay sim.Duration) (*sim.Scheduler, *pipe, *Endpoint, *Endpoint) {
	sched := sim.NewScheduler(seed)
	pp := &pipe{sched: sched, delay: delay}
	cfgA := DefaultConfig()
	cfgA.Local, cfgA.LocalPort = packet.IP(10, 0, 0, 1), 5001
	cfgA.Remote, cfgA.RemotePort = packet.IP(10, 0, 0, 2), 6001
	cfgB := DefaultConfig()
	cfgB.Local, cfgB.LocalPort = packet.IP(10, 0, 0, 2), 6001
	cfgB.Remote, cfgB.RemotePort = packet.IP(10, 0, 0, 1), 5001
	a := NewEndpoint(sched, cfgA)
	b := NewEndpoint(sched, cfgB)
	a.Output = func(p *packet.Packet) {
		pp.countA2B++
		if pp.drop != nil && pp.drop("a2b", pp.countA2B, p) {
			return
		}
		q := p.Clone()
		sched.After(pp.delay, func() { b.Input(q) })
	}
	b.Output = func(p *packet.Packet) {
		pp.countB2A++
		if pp.drop != nil && pp.drop("b2a", pp.countB2A, p) {
			return
		}
		q := p.Clone()
		sched.After(pp.delay, func() { a.Input(q) })
	}
	return sched, pp, a, b
}

func TestHandshakeAndTransfer(t *testing.T) {
	sched, _, a, b := newPair(1, sim.Millisecond)
	b.Listen()
	delivered := 0
	b.OnDeliver = func(n int) { delivered += n }
	doneA, doneB := false, false
	a.OnDone = func() { doneA = true }
	b.OnDone = func() { doneB = true }
	const total = 1 << 20
	a.Send(total)
	a.Connect()
	sched.RunUntil(10 * sim.Second)
	if !a.Established() || !b.Established() {
		t.Fatalf("states: a=%s b=%s", a.State(), b.State())
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
	if !doneA || !doneB {
		t.Errorf("done flags: a=%v b=%v (states a=%s b=%s)", doneA, doneB, a.State(), b.State())
	}
	if a.Stats.Retransmits != 0 || a.Stats.Timeouts != 0 {
		t.Errorf("lossless transfer retransmitted: %+v", a.Stats)
	}
	if b.Stats.BytesDelivered != total {
		t.Errorf("BytesDelivered = %d", b.Stats.BytesDelivered)
	}
}

func TestDelayedAckRatio(t *testing.T) {
	sched, _, a, b := newPair(2, sim.Millisecond)
	b.Listen()
	a.Send(2 << 20)
	a.Connect()
	sched.RunUntil(20 * sim.Second)
	segs := a.Stats.SegsSent
	acks := b.Stats.PureAcksSent
	// Delayed ACK: roughly one ACK per two segments (plus OOO/edge
	// cases; lossless here, so the ratio is tight).
	ratio := float64(segs) / float64(acks)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("segments/ACKs = %.2f (segs=%d acks=%d), want ≈2", ratio, segs, acks)
	}
}

func TestNoDelayedAck(t *testing.T) {
	sched := sim.NewScheduler(3)
	pp := &pipe{sched: sched, delay: sim.Millisecond}
	cfgA := DefaultConfig()
	cfgA.Local, cfgA.LocalPort = packet.IP(10, 0, 0, 1), 1
	cfgA.Remote, cfgA.RemotePort = packet.IP(10, 0, 0, 2), 2
	cfgB := DefaultConfig()
	cfgB.DelayedAck = false
	cfgB.Local, cfgB.LocalPort = packet.IP(10, 0, 0, 2), 2
	cfgB.Remote, cfgB.RemotePort = packet.IP(10, 0, 0, 1), 1
	a, b := NewEndpoint(sched, cfgA), NewEndpoint(sched, cfgB)
	a.Output = func(p *packet.Packet) { q := p.Clone(); sched.After(pp.delay, func() { b.Input(q) }) }
	b.Output = func(p *packet.Packet) { q := p.Clone(); sched.After(pp.delay, func() { a.Input(q) }) }
	b.Listen()
	a.Send(1 << 20)
	a.Connect()
	sched.RunUntil(20 * sim.Second)
	segs, acks := a.Stats.SegsSent, b.Stats.PureAcksSent
	if float64(acks) < 0.9*float64(segs) {
		t.Errorf("without delack want ≈1 ACK/segment, got %d acks for %d segs", acks, segs)
	}
}

func TestDelAckTimerFlushesLoneSegment(t *testing.T) {
	sched, _, a, b := newPair(4, sim.Millisecond)
	b.Listen()
	a.Send(1000) // single segment: delayed ACK must fire by timeout
	a.Connect()
	sched.RunUntil(5 * sim.Second)
	if b.Stats.BytesDelivered != 1000 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	if !a.Done() {
		t.Errorf("sender not done (state %s): lone-segment ACK never flushed", a.State())
	}
}

func TestFastRetransmit(t *testing.T) {
	sched, pp, a, b := newPair(5, sim.Millisecond)
	b.Listen()
	dropped := false
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		// Drop one mid-stream data segment once.
		if dir == "a2b" && !dropped && p.PayloadLen > 0 && p.TCP.Seq > 100000 {
			dropped = true
			return true
		}
		return false
	}
	const total = 2 << 20
	delivered := 0
	b.OnDeliver = func(n int) { delivered += n }
	a.Send(total)
	a.Connect()
	sched.RunUntil(30 * sim.Second)
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
	if !dropped {
		t.Fatal("test never dropped a segment")
	}
	if a.Stats.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1", a.Stats.FastRecoveries)
	}
	if a.Stats.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (fast retransmit must win)", a.Stats.Timeouts)
	}
	if a.Stats.Retransmits == 0 {
		t.Error("no retransmissions recorded")
	}
	if b.Stats.BytesDelivered != total {
		t.Errorf("receiver delivered %d", b.Stats.BytesDelivered)
	}
}

func TestSACKBlocksGenerated(t *testing.T) {
	sched, pp, a, b := newPair(6, sim.Millisecond)
	b.Listen()
	sawSACK := false
	dropped := false
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		if dir == "a2b" && !dropped && p.PayloadLen > 0 && p.TCP.Seq > 50000 {
			dropped = true
			return true
		}
		if dir == "b2a" && len(p.TCP.Opt.SACKBlocks) > 0 {
			sawSACK = true
		}
		return false
	}
	a.Send(1 << 20)
	a.Connect()
	sched.RunUntil(30 * sim.Second)
	if !sawSACK {
		t.Error("no SACK blocks observed after loss")
	}
}

func TestRTORecovery(t *testing.T) {
	sched, pp, a, b := newPair(7, sim.Millisecond)
	b.Listen()
	// Drop the transfer's entire tail window once (per distinct seq):
	// no later data exists to generate three dup ACKs, so only the RTO
	// can recover, and go-back-N must refill the hole.
	const total = 4 << 20
	killedOnce := make(map[uint32]bool)
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		if dir != "a2b" || p.PayloadLen == 0 {
			return false
		}
		if p.TCP.Seq > total-300000 && !killedOnce[p.TCP.Seq] {
			killedOnce[p.TCP.Seq] = true
			return true
		}
		return false
	}
	delivered := 0
	b.OnDeliver = func(n int) { delivered += n }
	a.Send(total)
	a.Connect()
	sched.RunUntil(120 * sim.Second)
	if delivered != total {
		t.Fatalf("delivered %d of %d (timeouts=%d rtx=%d)", delivered, total,
			a.Stats.Timeouts, a.Stats.Retransmits)
	}
	if a.Stats.Timeouts == 0 {
		t.Error("expected at least one RTO")
	}
	if !a.Done() || !b.Done() {
		t.Errorf("done: a=%s b=%s", a.State(), b.State())
	}
}

func TestTimestampsEchoed(t *testing.T) {
	sched, pp, a, b := newPair(8, 5*sim.Millisecond)
	b.Listen()
	sawEcho := false
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		if dir == "b2a" && p.TCP.Opt.HasTimestamps && p.TCP.Opt.TSEcr != 0 {
			sawEcho = true
		}
		return false
	}
	a.Send(1 << 18)
	a.Connect()
	sched.RunUntil(10 * sim.Second)
	if !sawEcho {
		t.Error("receiver never echoed timestamps")
	}
	// SRTT should be near 2×5 ms (quantized to the 1 ms TS clock).
	if a.SRTT() < 5*sim.Millisecond || a.SRTT() > 30*sim.Millisecond {
		t.Errorf("SRTT = %v, want ≈10ms", a.SRTT())
	}
}

func TestReceiverWindowLimitsFlight(t *testing.T) {
	sched := sim.NewScheduler(9)
	cfgA := DefaultConfig()
	cfgA.Local, cfgA.LocalPort = packet.IP(1, 1, 1, 1), 1
	cfgA.Remote, cfgA.RemotePort = packet.IP(2, 2, 2, 2), 2
	cfgB := DefaultConfig()
	cfgB.RcvWindow = 16 << 10 // 16 KiB
	cfgB.Local, cfgB.LocalPort = packet.IP(2, 2, 2, 2), 2
	cfgB.Remote, cfgB.RemotePort = packet.IP(1, 1, 1, 1), 1
	a, b := NewEndpoint(sched, cfgA), NewEndpoint(sched, cfgB)
	maxFlight := uint32(0)
	a.Output = func(p *packet.Packet) {
		if f := a.flightSize(); f > maxFlight {
			maxFlight = f
		}
		q := p.Clone()
		sched.After(sim.Millisecond, func() { b.Input(q) })
	}
	b.Output = func(p *packet.Packet) {
		q := p.Clone()
		sched.After(sim.Millisecond, func() { a.Input(q) })
	}
	b.Listen()
	a.Send(1 << 20)
	a.Connect()
	sched.RunUntil(60 * sim.Second)
	if b.Stats.BytesDelivered != 1<<20 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	// Window advertisements are quantized by the scale shift; allow one
	// MSS of slack.
	if maxFlight > 16<<10+1500 {
		t.Errorf("flight reached %d with a 16 KiB receive window", maxFlight)
	}
}

func TestWindowScalingAllowsLargeFlight(t *testing.T) {
	sched, _, a, b := newPair(10, 20*sim.Millisecond)
	b.Listen()
	maxFlight := uint32(0)
	out := a.Output
	a.Output = func(p *packet.Packet) {
		if f := a.flightSize(); f > maxFlight {
			maxFlight = f
		}
		out(p)
	}
	a.SendForever()
	a.Connect()
	sched.RunUntil(20 * sim.Second)
	// 40 ms RTT with no loss: cwnd must blow straight past 64 KB,
	// which only works if window scaling is negotiated.
	if maxFlight <= 64<<10 {
		t.Errorf("max flight %d never exceeded unscaled 64 KiB", maxFlight)
	}
}

func TestCwndGrowth(t *testing.T) {
	sched, _, a, b := newPair(11, 10*sim.Millisecond)
	b.Listen()
	a.SendForever()
	a.Connect()
	sched.RunUntil(200 * sim.Millisecond)
	early := a.cwnd
	sched.RunUntil(5 * sim.Second)
	late := a.cwnd
	if early <= uint32(10*a.effectiveMSS)/2 {
		t.Errorf("early cwnd %d below initial window", early)
	}
	if late <= early {
		t.Errorf("cwnd did not grow: %d → %d", early, late)
	}
}

func TestRandomLossEventualDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sched, pp, a, b := newPair(12, 2*sim.Millisecond)
	b.Listen()
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		if p.TCP.Flags&packet.FlagSYN != 0 {
			return false // keep the handshake clean for test brevity
		}
		return rng.Float64() < 0.03
	}
	const total = 2 << 20
	delivered := 0
	b.OnDeliver = func(n int) { delivered += n }
	a.Send(total)
	a.Connect()
	sched.RunUntil(300 * sim.Second)
	if delivered != total {
		t.Fatalf("delivered %d of %d under 3%% loss (timeouts=%d fastrec=%d rtx=%d)",
			delivered, total, a.Stats.Timeouts, a.Stats.FastRecoveries, a.Stats.Retransmits)
	}
	if b.Stats.BytesDelivered != total {
		t.Errorf("over/under delivery: %d", b.Stats.BytesDelivered)
	}
}

func TestSynLossRecovers(t *testing.T) {
	sched, pp, a, b := newPair(13, sim.Millisecond)
	b.Listen()
	drops := 0
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		if p.TCP.Flags&packet.FlagSYN != 0 && p.TCP.Flags&packet.FlagACK == 0 && drops == 0 {
			drops++
			return true
		}
		return false
	}
	a.Send(10000)
	a.Connect()
	sched.RunUntil(30 * sim.Second)
	if !a.Established() {
		t.Fatalf("handshake never recovered from SYN loss (state %s)", a.State())
	}
	if b.Stats.BytesDelivered != 10000 {
		t.Errorf("delivered %d", b.Stats.BytesDelivered)
	}
}

func TestPureAcksAreCompressible(t *testing.T) {
	// Every pure ACK the receiver emits must satisfy packet.IsTCPAck —
	// the predicate the HACK driver uses to intercept them.
	sched, pp, a, b := newPair(14, sim.Millisecond)
	b.Listen()
	bad := 0
	pure := 0
	pp.drop = func(dir string, n int, p *packet.Packet) bool {
		if dir == "b2a" && p.TCP.Flags&packet.FlagSYN == 0 {
			if p.IsTCPAck() {
				pure++
			} else {
				bad++
			}
		}
		return false
	}
	a.Send(1 << 20)
	a.Connect()
	sched.RunUntil(10 * sim.Second)
	if pure == 0 {
		t.Fatal("no pure ACKs observed")
	}
	if bad != 0 {
		t.Errorf("%d receiver packets were not pure ACKs", bad)
	}
}

func TestIntervalInsert(t *testing.T) {
	var l []interval
	l = insertInterval(l, interval{10, 20})
	l = insertInterval(l, interval{30, 40})
	l = insertInterval(l, interval{20, 30}) // bridges the gap
	if len(l) != 1 || l[0] != (interval{10, 40}) {
		t.Errorf("merged = %v", l)
	}
	l = insertInterval(l, interval{5, 8})
	if len(l) != 2 || l[0] != (interval{5, 8}) {
		t.Errorf("prepend = %v", l)
	}
	l = insertInterval(l, interval{0, 100})
	if len(l) != 1 || l[0] != (interval{0, 100}) {
		t.Errorf("absorb = %v", l)
	}
}

func TestStateStrings(t *testing.T) {
	for s := stateClosed; s <= stateDone; s++ {
		if s.String() == "" {
			t.Errorf("state %d has empty string", int(s))
		}
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched, _, a, bb := newPair(int64(i), sim.Millisecond)
		bb.Listen()
		a.Send(1 << 20)
		a.Connect()
		sched.RunUntil(10 * sim.Second)
		if bb.Stats.BytesDelivered != 1<<20 {
			b.Fatal("incomplete transfer")
		}
	}
}
