package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tcphack/internal/campaign"
	"tcphack/internal/results"
)

// TestChaosCrashMidShardResimulatesOnlyUnstreamed is the streaming
// checkpoint's acceptance test: a worker SIGKILLed mid-shard loses its
// lease, and the re-lease grants exactly the points it had not yet
// streamed — the streamed half is already checkpointed in the store
// and never re-simulated.
func TestChaosCrashMidShardResimulatesOnlyUnstreamed(t *testing.T) {
	clock := newFakeClock()
	store := NewMemStore()
	s, err := NewServer(ServerConfig{Store: store, LeaseTTL: time.Minute, ShardSize: 4, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(testWire(), 4, "")
	if err != nil {
		t.Fatal(err)
	}
	grant, ok := s.lease("victim")
	if !ok || len(grant.Indexes) != 4 {
		t.Fatalf("grant = %+v ok=%v, want all 4 points", grant, ok)
	}
	spec, err := grant.Spec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := campaign.RunPoints(context.Background(), spec, grant.Indexes)
	if err != nil {
		t.Fatal(err)
	}

	// The victim streams two points, then the kernel takes it.
	for _, r := range rows[:2] {
		if dup, err := s.streamPoint("victim", grant.Job, grant.Shard, r); err != nil || dup {
			t.Fatalf("stream: dup=%v err=%v", dup, err)
		}
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d rows, want the 2 streamed checkpoints", store.Len())
	}

	clock.advance(2 * time.Minute)
	re, ok := s.lease("rescuer")
	if !ok || re.Job != grant.Job || re.Shard != grant.Shard {
		t.Fatalf("re-lease = %+v ok=%v, want the victim's shard", re, ok)
	}
	if !reflect.DeepEqual(re.Indexes, grant.Indexes[2:]) {
		t.Fatalf("re-lease grants %v, want only the unstreamed %v", re.Indexes, grant.Indexes[2:])
	}

	// The rescuer simulates just those two points and completes with
	// only them — the rest of the shard is already on the server.
	rerows, err := campaign.RunPoints(context.Background(), spec, re.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rerows {
		if dup, err := s.streamPoint("rescuer", re.Job, re.Shard, r); err != nil || dup {
			t.Fatalf("rescuer stream: dup=%v err=%v", dup, err)
		}
	}
	if dup, err := s.complete("rescuer", re.Job, re.Shard, rerows); err != nil || dup {
		t.Fatalf("partial complete: dup=%v err=%v", dup, err)
	}

	final, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Requeues != 1 {
		t.Fatalf("final = %+v, want done with 1 requeue", final)
	}
	if final.PointsStreamed != 4 || final.PointsResimulated != 0 {
		t.Errorf("streamed=%d resimulated=%d, want 4 streamed and zero repeated work",
			final.PointsStreamed, final.PointsResimulated)
	}
	got, err := s.Rows(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsJSON(t, got) != rowsJSON(t, serialRows(t, testWire())) {
		t.Error("recovered rows not byte-identical to serial")
	}
	// Memoization-hit cross-check: every point hit the store exactly
	// once, so a resubmission is born done.
	if store.Len() != 4 {
		t.Errorf("store holds %d rows, want 4", store.Len())
	}
	again, err := s.Submit(testWire(), 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" || again.CachedPoints != 4 {
		t.Errorf("resubmission = %+v, want born done from the checkpoints", again)
	}
}

// TestChaosLateStreamerIsDuplicate: a killed worker that was only
// presumed dead keeps streaming after its shard was re-leased; its
// rows match what the server already holds and are absorbed as
// duplicates, counted as repeated work.
func TestChaosLateStreamerIsDuplicate(t *testing.T) {
	clock := newFakeClock()
	s, err := NewServer(ServerConfig{LeaseTTL: time.Minute, ShardSize: 4, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testWire(), 4, ""); err != nil {
		t.Fatal(err)
	}
	grant, _ := s.lease("zombie")
	spec, _ := grant.Spec.Spec()
	rows, err := campaign.RunPoints(context.Background(), spec, grant.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)
	re, ok := s.lease("live")
	if !ok {
		t.Fatal("no re-lease")
	}
	if dup, err := s.streamPoint("live", re.Job, re.Shard, rows[0]); err != nil || dup {
		t.Fatalf("live stream: dup=%v err=%v", dup, err)
	}
	// The zombie reports the same point late.
	dup, err := s.streamPoint("zombie", grant.Job, grant.Shard, rows[0])
	if err != nil || !dup {
		t.Fatalf("zombie stream: dup=%v err=%v, want duplicate ack", dup, err)
	}
	st, _ := s.Status(grant.Job)
	if st.PointsResimulated != 1 {
		t.Errorf("resimulated = %d, want 1", st.PointsResimulated)
	}
	// A corrupted late report — wrong data for a point the server
	// already holds — is rejected, not absorbed as a duplicate.
	bad := rows[0]
	bad.AggregateMbps++
	if _, err := s.streamPoint("zombie", grant.Job, grant.Shard, bad); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Errorf("conflicting row not rejected: %v", err)
	}
}

// downStore is a store whose backend is entirely unavailable.
type downStore struct{}

func (downStore) Get(string) (*campaign.Result, error) {
	return nil, errors.New("store backend down")
}
func (downStore) Put(string, campaign.Result) error {
	return errors.New("store backend down")
}

// TestChaosStoreUnavailableDegrades: with the memoization store dead,
// a sweep still completes with byte-identical output — it just
// computes everything — and the degradation is visible in the job
// status, the metrics counters, the Prometheus exposition, and the
// log.
func TestChaosStoreUnavailableDegrades(t *testing.T) {
	var logLines []string
	s, err := NewServer(ServerConfig{
		Store:     downStore{},
		ShardSize: 2,
		Logf:      func(format string, args ...any) { logLines = append(logLines, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(testWire(), 2, "")
	if err != nil {
		t.Fatalf("submit must survive a dead store: %v", err)
	}
	if !st.Degraded {
		t.Errorf("job not degraded at admission: %+v", st)
	}
	for {
		grant, ok := s.lease("w")
		if !ok {
			break
		}
		completeShard(t, s, "w", grant)
	}
	final, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || !final.Degraded {
		t.Fatalf("final = %+v, want done and degraded", final)
	}
	got, err := s.Rows(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsJSON(t, got) != rowsJSON(t, serialRows(t, testWire())) {
		t.Error("degraded-mode rows not byte-identical to serial")
	}

	m := s.MetricsSnapshot()
	if m.Store.GetErrors != 4 || m.Store.PutErrors != 4 {
		t.Errorf("store health = %+v, want 4 get and 4 put errors", m.Store)
	}
	var prom bytes.Buffer
	writePrometheus(&prom, m)
	for _, frag := range []string{
		`tcphack_job_degraded{job="` + st.ID + `"`,
		"tcphack_store_get_errors 4",
		"tcphack_store_put_errors 4",
	} {
		if !strings.Contains(prom.String(), frag) {
			t.Errorf("prometheus exposition missing %q", frag)
		}
	}
	degradedLogs := 0
	for _, line := range logLines {
		if strings.Contains(line, "degraded") {
			degradedLogs++
		}
	}
	if degradedLogs == 0 {
		t.Errorf("no degradation log line in %q", logLines)
	}
}

// chaosLifetime is the seeded kill schedule: how long worker
// incarnation (slot, gen) lives before its Kill channel closes.
func chaosLifetime(slot, gen int) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "life|%d|%d", slot, gen)
	return 25*time.Millisecond + time.Duration(h.Sum64()%uint64(90*time.Millisecond))
}

// TestChaosSoakByteIdenticalUnderFaults is the full soak: a daemon and
// a fleet of three worker slots over loopback HTTP, every worker
// killed on a seeded schedule mid-shard, every HTTP request subject to
// drops/duplicates/503s/delays, every store operation subject to
// failures and silent corruption, plus one zombie lease that is never
// completed. The sweep must finish with rows byte-identical to serial,
// and every fault class the harness claims to inject must actually
// have fired. A second submission of the same sweep then survives the
// same regime, corruption quarantine included, with identical rows.
func TestChaosSoakByteIdenticalUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	w := testWire()
	w.Axes.Seeds = []int64{1, 2, 3, 4, 5} // 10 points, 5 shards of 2
	serial := serialRows(t, w)

	inner, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fstore := &FaultStore{
		Inner: inner, Seed: 11,
		FailGet: 0.35, FailPut: 0.3, CorruptPut: 0.4, Delay: 0.3,
		MaxDelay: time.Millisecond,
	}
	s, err := NewServer(ServerConfig{
		Store:    fstore,
		Salt:     results.CodeVersion,
		LeaseTTL: 400 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ftrans := &FaultTransport{
		Seed:        12,
		DropRequest: 0.04, DropResponse: 0.04, Duplicate: 0.06, Err503: 0.06, Delay: 0.08,
		MaxDelay: time.Millisecond,
	}
	hc := &http.Client{Transport: ftrans}
	newClient := func(name string) Client {
		return Client{
			BaseURL:    ts.URL,
			HTTPClient: hc,
			Retry: RetryPolicy{
				MaxAttempts: 8,
				BaseDelay:   time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				Timeout:     10 * time.Second,
				Seed:        name,
			},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// runFleet relaunches killed workers in 3 slots until the job is
	// done, then reaps the fleet.
	runFleet := func(jobID string) JobStatus {
		fleetCtx, stopFleet := context.WithCancel(ctx)
		defer stopFleet()
		var wg sync.WaitGroup
		for slot := 0; slot < 3; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				for gen := 0; fleetCtx.Err() == nil; gen++ {
					name := fmt.Sprintf("%s-w%d-%d", jobID, slot, gen)
					kill := make(chan struct{})
					timer := time.AfterFunc(chaosLifetime(slot, gen), func() { close(kill) })
					wk := &Worker{
						Client:  newClient(name),
						Name:    name,
						Poll:    2 * time.Millisecond,
						MaxPoll: 30 * time.Millisecond,
						Kill:    kill,
						// Stretch each point so the seeded kills land
						// mid-shard, not between shards.
						OnPoint: func(LeaseGrant, int, bool, error) { time.Sleep(8 * time.Millisecond) },
					}
					wk.Run(fleetCtx)
					timer.Stop()
				}
			}(slot)
		}
		waiter := newClient("waiter-" + jobID)
		st, err := waiter.WaitDone(ctx, jobID, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("chaos sweep %s did not finish: %v", jobID, err)
		}
		stopFleet()
		wg.Wait()
		return st
	}

	control := newClient("control")
	st, err := control.Submit(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One shard goes to a zombie that is never heard from again — a
	// guaranteed lease expiry on top of the probabilistic kills.
	if _, ok := s.lease("zombie"); !ok {
		t.Fatal("no zombie lease")
	}

	final := runFleet(st.ID)
	rows, err := control.Rows(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, rows), rowsJSON(t, serial); got != want {
		t.Errorf("chaos rows not byte-identical to serial:\n got:  %s\n want: %s", got, want)
	}
	if final.Requeues < 1 {
		t.Errorf("requeues = %d, want at least the zombie's", final.Requeues)
	}
	if final.PointsStreamed == 0 {
		t.Error("no points streamed — checkpoints never exercised")
	}
	t.Logf("phase 1: %+v", final)

	// Phase 2: the same sweep again, same fault regime. Whatever the
	// store preserved is reused; corrupted entries are quarantined or
	// overwritten; the output must not change by a byte.
	st2, err := control.Submit(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatal("second submit deduplicated against the first (tokens must differ)")
	}
	final2 := st2
	if st2.State != "done" {
		final2 = runFleet(st2.ID)
	}
	rows2, err := control.Rows(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, rows2), rowsJSON(t, serial); got != want {
		t.Errorf("phase-2 rows not byte-identical to serial:\n got:  %s\n want: %s", got, want)
	}
	t.Logf("phase 2: %+v (cached %d, quarantined %d)", final2, st2.CachedPoints, inner.CorruptCount())

	// The soak only proves what it injected: every fault class must
	// actually have fired.
	sst := fstore.Stats()
	for name, n := range map[string]int64{
		"store FailedGets":    sst.FailedGets,
		"store FailedPuts":    sst.FailedPuts,
		"store CorruptedPuts": sst.CorruptedPuts,
		"store Delayed":       sst.Delayed,
	} {
		if n == 0 {
			t.Errorf("fault class %q never fired (stats %+v)", name, sst)
		}
	}
	tst := ftrans.Stats()
	for name, n := range map[string]int64{
		"transport DroppedRequests":  tst.DroppedRequests,
		"transport DroppedResponses": tst.DroppedResponses,
		"transport Duplicated":       tst.Duplicated,
		"transport Injected503s":     tst.Injected503s,
		"transport Delayed":          tst.Delayed,
	} {
		if n == 0 {
			t.Errorf("fault class %q never fired (stats %+v)", name, tst)
		}
	}

	// Degradation bookkeeping matches what the fault layer injected.
	m := s.MetricsSnapshot()
	if m.Store.PutErrors != sst.FailedPuts {
		t.Errorf("metrics put errors = %d, fault layer fired %d", m.Store.PutErrors, sst.FailedPuts)
	}
	if m.Store.GetErrors != sst.FailedGets {
		t.Errorf("metrics get errors = %d, fault layer fired %d", m.Store.GetErrors, sst.FailedGets)
	}
}
