package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry is the test retry policy: real policy shape, no real
// sleeping.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Timeout:     5 * time.Second,
	}
}

// TestRetryBackoffShape: the schedule doubles from BaseDelay, caps at
// MaxDelay, keeps jitter inside [d/2, d], and is deterministic per
// (seed, path) while differing across seeds.
func TestRetryBackoffShape(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond, Seed: "w1"}.withDefaults()
	prev := time.Duration(0)
	for retry := 1; retry <= 6; retry++ {
		d := 100 * time.Millisecond
		for i := 1; i < retry && d < p.MaxDelay; i++ {
			d *= 2
		}
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
		got := p.backoff("/lease", retry)
		if got < d/2 || got > d {
			t.Errorf("retry %d backoff %v outside [%v, %v]", retry, got, d/2, d)
		}
		if got != p.backoff("/lease", retry) {
			t.Errorf("retry %d backoff not deterministic", retry)
		}
		if retry >= 4 && got > p.MaxDelay {
			t.Errorf("retry %d backoff %v exceeds cap", retry, got)
		}
		_ = prev
		prev = got
	}
	other := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond, Seed: "w2"}.withDefaults()
	same := 0
	for retry := 1; retry <= 6; retry++ {
		if p.backoff("/lease", retry) == other.backoff("/lease", retry) {
			same++
		}
	}
	if same == 6 {
		t.Error("two seeds produced identical jitter schedules")
	}
}

// TestClientRetries5xxThenSucceeds: transient 5xx responses are
// retried within the policy and the call still succeeds; the retries
// are observable through OnRetry.
func TestClientRetries5xxThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			httpError(w, http.StatusInternalServerError, context.DeadlineExceeded)
			return
		}
		writeJSON(w, []JobStatus{{ID: "j1"}})
	}))
	defer ts.Close()

	var retries []string
	p := fastRetry(5)
	p.OnRetry = func(path string, attempt int, err error) {
		retries = append(retries, path)
		if err == nil {
			t.Error("OnRetry observed a nil error")
		}
	}
	c := Client{BaseURL: ts.URL, Retry: p}
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Errorf("jobs = %+v", jobs)
	}
	if calls.Load() != 3 || len(retries) != 2 {
		t.Errorf("calls = %d, retries = %v; want 3 calls, 2 retries", calls.Load(), retries)
	}
}

// TestClientGivesUpAfterBudget: a persistent 5xx exhausts MaxAttempts
// and the give-up error still reads as retryable (WaitDone's transient
// classification depends on it).
func TestClientGivesUpAfterBudget(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := Client{BaseURL: ts.URL, Retry: fastRetry(3)}
	_, err := c.Jobs()
	if err == nil {
		t.Fatal("persistent 503 did not error")
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	if _, ok := err.(retryableError); !ok {
		t.Errorf("give-up error lost its retryable classification: %T %v", err, err)
	}
}

// TestClientDoesNotRetry4xx: a 4xx is the server's verdict on the
// request — retrying it is a bug, and the error carries the server's
// message.
func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "dist: unknown job \"j42\""})
	}))
	defer ts.Close()

	c := Client{BaseURL: ts.URL, Retry: fastRetry(5)}
	_, err := c.Status("j42")
	if err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("err = %v, want the server's message", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d; a 4xx must not be retried", calls.Load())
	}
	if _, ok := err.(retryableError); ok {
		t.Error("4xx classified as retryable")
	}
}

// TestSubmitIdempotencyToken: retries and duplicates of one submit —
// same token — admit exactly one job; a different token admits a new
// one. This is what makes POST /jobs safe under at-least-once
// delivery.
func TestSubmitIdempotencyToken(t *testing.T) {
	s, err := NewServer(ServerConfig{ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(testWire(), 2, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s.Submit(testWire(), 2, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	if replay.ID != first.ID {
		t.Errorf("replayed submit admitted %s, want %s", replay.ID, first.ID)
	}
	if got := len(s.Jobs()); got != 1 {
		t.Errorf("%d jobs after replay, want 1", got)
	}
	fresh, err := s.Submit(testWire(), 2, "tok-2")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == first.ID {
		t.Error("fresh token replayed the old job")
	}
}

// TestSubmitTokenSurvivesRestart: the token→job mapping is persisted
// with the job record, so a submit retried across a daemon restart
// still deduplicates.
func TestSubmitTokenSurvivesRestart(t *testing.T) {
	state := t.TempDir()
	s1, err := NewServer(ServerConfig{StateDir: state, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Submit(testWire(), 2, "tok-restart")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(ServerConfig{StateDir: state, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s2.Submit(testWire(), 2, "tok-restart")
	if err != nil {
		t.Fatal(err)
	}
	if replay.ID != first.ID {
		t.Errorf("post-restart replay admitted %s, want %s", replay.ID, first.ID)
	}
}

// TestWaitDoneContextCancelled: WaitDone on a job that never finishes
// returns the context's error and the last status it saw.
func TestWaitDoneContextCancelled(t *testing.T) {
	s, err := NewServer(ServerConfig{ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startDaemon(t, s)
	st, err := c.Submit(testWire(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	last, err := c.WaitDone(ctx, st.ID, time.Millisecond)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if last.ID != st.ID || last.State != "running" {
		t.Errorf("last status = %+v, want the running job", last)
	}
}

// TestWaitDoneAbsorbsOutages: polls that fail with 5xx — even beyond
// the per-call retry budget — do not abort the wait; WaitDone keeps
// polling and returns the final status once the daemon recovers.
func TestWaitDoneAbsorbsOutages(t *testing.T) {
	s, err := NewServer(ServerConfig{ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(testWire(), 4, "")
	if err != nil {
		t.Fatal(err)
	}
	grant, ok := s.lease("w")
	if !ok {
		t.Fatal("no lease")
	}
	completeShard(t, s, "w", grant)

	// The daemon is "down" for the first few polls.
	inner := s.Handler()
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) <= 4 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := Client{BaseURL: ts.URL, Retry: fastRetry(2)} // budget < outage length
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := c.WaitDone(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("WaitDone did not survive the outage: %v", err)
	}
	if final.State != "done" {
		t.Errorf("final = %+v, want done", final)
	}
}

// TestWaitDoneSurfacesDefinitiveErrors: an unknown job is a verdict,
// not an outage — WaitDone must return it immediately instead of
// polling until the context dies.
func TestWaitDoneSurfacesDefinitiveErrors(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startDaemon(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, err = c.WaitDone(ctx, "j404", time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("err = %v, want unknown job", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("definitive error took the whole context to surface")
	}
}
