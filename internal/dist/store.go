package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"tcphack/internal/campaign"
)

// Store is the content-addressed memoization backend: completed grid
// points keyed by their fingerprint (results.PointFingerprint). A
// store is both the daemon's checkpoint and its cross-sweep cache, so
// implementations must make Put durable before returning. The file-dir
// backend is the first implementation; the interface is deliberately
// narrow (get/put, no enumeration) so a sqlite backend can slot in
// without touching the planner or server.
type Store interface {
	// Get returns the cached row for a fingerprint, nil on a miss.
	Get(fp string) (*campaign.Result, error)
	// Put persists one row under its fingerprint, overwriting any
	// previous entry (rows are deterministic, so overwrites are
	// idempotent).
	Put(fp string, r campaign.Result) error
}

// DirStore is the file-dir Store: one JSON file per fingerprint under
// a root directory, written atomically (temp file + rename) so a
// crashed daemon never leaves a torn cache entry.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a file-dir store rooted at
// dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating store dir: %v", err)
	}
	return &DirStore{dir: dir}, nil
}

// path maps a fingerprint to its file, rejecting anything that could
// escape the store root (fingerprints are lowercase hex, but the store
// must not trust its callers' inputs).
func (s *DirStore) path(fp string) (string, error) {
	if fp == "" || strings.ContainsAny(fp, "/\\.") {
		return "", fmt.Errorf("dist: invalid fingerprint %q", fp)
	}
	return filepath.Join(s.dir, fp+".json"), nil
}

// Get implements Store.
func (s *DirStore) Get(fp string) (*campaign.Result, error) {
	path, err := s.path(fp)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var r campaign.Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("dist: corrupt store entry %s: %v", fp, err)
	}
	return &r, nil
}

// Put implements Store.
func (s *DirStore) Put(fp string, r campaign.Result) error {
	path, err := s.path(fp)
	if err != nil {
		return err
	}
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// MemStore is the in-memory Store: the memory-only daemon's backend
// (no resume across restarts) and the test double.
type MemStore struct {
	mu sync.Mutex
	m  map[string]campaign.Result
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: map[string]campaign.Result{}}
}

// Get implements Store.
func (s *MemStore) Get(fp string) (*campaign.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[fp]; ok {
		return &r, nil
	}
	return nil, nil
}

// Put implements Store.
func (s *MemStore) Put(fp string, r campaign.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[fp] = r
	return nil
}

// Len reports the number of cached rows (test introspection).
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
