package dist

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"tcphack/internal/campaign"
	"tcphack/internal/results"
)

// Store is the content-addressed memoization backend: completed grid
// points keyed by their fingerprint (results.PointFingerprint). A
// store is both the daemon's checkpoint and its cross-sweep cache, so
// implementations must make Put durable before returning, and Get must
// never return a wrong answer: an entry an implementation cannot
// verify (torn write, bit rot) is reported as a miss, not as data. The
// file-dir backend is the first implementation; the interface is
// deliberately narrow (get/put, no enumeration) so a sqlite backend
// can slot in without touching the planner or server.
type Store interface {
	// Get returns the cached row for a fingerprint, nil on a miss.
	// Unverifiable (corrupt) entries are a miss, not an error; errors
	// mean the backend itself is unavailable.
	Get(fp string) (*campaign.Result, error)
	// Put persists one row under its fingerprint, overwriting any
	// previous entry (rows are deterministic, so overwrites are
	// idempotent).
	Put(fp string, r campaign.Result) error
}

// Purger is the optional garbage-collection side of a Store: Purge
// deletes entries whose recorded code version differs from
// keepVersion (they can never be served again — the version salts the
// fingerprint, so no current plan will ever probe them) along with
// quarantined corrupt entries. dryRun counts without deleting.
// DirStore implements it; hackbench -store-gc is the CLI.
type Purger interface {
	// Purge removes (or, with dryRun, counts) stale and quarantined
	// entries, returning how many were affected.
	Purge(keepVersion string, dryRun bool) (int, error)
}

// storeEntry is the on-disk form of one cached row: the row's JSON
// bytes guarded by a CRC-32 (IEEE) over exactly those bytes, plus the
// code version that produced them (Purge's eviction key; Get does not
// consult it — the version already salts the fingerprint).
type storeEntry struct {
	// CodeVersion is the producing build's results.CodeVersion salt.
	CodeVersion string `json:"code_version"`
	// CRC32 is crc32.ChecksumIEEE over Row.
	CRC32 uint32 `json:"crc32"`
	// Row is the campaign.Result's JSON, byte-exact as checksummed.
	Row json.RawMessage `json:"row"`
}

// corruptSuffix marks quarantined entries: a store file that failed
// its integrity check is renamed aside (never deleted in place — it is
// forensic evidence) and treated as a miss from then on.
const corruptSuffix = ".corrupt"

// DirStore is the file-dir Store: one JSON file per fingerprint under
// a root directory, each wrapped in a CRC-32 integrity envelope,
// written atomically (temp file + fsync + rename) so neither a daemon
// crash nor a host crash can leave a torn-but-named entry. Entries
// that fail the integrity check on Get — torn by a crash predating the
// fsync, bit-rotted, or written by a pre-envelope build — are
// quarantined (renamed *.corrupt) and reported as a miss, so the worst
// corruption can cause is re-simulation, never a wrong row.
type DirStore struct {
	dir string
	// Version is the code-version salt recorded in every entry this
	// store writes (Purge's eviction key). Empty uses
	// results.CodeVersion; the daemon sets it to its fingerprint salt.
	Version string

	corrupt atomic.Int64
	// putWrite overrides the temp-file write+sync for crash tests (nil
	// = write everything and fsync).
	putWrite func(f *os.File, data []byte) error
}

// NewDirStore opens (creating if needed) a file-dir store rooted at
// dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating store dir: %v", err)
	}
	return &DirStore{dir: dir}, nil
}

// path maps a fingerprint to its file, rejecting anything that could
// escape the store root (fingerprints are lowercase hex, but the store
// must not trust its callers' inputs).
func (s *DirStore) path(fp string) (string, error) {
	if fp == "" || strings.ContainsAny(fp, "/\\.") {
		return "", fmt.Errorf("dist: invalid fingerprint %q", fp)
	}
	return filepath.Join(s.dir, fp+".json"), nil
}

// version resolves the salt recorded in written entries.
func (s *DirStore) version() string {
	if s.Version != "" {
		return s.Version
	}
	return results.CodeVersion
}

// Get implements Store. A corrupt entry — unparseable envelope, CRC
// mismatch, or unparseable row — is quarantined and reported as a
// miss.
func (s *DirStore) Get(fp string) (*campaign.Result, error) {
	path, err := s.path(fp)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var env storeEntry
	if json.Unmarshal(data, &env) != nil || len(env.Row) == 0 ||
		crc32.ChecksumIEEE(env.Row) != env.CRC32 {
		return nil, s.quarantine(path)
	}
	var r campaign.Result
	if err := json.Unmarshal(env.Row, &r); err != nil {
		return nil, s.quarantine(path)
	}
	return &r, nil
}

// quarantine renames a corrupt entry aside so it reads as a miss from
// now on. The rename is best-effort: if it fails the file stays, but
// Get still reported a miss, so the entry is re-simulated either way.
func (s *DirStore) quarantine(path string) error {
	s.corrupt.Add(1)
	os.Rename(path, path+corruptSuffix)
	return nil
}

// CorruptCount reports how many entries this store has quarantined —
// the degradation metric the daemon folds into /metrics.
func (s *DirStore) CorruptCount() int64 {
	return s.corrupt.Load()
}

// Put implements Store. The entry is written to a temp file, fsynced,
// and renamed into place: the fsync guarantees a host crash after the
// rename can never expose a torn entry under its final name, and the
// CRC envelope catches the remaining window (crash between write and
// sync on filesystems that reorder the rename).
func (s *DirStore) Put(fp string, r campaign.Result) error {
	path, err := s.path(fp)
	if err != nil {
		return err
	}
	rowData, err := json.Marshal(r)
	if err != nil {
		return err
	}
	data, err := json.Marshal(storeEntry{
		CodeVersion: s.version(),
		CRC32:       crc32.ChecksumIEEE(rowData),
		Row:         rowData,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return err
	}
	write := s.putWrite
	if write == nil {
		write = func(f *os.File, data []byte) error {
			if _, err := f.Write(data); err != nil {
				return err
			}
			return f.Sync()
		}
	}
	if err := write(tmp, data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// CorruptEntry flips bytes in the middle of fp's stored file in place
// — the fault-injection hook FaultStore uses to model bit rot. A
// subsequent Get fails the CRC check and quarantines the entry.
// Missing entries are a no-op.
func (s *DirStore) CorruptEntry(fp string) error {
	path, err := s.path(fp)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	return os.WriteFile(path, data, 0o644)
}

// Purge implements Purger: entries whose recorded CodeVersion differs
// from keepVersion, entries too corrupt to read a version out of, and
// previously quarantined *.corrupt files are deleted (or only counted,
// with dryRun).
func (s *DirStore) Purge(keepVersion string, dryRun bool) (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		stale := false
		switch {
		case strings.HasSuffix(name, corruptSuffix):
			stale = true
		case strings.HasSuffix(name, ".json"):
			data, err := os.ReadFile(filepath.Join(s.dir, name))
			if err != nil {
				return n, err
			}
			var env storeEntry
			if json.Unmarshal(data, &env) != nil || env.CodeVersion != keepVersion {
				stale = true
			}
		default:
			continue // temp files and strangers are not ours to judge
		}
		if !stale {
			continue
		}
		n++
		if !dryRun {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// MemStore is the in-memory Store: the memory-only daemon's backend
// (no resume across restarts) and the test double.
type MemStore struct {
	mu sync.Mutex
	m  map[string]campaign.Result
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: map[string]campaign.Result{}}
}

// Get implements Store.
func (s *MemStore) Get(fp string) (*campaign.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[fp]; ok {
		return &r, nil
	}
	return nil, nil
}

// Put implements Store.
func (s *MemStore) Put(fp string, r campaign.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[fp] = r
	return nil
}

// Len reports the number of cached rows (test introspection).
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
