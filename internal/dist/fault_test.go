package dist

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// TestFaultStoreDeterministicSchedule: two FaultStores with one seed
// fail the same operations in the same order — the property that makes
// a chaos run's fault schedule replayable.
func TestFaultStoreDeterministicSchedule(t *testing.T) {
	row := serialRows(t, testWire())[0]
	pattern := func(seed int64) string {
		fs := &FaultStore{Inner: NewMemStore(), Seed: seed, FailGet: 0.4, FailPut: 0.4}
		var b strings.Builder
		for i := 0; i < 40; i++ {
			if err := fs.Put(fmt.Sprintf("fp%036d", i), row); err != nil {
				b.WriteByte('P')
			}
			if _, err := fs.Get(fmt.Sprintf("fp%036d", i)); err != nil {
				b.WriteByte('G')
			}
			b.WriteByte('.')
		}
		return b.String()
	}
	if pattern(7) != pattern(7) {
		t.Error("same seed produced different fault schedules")
	}
	if pattern(7) == pattern(8) {
		t.Error("different seeds produced identical fault schedules")
	}
	if !strings.ContainsAny(pattern(7), "PG") {
		t.Error("no faults fired at p=0.4 over 80 draws")
	}
}

// TestFaultStoreCorruptPutIsSilent: a corrupted Put reports success
// (bit rot is silent), and only the inner store's CRC check on a later
// Get exposes it — as a quarantined miss, never as wrong data.
func TestFaultStoreCorruptPutIsSilent(t *testing.T) {
	inner, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := &FaultStore{Inner: inner, Seed: 1, CorruptPut: 1.0}
	row := serialRows(t, testWire())[0]
	if err := fs.Put("feedfacefeedface", row); err != nil {
		t.Fatalf("corrupted put must still report success, got %v", err)
	}
	if fs.Stats().CorruptedPuts != 1 {
		t.Fatalf("stats = %+v, want 1 corrupted put", fs.Stats())
	}
	got, err := fs.Get("feedfacefeedface")
	if err != nil || got != nil {
		t.Fatalf("Get after silent corruption = %v, %v; want quarantined miss", got, err)
	}
	if fs.CorruptCount() != 1 {
		t.Errorf("CorruptCount = %d, want 1 (forwarded from inner)", fs.CorruptCount())
	}
}

// TestFaultTransportClasses: every transport fault class fires under
// load, drops and 503s surface as client-visible failures, and
// duplicated requests genuinely reach the server twice.
func TestFaultTransportClasses(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		writeJSON(w, map[string]bool{"ok": true})
	}))
	defer ts.Close()

	ft := &FaultTransport{
		Seed:        42,
		DropRequest: 0.1, DropResponse: 0.1, Duplicate: 0.1, Err503: 0.1, Delay: 0.1,
	}
	c := &http.Client{Transport: ft}
	okResponses, failures := 0, 0
	for i := 0; i < 300; i++ {
		req, err := http.NewRequest("POST", ts.URL+"/x", strings.NewReader(`{"n":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Do(req)
		if err != nil {
			failures++
			continue
		}
		if resp.StatusCode == http.StatusOK {
			okResponses++
		}
		resp.Body.Close()
	}

	st := ft.Stats()
	for name, n := range map[string]int64{
		"DroppedRequests":  st.DroppedRequests,
		"DroppedResponses": st.DroppedResponses,
		"Duplicated":       st.Duplicated,
		"Injected503s":     st.Injected503s,
		"Delayed":          st.Delayed,
	} {
		if n == 0 {
			t.Errorf("fault class %s never fired: %+v", name, st)
		}
	}
	if failures == 0 {
		t.Error("no client-visible failures despite drops")
	}
	// The server saw: every ok response, every dropped response, and
	// one extra request per duplicate — but none of the dropped
	// requests or synthetic 503s.
	want := int64(okResponses) + st.DroppedResponses + st.Duplicated
	if served.Load() != want {
		t.Errorf("server served %d requests, want %d (ok=%d + droppedResp=%d + dup=%d)",
			served.Load(), want, okResponses, st.DroppedResponses, st.Duplicated)
	}
}
