// Package dist is the campaign-as-a-service layer: it executes sweep
// grids across processes and machines while preserving, bit for bit,
// the output contract of a serial in-process campaign.Run.
//
// A Server (hackbench -serve) owns a queue of jobs, each a
// campaign.WireSpec — a registered scenario plus wire-form axes —
// planned into shards of grid-point indexes. Workers (hackbench
// -worker <url>) lease shards over HTTP/JSON, simulate them point by
// point with campaign.RunPoints, stream each finished row back
// immediately, and deliver the whole shard at the end; the server
// merges rows by grid index through results.Merge and serves the
// completed job in campaign.Results form. A submit client (hackbench
// -submit) posts specs and fetches rows.
//
// # Determinism contract
//
// Every grid point is an independent, seed-deterministic simulation,
// so a job's merged output is byte-identical to campaign.Run executed
// serially in one process — regardless of worker count, shard size,
// lease churn, retries, duplicate deliveries, injected faults, or how
// many points were served from the memoization store. The contract
// holds only across processes running the same build:
// results.CodeVersion salts every memoization key, and both the
// streaming endpoint and results.Merge reject conflicting duplicate
// rows, so a version skew between workers surfaces as an explicit
// error rather than silently mixed output.
//
// # At-least-once lease contract
//
// Shards are leased, not assigned: a lease grants one worker the right
// to simulate a shard until the lease expires. Workers heartbeat to
// keep long shards alive; a lease that expires (worker crash, network
// partition, missed heartbeats) is re-queued exactly once per expiry
// and handed to the next worker that asks — granting only the points
// the previous holder had not already streamed back. A point may
// therefore be simulated more than once — at-least-once execution —
// which is safe precisely because of the determinism contract:
// duplicate rows are identical, verified to be, and acknowledged
// idempotently. What is never possible is a job completing with rows
// from two different simulations of one point.
//
// # Checkpoint/resume and memoization
//
// Every row is persisted into a content-addressed Store keyed by its
// point fingerprint (results.PointFingerprint over
// campaign.WireSpec.FingerprintFields plus the code-version salt) the
// moment it reaches the server — streamed rows individually, the rest
// at shard completion, always before the delivery is acknowledged.
// The store is therefore both the checkpoint and the cache, at point
// granularity: a worker killed mid-shard costs only its unstreamed
// points; a daemon restarted over the same state directory re-plans
// its persisted job specs and finds the completed points in the store;
// a re-submitted or overlapping sweep simulates only fingerprints the
// store does not hold.
//
// The file-dir store wraps every entry in a CRC-32 integrity envelope,
// written via temp-file + fsync + atomic rename. An entry that fails
// its integrity check on read — torn write, bit rot, pre-envelope
// build — is quarantined (renamed *.corrupt) and reported as a miss,
// so the worst corruption can ever cause is re-simulation, never a
// wrong row. Stale-version and quarantined entries are reclaimed by
// Purge (hackbench -store-gc).
//
// # Degradation contract
//
// The memoization store is an accelerator, never a dependency. A store
// whose backend fails — unreadable at planning, unwritable at row
// landing — demotes the affected job to compute-everything mode: the
// failed reads plan as misses, the failed writes leave rows in server
// memory only, the sweep proceeds, and the output is still exact. The
// fallback is observable, not silent: the job carries a degraded flag,
// the daemon logs the first demotion, and /metrics exposes the
// per-class store error counters (JSON and Prometheus text
// exposition).
//
// # Endpoint retry and idempotency contract
//
// Clients retry transport errors and 5xx responses with capped
// exponential backoff and deterministic jitter; 4xx responses are
// verdicts and are never retried. Retrying is safe on every endpoint;
// the table below is normative. "Idempotent" means a duplicate of the
// same logical request (client retry, or a network-level duplicate)
// converges to the first request's outcome.
//
//	POST /jobs        Idempotent via the client-generated submit token:
//	                  the server admits one job per token and replays
//	                  its status for every duplicate. Tokenless submits
//	                  admit a new job each time.
//	POST /lease       Not idempotent (each call may grant a different
//	                  shard), but safe: a grant whose response is lost
//	                  is simply a lease nobody works, re-queued at
//	                  expiry. 204 means an empty queue.
//	POST /heartbeat   Idempotent; renews only while the caller still
//	                  holds the lease. renewed=false signals a lost
//	                  lease, never an error.
//	POST /jobs/{id}/shards/{sid}/points
//	                  Idempotent: a row the server already holds is
//	                  verified equal and acknowledged duplicate=true;
//	                  a conflicting row is rejected 4xx. Persists the
//	                  checkpoint before responding and refreshes the
//	                  streamer's lease.
//	POST /complete    Idempotent: a delivery for a shard already done
//	                  is acknowledged duplicate=true; held rows always
//	                  win and deliveries are verified against them.
//	                  Partial deliveries are accepted when the missing
//	                  points already streamed in.
//	GET  /jobs, /jobs/{id}, /jobs/{id}/rows, /metrics
//	                  Read-only, trivially idempotent.
//
// # Fault injection
//
// FaultStore and FaultTransport wrap the store and the client's HTTP
// transport with seeded deterministic fault schedules — failures,
// delays, silent post-write corruption, dropped requests and
// responses, duplicates, synthetic 503s — each firing counted per
// class. The chaos tests (and CI's chaos-smoke job) run full sweeps
// under kills and faults and assert both that the output stayed
// byte-identical and that every fault class actually fired.
package dist
