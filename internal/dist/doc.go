// Package dist is the campaign-as-a-service layer: it executes sweep
// grids across processes and machines while preserving, bit for bit,
// the output contract of a serial in-process campaign.Run.
//
// A Server (hackbench -serve) owns a queue of jobs, each a
// campaign.WireSpec — a registered scenario plus wire-form axes —
// planned into shards of grid-point indexes. Workers (hackbench
// -worker <url>) lease shards over HTTP/JSON, simulate them with
// campaign.RunPoints, and stream the result rows back; the server
// merges rows by grid index through results.Merge and serves the
// completed job in campaign.Results form. A submit client (hackbench
// -submit) posts specs and fetches rows.
//
// # Determinism contract
//
// Every grid point is an independent, seed-deterministic simulation,
// so a job's merged output is byte-identical to campaign.Run executed
// serially in one process — regardless of worker count, shard size,
// lease churn, retries, duplicate deliveries, or how many points were
// served from the memoization store. The contract holds only across
// processes running the same build: results.CodeVersion salts every
// memoization key, and results.Merge rejects conflicting duplicate
// rows, so a version skew between workers surfaces as an explicit
// merge error rather than silently mixed output.
//
// # At-least-once lease contract
//
// Shards are leased, not assigned: a lease grants one worker the right
// to simulate a shard until the lease expires. Workers heartbeat to
// keep long shards alive; a lease that expires (worker crash, network
// partition, missed heartbeats) is re-queued exactly once per expiry
// and handed to the next worker that asks. A shard may therefore be
// simulated more than once — at-least-once execution — which is safe
// precisely because of the determinism contract: duplicate completions
// carry identical rows and the server accepts them idempotently
// (first delivery wins, later deliveries are acknowledged and
// discarded). What is never possible is a shard completing with rows
// from two different simulations.
//
// # Checkpoint/resume and memoization
//
// Every completed row is persisted into a content-addressed Store
// keyed by its point fingerprint (results.PointFingerprint over
// campaign.WireSpec.FingerprintFields plus the code-version salt)
// before the shard is acknowledged. The store is therefore both the
// checkpoint and the cache: a daemon restarted over the same state
// directory re-plans its persisted job specs and finds the completed
// points in the store, so only the remaining shards are re-queued; a
// re-submitted or overlapping sweep is served from the store for every
// grid point whose fingerprint matches, simulating only what changed.
package dist
