package dist

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tcphack/internal/campaign"
	"tcphack/internal/results"
	"tcphack/internal/sim"
)

// testWire is the standing test grid: the sora-stock registry scenario
// swept over 2 modes × 2 seeds = 4 points at short windows.
func testWire() campaign.WireSpec {
	return campaign.WireSpec{
		Name:     "dist-test",
		Scenario: "sora-stock",
		Axes: campaign.WireAxes{
			Modes: []string{"off", "more-data"},
			Seeds: []int64{1, 2},
		},
		Warmup:  100 * sim.Millisecond,
		Measure: 100 * sim.Millisecond,
	}
}

// serialRows runs the wire spec the ordinary way — the golden output
// every distributed path must reproduce exactly.
func serialRows(t *testing.T, w campaign.WireSpec) campaign.Results {
	t.Helper()
	spec, err := w.Spec()
	if err != nil {
		t.Fatal(err)
	}
	return campaign.Run(spec)
}

// rowsJSON renders rows through the campaign emitter for byte-level
// comparison.
func rowsJSON(t *testing.T, rs campaign.Results) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fakeClock is an injectable Now for deterministic lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2014, 8, 20, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestPlanFingerprintsAndShards(t *testing.T) {
	w := testWire()
	plan, err := NewPlan(w, nil, results.CodeVersion, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 4 || plan.Cached != 0 {
		t.Fatalf("%d points, %d cached; want 4, 0", len(plan.Points), plan.Cached)
	}
	if len(plan.Shards) != 2 || len(plan.Shards[0]) != 3 || len(plan.Shards[1]) != 1 {
		t.Fatalf("shards = %v, want [3 1] chunking", plan.Shards)
	}
	seen := map[string]bool{}
	for _, pp := range plan.Points {
		if len(pp.Fingerprint) != 16 {
			t.Errorf("point %d fingerprint %q", pp.Index, pp.Fingerprint)
		}
		if seen[pp.Fingerprint] {
			t.Errorf("point %d shares a fingerprint with an earlier point", pp.Index)
		}
		seen[pp.Fingerprint] = true
	}
	if _, err := NewPlan(campaign.WireSpec{Scenario: "nope"}, nil, "s", 0); err == nil {
		t.Error("unknown scenario planned")
	}
}

// TestPlanMemoization: rows persisted under their fingerprints must
// come back as cache hits with the job-local identity rewritten, and a
// fully cached plan schedules nothing.
func TestPlanMemoization(t *testing.T) {
	w := testWire()
	golden := serialRows(t, w)
	store := NewMemStore()
	plan, err := NewPlan(w, store, results.CodeVersion, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range plan.Points {
		if err := store.Put(pp.Fingerprint, golden[pp.Index]); err != nil {
			t.Fatal(err)
		}
	}

	// Same sweep under another label: full hit, identity rewritten.
	renamed := w
	renamed.Name = "other-label"
	plan2, err := NewPlan(renamed, store, results.CodeVersion, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Cached != 4 || len(plan2.Shards) != 0 {
		t.Fatalf("cached=%d shards=%d, want 4, 0", plan2.Cached, len(plan2.Shards))
	}
	for _, pp := range plan2.Points {
		if pp.Result.Campaign != "other-label" {
			t.Errorf("point %d kept label %q", pp.Index, pp.Result.Campaign)
		}
		if pp.Result.AggregateMbps != golden[pp.Index].AggregateMbps {
			t.Errorf("point %d metrics changed through the store", pp.Index)
		}
	}

	// A different code version must miss everything.
	plan3, err := NewPlan(w, store, "hack-sim-v999", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.Cached != 0 {
		t.Errorf("stale-salt plan served %d cached points", plan3.Cached)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if r, err := store.Get("deadbeefdeadbeef"); err != nil || r != nil {
		t.Fatalf("empty store Get = %v, %v", r, err)
	}
	row := serialRows(t, testWire())[0]
	if err := store.Put("deadbeefdeadbeef", row); err != nil {
		t.Fatal(err)
	}
	back, err := store.Get("deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || back.AggregateMbps != row.AggregateMbps || back.Campaign != row.Campaign {
		t.Errorf("round trip lost data: %+v", back)
	}
	if _, err := store.Get("../escape"); err == nil {
		t.Error("path traversal accepted")
	}
}

// completeShard simulates one granted shard the way a worker would and
// delivers it.
func completeShard(t *testing.T, s *Server, worker string, grant LeaseGrant) {
	t.Helper()
	spec, err := grant.Spec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := campaign.RunPoints(context.Background(), spec, grant.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.complete(worker, grant.Job, grant.Shard, rows); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseExpiryRequeuedExactlyOnce: a worker that dies mid-shard
// loses its lease after the TTL; the shard returns to the queue exactly
// once and the next lease hands it to another worker.
func TestLeaseExpiryRequeuedExactlyOnce(t *testing.T) {
	clock := newFakeClock()
	s, err := NewServer(ServerConfig{
		LeaseTTL:  time.Minute,
		ShardSize: 4,
		Now:       clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testWire(), 4, ""); err != nil {
		t.Fatal(err)
	}
	grant, ok := s.lease("doomed")
	if !ok {
		t.Fatal("no lease granted")
	}
	if _, ok := s.lease("other"); ok {
		t.Fatal("single shard leased twice")
	}

	// Heartbeats keep the lease alive across TTL boundaries.
	clock.advance(45 * time.Second)
	if renewed, err := s.heartbeat("doomed", grant.Job, grant.Shard); err != nil || !renewed {
		t.Fatalf("mid-lease heartbeat: renewed=%v err=%v", renewed, err)
	}
	clock.advance(45 * time.Second)
	if st, _ := s.Status(grant.Job); st.Requeues != 0 || st.ShardsInflight != 1 {
		t.Fatalf("heartbeated lease expired: %+v", st)
	}

	// The worker dies: no more heartbeats, the TTL runs out.
	clock.advance(2 * time.Minute)
	st, _ := s.Status(grant.Job)
	if st.Requeues != 1 || st.ShardsPending != 1 || st.ShardsInflight != 0 {
		t.Fatalf("expiry not a single requeue: %+v", st)
	}
	// Repeated observation must not count additional requeues.
	if st, _ = s.Status(grant.Job); st.Requeues != 1 {
		t.Fatalf("requeue double-counted: %+v", st)
	}

	// The dead worker's lease is gone.
	if renewed, _ := s.heartbeat("doomed", grant.Job, grant.Shard); renewed {
		t.Error("expired lease renewed")
	}
	regrant, ok := s.lease("successor")
	if !ok || regrant.Job != grant.Job || regrant.Shard != grant.Shard {
		t.Fatalf("re-lease = %+v ok=%v, want the same shard", regrant, ok)
	}
	if st, _ = s.Status(grant.Job); st.Requeues != 1 || st.ShardsInflight != 1 {
		t.Fatalf("after re-lease: %+v", st)
	}

	completeShard(t, s, "successor", regrant)
	st, _ = s.Status(grant.Job)
	if st.State != "done" || st.Requeues != 1 {
		t.Fatalf("after completion: %+v", st)
	}
}

// TestCompleteIdempotentDuplicate: a worker that lost its lease and
// finished anyway delivers a duplicate; the first delivery stands and
// the duplicate is acknowledged as such.
func TestCompleteIdempotentDuplicate(t *testing.T) {
	clock := newFakeClock()
	s, err := NewServer(ServerConfig{LeaseTTL: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testWire(), 4, ""); err != nil {
		t.Fatal(err)
	}
	grant, _ := s.lease("slow")
	spec, err := grant.Spec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := campaign.RunPoints(context.Background(), spec, grant.Indexes)
	if err != nil {
		t.Fatal(err)
	}

	// The lease expires and the shard is redone by another worker.
	clock.advance(2 * time.Minute)
	regrant, ok := s.lease("fast")
	if !ok {
		t.Fatal("expired shard not re-leased")
	}
	if dup, err := s.complete("fast", regrant.Job, regrant.Shard, rows); err != nil || dup {
		t.Fatalf("first delivery: dup=%v err=%v", dup, err)
	}
	// The slow worker's late delivery is a duplicate, not an error.
	if dup, err := s.complete("slow", grant.Job, grant.Shard, rows); err != nil || !dup {
		t.Fatalf("late delivery: dup=%v err=%v", dup, err)
	}

	got, err := s.Rows(grant.Job, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serialRows(t, testWire())) {
		t.Error("rows after duplicate delivery differ from serial")
	}
}

// TestCompleteValidation: deliveries with wrong row counts or foreign
// indexes are rejected.
func TestCompleteValidation(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testWire(), 2, ""); err != nil {
		t.Fatal(err)
	}
	grant, _ := s.lease("w")
	spec, _ := grant.Spec.Spec()
	rows, err := campaign.RunPoints(context.Background(), spec, grant.Indexes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.complete("w", grant.Job, grant.Shard, rows[:1]); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("short delivery accepted: %v", err)
	}
	foreign := append(campaign.Results{}, rows...)
	foreign[0].Index = 3 // belongs to the other shard
	if _, err := s.complete("w", grant.Job, grant.Shard, foreign); err == nil ||
		!strings.Contains(err.Error(), "not in shard") {
		t.Errorf("foreign index accepted: %v", err)
	}
	if _, err := s.complete("w", "j99", 0, rows); err == nil {
		t.Error("unknown job accepted")
	}
}

// TestRowsStates: partial rows while running, merged rows when done,
// and the still-running error.
func TestRowsStates(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(testWire(), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rows(st.ID, false); err == nil {
		t.Error("rows of a running job served without partial")
	}
	if partial, err := s.Rows(st.ID, true); err != nil || len(partial) != 0 {
		t.Errorf("empty partial = %d rows, %v", len(partial), err)
	}

	grant, _ := s.lease("w")
	completeShard(t, s, "w", grant)
	partial, err := s.Rows(st.ID, true)
	if err != nil || len(partial) != 2 {
		t.Fatalf("partial after one shard = %d rows, %v", len(partial), err)
	}

	grant2, _ := s.lease("w")
	completeShard(t, s, "w", grant2)
	got, err := s.Rows(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsJSON(t, got) != rowsJSON(t, serialRows(t, testWire())) {
		t.Error("merged rows not byte-identical to serial")
	}
}

// TestSubmitFullyCachedBornDone: re-submitting a completed sweep plans
// every point out of the store — zero shards, state done at admission.
func TestSubmitFullyCachedBornDone(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(testWire(), 4, "")
	if err != nil {
		t.Fatal(err)
	}
	grant, _ := s.lease("w")
	completeShard(t, s, "w", grant)

	again, err := s.Submit(testWire(), 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" || again.CachedPoints != 4 || again.ShardsTotal != 0 {
		t.Fatalf("resubmission not born done: %+v", again)
	}
	a, err := s.Rows(first.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Rows(again.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsJSON(t, a) != rowsJSON(t, b) {
		t.Error("cached job's rows differ from the original's")
	}
}

// TestMetricsSnapshot: worker liveness tracks contact recency against
// the lease TTL.
func TestMetricsSnapshot(t *testing.T) {
	clock := newFakeClock()
	s, err := NewServer(ServerConfig{LeaseTTL: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testWire(), 4, ""); err != nil {
		t.Fatal(err)
	}
	s.lease("w1")
	m := s.MetricsSnapshot()
	if len(m.Jobs) != 1 || !m.Workers["w1"].Live {
		t.Fatalf("fresh worker not live: %+v", m)
	}
	clock.advance(3 * time.Minute)
	if m = s.MetricsSnapshot(); m.Workers["w1"].Live {
		t.Errorf("silent worker still live: %+v", m.Workers)
	}
	if m.Jobs[0].Requeues != 1 {
		t.Errorf("metrics did not observe the expiry: %+v", m.Jobs[0])
	}
}
