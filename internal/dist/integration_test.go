package dist

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tcphack/internal/campaign"
)

// startDaemon serves a Server over loopback HTTP and returns a client
// for it.
func startDaemon(t *testing.T, s *Server) (*httptest.Server, Client) {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, Client{BaseURL: ts.URL}
}

// runWorkers drives n workers against the daemon until the job reports
// done, then drains them.
func runWorkers(t *testing.T, c Client, jobID string, n int) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error)
	for i := 0; i < n; i++ {
		w := &Worker{
			Client: c,
			Name:   string(rune('a' + i)),
			Poll:   5 * time.Millisecond,
		}
		go func() { done <- w.Run(ctx) }()
	}
	st, err := c.WaitDone(ctx, jobID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for %s: %v", jobID, err)
	}
	cancel()
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("worker exited: %v", err)
		}
	}
	return st
}

// TestLoopbackTwoWorkersMatchSerial is the acceptance path: a sweep
// executed by a daemon and two workers over loopback HTTP must emit
// byte-identical rows to a serial campaign.Run of the same spec.
func TestLoopbackTwoWorkersMatchSerial(t *testing.T) {
	s, err := NewServer(ServerConfig{ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startDaemon(t, s)

	w := testWire()
	st, err := c.Submit(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalPoints != 4 || st.ShardsTotal != 4 || st.CachedPoints != 0 {
		t.Fatalf("submit status %+v", st)
	}
	final := runWorkers(t, c, st.ID, 2)
	if final.State != "done" || final.DoneRows != 4 {
		t.Fatalf("final status %+v", final)
	}

	rows, err := c.Rows(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, rows), rowsJSON(t, serialRows(t, w)); got != want {
		t.Errorf("distributed rows not byte-identical to serial:\n got:  %s\n want: %s", got, want)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 1 || len(m.Workers) != 2 {
		t.Errorf("metrics = %d jobs, %d workers; want 1, 2", len(m.Jobs), len(m.Workers))
	}
	for name, ws := range m.Workers {
		if !ws.Live {
			t.Errorf("worker %s not live in metrics", name)
		}
	}
}

// TestDaemonRestartResumesJob: a daemon killed mid-job and restarted
// over the same state directory must re-plan the persisted spec against
// the store — the rows already delivered come back as cache hits, only
// the remaining shards run, and the final output is byte-identical to
// serial.
func TestDaemonRestartResumesJob(t *testing.T) {
	state := t.TempDir()
	w := testWire()

	s1, err := NewServer(ServerConfig{StateDir: state, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(w, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	// One shard completes, then the daemon "crashes" (s1 is abandoned;
	// every completed row is already persisted in the store).
	grant, ok := s1.lease("w")
	if !ok {
		t.Fatal("no lease")
	}
	completeShard(t, s1, "w", grant)

	s2, err := NewServer(ServerConfig{StateDir: state, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := s2.Status(st.ID)
	if err != nil {
		t.Fatalf("job not resumed: %v", err)
	}
	if resumed.CachedPoints != 1 || resumed.ShardsTotal != 3 || resumed.State != "running" {
		t.Fatalf("resumed status %+v, want 1 cached point and 3 remaining shards", resumed)
	}

	_, c := startDaemon(t, s2)
	runWorkers(t, c, st.ID, 2)
	rows, err := c.Rows(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, rows), rowsJSON(t, serialRows(t, w)); got != want {
		t.Errorf("resumed rows not byte-identical to serial:\n got:  %s\n want: %s", got, want)
	}

	// A third restart after completion: the job is born done from the
	// store alone.
	s3, err := NewServer(ServerConfig{StateDir: state, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s3.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.CachedPoints != 4 {
		t.Fatalf("post-completion restart status %+v", final)
	}
}

// TestZombieWorkerLeaseRecovered: a worker that leases a shard and
// vanishes must not wedge the job — after the TTL the shard is
// re-queued (exactly once) and a live worker finishes it.
func TestZombieWorkerLeaseRecovered(t *testing.T) {
	s, err := NewServer(ServerConfig{ShardSize: 4, LeaseTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startDaemon(t, s)

	w := testWire()
	st, err := c.Submit(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The zombie takes the only shard and is never heard from again.
	if _, ok, err := c.Lease("zombie"); err != nil || !ok {
		t.Fatalf("zombie lease: ok=%v err=%v", ok, err)
	}

	final := runWorkers(t, c, st.ID, 1)
	if final.Requeues != 1 {
		t.Errorf("requeues = %d, want exactly 1", final.Requeues)
	}
	rows, err := c.Rows(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, rows), rowsJSON(t, serialRows(t, w)); got != want {
		t.Error("recovered rows not byte-identical to serial")
	}
}

// TestRepeatedSweepFullyMemoized: submitting the same sweep to a fresh
// daemon sharing the store simulates nothing — and an overlapping
// superset sweep only simulates the new points.
func TestRepeatedSweepFullyMemoized(t *testing.T) {
	store := NewMemStore()
	s, err := NewServer(ServerConfig{Store: store, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startDaemon(t, s)

	w := testWire()
	st, err := c.Submit(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, st.ID, 2)
	if store.Len() != 4 {
		t.Fatalf("store holds %d rows, want 4", store.Len())
	}

	again, err := c.Submit(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" || again.CachedPoints != 4 || again.ShardsTotal != 0 {
		t.Fatalf("repeat not fully memoized: %+v", again)
	}
	a, err := c.Rows(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Rows(again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rowsJSON(t, a) != rowsJSON(t, b) {
		t.Error("memoized rows differ from the simulated originals")
	}

	// Superset sweep: one extra seed → only the 2 new points simulate.
	wider := w
	wider.Axes.Seeds = []int64{1, 2, 3}
	st3, err := c.Submit(wider, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st3.TotalPoints != 6 || st3.CachedPoints != 4 || st3.ShardsTotal != 2 {
		t.Fatalf("superset sweep plan %+v, want 4 of 6 cached", st3)
	}
	runWorkers(t, c, st3.ID, 1)
	if store.Len() != 6 {
		t.Errorf("store holds %d rows after superset, want 6", store.Len())
	}
}

// TestHTTPErrors: API-level failure modes reach clients as typed
// errors, not hangs or wrong-shaped bodies.
func TestHTTPErrors(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startDaemon(t, s)

	if _, err := c.Status("j42"); err == nil {
		t.Error("unknown job status did not error")
	}
	if _, err := c.Submit(campaign.WireSpec{Scenario: "nope"}, 0); err == nil {
		t.Error("bad spec accepted")
	}
	st, err := c.Submit(testWire(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rows(st.ID); err == nil {
		t.Error("rows of a running job served")
	}
	if grant, ok, err := c.Lease("w"); err != nil || !ok || len(grant.Indexes) != 4 {
		t.Errorf("lease over HTTP: ok=%v err=%v grant=%+v", ok, err, grant)
	}
	if _, ok, err := c.Lease("w2"); err != nil || ok {
		t.Errorf("empty queue lease: ok=%v err=%v (want 204 → ok=false)", ok, err)
	}
}
