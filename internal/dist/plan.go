package dist

import (
	"fmt"

	"tcphack/internal/campaign"
	"tcphack/internal/results"
)

// DefaultShardSize is the grid points per shard when a submit does not
// choose: small enough that a lost lease wastes little work, large
// enough that lease/complete round trips amortize.
const DefaultShardSize = 4

// PlannedPoint is one grid point annotated with its memoization fate.
type PlannedPoint struct {
	// Index is the point's position in campaign Points() order.
	Index int
	// Point is the materialized grid point.
	Point campaign.Point
	// Fingerprint is the point's content-addressed identity.
	Fingerprint string
	// Cached reports a memoization-store hit; Result then holds the
	// rehydrated row and no simulation is scheduled.
	Cached bool
	// Result is the cached row (nil unless Cached).
	Result *campaign.Result
}

// Plan is a campaign spec resolved against a memoization store: every
// grid point fingerprinted and probed, the uncached remainder chunked
// into shards. The same planner serves the daemon's job admission,
// daemon restart/resume (re-planning persisted specs against the now
// fuller store), and hackbench -dry-run's what-would-run report.
type Plan struct {
	// Wire is the spec the plan was built from.
	Wire campaign.WireSpec
	// Spec is the materialized campaign.
	Spec campaign.Spec
	// Points annotates every grid point in Points() order.
	Points []PlannedPoint
	// Shards lists the uncached point indexes, chunked in grid order;
	// each shard is one lease unit.
	Shards [][]int
	// Cached counts the store hits among Points.
	Cached int
	// StoreErrors counts points whose store probe failed outright (the
	// backend was unavailable, not merely a miss). Those points plan as
	// uncached — a sweep must survive a dead store — and a nonzero count
	// marks the resulting job degraded.
	StoreErrors int
}

// NewPlan fingerprints the spec's grid against the store and chunks
// the uncached points into shards of shardSize (DefaultShardSize when
// ≤ 0). Cached rows are rehydrated for the plan's job: the stored
// metrics are reused while the identity fields the fingerprint
// deliberately excludes (campaign label, grid index) are rewritten for
// this spec, so a hit from an overlapping sweep under another name
// merges indistinguishably from a fresh simulation. A nil store plans
// every point as uncached, and so does a failing one: a store error is
// counted in StoreErrors and the point scheduled for simulation,
// because a broken cache must cost recomputation, never the sweep.
func NewPlan(w campaign.WireSpec, store Store, salt string, shardSize int) (*Plan, error) {
	spec, err := w.Spec()
	if err != nil {
		return nil, err
	}
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	p := &Plan{Wire: w, Spec: spec}
	pts := spec.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("dist: spec %q plans an empty grid", w.DisplayName())
	}
	var shard []int
	for _, pt := range pts {
		pp := PlannedPoint{
			Index:       pt.Index,
			Point:       pt,
			Fingerprint: results.PointFingerprint(salt, w.FingerprintFields(pt)),
		}
		if store != nil {
			cached, err := store.Get(pp.Fingerprint)
			if err != nil {
				p.StoreErrors++
				cached = nil
			}
			if cached != nil {
				r := *cached
				rehydrate(&r, spec.Name, pt)
				pp.Cached, pp.Result = true, &r
				p.Cached++
			}
		}
		if !pp.Cached {
			shard = append(shard, pt.Index)
			if len(shard) == shardSize {
				p.Shards = append(p.Shards, shard)
				shard = nil
			}
		}
		p.Points = append(p.Points, pp)
	}
	if len(shard) > 0 {
		p.Shards = append(p.Shards, shard)
	}
	return p, nil
}

// rehydrate rewrites a cached row's identity fields for the job it is
// joining: the campaign label and the full Point (grid index, swept
// flags) are job-local, while every measurement is content-addressed
// and reused as stored.
func rehydrate(r *campaign.Result, name string, pt campaign.Point) {
	r.Campaign = name
	r.Point = pt
	r.ModeName = pt.Mode.String()
	r.RateKbps = pt.Rate.Kbps
}
