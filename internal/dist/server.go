package dist

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcphack/internal/campaign"
	"tcphack/internal/results"
)

// ServerConfig parameterizes a daemon.
type ServerConfig struct {
	// StateDir is the persistence root: StateDir/cache holds the
	// memoization store, StateDir/jobs the submitted specs, and a
	// daemon restarted over the same directory resumes its jobs.
	// Empty runs memory-only (no resume, in-process cache only).
	StateDir string
	// Store overrides the memoization backend (default: a DirStore
	// under StateDir/cache, or a MemStore when StateDir is empty).
	Store Store
	// Salt is the code-version salt folded into every fingerprint
	// (default results.CodeVersion).
	Salt string
	// LeaseTTL is how long a shard lease lives without a heartbeat
	// (default 30 s).
	LeaseTTL time.Duration
	// ShardSize is the default grid points per shard for submits that
	// do not choose (default DefaultShardSize).
	ShardSize int
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
	// Logf receives degradation and recovery notices (default
	// log.Printf).
	Logf func(format string, args ...any)
}

// Lease states a shard moves through; a lease expiry moves a shard
// back from shardLeased to shardPending (re-queue).
const (
	shardPending = iota
	shardLeased
	shardDone
)

// shard is one lease unit: a chunk of uncached grid-point indexes.
// Points stream back individually (job.have tracks them), so a
// re-leased shard grants only the indexes still missing.
type shard struct {
	id      int
	indexes []int
	state   int
	worker  string
	expiry  time.Time
	// requeues counts lease expiries — the at-least-once audit trail.
	requeues int
}

// job is one submitted campaign and its execution state.
type job struct {
	id        string
	wire      campaign.WireSpec
	shardSize int
	spec      campaign.Spec
	points    []campaign.Point
	fps       []string
	rows      []campaign.Result
	have      []bool
	shards    []*shard
	created   time.Time

	cachedPoints int
	simRows      int
	lastRow      time.Time

	// degraded marks a job that hit a store error and fell back to
	// compute-everything mode: rows live in memory, merged output is
	// unaffected, but checkpoint/resume and memoization coverage are
	// reduced for the failed entries.
	degraded bool
	// Streaming and idempotency accounting (see JobStatus).
	pointsStreamed     int
	pointsResimulated  int
	duplicateCompletes int
}

// done reports whether every shard completed.
func (j *job) done() bool {
	for _, sh := range j.shards {
		if sh.state != shardDone {
			return false
		}
	}
	return true
}

// JobStatus is one job's externally visible state — what GET /jobs,
// GET /jobs/{id}, and the /metrics endpoint report.
type JobStatus struct {
	// ID is the job identifier ("j1", "j2", ...).
	ID string `json:"id"`
	// Campaign is the result-row label; Scenario the registry name.
	Campaign string `json:"campaign"`
	Scenario string `json:"scenario"`
	// State is "running" or "done".
	State string `json:"state"`
	// TotalPoints is the grid size; CachedPoints how many were served
	// from the memoization store at admission; DoneRows how many rows
	// exist so far (cached + simulated).
	TotalPoints  int `json:"total_points"`
	CachedPoints int `json:"cached_points"`
	DoneRows     int `json:"done_rows"`
	// Shard accounting: done + inflight (leased) + pending = total.
	ShardsTotal    int `json:"shards_total"`
	ShardsDone     int `json:"shards_done"`
	ShardsInflight int `json:"shards_inflight"`
	ShardsPending  int `json:"shards_pending"`
	// Requeues counts lease expiries across the job's shards.
	Requeues int `json:"requeues"`
	// PointsStreamed counts rows delivered through the point-level
	// streaming checkpoint; PointsResimulated counts streamed rows the
	// server already had (work repeated after a crash or lease churn —
	// the smaller, the better the checkpointing worked).
	PointsStreamed    int `json:"points_streamed"`
	PointsResimulated int `json:"points_resimulated"`
	// DuplicateCompletes counts whole-shard deliveries that lost the
	// at-least-once race and were acknowledged idempotently.
	DuplicateCompletes int `json:"duplicate_completes"`
	// Degraded reports the job fell back to compute-everything mode
	// after a store failure: output is still exact, but some rows were
	// not checkpointed/memoized.
	Degraded bool `json:"degraded"`
	// RowsPerSec is the simulated-row completion rate (cached rows
	// excluded) since submission; 0 until the first row lands.
	RowsPerSec float64 `json:"rows_per_sec"`
	// Created is the submission time.
	Created time.Time `json:"created"`
}

// WorkerStatus is one worker's liveness as seen by the server.
type WorkerStatus struct {
	// LastSeen is the worker's most recent lease/heartbeat/complete.
	LastSeen time.Time `json:"last_seen"`
	// Live reports recent contact (within two lease TTLs).
	Live bool `json:"live"`
}

// StoreHealth aggregates the memoization store's failure counters
// across the daemon's lifetime.
type StoreHealth struct {
	// GetErrors and PutErrors count store operations that failed and
	// were absorbed by degradation (planned as a miss, row kept in
	// memory only).
	GetErrors int64 `json:"get_errors"`
	PutErrors int64 `json:"put_errors"`
	// CorruptQuarantined counts entries the store renamed aside after
	// a failed integrity check (DirStore's CRC-32 envelope).
	CorruptQuarantined int64 `json:"corrupt_quarantined"`
}

// Metrics is the /metrics endpoint's payload: per-job progress, worker
// liveness, and store health.
type Metrics struct {
	// Jobs lists every job's status in submission order.
	Jobs []JobStatus `json:"jobs"`
	// Workers maps worker names to their liveness.
	Workers map[string]WorkerStatus `json:"workers"`
	// Store is the memoization store's health.
	Store StoreHealth `json:"store"`
}

// Server is the campaign-as-a-service daemon: job admission, the
// shard lease queue, point-level streaming checkpoints, row merging,
// and the memoization store, exposed over an HTTP/JSON API (Handler).
// See the package documentation for the determinism, at-least-once,
// and degradation contracts.
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job IDs in submission order
	seq     int
	workers map[string]time.Time
	// tokens maps submit idempotency tokens to job IDs so a retried
	// or transport-duplicated submit admits exactly one job.
	tokens map[string]string

	storeGetErrors int64
	storePutErrors int64
}

// jobRecord is the persisted submission (StateDir/jobs/<id>.json).
type jobRecord struct {
	// ID, Spec, and ShardSize replay the submission on daemon restart;
	// Created preserves the original submission time; Token rebuilds
	// the submit-idempotency map.
	ID        string            `json:"id"`
	Spec      campaign.WireSpec `json:"spec"`
	ShardSize int               `json:"shard_size"`
	Created   time.Time         `json:"created"`
	Token     string            `json:"token,omitempty"`
}

// NewServer assembles a daemon and, when the config names a state
// directory, resumes every persisted job: each spec is re-planned
// against the store, so points whose rows were already persisted come
// back as cache hits and only the remaining shards are queued.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Salt == "" {
		cfg.Salt = results.CodeVersion
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Store == nil {
		if cfg.StateDir == "" {
			cfg.Store = NewMemStore()
		} else {
			store, err := NewDirStore(filepath.Join(cfg.StateDir, "cache"))
			if err != nil {
				return nil, err
			}
			store.Version = cfg.Salt
			cfg.Store = store
		}
	}
	s := &Server{
		cfg:     cfg,
		jobs:    map[string]*job{},
		workers: map[string]time.Time{},
		tokens:  map[string]string{},
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(filepath.Join(cfg.StateDir, "jobs"), 0o755); err != nil {
			return nil, err
		}
		if err := s.resume(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// resume reloads persisted job records and re-plans them against the
// (now possibly fuller) store.
func (s *Server) resume() error {
	dir := filepath.Join(s.cfg.StateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var recs []jobRecord
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("dist: corrupt job record %s: %v", e.Name(), err)
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return jobSeq(recs[i].ID) < jobSeq(recs[j].ID) })
	for _, rec := range recs {
		j, err := s.buildJob(rec)
		if err != nil {
			return fmt.Errorf("dist: resuming job %s: %v", rec.ID, err)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if rec.Token != "" {
			s.tokens[rec.Token] = j.id
		}
		if n := jobSeq(j.id); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// jobSeq extracts the numeric part of a job ID ("j7" → 7; 0 when
// malformed).
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// buildJob plans a submission into an executable job. Store failures
// during planning do not fail admission: the affected points plan as
// misses and the job is marked degraded.
func (s *Server) buildJob(rec jobRecord) (*job, error) {
	plan, err := NewPlan(rec.Spec, s.cfg.Store, s.cfg.Salt, rec.ShardSize)
	if err != nil {
		return nil, err
	}
	j := &job{
		id:        rec.ID,
		wire:      rec.Spec,
		shardSize: rec.ShardSize,
		spec:      plan.Spec,
		created:   rec.Created,
		rows:      make([]campaign.Result, len(plan.Points)),
		have:      make([]bool, len(plan.Points)),
	}
	if plan.StoreErrors > 0 {
		s.storeGetErrors += int64(plan.StoreErrors)
		j.degraded = true
		s.cfg.Logf("dist: job %s degraded at admission: %d store get failure(s), planning them as misses",
			j.id, plan.StoreErrors)
	}
	for _, pp := range plan.Points {
		j.points = append(j.points, pp.Point)
		j.fps = append(j.fps, pp.Fingerprint)
		if pp.Cached {
			j.rows[pp.Index] = *pp.Result
			j.have[pp.Index] = true
			j.cachedPoints++
		}
	}
	for i, idxs := range plan.Shards {
		j.shards = append(j.shards, &shard{id: i, indexes: idxs})
	}
	return j, nil
}

// Submit admits a spec as a new job (shardSize ≤ 0 uses the server
// default) and returns its status. A spec whose every point is already
// in the store is born done — the repeated-sweep fast path. A
// non-empty token makes the call idempotent: retries and transport
// duplicates carrying a token the server has seen return the original
// job instead of admitting another.
func (s *Server) Submit(spec campaign.WireSpec, shardSize int, token string) (JobStatus, error) {
	if shardSize <= 0 {
		shardSize = s.cfg.ShardSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if token != "" {
		if id, ok := s.tokens[token]; ok {
			return s.statusLocked(s.jobs[id]), nil
		}
	}
	rec := jobRecord{
		ID:        fmt.Sprintf("j%d", s.seq+1),
		Spec:      spec,
		ShardSize: shardSize,
		Created:   s.cfg.Now().UTC(),
		Token:     token,
	}
	j, err := s.buildJob(rec)
	if err != nil {
		return JobStatus{}, err
	}
	if s.cfg.StateDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return JobStatus{}, err
		}
		path := filepath.Join(s.cfg.StateDir, "jobs", rec.ID+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return JobStatus{}, err
		}
	}
	s.seq++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if token != "" {
		s.tokens[token] = j.id
	}
	return s.statusLocked(j), nil
}

// statusLocked snapshots one job's status (caller holds s.mu).
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:                 j.id,
		Campaign:           j.spec.Name,
		Scenario:           j.wire.Scenario,
		State:              "running",
		TotalPoints:        len(j.points),
		CachedPoints:       j.cachedPoints,
		ShardsTotal:        len(j.shards),
		Requeues:           0,
		PointsStreamed:     j.pointsStreamed,
		PointsResimulated:  j.pointsResimulated,
		DuplicateCompletes: j.duplicateCompletes,
		Degraded:           j.degraded,
		Created:            j.created,
	}
	for _, have := range j.have {
		if have {
			st.DoneRows++
		}
	}
	for _, sh := range j.shards {
		st.Requeues += sh.requeues
		switch sh.state {
		case shardPending:
			st.ShardsPending++
		case shardLeased:
			st.ShardsInflight++
		case shardDone:
			st.ShardsDone++
		}
	}
	if j.done() {
		st.State = "done"
	}
	if j.simRows > 0 && j.lastRow.After(j.created) {
		st.RowsPerSec = float64(j.simRows) / j.lastRow.Sub(j.created).Seconds()
	}
	return st
}

// expireLocked re-queues every lease the clock has outrun (caller
// holds s.mu). Each expiry is one requeue: the shard returns to the
// pending queue and the next lease hands it out again — granting only
// the points the dead worker had not yet streamed.
func (s *Server) expireLocked(now time.Time) {
	for _, id := range s.order {
		for _, sh := range s.jobs[id].shards {
			if sh.state == shardLeased && now.After(sh.expiry) {
				sh.state = shardPending
				sh.worker = ""
				sh.requeues++
			}
		}
	}
}

// touchLocked records worker contact for the liveness metrics.
func (s *Server) touchLocked(worker string, now time.Time) {
	if worker != "" {
		s.workers[worker] = now
	}
}

// putRowLocked lands one rehydrated row: persisted to the store first
// (checkpoint before acknowledgment), then merged into the job. A
// store failure degrades the job to compute-everything mode — the row
// stays in memory, the sweep proceeds — instead of failing the
// delivery (caller holds s.mu).
func (s *Server) putRowLocked(j *job, idx int, r campaign.Result) {
	if err := s.cfg.Store.Put(j.fps[idx], r); err != nil {
		s.storePutErrors++
		if !j.degraded {
			j.degraded = true
			s.cfg.Logf("dist: job %s degraded: store put failed (%v); continuing without checkpoints for failed entries", j.id, err)
		}
	}
	j.rows[idx] = r
	j.have[idx] = true
}

// remainingLocked lists a shard's indexes that have no row yet —
// what a (re-)lease grants (caller holds s.mu).
func remainingLocked(j *job, sh *shard) []int {
	var out []int
	for _, i := range sh.indexes {
		if !j.have[i] {
			out = append(out, i)
		}
	}
	return out
}

// LeaseGrant is the server's answer to a lease request: one shard of
// one job, the spec to materialize it from, and the lease terms.
type LeaseGrant struct {
	// Job and Shard identify the lease; echo them in heartbeats,
	// streamed points, and the completion.
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	// Spec is the job's wire spec — workers are stateless.
	Spec campaign.WireSpec `json:"spec"`
	// Indexes are the grid points to simulate, in campaign Points()
	// order. A re-leased shard grants only the points its previous
	// holder had not streamed back before dying.
	Indexes []int `json:"indexes"`
	// TTLMillis is the lease lifetime; heartbeat well within it.
	TTLMillis int64 `json:"ttl_ms"`
}

// lease hands the oldest pending shard to a worker (ok=false when no
// work is pending). A pending shard whose every point already has a
// row (all streamed before its previous lease expired) is closed on
// the spot instead of granted.
func (s *Server) lease(worker string) (LeaseGrant, bool) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	for _, id := range s.order {
		j := s.jobs[id]
		for _, sh := range j.shards {
			if sh.state != shardPending {
				continue
			}
			rem := remainingLocked(j, sh)
			if len(rem) == 0 {
				sh.state = shardDone
				continue
			}
			sh.state = shardLeased
			sh.worker = worker
			sh.expiry = now.Add(s.cfg.LeaseTTL)
			return LeaseGrant{
				Job:       j.id,
				Shard:     sh.id,
				Spec:      j.wire,
				Indexes:   rem,
				TTLMillis: s.cfg.LeaseTTL.Milliseconds(),
			}, true
		}
	}
	return LeaseGrant{}, false
}

// heartbeat extends a lease the worker still holds; renewed=false
// tells the worker its lease was lost (expired and possibly
// re-leased), so its eventual completion may be a duplicate.
func (s *Server) heartbeat(worker, jobID string, shardID int) (renewed bool, err error) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	j, sh, err := s.shardLocked(jobID, shardID)
	if err != nil {
		return false, err
	}
	_ = j
	if sh.state != shardLeased || sh.worker != worker {
		return false, nil
	}
	sh.expiry = now.Add(s.cfg.LeaseTTL)
	return true, nil
}

// shardLocked resolves a job/shard pair (caller holds s.mu).
func (s *Server) shardLocked(jobID string, shardID int) (*job, *shard, error) {
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, nil, fmt.Errorf("dist: unknown job %q", jobID)
	}
	if shardID < 0 || shardID >= len(j.shards) {
		return nil, nil, fmt.Errorf("dist: job %s has no shard %d", jobID, shardID)
	}
	return j, j.shards[shardID], nil
}

// streamPoint lands one worker-reported row the moment its simulation
// finishes — the point-level checkpoint. The row is persisted to the
// store and merged into the job immediately, so a worker crash after
// this call costs at most the points still unstreamed; the streaming
// worker's lease is refreshed as a side effect (a streaming worker is
// evidently alive). Duplicates — the point re-simulated after lease
// churn — are verified against the held row and acknowledged.
func (s *Server) streamPoint(worker, jobID string, shardID int, row campaign.Result) (duplicate bool, err error) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	j, sh, err := s.shardLocked(jobID, shardID)
	if err != nil {
		return false, err
	}
	inShard := false
	for _, i := range sh.indexes {
		if i == row.Index {
			inShard = true
			break
		}
	}
	if !inShard {
		return false, fmt.Errorf("dist: job %s shard %d: streamed point %d not in shard",
			jobID, shardID, row.Index)
	}
	rehydrate(&row, j.spec.Name, j.points[row.Index])
	if j.have[row.Index] {
		if !reflect.DeepEqual(j.rows[row.Index], row) {
			return false, fmt.Errorf("dist: job %s: streamed point %d conflicts with held row (non-deterministic producer or code-version mismatch)",
				jobID, row.Index)
		}
		j.pointsResimulated++
		return true, nil
	}
	s.putRowLocked(j, row.Index, row)
	j.pointsStreamed++
	j.simRows++
	j.lastRow = now
	if sh.state == shardLeased && sh.worker == worker {
		sh.expiry = now.Add(s.cfg.LeaseTTL)
	}
	return false, nil
}

// complete accepts a shard's rows. Deliveries covering only part of
// the shard are fine as long as the rest already streamed in; the
// shard closes when every one of its points has a row. Duplicate
// deliveries (a worker that lost its lease and finished anyway) are
// acknowledged idempotently: held rows stand — identical by the
// determinism contract, and verified to be — and duplicate=true tells
// the worker. Rows are persisted to the memoization store before the
// shard is acknowledged, so a daemon crash after an ack can always
// resume from the store (unless degraded).
func (s *Server) complete(worker, jobID string, shardID int, rows campaign.Results) (duplicate bool, err error) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	j, sh, err := s.shardLocked(jobID, shardID)
	if err != nil {
		return false, err
	}
	if sh.state == shardDone {
		j.duplicateCompletes++
		return true, nil
	}
	inShard := map[int]bool{}
	for _, i := range sh.indexes {
		inShard[i] = true
	}
	// Canonicalize before storing: the wire trip drops the Point's
	// unexported sweep flags, and the label/index fields are job-local
	// (rehydrate's contract), so rebuild them from the job's own grid.
	seen := map[int]bool{}
	added := 0
	for i := range rows {
		r := &rows[i]
		if !inShard[r.Index] {
			return false, fmt.Errorf("dist: job %s shard %d: row index %d not in shard",
				jobID, shardID, r.Index)
		}
		if seen[r.Index] {
			return false, fmt.Errorf("dist: job %s shard %d: row index %d delivered twice",
				jobID, shardID, r.Index)
		}
		seen[r.Index] = true
		rehydrate(r, j.spec.Name, j.points[r.Index])
		if j.have[r.Index] {
			if !reflect.DeepEqual(j.rows[r.Index], *r) {
				return false, fmt.Errorf("dist: job %s: delivered row %d conflicts with held row (non-deterministic producer or code-version mismatch)",
					jobID, r.Index)
			}
			continue
		}
		s.putRowLocked(j, r.Index, *r)
		added++
	}
	if missing := remainingLocked(j, sh); len(missing) > 0 {
		return false, fmt.Errorf("dist: job %s shard %d: delivery leaves %d point(s) missing (first %d)",
			jobID, shardID, len(missing), missing[0])
	}
	j.simRows += added
	if added > 0 {
		j.lastRow = now
	}
	sh.state = shardDone
	sh.worker = worker
	return false, nil
}

// Rows returns a completed job's merged rows — byte-identical, through
// the campaign emitters, to a serial campaign.Run of the same spec.
// The merge re-validates completeness from the individual row parts
// (streamed points and shard deliveries land rows one by one), so a
// bookkeeping bug surfaces as an explicit merge error rather than a
// zero-filled row. For a running job it errors unless partial is set,
// in which case the completed rows are returned as-is (missing points
// absent, not zero-filled).
func (s *Server) Rows(jobID string, partial bool) (campaign.Results, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("dist: unknown job %q", jobID)
	}
	var parts campaign.Results
	for i, have := range j.have {
		if have {
			parts = append(parts, j.rows[i])
		}
	}
	if !j.done() {
		if !partial {
			return nil, fmt.Errorf("dist: job %s still running", jobID)
		}
		return parts, nil
	}
	return results.Merge(len(j.points), parts)
}

// Status returns one job's status.
func (s *Server) Status(jobID string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.cfg.Now())
	j, ok := s.jobs[jobID]
	if !ok {
		return JobStatus{}, fmt.Errorf("dist: unknown job %q", jobID)
	}
	return s.statusLocked(j), nil
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.cfg.Now())
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// MetricsSnapshot returns the /metrics payload.
func (s *Server) MetricsSnapshot() Metrics {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	m := Metrics{
		Workers: map[string]WorkerStatus{},
		Store: StoreHealth{
			GetErrors: s.storeGetErrors,
			PutErrors: s.storePutErrors,
		},
	}
	if cc, ok := s.cfg.Store.(interface{ CorruptCount() int64 }); ok {
		m.Store.CorruptQuarantined = cc.CorruptCount()
	}
	for _, id := range s.order {
		m.Jobs = append(m.Jobs, s.statusLocked(s.jobs[id]))
	}
	for w, seen := range s.workers {
		m.Workers[w] = WorkerStatus{
			LastSeen: seen.UTC(),
			Live:     now.Sub(seen) < 2*s.cfg.LeaseTTL,
		}
	}
	return m
}

// Handler returns the HTTP/JSON API:
//
//	POST /jobs            {"spec": WireSpec, "shard_size": n, "token": t} → JobStatus
//	GET  /jobs            → [JobStatus]
//	GET  /jobs/{id}       → JobStatus
//	GET  /jobs/{id}/rows  → campaign rows (?partial=1 while running)
//	POST /jobs/{id}/shards/{sid}/points
//	                      {"worker": w, "row": Result} → {"duplicate": bool}
//	POST /lease           {"worker": w} → LeaseGrant | 204
//	POST /heartbeat       {"worker": w, "job": id, "shard": n} → {"renewed": bool}
//	POST /complete        {"worker": w, "job": id, "shard": n, "rows": [...]} → {"duplicate": bool}
//	GET  /metrics         → Metrics (JSON; Prometheus text exposition
//	                        when the Accept header prefers text/plain)
//
// The package documentation states each endpoint's retry and
// idempotency contract.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Spec      campaign.WireSpec `json:"spec"`
			ShardSize int               `json:"shard_size"`
			Token     string            `json:"token"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		st, err := s.Submit(req.Spec, req.ShardSize, req.Token)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /jobs/{id}/rows", func(w http.ResponseWriter, r *http.Request) {
		partial := r.URL.Query().Get("partial") == "1"
		rows, err := s.Rows(r.PathValue("id"), partial)
		if err != nil {
			code := http.StatusNotFound
			if strings.Contains(err.Error(), "still running") {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rows.WriteJSON(w)
	})
	mux.HandleFunc("POST /jobs/{id}/shards/{sid}/points", func(w http.ResponseWriter, r *http.Request) {
		shardID, err := strconv.Atoi(r.PathValue("sid"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("dist: bad shard id %q", r.PathValue("sid")))
			return
		}
		var req struct {
			Worker string          `json:"worker"`
			Row    campaign.Result `json:"row"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		dup, err := s.streamPoint(req.Worker, r.PathValue("id"), shardID, req.Row)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]bool{"duplicate": dup})
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		grant, ok := s.lease(req.Worker)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, grant)
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
			Job    string `json:"job"`
			Shard  int    `json:"shard"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		renewed, err := s.heartbeat(req.Worker, req.Job, req.Shard)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, map[string]bool{"renewed": renewed})
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string           `json:"worker"`
			Job    string           `json:"job"`
			Shard  int              `json:"shard"`
			Rows   campaign.Results `json:"rows"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		dup, err := s.complete(req.Worker, req.Job, req.Shard, req.Rows)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]bool{"duplicate": dup})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writePrometheus(w, s.MetricsSnapshot())
			return
		}
		writeJSON(w, s.MetricsSnapshot())
	})
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpError emits a JSON error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
