package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcphack/internal/campaign"
	"tcphack/internal/results"
)

// ServerConfig parameterizes a daemon.
type ServerConfig struct {
	// StateDir is the persistence root: StateDir/cache holds the
	// memoization store, StateDir/jobs the submitted specs, and a
	// daemon restarted over the same directory resumes its jobs.
	// Empty runs memory-only (no resume, in-process cache only).
	StateDir string
	// Store overrides the memoization backend (default: a DirStore
	// under StateDir/cache, or a MemStore when StateDir is empty).
	Store Store
	// Salt is the code-version salt folded into every fingerprint
	// (default results.CodeVersion).
	Salt string
	// LeaseTTL is how long a shard lease lives without a heartbeat
	// (default 30 s).
	LeaseTTL time.Duration
	// ShardSize is the default grid points per shard for submits that
	// do not choose (default DefaultShardSize).
	ShardSize int
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

// Lease states a shard moves through; a lease expiry moves a shard
// back from shardLeased to shardPending (re-queue).
const (
	shardPending = iota
	shardLeased
	shardDone
)

// shard is one lease unit: a chunk of uncached grid-point indexes.
type shard struct {
	id      int
	indexes []int
	state   int
	worker  string
	expiry  time.Time
	// requeues counts lease expiries — the at-least-once audit trail.
	requeues int
}

// job is one submitted campaign and its execution state.
type job struct {
	id        string
	wire      campaign.WireSpec
	shardSize int
	spec      campaign.Spec
	points    []campaign.Point
	fps       []string
	rows      []campaign.Result
	have      []bool
	shards    []*shard
	created   time.Time

	cachedPoints int
	simRows      int
	lastRow      time.Time
}

// done reports whether every shard completed.
func (j *job) done() bool {
	for _, sh := range j.shards {
		if sh.state != shardDone {
			return false
		}
	}
	return true
}

// JobStatus is one job's externally visible state — what GET /jobs,
// GET /jobs/{id}, and the /metrics endpoint report.
type JobStatus struct {
	// ID is the job identifier ("j1", "j2", ...).
	ID string `json:"id"`
	// Campaign is the result-row label; Scenario the registry name.
	Campaign string `json:"campaign"`
	Scenario string `json:"scenario"`
	// State is "running" or "done".
	State string `json:"state"`
	// TotalPoints is the grid size; CachedPoints how many were served
	// from the memoization store at admission; DoneRows how many rows
	// exist so far (cached + simulated).
	TotalPoints  int `json:"total_points"`
	CachedPoints int `json:"cached_points"`
	DoneRows     int `json:"done_rows"`
	// Shard accounting: done + inflight (leased) + pending = total.
	ShardsTotal    int `json:"shards_total"`
	ShardsDone     int `json:"shards_done"`
	ShardsInflight int `json:"shards_inflight"`
	ShardsPending  int `json:"shards_pending"`
	// Requeues counts lease expiries across the job's shards.
	Requeues int `json:"requeues"`
	// RowsPerSec is the simulated-row completion rate (cached rows
	// excluded) since submission; 0 until the first row lands.
	RowsPerSec float64 `json:"rows_per_sec"`
	// Created is the submission time.
	Created time.Time `json:"created"`
}

// WorkerStatus is one worker's liveness as seen by the server.
type WorkerStatus struct {
	// LastSeen is the worker's most recent lease/heartbeat/complete.
	LastSeen time.Time `json:"last_seen"`
	// Live reports recent contact (within two lease TTLs).
	Live bool `json:"live"`
}

// Metrics is the /metrics endpoint's payload: per-job progress plus
// worker liveness.
type Metrics struct {
	// Jobs lists every job's status in submission order.
	Jobs []JobStatus `json:"jobs"`
	// Workers maps worker names to their liveness.
	Workers map[string]WorkerStatus `json:"workers"`
}

// Server is the campaign-as-a-service daemon: job admission, the
// shard lease queue, row merging, and the memoization store, exposed
// over an HTTP/JSON API (Handler). See the package documentation for
// the determinism and at-least-once contracts.
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job IDs in submission order
	seq     int
	workers map[string]time.Time
}

// jobRecord is the persisted submission (StateDir/jobs/<id>.json).
type jobRecord struct {
	// ID, Spec, and ShardSize replay the submission on daemon restart;
	// Created preserves the original submission time.
	ID        string            `json:"id"`
	Spec      campaign.WireSpec `json:"spec"`
	ShardSize int               `json:"shard_size"`
	Created   time.Time         `json:"created"`
}

// NewServer assembles a daemon and, when the config names a state
// directory, resumes every persisted job: each spec is re-planned
// against the store, so points whose rows were already persisted come
// back as cache hits and only the remaining shards are queued.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Salt == "" {
		cfg.Salt = results.CodeVersion
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Store == nil {
		if cfg.StateDir == "" {
			cfg.Store = NewMemStore()
		} else {
			store, err := NewDirStore(filepath.Join(cfg.StateDir, "cache"))
			if err != nil {
				return nil, err
			}
			cfg.Store = store
		}
	}
	s := &Server{
		cfg:     cfg,
		jobs:    map[string]*job{},
		workers: map[string]time.Time{},
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(filepath.Join(cfg.StateDir, "jobs"), 0o755); err != nil {
			return nil, err
		}
		if err := s.resume(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// resume reloads persisted job records and re-plans them against the
// (now possibly fuller) store.
func (s *Server) resume() error {
	dir := filepath.Join(s.cfg.StateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var recs []jobRecord
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("dist: corrupt job record %s: %v", e.Name(), err)
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return jobSeq(recs[i].ID) < jobSeq(recs[j].ID) })
	for _, rec := range recs {
		j, err := s.buildJob(rec)
		if err != nil {
			return fmt.Errorf("dist: resuming job %s: %v", rec.ID, err)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if n := jobSeq(j.id); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// jobSeq extracts the numeric part of a job ID ("j7" → 7; 0 when
// malformed).
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// buildJob plans a submission into an executable job.
func (s *Server) buildJob(rec jobRecord) (*job, error) {
	plan, err := NewPlan(rec.Spec, s.cfg.Store, s.cfg.Salt, rec.ShardSize)
	if err != nil {
		return nil, err
	}
	j := &job{
		id:        rec.ID,
		wire:      rec.Spec,
		shardSize: rec.ShardSize,
		spec:      plan.Spec,
		created:   rec.Created,
		rows:      make([]campaign.Result, len(plan.Points)),
		have:      make([]bool, len(plan.Points)),
	}
	for _, pp := range plan.Points {
		j.points = append(j.points, pp.Point)
		j.fps = append(j.fps, pp.Fingerprint)
		if pp.Cached {
			j.rows[pp.Index] = *pp.Result
			j.have[pp.Index] = true
			j.cachedPoints++
		}
	}
	for i, idxs := range plan.Shards {
		j.shards = append(j.shards, &shard{id: i, indexes: idxs})
	}
	return j, nil
}

// Submit admits a spec as a new job (shardSize ≤ 0 uses the server
// default) and returns its status. A spec whose every point is already
// in the store is born done — the repeated-sweep fast path.
func (s *Server) Submit(spec campaign.WireSpec, shardSize int) (JobStatus, error) {
	if shardSize <= 0 {
		shardSize = s.cfg.ShardSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := jobRecord{
		ID:        fmt.Sprintf("j%d", s.seq+1),
		Spec:      spec,
		ShardSize: shardSize,
		Created:   s.cfg.Now().UTC(),
	}
	j, err := s.buildJob(rec)
	if err != nil {
		return JobStatus{}, err
	}
	if s.cfg.StateDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return JobStatus{}, err
		}
		path := filepath.Join(s.cfg.StateDir, "jobs", rec.ID+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return JobStatus{}, err
		}
	}
	s.seq++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return s.statusLocked(j), nil
}

// statusLocked snapshots one job's status (caller holds s.mu).
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:           j.id,
		Campaign:     j.spec.Name,
		Scenario:     j.wire.Scenario,
		State:        "running",
		TotalPoints:  len(j.points),
		CachedPoints: j.cachedPoints,
		ShardsTotal:  len(j.shards),
		Created:      j.created,
	}
	for _, have := range j.have {
		if have {
			st.DoneRows++
		}
	}
	for _, sh := range j.shards {
		st.Requeues += sh.requeues
		switch sh.state {
		case shardPending:
			st.ShardsPending++
		case shardLeased:
			st.ShardsInflight++
		case shardDone:
			st.ShardsDone++
		}
	}
	if j.done() {
		st.State = "done"
	}
	if j.simRows > 0 && j.lastRow.After(j.created) {
		st.RowsPerSec = float64(j.simRows) / j.lastRow.Sub(j.created).Seconds()
	}
	return st
}

// expireLocked re-queues every lease the clock has outrun (caller
// holds s.mu). Each expiry is one requeue: the shard returns to the
// pending queue and the next lease hands it out again.
func (s *Server) expireLocked(now time.Time) {
	for _, id := range s.order {
		for _, sh := range s.jobs[id].shards {
			if sh.state == shardLeased && now.After(sh.expiry) {
				sh.state = shardPending
				sh.worker = ""
				sh.requeues++
			}
		}
	}
}

// touchLocked records worker contact for the liveness metrics.
func (s *Server) touchLocked(worker string, now time.Time) {
	if worker != "" {
		s.workers[worker] = now
	}
}

// LeaseGrant is the server's answer to a lease request: one shard of
// one job, the spec to materialize it from, and the lease terms.
type LeaseGrant struct {
	// Job and Shard identify the lease; echo them in heartbeats and
	// the completion.
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	// Spec is the job's wire spec — workers are stateless.
	Spec campaign.WireSpec `json:"spec"`
	// Indexes are the grid points to simulate, in campaign Points()
	// order.
	Indexes []int `json:"indexes"`
	// TTLMillis is the lease lifetime; heartbeat well within it.
	TTLMillis int64 `json:"ttl_ms"`
}

// lease hands the oldest pending shard to a worker (ok=false when no
// work is pending).
func (s *Server) lease(worker string) (LeaseGrant, bool) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	for _, id := range s.order {
		j := s.jobs[id]
		for _, sh := range j.shards {
			if sh.state != shardPending {
				continue
			}
			sh.state = shardLeased
			sh.worker = worker
			sh.expiry = now.Add(s.cfg.LeaseTTL)
			return LeaseGrant{
				Job:       j.id,
				Shard:     sh.id,
				Spec:      j.wire,
				Indexes:   append([]int{}, sh.indexes...),
				TTLMillis: s.cfg.LeaseTTL.Milliseconds(),
			}, true
		}
	}
	return LeaseGrant{}, false
}

// heartbeat extends a lease the worker still holds; renewed=false
// tells the worker its lease was lost (expired and possibly
// re-leased), so its eventual completion may be a duplicate.
func (s *Server) heartbeat(worker, jobID string, shardID int) (renewed bool, err error) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	j, ok := s.jobs[jobID]
	if !ok {
		return false, fmt.Errorf("dist: unknown job %q", jobID)
	}
	if shardID < 0 || shardID >= len(j.shards) {
		return false, fmt.Errorf("dist: job %s has no shard %d", jobID, shardID)
	}
	sh := j.shards[shardID]
	if sh.state != shardLeased || sh.worker != worker {
		return false, nil
	}
	sh.expiry = now.Add(s.cfg.LeaseTTL)
	return true, nil
}

// complete accepts a shard's rows. Duplicate deliveries (a worker that
// lost its lease and finished anyway) are acknowledged idempotently:
// the first delivery's rows stand — identical by the determinism
// contract — and duplicate=true tells the worker. Rows are persisted
// to the memoization store before the shard is acknowledged, so a
// daemon crash after an ack can always resume from the store.
func (s *Server) complete(worker, jobID string, shardID int, rows campaign.Results) (duplicate bool, err error) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	s.touchLocked(worker, now)
	j, ok := s.jobs[jobID]
	if !ok {
		return false, fmt.Errorf("dist: unknown job %q", jobID)
	}
	if shardID < 0 || shardID >= len(j.shards) {
		return false, fmt.Errorf("dist: job %s has no shard %d", jobID, shardID)
	}
	sh := j.shards[shardID]
	if sh.state == shardDone {
		return true, nil
	}
	if len(rows) != len(sh.indexes) {
		return false, fmt.Errorf("dist: job %s shard %d: %d rows for %d points",
			jobID, shardID, len(rows), len(sh.indexes))
	}
	inShard := map[int]bool{}
	for _, i := range sh.indexes {
		inShard[i] = true
	}
	// Canonicalize before storing: the wire trip drops the Point's
	// unexported sweep flags, and the label/index fields are job-local
	// (rehydrate's contract), so rebuild them from the job's own grid.
	seen := map[int]bool{}
	for i := range rows {
		r := &rows[i]
		if !inShard[r.Index] {
			return false, fmt.Errorf("dist: job %s shard %d: row index %d not in shard",
				jobID, shardID, r.Index)
		}
		if seen[r.Index] {
			return false, fmt.Errorf("dist: job %s shard %d: row index %d delivered twice",
				jobID, shardID, r.Index)
		}
		seen[r.Index] = true
		rehydrate(r, j.spec.Name, j.points[r.Index])
		if err := s.cfg.Store.Put(j.fps[r.Index], *r); err != nil {
			return false, fmt.Errorf("dist: persisting row %d: %v", r.Index, err)
		}
	}
	for _, r := range rows {
		j.rows[r.Index] = r
		j.have[r.Index] = true
	}
	j.simRows += len(rows)
	j.lastRow = now
	sh.state = shardDone
	sh.worker = worker
	return false, nil
}

// Rows returns a completed job's merged rows — byte-identical, through
// the campaign emitters, to a serial campaign.Run of the same spec.
// For a running job it errors unless partial is set, in which case the
// completed rows are returned as-is (missing points absent, not
// zero-filled).
func (s *Server) Rows(jobID string, partial bool) (campaign.Results, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("dist: unknown job %q", jobID)
	}
	if !j.done() {
		if !partial {
			return nil, fmt.Errorf("dist: job %s still running", jobID)
		}
		var out campaign.Results
		for i, have := range j.have {
			if have {
				out = append(out, j.rows[i])
			}
		}
		return out, nil
	}
	return results.Merge(len(j.points), j.rows)
}

// Status returns one job's status.
func (s *Server) Status(jobID string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.cfg.Now())
	j, ok := s.jobs[jobID]
	if !ok {
		return JobStatus{}, fmt.Errorf("dist: unknown job %q", jobID)
	}
	return s.statusLocked(j), nil
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.cfg.Now())
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// MetricsSnapshot returns the /metrics payload.
func (s *Server) MetricsSnapshot() Metrics {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	m := Metrics{Workers: map[string]WorkerStatus{}}
	for _, id := range s.order {
		m.Jobs = append(m.Jobs, s.statusLocked(s.jobs[id]))
	}
	for w, seen := range s.workers {
		m.Workers[w] = WorkerStatus{
			LastSeen: seen.UTC(),
			Live:     now.Sub(seen) < 2*s.cfg.LeaseTTL,
		}
	}
	return m
}

// Handler returns the HTTP/JSON API:
//
//	POST /jobs            {"spec": WireSpec, "shard_size": n} → JobStatus
//	GET  /jobs            → [JobStatus]
//	GET  /jobs/{id}       → JobStatus
//	GET  /jobs/{id}/rows  → campaign rows (?partial=1 while running)
//	POST /lease           {"worker": w} → LeaseGrant | 204
//	POST /heartbeat       {"worker": w, "job": id, "shard": n} → {"renewed": bool}
//	POST /complete        {"worker": w, "job": id, "shard": n, "rows": [...]} → {"duplicate": bool}
//	GET  /metrics         → Metrics (JSON; Prometheus text exposition
//	                        when the Accept header prefers text/plain)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Spec      campaign.WireSpec `json:"spec"`
			ShardSize int               `json:"shard_size"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		st, err := s.Submit(req.Spec, req.ShardSize)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /jobs/{id}/rows", func(w http.ResponseWriter, r *http.Request) {
		partial := r.URL.Query().Get("partial") == "1"
		rows, err := s.Rows(r.PathValue("id"), partial)
		if err != nil {
			code := http.StatusNotFound
			if strings.Contains(err.Error(), "still running") {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rows.WriteJSON(w)
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		grant, ok := s.lease(req.Worker)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, grant)
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
			Job    string `json:"job"`
			Shard  int    `json:"shard"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		renewed, err := s.heartbeat(req.Worker, req.Job, req.Shard)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, map[string]bool{"renewed": renewed})
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string           `json:"worker"`
			Job    string           `json:"job"`
			Shard  int              `json:"shard"`
			Rows   campaign.Results `json:"rows"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		dup, err := s.complete(req.Worker, req.Job, req.Shard, req.Rows)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]bool{"duplicate": dup})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writePrometheus(w, s.MetricsSnapshot())
			return
		}
		writeJSON(w, s.MetricsSnapshot())
	})
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpError emits a JSON error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
