package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcphack/internal/results"
)

// storeFiles lists a DirStore's directory entries (diagnostics).
func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestDirStoreQuarantinesCorruptEntry: an entry whose bytes rotted
// after the write must come back as a miss — never as data — and be
// renamed aside so the next Get does not re-read it.
func TestDirStoreQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	row := serialRows(t, testWire())[0]
	const fp = "feedfacefeedface"
	if err := store.Put(fp, row); err != nil {
		t.Fatal(err)
	}
	if err := store.CorruptEntry(fp); err != nil {
		t.Fatal(err)
	}

	got, err := store.Get(fp)
	if err != nil || got != nil {
		t.Fatalf("corrupt entry Get = %v, %v; want miss", got, err)
	}
	if store.CorruptCount() != 1 {
		t.Errorf("CorruptCount = %d, want 1", store.CorruptCount())
	}
	found := false
	for _, name := range storeFiles(t, dir) {
		if strings.HasSuffix(name, corruptSuffix) {
			found = true
		}
		if name == fp+".json" {
			t.Errorf("corrupt entry still present under its real name")
		}
	}
	if !found {
		t.Errorf("no quarantined file in %v", storeFiles(t, dir))
	}
	// The quarantined entry stays a miss; re-putting heals it.
	if got, err := store.Get(fp); err != nil || got != nil {
		t.Fatalf("second Get = %v, %v; want miss", got, err)
	}
	if err := store.Put(fp, row); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get(fp); err != nil || got == nil {
		t.Fatalf("healed Get = %v, %v; want hit", got, err)
	}
}

// TestDirStorePreEnvelopeEntryIsMiss: a bare-row file written by a
// build predating the CRC envelope must read as a miss (and be
// quarantined), not crash or serve unverifiable data.
func TestDirStorePreEnvelopeEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "0123456789abcdef"
	if err := os.WriteFile(filepath.Join(dir, fp+".json"),
		[]byte(`{"campaign":"old","aggregate_mbps":1.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get(fp); err != nil || got != nil {
		t.Fatalf("pre-envelope Get = %v, %v; want miss", got, err)
	}
	if store.CorruptCount() != 1 {
		t.Errorf("CorruptCount = %d, want 1", store.CorruptCount())
	}
}

// TestDirStoreTornWriteNeverServes: a Put whose write was cut short
// (host crash before the data hit the disk) must leave either no entry
// or an entry Get refuses to serve — the crash-consistency contract.
// The truncating writer stands in for the crash.
func TestDirStoreTornWriteNeverServes(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.putWrite = func(f *os.File, data []byte) error {
		_, err := f.Write(data[:len(data)/2]) // "crash": half the bytes, no fsync
		return err
	}
	row := serialRows(t, testWire())[0]
	const fp = "cafebabecafebabe"
	if err := store.Put(fp, row); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get(fp); err != nil || got != nil {
		t.Fatalf("torn entry Get = %v, %v; want miss", got, err)
	}
	if store.CorruptCount() != 1 {
		t.Errorf("CorruptCount = %d, want 1", store.CorruptCount())
	}

	// Recovery: a healthy Put over the quarantined fingerprint serves.
	store.putWrite = nil
	if err := store.Put(fp, row); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(fp)
	if err != nil || got == nil {
		t.Fatalf("re-put Get = %v, %v; want hit", got, err)
	}
	if got.AggregateMbps != row.AggregateMbps {
		t.Errorf("re-put row lost data: %+v", got)
	}
}

// TestDirStorePurge: -store-gc semantics — stale code versions and
// quarantined files go, current entries stay, and dry-run only counts.
func TestDirStorePurge(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows := serialRows(t, testWire())

	store.Version = "hack-sim-v1" // ancient build wrote these
	if err := store.Put("aaaaaaaaaaaaaaaa", rows[0]); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("bbbbbbbbbbbbbbbb", rows[1]); err != nil {
		t.Fatal(err)
	}
	store.Version = results.CodeVersion // current build wrote this
	if err := store.Put("cccccccccccccccc", rows[2]); err != nil {
		t.Fatal(err)
	}
	// Plus one quarantined entry and one unreadable stranger.
	if err := store.Put("dddddddddddddddd", rows[3]); err != nil {
		t.Fatal(err)
	}
	if err := store.CorruptEntry("dddddddddddddddd"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("dddddddddddddddd"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "eeeeeeeeeeeeeeee.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Dry run counts 2 stale + 1 quarantined + 1 unreadable = 4,
	// deleting nothing.
	n, err := store.Purge(results.CodeVersion, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("dry-run purge = %d, want 4 (files: %v)", n, storeFiles(t, dir))
	}
	if got, err := store.Get("aaaaaaaaaaaaaaaa"); err != nil || got == nil {
		t.Fatalf("dry run deleted an entry: %v, %v", got, err)
	}

	n, err = store.Purge(results.CodeVersion, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("purge = %d, want 4", n)
	}
	if got, err := store.Get("aaaaaaaaaaaaaaaa"); err != nil || got != nil {
		t.Fatalf("stale entry survived purge: %v, %v", got, err)
	}
	if got, err := store.Get("cccccccccccccccc"); err != nil || got == nil {
		t.Fatalf("current entry purged: %v, %v", got, err)
	}
	files := storeFiles(t, dir)
	if len(files) != 1 || files[0] != "cccccccccccccccc.json" {
		t.Errorf("post-purge files = %v, want only the current entry", files)
	}
}
