package dist

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of the /metrics
// payload. The endpoint's default stays JSON — the CLI and the CI
// smoke tests depend on it — and a scraper that prefers text/plain
// (Prometheus sends "Accept: text/plain;version=0.0.4", OpenMetrics
// scrapers "application/openmetrics-text") receives this form instead.

// wantsPrometheus reports whether the request prefers the Prometheus
// text exposition over the default JSON payload.
func wantsPrometheus(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics-text")
}

// promEscape escapes a label value per the text exposition format.
func promEscape(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

func promNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePrometheus renders the metrics snapshot in deterministic order:
// jobs in submission order, workers sorted by name, one HELP/TYPE
// header per family.
func writePrometheus(w io.Writer, m Metrics) {
	jobGauge := func(name, help string, value func(j JobStatus) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, j := range m.Jobs {
			fmt.Fprintf(w, "%s{job=\"%s\",campaign=\"%s\",scenario=\"%s\"} %s\n",
				name, promEscape(j.ID), promEscape(j.Campaign), promEscape(j.Scenario),
				promNum(value(j)))
		}
	}
	jobGauge("tcphack_job_running", "Whether the job is still running (1) or done (0).",
		func(j JobStatus) float64 {
			if j.State == "running" {
				return 1
			}
			return 0
		})
	jobGauge("tcphack_job_total_points", "Grid points in the job.",
		func(j JobStatus) float64 { return float64(j.TotalPoints) })
	jobGauge("tcphack_job_cached_points", "Points served from the memoization store at admission.",
		func(j JobStatus) float64 { return float64(j.CachedPoints) })
	jobGauge("tcphack_job_done_rows", "Result rows landed so far (cached + simulated).",
		func(j JobStatus) float64 { return float64(j.DoneRows) })
	jobGauge("tcphack_job_shards_done", "Shards completed.",
		func(j JobStatus) float64 { return float64(j.ShardsDone) })
	jobGauge("tcphack_job_shards_inflight", "Shards currently leased to workers.",
		func(j JobStatus) float64 { return float64(j.ShardsInflight) })
	jobGauge("tcphack_job_shards_pending", "Shards awaiting a worker.",
		func(j JobStatus) float64 { return float64(j.ShardsPending) })
	jobGauge("tcphack_job_requeues", "Lease expiries across the job's shards.",
		func(j JobStatus) float64 { return float64(j.Requeues) })
	jobGauge("tcphack_job_rows_per_sec", "Simulated-row completion rate since submission.",
		func(j JobStatus) float64 { return j.RowsPerSec })
	jobGauge("tcphack_job_points_streamed", "Rows landed through the point-level streaming checkpoint.",
		func(j JobStatus) float64 { return float64(j.PointsStreamed) })
	jobGauge("tcphack_job_points_resimulated", "Streamed rows the server already held (work repeated after lease churn).",
		func(j JobStatus) float64 { return float64(j.PointsResimulated) })
	jobGauge("tcphack_job_duplicate_completes", "Whole-shard deliveries acknowledged idempotently as duplicates.",
		func(j JobStatus) float64 { return float64(j.DuplicateCompletes) })
	jobGauge("tcphack_job_degraded", "Whether the job fell back to compute-everything mode after a store failure.",
		func(j JobStatus) float64 {
			if j.Degraded {
				return 1
			}
			return 0
		})

	workers := make([]string, 0, len(m.Workers))
	for name := range m.Workers {
		workers = append(workers, name)
	}
	sort.Strings(workers)
	workerGauge := func(name, help string, value func(ws WorkerStatus) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, wk := range workers {
			fmt.Fprintf(w, "%s{worker=\"%s\"} %s\n",
				name, promEscape(wk), promNum(value(m.Workers[wk])))
		}
	}
	workerGauge("tcphack_worker_live", "Whether the worker made contact within two lease TTLs.",
		func(ws WorkerStatus) float64 {
			if ws.Live {
				return 1
			}
			return 0
		})
	workerGauge("tcphack_worker_last_seen_seconds", "Unix time of the worker's most recent contact.",
		func(ws WorkerStatus) float64 { return float64(ws.LastSeen.UnixNano()) / 1e9 })

	storeGauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promNum(v))
	}
	storeGauge("tcphack_store_get_errors", "Memoization store get failures absorbed by degradation.",
		float64(m.Store.GetErrors))
	storeGauge("tcphack_store_put_errors", "Memoization store put failures absorbed by degradation.",
		float64(m.Store.PutErrors))
	storeGauge("tcphack_store_corrupt_quarantined", "Store entries quarantined after a failed integrity check.",
		float64(m.Store.CorruptQuarantined))
}
