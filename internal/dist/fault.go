package dist

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcphack/internal/campaign"
)

// Fault injection for the distributed layer: a Store wrapper and an
// http.RoundTripper that fail, delay, duplicate, and corrupt on a
// seeded deterministic schedule, each firing counted per class. They
// exist so the chaos tests (and CI's chaos-smoke job) can assert not
// just that a sweep survived, but that every failure mode it claims to
// survive actually occurred during the run.

// faultDice is the shared seeded schedule: one mutex-guarded RNG whose
// draw sequence is fully determined by the seed, so a chaos run's
// fault schedule replays exactly (modulo goroutine interleaving of the
// draws themselves, which the tests treat as part of the chaos).
type faultDice struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultDice(seed int64) *faultDice {
	return &faultDice{rng: rand.New(rand.NewSource(seed))}
}

// roll reports whether a fault with probability p fires.
func (d *faultDice) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Float64() < p
}

// duration draws a delay in [0, max).
func (d *faultDice) duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.rng.Int63n(int64(max)))
}

// FaultStoreStats counts the faults a FaultStore has fired, per class.
type FaultStoreStats struct {
	// FailedGets and FailedPuts count injected backend errors.
	FailedGets, FailedPuts int64
	// CorruptedPuts counts entries bit-rotted after a successful Put.
	CorruptedPuts int64
	// Delayed counts operations that slept before proceeding.
	Delayed int64
}

// FaultStore wraps a Store with a seeded deterministic fault schedule:
// Get/Put can fail (injected backend error), be delayed, and — when
// the inner store supports it — an entry can be corrupted in place
// right after a successful Put, modeling bit rot that only a later
// integrity check can catch. The zero probabilities make it a
// transparent pass-through.
type FaultStore struct {
	// Inner is the real store.
	Inner Store
	// Seed fixes the fault schedule.
	Seed int64
	// FailGet, FailPut, CorruptPut, and Delay are per-operation fault
	// probabilities in [0,1].
	FailGet, FailPut, CorruptPut, Delay float64
	// MaxDelay bounds an injected delay (default 2 ms).
	MaxDelay time.Duration

	once  sync.Once
	dice  *faultDice
	stats FaultStoreStats
}

// entryCorrupter is what an inner store must implement for CorruptPut
// to have teeth (DirStore does).
type entryCorrupter interface {
	CorruptEntry(fp string) error
}

func (s *FaultStore) init() {
	s.once.Do(func() {
		s.dice = newFaultDice(s.Seed)
		if s.MaxDelay <= 0 {
			s.MaxDelay = 2 * time.Millisecond
		}
	})
}

// Get implements Store, subject to the fault schedule.
func (s *FaultStore) Get(fp string) (*campaign.Result, error) {
	s.init()
	if s.dice.roll(s.Delay) {
		atomic.AddInt64(&s.stats.Delayed, 1)
		time.Sleep(s.dice.duration(s.MaxDelay))
	}
	if s.dice.roll(s.FailGet) {
		atomic.AddInt64(&s.stats.FailedGets, 1)
		return nil, fmt.Errorf("dist: fault: injected store get failure for %s", fp)
	}
	return s.Inner.Get(fp)
}

// Put implements Store, subject to the fault schedule. A corrupted Put
// still reports success — exactly like real bit rot, the damage is
// only discoverable by a later Get's integrity check.
func (s *FaultStore) Put(fp string, r campaign.Result) error {
	s.init()
	if s.dice.roll(s.Delay) {
		atomic.AddInt64(&s.stats.Delayed, 1)
		time.Sleep(s.dice.duration(s.MaxDelay))
	}
	if s.dice.roll(s.FailPut) {
		atomic.AddInt64(&s.stats.FailedPuts, 1)
		return fmt.Errorf("dist: fault: injected store put failure for %s", fp)
	}
	if err := s.Inner.Put(fp, r); err != nil {
		return err
	}
	if c, ok := s.Inner.(entryCorrupter); ok && s.dice.roll(s.CorruptPut) {
		if err := c.CorruptEntry(fp); err == nil {
			atomic.AddInt64(&s.stats.CorruptedPuts, 1)
		}
	}
	return nil
}

// CorruptCount forwards the inner store's quarantine counter so the
// daemon's metrics still see through the fault wrapper.
func (s *FaultStore) CorruptCount() int64 {
	if cc, ok := s.Inner.(interface{ CorruptCount() int64 }); ok {
		return cc.CorruptCount()
	}
	return 0
}

// Stats snapshots the per-class fired counters.
func (s *FaultStore) Stats() FaultStoreStats {
	return FaultStoreStats{
		FailedGets:    atomic.LoadInt64(&s.stats.FailedGets),
		FailedPuts:    atomic.LoadInt64(&s.stats.FailedPuts),
		CorruptedPuts: atomic.LoadInt64(&s.stats.CorruptedPuts),
		Delayed:       atomic.LoadInt64(&s.stats.Delayed),
	}
}

// FaultTransportStats counts the faults a FaultTransport has fired,
// per class.
type FaultTransportStats struct {
	// DroppedRequests never reached the server; DroppedResponses were
	// processed by the server but the response was lost — the case
	// that forces duplicate deliveries and makes idempotency load-
	// bearing.
	DroppedRequests, DroppedResponses int64
	// Duplicated requests were sent to the server twice.
	Duplicated int64
	// Injected503s were answered with a synthetic 503 without reaching
	// the server.
	Injected503s int64
	// Delayed requests slept before being sent.
	Delayed int64
}

// FaultTransport is a fault-injecting http.RoundTripper for the dist
// Client: per request it can (by seeded schedule) drop the request
// before it is sent, drop the response after the server processed it,
// send the request twice, answer with a synthetic 503, or delay. All
// five classes map to real network/proxy failure modes, and all five
// must be survivable by the client's retry loop plus the server's
// idempotent endpoints. Zero probabilities pass through untouched.
type FaultTransport struct {
	// Inner is the real transport (default http.DefaultTransport).
	Inner http.RoundTripper
	// Seed fixes the fault schedule.
	Seed int64
	// DropRequest, DropResponse, Duplicate, Err503, and Delay are
	// per-request fault probabilities in [0,1].
	DropRequest, DropResponse, Duplicate, Err503, Delay float64
	// MaxDelay bounds an injected delay (default 2 ms).
	MaxDelay time.Duration

	once  sync.Once
	dice  *faultDice
	stats FaultTransportStats
}

func (t *FaultTransport) init() {
	t.once.Do(func() {
		t.dice = newFaultDice(t.Seed)
		if t.MaxDelay <= 0 {
			t.MaxDelay = 2 * time.Millisecond
		}
	})
}

func (t *FaultTransport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with the fault schedule.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.init()
	if t.dice.roll(t.Delay) {
		atomic.AddInt64(&t.stats.Delayed, 1)
		time.Sleep(t.dice.duration(t.MaxDelay))
	}
	if t.dice.roll(t.Err503) {
		atomic.AddInt64(&t.stats.Injected503s, 1)
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable (injected)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"dist: fault: injected 503"}`)),
			Request: req,
		}, nil
	}
	if t.dice.roll(t.DropRequest) {
		atomic.AddInt64(&t.stats.DroppedRequests, 1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("dist: fault: request dropped before send")
	}
	// Duplicate: the server processes the request twice; the caller
	// sees only the second response. Requires a replayable body.
	if t.dice.roll(t.Duplicate) && (req.Body == nil || req.GetBody != nil) {
		first := req.Clone(req.Context())
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err == nil {
				first.Body = body
				if resp, err := t.inner().RoundTrip(first); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					atomic.AddInt64(&t.stats.Duplicated, 1)
				}
			}
		} else if resp, err := t.inner().RoundTrip(first); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			atomic.AddInt64(&t.stats.Duplicated, 1)
		}
	}
	resp, err := t.inner().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.dice.roll(t.DropResponse) {
		atomic.AddInt64(&t.stats.DroppedResponses, 1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("dist: fault: response dropped after server processed %s %s",
			req.Method, req.URL.Path)
	}
	return resp, nil
}

// Stats snapshots the per-class fired counters.
func (t *FaultTransport) Stats() FaultTransportStats {
	return FaultTransportStats{
		DroppedRequests:  atomic.LoadInt64(&t.stats.DroppedRequests),
		DroppedResponses: atomic.LoadInt64(&t.stats.DroppedResponses),
		Duplicated:       atomic.LoadInt64(&t.stats.Duplicated),
		Injected503s:     atomic.LoadInt64(&t.stats.Injected503s),
		Delayed:          atomic.LoadInt64(&t.stats.Delayed),
	}
}
