package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tcphack/internal/campaign"
)

// Client speaks the Server's HTTP/JSON API — the submit/status side
// for CLIs and the lease/complete side for workers.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one JSON round trip; out may be nil. ok codes: 200; 204
// returns errNoContent sentinel via found=false.
func (c *Client) do(method, path string, in, out any) (found bool, err error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return false, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return false, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return false, fmt.Errorf("dist: %s %s: %s", method, path, e.Error)
		}
		return false, fmt.Errorf("dist: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Submit posts a spec (shardSize ≤ 0 uses the server default) and
// returns the new job's status.
func (c *Client) Submit(spec campaign.WireSpec, shardSize int) (JobStatus, error) {
	var st JobStatus
	req := struct {
		Spec      campaign.WireSpec `json:"spec"`
		ShardSize int               `json:"shard_size"`
	}{spec, shardSize}
	_, err := c.do("POST", "/jobs", req, &st)
	return st, err
}

// Jobs lists every job's status.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	_, err := c.do("GET", "/jobs", nil, &out)
	return out, err
}

// Status fetches one job's status.
func (c *Client) Status(jobID string) (JobStatus, error) {
	var st JobStatus
	_, err := c.do("GET", "/jobs/"+jobID, nil, &st)
	return st, err
}

// Rows fetches a completed job's merged rows.
func (c *Client) Rows(jobID string) (campaign.Results, error) {
	var rows campaign.Results
	_, err := c.do("GET", "/jobs/"+jobID+"/rows", nil, &rows)
	return rows, err
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	_, err := c.do("GET", "/metrics", nil, &m)
	return m, err
}

// Lease asks for a shard; ok=false means no work is pending.
func (c *Client) Lease(worker string) (LeaseGrant, bool, error) {
	var grant LeaseGrant
	found, err := c.do("POST", "/lease", map[string]string{"worker": worker}, &grant)
	return grant, found && err == nil, err
}

// Heartbeat extends a held lease; renewed=false means the lease was
// lost to expiry.
func (c *Client) Heartbeat(worker, jobID string, shardID int) (bool, error) {
	req := struct {
		Worker string `json:"worker"`
		Job    string `json:"job"`
		Shard  int    `json:"shard"`
	}{worker, jobID, shardID}
	var resp struct {
		Renewed bool `json:"renewed"`
	}
	_, err := c.do("POST", "/heartbeat", req, &resp)
	return resp.Renewed, err
}

// Complete delivers a shard's rows; duplicate=true means another
// delivery won (identical rows, by the determinism contract).
func (c *Client) Complete(worker, jobID string, shardID int, rows campaign.Results) (bool, error) {
	req := struct {
		Worker string           `json:"worker"`
		Job    string           `json:"job"`
		Shard  int              `json:"shard"`
		Rows   campaign.Results `json:"rows"`
	}{worker, jobID, shardID, rows}
	var resp struct {
		Duplicate bool `json:"duplicate"`
	}
	_, err := c.do("POST", "/complete", req, &resp)
	return resp.Duplicate, err
}

// WaitDone polls a job until it reports done, returning the final
// status. The context bounds the wait.
func (c *Client) WaitDone(ctx context.Context, jobID string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(jobID)
		if err != nil {
			return st, err
		}
		if st.State == "done" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Worker pulls shards from a daemon and simulates them: lease,
// materialize the spec, campaign.RunPoints over the shard's indexes,
// heartbeat while simulating, deliver. Cancelling the context stops
// the worker gracefully: it finishes and delivers the shard it holds
// (abandoning mid-shard would only burn the lease TTL before a
// re-queue) and then stops leasing.
type Worker struct {
	// Client targets the daemon.
	Client Client
	// Name identifies the worker in leases and liveness metrics.
	Name string
	// Poll is the idle wait between lease attempts when the queue is
	// empty (default 200 ms).
	Poll time.Duration
	// OnShard, when set, observes each completed shard (logging).
	OnShard func(grant LeaseGrant, duplicate bool)
}

// Run executes the lease loop until the context is cancelled (graceful
// drain: an in-flight shard is finished and delivered first) or a
// non-retryable error occurs.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		grant, ok, err := w.Client.Lease(w.Name)
		if err != nil {
			// A daemon restart or network blip is survivable; keep
			// polling until cancelled.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		if !ok {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		if err := w.runShard(grant); err != nil {
			return err
		}
	}
}

// runShard simulates one leased shard and delivers its rows,
// heartbeating in the background while the simulation runs.
func (w *Worker) runShard(grant LeaseGrant) error {
	spec, err := grant.Spec.Spec()
	if err != nil {
		return fmt.Errorf("dist: worker %s: bad spec for job %s: %v", w.Name, grant.Job, err)
	}
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(grant.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			select {
			case <-hbStop:
				return
			case <-time.After(interval):
				// A lost lease is not fatal: completion is idempotent.
				w.Client.Heartbeat(w.Name, grant.Job, grant.Shard)
			}
		}
	}()
	rows, err := campaign.RunPoints(context.Background(), spec, grant.Indexes)
	close(hbStop)
	<-hbDone
	if err != nil {
		return fmt.Errorf("dist: worker %s: job %s shard %d: %v", w.Name, grant.Job, grant.Shard, err)
	}
	dup, err := w.Client.Complete(w.Name, grant.Job, grant.Shard, rows)
	if err != nil {
		return fmt.Errorf("dist: worker %s: delivering job %s shard %d: %v", w.Name, grant.Job, grant.Shard, err)
	}
	if w.OnShard != nil {
		w.OnShard(grant, dup)
	}
	return nil
}
