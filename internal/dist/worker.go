package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"tcphack/internal/campaign"
)

// Worker pulls shards from a daemon and simulates them point by
// point: lease, materialize the spec, simulate each granted grid
// point, stream its row back immediately (the point-level checkpoint),
// heartbeat while simulating, and deliver the whole shard at the end.
// Cancelling the context stops the worker gracefully: it finishes and
// delivers the shard it holds (abandoning mid-shard would only burn
// the lease TTL before a re-queue) and then stops leasing. Closing
// Kill stops it the way SIGKILL would — the in-flight simulation is
// abandoned without a completion, and recovery is entirely the
// server's job (the streamed points are already checkpointed; the
// lease expires and the remainder is re-granted).
type Worker struct {
	// Client targets the daemon. Give Client.Retry.Seed the worker's
	// name so retry jitter decorrelates across a fleet.
	Client Client
	// Name identifies the worker in leases and liveness metrics.
	Name string
	// Poll is the idle wait after the first empty lease attempt; it
	// doubles per consecutive idle attempt up to MaxPoll, with
	// deterministic jitter derived from Name, so an idle fleet backs
	// off the daemon instead of hammering it in lockstep (defaults
	// 200 ms, 5 s).
	Poll, MaxPoll time.Duration
	// Kill, when closed, aborts the worker immediately — the chaos
	// tests' SIGKILL. No drain, no completion, no further requests.
	Kill <-chan struct{}
	// OnShard, when set, observes each delivered shard (logging).
	OnShard func(grant LeaseGrant, duplicate bool)
	// OnPoint, when set, observes each simulated point after its
	// streaming attempt: the grant, the grid index, whether the server
	// already had the row, and the streaming error if any (streaming
	// failures are non-fatal — the completion still carries the row).
	OnPoint func(grant LeaseGrant, index int, duplicate bool, err error)
	// OnAbandon, when set, observes a shard the worker gave up on
	// because delivery kept failing; the lease expiry will requeue it.
	OnAbandon func(grant LeaseGrant, err error)
}

// errKilled reports a Kill-channel abort out of runShard.
var errKilled = errors.New("dist: worker killed")

// Run executes the lease loop until the context is cancelled (graceful
// drain: an in-flight shard is finished and delivered first) or Kill
// is closed (immediate abandonment). Transient daemon failures are
// absorbed by the idle backoff; Run returns nil on both stop paths.
func (w *Worker) Run(ctx context.Context) error {
	killCtx := context.Background()
	if w.Kill != nil {
		var cancel context.CancelFunc
		killCtx, cancel = context.WithCancel(killCtx)
		defer cancel()
		stopped := make(chan struct{})
		defer close(stopped)
		go func() {
			select {
			case <-w.Kill:
				cancel()
			case <-stopped:
			}
		}()
	}
	idle := 0
	for {
		if ctx.Err() != nil || killCtx.Err() != nil {
			return nil
		}
		grant, ok, err := w.Client.Lease(w.Name)
		if err != nil || !ok {
			// A daemon restart or network blip outlasting the client's
			// retry budget is survivable; back off and keep polling.
			idle++
			select {
			case <-ctx.Done():
				return nil
			case <-killCtx.Done():
				return nil
			case <-time.After(w.idleDelay(idle)):
			}
			continue
		}
		idle = 0
		if err := w.runShard(killCtx, grant); err != nil {
			if errors.Is(err, errKilled) {
				return nil
			}
			return err
		}
	}
}

// idleDelay is the capped exponential idle backoff: Poll doubling per
// consecutive empty poll up to MaxPoll, jittered into [d/2, d] by a
// hash of (worker name, attempt) — deterministic per worker, spread
// across a fleet.
func (w *Worker) idleDelay(attempt int) time.Duration {
	base, cap := w.Poll, w.MaxPoll
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|idle|%d", w.Name, attempt)
	return half + time.Duration(h.Sum64()%uint64(half)+1)
}

// runShard simulates one leased shard point by point, streaming each
// finished row back as a checkpoint, and delivers the full shard at
// the end, heartbeating in the background throughout. Delivery
// failures that outlast the retry budget abandon the shard to lease
// expiry rather than killing the worker.
func (w *Worker) runShard(killCtx context.Context, grant LeaseGrant) error {
	spec, err := grant.Spec.Spec()
	if err != nil {
		return fmt.Errorf("dist: worker %s: bad spec for job %s: %v", w.Name, grant.Job, err)
	}
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(grant.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			select {
			case <-hbStop:
				return
			case <-killCtx.Done():
				return
			case <-time.After(interval):
				// A lost lease is not fatal: completion is idempotent.
				w.Client.Heartbeat(w.Name, grant.Job, grant.Shard)
			}
		}
	}()
	defer func() {
		close(hbStop)
		<-hbDone
	}()

	rows := make(campaign.Results, 0, len(grant.Indexes))
	for _, idx := range grant.Indexes {
		ptRows, err := campaign.RunPoints(killCtx, spec, []int{idx})
		if killCtx.Err() != nil {
			return errKilled
		}
		if err != nil {
			return fmt.Errorf("dist: worker %s: job %s shard %d point %d: %v",
				w.Name, grant.Job, grant.Shard, idx, err)
		}
		row := ptRows[0]
		rows = append(rows, row)
		// Stream the checkpoint. Failure is non-fatal: the row rides
		// along in the completion, and the server tolerates gaps in
		// the stream.
		dup, err := w.Client.StreamPoint(w.Name, grant.Job, grant.Shard, row)
		if w.OnPoint != nil {
			w.OnPoint(grant, idx, dup, err)
		}
	}
	if killCtx.Err() != nil {
		return errKilled
	}
	dup, err := w.Client.Complete(w.Name, grant.Job, grant.Shard, rows)
	if err != nil {
		// The shard's rows are likely already streamed; whatever is
		// missing will be re-granted when the lease expires. Abandon
		// rather than dying — a worker fleet should outlive a flaky
		// daemon.
		if w.OnAbandon != nil {
			w.OnAbandon(grant, err)
		}
		return nil
	}
	if w.OnShard != nil {
		w.OnShard(grant, dup)
	}
	return nil
}
