package dist

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsContentNegotiation: /metrics defaults to the JSON
// snapshot (the CLI and the CI smokes depend on it) and switches to
// the Prometheus text exposition when the scraper asks for it.
func TestMetricsContentNegotiation(t *testing.T) {
	s, err := NewServer(ServerConfig{ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts, c := startDaemon(t, s)
	st, err := c.Submit(testWire(), 1)
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, st.ID, 1)

	get := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics (accept %q): %d %s", accept, resp.StatusCode, body)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := get("")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("default Content-Type = %q, want JSON", ct)
	}
	if !strings.Contains(body, `"jobs"`) {
		t.Errorf("default body is not the JSON snapshot: %.120s", body)
	}

	ct, body = get("text/plain;version=0.0.4")
	if want := "text/plain; version=0.0.4"; !strings.Contains(ct, want) {
		t.Errorf("prometheus Content-Type = %q, want %q", ct, want)
	}
	for _, frag := range []string{
		"# TYPE tcphack_job_running gauge",
		"tcphack_job_running{job=\"" + st.ID + "\"",
		"tcphack_job_done_rows",
		"tcphack_worker_live{worker=\"a\"} 1",
		"tcphack_worker_last_seen_seconds",
		"tcphack_job_degraded{job=\"" + st.ID + "\"",
		"tcphack_job_points_streamed",
		"tcphack_job_points_resimulated",
		"tcphack_job_duplicate_completes",
		"# TYPE tcphack_store_get_errors gauge",
		"tcphack_store_put_errors 0",
		"tcphack_store_corrupt_quarantined 0",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("prometheus body missing %q:\n%s", frag, body)
		}
	}

	if ct, _ := get("application/openmetrics-text"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("openmetrics Accept got Content-Type %q", ct)
	}
}
