package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"tcphack/internal/campaign"
)

// RetryPolicy bounds the Client's retry loop: every API call retries
// transport errors and 5xx responses with capped exponential backoff
// and deterministic jitter, under a per-attempt timeout. 4xx responses
// are never retried — they are the server saying the request itself is
// wrong. The zero value means defaults; retrying is safe on every
// endpoint because the mutating ones are idempotent (see the package
// documentation's endpoint contract table).
type RetryPolicy struct {
	// MaxAttempts is the total tries per call, first included
	// (default 5).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry up to MaxDelay (defaults 100 ms, 5 s).
	BaseDelay, MaxDelay time.Duration
	// Timeout bounds each individual attempt (default 15 s).
	Timeout time.Duration
	// Seed salts the jitter stream — give each worker its name so a
	// fleet retrying the same failure spreads out instead of
	// thundering back in lockstep.
	Seed string
	// Sleep overrides the inter-attempt wait (tests; default
	// time.Sleep).
	Sleep func(time.Duration)
	// OnRetry observes each retry before its backoff sleep: the
	// request path, the attempt number just failed (1-based), and its
	// error. Workers hang their retry counters and logging here.
	OnRetry func(path string, attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Timeout <= 0 {
		p.Timeout = 15 * time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff computes the wait before retry number retry (1-based):
// BaseDelay doubling per retry, capped at MaxDelay, then jittered into
// [d/2, d] by a hash of (Seed, path, retry) — deterministic for a
// given policy, decorrelated across workers.
func (p RetryPolicy) backoff(path string, retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", p.Seed, path, retry)
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(h.Sum64()%uint64(half)+1)
}

// retryableError wraps an attempt error that is worth retrying
// (transport failure or 5xx).
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// Client speaks the Server's HTTP/JSON API — the submit/status side
// for CLIs and the lease/stream/complete side for workers. Every call
// runs under Retry's backoff loop.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient overrides http.DefaultClient (chaos tests install a
	// FaultTransport here).
	HTTPClient *http.Client
	// Retry bounds the per-call retry loop (zero value = defaults).
	Retry RetryPolicy
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one JSON call under the retry policy; out may be nil.
// found=false reports a 204 (no content, e.g. an empty lease queue).
func (c *Client) do(method, path string, in, out any) (found bool, err error) {
	var data []byte
	if in != nil {
		if data, err = json.Marshal(in); err != nil {
			return false, err
		}
	}
	p := c.Retry.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if attempt > 1 {
			if p.OnRetry != nil {
				p.OnRetry(path, attempt-1, lastErr)
			}
			p.Sleep(p.backoff(path, attempt-1))
		}
		found, err := c.attempt(method, path, data, out)
		if err == nil {
			return found, nil
		}
		if _, retryable := err.(retryableError); !retryable {
			return false, err
		}
		lastErr = err
	}
	// Keep the retryable classification on the give-up error so
	// long-poll loops (WaitDone) can tell an outage from a verdict.
	return false, retryableError{fmt.Errorf("dist: %s %s: giving up after %d attempts: %v",
		method, path, p.MaxAttempts, lastErr)}
}

// attempt is one bounded round trip. Transport errors, 5xx responses,
// and truncated bodies come back as retryableError; anything else is
// final.
func (c *Client) attempt(method, path string, data []byte, out any) (found bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.Retry.withDefaults().Timeout)
	defer cancel()
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return false, err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return false, retryableError{fmt.Errorf("dist: %s %s: %v", method, path, err)}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return false, nil
	case resp.StatusCode >= 500:
		return false, retryableError{fmt.Errorf("dist: %s %s: HTTP %d", method, path, resp.StatusCode)}
	case resp.StatusCode != http.StatusOK:
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return false, fmt.Errorf("dist: %s %s: %s", method, path, e.Error)
		}
		return false, fmt.Errorf("dist: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// A truncated 200 body is a transport casualty, not a
			// server verdict — retry it.
			return false, retryableError{fmt.Errorf("dist: %s %s: decoding response: %v", method, path, err)}
		}
	}
	return true, nil
}

// submitToken mints the idempotency token a Submit carries: the server
// replays the original job's status for every retry or transport
// duplicate bearing the same token, so at-least-once delivery of a
// submit admits exactly one job.
func submitToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Submit posts a spec (shardSize ≤ 0 uses the server default) and
// returns the new job's status. The call is idempotent end to end: all
// retries carry one token, and the server returns the already-admitted
// job for a token it has seen.
func (c *Client) Submit(spec campaign.WireSpec, shardSize int) (JobStatus, error) {
	var st JobStatus
	req := struct {
		Spec      campaign.WireSpec `json:"spec"`
		ShardSize int               `json:"shard_size"`
		Token     string            `json:"token"`
	}{spec, shardSize, submitToken()}
	_, err := c.do("POST", "/jobs", req, &st)
	return st, err
}

// Jobs lists every job's status.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	_, err := c.do("GET", "/jobs", nil, &out)
	return out, err
}

// Status fetches one job's status.
func (c *Client) Status(jobID string) (JobStatus, error) {
	var st JobStatus
	_, err := c.do("GET", "/jobs/"+jobID, nil, &st)
	return st, err
}

// Rows fetches a completed job's merged rows.
func (c *Client) Rows(jobID string) (campaign.Results, error) {
	var rows campaign.Results
	_, err := c.do("GET", "/jobs/"+jobID+"/rows", nil, &rows)
	return rows, err
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	_, err := c.do("GET", "/metrics", nil, &m)
	return m, err
}

// Lease asks for a shard; ok=false means no work is pending.
func (c *Client) Lease(worker string) (LeaseGrant, bool, error) {
	var grant LeaseGrant
	found, err := c.do("POST", "/lease", map[string]string{"worker": worker}, &grant)
	return grant, found && err == nil, err
}

// Heartbeat extends a held lease; renewed=false means the lease was
// lost to expiry.
func (c *Client) Heartbeat(worker, jobID string, shardID int) (bool, error) {
	req := struct {
		Worker string `json:"worker"`
		Job    string `json:"job"`
		Shard  int    `json:"shard"`
	}{worker, jobID, shardID}
	var resp struct {
		Renewed bool `json:"renewed"`
	}
	_, err := c.do("POST", "/heartbeat", req, &resp)
	return resp.Renewed, err
}

// StreamPoint reports one finished grid point of a leased shard — the
// worker-side checkpoint. The server persists the row immediately, so
// a worker crash after this call costs at most the points still
// unstreamed. duplicate=true means the row was already known (another
// worker streamed it first); the call is idempotent.
func (c *Client) StreamPoint(worker, jobID string, shardID int, row campaign.Result) (duplicate bool, err error) {
	req := struct {
		Worker string          `json:"worker"`
		Row    campaign.Result `json:"row"`
	}{worker, row}
	var resp struct {
		Duplicate bool `json:"duplicate"`
	}
	_, err = c.do("POST", fmt.Sprintf("/jobs/%s/shards/%d/points", jobID, shardID), req, &resp)
	return resp.Duplicate, err
}

// Complete delivers a shard's rows; duplicate=true means another
// delivery won (identical rows, by the determinism contract).
func (c *Client) Complete(worker, jobID string, shardID int, rows campaign.Results) (bool, error) {
	req := struct {
		Worker string           `json:"worker"`
		Job    string           `json:"job"`
		Shard  int              `json:"shard"`
		Rows   campaign.Results `json:"rows"`
	}{worker, jobID, shardID, rows}
	var resp struct {
		Duplicate bool `json:"duplicate"`
	}
	_, err := c.do("POST", "/complete", req, &resp)
	return resp.Duplicate, err
}

// WaitDone polls a job until it reports done, returning the final
// status. The context bounds the wait. Transient poll failures — the
// daemon restarting, 5xx blips outlasting even the per-call retry
// budget — are absorbed and polling continues; definitive server
// verdicts (an unknown job, a rejected request) surface immediately.
func (c *Client) WaitDone(ctx context.Context, jobID string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	var last JobStatus
	for {
		st, err := c.Status(jobID)
		switch {
		case err == nil:
			last = st
			if st.State == "done" {
				return st, nil
			}
		default:
			if _, transient := err.(retryableError); !transient {
				return last, err
			}
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(poll):
		}
	}
}
