package sim

import (
	"testing"
)

// TestPersistentTimerReset: a NewTimer/Reset cycle must behave exactly
// like Cancel+At — same firing time, same Pending transitions, and
// re-armable after firing.
func TestPersistentTimerReset(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	tm := NewTimer(func() { fired = append(fired, s.Now()) })
	if tm.Pending() {
		t.Fatal("fresh persistent timer pending")
	}
	s.Reset(tm, 10)
	if !tm.Pending() || tm.At() != 10 {
		t.Fatalf("after Reset: pending=%v at=%v", tm.Pending(), tm.At())
	}
	s.Reset(tm, 25) // re-arm while pending: single event at the new time
	s.Run()
	if len(fired) != 1 || fired[0] != 25 {
		t.Fatalf("fired = %v, want [25]", fired)
	}
	if tm.Pending() {
		t.Fatal("pending after firing")
	}
	s.Reset(tm, 40) // re-arm after firing: callback survives
	s.Run()
	if len(fired) != 2 || fired[1] != 40 {
		t.Fatalf("fired = %v, want [25 40]", fired)
	}
	s.Cancel(tm) // cancelling a fired timer is a no-op
	s.Reset(tm, 50)
	s.Cancel(tm)
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("cancelled arming still fired: %v", fired)
	}
}

// TestResetTieBreaksLikeAt: a Reset consumes one insertion sequence
// number, so simultaneous events interleave with At-scheduled ones in
// call order — the property that keeps optimized modules bit-identical
// to their Cancel+After predecessors.
func TestResetTieBreaksLikeAt(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	a := NewTimer(func() { got = append(got, 1) })
	s.At(5, func() { got = append(got, 0) })
	s.Reset(a, 5)
	s.At(5, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", got)
	}
}

// TestResetPanicsOnOneShot: At/After handles are not re-armable; Reset
// on one would alias the free-list machinery, so it must panic.
func TestResetPanicsOnOneShot(t *testing.T) {
	s := NewScheduler(1)
	tm := s.At(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on an At handle did not panic")
		}
	}()
	s.Reset(tm, 20)
}

// TestPostDelivery: Post events run in (time, post-order) with their
// arguments, interleaved correctly with At events.
func TestPostDelivery(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	rec := func(a any) { got = append(got, a.(int)) }
	s.Post(20, rec, 3)
	s.At(10, func() { got = append(got, 1) })
	s.PostAfter(10, rec, 2) // == time 10, after the At above
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

// TestPostRecyclesTimers: steady-state Post scheduling must reuse
// timers from the free list — zero allocations once warm.
func TestPostRecyclesTimers(t *testing.T) {
	s := NewScheduler(1)
	fn := func(any) {}
	// Warm: create the peak set of pooled timers.
	for i := 0; i < 8; i++ {
		s.PostAfter(Duration(i+1), fn, nil)
	}
	s.Run()
	if n := testing.AllocsPerRun(200, func() {
		s.PostAfter(1, fn, nil)
		s.Step()
	}); n != 0 {
		t.Errorf("warm Post+Step: %v allocs/op, want 0", n)
	}
}

// TestPostReleasesArgs: a fired Post event must not retain its
// argument through the free list (the scheduler would otherwise pin
// dead packets).
func TestPostReleasesArgs(t *testing.T) {
	s := NewScheduler(1)
	s.Post(1, func(any) {}, &struct{ big [64]byte }{})
	s.Run()
	for _, tm := range s.free {
		if tm.arg != nil || tm.fnArg != nil || tm.fn != nil {
			t.Fatal("recycled timer retains callback state")
		}
	}
	if len(s.free) != 1 {
		t.Fatalf("free list has %d timers, want 1", len(s.free))
	}
}

// TestPostSameTickRearmNoAlias: Step returns a fired Post timer to the
// free list before invoking its callback, so a callback that re-arms a
// persistent timer for the same tick runs while that recycled Timer is
// already reusable. The persistent handle must stay distinct — the
// re-armed event fires exactly once, in insertion order, and never
// through the recycled pooled Timer.
func TestPostSameTickRearmNoAlias(t *testing.T) {
	for _, bk := range []struct {
		name string
		b    Backend
	}{{"wheel", BackendWheel}, {"heap", BackendHeap}} {
		t.Run(bk.name, func(t *testing.T) {
			s := NewSchedulerBackend(1, bk.b)
			var got []string
			p := NewTimer(func() { got = append(got, "persist") })
			rearm := func(any) {
				got = append(got, "post")
				s.Reset(p, s.Now()) // zero-delay re-arm at the same tick
				if !p.Pending() || p.At() != s.Now() {
					t.Errorf("same-tick Reset: pending=%v at=%v now=%v",
						p.Pending(), p.At(), s.Now())
				}
			}
			for i := 0; i < 50; i++ {
				s.Post(Time(10*(i+1)), rearm, nil)
			}
			s.Run()
			if len(got) != 100 {
				t.Fatalf("fired %d events, want 100", len(got))
			}
			for i := 0; i < 100; i += 2 {
				if got[i] != "post" || got[i+1] != "persist" {
					t.Fatalf("order at %d: %v", i, got[i:i+2])
				}
			}
			if p.Pending() {
				t.Fatal("persistent timer still pending after drain")
			}
			for _, tm := range s.free {
				if tm == p {
					t.Fatal("persistent timer leaked into the free list")
				}
			}
		})
	}
}

// TestStepBudget guards the scheduler's own per-event overhead: once a
// mixed workload is warm, executing one event allocates nothing inside
// the engine (modules own whatever their callbacks allocate).
func TestStepBudget(t *testing.T) {
	s := NewScheduler(1)
	var tick func(any)
	tick = func(any) { s.PostAfter(3, tick, nil) }
	tm := NewTimer(func() {})
	s.PostAfter(1, tick, nil)
	for i := 0; i < 100; i++ { // warm heap capacity and the free list
		s.Step()
	}
	if n := testing.AllocsPerRun(200, func() {
		s.Reset(tm, s.Now()+2)
		s.Cancel(tm)
		s.Step()
	}); n != 0 {
		t.Errorf("steady-state Reset+Cancel+Step: %v allocs/op, want 0", n)
	}
}
