package sim

// heapScheduler is the binary min-heap event queue — the engine's
// original backend, retained verbatim behind the eventQueue interface
// as the differential-testing oracle (differential_test.go,
// FuzzSchedulerOrder) and as the reference point for the N-scaling
// benchmarks. It is a hand-rolled heap rather than container/heap: the
// comparator is a strict total order on (at, seq), so pop order — the
// only observable property — is identical, while the direct
// implementation avoids the interface-call and indirect Less/Swap
// overhead that showed up as ~15% of campaign CPU time.
type heapScheduler struct {
	events []*Timer // binary min-heap on (at, seq)
}

func (h *heapScheduler) len() int  { return len(h.events) }
func (h *heapScheduler) min() Time { return h.events[0].at }

func (h *heapScheduler) less(i, j int) bool {
	a, b := h.events[i], h.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *heapScheduler) swap(i, j int) {
	e := h.events
	e[i], e[j] = e[j], e[i]
	e[i].index = i
	e[j].index = j
}

func (h *heapScheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below i, reporting whether i moved.
func (h *heapScheduler) siftDown(i int) bool {
	start := i
	n := len(h.events)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h.swap(i, min)
		i = min
	}
	return i > start
}

func (h *heapScheduler) push(t *Timer) {
	t.index = len(h.events)
	h.events = append(h.events, t)
	h.siftUp(t.index)
}

func (h *heapScheduler) popMin() *Timer {
	e := h.events
	t := e[0]
	last := len(e) - 1
	e[0] = e[last]
	e[0].index = 0
	e[last] = nil
	h.events = e[:last]
	if last > 0 {
		h.siftDown(0)
	}
	t.index = -1
	return t
}

func (h *heapScheduler) remove(t *Timer) {
	e := h.events
	i := t.index
	last := len(e) - 1
	if i != last {
		e[i] = e[last]
		e[i].index = i
	}
	e[last] = nil
	h.events = e[:last]
	if i != last {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	t.index = -1
}
