package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOTies(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order got[%d]=%d, want %d (simultaneous events must run FIFO)", i, v, i)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	var rec func()
	n := 0
	rec = func() {
		got = append(got, s.Now())
		n++
		if n < 5 {
			s.After(7, rec)
		}
	}
	s.After(7, rec)
	s.Run()
	for i, at := range got {
		if want := Time(7 * (i + 1)); at != want {
			t.Errorf("event %d at %v, want %v", i, at, want)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(10, func() { fired = true })
	s.Cancel(tm)
	s.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if !tm.Cancelled() {
		t.Error("timer does not report cancelled")
	}
	// Cancelling again must be a no-op.
	s.Cancel(tm)
	s.Cancel(nil)
}

func TestSchedulerCancelOneOfMany(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	timers := make([]*Timer, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers[i] = s.At(Time(i*10), func() { got = append(got, i) })
	}
	s.Cancel(timers[3])
	s.Cancel(timers[7])
	s.Run()
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled timer %d fired", v)
		}
	}
	if len(got) != 8 {
		t.Fatalf("fired %d, want 8", len(got))
	}
}

func TestSchedulerReschedule(t *testing.T) {
	s := NewScheduler(1)
	var at Time = -1
	tm := s.After(10, func() { at = s.Now() })
	tm = s.Reschedule(tm, 50, func() { at = s.Now() })
	s.Run()
	if at != 50 {
		t.Errorf("rescheduled timer fired at %v, want 50", at)
	}
	_ = tm
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Errorf("Now = %v, want 25 (clock advances to limit)", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := NewScheduler(seed)
		var trace []Time
		var tick func()
		n := 0
		tick = func() {
			trace = append(trace, s.Now())
			n++
			if n < 200 {
				s.After(Duration(1+s.Rand().Intn(100)), tick)
			}
		}
		s.After(1, tick)
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces; RNG not wired through")
	}
}

func TestForkRandIndependence(t *testing.T) {
	s1 := NewScheduler(7)
	s2 := NewScheduler(7)
	a := s1.ForkRand()
	// Perturb s2's primary stream before forking: fork must come from the
	// primary stream deterministically, so this changes the fork.
	s2.Rand().Int63()
	b := s2.ForkRand()
	if a.Int63() == b.Int63() {
		t.Error("forked streams unexpectedly identical after divergent draws")
	}
}

// Property: for any set of event times, execution order is the sorted
// order of times (stable for duplicates).
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := NewScheduler(1)
		var got []Time
		for _, at := range times {
			at := Time(at)
			s.At(at, func() { got = append(got, at) })
		}
		s.Run()
		want := make([]Time, len(times))
		for i, v := range times {
			want[i] = Time(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the
// complement to fire.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(times []uint16, mask []bool) bool {
		s := NewScheduler(1)
		fired := make(map[int]bool)
		timers := make([]*Timer, len(times))
		for i, at := range times {
			i := i
			timers[i] = s.At(Time(at), func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range timers {
			if i < len(mask) && mask[i] {
				s.Cancel(timers[i])
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range times {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatal("unit constants wrong")
	}
	tt := Time(1500 * Microsecond)
	if tt.Seconds() != 0.0015 {
		t.Errorf("Seconds = %v", tt.Seconds())
	}
	if tt.Micros() != 1500 {
		t.Errorf("Micros = %v", tt.Micros())
	}
	if tt.Millis() != 1.5 {
		t.Errorf("Millis = %v", tt.Millis())
	}
	if got := Time(2 * Second).String(); got != "2.000000s" {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(10, tick)
		}
	}
	s.After(10, tick)
	s.Run()
}

func BenchmarkSchedulerFanout(b *testing.B) {
	b.ReportAllocs()
	s := NewScheduler(1)
	for i := 0; i < b.N; i++ {
		s.At(Time(i), func() {})
	}
	b.ResetTimer()
	s.Run()
}
