// Differential scheduler harness: the binary heap (the engine's
// original backend) and the timing wheel are driven from one recorded
// workload — randomized arm/cancel/Reset/Post programs and event
// traces captured from real ht150 networks — and must produce
// identical fire order, handle states, and clocks. The heap is the
// oracle: any divergence is a wheel ordering bug.
package sim_test

import (
	"math/rand"
	"testing"

	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
)

// Op kinds for the recorded scheduler programs. A program is
// interpreted identically against each backend; all randomness is
// pre-drawn into the op stream so the two executions are replicas.
const (
	opAt = iota
	opAfter
	opPost
	opPostAfter
	opCancel
	opCancelPersist
	opReset
	opStep
	opRunUntil
	numOps
)

type op struct {
	kind  int
	idx   int
	delta sim.Duration
	id    int
}

// Interpreter sizing: rings of one-shot handles and persistent timers.
const (
	nHandles = 128
	nPersist = 16
)

type rec struct {
	at sim.Time
	id int
}

type progResult struct {
	log     []rec
	now     sim.Time
	fired   uint64
	handles [nHandles]bool // Pending state at end of program
	persist [nPersist]bool
}

// runProgram interprets ops against a fresh scheduler with the given
// backend and returns everything observable: the full fire log (time,
// op id), periodic pending-count snapshots, and final handle states.
func runProgram(b sim.Backend, ops []op) progResult {
	s := sim.NewSchedulerBackend(1, b)
	var (
		log     []rec
		handles [nHandles]*sim.Timer
		persist [nPersist]*sim.Timer
		fires   [nPersist]int
	)
	// Overflow-safe absolute target: clamping wrapped sums to now keeps
	// fuzz inputs with huge accumulated deltas valid and deterministic.
	target := func(d sim.Duration) sim.Time {
		at := s.Now() + d
		if at < s.Now() {
			return s.Now()
		}
		return at
	}
	for i := range persist {
		i := i
		persist[i] = sim.NewTimer(func() {
			log = append(log, rec{s.Now(), -(i + 1)})
			fires[i]++
			if fires[i]%3 == 1 {
				// Deterministic bounded re-arm chain, including
				// zero-delay re-arms when the modulus lands on 0.
				d := sim.Duration(fires[i] * 37 * (i + 1) % 5000)
				s.Reset(persist[i], target(d))
			}
		})
	}
	postFn := func(a any) {
		id := a.(int)
		log = append(log, rec{s.Now(), id})
		if id%5 == 0 {
			// The pooled Timer that carried this event is already back
			// on the free list; re-arming a persistent timer for the
			// same tick must not alias it.
			s.Reset(persist[id%nPersist], s.Now())
		}
	}
	for _, o := range ops {
		switch o.kind {
		case opAt:
			id := o.id
			handles[o.idx%nHandles] = s.At(target(o.delta), func() {
				log = append(log, rec{s.Now(), id})
			})
		case opAfter:
			id := o.id
			handles[o.idx%nHandles] = s.After(target(o.delta)-s.Now(), func() {
				log = append(log, rec{s.Now(), id})
			})
		case opPost:
			s.Post(target(o.delta), postFn, o.id)
		case opPostAfter:
			s.PostAfter(target(o.delta)-s.Now(), postFn, o.id)
		case opCancel:
			s.Cancel(handles[o.idx%nHandles]) // nil-safe
		case opCancelPersist:
			s.Cancel(persist[o.idx%nPersist])
		case opReset:
			s.Reset(persist[o.idx%nPersist], target(o.delta))
		case opStep:
			for i := 0; i <= o.idx%4; i++ {
				s.Step()
			}
			log = append(log, rec{s.Now(), 1_000_000 + s.Pending()})
		case opRunUntil:
			s.RunUntil(target(o.delta % 100_000))
			log = append(log, rec{s.Now(), 2_000_000 + s.Pending()})
		}
	}
	for i := 0; i < 20_000_000 && s.Step(); i++ {
	}
	res := progResult{log: log, now: s.Now(), fired: s.EventsFired()}
	for i, h := range handles {
		res.handles[i] = h != nil && h.Pending()
	}
	for i, p := range persist {
		res.persist[i] = p.Pending()
	}
	return res
}

func compareResults(t *testing.T, heap, wheel progResult) {
	t.Helper()
	n := len(heap.log)
	if len(wheel.log) != n {
		t.Errorf("fire log length: heap %d, wheel %d", n, len(wheel.log))
		if len(wheel.log) < n {
			n = len(wheel.log)
		}
	}
	for i := 0; i < n; i++ {
		if heap.log[i] != wheel.log[i] {
			t.Fatalf("fire log diverges at %d: heap %+v, wheel %+v",
				i, heap.log[i], wheel.log[i])
		}
	}
	if heap.now != wheel.now {
		t.Errorf("final clock: heap %v, wheel %v", heap.now, wheel.now)
	}
	if heap.fired != wheel.fired {
		t.Errorf("events fired: heap %d, wheel %d", heap.fired, wheel.fired)
	}
	if heap.handles != wheel.handles {
		t.Errorf("handle Pending states diverge:\nheap  %v\nwheel %v",
			heap.handles, wheel.handles)
	}
	if heap.persist != wheel.persist {
		t.Errorf("persistent timer states diverge:\nheap  %v\nwheel %v",
			heap.persist, wheel.persist)
	}
}

// randDelta draws from a mix spanning every wheel level: same-tick
// collisions (0), MAC-timescale deltas, and jumps out to level 6.
func randDelta(r *rand.Rand) sim.Duration {
	switch r.Intn(8) {
	case 0:
		return 0
	case 1, 2, 3:
		return sim.Duration(r.Intn(2000))
	case 4:
		return sim.Duration(r.Int63n(1 << 21))
	case 5:
		return sim.Duration(r.Int63n(1 << 35))
	case 6:
		return sim.Duration(r.Int63n(1 << 45))
	default:
		return sim.Duration(r.Int63n(1 << 55))
	}
}

func randOps(seed int64, n int) []op {
	r := rand.New(rand.NewSource(seed))
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{kind: r.Intn(numOps), idx: r.Intn(1 << 16), delta: randDelta(r), id: i}
	}
	return ops
}

// TestDifferentialRandomOps drives both backends through one million
// randomized operations per seed and requires byte-identical fire
// logs, clocks, and handle states.
func TestDifferentialRandomOps(t *testing.T) {
	const opsPerRun = 1_000_000
	for _, seed := range []int64{1, 2, 42} {
		ops := randOps(seed, opsPerRun)
		heap := runProgram(sim.BackendHeap, ops)
		wheel := runProgram(sim.BackendWheel, ops)
		if len(heap.log) < opsPerRun/4 {
			t.Fatalf("seed %d: degenerate program, only %d fires", seed, len(heap.log))
		}
		compareResults(t, heap, wheel)
	}
}

// networkTrace runs a real ht150 network (aggregated 802.11n, HACK
// MORE-DATA, 3 TCP downloads) on the given backend and records the
// virtual time of every executed event.
func networkTrace(backend sim.Backend, loss float64, maxEvents int) ([]sim.Time, uint64) {
	opts := []scenario.Option{
		scenario.With80211n(),
		scenario.WithClients(3),
		scenario.WithMode(hack.ModeMoreData),
	}
	if loss > 0 {
		opts = append(opts, scenario.WithUniformLoss(loss))
	}
	cfg := scenario.New(opts...)
	cfg.SchedulerBackend = backend
	n := node.New(cfg)
	for ci := 0; ci < 3; ci++ {
		n.StartDownload(ci, 0, sim.Duration(ci)*sim.Millisecond)
	}
	trace := make([]sim.Time, 0, maxEvents)
	for len(trace) < maxEvents && n.Sched.Step() {
		trace = append(trace, n.Sched.Now())
	}
	return trace, n.Sched.EventsFired()
}

// TestDifferentialNetworkTrace captures the event-time trace of a real
// simulated network — the workload whose timer churn (NAV resets,
// response deadlines, block-ack flushes) the wheel is tuned for — and
// requires the wheel to replay the heap's trace exactly, lossless and
// at 5% uniform loss.
func TestDifferentialNetworkTrace(t *testing.T) {
	const maxEvents = 200_000
	for _, tc := range []struct {
		name string
		loss float64
	}{{"lossless", 0}, {"loss5pct", 0.05}} {
		t.Run(tc.name, func(t *testing.T) {
			heap, heapFired := networkTrace(sim.BackendHeap, tc.loss, maxEvents)
			wheel, wheelFired := networkTrace(sim.BackendWheel, tc.loss, maxEvents)
			if len(heap) != len(wheel) {
				t.Fatalf("trace length: heap %d, wheel %d", len(heap), len(wheel))
			}
			if len(heap) < maxEvents/2 {
				t.Fatalf("degenerate trace: only %d events", len(heap))
			}
			for i := range heap {
				if heap[i] != wheel[i] {
					t.Fatalf("trace diverges at event %d: heap %v, wheel %v",
						i, heap[i], wheel[i])
				}
			}
			if heapFired != wheelFired {
				t.Fatalf("events fired: heap %d, wheel %d", heapFired, wheelFired)
			}
		})
	}
}

// opsFromBytes decodes a fuzz input into an op program: 4 bytes per op
// (kind+scale, index, 16-bit delta mantissa), with the scale shifting
// deltas out to ~2^60 so every wheel level is reachable.
func opsFromBytes(data []byte) []op {
	var ops []op
	for i := 0; i+3 < len(data); i += 4 {
		shift := uint(data[i]) / numOps % 45
		ops = append(ops, op{
			kind:  int(data[i]) % numOps,
			idx:   int(data[i+1]),
			delta: sim.Duration((int64(data[i+2]) | int64(data[i+3])<<8) << shift),
			id:    i,
		})
	}
	return ops
}

// FuzzSchedulerOrder feeds arbitrary op programs — same-tick
// collisions, zero-delay re-arms, cancel/Reset storms — to both
// backends and requires identical pop order and handle states. The
// seed corpus lives in testdata/fuzz/FuzzSchedulerOrder.
func FuzzSchedulerOrder(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 7, 3, 0, 0})             // At(now), then steps
	f.Add([]byte{2, 0, 0, 0, 2, 5, 0, 0, 7, 0, 0, 0}) // same-tick Posts
	f.Add([]byte{6, 1, 1, 0, 6, 1, 0, 0, 7, 1, 0, 0}) // Reset churn, zero-delay
	seed := randOps(7, 64)
	raw := make([]byte, 0, len(seed)*4)
	for _, o := range seed {
		raw = append(raw, byte(o.kind), byte(o.idx), byte(o.delta), byte(o.delta>>8))
	}
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		ops := opsFromBytes(data)
		compareResults(t, runProgram(sim.BackendHeap, ops), runProgram(sim.BackendWheel, ops))
	})
}
