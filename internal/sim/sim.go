// Package sim provides a deterministic discrete-event simulation engine.
//
// All protocol modules in this repository are driven by a single
// Scheduler: they schedule closures at absolute or relative virtual
// times, and the Scheduler runs them in (time, insertion-order) order.
// Determinism is guaranteed for a fixed seed: the engine itself never
// consults wall-clock time or global randomness, and ties between events
// scheduled for the same instant are broken by insertion order.
//
// # Scheduling APIs and allocation behaviour
//
// The engine exposes three ways to schedule work, trading convenience
// against per-event allocation cost on hot paths:
//
//   - At/After return a *Timer handle the caller may Cancel later.
//     Each call allocates a fresh Timer; handles stay valid (and inert)
//     forever, so this is the safe general-purpose path.
//   - Post/PostAfter are fire-and-forget: no handle is returned, and
//     the internal Timer is recycled through a free list once the event
//     fires. The callback takes an opaque argument supplied at post
//     time, so call sites can keep one persistent func value per site
//     and pass the varying state (a packet, a transmission) as the
//     argument — zero allocations per event.
//   - NewTimer/Reset implement persistent timers: a module that arms,
//     cancels, and re-arms the same logical timeout (a retransmission
//     timer, an ACK-response deadline) allocates its Timer and callback
//     once and Resets it for every subsequent arming. A persistent
//     Timer is never recycled, so its handle is always safe to Cancel
//     or query.
//
// All three paths share one event queue and one insertion-sequence
// counter, so mixing them cannot perturb simultaneous-event ordering:
// a Reset or Post consumes exactly one sequence number, the same as
// the At call it replaces.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation. Nanosecond granularity comfortably represents every
// 802.11 interval we model (the shortest, a 400 ns guard interval, is
// 400 ticks).
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants so call sites
// read naturally (sim.Microsecond, 4*sim.Millisecond, ...).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision, which
// is the most readable unit at 802.11 timescales.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Timer is a handle to a scheduled event. The zero Timer is invalid;
// timers are created by Scheduler.At / Scheduler.After (one-shot
// handles) or NewTimer (persistent, re-armable via Scheduler.Reset).
type Timer struct {
	at    Time
	seq   uint64
	fn    func()
	fnArg func(any) // set for Post events; fn is nil then
	arg   any
	index int // heap index; -1 when not pending
	// persistent marks caller-owned timers (NewTimer): kept out of the
	// free list, and their callback survives firing so Reset can re-arm
	// without re-supplying it.
	persistent bool
	// pooled marks scheduler-owned fire-and-forget timers (Post): no
	// caller can hold a handle, so they recycle through the free list.
	pooled bool
}

// Cancelled reports whether the timer is not currently pending (never
// scheduled, already fired, or stopped).
func (t *Timer) Cancelled() bool { return t.index < 0 }

// Pending reports whether the timer is scheduled and has not fired.
func (t *Timer) Pending() bool { return t.index >= 0 }

// At returns the virtual time the timer is (or was last) scheduled for.
func (t *Timer) At() Time { return t.at }

// Scheduler is the discrete-event core. It is not safe for concurrent
// use; simulations are single-goroutine by design (determinism).
type Scheduler struct {
	now    Time
	seq    uint64
	events []*Timer // binary min-heap on (at, seq)
	free   []*Timer // recycled pooled timers
	rng    *rand.Rand
	fired  uint64 // total events executed, for diagnostics
}

// NewScheduler returns a scheduler whose random stream is seeded with
// seed. Two schedulers with equal seeds and equal event programs
// produce identical executions.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random stream. Modules
// must draw all randomness from here (or from streams forked via
// ForkRand) to preserve reproducibility.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// ForkRand derives an independent deterministic stream. Use one stream
// per stochastic subsystem so adding draws in one module does not
// perturb another.
func (s *Scheduler) ForkRand() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// EventsFired returns the number of events executed so far.
func (s *Scheduler) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.events) }

// The event queue is a hand-rolled binary min-heap rather than
// container/heap: the comparator is a strict total order on (at, seq),
// so pop order — the only observable property — is identical, while
// the direct implementation avoids the interface-call and indirect
// Less/Swap overhead that showed up as ~15% of campaign CPU time.

func (s *Scheduler) less(i, j int) bool {
	a, b := s.events[i], s.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) swap(i, j int) {
	h := s.events
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below i, reporting whether i moved.
func (s *Scheduler) siftDown(i int) bool {
	start := i
	n := len(s.events)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			break
		}
		s.swap(i, min)
		i = min
	}
	return i > start
}

func (s *Scheduler) push(t *Timer) {
	t.index = len(s.events)
	s.events = append(s.events, t)
	s.siftUp(t.index)
}

func (s *Scheduler) popMin() *Timer {
	h := s.events
	t := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].index = 0
	h[last] = nil
	s.events = h[:last]
	if last > 0 {
		s.siftDown(0)
	}
	t.index = -1
	return t
}

func (s *Scheduler) remove(i int) {
	h := s.events
	t := h[i]
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].index = i
	}
	h[last] = nil
	s.events = h[:last]
	if i != last {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	t.index = -1
}

// schedule enqueues t at the absolute time at, assigning the next
// insertion sequence number (the tie-break for simultaneous events).
func (s *Scheduler) schedule(t *Timer, at Time) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	t.at = at
	t.seq = s.seq
	s.seq++
	s.push(t)
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering
// time would invalidate every simulation result.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	t := &Timer{fn: fn, index: -1}
	s.schedule(t, at)
	return t
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Post schedules the fire-and-forget event fn(arg) at absolute time
// at. No handle is returned — the event cannot be cancelled — which
// lets the scheduler recycle the internal timer through a free list.
// Keep fn persistent (one func value per call site) and pass the
// per-event state through arg for a zero-allocation hot path.
func (s *Scheduler) Post(at Time, fn func(any), arg any) {
	var t *Timer
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		t = &Timer{pooled: true, index: -1}
	}
	t.fnArg = fn
	t.arg = arg
	s.schedule(t, at)
}

// PostAfter is Post at d from now.
func (s *Scheduler) PostAfter(d Duration, fn func(any), arg any) {
	s.Post(s.now+d, fn, arg)
}

// NewTimer returns an unscheduled persistent timer owned by the
// caller: arm it with Scheduler.Reset, stop it with Scheduler.Cancel,
// and re-arm it as often as needed. The callback is fixed at
// construction (mutable state belongs in the callback's receiver), the
// handle is never recycled, and no allocation happens per arming — the
// pattern every recurring protocol timeout in this repository uses.
func NewTimer(fn func()) *Timer {
	return &Timer{fn: fn, persistent: true, index: -1}
}

// Reset (re)schedules the persistent timer t at absolute time at,
// cancelling any pending arming first. It is equivalent to Cancel
// followed by At with the construction-time callback: the rescheduled
// event receives a fresh insertion sequence number, so
// simultaneous-event ordering matches what a fresh At call would
// produce. Reset panics on non-persistent timers — At/After handles
// are not re-armable.
func (s *Scheduler) Reset(t *Timer, at Time) {
	if !t.persistent {
		panic("sim: Reset on a non-persistent timer (use NewTimer)")
	}
	if t.index >= 0 {
		s.remove(t.index)
	}
	s.schedule(t, at)
}

// Cancel stops a pending timer. Cancelling an already-fired or
// already-cancelled timer is a no-op, so callers can cancel
// unconditionally.
func (s *Scheduler) Cancel(t *Timer) {
	if t == nil || t.index < 0 {
		return
	}
	s.remove(t.index)
	s.release(t)
}

// Reschedule cancels t (if pending) and schedules fn at the new time,
// returning the replacement timer.
func (s *Scheduler) Reschedule(t *Timer, d Duration, fn func()) *Timer {
	s.Cancel(t)
	return s.After(d, fn)
}

// release drops a finished timer's callback references (so the
// scheduler does not retain dead packets) and returns pooled timers to
// the free list. Persistent timers keep their callback for the next
// Reset.
func (s *Scheduler) release(t *Timer) {
	if t.persistent {
		return
	}
	t.fn = nil
	t.fnArg = nil
	t.arg = nil
	if t.pooled {
		s.free = append(s.free, t)
	}
}

// Step executes the single earliest pending event. It reports false if
// no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	t := s.popMin()
	s.now = t.at
	s.fired++
	if t.fnArg != nil {
		fn, arg := t.fnArg, t.arg
		s.release(t)
		fn(arg)
	} else {
		fn := t.fn
		s.release(t)
		fn()
	}
	return true
}

// RunUntil executes events until the queue is empty or the next event
// is later than limit. The clock is left at the time of the last
// executed event, or advanced to limit if limit is reached.
func (s *Scheduler) RunUntil(limit Time) {
	for len(s.events) > 0 && s.events[0].at <= limit {
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// Run executes events until none remain. Protocol stacks with
// keepalive-style recurring timers never drain, so most callers want
// RunUntil; Run exists for self-terminating test programs.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
