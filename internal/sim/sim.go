// Package sim provides a deterministic discrete-event simulation engine.
//
// All protocol modules in this repository are driven by a single
// Scheduler: they schedule closures at absolute or relative virtual
// times, and the Scheduler runs them in (time, insertion-order) order.
// Determinism is guaranteed for a fixed seed: the engine itself never
// consults wall-clock time or global randomness, and ties between events
// scheduled for the same instant are broken by insertion order.
//
// # Event queue backends
//
// The Scheduler's event queue has two interchangeable backends selected
// by NewSchedulerBackend; both implement the identical strict (at, seq)
// total order, so pop order — the only observable property — is the
// same for any program:
//
//   - BackendWheel (the default) is a hierarchical timing wheel: 7
//     levels of 1024 slots at 1 ns tick granularity, so level l spans
//     deltas in [2^(10l), 2^(10(l+1))) and the hierarchy covers the full
//     non-negative int64 time range with no unsorted overflow list.
//     Arming, cancelling, and re-arming a timer are all O(1) — the
//     operations that dominate MAC workloads (NAV resets, response
//     timeouts, block-ack flush churn) — independent of how many other
//     events are pending. When the cursor advances past a level
//     boundary, the slot covering the new cursor cascades: its timers
//     re-place into finer levels by their remaining delta. Cascading
//     moves whole buckets without reordering and every bucket is
//     resolved by an (at, seq) scan at pop time, so insertion-sequence
//     tie-breaks survive any cascade path and executions are
//     byte-identical to the heap's.
//   - BackendHeap is the prior binary min-heap, retained as the
//     differential-testing oracle and for the N-scaling comparison
//     benchmarks. Its per-arming cost is O(log n) in pending events.
//
// # Scheduling APIs and allocation behaviour
//
// The engine exposes three ways to schedule work, trading convenience
// against per-event allocation cost on hot paths:
//
//   - At/After return a *Timer handle the caller may Cancel later.
//     Each call allocates a fresh Timer; handles stay valid (and inert)
//     forever, so this is the safe general-purpose path.
//   - Post/PostAfter are fire-and-forget: no handle is returned, and
//     the internal Timer is recycled through a free list once the event
//     fires. The callback takes an opaque argument supplied at post
//     time, so call sites can keep one persistent func value per site
//     and pass the varying state (a packet, a transmission) as the
//     argument — zero allocations per event.
//   - NewTimer/Reset implement persistent timers: a module that arms,
//     cancels, and re-arms the same logical timeout (a retransmission
//     timer, an ACK-response deadline) allocates its Timer and callback
//     once and Resets it for every subsequent arming. A persistent
//     Timer is never recycled, so its handle is always safe to Cancel
//     or query.
//
// All three paths share one event queue and one insertion-sequence
// counter, so mixing them cannot perturb simultaneous-event ordering:
// a Reset or Post consumes exactly one sequence number, the same as
// the At call it replaces.
//
// # Determinism contract for observers
//
// Observability layers (internal/trace) hook the protocol modules via
// probe callbacks. The contract that keeps golden baselines
// byte-identical with tracing on or off: observers are invoked
// synchronously from already-scheduled events and must never schedule
// events, consume RNG draws (ForkRand order is part of a run's
// identity), or mutate protocol state. Probe sites therefore live
// outside the scheduler's hot decisions — a nil observer costs one
// pointer check and nothing else.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation. Nanosecond granularity comfortably represents every
// 802.11 interval we model (the shortest, a 400 ns guard interval, is
// 400 ticks).
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants so call sites
// read naturally (sim.Microsecond, 4*sim.Millisecond, ...).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision, which
// is the most readable unit at 802.11 timescales.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Timer is a handle to a scheduled event. The zero Timer is invalid;
// timers are created by Scheduler.At / Scheduler.After (one-shot
// handles) or NewTimer (persistent, re-armable via Scheduler.Reset).
type Timer struct {
	at    Time
	seq   uint64
	fn    func()
	fnArg func(any) // set for Post events; fn is nil then
	arg   any
	// index is the pending marker shared by both queue backends: the
	// heap stores the timer's heap position, the wheel stores 0 while
	// linked into a bucket; both store -1 when not pending.
	index int
	// Intrusive bucket list links + placement, used only by the wheel
	// backend. Keeping them on the Timer makes every wheel operation
	// allocation-free.
	wnext  *Timer
	wprev  *Timer
	wlevel int8
	wslot  int16
	// persistent marks caller-owned timers (NewTimer): kept out of the
	// free list, and their callback survives firing so Reset can re-arm
	// without re-supplying it.
	persistent bool
	// pooled marks scheduler-owned fire-and-forget timers (Post): no
	// caller can hold a handle, so they recycle through the free list.
	pooled bool
}

// Cancelled reports whether the timer is not currently pending (never
// scheduled, already fired, or stopped).
func (t *Timer) Cancelled() bool { return t.index < 0 }

// Pending reports whether the timer is scheduled and has not fired.
func (t *Timer) Pending() bool { return t.index >= 0 }

// At returns the virtual time the timer is (or was last) scheduled for.
func (t *Timer) At() Time { return t.at }

// eventQueue is the pluggable priority-queue backend behind a
// Scheduler. Both implementations maintain the strict (at, seq) total
// order; remove takes the timer itself so backends can use either a
// positional index (heap) or intrusive links (wheel).
type eventQueue interface {
	len() int
	push(t *Timer)
	remove(t *Timer)
	popMin() *Timer
	min() Time // undefined when len() == 0
}

// Backend selects a Scheduler's event-queue implementation. The zero
// value is the timing wheel, which every production path uses; the heap
// exists as the differential-test oracle and benchmark reference.
type Backend int

// Available event-queue backends.
const (
	// BackendWheel is the hierarchical timing wheel (the default).
	BackendWheel Backend = iota
	// BackendHeap is the prior binary min-heap, retained as the
	// differential-testing oracle.
	BackendHeap
)

// Scheduler is the discrete-event core. It is not safe for concurrent
// use; simulations are single-goroutine by design (determinism).
type Scheduler struct {
	now   Time
	seq   uint64
	q     eventQueue
	free  []*Timer // recycled pooled timers
	rng   *rand.Rand
	fired uint64 // total events executed, for diagnostics
}

// NewScheduler returns a scheduler whose random stream is seeded with
// seed, using the default timing-wheel event queue. Two schedulers with
// equal seeds and equal event programs produce identical executions.
func NewScheduler(seed int64) *Scheduler {
	return NewSchedulerBackend(seed, BackendWheel)
}

// NewSchedulerBackend is NewScheduler with an explicit event-queue
// backend. Executions are byte-identical across backends; the choice
// only affects per-operation cost.
func NewSchedulerBackend(seed int64, b Backend) *Scheduler {
	s := &Scheduler{rng: rand.New(rand.NewSource(seed))}
	if b == BackendHeap {
		s.q = &heapScheduler{}
	} else {
		s.q = newWheelScheduler()
	}
	return s
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random stream. Modules
// must draw all randomness from here (or from streams forked via
// ForkRand) to preserve reproducibility.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// ForkRand derives an independent deterministic stream. Use one stream
// per stochastic subsystem so adding draws in one module does not
// perturb another.
func (s *Scheduler) ForkRand() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// EventsFired returns the number of events executed so far.
func (s *Scheduler) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return s.q.len() }

// schedule enqueues t at the absolute time at, assigning the next
// insertion sequence number (the tie-break for simultaneous events).
func (s *Scheduler) schedule(t *Timer, at Time) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	t.at = at
	t.seq = s.seq
	s.seq++
	s.q.push(t)
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering
// time would invalidate every simulation result.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	t := &Timer{fn: fn, index: -1}
	s.schedule(t, at)
	return t
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Post schedules the fire-and-forget event fn(arg) at absolute time
// at. No handle is returned — the event cannot be cancelled — which
// lets the scheduler recycle the internal timer through a free list.
// Keep fn persistent (one func value per call site) and pass the
// per-event state through arg for a zero-allocation hot path.
func (s *Scheduler) Post(at Time, fn func(any), arg any) {
	var t *Timer
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		t = &Timer{pooled: true, index: -1}
	}
	t.fnArg = fn
	t.arg = arg
	s.schedule(t, at)
}

// PostAfter is Post at d from now.
func (s *Scheduler) PostAfter(d Duration, fn func(any), arg any) {
	s.Post(s.now+d, fn, arg)
}

// NewTimer returns an unscheduled persistent timer owned by the
// caller: arm it with Scheduler.Reset, stop it with Scheduler.Cancel,
// and re-arm it as often as needed. The callback is fixed at
// construction (mutable state belongs in the callback's receiver), the
// handle is never recycled, and no allocation happens per arming — the
// pattern every recurring protocol timeout in this repository uses.
func NewTimer(fn func()) *Timer {
	return &Timer{fn: fn, persistent: true, index: -1}
}

// Reset (re)schedules the persistent timer t at absolute time at,
// cancelling any pending arming first. It is equivalent to Cancel
// followed by At with the construction-time callback: the rescheduled
// event receives a fresh insertion sequence number, so
// simultaneous-event ordering matches what a fresh At call would
// produce. Reset panics on non-persistent timers — At/After handles
// are not re-armable.
func (s *Scheduler) Reset(t *Timer, at Time) {
	if !t.persistent {
		panic("sim: Reset on a non-persistent timer (use NewTimer)")
	}
	if t.index >= 0 {
		s.q.remove(t)
	}
	s.schedule(t, at)
}

// Cancel stops a pending timer. Cancelling an already-fired or
// already-cancelled timer is a no-op, so callers can cancel
// unconditionally.
func (s *Scheduler) Cancel(t *Timer) {
	if t == nil || t.index < 0 {
		return
	}
	s.q.remove(t)
	s.release(t)
}

// Reschedule cancels t (if pending) and schedules fn at the new time,
// returning the replacement timer.
func (s *Scheduler) Reschedule(t *Timer, d Duration, fn func()) *Timer {
	s.Cancel(t)
	return s.After(d, fn)
}

// release drops a finished timer's callback references (so the
// scheduler does not retain dead packets) and returns pooled timers to
// the free list. Persistent timers keep their callback for the next
// Reset.
func (s *Scheduler) release(t *Timer) {
	if t.persistent {
		return
	}
	t.fn = nil
	t.fnArg = nil
	t.arg = nil
	if t.pooled {
		s.free = append(s.free, t)
	}
}

// Step executes the single earliest pending event. It reports false if
// no events remain.
func (s *Scheduler) Step() bool {
	if s.q.len() == 0 {
		return false
	}
	t := s.q.popMin()
	s.now = t.at
	s.fired++
	if t.fnArg != nil {
		fn, arg := t.fnArg, t.arg
		s.release(t)
		fn(arg)
	} else {
		fn := t.fn
		s.release(t)
		fn()
	}
	return true
}

// RunUntil executes events until the queue is empty or the next event
// is later than limit. The clock is left at the time of the last
// executed event, or advanced to limit if limit is reached.
func (s *Scheduler) RunUntil(limit Time) {
	for s.q.len() > 0 && s.q.min() <= limit {
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// Run executes events until none remain. Protocol stacks with
// keepalive-style recurring timers never drain, so most callers want
// RunUntil; Run exists for self-terminating test programs.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
