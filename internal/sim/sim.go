// Package sim provides a deterministic discrete-event simulation engine.
//
// All protocol modules in this repository are driven by a single
// Scheduler: they schedule closures at absolute or relative virtual
// times, and the Scheduler runs them in (time, insertion-order) order.
// Determinism is guaranteed for a fixed seed: the engine itself never
// consults wall-clock time or global randomness, and ties between events
// scheduled for the same instant are broken by insertion order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation. Nanosecond granularity comfortably represents every
// 802.11 interval we model (the shortest, a 400 ns guard interval, is
// 400 ticks).
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants so call sites
// read naturally (sim.Microsecond, 4*sim.Millisecond, ...).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision, which
// is the most readable unit at 802.11 timescales.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Timer is a handle to a scheduled event. The zero Timer is invalid;
// timers are created by Scheduler.At / Scheduler.After.
type Timer struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// Cancelled reports whether the timer was stopped or has fired.
func (t *Timer) Cancelled() bool { return t.index < 0 }

// At returns the virtual time the timer is scheduled for.
func (t *Timer) At() Time { return t.at }

// eventHeap orders timers by (time, sequence). Sequence numbers are
// assigned in scheduling order, so simultaneous events run FIFO.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Scheduler is the discrete-event core. It is not safe for concurrent
// use; simulations are single-goroutine by design (determinism).
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	fired  uint64 // total events executed, for diagnostics
}

// NewScheduler returns a scheduler whose random stream is seeded with
// seed. Two schedulers with equal seeds and equal event programs
// produce identical executions.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random stream. Modules
// must draw all randomness from here (or from streams forked via
// ForkRand) to preserve reproducibility.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// ForkRand derives an independent deterministic stream. Use one stream
// per stochastic subsystem so adding draws in one module does not
// perturb another.
func (s *Scheduler) ForkRand() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// EventsFired returns the number of events executed so far.
func (s *Scheduler) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a protocol bug, and silently reordering
// time would invalidate every simulation result.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	t := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, t)
	return t
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Cancel stops a pending timer. Cancelling an already-fired or
// already-cancelled timer is a no-op, so callers can cancel
// unconditionally.
func (s *Scheduler) Cancel(t *Timer) {
	if t == nil || t.index < 0 {
		return
	}
	heap.Remove(&s.events, t.index)
	t.index = -1
	t.fn = nil
}

// Reschedule cancels t (if pending) and schedules fn at the new time,
// returning the replacement timer.
func (s *Scheduler) Reschedule(t *Timer, d Duration, fn func()) *Timer {
	s.Cancel(t)
	return s.After(d, fn)
}

// Step executes the single earliest pending event. It reports false if
// no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	t := heap.Pop(&s.events).(*Timer)
	s.now = t.at
	fn := t.fn
	t.fn = nil
	s.fired++
	fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event
// is later than limit. The clock is left at the time of the last
// executed event, or advanced to limit if limit is reached.
func (s *Scheduler) RunUntil(limit Time) {
	for len(s.events) > 0 && s.events[0].at <= limit {
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// Run executes events until none remain. Protocol stacks with
// keepalive-style recurring timers never drain, so most callers want
// RunUntil; Run exists for self-terminating test programs.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
